// Heterogeneous link-time & fault-injection engine tests
// (net/time_model.hpp; docs/SIMULATION.md is the spec):
//
//  * distribution determinism — per-edge/per-node draws are pure functions
//    of (seed, coordinates), symmetric, seed-sensitive, query-order free;
//  * golden equivalence — the default TimeModel reduces EXACTLY (EXPECT_EQ
//    on doubles) to the legacy flat LinkModel formula, and inert
//    heterogeneity settings keep result JSON byte-identical;
//  * the per-edge critical-path accumulator against hand-computed cases,
//    including the isolated-node and zero-byte-round edge cases;
//  * crash/rejoin and burst bookkeeping, per-cause drop counters;
//  * the new scenario keys: value mapping, unit conversion, and every
//    diagnostic path;
//  * experiment integration: the extended sim_time JSON block (present
//    under heterogeneity/faults, absent by default) and the threads=1 vs 4
//    byte-identical-JSON determinism guard extended to heterogeneous runs.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>

#include "config/runner.hpp"
#include "config/scenario.hpp"
#include "core/rng.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

namespace jwins {
namespace {

using net::DropCause;
using net::EdgeDropDist;
using net::LinkDist;
using net::LinkModel;
using net::TimeModel;
using net::TimeModelConfig;

LinkDist uniform_dist(double lo, double hi) {
  return {LinkDist::Kind::kUniform, lo, hi};
}

LinkDist lognormal_dist(double median, double sigma) {
  return {LinkDist::Kind::kLognormal, median, sigma};
}

// --- config validation ------------------------------------------------------

TEST(TimeModelConfig, DefaultIsValidAndNotExtended) {
  const TimeModelConfig config;
  EXPECT_TRUE(config.validate().empty());
  EXPECT_FALSE(config.heterogeneous_time());
  EXPECT_FALSE(config.any_faults());
  EXPECT_FALSE(config.extended());
}

TEST(TimeModelConfig, ReportsKeyedViolations) {
  TimeModelConfig config;
  config.straggler_fraction = 1.0;
  config.straggler_slowdown = 0.5;
  config.rejoin_at = 3;
  config.crash_at = 5;
  config.burst_every = 2;
  config.burst_length = 4;
  config.burst_drop = 0.0;
  const auto errors = config.validate();
  auto has = [&](const std::string& needle) {
    for (const std::string& e : errors) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("straggler_fraction:"));
  EXPECT_TRUE(has("straggler_slowdown:"));
  EXPECT_TRUE(has("rejoin_at:"));
  EXPECT_TRUE(has("burst_length:"));
  EXPECT_TRUE(has("burst_drop:"));
}

TEST(TimeModelConfig, DistributionRangeChecks) {
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(0.0, 10.0);  // bandwidth lo must be > 0
  EXPECT_FALSE(config.validate().empty());
  config.bandwidth_dist = lognormal_dist(-1.0, 0.5);
  EXPECT_FALSE(config.validate().empty());
  config.bandwidth_dist = {};
  config.latency_dist = uniform_dist(0.0, 0.1);  // latency may reach zero
  EXPECT_TRUE(config.validate().empty());
  config.edge_drop = {EdgeDropDist::Kind::kUniform, 0.2, 1.0};  // hi must be < 1
  EXPECT_FALSE(config.validate().empty());
}

TEST(TimeModelConfig, ExtendedGating) {
  TimeModelConfig config;
  config.straggler_fraction = 0.5;  // slowdown still 1.0 -> inert
  EXPECT_FALSE(config.heterogeneous_time());
  config.straggler_slowdown = 2.0;
  EXPECT_TRUE(config.heterogeneous_time());
  config = {};
  config.crash_nodes = 1;
  EXPECT_FALSE(config.heterogeneous_time());
  EXPECT_TRUE(config.any_faults());
  EXPECT_TRUE(config.extended());
}

// --- distribution determinism ----------------------------------------------

TEST(TimeModelDraws, EdgeAttributesAreSymmetricAndSeedKeyed) {
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(1e5, 1e7);
  config.latency_dist = lognormal_dist(0.01, 0.5);
  const TimeModel a(16, {}, config, /*seed=*/42);
  const TimeModel b(16, {}, config, /*seed=*/42);
  const TimeModel c(16, {}, config, /*seed=*/43);
  bool any_differs_across_seeds = false;
  for (std::uint32_t u = 0; u < 16; ++u) {
    for (std::uint32_t v = u + 1; v < 16; ++v) {
      EXPECT_EQ(a.edge_bandwidth(u, v), a.edge_bandwidth(v, u));
      EXPECT_EQ(a.edge_latency(u, v), a.edge_latency(v, u));
      EXPECT_EQ(a.edge_bandwidth(u, v), b.edge_bandwidth(u, v));
      EXPECT_EQ(a.edge_latency(u, v), b.edge_latency(u, v));
      if (a.edge_bandwidth(u, v) != c.edge_bandwidth(u, v)) {
        any_differs_across_seeds = true;
      }
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(TimeModelDraws, UniformDrawsStayInRangeAndSpread) {
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(1000.0, 2000.0);
  const TimeModel tm(64, {}, config, 7);
  double lo = 1e18, hi = 0.0;
  for (std::uint32_t u = 0; u < 64; ++u) {
    for (std::uint32_t v = u + 1; v < 64; ++v) {
      const double bw = tm.edge_bandwidth(u, v);
      ASSERT_GE(bw, 1000.0);
      ASSERT_LE(bw, 2000.0);
      lo = std::min(lo, bw);
      hi = std::max(hi, bw);
    }
  }
  // 2016 edges: the draws should cover most of the interval.
  EXPECT_LT(lo, 1100.0);
  EXPECT_GT(hi, 1900.0);
}

TEST(TimeModelDraws, LognormalIsPositiveWithMedianNearTheSpec) {
  TimeModelConfig config;
  config.latency_dist = lognormal_dist(0.02, 0.75);
  const TimeModel tm(64, {}, config, 3);
  std::size_t below = 0, total = 0;
  for (std::uint32_t u = 0; u < 64; ++u) {
    for (std::uint32_t v = u + 1; v < 64; ++v) {
      const double lat = tm.edge_latency(u, v);
      ASSERT_GT(lat, 0.0);
      if (lat < 0.02) ++below;
      ++total;
    }
  }
  // Median of the lognormal is the spec value: roughly half below.
  EXPECT_GT(below, total * 2 / 5);
  EXPECT_LT(below, total * 3 / 5);
}

TEST(TimeModelDraws, InertStragglerFractionReportsNoStragglers) {
  // fraction > 0 with the multiplier at 1 slows nothing, so nothing may be
  // *reported* as a straggler either (the sim_time block must not claim
  // injection that had no effect).
  TimeModelConfig config;
  config.straggler_fraction = 0.9;
  const TimeModel tm(16, {}, config, 9);
  EXPECT_EQ(tm.straggler_count(), 0u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(tm.is_straggler(i));
    EXPECT_EQ(tm.compute_multiplier(i), 1.0);
  }
}

TEST(TimeModelDraws, StragglerChoiceIsDeterministicPerSeed) {
  TimeModelConfig config;
  config.straggler_fraction = 0.4;
  config.straggler_slowdown = 3.0;
  const TimeModel a(32, {}, config, 9);
  const TimeModel b(32, {}, config, 9);
  EXPECT_EQ(a.straggler_count(), b.straggler_count());
  EXPECT_GT(a.straggler_count(), 0u);  // 32 draws at p=0.4: deterministic set
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(a.is_straggler(i), b.is_straggler(i));
    EXPECT_EQ(a.compute_multiplier(i), a.is_straggler(i) ? 3.0 : 1.0);
  }
}

// --- golden equivalence to the flat model ----------------------------------

TEST(TimeModelGolden, DefaultModelMatchesFlatFormulaExactly) {
  LinkModel link;
  link.bandwidth_bytes_per_sec = 1000.0;
  link.latency_sec = 0.5;
  net::Network flat(2, link);
  net::Message big;
  big.sender = 0;
  big.body = net::SharedBytes::zeros(2000 - net::Message::kEnvelopeBytes);
  net::Message small;
  small.sender = 1;
  small.body = net::SharedBytes::zeros(100 - net::Message::kEnvelopeBytes);
  flat.send(1, big);
  flat.send(0, small);
  flat.finish_round(/*compute_seconds=*/1.0);
  // EXACT equality, not near: the legacy reduction must evaluate the same
  // doubles in the same order as LinkModel::comm_time.
  EXPECT_EQ(flat.simulated_seconds(), 1.0 + link.comm_time(2000));
  EXPECT_EQ(flat.simulated_compute_seconds(), 1.0);
  EXPECT_EQ(flat.simulated_comm_seconds(), link.comm_time(2000));
  // An idle round costs compute + latency, as before.
  flat.finish_round(1.0);
  EXPECT_EQ(flat.simulated_seconds(),
            (1.0 + link.comm_time(2000)) + (1.0 + link.comm_time(0)));
}

TEST(TimeModelGolden, DegenerateHeterogeneityMatchesFlatOnSingleEdges) {
  // uniform:[x, x] forces the critical-path engine with constant values;
  // with one message per sender the queue is one transfer, so the result
  // must coincide with the flat formula.
  LinkModel link;
  link.bandwidth_bytes_per_sec = 1000.0;
  link.latency_sec = 0.5;
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(1000.0, 1000.0);
  config.latency_dist = uniform_dist(0.5, 0.5);
  TimeModel tm(2, link, config, 1);
  tm.record_send(0, 1, 2000);
  tm.record_send(1, 0, 100);
  const TimeModel::RoundTime rt = tm.finish_round(1.0);
  EXPECT_EQ(rt.compute, 1.0);
  EXPECT_DOUBLE_EQ(rt.comm, 0.5 + 2000.0 / 1000.0);
}

TEST(TimeModelGolden, InertHeterogeneitySettingsKeepResultsByteIdentical) {
  // straggler_fraction > 0 with slowdown == 1 changes nothing, so the run
  // must stay on the legacy path and emit byte-identical JSON (no sim_time
  // block) — the pre-PR report shape.
  const std::size_t n = 6;
  auto run_with = [&](const TimeModelConfig& time) {
    const sim::Workload w = sim::make_femnist_like(n, 5);
    sim::ExperimentConfig cfg;
    cfg.rounds = 3;
    cfg.eval_every = 1;
    cfg.eval_sample_limit = 32;
    cfg.threads = 2;
    cfg.seed = 5;
    cfg.time = time;
    std::mt19937 rng(5);
    sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                        std::make_unique<graph::StaticTopology>(
                            graph::random_regular(n, 3, rng)));
    std::ostringstream os;
    sim::write_result_json(os, "golden", exp.run(), /*include_wall=*/false);
    return os.str();
  };
  TimeModelConfig inert;
  inert.straggler_fraction = 0.5;
  inert.straggler_slowdown = 1.0;
  const std::string a = run_with({});
  const std::string b = run_with(inert);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("\"sim_time\""), std::string::npos);
}

// --- the critical-path accumulator -----------------------------------------

TEST(TimeModelCriticalPath, HandComputedThreeNodeCase) {
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(1000.0, 1000.0);
  config.latency_dist = uniform_dist(0.5, 0.5);
  TimeModel tm(3, {}, config, 1);
  // Node 0 queues two transfers through its uplink: 2000 B then 1000 B.
  tm.record_send(0, 1, 2000);
  tm.record_send(0, 2, 1000);
  // Node 1 sends a single small message.
  tm.record_send(1, 0, 100);
  const TimeModel::RoundTime rt = tm.finish_round(0.0);
  // Edge (0,1): 2.0 + 0.5 = 2.5; edge (0,2): 2.0 + 1.0 + 0.5 = 3.5;
  // edge (1,0): 0.1 + 0.5 = 0.6. Critical path: 3.5.
  EXPECT_DOUBLE_EQ(rt.comm, 3.5);
}

TEST(TimeModelCriticalPath, IsolatedNodeDoesNotGateTheRound) {
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(1000.0, 1000.0);
  config.latency_dist = uniform_dist(0.25, 0.25);
  TimeModel tm(4, {}, config, 1);
  tm.record_send(2, 3, 500);  // nodes 0 and 1 are silent (isolated)
  const TimeModel::RoundTime rt = tm.finish_round(0.0);
  EXPECT_DOUBLE_EQ(rt.comm, 0.5 + 0.25);
}

TEST(TimeModelCriticalPath, ZeroByteRoundPaysTheBaseLatencyBarrier) {
  LinkModel link;
  link.latency_sec = 0.125;
  TimeModelConfig config;
  config.latency_dist = uniform_dist(5.0, 5.0);  // per-edge latency unused
  TimeModel tm(3, link, config, 1);
  const TimeModel::RoundTime rt = tm.finish_round(0.5);
  // No edge carried bytes: the sync barrier costs the *base* latency, like
  // the flat model's idle round.
  EXPECT_DOUBLE_EQ(rt.comm, 0.125);
  EXPECT_DOUBLE_EQ(rt.compute, 0.5);
}

TEST(TimeModelCriticalPath, StragglersGateTheComputePhase) {
  TimeModelConfig config;
  config.straggler_fraction = 0.5;
  config.straggler_slowdown = 4.0;
  TimeModel tm(16, {}, config, 21);
  ASSERT_GT(tm.straggler_count(), 0u);
  const TimeModel::RoundTime rt = tm.finish_round(0.1);
  EXPECT_DOUBLE_EQ(rt.compute, 0.4);  // slowest alive node: 0.1 * 4
}

TEST(TimeModelCriticalPath, RepeatSendsToOneNeighborAccumulate) {
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(100.0, 100.0);
  config.latency_dist = uniform_dist(0.0, 0.0);
  TimeModel tm(2, {}, config, 1);
  tm.record_send(0, 1, 50);
  tm.record_send(0, 1, 150);
  const TimeModel::RoundTime rt = tm.finish_round(0.0);
  EXPECT_DOUBLE_EQ(rt.comm, 200.0 / 100.0);
  // The accumulator resets between rounds.
  EXPECT_DOUBLE_EQ(tm.finish_round(0.0).comm, 0.002);  // base latency floor
}

// --- crash/rejoin bookkeeping ----------------------------------------------

TEST(TimeModelCrash, WindowAndVictimChoice) {
  TimeModelConfig config;
  config.crash_nodes = 2;
  config.crash_at = 3;
  config.rejoin_at = 5;
  const TimeModel tm(6, {}, config, 17);
  std::size_t victims = 0;
  for (std::uint32_t i = 0; i < 6; ++i) {
    if (tm.node_crashes(i)) ++victims;
    // Every node is alive outside the window.
    EXPECT_TRUE(tm.node_alive(i, 0));
    EXPECT_TRUE(tm.node_alive(i, 2));
    EXPECT_EQ(tm.node_alive(i, 3), !tm.node_crashes(i));
    EXPECT_EQ(tm.node_alive(i, 4), !tm.node_crashes(i));
    EXPECT_TRUE(tm.node_alive(i, 5));  // rejoined
  }
  EXPECT_EQ(victims, 2u);
  // Same seed, same victims.
  const TimeModel again(6, {}, config, 17);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(tm.node_crashes(i), again.node_crashes(i));
  }
}

TEST(TimeModelCrash, RejoinZeroMeansForever) {
  TimeModelConfig config;
  config.crash_nodes = 1;
  config.crash_at = 2;
  const TimeModel tm(4, {}, config, 1);
  std::uint32_t victim = 4;
  for (std::uint32_t i = 0; i < 4; ++i) {
    if (tm.node_crashes(i)) victim = i;
  }
  ASSERT_LT(victim, 4u);
  EXPECT_TRUE(tm.node_alive(victim, 1));
  EXPECT_FALSE(tm.node_alive(victim, 2));
  EXPECT_FALSE(tm.node_alive(victim, 1000));
}

TEST(TimeModelCrash, CrashedNodeRoundsAccumulate) {
  TimeModelConfig config;
  config.crash_nodes = 2;
  config.crash_at = 1;
  config.rejoin_at = 3;
  TimeModel tm(5, {}, config, 8);
  for (int r = 0; r < 5; ++r) tm.finish_round(0.0);
  // Rounds 1 and 2 have 2 nodes down each.
  EXPECT_EQ(tm.crashed_node_rounds(), 4u);
}

TEST(TimeModelCrash, AllNodesCrashingIsRejected) {
  TimeModelConfig config;
  config.crash_nodes = 4;
  EXPECT_THROW(TimeModel(4, {}, config, 1), std::invalid_argument);
  EXPECT_THROW(TimeModel(3, {}, config, 1), std::invalid_argument);
  EXPECT_NO_THROW(TimeModel(5, {}, config, 1));
}

TEST(TimeModelCrash, MessagesOnCrashedEndpointsDrop) {
  TimeModelConfig config;
  config.crash_nodes = 1;
  config.crash_at = 0;
  const TimeModel tm(3, {}, config, 2);
  std::uint32_t victim = 3;
  for (std::uint32_t i = 0; i < 3; ++i) {
    if (tm.node_crashes(i)) victim = i;
  }
  ASSERT_LT(victim, 3u);
  const std::uint32_t other = victim == 0 ? 1 : 0;
  EXPECT_EQ(tm.drop_cause(other, victim, 0), DropCause::kCrash);
  EXPECT_EQ(tm.drop_cause(victim, other, 0), DropCause::kCrash);
  const std::uint32_t third = 3 - victim - other;
  EXPECT_EQ(tm.drop_cause(other, third, 0), DropCause::kNone);
}

// --- burst outages ----------------------------------------------------------

TEST(TimeModelBurst, WindowsOpenOnThePeriod) {
  TimeModelConfig config;
  config.burst_every = 5;
  config.burst_length = 2;
  const TimeModel tm(2, {}, config, 1);
  for (std::size_t r = 0; r < 5; ++r) EXPECT_FALSE(tm.burst_active(r)) << r;
  EXPECT_TRUE(tm.burst_active(5));
  EXPECT_TRUE(tm.burst_active(6));
  EXPECT_FALSE(tm.burst_active(7));
  EXPECT_FALSE(tm.burst_active(9));
  EXPECT_TRUE(tm.burst_active(10));
  EXPECT_TRUE(tm.burst_active(11));
}

TEST(TimeModelBurst, TotalOutageDropsEverythingInWindow) {
  TimeModelConfig config;
  config.burst_every = 3;
  config.burst_length = 1;
  const TimeModel tm(2, {}, config, 1);
  EXPECT_EQ(tm.drop_cause(0, 1, 2), DropCause::kNone);
  EXPECT_EQ(tm.drop_cause(0, 1, 3), DropCause::kBurst);
  EXPECT_EQ(tm.drop_cause(0, 1, 4), DropCause::kNone);
}

TEST(TimeModelBurst, PartialBurstIsDeterministicallyRandom) {
  TimeModelConfig config;
  config.burst_every = 1;
  config.burst_length = 1;
  config.burst_drop = 0.5;
  const TimeModel a(8, {}, config, 6);
  const TimeModel b(8, {}, config, 6);
  std::size_t dropped = 0, kept = 0;
  for (std::uint32_t s = 0; s < 8; ++s) {
    for (std::uint32_t r = 1; r < 40; ++r) {
      const DropCause cause = a.drop_cause(s, (s + 1) % 8, r);
      EXPECT_EQ(cause, b.drop_cause(s, (s + 1) % 8, r));
      (cause == DropCause::kBurst ? dropped : kept) += 1;
    }
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(kept, 0u);
}

// --- per-edge drop ----------------------------------------------------------

TEST(TimeModelEdgeDrop, PerEdgeProbabilitiesAreFixedPerEdge) {
  TimeModelConfig config;
  config.edge_drop = {EdgeDropDist::Kind::kUniform, 0.0, 0.9};
  const TimeModel tm(8, {}, config, 4);
  for (std::uint32_t u = 0; u < 8; ++u) {
    for (std::uint32_t v = u + 1; v < 8; ++v) {
      const double p = tm.edge_drop_probability(u, v);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 0.9);
      EXPECT_EQ(p, tm.edge_drop_probability(v, u));
    }
  }
}

TEST(TimeModelEdgeDrop, FixedProbabilityDropsDeterministically) {
  TimeModelConfig config;
  config.edge_drop = {EdgeDropDist::Kind::kFixed, 0.5, 0.0};
  const TimeModel a(4, {}, config, 13);
  const TimeModel b(4, {}, config, 13);
  std::size_t dropped = 0, kept = 0;
  for (std::uint32_t r = 0; r < 100; ++r) {
    const DropCause cause = a.drop_cause(0, 1, r);
    EXPECT_EQ(cause, b.drop_cause(0, 1, r));
    (cause == DropCause::kEdge ? dropped : kept) += 1;
  }
  EXPECT_GT(dropped, 20u);
  EXPECT_GT(kept, 20u);
}

TEST(TimeModelEdgeDrop, LegacyIidHashIsPreserved) {
  // The i.i.d. drop decision must reproduce the original Network hash so
  // seeded lossy-link runs keep their exact drop patterns.
  TimeModel tm(4, {}, {}, 0);
  tm.set_iid_drop(0.3, 99);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t r = 0; r < 50; ++r) {
      const std::uint32_t to = (s + 1) % 4;
      const std::uint64_t h =
          core::mix64(99 ^ core::mix64(s) ^ core::mix64(std::uint64_t{to} << 20) ^
                      core::mix64(std::uint64_t{r} << 40));
      const bool expect_drop =
          static_cast<double>(h) / 18446744073709551616.0 < 0.3;
      EXPECT_EQ(tm.drop_cause(s, to, r) == DropCause::kIid, expect_drop);
    }
  }
}

TEST(TimeModelNetwork, DropCausesAreCounted) {
  TimeModelConfig config;
  config.burst_every = 2;
  config.burst_length = 1;
  net::Network network(2, TimeModel(2, {}, config, 1));
  auto send = [&](std::uint32_t round) {
    net::Message msg;
    msg.sender = 0;
    msg.round = round;
    msg.body = net::SharedBytes::zeros(16);
    network.send(1, msg);
  };
  send(1);  // delivered
  send(2);  // burst window
  send(3);  // delivered
  send(4);  // burst window
  EXPECT_EQ(network.messages_dropped(), 2u);
  EXPECT_EQ(network.time_model().dropped_burst(), 2u);
  EXPECT_EQ(network.time_model().dropped_iid(), 0u);
  EXPECT_EQ(network.drain(1).size(), 2u);
  // Dropped messages still count as sent bytes — the sender paid.
  EXPECT_EQ(network.traffic().total().messages_sent, 4u);
}

// --- scenario keys ----------------------------------------------------------

std::vector<config::ScenarioRun> expand(const std::string& text) {
  return config::expand_grid(config::parse_scenario_text(text));
}

std::string expand_error(const std::string& text) {
  try {
    expand(text);
  } catch (const config::ScenarioError& e) {
    return e.what();
  }
  return {};
}

void expect_error_contains(const std::string& text, const std::string& what) {
  const std::string message = expand_error(text);
  EXPECT_NE(message.find(what), std::string::npos)
      << "spec:\n" << text << "\ndiagnostic: " << message;
}

TEST(TimeModelScenarioKeys, ValuesMapIntoTheConfigWithUnitConversion) {
  const auto runs = expand(
      "bandwidth_dist = uniform:10:100\n"
      "latency_dist = lognormal:20:0.5\n"
      "straggler_fraction = 0.25\n"
      "straggler_slowdown = 4\n"
      "edge_drop = uniform:0.1:0.3\n"
      "crash_nodes = 2\n"
      "crash_at = 8\n"
      "rejoin_at = 24\n"
      "burst_every = 10\n"
      "burst_length = 2\n"
      "burst_drop = 0.9\n");
  ASSERT_EQ(runs.size(), 1u);
  const TimeModelConfig& time = runs.front().config.time;
  EXPECT_EQ(time.bandwidth_dist.kind, LinkDist::Kind::kUniform);
  EXPECT_DOUBLE_EQ(time.bandwidth_dist.a, 10e6 / 8.0);  // Mbit -> bytes/sec
  EXPECT_DOUBLE_EQ(time.bandwidth_dist.b, 100e6 / 8.0);
  EXPECT_EQ(time.latency_dist.kind, LinkDist::Kind::kLognormal);
  EXPECT_DOUBLE_EQ(time.latency_dist.a, 0.020);  // ms -> sec (median only)
  EXPECT_DOUBLE_EQ(time.latency_dist.b, 0.5);    // sigma is unitless
  EXPECT_DOUBLE_EQ(time.straggler_fraction, 0.25);
  EXPECT_DOUBLE_EQ(time.straggler_slowdown, 4.0);
  EXPECT_EQ(time.edge_drop.kind, EdgeDropDist::Kind::kUniform);
  EXPECT_DOUBLE_EQ(time.edge_drop.a, 0.1);
  EXPECT_DOUBLE_EQ(time.edge_drop.b, 0.3);
  EXPECT_EQ(time.crash_nodes, 2u);
  EXPECT_EQ(time.crash_at, 8u);
  EXPECT_EQ(time.rejoin_at, 24u);
  EXPECT_EQ(time.burst_every, 10u);
  EXPECT_EQ(time.burst_length, 2u);
  EXPECT_DOUBLE_EQ(time.burst_drop, 0.9);
  EXPECT_TRUE(time.extended());
}

TEST(TimeModelScenarioKeys, DefaultsAreTheFlatModel) {
  const auto runs = expand("");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs.front().config.time.extended());
}

TEST(TimeModelScenarioKeys, DistributionDiagnostics) {
  expect_error_contains("bandwidth_dist = pareto:1:2\n",
                        "bandwidth_dist: unknown distribution");
  expect_error_contains("bandwidth_dist = uniform:10\n",
                        "bandwidth_dist: needs two fields");
  expect_error_contains("bandwidth_dist = uniform:100:10\n",
                        "bandwidth_dist: uniform needs lo <= hi");
  expect_error_contains("bandwidth_dist = uniform:0:10\n",
                        "bandwidth_dist: uniform lo must be > 0");
  expect_error_contains("bandwidth_dist = lognormal:0:1\n",
                        "bandwidth_dist: lognormal median must be > 0");
  expect_error_contains("bandwidth_dist = uniform:abc:10\n",
                        "bandwidth_dist: lo must be a non-negative number");
  expect_error_contains("latency_dist = uniform:-1:10\n",
                        "latency_dist: lo must be a non-negative number");
  // Latency may reach zero.
  EXPECT_EQ(expand_error("latency_dist = uniform:0:10\n"), "");
}

TEST(TimeModelScenarioKeys, FaultDiagnostics) {
  expect_error_contains("edge_drop = on\n", "edge_drop: unknown drop spec");
  expect_error_contains("edge_drop = fixed:1\n",
                        "edge_drop: fixed:<p> p must be a probability");
  expect_error_contains("edge_drop = uniform:0.5:0.1\n",
                        "edge_drop: uniform needs lo <= hi");
  expect_error_contains("straggler_fraction = 1\n",
                        "straggler_fraction: must be in [0, 1)");
  expect_error_contains("straggler_slowdown = 0.5\n",
                        "straggler_slowdown: must be >= 1");
  expect_error_contains("burst_drop = 0\n", "burst_drop: must be in (0, 1]");
  expect_error_contains("burst_length = 0\n", "burst_length: must be >= 1");
  expect_error_contains("nodes = 4\ncrash_nodes = 4\ntopology = full\n",
                        "crash_nodes: must leave at least one node alive");
  expect_error_contains("crash_nodes = 1\ncrash_at = 10\nrejoin_at = 5\n",
                        "rejoin_at: must be 0 (never) or > crash_at");
  expect_error_contains("burst_every = 2\nburst_length = 5\n",
                        "burst_length: must be <= burst_every");
}

TEST(TimeModelScenarioKeys, CheckedInScenariosExpandWithExtendedModels) {
  for (const char* name : {"straggler_hetero", "flaky_links"}) {
    const auto runs = config::expand_grid(config::load_scenario_file(
        std::string(JWINS_SOURCE_DIR) + "/scenarios/" + name + ".scenario"));
    ASSERT_GE(runs.size(), 1u) << name;
    for (const config::ScenarioRun& run : runs) {
      EXPECT_TRUE(run.config.time.extended()) << name;
    }
  }
}

// --- experiment integration -------------------------------------------------

sim::ExperimentResult run_experiment(const TimeModelConfig& time,
                                     unsigned threads,
                                     std::size_t rounds = 6) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 23);
  sim::ExperimentConfig cfg;
  cfg.rounds = rounds;
  cfg.local_steps = 1;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = 2;
  cfg.eval_sample_limit = 64;
  cfg.threads = threads;
  cfg.seed = 23;
  cfg.time = time;
  std::mt19937 rng(23);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 4, rng)));
  return exp.run();
}

TimeModelConfig hetero_fault_config() {
  TimeModelConfig time;
  time.bandwidth_dist = uniform_dist(1e5, 1e7);
  time.latency_dist = lognormal_dist(0.01, 0.5);
  time.straggler_fraction = 0.25;
  time.straggler_slowdown = 4.0;
  time.edge_drop = {EdgeDropDist::Kind::kUniform, 0.0, 0.3};
  time.crash_nodes = 2;
  time.crash_at = 2;
  time.rejoin_at = 4;
  time.burst_every = 3;
  time.burst_length = 1;
  time.burst_drop = 0.9;
  return time;
}

TEST(TimeModelExperiment, ExtendedRunPopulatesTheBreakdown) {
  const sim::ExperimentResult result =
      run_experiment(hetero_fault_config(), /*threads=*/2);
  EXPECT_TRUE(result.sim_time.extended);
  EXPECT_GT(result.sim_time.comm_seconds, 0.0);
  EXPECT_GT(result.sim_time.compute_seconds, 0.0);
  EXPECT_NEAR(result.sim_time.compute_seconds + result.sim_time.comm_seconds,
              result.sim_seconds, 1e-12);
  EXPECT_GT(result.sim_time.dropped_total, 0u);
  EXPECT_EQ(result.sim_time.dropped_total,
            result.sim_time.dropped_iid + result.sim_time.dropped_edge +
                result.sim_time.dropped_burst + result.sim_time.dropped_crash);
  EXPECT_GT(result.sim_time.dropped_crash, 0u);
  // 2 nodes down for rounds [2, 4).
  EXPECT_EQ(result.sim_time.crashed_node_rounds, 4u);
  // The per-point series carries the cumulative split.
  ASSERT_FALSE(result.series.empty());
  const sim::MetricPoint& last = result.series.back();
  EXPECT_NEAR(last.sim_compute_seconds + last.sim_comm_seconds,
              last.sim_seconds, 1e-12);
}

TEST(TimeModelExperiment, StragglersSlowTheSimulatedClock) {
  TimeModelConfig stragglers;
  stragglers.straggler_fraction = 0.25;
  stragglers.straggler_slowdown = 8.0;
  const sim::ExperimentResult slow = run_experiment(stragglers, 1);
  const sim::ExperimentResult fast = run_experiment({}, 1);
  ASSERT_GT(slow.sim_time.stragglers, 0u);
  EXPECT_GT(slow.sim_seconds, fast.sim_seconds);
  // Accuracy metrics are untouched: the time model changes the clock, not
  // the learning dynamics.
  EXPECT_EQ(slow.final_accuracy, fast.final_accuracy);
  EXPECT_EQ(slow.final_loss, fast.final_loss);
}

TEST(TimeModelExperiment, DefaultRunJsonHasNoSimTimeBlock) {
  const sim::ExperimentResult result = run_experiment({}, 2);
  std::ostringstream os;
  sim::write_result_json(os, "default", result, /*include_wall=*/false);
  EXPECT_EQ(os.str().find("\"sim_time\""), std::string::npos);
  EXPECT_FALSE(result.sim_time.extended);
}

TEST(TimeModelExperiment, ExtendedJsonIsByteIdenticalAcrossThreadCounts) {
  // The determinism guard extended to heterogeneous/faulty runs: threads=1
  // and threads=4 must emit identical JSON bytes, sim_time block included.
  const sim::ExperimentResult sequential =
      run_experiment(hetero_fault_config(), 1);
  const sim::ExperimentResult threaded =
      run_experiment(hetero_fault_config(), 4);
  std::ostringstream a, b;
  sim::write_result_json(a, "hetero", sequential, /*include_wall=*/false);
  sim::write_result_json(b, "hetero", threaded, /*include_wall=*/false);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"sim_time\""), std::string::npos);
  EXPECT_NE(a.str().find("\"messages_dropped\""), std::string::npos);
}

TEST(TimeModelExperiment, TrainLossAveragesOnlyNodesThatTrained) {
  // Nodes crashed from round 0 never train; their zero-initialized loss
  // slots must not deflate the reported mean train loss.
  TimeModelConfig crash_from_start;
  crash_from_start.crash_nodes = 3;
  crash_from_start.crash_at = 0;
  const sim::ExperimentResult crashed = run_experiment(crash_from_start, 1);
  const sim::ExperimentResult healthy = run_experiment({}, 1);
  ASSERT_FALSE(crashed.series.empty());
  ASSERT_FALSE(healthy.series.empty());
  // 3 of 8 nodes silently contributing 0.0f would cut the mean by ~37%;
  // averaging over the 5 alive nodes keeps it in the healthy run's range.
  EXPECT_GT(crashed.series.front().train_loss,
            healthy.series.front().train_loss * 0.7);
}

TEST(TimeModelExperiment, ScenarioPresetRunsThroughTheRunner) {
  config::RawScenario raw = config::load_scenario_file(
      std::string(JWINS_SOURCE_DIR) + "/scenarios/flaky_links.scenario");
  config::set_value(raw, "rounds", "4");
  config::set_value(raw, "eval_every", "2");
  config::set_value(raw, "eval_sample_limit", "16");
  config::set_value(raw, "crash_at", "1");
  config::set_value(raw, "rejoin_at", "3");
  config::set_value(raw, "algorithm", "jwins");
  config::set_value(raw, "threads", "2");
  const auto runs = config::expand_grid(raw);
  ASSERT_EQ(runs.size(), 1u);
  const sim::ExperimentResult result = config::execute(runs.front());
  EXPECT_TRUE(result.sim_time.extended);
  EXPECT_GT(result.sim_time.dropped_total, 0u);
  EXPECT_EQ(result.sim_time.crashed_node_rounds, 4u);  // 2 nodes x rounds [1,3)
}

TEST(TimeModelExperiment, EdgeAttributesEnumerableOverTheTopology) {
  // graph::Graph::edges() + the TimeModel attribute getters: every edge of
  // a topology has well-defined, symmetric draws.
  std::mt19937 rng(3);
  const graph::Graph g = graph::random_regular(8, 4, rng);
  TimeModelConfig config;
  config.bandwidth_dist = uniform_dist(1e5, 1e7);
  const TimeModel tm(8, {}, config, 3);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), g.edge_count());
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
    const double bw = tm.edge_bandwidth(static_cast<std::uint32_t>(u),
                                        static_cast<std::uint32_t>(v));
    EXPECT_GE(bw, 1e5);
    EXPECT_LE(bw, 1e7);
  }
}

TEST(TimeModelExperiment, DescribeSummarizesTheConfiguration) {
  EXPECT_EQ(TimeModel(4, {}, {}, 1).describe(), "flat link model");
  const TimeModel tm(8, {}, hetero_fault_config(), 23);
  const std::string text = tm.describe();
  EXPECT_NE(text.find("bandwidth"), std::string::npos);
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("burst"), std::string::npos);
}

}  // namespace
}  // namespace jwins

// The 100k–1M-node scale suite: locks in the three contracts the scaling
// work rides on.
//
//  1. Sampled evaluation (`eval_sample`) — the seeded subset draw is a pure
//     function of (seed, metric round, n, k); metrics reduce over the
//     sampled population (sampled count in the denominator, never n); the
//     whole thing is byte-identical across thread counts, under topology
//     churn, and collapses to the full reduce when k >= n.
//  2. Compact node state (`node_state = compact`) — the COW NodeStateStore
//     plus counter-mode samplers reproduce the full engine byte for byte,
//     and the per-node steady-state heap cost stays under a pinned ceiling
//     (the memory-diet regression guard, via test_arena.cpp's allocator
//     hook).
//  3. Sharded sweeps (`--shard i/N` / `--merge` / `--resume`) — every grid
//     cell lands in exactly one shard, merged fragments are byte-identical
//     to an unsharded grid.json, and resume regenerates only what is
//     missing, byte-exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config/runner.hpp"
#include "config/scenario.hpp"
#include "config/sweep.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/node_state.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"
#include "test_util.hpp"

namespace jwins {
namespace {

namespace fs = std::filesystem;

std::string json_of(const sim::ExperimentResult& result) {
  std::ostringstream os;
  sim::write_result_json(os, "scale/test", result, /*include_wall=*/false);
  return os.str();
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

/// Result JSONs match except the host-timing block, which measures this
/// process and is excluded from every determinism contract.
std::string strip_wall_seconds(const std::string& json) {
  static const std::regex wall("\"wall_seconds\": \\{[^}]*\\}");
  return std::regex_replace(json, wall, "");
}

/// A fresh per-test scratch directory under the gtest temp root.
fs::path test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("jwins_scale_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- 1. Population accounting: the off-by-population guard -----------------
// The bug this pins against: summing train losses over the eval_sample
// subset but dividing by n. mean_loss_over is the single mean both engines
// report, so the rule is tested at its source first.

TEST(MeanLossAccounting, DividesBySampledPopulationNotN) {
  const std::vector<float> losses{1.0f, 2.0f, 3.0f, 4.0f};
  const auto all_alive = [](std::size_t) { return true; };

  // Empty population = every index.
  EXPECT_DOUBLE_EQ(
      sim::Experiment::mean_loss_over(losses, {}, all_alive), 2.5);

  // A 2-node population averages over 2, not 4. (2 + 4) / 2, never / 4.
  const std::vector<std::uint32_t> pop{1, 3};
  EXPECT_DOUBLE_EQ(sim::Experiment::mean_loss_over(losses, pop, all_alive),
                   3.0);
}

TEST(MeanLossAccounting, DeadNodesLeaveNumeratorAndDenominator) {
  const std::vector<float> losses{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<std::uint32_t> pop{1, 3};
  const auto only_one = [](std::size_t i) { return i == 1; };
  // Node 3 is down: the mean is loss[1] / 1, not (loss[1] + 0) / 2.
  EXPECT_DOUBLE_EQ(sim::Experiment::mean_loss_over(losses, pop, only_one),
                   2.0);
  // Whole population down -> defined as 0, not NaN.
  const auto none = [](std::size_t) { return false; };
  EXPECT_DOUBLE_EQ(sim::Experiment::mean_loss_over(losses, pop, none), 0.0);
}

sim::ExperimentResult run_quadratic(std::size_t eval_sample) {
  // Every node holds the IDENTICAL quadratic objective, so per-node train
  // losses are exactly equal. The reported mean over k identical values
  // equals the mean over n of them bit-for-bit (n and k both powers of two,
  // so neither mean rounds) — unless the sampled sum is divided by n, in
  // which case the sampled run reports exactly k/n of the truth. That is
  // the off-by-population bug this test exists to catch.
  const std::size_t n = 4;
  static const testutil::DummyDataset dataset;
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kRandomSampling;
  cfg.rounds = 2;
  cfg.local_steps = 1;
  cfg.eval_every = 1;
  cfg.eval_sample = eval_sample;
  cfg.sgd.learning_rate = 0.1f;
  cfg.threads = 2;
  cfg.seed = 11;
  const auto factory = [] {
    tensor::Tensor target({4}), init({4});
    for (std::size_t i = 0; i < 4; ++i) {
      target[i] = 1.0f;
      init[i] = -0.5f;
    }
    return std::make_unique<testutil::QuadraticModel>(std::move(target),
                                                      std::move(init));
  };
  sim::Experiment exp(cfg, factory, dataset,
                      data::cyclic_partition(dataset.size(), n, 2), dataset,
                      std::make_unique<graph::StaticTopology>(
                          graph::ring(n)));
  return exp.run();
}

TEST(MeanLossAccounting, SampledTrainLossEqualsFullOnUniformLosses) {
  const sim::ExperimentResult full = run_quadratic(0);
  const sim::ExperimentResult sampled = run_quadratic(2);
  ASSERT_EQ(full.series.size(), sampled.series.size());
  for (std::size_t p = 0; p < full.series.size(); ++p) {
    EXPECT_DOUBLE_EQ(full.series[p].train_loss, sampled.series[p].train_loss)
        << "series point " << p
        << " (a k/n-scaled value here means the sampled sum was divided by n)";
  }
}

TEST(AlphaAccounting, SampledMeanAlphaUsesSampledCount) {
  // JWINS' mean_alpha averages per-node sharing fractions. Sampled over
  // k = n/4 nodes it must stay in the same range as the full average —
  // dividing the k-node sum by n would shrink it by ~4x.
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 23);
  auto run = [&](std::size_t eval_sample) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = sim::Algorithm::kJwins;
    cfg.rounds = 4;
    cfg.local_steps = 1;
    cfg.eval_every = 2;
    cfg.eval_sample_limit = 32;
    cfg.eval_sample = eval_sample;
    cfg.threads = 2;
    cfg.seed = 23;
    std::mt19937 topo_rng(23);
    sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                        std::make_unique<graph::StaticTopology>(
                            graph::random_regular(n, 4, topo_rng)));
    return exp.run();
  };
  const double full_alpha = run(0).mean_alpha;
  const double sampled_alpha = run(2).mean_alpha;
  ASSERT_GT(full_alpha, 0.05);
  // Same population-mean scale: far above the k/n-shrunken bug value.
  EXPECT_GT(sampled_alpha, 0.5 * full_alpha);
  EXPECT_LT(sampled_alpha, 2.0 * full_alpha);
}

// --- 1b. The seeded subset draw --------------------------------------------

TEST(EvalSample, SubsetDrawIsPureSortedUniqueAndInRange) {
  const auto a = sim::Experiment::eval_sample_indices(7, 3, 1000, 50);
  const auto b = sim::Experiment::eval_sample_indices(7, 3, 1000, 50);
  EXPECT_EQ(a, b);  // pure function of its arguments
  ASSERT_EQ(a.size(), 50u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(std::set<std::uint32_t>(a.begin(), a.end()).size(), a.size());
  for (const std::uint32_t i : a) EXPECT_LT(i, 1000u);

  // Different rounds redraw; different seeds redraw.
  EXPECT_NE(a, sim::Experiment::eval_sample_indices(7, 4, 1000, 50));
  EXPECT_NE(a, sim::Experiment::eval_sample_indices(8, 3, 1000, 50));

  // k >= n degenerates to every node, in order.
  std::vector<std::uint32_t> iota(16);
  std::iota(iota.begin(), iota.end(), 0u);
  EXPECT_EQ(sim::Experiment::eval_sample_indices(7, 0, 16, 16), iota);
  EXPECT_EQ(sim::Experiment::eval_sample_indices(7, 0, 16, 99), iota);
}

sim::ExperimentResult run_femnist(unsigned threads, std::size_t eval_sample,
                                  std::size_t churn_every) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 23);
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kRandomSampling;
  cfg.rounds = 5;
  cfg.local_steps = 1;
  cfg.eval_every = 2;
  cfg.eval_sample_limit = 32;
  cfg.eval_sample = eval_sample;
  cfg.threads = threads;
  cfg.seed = 23;
  std::unique_ptr<graph::TopologyProvider> topo;
  if (churn_every > 0) {
    topo = std::make_unique<graph::DynamicRegularTopology>(n, 4, 23, churn_every);
  } else {
    std::mt19937 topo_rng(23);
    topo = std::make_unique<graph::StaticTopology>(
        graph::random_regular(n, 4, topo_rng));
  }
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::move(topo));
  return exp.run();
}

TEST(EvalSample, ByteIdenticalAcrossThreadCounts) {
  const std::string one = json_of(run_femnist(1, 3, 0));
  EXPECT_EQ(one, json_of(run_femnist(4, 3, 0)));
}

TEST(EvalSample, DrawSurvivesTopologyChurn) {
  // Under churn_every = 1 the graph is redrawn every round; the subset draw
  // takes no topology input, so the run stays thread-count invariant.
  const std::string one = json_of(run_femnist(1, 3, 1));
  EXPECT_EQ(one, json_of(run_femnist(4, 3, 1)));
}

TEST(EvalSample, KAtLeastNIsByteIdenticalToFullReduce) {
  const std::string full = json_of(run_femnist(2, 0, 0));
  EXPECT_EQ(full, json_of(run_femnist(2, 8, 0)));   // k == n
  EXPECT_EQ(full, json_of(run_femnist(2, 99, 0)));  // k > n
}

TEST(EvalSample, RejectsEvalNodeLimitCombination) {
  sim::ExperimentConfig cfg;
  cfg.eval_sample = 4;
  cfg.eval_node_limit = 2;
  const auto errors = cfg.validate(16);
  EXPECT_FALSE(errors.empty());
}

// --- 2. Compact node state --------------------------------------------------

TEST(NodeStateStore, CopyOnWriteSemantics) {
  const std::vector<float> base{1.0f, 2.0f, 3.0f};
  sim::NodeStateStore store(100, base);
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.params(), 3u);
  EXPECT_EQ(store.materialized_count(), 0u);

  // Every node reads the one shared base until it writes.
  for (const std::size_t i : {std::size_t{0}, std::size_t{50}}) {
    EXPECT_FALSE(store.materialized(i));
    const auto v = store.view(i);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], 2.0f);
  }
  EXPECT_EQ(store.view(0).data(), store.view(99).data());  // same storage

  // First slot() materializes base-initialized private storage.
  auto slot = store.slot(7);
  ASSERT_EQ(slot.size(), 3u);
  EXPECT_EQ(slot[2], 3.0f);  // copied from base
  slot[2] = 42.0f;
  EXPECT_TRUE(store.materialized(7));
  EXPECT_EQ(store.materialized_count(), 1u);
  EXPECT_EQ(store.view(7)[2], 42.0f);
  EXPECT_EQ(store.view(8)[2], 3.0f);  // neighbors unaffected

  // store() overwrites wholesale.
  const std::vector<float> fresh{9.0f, 9.0f, 9.0f};
  store.store(7, fresh);
  EXPECT_EQ(store.view(7)[0], 9.0f);
  store.store(8, fresh);  // materializes on demand
  EXPECT_EQ(store.materialized_count(), 2u);

  EXPECT_GT(store.memory_bytes(), 0u);
}

TEST(NodeStateStore, SteadyStatePerNodeBytesAreSlotPlusIndex) {
  const std::size_t nodes = 10000, params = 58;
  sim::NodeStateStore store(nodes, std::vector<float>(params, 1.0f));
  for (std::size_t i = 0; i < nodes; ++i) {
    store.store(i, std::vector<float>(params, 2.0f));
  }
  // params floats + the 4-byte slot index, plus the slack of one partially
  // filled slab chunk (fully amortized at 1M nodes, up to ~50% at 10k —
  // the 1.5x headroom). A per-node DlNode object would cost 10-20x this.
  const std::size_t per_node = store.memory_bytes() / nodes;
  EXPECT_LE(per_node, (params * sizeof(float) + 4) * 3 / 2);
}

TEST(CounterSampler, StreamIsSeekableAndRebindable) {
  data::SyntheticImages::Config cfg;
  cfg.classes = 2;
  cfg.channels = 1;
  cfg.image_size = 2;
  cfg.samples = 64;
  cfg.seed = 3;
  cfg.sample_seed = 4;
  const data::SyntheticImages dataset(cfg);
  const std::vector<std::size_t> shard_a{0, 1, 2, 3};
  const std::vector<std::size_t> shard_b{10, 11};

  auto labels_of = [](data::Sampler& s, int draws) {
    std::vector<std::int32_t> out;
    for (int d = 0; d < draws; ++d) {
      for (const std::int32_t l : s.next().labels) out.push_back(l);
    }
    return out;
  };

  data::Sampler a(dataset, shard_a, 2, 77, data::Sampler::Mode::kCounter);
  const auto first = labels_of(a, 4);
  a.seek(0);
  EXPECT_EQ(labels_of(a, 4), first);  // replay from the start

  // A fresh sampler on the same (shard, seed) is the same stream; seek
  // drops it mid-stream.
  data::Sampler b(dataset, shard_a, 2, 77, data::Sampler::Mode::kCounter);
  b.seek(2);
  const auto tail = labels_of(b, 2);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(),
                         first.begin() + static_cast<std::ptrdiff_t>(
                                             first.size() - tail.size())));

  // rebind() retargets shard + stream, matching a fresh sampler exactly.
  data::Sampler fresh_b(dataset, shard_b, 2, 99, data::Sampler::Mode::kCounter);
  const auto fresh_draws = labels_of(fresh_b, 3);
  a.rebind(std::vector<std::size_t>(shard_b.begin(), shard_b.end()), 99, 0);
  EXPECT_EQ(labels_of(a, 3), fresh_draws);

  // The shuffle mode's stream is stateful: no seek, no rebind.
  data::Sampler shuffled(dataset, shard_a, 2, 77);
  EXPECT_THROW(shuffled.seek(0), std::logic_error);
  EXPECT_THROW(shuffled.rebind(shard_b, 1, 0), std::logic_error);
}

sim::ExperimentResult run_scale_workload(sim::NodeState node_state,
                                         unsigned threads,
                                         std::size_t nodes = 32) {
  const sim::Workload w = sim::make_scale_like(nodes, 7);
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kRandomSampling;
  cfg.rounds = 4;
  cfg.local_steps = 1;
  cfg.eval_every = 2;
  cfg.eval_sample_limit = 32;
  cfg.eval_sample = 8;
  cfg.node_state = node_state;
  cfg.batch_sampler = sim::BatchSampler::kCounter;
  cfg.threads = threads;
  cfg.seed = 7;
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::ring(nodes)));
  return exp.run();
}

TEST(CompactState, ByteIdenticalToFullEngineAtAnyThreadCount) {
  const std::string reference =
      json_of(run_scale_workload(sim::NodeState::kFull, 1));
  EXPECT_EQ(reference, json_of(run_scale_workload(sim::NodeState::kFull, 4)));
  EXPECT_EQ(reference,
            json_of(run_scale_workload(sim::NodeState::kCompact, 1)));
  EXPECT_EQ(reference,
            json_of(run_scale_workload(sim::NodeState::kCompact, 4)));
}

TEST(CompactState, ValidateEnforcesRestrictions) {
  sim::ExperimentConfig cfg;
  cfg.node_state = sim::NodeState::kCompact;
  cfg.batch_sampler = sim::BatchSampler::kShuffle;  // compact needs counter
  EXPECT_FALSE(cfg.validate(16).empty());

  cfg.batch_sampler = sim::BatchSampler::kCounter;
  cfg.algorithm = sim::Algorithm::kJwins;  // stateful node: rejected
  EXPECT_FALSE(cfg.validate(16).empty());

  cfg.algorithm = sim::Algorithm::kRandomSampling;
  EXPECT_TRUE(cfg.validate(16).empty());
}

// The memory-diet regression guard: per-node steady-state heap cost of a
// compact 10k-node experiment stays under a pinned ceiling. The full layout
// (one DlNode with model + optimizer + sampler per node) costs several KiB
// per node and trips this immediately.
TEST(ScaleMemory, CompactPerNodeHeapBytesUnderCeiling) {
  if (testutil::live_heap_bytes() < 0) {
    GTEST_SKIP() << "allocator hook compiled out (sanitized build)";
  }
  const std::size_t nodes = 10000;
  const sim::Workload w = sim::make_scale_like(nodes, 7);
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kRandomSampling;
  cfg.rounds = 1;
  cfg.local_steps = 1;
  cfg.eval_every = 1;
  cfg.eval_sample = 64;
  cfg.eval_sample_limit = 32;
  cfg.node_state = sim::NodeState::kCompact;
  cfg.batch_sampler = sim::BatchSampler::kCounter;
  cfg.threads = 2;
  cfg.seed = 7;

  const std::int64_t before = testutil::live_heap_bytes();
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::ring(nodes)));
  (void)exp.run();
  // Steady state, experiment still alive: every node has trained, shared,
  // and materialized its delta slot.
  const std::int64_t held = testutil::live_heap_bytes() - before;
  ASSERT_GT(held, 0);
  const std::int64_t per_node = held / static_cast<std::int64_t>(nodes);
  EXPECT_LE(per_node, 2048)
      << "compact node state costs " << per_node
      << " bytes/node — the memory diet regressed (full-layout cost is "
         "several KiB/node)";
}

// --- 3. Sharded sweeps -------------------------------------------------------

TEST(Sweep, ShardSpecParsing) {
  const config::ShardSpec s = config::parse_shard("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_THROW(config::parse_shard("5/5"), config::ScenarioError);
  EXPECT_THROW(config::parse_shard("a/5"), config::ScenarioError);
  EXPECT_THROW(config::parse_shard("1/0"), config::ScenarioError);
  EXPECT_THROW(config::parse_shard("3"), config::ScenarioError);
  EXPECT_THROW(config::parse_shard("/3"), config::ScenarioError);
  EXPECT_THROW(config::parse_shard("3/"), config::ScenarioError);
  EXPECT_THROW(config::parse_shard("1/-2"), config::ScenarioError);
}

TEST(Sweep, EveryRunLandsInExactlyOneShard) {
  for (const std::size_t count : {1u, 2u, 3u, 7u}) {
    for (std::size_t run = 0; run < 25; ++run) {
      std::size_t owners = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (config::shard_owns({i, count}, run)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "run " << run << " of " << count << " shards";
    }
  }
}

/// The suite's sweep grid: 2 algorithms x 2 seeds over the scale workload,
/// small enough to execute in milliseconds.
std::vector<config::ScenarioRun> sweep_grid() {
  config::RawScenario raw = config::parse_scenario_text(
      "name = scale_suite\n"
      "workload = scale\n"
      "algorithm = random-sampling, full-sharing\n"
      "seed = 1, 2\n"
      "nodes = 8\n"
      "topology = ring\n"
      "rounds = 2\n"
      "eval_every = 1\n"
      "eval_sample_limit = 16\n"
      "threads = 2\n");
  return config::expand_grid(raw);
}

TEST(Sweep, ShardedFragmentsMergeByteIdenticalToUnshardedGrid) {
  const auto runs = sweep_grid();
  ASSERT_EQ(runs.size(), 4u);
  const fs::path dir = test_dir("shard_merge");

  config::SweepOptions unsharded;
  unsharded.out_dir = (dir / "ref").string();
  const config::SweepOutcome ref =
      config::run_sweep(runs, "scale_suite", unsharded);
  EXPECT_EQ(ref.executed, 4u);
  EXPECT_EQ(ref.skipped, 0u);

  std::size_t executed_total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    config::SweepOptions sharded;
    sharded.out_dir = (dir / "shards").string();
    sharded.shard = {i, 3};
    const config::SweepOutcome out =
        config::run_sweep(runs, "scale_suite", sharded);
    executed_total += out.executed;
    EXPECT_EQ(out.executed + out.skipped, runs.size());
    EXPECT_TRUE(fs::exists(dir / "shards" / "scale_suite" /
                           config::shard_fragment_name(sharded.shard)));
  }
  EXPECT_EQ(executed_total, runs.size());  // disjoint cover

  const std::string merged =
      config::merge_shards((dir / "shards" / "scale_suite").string());
  EXPECT_EQ(read_file(merged),
            read_file(dir / "ref" / "scale_suite" / "grid.json"));

  // The per-run artifacts agree too (minus the host-timing block).
  for (const config::ScenarioRun& run : runs) {
    const std::string base = config::run_file_base(run);
    EXPECT_EQ(strip_wall_seconds(
                  read_file(dir / "ref" / "scale_suite" / (base + ".json"))),
              strip_wall_seconds(read_file(dir / "shards" / "scale_suite" /
                                           (base + ".json"))))
        << base;
  }
}

TEST(Sweep, MergeRejectsIncompleteFragmentSets) {
  const auto runs = sweep_grid();
  const fs::path dir = test_dir("merge_incomplete");
  config::SweepOptions sharded;
  sharded.out_dir = dir.string();
  sharded.shard = {0, 2};  // run shard 0 of 2, never shard 1
  config::run_sweep(runs, "scale_suite", sharded);
  EXPECT_THROW(config::merge_shards((dir / "scale_suite").string()),
               config::ScenarioError);
  // No fragments at all is also an error, not an empty grid.
  EXPECT_THROW(config::merge_shards(dir.string()), config::ScenarioError);
}

TEST(Sweep, ResumeRegeneratesOnlyMissingRuns) {
  const auto runs = sweep_grid();
  const fs::path dir = test_dir("resume");
  config::SweepOptions options;
  options.out_dir = dir.string();
  const config::SweepOutcome first =
      config::run_sweep(runs, "scale_suite", options);
  ASSERT_EQ(first.executed, runs.size());
  const fs::path grid_path = dir / "scale_suite" / "grid.json";
  const std::string grid_before = read_file(grid_path);

  // Sabotage: plant a sentinel in run 0's CSV (resume must not touch
  // completed runs' files) and delete run 2's JSON (must be re-executed).
  const std::string kept_base = config::run_file_base(runs[0]);
  const std::string gone_base = config::run_file_base(runs[2]);
  write_file(dir / "scale_suite" / (kept_base + ".csv"), "sentinel\n");
  const std::string gone_json_before =
      read_file(dir / "scale_suite" / (gone_base + ".json"));
  fs::remove(dir / "scale_suite" / (gone_base + ".json"));

  options.resume = true;
  const config::SweepOutcome second =
      config::run_sweep(runs, "scale_suite", options);
  EXPECT_EQ(second.executed, 1u);
  EXPECT_EQ(second.resumed, runs.size() - 1);

  // Only the deleted run was regenerated — bytes identical to the original
  // (minus host timing); untouched runs were left alone (the sentinel
  // survives); the grid index is byte-identical to the first pass.
  EXPECT_EQ(strip_wall_seconds(
                read_file(dir / "scale_suite" / (gone_base + ".json"))),
            strip_wall_seconds(gone_json_before));
  EXPECT_EQ(read_file(dir / "scale_suite" / (kept_base + ".csv")),
            "sentinel\n");
  EXPECT_EQ(read_file(grid_path), grid_before);
}

TEST(Sweep, ProbeParsesWrittenResultsAndRejectsGarbage) {
  const fs::path dir = test_dir("probe");
  config::SweepOptions options;
  options.out_dir = dir.string();
  const auto runs = sweep_grid();
  config::run_sweep(runs, "scale_suite", options);
  const fs::path json =
      dir / "scale_suite" / (config::run_file_base(runs[0]) + ".json");
  const auto probe = config::probe_completed_run(json.string());
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->rounds_run, 2u);
  EXPECT_TRUE(std::isfinite(probe->final_loss));

  EXPECT_FALSE(config::probe_completed_run((dir / "absent.json").string()));
  write_file(dir / "garbage.json", "{\"not\": \"a result\"}\n");
  EXPECT_FALSE(config::probe_completed_run((dir / "garbage.json").string()));
}

// --- Scale presets parse, validate, and carry the memory-diet knobs --------

TEST(ScalePresets, ParseValidateAndConfigure) {
  for (const auto& [file, nodes] :
       {std::pair<const char*, std::size_t>{"scale_100k.scenario", 100000},
        {"scale_1m.scenario", 1000000}}) {
    const std::string path =
        std::string(JWINS_SOURCE_DIR) + "/scenarios/" + file;
    const auto runs = config::expand_grid(config::load_scenario_file(path));
    ASSERT_EQ(runs.size(), 1u) << file;
    const config::ScenarioRun& run = runs.front();
    EXPECT_EQ(run.nodes, nodes) << file;
    EXPECT_EQ(run.workload, "scale") << file;
    EXPECT_EQ(run.config.node_state, sim::NodeState::kCompact) << file;
    EXPECT_EQ(run.config.batch_sampler, sim::BatchSampler::kCounter) << file;
    EXPECT_EQ(run.config.eval_sample, 256u) << file;
  }
}

}  // namespace
}  // namespace jwins

#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <random>

namespace jwins::graph {
namespace {

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, IgnoresSelfLoopsAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.neighbors(9), std::out_of_range);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(Graph(0).connected());
  EXPECT_TRUE(Graph(1).connected());
}

struct RegularCase {
  std::size_t n, d;
};

class RandomRegularParam : public ::testing::TestWithParam<RegularCase> {};

TEST_P(RandomRegularParam, RegularSimpleConnected) {
  const auto [n, d] = GetParam();
  std::mt19937 rng(n * 31 + d);
  const Graph g = random_regular(n, d, rng);
  EXPECT_EQ(g.size(), n);
  EXPECT_TRUE(g.is_regular(d));
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.edge_count(), n * d / 2);
  // Simple graph: no self loops, no duplicate neighbors.
  for (std::size_t u = 0; u < n; ++u) {
    auto nbrs = g.neighbors(u);
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), u) == nbrs.end());
  }
}

// The paper's settings: 96 nodes d=4; scalability uses 192/288 d=5, 384 d=6.
INSTANTIATE_TEST_SUITE_P(PaperTopologies, RandomRegularParam,
                         ::testing::Values(RegularCase{8, 3}, RegularCase{16, 4},
                                           RegularCase{96, 4}, RegularCase{192, 5},
                                           RegularCase{288, 5}, RegularCase{384, 6},
                                           RegularCase{10, 9}, RegularCase{96, 6}));

TEST(RandomRegular, InvalidParamsThrow) {
  std::mt19937 rng(1);
  EXPECT_THROW(random_regular(4, 4, rng), std::invalid_argument);   // d >= n
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);   // n*d odd
}

TEST(RandomRegular, DegreeOneIsPerfectMatching) {
  std::mt19937 rng(2);
  const graph::Graph g = random_regular(6, 1, rng);
  EXPECT_TRUE(g.is_regular(1));
  EXPECT_EQ(g.edge_count(), 3u);
  // d = 1 on n > 2 cannot be connected; the matching is returned as-is.
  EXPECT_FALSE(g.connected());
}

TEST(RandomRegular, ZeroDegreeGivesEmptyGraph) {
  std::mt19937 rng(1);
  const Graph g = random_regular(4, 0, rng);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Ring, StructureAndDegrees) {
  const Graph g = ring(6, 1);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(g.has_edge(0, 5));
  const Graph g2 = ring(8, 2);
  EXPECT_TRUE(g2.is_regular(4));
}

TEST(Complete, AllPairs) {
  const Graph g = complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_TRUE(g.is_regular(4));
}

TEST(ErdosRenyi, ConnectedResult) {
  std::mt19937 rng(4);
  const Graph g = erdos_renyi(30, 0.3, rng);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.size(), 30u);
}

TEST(MetropolisHastings, RowsSumToOne) {
  std::mt19937 rng(9);
  const Graph g = random_regular(16, 4, rng);
  const MixingWeights w = metropolis_hastings(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    double total = w.self_weight[i];
    for (double wij : w.neighbor_weight[i]) total += wij;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GE(w.self_weight[i], 0.0);
  }
}

TEST(MetropolisHastings, SymmetricAcrossEdges) {
  std::mt19937 rng(10);
  const Graph g = erdos_renyi(20, 0.25, rng);  // irregular degrees
  const MixingWeights w = metropolis_hastings(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto& nbrs = g.neighbors(i);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::size_t j = nbrs[k];
      // Find w_ji.
      const auto& jn = g.neighbors(j);
      double w_ji = -1.0;
      for (std::size_t m = 0; m < jn.size(); ++m) {
        if (jn[m] == i) w_ji = w.neighbor_weight[j][m];
      }
      EXPECT_NEAR(w.neighbor_weight[i][k], w_ji, 1e-12);
      EXPECT_NEAR(w.neighbor_weight[i][k],
                  1.0 / (1.0 + std::max(g.degree(i), g.degree(j))), 1e-12);
    }
  }
}

TEST(MetropolisHastings, RegularGraphGivesUniformWeights) {
  std::mt19937 rng(11);
  const Graph g = random_regular(12, 4, rng);
  const MixingWeights w = metropolis_hastings(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (double wij : w.neighbor_weight[i]) EXPECT_NEAR(wij, 0.2, 1e-12);
    EXPECT_NEAR(w.self_weight[i], 0.2, 1e-12);
  }
}

TEST(StaticTopology, SameGraphEveryRound) {
  std::mt19937 rng(5);
  StaticTopology topo(random_regular(10, 3, rng));
  const Graph& g0 = topo.round_graph(0);
  const Graph& g5 = topo.round_graph(5);
  EXPECT_EQ(&g0, &g5);
}

TEST(DynamicTopology, ChangesAcrossRoundsDeterministically) {
  DynamicRegularTopology topo(16, 4, /*seed=*/77);
  DynamicRegularTopology topo2(16, 4, /*seed=*/77);

  // Same round, same seed -> identical adjacency.
  const Graph& a = topo.round_graph(3);
  std::vector<std::vector<std::size_t>> adj3;
  for (std::size_t u = 0; u < a.size(); ++u) adj3.push_back(a.neighbors(u));
  const Graph& b = topo2.round_graph(3);
  for (std::size_t u = 0; u < b.size(); ++u) EXPECT_EQ(b.neighbors(u), adj3[u]);

  // Different rounds -> (almost surely) different graphs.
  const Graph& c = topo.round_graph(4);
  bool any_difference = false;
  for (std::size_t u = 0; u < c.size(); ++u) {
    if (c.neighbors(u) != adj3[u]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
  EXPECT_TRUE(c.is_regular(4));
  EXPECT_TRUE(c.connected());
}

TEST(Torus, FourRegularAndConnected) {
  const Graph g = torus(4, 5);
  EXPECT_EQ(g.size(), 20u);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_TRUE(g.connected());
  // (r, c) must reach its four lattice neighbors, wrapping around.
  EXPECT_TRUE(g.has_edge(0, 1));        // (0,0)-(0,1)
  EXPECT_TRUE(g.has_edge(0, 4));        // (0,0)-(0,4): column wrap
  EXPECT_TRUE(g.has_edge(0, 5));        // (0,0)-(1,0)
  EXPECT_TRUE(g.has_edge(0, 15));       // (0,0)-(3,0): row wrap
  EXPECT_FALSE(g.has_edge(0, 6));       // no diagonals
}

TEST(Torus, DegenerateDimensionCollapsesToRing) {
  // rows = 1: the vertical edges are self-loops/duplicates and are dropped.
  const Graph g = torus(1, 6);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(g.connected());
}

TEST(DynamicTopology, ChurnPeriodHoldsTheGraphBetweenRewires) {
  DynamicRegularTopology topo(10, 4, /*seed=*/7, /*rewire_every=*/3);
  auto adjacency = [](const Graph& g) {
    std::vector<std::vector<std::size_t>> adj;
    for (std::size_t u = 0; u < g.size(); ++u) adj.push_back(g.neighbors(u));
    return adj;
  };
  const auto epoch0 = adjacency(topo.round_graph(0));
  EXPECT_EQ(adjacency(topo.round_graph(1)), epoch0);
  EXPECT_EQ(adjacency(topo.round_graph(2)), epoch0);
  EXPECT_NE(adjacency(topo.round_graph(3)), epoch0);
  // A period-3 provider at epoch k draws the same graph as a period-1
  // provider at round k: the seed stream is keyed on the epoch index.
  DynamicRegularTopology every_round(10, 4, /*seed=*/7);
  EXPECT_EQ(adjacency(every_round.round_graph(1)),
            adjacency(topo.round_graph(5)));
}

}  // namespace
}  // namespace jwins::graph

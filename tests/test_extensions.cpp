// Tests for the extension features: QSGD quantization, CHOCO-with-
// quantization, lossy-network failure injection, learning-rate schedules,
// and the JWINS band-share diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "algo/choco.hpp"
#include "algo/jwins_node.hpp"
#include "compress/quantize.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "sim/experiment.hpp"
#include "sim/workloads.hpp"
#include "test_util.hpp"

namespace jwins {
namespace {

// ------------------------------------------------------------ quantization

TEST(Qsgd, RoundTripSerialization) {
  std::mt19937_64 rng(1);
  std::vector<float> values(257);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::mt19937 vrng(2);
  for (float& v : values) v = dist(vrng);
  const auto q = compress::qsgd_quantize(values, 15, rng);
  const auto bytes = compress::qsgd_serialize(q);
  EXPECT_EQ(bytes.size(), compress::qsgd_wire_size(q));
  const auto back = compress::qsgd_deserialize(bytes);
  EXPECT_EQ(back.norm, q.norm);
  EXPECT_EQ(back.levels, q.levels);
  EXPECT_EQ(back.count, q.count);
  EXPECT_EQ(back.packed, q.packed);
}

TEST(Qsgd, DequantizedValuesBoundedByNorm) {
  std::mt19937_64 rng(3);
  std::vector<float> values{1.0f, -2.0f, 0.5f, 0.0f};
  const auto q = compress::qsgd_quantize(values, 4, rng);
  const auto back = compress::qsgd_dequantize(q);
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::fabs(back[i]), q.norm + 1e-5f);
    // Sign preserved (zero stays zero or snaps to +/- small).
    if (values[i] > 0.1f) {
      EXPECT_GE(back[i], 0.0f);
    }
    if (values[i] < -0.1f) {
      EXPECT_LE(back[i], 0.0f);
    }
  }
}

TEST(Qsgd, UnbiasedInExpectation) {
  // E[Q(x)] = x: average many stochastic quantizations of one vector.
  const std::vector<float> values{0.7f, -0.3f, 0.05f, -0.9f};
  std::vector<double> mean(values.size(), 0.0);
  const int trials = 4000;
  std::mt19937_64 rng(7);
  for (int t = 0; t < trials; ++t) {
    const auto back =
        compress::qsgd_dequantize(compress::qsgd_quantize(values, 4, rng));
    for (std::size_t i = 0; i < values.size(); ++i) mean[i] += back[i];
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, values[i], 0.02) << "coord " << i;
  }
}

TEST(Qsgd, MoreLevelsLessError) {
  std::vector<float> values(512);
  std::mt19937 vrng(5);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (float& v : values) v = dist(vrng);
  auto error = [&](std::uint32_t levels) {
    std::mt19937_64 rng(9);
    const auto back =
        compress::qsgd_dequantize(compress::qsgd_quantize(values, levels, rng));
    double err = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      err += (back[i] - values[i]) * (back[i] - values[i]);
    }
    return err;
  };
  EXPECT_LT(error(63), error(7));
  EXPECT_LT(error(7), error(1));
}

TEST(Qsgd, WireSizeScalesWithLevels) {
  std::vector<float> values(1000, 0.5f);
  std::mt19937_64 rng(11);
  // 1 level: 1 sign + 1 level bit = 2 bits/elem; 15 levels: 1 + 4 bits.
  const auto q1 = compress::qsgd_quantize(values, 1, rng);
  const auto q15 = compress::qsgd_quantize(values, 15, rng);
  EXPECT_NEAR(static_cast<double>(q1.packed.size()), 2.0 * 1000 / 8, 2.0);
  EXPECT_NEAR(static_cast<double>(q15.packed.size()), 5.0 * 1000 / 8, 2.0);
  // Both are far below the 4000-byte float payload.
  EXPECT_LT(q15.packed.size() * 4u, values.size() * sizeof(float));
}

TEST(Qsgd, ZeroLevelsThrows) {
  std::mt19937_64 rng(1);
  std::vector<float> values{1.0f};
  EXPECT_THROW(compress::qsgd_quantize(values, 0, rng), std::invalid_argument);
}

// --------------------------------------------------- choco with quantizer

TEST(ChocoQsgd, ConvergesOnQuadratics) {
  using testutil::DummyDataset;
  using testutil::QuadraticModel;
  const std::size_t n = 8, dim = 24;
  DummyDataset dataset;
  net::Network network(n);
  core::RoundScratch scratch;
  std::mt19937 grng(7);
  const graph::Graph g = graph::random_regular(n, 4, grng);
  const graph::MixingWeights weights = graph::metropolis_hastings(g);
  std::vector<std::unique_ptr<algo::DlNode>> nodes;
  auto target = [&](std::size_t r) {
    tensor::Tensor t({dim});
    for (std::size_t i = 0; i < dim; ++i) {
      t[i] = std::sin(0.3f * float(i + 1) * float(r + 1)) * 2.0f;
    }
    return t;
  };
  tensor::Tensor mean({dim});
  for (std::size_t r = 0; r < n; ++r) mean += target(r);
  mean *= 1.0f / float(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::mt19937 irng(1000 + unsigned(r));
    algo::ChocoNode::Options opt;
    opt.gamma = 0.4;
    opt.compressor = algo::ChocoNode::Compressor::kQsgd;
    opt.qsgd_levels = 15;
    algo::TrainConfig tc;
    tc.sgd.learning_rate = 0.1f;
    nodes.push_back(std::make_unique<algo::ChocoNode>(
        std::uint32_t(r),
        std::make_unique<QuadraticModel>(target(r),
                                         tensor::Tensor::normal({dim}, 0, 1, irng)),
        data::Sampler(dataset, {0, 1, 2, 3}, 4, 1), tc, opt));
  }
  auto round = [&](std::uint32_t t) {
    for (auto& node : nodes) node->local_train();
    for (auto& node : nodes) node->share(network, g, weights, t, scratch);
    for (auto& node : nodes) node->aggregate(network, g, weights, t, scratch);
  };
  for (std::uint32_t t = 0; t < 300; ++t) round(t);
  for (auto& node : nodes) node->set_learning_rate(0.01f);
  for (std::uint32_t t = 300; t < 500; ++t) round(t);
  float worst = 0.0f;
  for (auto& node : nodes) {
    const auto x = node->flat_params();
    for (std::size_t i = 0; i < dim; ++i) {
      worst = std::max(worst, std::fabs(x[i] - mean[i]));
    }
  }
  EXPECT_LT(worst, 0.3f);
}

// -------------------------------------------------------- failure injection

TEST(NetworkDrop, DropsDeterministicFraction) {
  net::Network a(4), b(4);
  a.set_drop(0.3, 99);
  b.set_drop(0.3, 99);
  std::size_t delivered_a = 0, delivered_b = 0;
  for (std::uint32_t round = 0; round < 200; ++round) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      net::Message msg;
      msg.sender = s;
      msg.round = round;
      msg.body = net::SharedBytes::zeros(8);
      a.send((s + 1) % 4, msg);
      b.send((s + 1) % 4, msg);
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
      delivered_a += a.drain(i).size();
      delivered_b += b.drain(i).size();
    }
  }
  EXPECT_EQ(delivered_a, delivered_b);  // deterministic given seed
  const double drop_rate = 1.0 - static_cast<double>(delivered_a) / 800.0;
  EXPECT_NEAR(drop_rate, 0.3, 0.06);
  EXPECT_EQ(a.messages_dropped(), 800 - delivered_a);
  // Dropped messages still count as sent (the bytes left the sender).
  EXPECT_EQ(a.traffic().total().messages_sent, 800u);
}

TEST(NetworkDrop, InvalidProbabilityThrows) {
  net::Network net(2);
  EXPECT_THROW(net.set_drop(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(net.set_drop(1.0, 1), std::invalid_argument);
}

TEST(ExperimentDrop, JwinsToleratesLossyLinks) {
  // The paper credits JWINS' statelessness for robustness to nodes leaving
  // and joining; partial averaging simply renormalizes over whoever arrived,
  // so a 15%-lossy network must still learn.
  const std::size_t n = 8;
  const sim::Workload w = sim::make_cifar_like(n, 21);
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kJwins;
  cfg.rounds = 40;
  cfg.local_steps = 2;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = 40;
  cfg.eval_sample_limit = 160;
  cfg.eval_node_limit = 4;
  cfg.message_drop_probability = 0.15;
  std::mt19937 rng(21);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 4, rng)));
  const auto result = exp.run();
  EXPECT_GT(result.final_accuracy, 0.4);  // well above 10-class chance
  EXPECT_GT(exp.network().messages_dropped(), 0u);
}

// ---------------------------------------------------------- lr schedule

TEST(ExperimentLrSchedule, DecaysLearningRate) {
  const std::size_t n = 4;
  const sim::Workload w = sim::make_celeba_like(n, 22);
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kFullSharing;
  cfg.rounds = 10;
  cfg.sgd.learning_rate = 0.08f;
  cfg.lr_decay_every = 4;
  cfg.lr_decay_factor = 0.5;
  cfg.eval_every = 10;
  cfg.eval_sample_limit = 32;
  std::mt19937 rng(22);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 3, rng)));
  exp.run();
  // Two decays happened (after rounds 4 and 8): 0.08 * 0.25 = 0.02.
  EXPECT_NEAR(exp.node(0).learning_rate(), 0.02f, 1e-6f);
}

// ----------------------------------------------------------- band stats

TEST(JwinsBandStats, TracksSharedBands) {
  using testutil::DummyDataset;
  using testutil::QuadraticModel;
  const std::size_t n = 4, dim = 64;
  DummyDataset dataset;
  net::Network network(n);
  core::RoundScratch scratch;
  const graph::Graph g = graph::complete(n);
  const graph::MixingWeights weights = graph::metropolis_hastings(g);
  std::vector<std::unique_ptr<algo::JwinsNode>> nodes;
  for (std::size_t r = 0; r < n; ++r) {
    std::mt19937 irng(50 + unsigned(r));
    algo::JwinsNode::Options opt;
    opt.cutoff = core::RandomizedCutoff::fixed(0.25);  // always sparse
    algo::TrainConfig tc;
    tc.sgd.learning_rate = 0.1f;
    // Constant target and constant (zero) init: every round's model change
    // is a constant vector, whose wavelet energy lives entirely in the
    // coarse approximation band.
    tensor::Tensor target({dim}, float(r + 1));
    nodes.push_back(std::make_unique<algo::JwinsNode>(
        std::uint32_t(r),
        std::make_unique<QuadraticModel>(target, tensor::Tensor({dim})),
        data::Sampler(dataset, {0, 1, 2, 3}, 4, 1), tc, opt));
    (void)irng;
  }
  for (std::uint32_t t = 0; t < 10; ++t) {
    for (auto& node : nodes) node->local_train();
    for (auto& node : nodes) node->share(network, g, weights, t, scratch);
    for (auto& node : nodes) node->aggregate(network, g, weights, t, scratch);
  }
  const auto& counts = nodes[0]->band_share_counts();
  EXPECT_EQ(counts.size(), 5u);  // a4, d4, d3, d2, d1
  const std::uint64_t total = std::accumulate(counts.begin(), counts.end(),
                                              std::uint64_t{0});
  // alpha = 0.25 of 64 coefficients over 10 rounds.
  EXPECT_EQ(total, 10u * 16u);
  // The targets are constant vectors, so changes concentrate in the coarse
  // approximation band: band 0 (4 coefficients) must be shared every round.
  EXPECT_EQ(counts[0], 10u * 4u);
}

TEST(JwinsBandStats, IdentityTransformHasOneBand) {
  using testutil::DummyDataset;
  using testutil::QuadraticModel;
  DummyDataset dataset;
  algo::JwinsNode::Options opt;
  opt.ranker.use_wavelet = false;
  algo::TrainConfig tc;
  std::mt19937 irng(3);
  algo::JwinsNode node(0,
                       std::make_unique<QuadraticModel>(
                           tensor::Tensor({8}, 1.0f),
                           tensor::Tensor::normal({8}, 0, 1, irng)),
                       data::Sampler(dataset, {0, 1, 2, 3}, 4, 1), tc, opt);
  EXPECT_EQ(node.band_share_counts().size(), 1u);
}

}  // namespace
}  // namespace jwins

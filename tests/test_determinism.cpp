// Determinism regression suite: the engine's core reproducibility contract
// is that `threads = N` is bit-identical to `threads = 1` for every
// algorithm (counter-based per-(seed, node, round) RNG streams, static
// thread-pool chunking, canonical mailbox drain order, ordered metric
// reduction — see docs/DESIGN.md "Determinism & threading model"). Each
// algorithm runs the same seeded config sequentially, threaded, and
// threaded again, and every metric the engine reports must match exactly.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/kernel_dispatch.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

namespace jwins {
namespace {

struct Scenario {
  const char* name;
  sim::Algorithm algorithm;
  bool choco_qsgd = false;
  double drop_probability = 0.0;
};

sim::ExperimentResult run_scenario(const Scenario& s, unsigned threads,
                                   sim::EngineKind engine =
                                       sim::EngineKind::kSync) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 23);
  sim::ExperimentConfig cfg;
  cfg.algorithm = s.algorithm;
  cfg.rounds = 6;
  cfg.local_steps = 2;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = 2;
  cfg.eval_sample_limit = 64;
  cfg.threads = threads;
  cfg.seed = 23;
  cfg.engine = engine;
  cfg.message_drop_probability = s.drop_probability;
  if (s.choco_qsgd) {
    cfg.choco.compressor = algo::ChocoNode::Compressor::kQsgd;
  }
  std::mt19937 topo_rng(23);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 4, topo_rng)));
  return exp.run();
}

void expect_bit_identical(const sim::ExperimentResult& a,
                          const sim::ExperimentResult& b, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.rounds_run, b.rounds_run);
  EXPECT_EQ(a.reached_target, b.reached_target);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    SCOPED_TRACE(i);
    const sim::MetricPoint& x = a.series[i];
    const sim::MetricPoint& y = b.series[i];
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.sim_seconds, y.sim_seconds);
    EXPECT_EQ(x.test_accuracy, y.test_accuracy);
    EXPECT_EQ(x.test_loss, y.test_loss);
    EXPECT_EQ(x.train_loss, y.train_loss);
    EXPECT_EQ(x.avg_bytes_per_node, y.avg_bytes_per_node);
    EXPECT_EQ(x.avg_metadata_bytes_per_node, y.avg_metadata_bytes_per_node);
  }
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.total_traffic.messages_sent, b.total_traffic.messages_sent);
  EXPECT_EQ(a.total_traffic.bytes_sent, b.total_traffic.bytes_sent);
  EXPECT_EQ(a.total_traffic.payload_bytes_sent, b.total_traffic.payload_bytes_sent);
  EXPECT_EQ(a.total_traffic.metadata_bytes_sent, b.total_traffic.metadata_bytes_sent);
  EXPECT_EQ(a.mean_alpha, b.mean_alpha);
}

class DeterminismAcrossThreads : public ::testing::TestWithParam<Scenario> {};

TEST_P(DeterminismAcrossThreads, ThreadedMatchesSequentialBitForBit) {
  const Scenario& s = GetParam();
  const auto sequential = run_scenario(s, 1);
  const auto threaded = run_scenario(s, 4);
  const auto threaded_again = run_scenario(s, 4);
  expect_bit_identical(sequential, threaded, "threads=1 vs threads=4");
  expect_bit_identical(threaded, threaded_again, "threads=4 vs threads=4");
}

TEST_P(DeterminismAcrossThreads, AsyncBarrierMatchesSyncByteForByte) {
  // The asynchronous engine's golden reduction (sim/event_engine.hpp):
  // under staleness_bound = 0 every metric — and the emitted result JSON,
  // byte for byte — must equal the synchronous reference.
  const Scenario& s = GetParam();
  const auto sync = run_scenario(s, 1, sim::EngineKind::kSync);
  const auto async = run_scenario(s, 1, sim::EngineKind::kAsync);
  expect_bit_identical(sync, async, "sync vs async barrier");
  std::ostringstream a, b;
  sim::write_result_json(a, "determinism/reduction", sync,
                         /*include_wall=*/false);
  sim::write_result_json(b, "determinism/reduction", async,
                         /*include_wall=*/false);
  EXPECT_EQ(a.str(), b.str());
}

TEST_P(DeterminismAcrossThreads, AsyncThreadedMatchesSequential) {
  // The event loop itself is single-threaded; evaluation still uses the
  // pool. threads=N must stay bit-identical to threads=1 under kAsync.
  const Scenario& s = GetParam();
  const auto sequential = run_scenario(s, 1, sim::EngineKind::kAsync);
  const auto threaded = run_scenario(s, 4, sim::EngineKind::kAsync);
  expect_bit_identical(sequential, threaded, "async threads=1 vs threads=4");
  std::ostringstream a, b;
  sim::write_result_json(a, "determinism/async", sequential,
                         /*include_wall=*/false);
  sim::write_result_json(b, "determinism/async", threaded,
                         /*include_wall=*/false);
  EXPECT_EQ(a.str(), b.str());
}

TEST_P(DeterminismAcrossThreads, ScalarAndFastKernelTiersByteIdentical) {
  // The vectorized kernel tiers (core::KernelDispatch) are bit-identical by
  // construction; this closes the loop at the experiment level. Result JSON
  // must never encode which tier ran — the host block lives in bench
  // documents only — so a forced-scalar run and a fast run of every
  // algorithm must serialize to the same bytes.
  const Scenario& s = GetParam();
  sim::ExperimentResult scalar_result, fast_result;
  {
    core::KernelDispatch::ScopedForce forced(core::KernelTier::kScalar);
    scalar_result = run_scenario(s, 1);
  }
  {
    core::KernelDispatch::ScopedForce forced(core::KernelTier::kFast);
    fast_result = run_scenario(s, 1);
  }
  expect_bit_identical(scalar_result, fast_result, "scalar vs fast tier");
  std::ostringstream a, b;
  sim::write_result_json(a, "determinism/tier", scalar_result,
                         /*include_wall=*/false);
  sim::write_result_json(b, "determinism/tier", fast_result,
                         /*include_wall=*/false);
  EXPECT_EQ(a.str(), b.str());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, DeterminismAcrossThreads,
    ::testing::Values(
        Scenario{"full_sharing", sim::Algorithm::kFullSharing},
        Scenario{"random_sampling", sim::Algorithm::kRandomSampling},
        Scenario{"jwins", sim::Algorithm::kJwins},
        Scenario{"choco_topk", sim::Algorithm::kChoco},
        Scenario{"choco_qsgd", sim::Algorithm::kChoco, /*choco_qsgd=*/true},
        Scenario{"power_gossip", sim::Algorithm::kPowerGossip},
        Scenario{"jwins_lossy_links", sim::Algorithm::kJwins,
                 /*choco_qsgd=*/false, /*drop_probability=*/0.15}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

// --- byzantine runs -------------------------------------------------------
//
// The determinism contract must survive the adversarial layer: corruption
// draws come from the same counter-based per-(seed, node, round) streams,
// and the robust aggregators are pure order statistics, so byzantine runs
// replay bit-identically across thread counts and on both engines.

struct ByzantineCase {
  const char* name;
  sim::Algorithm algorithm;
  algo::ByzantineMode mode;
  double scale;
  core::RobustAggKind defense;
};

sim::ExperimentResult run_byzantine(const ByzantineCase& s, unsigned threads,
                                    sim::EngineKind engine) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 23);
  sim::ExperimentConfig cfg;
  cfg.algorithm = s.algorithm;
  cfg.rounds = 6;
  cfg.local_steps = 2;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = 2;
  cfg.eval_sample_limit = 64;
  cfg.threads = threads;
  cfg.seed = 23;
  cfg.engine = engine;
  cfg.byzantine_nodes = 2;
  cfg.byzantine_mode = s.mode;
  cfg.byzantine_scale = s.scale;
  cfg.robust_agg.kind = s.defense;
  cfg.robust_agg.trim_fraction = 0.25;
  cfg.robust_agg.clip_norm = 0.5;
  std::mt19937 topo_rng(23);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 4, topo_rng)));
  return exp.run();
}

class ByzantineDeterminism
    : public ::testing::TestWithParam<ByzantineCase> {};

TEST_P(ByzantineDeterminism, ThreadedAndReplayMatchBitForBit) {
  const ByzantineCase& s = GetParam();
  const auto sequential = run_byzantine(s, 1, sim::EngineKind::kSync);
  const auto threaded = run_byzantine(s, 4, sim::EngineKind::kSync);
  const auto replay = run_byzantine(s, 4, sim::EngineKind::kSync);
  expect_bit_identical(sequential, threaded, "threads=1 vs threads=4");
  expect_bit_identical(threaded, replay, "threads=4 replay");
  EXPECT_EQ(sequential.byzantine.corrupted_messages,
            threaded.byzantine.corrupted_messages);
  EXPECT_EQ(sequential.byzantine.trimmed_entries,
            threaded.byzantine.trimmed_entries);
  EXPECT_EQ(sequential.byzantine.clipped_contributions,
            threaded.byzantine.clipped_contributions);
  std::ostringstream a, b;
  sim::write_result_json(a, "determinism/byzantine", sequential,
                         /*include_wall=*/false);
  sim::write_result_json(b, "determinism/byzantine", threaded,
                         /*include_wall=*/false);
  EXPECT_EQ(a.str(), b.str());
}

TEST_P(ByzantineDeterminism, EventEngineReplaysBitIdentically) {
  // Corruption happens inside share(), so the event engine sees exactly the
  // same wire bytes: barrier-mode async must reduce to the sync reference
  // under attack too, and replay bit-identically across thread counts.
  const ByzantineCase& s = GetParam();
  const auto sync = run_byzantine(s, 1, sim::EngineKind::kSync);
  const auto async_seq = run_byzantine(s, 1, sim::EngineKind::kAsync);
  const auto async_threaded = run_byzantine(s, 4, sim::EngineKind::kAsync);
  expect_bit_identical(sync, async_seq, "sync vs async barrier");
  expect_bit_identical(async_seq, async_threaded,
                       "async threads=1 vs threads=4");
  std::ostringstream a, b;
  sim::write_result_json(a, "determinism/byzantine", async_seq,
                         /*include_wall=*/false);
  sim::write_result_json(b, "determinism/byzantine", async_threaded,
                         /*include_wall=*/false);
  EXPECT_EQ(a.str(), b.str());
}

INSTANTIATE_TEST_SUITE_P(
    AttackAndDefenseMix, ByzantineDeterminism,
    ::testing::Values(
        ByzantineCase{"jwins_sign_flip_undefended", sim::Algorithm::kJwins,
                      algo::ByzantineMode::kSignFlip, 1.0,
                      core::RobustAggKind::kNone},
        ByzantineCase{"jwins_sign_flip_trimmed", sim::Algorithm::kJwins,
                      algo::ByzantineMode::kSignFlip, 1.0,
                      core::RobustAggKind::kTrimmedMean},
        ByzantineCase{"full_sharing_random_median",
                      sim::Algorithm::kFullSharing,
                      algo::ByzantineMode::kRandom, 1.0,
                      core::RobustAggKind::kMedian},
        ByzantineCase{"choco_scale_norm_clip", sim::Algorithm::kChoco,
                      algo::ByzantineMode::kScale, -10.0,
                      core::RobustAggKind::kNormClip},
        ByzantineCase{"power_gossip_sign_flip_norm_clip",
                      sim::Algorithm::kPowerGossip,
                      algo::ByzantineMode::kSignFlip, 1.0,
                      core::RobustAggKind::kNormClip}),
    [](const ::testing::TestParamInfo<ByzantineCase>& info) {
      return info.param.name;
    });

TEST(DeterminismAcrossSeeds, SeedChangesTheTrajectory) {
  // The per-node streams must actually depend on the experiment seed (the
  // old seed-offset engines ignored it for the cut-off draws, and
  // PowerGossip's shared-randomness base seed was a fixed constant).
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 23);
  auto run_with_seed = [&](sim::Algorithm algorithm, std::uint64_t seed) {
    sim::ExperimentConfig cfg;
    cfg.algorithm = algorithm;
    cfg.rounds = 4;
    cfg.eval_every = 4;
    cfg.eval_sample_limit = 32;
    cfg.seed = seed;
    std::mt19937 topo_rng(23);
    sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                        std::make_unique<graph::StaticTopology>(
                            graph::random_regular(n, 4, topo_rng)));
    return exp.run();
  };
  const auto a = run_with_seed(sim::Algorithm::kJwins, 1);
  const auto b = run_with_seed(sim::Algorithm::kJwins, 2);
  EXPECT_NE(a.mean_alpha, b.mean_alpha);
  const auto pg_a = run_with_seed(sim::Algorithm::kPowerGossip, 1);
  const auto pg_b = run_with_seed(sim::Algorithm::kPowerGossip, 2);
  EXPECT_NE(pg_a.final_loss, pg_b.final_loss);
}

// --- JSON report emitter --------------------------------------------------

TEST(JsonReport, SchemaShapeCoversSeriesTrafficAndWall) {
  const auto result = run_scenario({"jwins", sim::Algorithm::kJwins}, 1);
  std::ostringstream os;
  sim::write_result_json(os, "determinism/jwins", result);
  const std::string json = os.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  for (const char* key :
       {"\"label\"", "\"rounds_run\"", "\"sim_seconds\"", "\"final_accuracy\"",
        "\"final_loss\"", "\"reached_target\"", "\"mean_alpha\"",
        "\"traffic\"", "\"messages_sent\"", "\"bytes_sent\"",
        "\"payload_bytes_sent\"", "\"metadata_bytes_sent\"",
        "\"wall_seconds\"", "\"train\"", "\"share\"", "\"aggregate\"",
        "\"evaluate\"", "\"total\"", "\"series\"", "\"round\"",
        "\"test_accuracy\"", "\"test_loss\"", "\"train_loss\"",
        "\"avg_bytes_per_node\"", "\"avg_metadata_bytes_per_node\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // One series object per metric point.
  std::size_t rounds_seen = 0;
  for (std::size_t pos = json.find("\"round\":"); pos != std::string::npos;
       pos = json.find("\"round\":", pos + 1)) {
    ++rounds_seen;
  }
  EXPECT_EQ(rounds_seen, result.series.size());
  // Host wall timings are excludable (they are the one nondeterministic
  // block).
  std::ostringstream no_wall;
  sim::write_result_json(no_wall, "determinism/jwins", result,
                         /*include_wall=*/false);
  EXPECT_EQ(no_wall.str().find("wall_seconds"), std::string::npos);
}

TEST(JsonReport, BitIdenticalAcrossThreadCounts) {
  // The CLI's JSON output is part of the determinism contract: modulo the
  // wall_seconds block, threads=1 and threads=N must emit identical bytes.
  const Scenario s{"jwins", sim::Algorithm::kJwins};
  const auto sequential = run_scenario(s, 1);
  const auto threaded = run_scenario(s, 4);
  std::ostringstream a, b;
  sim::write_result_json(a, "determinism/jwins", sequential,
                         /*include_wall=*/false);
  sim::write_result_json(b, "determinism/jwins", threaded,
                         /*include_wall=*/false);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Determinism, WallTimingsArePopulated) {
  const auto result =
      run_scenario({"jwins", sim::Algorithm::kJwins}, /*threads=*/2);
  EXPECT_GT(result.wall.train_seconds, 0.0);
  EXPECT_GT(result.wall.share_seconds, 0.0);
  EXPECT_GT(result.wall.aggregate_seconds, 0.0);
  EXPECT_GT(result.wall.evaluate_seconds, 0.0);
  EXPECT_GE(result.wall.total_seconds,
            result.wall.train_seconds + result.wall.share_seconds +
                result.wall.aggregate_seconds + result.wall.evaluate_seconds);
}

}  // namespace
}  // namespace jwins

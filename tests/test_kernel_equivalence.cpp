// Bit-identity harness for the vectorized kernel tiers (ISSUE 9 tentpole).
//
// Every fast kernel in core::KernelDispatch's families — DWT analyze /
// synthesize, TopK bucket-select, blocked QSGD rounding, and the XOR float
// codec block encoder — promises *byte-identical* output to its pinned
// scalar reference. These tests compare the raw output bytes (not
// approximate values) across a size ladder that covers degenerate,
// non-power-of-two, and large inputs, plus adversarial all-equal/all-zero
// vectors and a 200-seed tie-heavy TopK sweep.
#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "compress/bitstream.hpp"
#include "compress/float_codec.hpp"
#include "compress/quantize.hpp"
#include "compress/topk.hpp"
#include "core/kernel_dispatch.hpp"
#include "dwt/dwt.hpp"
#include "dwt/wavelet.hpp"

namespace {

using namespace jwins;

// The ladder from ISSUE 9: degenerate (1..3), around the first vector width
// (15..17), non-power-of-two (255, 65537), and the bench sizes.
const std::vector<std::size_t> kSizes = {1,    2,    3,     15,   16,
                                         17,   255,  1024,  16384, 65537};

std::vector<float> random_values(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> out(n);
  for (float& v : out) v = dist(rng);
  return out;
}

// Adversarial variants: all-zero (degenerate norms, empty XOR residuals),
// all-equal (every TopK candidate tied), and alternating-sign equal
// magnitude (ties with sign churn). All NaN-free by construction.
std::vector<std::vector<float>> adversarial_inputs(std::size_t n,
                                                   unsigned seed) {
  std::vector<std::vector<float>> out;
  out.push_back(std::vector<float>(n, 0.0f));
  out.push_back(std::vector<float>(n, 1.5f));
  std::vector<float> alt(n);
  for (std::size_t i = 0; i < n; ++i) alt[i] = (i % 2 == 0) ? 0.25f : -0.25f;
  out.push_back(std::move(alt));
  out.push_back(random_values(n, seed));
  return out;
}

template <class T>
void expect_bytes_equal(const std::vector<T>& a, const std::vector<T>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T))) << what;
  }
}

// --- DWT ---------------------------------------------------------------

TEST(KernelEquivalence, DwtAnalyzeBitIdentical) {
  for (const auto& w : {dwt::haar(), dwt::sym2(), dwt::db4()}) {
    for (std::size_t raw : kSizes) {
      const std::size_t n = std::max<std::size_t>(2, raw & ~std::size_t{1});
      for (const auto& input : adversarial_inputs(n, 11)) {
        std::vector<float> a_s(n / 2), d_s(n / 2), a_f(n / 2), d_f(n / 2);
        dwt::analyze_level_scalar(w, input, a_s, d_s);
        dwt::analyze_level_fast(w, input, a_f, d_f);
        const std::string what = w.name + " n=" + std::to_string(n);
        expect_bytes_equal(a_s, a_f, "approx " + what);
        expect_bytes_equal(d_s, d_f, "detail " + what);
      }
    }
  }
}

TEST(KernelEquivalence, DwtSynthesizeBitIdentical) {
  for (const auto& w : {dwt::haar(), dwt::sym2(), dwt::db4()}) {
    for (std::size_t raw : kSizes) {
      const std::size_t n = std::max<std::size_t>(2, raw & ~std::size_t{1});
      for (const auto& input : adversarial_inputs(n, 13)) {
        // Use analysis coefficients as synthesis input so the data exercises
        // realistic dynamic range (any pair of half-length spans is legal).
        std::vector<float> approx(n / 2), detail(n / 2);
        dwt::analyze_level_scalar(w, input, approx, detail);
        std::vector<float> out_s(n), out_f(n);
        dwt::synthesize_level_scalar(w, approx, detail, out_s);
        dwt::synthesize_level_fast(w, approx, detail, out_f);
        expect_bytes_equal(out_s, out_f,
                           w.name + " n=" + std::to_string(n));
      }
    }
  }
}

// --- TopK --------------------------------------------------------------

TEST(KernelEquivalence, TopkIdenticalIndexSet) {
  for (std::size_t n : kSizes) {
    for (const auto& values : adversarial_inputs(n, 17)) {
      for (std::size_t k :
           {std::size_t{0}, std::size_t{1}, n / 10, n / 2, n - 1, n, n + 7}) {
        std::vector<std::uint32_t> idx_s, idx_f;
        compress::topk_indices_into_scalar(values, k, idx_s);
        compress::topk_indices_into_fast(values, k, idx_f);
        EXPECT_EQ(idx_s, idx_f) << "n=" << n << " k=" << k;
      }
    }
  }
}

// 200-seed randomized sweep over tie-heavy inputs: values drawn from a small
// discrete magnitude set so the boundary bucket is packed with exact ties.
// The fast path must return *exactly* the reference index set, which pins
// the shared tie rule (magnitude descending, index ascending).
TEST(KernelEquivalence, TopkTieBreak200SeedSweep) {
  const std::size_t n = 8192;  // above the bucket-select threshold
  for (unsigned seed = 0; seed < 200; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> mag(0, 4);
    std::uniform_int_distribution<int> sign(0, 1);
    std::vector<float> values(n);
    for (float& v : values) {
      v = static_cast<float>(mag(rng)) * 0.5f * (sign(rng) ? 1.0f : -1.0f);
    }
    const std::size_t k = n / 10 + (seed % 64);
    std::vector<std::uint32_t> idx_s, idx_f;
    compress::topk_indices_into_scalar(values, k, idx_s);
    compress::topk_indices_into_fast(values, k, idx_f);
    ASSERT_EQ(idx_s, idx_f) << "seed=" << seed;
  }
}

// --- QSGD --------------------------------------------------------------

TEST(KernelEquivalence, QsgdBitIdentical) {
  for (std::size_t n : kSizes) {
    for (const auto& values : adversarial_inputs(n, 23)) {
      for (std::uint32_t levels : {1u, 15u, 16u, 255u}) {
        std::mt19937_64 rng_s(99), rng_f(99);
        compress::QuantizedVector q_s, q_f;
        compress::qsgd_quantize_into_scalar(std::span<const float>(values),
                                            levels, rng_s, q_s);
        compress::qsgd_quantize_into_fast(std::span<const float>(values),
                                          levels, rng_f, q_f);
        ASSERT_EQ(q_s.norm, q_f.norm) << "n=" << n << " levels=" << levels;
        ASSERT_EQ(q_s.count, q_f.count);
        expect_bytes_equal(q_s.packed, q_f.packed,
                           "n=" + std::to_string(n) +
                               " levels=" + std::to_string(levels));
        // Both tiers must also have consumed the same number of draws.
        EXPECT_EQ(rng_s(), rng_f()) << "RNG streams diverged";
      }
    }
  }
}

// --- XOR float codec ---------------------------------------------------

TEST(KernelEquivalence, XorCodecBitIdentical) {
  for (std::size_t n : kSizes) {
    for (const auto& values : adversarial_inputs(n, 29)) {
      compress::BitWriter w_s, w_f;
      compress::compress_floats_scalar(values, w_s);
      compress::compress_floats_fast(values, w_f);
      ASSERT_EQ(w_s.bit_count(), w_f.bit_count()) << "n=" << n;
      const auto bytes_s = std::move(w_s).finish();
      const auto bytes_f = std::move(w_f).finish();
      expect_bytes_equal(bytes_s, bytes_f, "encode n=" + std::to_string(n));
      std::vector<float> dec_s, dec_f;
      compress::decompress_floats_into_scalar(bytes_s, n, dec_s);
      compress::decompress_floats_into_fast(bytes_s, n, dec_f);
      expect_bytes_equal(dec_s, dec_f, "decode n=" + std::to_string(n));
      expect_bytes_equal(dec_s, values, "roundtrip n=" + std::to_string(n));
    }
  }
}

// --- Dispatch plumbing -------------------------------------------------

TEST(KernelEquivalence, ScopedForceSelectsTier) {
  {
    core::KernelDispatch::ScopedForce forced(core::KernelTier::kScalar);
    EXPECT_EQ(core::KernelDispatch::tier(), core::KernelTier::kScalar);
    EXPECT_STREQ(core::KernelDispatch::tier_name(), "scalar");
    {
      core::KernelDispatch::ScopedForce nested(core::KernelTier::kFast);
      EXPECT_TRUE(core::KernelDispatch::fast());
    }
    EXPECT_FALSE(core::KernelDispatch::fast());
  }
  // Dispatched entry points honor the override: the same call under both
  // forces must agree (they run different code paths).
  const std::vector<float> values = random_values(5000, 31);
  std::vector<std::uint32_t> idx_scalar, idx_fast;
  {
    core::KernelDispatch::ScopedForce forced(core::KernelTier::kScalar);
    compress::topk_indices_into(values, 500, idx_scalar);
  }
  {
    core::KernelDispatch::ScopedForce forced(core::KernelTier::kFast);
    compress::topk_indices_into(values, 500, idx_fast);
  }
  EXPECT_EQ(idx_scalar, idx_fast);
}

}  // namespace

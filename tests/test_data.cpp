#include <gtest/gtest.h>

#include <set>

#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace jwins::data {
namespace {

// ---------------------------------------------------------------- images

SyntheticImages::Config small_images() {
  SyntheticImages::Config cfg;
  cfg.classes = 4;
  cfg.channels = 1;
  cfg.image_size = 4;
  cfg.samples = 256;
  cfg.noise = 0.3f;
  cfg.seed = 7;
  cfg.sample_seed = 70;
  return cfg;
}

TEST(SyntheticImages, DeterministicForSameSeeds) {
  const SyntheticImages a(small_images());
  const SyntheticImages b(small_images());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 17) {
    EXPECT_EQ(a.label_of(i), b.label_of(i));
    const auto pa = a.pixels(i), pb = b.pixels(i);
    for (std::size_t j = 0; j < pa.size(); ++j) EXPECT_EQ(pa[j], pb[j]);
  }
}

TEST(SyntheticImages, DifferentSampleSeedsShareDistribution) {
  // Same prototypes (seed), different draws (sample_seed): samples of the
  // same class across the two datasets must be much closer than samples of
  // different classes.
  auto cfg = small_images();
  const SyntheticImages train(cfg);
  cfg.sample_seed = 71;
  const SyntheticImages test(cfg);
  // Find one sample per class in each set.
  auto find_class = [](const SyntheticImages& ds, std::int32_t c) {
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (ds.label_of(i) == c) return i;
    }
    return std::size_t{0};
  };
  auto dist = [](std::span<const float> a, std::span<const float> b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      d += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return d;
  };
  const auto t0 = train.pixels(find_class(train, 0));
  const auto same = test.pixels(find_class(test, 0));
  const auto diff = test.pixels(find_class(test, 1));
  EXPECT_LT(dist(t0, same), dist(t0, diff));
}

TEST(SyntheticImages, BatchLayoutMatchesPixels) {
  const SyntheticImages ds(small_images());
  const std::vector<std::size_t> idx{3, 10};
  const nn::Batch batch = ds.make_batch(idx);
  EXPECT_EQ(batch.x.shape(), (tensor::Shape{2, 1, 4, 4}));
  EXPECT_EQ(batch.labels.size(), 2u);
  const auto px = ds.pixels(10);
  for (std::size_t j = 0; j < px.size(); ++j) {
    EXPECT_EQ(batch.x[16 + j], px[j]);
  }
  EXPECT_EQ(batch.labels[1], ds.label_of(10));
}

TEST(SyntheticImages, ClientsAssignedWhenConfigured) {
  auto cfg = small_images();
  cfg.clients = 8;
  cfg.client_style = 0.3f;
  const SyntheticImages ds(cfg);
  EXPECT_EQ(ds.client_count(), 8u);
  std::set<std::int32_t> seen;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto c = ds.client_of(i);
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 8);
    seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SyntheticImages, OutOfRangeThrows) {
  const SyntheticImages ds(small_images());
  const std::vector<std::size_t> idx{ds.size()};
  EXPECT_THROW(ds.make_batch(idx), std::out_of_range);
  EXPECT_THROW(ds.pixels(ds.size()), std::out_of_range);
}

// --------------------------------------------------------------- ratings

TEST(SyntheticRatings, RatingsInRangeAndMeanSane) {
  SyntheticRatings::Config cfg;
  cfg.users = 16;
  cfg.items = 32;
  cfg.ratings_per_user = 10;
  const SyntheticRatings ds(cfg);
  EXPECT_EQ(ds.size(), 160u);
  const nn::Batch b = full_batch(ds);
  for (std::size_t i = 0; i < b.y.size(); ++i) {
    EXPECT_GE(b.y[i], 1.0f);
    EXPECT_LE(b.y[i], 5.0f);
  }
  EXPECT_GT(ds.rating_mean(), 2.0f);
  EXPECT_LT(ds.rating_mean(), 4.0f);
}

TEST(SyntheticRatings, ClientIsUser) {
  SyntheticRatings::Config cfg;
  cfg.users = 4;
  cfg.items = 8;
  cfg.ratings_per_user = 3;
  const SyntheticRatings ds(cfg);
  const nn::Batch b = full_batch(ds);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.client_of(i), static_cast<std::int32_t>(b.x[i * 2]));
  }
}

// ------------------------------------------------------------------ text

TEST(SyntheticText, TokensWithinVocabAndShifted) {
  SyntheticText::Config cfg;
  cfg.vocab = 8;
  cfg.seq_len = 5;
  cfg.clients = 3;
  cfg.samples_per_client = 4;
  const SyntheticText ds(cfg);
  EXPECT_EQ(ds.size(), 12u);
  const std::vector<std::size_t> idx{0, 5};
  const nn::Batch b = ds.make_batch(idx);
  EXPECT_EQ(b.x.shape(), (tensor::Shape{2, 5}));
  EXPECT_EQ(b.labels.size(), 10u);
  for (std::size_t i = 0; i < b.x.size(); ++i) {
    EXPECT_GE(b.x[i], 0.0f);
    EXPECT_LT(b.x[i], 8.0f);
  }
  // Next-character structure: labels[t] == x[t+1] within each row.
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t t = 0; t + 1 < 5; ++t) {
      EXPECT_EQ(static_cast<float>(b.labels[r * 5 + t]), b.x[r * 5 + t + 1]);
    }
  }
}

TEST(SyntheticText, ClientStyleZeroMakesClientsStatisticallySimilar) {
  // With style 0 every client shares the base transition matrix; with style
  // 1 they are independent. Compare client-wise bigram histograms.
  auto bigram_distance = [](float style) {
    SyntheticText::Config cfg;
    cfg.vocab = 6;
    cfg.seq_len = 40;
    cfg.clients = 2;
    cfg.samples_per_client = 40;
    cfg.client_style = style;
    const SyntheticText ds(cfg);
    std::vector<std::vector<double>> hist(2, std::vector<double>(36, 0.0));
    for (std::size_t s = 0; s < ds.size(); ++s) {
      const nn::Batch b = ds.make_batch(std::vector<std::size_t>{s});
      const auto c = static_cast<std::size_t>(ds.client_of(s));
      for (std::size_t t = 0; t + 1 < 40; ++t) {
        const auto from = static_cast<std::size_t>(b.x[t]);
        const auto to = static_cast<std::size_t>(b.x[t + 1]);
        hist[c][from * 6 + to] += 1.0;
      }
    }
    for (auto& h : hist) {
      double total = 0.0;
      for (double v : h) total += v;
      for (double& v : h) v /= total;
    }
    double d = 0.0;
    for (std::size_t i = 0; i < 36; ++i) d += std::abs(hist[0][i] - hist[1][i]);
    return d;
  };
  EXPECT_LT(bigram_distance(0.0f), bigram_distance(1.0f));
}

// ------------------------------------------------------------- partitions

TEST(IidPartition, EqualSizesCoverAll) {
  const SyntheticImages ds(small_images());
  const Partition p = iid_partition(ds, 8, 1);
  EXPECT_EQ(p.size(), 8u);
  std::set<std::size_t> all;
  for (const auto& shard : p) {
    EXPECT_EQ(shard.size(), ds.size() / 8);
    all.insert(shard.begin(), shard.end());
  }
  EXPECT_EQ(all.size(), ds.size());
}

TEST(ShardPartition, LimitsClassesPerNode) {
  // 2 shards per node over label-sorted data -> each node sees <= 2*shards
  // label runs; with 2 shards that is at most 4 classes (paper §IV-B d).
  SyntheticImages::Config cfg = small_images();
  cfg.classes = 10;
  cfg.samples = 1000;
  const SyntheticImages ds(cfg);
  const Partition p = shard_partition(ds, 10, 2, 3);
  EXPECT_EQ(p.size(), 10u);
  for (const auto& shard : p) {
    EXPECT_LE(distinct_labels(ds, shard), 4u);
    EXPECT_FALSE(shard.empty());
  }
}

TEST(ShardPartition, CoversAllSamples) {
  const SyntheticImages ds(small_images());
  const Partition p = shard_partition(ds, 8, 2, 5);
  std::set<std::size_t> all;
  for (const auto& shard : p) all.insert(shard.begin(), shard.end());
  EXPECT_EQ(all.size(), ds.size());
}

TEST(ShardPartition, DifferentSeedsGiveDifferentDeals) {
  const SyntheticImages ds(small_images());
  const Partition a = shard_partition(ds, 8, 2, 1);
  const Partition b = shard_partition(ds, 8, 2, 2);
  EXPECT_NE(a[0], b[0]);
}

TEST(ClientPartition, KeepsClientsWhole) {
  SyntheticImages::Config cfg = small_images();
  cfg.clients = 16;
  const SyntheticImages ds(cfg);
  const Partition p = client_partition(ds, 4, 9);
  EXPECT_EQ(p.size(), 4u);
  // No client's samples may span two nodes.
  std::vector<int> owner(16, -1);
  for (std::size_t node = 0; node < 4; ++node) {
    for (std::size_t idx : p[node]) {
      const auto c = static_cast<std::size_t>(ds.client_of(idx));
      if (owner[c] == -1) owner[c] = static_cast<int>(node);
      EXPECT_EQ(owner[c], static_cast<int>(node));
    }
  }
}

TEST(ClientPartition, RequiresEnoughClients) {
  SyntheticImages::Config cfg = small_images();
  cfg.clients = 2;
  const SyntheticImages ds(cfg);
  EXPECT_THROW(client_partition(ds, 4, 1), std::invalid_argument);
}

TEST(ShardPartition, DatasetWithoutLabelsThrows) {
  SyntheticRatings::Config cfg;
  cfg.users = 4;
  cfg.items = 8;
  const SyntheticRatings ds(cfg);
  EXPECT_THROW(shard_partition(ds, 2, 2, 1), std::invalid_argument);
}

// --------------------------------------------------------------- sampler

TEST(Sampler, BatchesHaveRequestedSize) {
  const SyntheticImages ds(small_images());
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < 40; ++i) indices.push_back(i);
  Sampler sampler(ds, indices, 8, 123);
  EXPECT_EQ(sampler.batches_per_epoch(), 5u);
  for (int i = 0; i < 12; ++i) {  // crosses two epoch boundaries
    const nn::Batch b = sampler.next();
    EXPECT_EQ(b.size(), 8u);
  }
}

TEST(Sampler, CoversEveryIndexEachEpoch) {
  const SyntheticImages ds(small_images());
  std::vector<std::size_t> indices;
  for (std::size_t i = 100; i < 116; ++i) indices.push_back(i);
  Sampler sampler(ds, indices, 4, 5);
  // One epoch = 4 batches; collect the labels of returned samples by
  // matching against dataset pixels is overkill — instead check the sampler
  // returns exactly 16 samples per epoch (shuffled wrap happens at epoch
  // boundaries only).
  std::size_t count = 0;
  for (int i = 0; i < 4; ++i) count += sampler.next().size();
  EXPECT_EQ(count, 16u);
}

TEST(Sampler, EmptyIndexSetThrows) {
  const SyntheticImages ds(small_images());
  EXPECT_THROW(Sampler(ds, {}, 4, 1), std::invalid_argument);
}

TEST(FullBatch, RespectsLimit) {
  const SyntheticImages ds(small_images());
  EXPECT_EQ(full_batch(ds).size(), ds.size());
  EXPECT_EQ(full_batch(ds, 10).size(), 10u);
}

}  // namespace
}  // namespace jwins::data

#include <gtest/gtest.h>

#include <random>
#include <span>

#include "core/averaging.hpp"
#include "core/cutoff.hpp"
#include "core/ranker.hpp"
#include "core/sparse_payload.hpp"
#include "compress/topk.hpp"

namespace jwins::core {
namespace {

// ------------------------------------------------------------------ cutoff

TEST(RandomizedCutoff, PaperDefaultDistribution) {
  const RandomizedCutoff cutoff = RandomizedCutoff::paper_default();
  EXPECT_EQ(cutoff.alphas().size(), 7u);
  // E[alpha] = mean of {.1,.15,.2,.25,.3,.4,1.0} = 0.3428...
  EXPECT_NEAR(cutoff.expected_alpha(), 2.4 / 7.0, 1e-9);
}

TEST(RandomizedCutoff, SamplesMatchProbabilities) {
  const RandomizedCutoff cutoff = RandomizedCutoff::two_point(0.1, 0.1);
  std::mt19937_64 rng(3);
  std::size_t full = 0;
  const std::size_t trials = 20000;
  for (std::size_t i = 0; i < trials; ++i) {
    const double a = cutoff.sample(rng);
    EXPECT_TRUE(a == 0.1 || a == 1.0);
    if (a == 1.0) ++full;
  }
  EXPECT_NEAR(static_cast<double>(full) / trials, 0.1, 0.01);
}

TEST(RandomizedCutoff, TwoPointBudgets) {
  // The paper's 20% budget: p(100%)=0.1, p(10%)=0.9 -> E = 0.19.
  EXPECT_NEAR(RandomizedCutoff::two_point(0.10, 0.10).expected_alpha(), 0.19, 1e-12);
  // 10% budget: p(100%)=0.05, p(5%)=0.95 -> E = 0.0975.
  EXPECT_NEAR(RandomizedCutoff::two_point(0.05, 0.05).expected_alpha(), 0.0975, 1e-12);
}

TEST(RandomizedCutoff, FixedAlwaysReturnsAlpha) {
  const RandomizedCutoff cutoff = RandomizedCutoff::fixed(0.37);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(cutoff.sample(rng), 0.37);
}

TEST(RandomizedCutoff, ValidatesInputs) {
  EXPECT_THROW(RandomizedCutoff({}, {}), std::invalid_argument);
  EXPECT_THROW(RandomizedCutoff({0.5}, {0.9}), std::invalid_argument);     // sum != 1
  EXPECT_THROW(RandomizedCutoff({1.5}, {1.0}), std::invalid_argument);     // alpha > 1
  EXPECT_THROW(RandomizedCutoff({0.5, 0.6}, {1.0}), std::invalid_argument);
  EXPECT_THROW(RandomizedCutoff::two_point(0.1, 1.0), std::invalid_argument);
}

// ------------------------------------------------------------------ ranker

WaveletRanker::Options identity_options() {
  WaveletRanker::Options opt;
  opt.use_wavelet = false;
  return opt;
}

TEST(WaveletRanker, IdentityTransformAccumulates) {
  WaveletRanker ranker(4, identity_options());
  const std::vector<float> x0{0, 0, 0, 0};
  const std::vector<float> x1{1, -2, 0, 3};
  auto scores = ranker.accumulate_round_change(x0, x1);
  EXPECT_FLOAT_EQ(scores[0], 1.0f);
  EXPECT_FLOAT_EQ(scores[1], -2.0f);
  EXPECT_FLOAT_EQ(scores[3], 3.0f);
  // Second round accumulates on top (eq. 3).
  const std::vector<float> x2{2, -2, 0, 3};
  scores = ranker.accumulate_round_change(x1, x2);
  EXPECT_FLOAT_EQ(scores[0], 2.0f);
  EXPECT_FLOAT_EQ(scores[1], -2.0f);
}

TEST(WaveletRanker, NoAccumulationClearsEachRound) {
  auto opt = identity_options();
  opt.use_accumulation = false;
  WaveletRanker ranker(3, opt);
  ranker.accumulate_round_change(std::vector<float>{0, 0, 0}, std::vector<float>{5, 5, 5});
  const auto scores = ranker.accumulate_round_change(std::vector<float>{5, 5, 5}, std::vector<float>{6, 5, 5});
  EXPECT_FLOAT_EQ(scores[0], 1.0f);  // only this round's change
  EXPECT_FLOAT_EQ(scores[1], 0.0f);
}

TEST(WaveletRanker, FinishRoundResetsSentEntries) {
  WaveletRanker ranker(4, identity_options());
  ranker.accumulate_round_change(std::vector<float>{0, 0, 0, 0}, std::vector<float>{1, 2, 3, 4});
  // Suppose averaging leaves the model unchanged; entries 1 and 3 were sent.
  const std::vector<std::uint32_t> sent{1, 3};
  ranker.finish_round(std::vector<float>{1, 2, 3, 4}, std::vector<float>{1, 2, 3, 4}, sent);
  const auto scores = ranker.scores();
  EXPECT_FLOAT_EQ(scores[0], 1.0f);
  EXPECT_FLOAT_EQ(scores[1], 0.0f);  // reset
  EXPECT_FLOAT_EQ(scores[2], 3.0f);
  EXPECT_FLOAT_EQ(scores[3], 0.0f);  // reset
}

TEST(WaveletRanker, FinishRoundFoldsAveragingChange) {
  // Eq. (4): V_{t+1} = V_t + T(x^{t+1,0} - x^{t,0}) (then resets). With the
  // identity transform this is directly checkable.
  WaveletRanker ranker(2, identity_options());
  ranker.accumulate_round_change(std::vector<float>{0, 0}, std::vector<float>{1, 1});  // V' = (1, 1)
  ranker.finish_round(std::vector<float>{1, 1}, std::vector<float>{1.5, 0.5}, {});  // + (0.5, -0.5)
  const auto scores = ranker.scores();
  EXPECT_FLOAT_EQ(scores[0], 1.5f);
  EXPECT_FLOAT_EQ(scores[1], 0.5f);
}

TEST(WaveletRanker, WaveletModeUsesTransformDomain) {
  WaveletRanker::Options opt;  // defaults: sym2, 4 levels, wavelet on
  WaveletRanker ranker(64, opt);
  EXPECT_EQ(ranker.coeff_length(), 64u);
  std::vector<float> x0(64, 0.0f), x1(64, 1.0f);
  const auto scores = ranker.accumulate_round_change(x0, x1);
  // Constant change -> only approximation-band coefficients are non-zero.
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < 4; ++i) head += std::abs(scores[i]);
  for (std::size_t i = 4; i < 64; ++i) tail += std::abs(scores[i]);
  EXPECT_GT(head, 1.0);
  EXPECT_NEAR(tail, 0.0, 1e-4);
}

TEST(WaveletRanker, TransformInverseRoundTrip) {
  WaveletRanker::Options opt;
  WaveletRanker ranker(100, opt);
  std::mt19937 rng(5);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> x(100);
  for (float& v : x) v = dist(rng);
  const auto coeffs = ranker.transform(x);
  const auto back = ranker.inverse(coeffs);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-4f);
}

TEST(WaveletRanker, SizeMismatchThrows) {
  WaveletRanker ranker(8, identity_options());
  const std::vector<float> wrong(5, 0.0f);
  const std::vector<float> right(8, 0.0f);
  EXPECT_THROW(ranker.accumulate_round_change(wrong, right), std::invalid_argument);
  EXPECT_THROW(ranker.transform(wrong), std::invalid_argument);
  EXPECT_THROW(ranker.finish_round(wrong, right, {}), std::invalid_argument);
}

// ----------------------------------------------------------------- payload

struct PayloadCase {
  IndexEncoding index_mode;
  ValueEncoding value_mode;
};

class PayloadParam : public ::testing::TestWithParam<PayloadCase> {};

TEST_P(PayloadParam, EncodeDecodeRoundTrip) {
  const auto [index_mode, value_mode] = GetParam();
  SparsePayload payload;
  payload.vector_length = 1000;
  PayloadOptions options;
  options.index_encoding = index_mode;
  options.value_encoding = value_mode;
  std::mt19937 rng(9);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  if (index_mode == IndexEncoding::kDense) {
    payload.values.resize(1000);
    for (float& v : payload.values) v = dist(rng);
  } else if (index_mode == IndexEncoding::kSeed) {
    options.seed = 424242;
    payload.indices = compress::random_indices(1000, 100, options.seed);
    payload.values = std::vector<float>(100);
    for (float& v : payload.values) v = dist(rng);
  } else {
    payload.indices = compress::random_indices(1000, 100, 7);
    payload.values = std::vector<float>(100);
    for (float& v : payload.values) v = dist(rng);
  }

  const EncodedPayload encoded = encode_payload(payload, options);
  EXPECT_GT(encoded.metadata_bytes, 0u);
  EXPECT_LT(encoded.metadata_bytes, encoded.body.size());
  const SparsePayload back = decode_payload(encoded.body);
  EXPECT_EQ(back.vector_length, payload.vector_length);
  EXPECT_EQ(back.values, payload.values);
  if (index_mode == IndexEncoding::kDense) {
    EXPECT_TRUE(back.dense());
  } else {
    EXPECT_EQ(back.indices, payload.indices);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PayloadParam,
    ::testing::Values(PayloadCase{IndexEncoding::kDense, ValueEncoding::kRaw},
                      PayloadCase{IndexEncoding::kDense, ValueEncoding::kXorCodec},
                      PayloadCase{IndexEncoding::kEliasGamma, ValueEncoding::kRaw},
                      PayloadCase{IndexEncoding::kEliasGamma, ValueEncoding::kXorCodec},
                      PayloadCase{IndexEncoding::kRaw, ValueEncoding::kRaw},
                      PayloadCase{IndexEncoding::kRaw, ValueEncoding::kXorCodec},
                      PayloadCase{IndexEncoding::kSeed, ValueEncoding::kRaw},
                      PayloadCase{IndexEncoding::kSeed, ValueEncoding::kXorCodec}));

TEST(Payload, EliasMetadataMuchSmallerThanRaw) {
  SparsePayload payload;
  payload.vector_length = 100000;
  payload.indices = compress::random_indices(100000, 30000, 3);
  payload.values.assign(30000, 1.0f);
  PayloadOptions elias;
  elias.index_encoding = IndexEncoding::kEliasGamma;
  elias.value_encoding = ValueEncoding::kRaw;
  PayloadOptions raw = elias;
  raw.index_encoding = IndexEncoding::kRaw;
  const auto e = encode_payload(payload, elias);
  const auto r = encode_payload(payload, raw);
  // Figure 9: Elias gamma shrinks the metadata by roughly an order of
  // magnitude relative to 4-byte raw indices for dense-ish selections.
  EXPECT_LT(e.metadata_bytes * 5, r.metadata_bytes);
}

TEST(Payload, SeedMetadataIsConstantSize) {
  SparsePayload payload;
  payload.vector_length = 50000;
  PayloadOptions options;
  options.index_encoding = IndexEncoding::kSeed;
  options.seed = 99;
  options.value_encoding = ValueEncoding::kRaw;
  payload.indices = compress::random_indices(50000, 10000, 99);
  payload.values.assign(10000, 0.5f);
  const auto encoded = encode_payload(payload, options);
  // header (2 + 4 + 4) + seed (8) = 18 bytes of metadata regardless of k.
  EXPECT_EQ(encoded.metadata_bytes, 18u);
}

TEST(Payload, MalformedDenseThrows) {
  SparsePayload payload;
  payload.vector_length = 10;
  payload.values.assign(5, 1.0f);  // wrong size for dense
  PayloadOptions options;
  options.index_encoding = IndexEncoding::kDense;
  EXPECT_THROW(encode_payload(payload, options), std::invalid_argument);
}

TEST(Payload, TruncatedBodyThrows) {
  SparsePayload payload;
  payload.vector_length = 10;
  payload.indices = {1, 5};
  payload.values = {1.0f, 2.0f};
  const auto encoded = encode_payload(payload, {});
  std::vector<std::uint8_t> cut(encoded.body.begin(), encoded.body.end() - 3);
  EXPECT_THROW(decode_payload(cut), std::exception);
}

TEST(Payload, MakeMessageWiresAccounting) {
  SparsePayload payload;
  payload.vector_length = 100;
  payload.indices = compress::random_indices(100, 10, 1);
  payload.values.assign(10, 2.0f);
  const net::Message msg = make_message(3, 7, payload, {});
  EXPECT_EQ(msg.sender, 3u);
  EXPECT_EQ(msg.round, 7u);
  EXPECT_GT(msg.metadata_bytes, 0u);
  EXPECT_GT(msg.payload_bytes(), 0u);
  EXPECT_EQ(msg.body.size(), msg.metadata_bytes + msg.payload_bytes());
}

// --------------------------------------------------------------- averaging

TEST(PartialAverage, DenseReducesToWeightedMean) {
  std::vector<float> own{1.0f, 1.0f};
  SparsePayload p1;
  p1.vector_length = 2;
  p1.values = {3.0f, 5.0f};
  SparsePayload p2;
  p2.vector_length = 2;
  p2.values = {7.0f, 9.0f};
  const std::vector<WeightedContribution> contribs{{0.25, &p1}, {0.25, &p2}};
  partial_average(own, 0.5, contribs);
  EXPECT_FLOAT_EQ(own[0], 0.5f * 1 + 0.25f * 3 + 0.25f * 7);
  EXPECT_FLOAT_EQ(own[1], 0.5f * 1 + 0.25f * 5 + 0.25f * 9);
}

TEST(PartialAverage, MissingCoordinatesKeepOwnValue) {
  std::vector<float> own{1.0f, 2.0f, 3.0f};
  SparsePayload p;
  p.vector_length = 3;
  p.indices = {1};
  p.values = {10.0f};
  const std::vector<WeightedContribution> contribs{{0.5, &p}};
  partial_average(own, 0.5, contribs);
  EXPECT_FLOAT_EQ(own[0], 1.0f);  // nobody contributed -> unchanged
  EXPECT_FLOAT_EQ(own[1], 6.0f);  // (0.5*2 + 0.5*10) / 1.0
  EXPECT_FLOAT_EQ(own[2], 3.0f);
}

TEST(PartialAverage, RenormalizesOverContributors) {
  // Two sparse neighbors overlap on index 0 only.
  std::vector<float> own{0.0f, 0.0f};
  SparsePayload p1;
  p1.vector_length = 2;
  p1.indices = {0};
  p1.values = {6.0f};
  SparsePayload p2;
  p2.vector_length = 2;
  p2.indices = {0, 1};
  p2.values = {12.0f, 4.0f};
  const std::vector<WeightedContribution> contribs{{0.25, &p1}, {0.25, &p2}};
  partial_average(own, 0.5, contribs);
  // idx0: (0.5*0 + 0.25*6 + 0.25*12) / 1.0 = 4.5
  EXPECT_FLOAT_EQ(own[0], 4.5f);
  // idx1: (0.5*0 + 0.25*4) / 0.75 = 4/3
  EXPECT_NEAR(own[1], 4.0f / 3.0f, 1e-5f);
}

TEST(PartialAverage, ConvexityBound) {
  // The averaged value never escapes [min, max] of the contributions.
  std::mt19937 rng(12);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> own(50);
  for (float& v : own) v = dist(rng);
  SparsePayload p;
  p.vector_length = 50;
  p.indices = compress::random_indices(50, 20, 5);
  p.values.resize(20);
  for (float& v : p.values) v = dist(rng);
  std::vector<float> before = own;
  const std::vector<WeightedContribution> contribs{{0.5, &p}};
  partial_average(own, 0.5, contribs);
  for (std::size_t i = 0; i < p.indices.size(); ++i) {
    const std::size_t idx = p.indices[i];
    const float lo = std::min(before[idx], p.values[i]);
    const float hi = std::max(before[idx], p.values[i]);
    EXPECT_GE(own[idx], lo - 1e-5f);
    EXPECT_LE(own[idx], hi + 1e-5f);
  }
}

TEST(PartialAverage, ValidatesInputs) {
  std::vector<float> own{1.0f};
  SparsePayload wrong_len;
  wrong_len.vector_length = 7;
  wrong_len.values = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<WeightedContribution> c1{{0.5, &wrong_len}};
  EXPECT_THROW(partial_average(own, 0.5, c1), std::invalid_argument);
  const std::vector<WeightedContribution> c2{{0.5, nullptr}};
  EXPECT_THROW(partial_average(own, 0.5, c2), std::invalid_argument);
  SparsePayload bad_idx;
  bad_idx.vector_length = 1;
  bad_idx.indices = {9};
  bad_idx.values = {1.0f};
  const std::vector<WeightedContribution> c3{{0.5, &bad_idx}};
  EXPECT_THROW(partial_average(own, 0.5, c3), std::out_of_range);
}

TEST(PartialAverageScaled, ScaleEqualsReweighting) {
  // Scaling a contribution by s is exactly the same convex combination as
  // shrinking its mixing weight to s * w (numerator AND denominator).
  std::vector<float> scaled_own{1.0f, 2.0f};
  std::vector<float> reweighted_own = scaled_own;
  SparsePayload p;
  p.vector_length = 2;
  p.values = {9.0f, 5.0f};
  const std::vector<WeightedContribution> contribs{{0.4, &p}};
  const std::vector<double> scales{0.5};
  partial_average(scaled_own, 0.6, contribs,
                  std::span<const double>(scales));
  const std::vector<WeightedContribution> shrunk{{0.4 * 0.5, &p}};
  partial_average(reweighted_own, 0.6, shrunk);
  EXPECT_EQ(scaled_own, reweighted_own);
}

TEST(PartialAverageScaled, StaysConvexAndRenormalized) {
  // With scales < 1 the effective weights no longer sum to 1, but the
  // per-coordinate denominator renormalizes: the result is still a convex
  // combination of own value and contributions.
  std::vector<float> own{0.0f};
  SparsePayload p1;
  p1.vector_length = 1;
  p1.values = {10.0f};
  SparsePayload p2;
  p2.vector_length = 1;
  p2.values = {20.0f};
  const std::vector<WeightedContribution> contribs{{0.25, &p1}, {0.25, &p2}};
  const std::vector<double> scales{0.5, 0.25};
  partial_average(own, 0.5, contribs, std::span<const double>(scales));
  // (0.5*0 + 0.125*10 + 0.0625*20) / (0.5 + 0.125 + 0.0625) = 2.5/0.6875
  EXPECT_NEAR(own[0], 2.5f / 0.6875f, 1e-5f);
  EXPECT_GE(own[0], 0.0f);
  EXPECT_LE(own[0], 20.0f);
}

TEST(PartialAverageScaled, AllOnesIsBitIdenticalToLegacy) {
  // scale == 1.0 multiplies by exactly 1.0 in IEEE arithmetic, so the
  // scaled overload with unit scales must produce the same bytes as the
  // legacy overload — the guarantee the weighted async mode's lambda = 1
  // reduction rests on.
  std::mt19937 rng(77);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> a(64), b;
  for (float& v : a) v = dist(rng);
  b = a;
  SparsePayload p;
  p.vector_length = 64;
  p.indices = compress::random_indices(64, 32, 9);
  p.values.resize(32);
  for (float& v : p.values) v = dist(rng);
  const std::vector<WeightedContribution> contribs{{0.37, &p}};
  const std::vector<double> ones{1.0};
  partial_average(a, 0.63, contribs, std::span<const double>(ones));
  partial_average(b, 0.63, contribs);
  EXPECT_EQ(a, b);
}

TEST(PartialAverageScaled, ScaleCountMismatchThrows) {
  std::vector<float> own{1.0f};
  SparsePayload p;
  p.vector_length = 1;
  p.values = {2.0f};
  const std::vector<WeightedContribution> contribs{{0.5, &p}};
  const std::vector<double> scales{0.5, 0.5};  // two scales, one contribution
  EXPECT_THROW(
      partial_average(own, 0.5, contribs, std::span<const double>(scales)),
      std::invalid_argument);
}

}  // namespace
}  // namespace jwins::core

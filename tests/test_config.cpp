// Scenario engine tests: parser round-trips, every diagnostic path, sweep
// expansion count/order, runner wiring, the golden-file check that a
// paper-figure scenario reproduces the hand-wired bench it replaced bit for
// bit, and the docs contract (every key the parser accepts is documented in
// docs/EXPERIMENTS.md).
#include "config/runner.hpp"
#include "config/scenario.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/workloads.hpp"

namespace jwins::config {
namespace {

std::vector<ScenarioRun> expand(const std::string& text) {
  return expand_grid(parse_scenario_text(text));
}

/// Runs text through parse+expand and returns the diagnostic ("" = valid).
std::string expand_error(const std::string& text) {
  try {
    expand(text);
  } catch (const ScenarioError& e) {
    return e.what();
  }
  return {};
}

void expect_error_contains(const std::string& text, const std::string& what) {
  const std::string message = expand_error(text);
  EXPECT_NE(message.find(what), std::string::npos)
      << "spec:\n" << text << "\ndiagnostic: " << message;
}

TEST(ScenarioParse, DefaultsMatchTheDocumentedTable) {
  const auto runs = expand("");
  ASSERT_EQ(runs.size(), 1u);
  const ScenarioRun& run = runs.front();
  EXPECT_EQ(run.label, "run");
  EXPECT_EQ(run.workload, "cifar");
  EXPECT_EQ(run.nodes, 16u);
  EXPECT_DOUBLE_EQ(run.scale, 1.0);
  EXPECT_EQ(run.topology, "regular");
  EXPECT_EQ(run.topology_degree, 0u);
  EXPECT_EQ(run.churn_every, 0u);
  EXPECT_TRUE(run.auto_learning_rate);
  EXPECT_TRUE(run.auto_local_steps);
  EXPECT_EQ(run.config.algorithm, sim::Algorithm::kJwins);
  EXPECT_EQ(run.config.rounds, 100u);
  EXPECT_EQ(run.config.eval_every, 10u);
  EXPECT_EQ(run.config.eval_sample_limit, 512u);
  EXPECT_EQ(run.config.eval_node_limit, 0u);
  EXPECT_EQ(run.config.threads, 0u);  // scenario default: all hardware threads
  EXPECT_EQ(run.config.seed, 1u);
  EXPECT_LT(run.config.target_accuracy, 0.0);  // off
  EXPECT_DOUBLE_EQ(run.config.link.bandwidth_bytes_per_sec, 12.5e6);
  EXPECT_DOUBLE_EQ(run.config.link.latency_sec, 2e-3);
}

TEST(ScenarioParse, RoundTripsValuesCommentsAndWhitespace) {
  const auto runs = expand(
      "# full-line comment\n"
      "  workload = femnist   ; trailing comment\n"
      "\n"
      "nodes=8\n"
      "algorithm\t=\tchoco\n"
      "rounds = 7\n"
      "seed = 99\n"
      "learning_rate = 0.125\n"
      "local_steps = 3\n"
      "choco_compressor = qsgd\n"
      "jwins_cutoff = two-point:0.05:0.1\n"
      "bandwidth_mbit = 10\n"
      "latency_ms = 20\n"
      "threads = 2\n");
  ASSERT_EQ(runs.size(), 1u);
  const ScenarioRun& run = runs.front();
  EXPECT_EQ(run.workload, "femnist");
  EXPECT_EQ(run.nodes, 8u);
  EXPECT_EQ(run.config.algorithm, sim::Algorithm::kChoco);
  EXPECT_EQ(run.config.rounds, 7u);
  EXPECT_EQ(run.config.seed, 99u);
  EXPECT_FALSE(run.auto_learning_rate);
  EXPECT_FLOAT_EQ(run.config.sgd.learning_rate, 0.125f);
  EXPECT_FALSE(run.auto_local_steps);
  EXPECT_EQ(run.config.local_steps, 3u);
  EXPECT_EQ(run.config.choco.compressor, algo::ChocoNode::Compressor::kQsgd);
  // two-point:0.05:0.1 -> E[alpha] = 0.1 + 0.9 * 0.05
  EXPECT_NEAR(run.config.jwins.cutoff.expected_alpha(), 0.145, 1e-12);
  EXPECT_DOUBLE_EQ(run.config.link.bandwidth_bytes_per_sec, 10e6 / 8.0);
  EXPECT_DOUBLE_EQ(run.config.link.latency_sec, 0.020);
  EXPECT_EQ(run.config.threads, 2u);
}

TEST(ScenarioParse, AsyncModeAndDecayKeys) {
  const auto runs = expand(
      "engine = async\nasync_mode = weighted\nstaleness_decay = 0.6\n");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs.front().config.engine, sim::EngineKind::kAsync);
  EXPECT_EQ(runs.front().config.async_mode, sim::AsyncMode::kWeighted);
  EXPECT_DOUBLE_EQ(runs.front().config.staleness_decay, 0.6);
  const auto defaults = expand("");
  EXPECT_EQ(defaults.front().config.async_mode, sim::AsyncMode::kBarrier);
  EXPECT_EQ(expand("engine = async\nasync_mode = free\n")
                .front()
                .config.async_mode,
            sim::AsyncMode::kFree);
  expect_error_contains("async_mode = sometimes\n", "async_mode");
  expect_error_contains("staleness_decay = 0\n", "staleness_decay");
  expect_error_contains("staleness_decay = 1.5\n", "staleness_decay");
}

TEST(ScenarioParse, ByzantineAndRobustAggKeys) {
  const auto runs = expand(
      "byzantine_nodes = 2\nbyzantine_mode = scale:-3.5\n"
      "robust_agg = trimmed_mean:0.25\n");
  ASSERT_EQ(runs.size(), 1u);
  const sim::ExperimentConfig& cfg = runs.front().config;
  EXPECT_EQ(cfg.byzantine_nodes, 2u);
  EXPECT_EQ(cfg.byzantine_mode, algo::ByzantineMode::kScale);
  EXPECT_DOUBLE_EQ(cfg.byzantine_scale, -3.5);
  EXPECT_EQ(cfg.robust_agg.kind, core::RobustAggKind::kTrimmedMean);
  EXPECT_DOUBLE_EQ(cfg.robust_agg.trim_fraction, 0.25);
  EXPECT_EQ(expand("byzantine_mode = random\n").front().config.byzantine_mode,
            algo::ByzantineMode::kRandom);
  EXPECT_EQ(
      expand("byzantine_mode = sign_flip\n").front().config.byzantine_mode,
      algo::ByzantineMode::kSignFlip);
  EXPECT_EQ(expand("robust_agg = median\n").front().config.robust_agg.kind,
            core::RobustAggKind::kMedian);
  const core::RobustAggConfig clip =
      expand("robust_agg = norm_clip:2.5\n").front().config.robust_agg;
  EXPECT_EQ(clip.kind, core::RobustAggKind::kNormClip);
  EXPECT_DOUBLE_EQ(clip.clip_norm, 2.5);
  const sim::ExperimentConfig defaults = expand("").front().config;
  EXPECT_EQ(defaults.byzantine_nodes, 0u);
  EXPECT_EQ(defaults.byzantine_mode, algo::ByzantineMode::kSignFlip);
  EXPECT_EQ(defaults.robust_agg.kind, core::RobustAggKind::kNone);
}

TEST(ScenarioParse, NameKeyAndFileStemNaming) {
  RawScenario raw = parse_scenario_text("name = my_exp\nrounds = 3\n", "stem");
  EXPECT_EQ(raw.name, "my_exp");
  raw = parse_scenario_text("rounds = 3\n", "stem");
  EXPECT_EQ(raw.name, "stem");
}

TEST(ScenarioParse, SetValueOverridesAndAppends) {
  RawScenario raw = parse_scenario_text("rounds = 3\n");
  set_value(raw, "rounds", "9");
  set_value(raw, "workload", "celeba");
  const auto runs = expand_grid(raw);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs.front().config.rounds, 9u);
  EXPECT_EQ(runs.front().workload, "celeba");
  // A --set override may itself introduce a sweep.
  set_value(raw, "seed", "1, 2");
  EXPECT_EQ(expand_grid(raw).size(), 2u);
}

// --- diagnostics: every error path answers with "<key>: <why>" ------------

TEST(ScenarioDiagnostics, UnknownKey) {
  expect_error_contains("bogus = 1\n", "bogus: unknown key");
}

TEST(ScenarioDiagnostics, BadEnums) {
  expect_error_contains("algorithm = sgd\n", "algorithm: unknown value");
  expect_error_contains("workload = imagenet\n", "workload: unknown value");
  expect_error_contains("topology = star\n", "topology: unknown value");
  expect_error_contains("jwins_wavelet = sym9\n", "jwins_wavelet: unknown value");
  expect_error_contains("choco_compressor = topj\n",
                        "choco_compressor: unknown value");
  expect_error_contains("index_encoding = gzip\n",
                        "index_encoding: unknown value");
  expect_error_contains("value_encoding = lz4\n",
                        "value_encoding: unknown value");
}

TEST(ScenarioDiagnostics, MalformedNumbers) {
  expect_error_contains("nodes = abc\n", "nodes: \"abc\" is not an unsigned");
  expect_error_contains("rounds = -3\n", "rounds: \"-3\" is not an unsigned");
  expect_error_contains("rounds = 5x\n", "rounds: \"5x\" is not an unsigned");
  expect_error_contains("scale = tiny\n", "scale: \"tiny\" is not a finite");
  expect_error_contains("jwins_use_wavelet = yep\n",
                        "jwins_use_wavelet: \"yep\" is not a bool");
}

TEST(ScenarioDiagnostics, OutOfRangeValues) {
  expect_error_contains("nodes = 1\n", "nodes: must be >= 2");
  expect_error_contains("rounds = 0\n", "rounds: must be >= 1");
  expect_error_contains("eval_every = 0\n", "eval_every: must be >= 1");
  expect_error_contains("eval_sample_limit = 0\n",
                        "eval_sample_limit: must be >= 1");
  expect_error_contains("lr_decay_factor = 0\n",
                        "lr_decay_factor: must be in (0, 1]");
  expect_error_contains("target_accuracy = 1.5\n",
                        "target_accuracy: must be in (0, 1]");
  expect_error_contains("message_drop_probability = 1\n",
                        "message_drop_probability: must be in [0, 1)");
  expect_error_contains("momentum = 1\n", "momentum: must be in [0, 1)");
  expect_error_contains("learning_rate = 0\n", "learning_rate: must be in");
  expect_error_contains("choco_fraction = 1.2\n",
                        "choco_fraction: must be in (0, 1]");
  expect_error_contains("random_sampling_fraction = 0\n",
                        "random_sampling_fraction: must be in (0, 1]");
}

TEST(ScenarioDiagnostics, CutoffSpecGrammar) {
  expect_error_contains("jwins_cutoff = pareto\n",
                        "jwins_cutoff: unknown cutoff");
  expect_error_contains("jwins_cutoff = two-point:0.5\n", "two fields");
  expect_error_contains("jwins_cutoff = fixed:1.5\n", "(0, 1]");
  expect_error_contains("jwins_cutoff = fixed:0\n", "(0, 1]");
}

TEST(ScenarioDiagnostics, ByzantineAndRobustAggGrammar) {
  expect_error_contains("byzantine_nodes = -1\n",
                        "byzantine_nodes: \"-1\" is not an unsigned");
  expect_error_contains("byzantine_mode = gaussian\n",
                        "byzantine_mode: unknown attack mode");
  expect_error_contains("byzantine_mode = scale:\n",
                        "byzantine_mode: scale:<k> multiplier must be a "
                        "finite number");
  expect_error_contains("byzantine_mode = scale:big\n",
                        "byzantine_mode: scale:<k> multiplier");
  expect_error_contains("byzantine_mode = scale:inf\n",
                        "byzantine_mode: scale:<k> multiplier");
  expect_error_contains("robust_agg = krum\n",
                        "robust_agg: unknown robust rule");
  expect_error_contains("robust_agg = trimmed_mean:0.5\n", "[0, 0.5)");
  expect_error_contains("robust_agg = trimmed_mean:-0.1\n", "[0, 0.5)");
  expect_error_contains("robust_agg = trimmed_mean:lots\n", "[0, 0.5)");
  expect_error_contains("robust_agg = norm_clip:0\n",
                        "robust_agg: norm_clip:<c> clip norm must be > 0");
  expect_error_contains("robust_agg = norm_clip:-1\n",
                        "norm_clip:<c> clip norm must be > 0");
}

TEST(ScenarioDiagnostics, ByzantineCrossFieldRules) {
  expect_error_contains("nodes = 8\nbyzantine_nodes = 8\n",
                        "byzantine_nodes: must leave at least one honest");
  expect_error_contains("nodes = 8\nbyzantine_nodes = 12\n",
                        "byzantine_nodes: must leave at least one honest");
  expect_error_contains(
      "algorithm = power-gossip\nrobust_agg = median\n",
      "robust_agg: trimmed_mean/median are undefined for power-gossip");
  expect_error_contains(
      "algorithm = power-gossip\nrobust_agg = trimmed_mean:0.2\n",
      "use none or norm_clip");
  // norm_clip and none stay valid on power-gossip.
  EXPECT_EQ(
      expand_error("algorithm = power-gossip\nrobust_agg = norm_clip:1\n"),
      "");
}

TEST(ScenarioDiagnostics, SyntaxErrors) {
  expect_error_contains("[sim]\n", "line 1: sections are not supported");
  expect_error_contains("rounds 5\n", "line 1: expected `key = value`");
  expect_error_contains("= 5\n", "line 1: empty key");
  expect_error_contains("rounds = 5\nrounds = 6\n", "duplicate key \"rounds\"");
  expect_error_contains("algorithm = jwins,,choco\n", "empty value");
  expect_error_contains("name = a, b\n", "name: is not sweepable");
}

TEST(ScenarioDiagnostics, CrossFieldTopologyRules) {
  // 7 is prime: no rows x cols factorization with both >= 2.
  expect_error_contains("topology = torus\nnodes = 7\n",
                        "nodes: torus requires a composite");
  expect_error_contains("topology = ring\ntopology_degree = 3\n",
                        "topology_degree: ring requires an even degree");
  expect_error_contains("topology = full\nchurn_every = 1\n",
                        "churn_every: churn");
  // nodes=5, auto degree 3 -> nodes*degree odd.
  expect_error_contains("nodes = 5\n", "topology: random regular requires");
}

TEST(ScenarioDiagnostics, MissingFile) {
  EXPECT_THROW(load_scenario_file("/nonexistent/x.scenario"), ScenarioError);
}

// --- sweep expansion ------------------------------------------------------

TEST(ScenarioSweep, CountAndOdometerOrder) {
  const auto runs = expand(
      "algorithm = jwins, choco\n"
      "seed = 1, 2, 3\n");
  ASSERT_EQ(runs.size(), 6u);
  // File order with the last-listed key fastest: algorithm is the slow
  // axis, seed the fast one.
  const char* expected[] = {
      "algorithm=jwins,seed=1", "algorithm=jwins,seed=2",
      "algorithm=jwins,seed=3", "algorithm=choco,seed=1",
      "algorithm=choco,seed=2", "algorithm=choco,seed=3"};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    EXPECT_EQ(runs[i].label, expected[i]);
  }
  EXPECT_EQ(runs[0].config.algorithm, sim::Algorithm::kJwins);
  EXPECT_EQ(runs[0].config.seed, 1u);
  EXPECT_EQ(runs[5].config.algorithm, sim::Algorithm::kChoco);
  EXPECT_EQ(runs[5].config.seed, 3u);
}

TEST(ScenarioSweep, NonSweptKeysApplyToEveryCell) {
  const auto runs = expand(
      "rounds = 12\n"
      "workload = celeba, femnist\n");
  ASSERT_EQ(runs.size(), 2u);
  for (const ScenarioRun& run : runs) EXPECT_EQ(run.config.rounds, 12u);
  EXPECT_EQ(runs[0].workload, "celeba");
  EXPECT_EQ(runs[1].workload, "femnist");
}

TEST(ScenarioSweep, GridCapIsEnforced) {
  std::string seeds = "seed = 0";
  for (int i = 1; i < 70; ++i) seeds += ", " + std::to_string(i);
  const std::string text = seeds + "\nrounds = 1, 2\nnodes = 4, 8, 12, 16\n" +
                           "eval_every = 1, 2, 3, 4, 5, 6, 7, 8\n";
  expect_error_contains(text, "grid expands past the 4096-run cap");
}

// --- key registry & docs contract -----------------------------------------

TEST(ScenarioKeys, RegistryIsNonEmptyAndUnique) {
  const auto& keys = scenario_keys();
  ASSERT_GE(keys.size(), 30u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_STRNE(keys[i].key, keys[j].key);
    }
    EXPECT_GT(std::string(keys[i].description).size(), 0u) << keys[i].key;
    EXPECT_GT(std::string(keys[i].default_value).size(), 0u) << keys[i].key;
  }
}

TEST(ScenarioKeys, EveryKeyIsDocumentedInExperimentsMd) {
  const std::string path = std::string(JWINS_SOURCE_DIR) +
                           "/docs/EXPERIMENTS.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string docs = buffer.str();
  for (const KeyInfo& key : scenario_keys()) {
    // Incremental append (not operator+ chains) sidesteps GCC 12's
    // -Wrestrict false positive on string concatenation (GCC PR 105651).
    std::string needle = "`";
    needle += key.key;
    needle += "`";
    EXPECT_NE(docs.find(needle), std::string::npos)
        << "docs/EXPERIMENTS.md does not document scenario key `" << key.key
        << "`";
  }
}

TEST(ScenarioKeys, AllCheckedInScenarioPresetsExpand) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(JWINS_SOURCE_DIR) / "scenarios";
  ASSERT_TRUE(fs::exists(dir));
  std::size_t presets = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".scenario") continue;
    ++presets;
    EXPECT_NO_THROW({
      const auto runs = expand_grid(load_scenario_file(entry.path().string()));
      EXPECT_GE(runs.size(), 1u) << entry.path();
    }) << entry.path();
  }
  EXPECT_GE(presets, 8u);  // one per refactored bench/example + smoke
}

// --- runner wiring --------------------------------------------------------

TEST(ScenarioRunner, AutoKnobsResolveToWorkloadSuggestions) {
  const ScenarioRun run = expand("workload = shakespeare\nnodes = 4\n").front();
  const sim::Workload workload = make_run_workload(run);
  const sim::ExperimentConfig config = resolve_config(run, workload);
  EXPECT_FLOAT_EQ(config.sgd.learning_rate, workload.suggested_lr);
  EXPECT_EQ(config.local_steps, workload.suggested_local_steps);
  EXPECT_GE(config.threads, 1u);  // 0 = auto resolved
}

TEST(ScenarioRunner, ExplicitKnobsWin) {
  const ScenarioRun run =
      expand("workload = shakespeare\nnodes = 4\nlearning_rate = 0.5\n"
             "local_steps = 7\nthreads = 3\n")
          .front();
  const sim::ExperimentConfig config =
      resolve_config(run, make_run_workload(run));
  EXPECT_FLOAT_EQ(config.sgd.learning_rate, 0.5f);
  EXPECT_EQ(config.local_steps, 7u);
  EXPECT_EQ(config.threads, 3u);
}

TEST(ScenarioRunner, TopologyShapes) {
  auto degree_of = [](graph::TopologyProvider& topo, std::size_t n) {
    const graph::Graph& g = topo.round_graph(0);
    EXPECT_EQ(g.size(), n);
    EXPECT_TRUE(g.connected());
    return g.degree(0);
  };
  const auto ring = expand("topology = ring\nnodes = 8\n").front();
  EXPECT_EQ(degree_of(*make_run_topology(ring), 8), 2u);

  const auto torus = expand("topology = torus\nnodes = 12\n").front();
  EXPECT_EQ(degree_of(*make_run_topology(torus), 12), 4u);

  const auto full = expand("topology = full\nnodes = 6\n").front();
  EXPECT_EQ(degree_of(*make_run_topology(full), 6), 5u);

  const auto regular =
      expand("topology = regular\nnodes = 8\ntopology_degree = 4\n").front();
  const auto topo = make_run_topology(regular);
  EXPECT_TRUE(topo->round_graph(0).is_regular(4));
}

TEST(ScenarioRunner, ChurnScheduleRewiresOnThePeriod) {
  const auto run =
      expand("nodes = 8\nchurn_every = 2\ntopology_degree = 4\n").front();
  const auto topo = make_run_topology(run);
  auto edges = [](const graph::Graph& g) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (std::size_t u = 0; u < g.size(); ++u) {
      for (std::size_t v : g.neighbors(u)) {
        if (u < v) out.emplace_back(u, v);
      }
    }
    return out;
  };
  const auto e0 = edges(topo->round_graph(0));
  const auto e1 = edges(topo->round_graph(1));
  const auto e2 = edges(topo->round_graph(2));
  EXPECT_EQ(e0, e1);  // same epoch
  EXPECT_NE(e0, e2);  // rewired after the period
}

// --- ExperimentConfig::validate -------------------------------------------

TEST(ExperimentConfigValidate, DefaultConfigIsValid) {
  // Named variable rather than a temporary: GCC 12 -O2 raises a
  // -Wmaybe-uninitialized false positive on the temporary's string member.
  const sim::ExperimentConfig config;
  EXPECT_TRUE(config.validate().empty());
}

TEST(ExperimentConfigValidate, ReportsEveryViolation) {
  sim::ExperimentConfig config;
  config.eval_every = 0;
  config.lr_decay_factor = -0.5;
  config.target_accuracy = 1.5;
  config.sgd.learning_rate = 0.0f;
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 4u);
  auto has = [&](const std::string& needle) {
    for (const std::string& e : errors) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("eval_every:"));
  EXPECT_TRUE(has("lr_decay_factor:"));
  EXPECT_TRUE(has("target_accuracy:"));
  EXPECT_TRUE(has("learning_rate:"));
}

TEST(ExperimentConfigValidate, ExperimentConstructorRejectsInvalidConfig) {
  const sim::Workload w = sim::make_celeba_like(4, 3);
  sim::ExperimentConfig config;
  config.eval_every = 0;
  std::mt19937 rng(3);
  EXPECT_THROW(sim::Experiment(config, w.model_factory, *w.train, w.partition,
                               *w.test,
                               std::make_unique<graph::StaticTopology>(
                                   graph::random_regular(4, 3, rng))),
               std::invalid_argument);
}

// --- the golden-file check ------------------------------------------------

// scenarios/fig5_convergence.scenario, scaled down, must reproduce the
// EXACT series the pre-refactor bench_fig5_convergence wiring produced:
// same workload seed, same topology construction, same config. This is the
// contract that lets the benches delete their hand wiring.
TEST(ScenarioGolden, Fig5ScenarioMatchesHandWiredBench) {
  const std::size_t nodes = 8;
  const std::size_t rounds = 6;
  const std::size_t seed = 1;

  // Scenario path: the checked-in preset, scaled down via overrides (what
  // `jwins_run scenarios/fig5_convergence.scenario --set ...` does).
  RawScenario raw = load_scenario_file(std::string(JWINS_SOURCE_DIR) +
                                       "/scenarios/fig5_convergence.scenario");
  set_value(raw, "nodes", std::to_string(nodes));
  set_value(raw, "rounds", std::to_string(rounds));
  set_value(raw, "workload", "celeba");
  set_value(raw, "eval_every", "2");
  set_value(raw, "eval_sample_limit", "64");
  set_value(raw, "eval_node_limit", "4");
  set_value(raw, "threads", "1");
  const auto runs = expand_grid(raw);
  const ScenarioRun* cell = nullptr;
  for (const ScenarioRun& r : runs) {
    if (r.config.algorithm == sim::Algorithm::kRandomSampling) cell = &r;
  }
  ASSERT_NE(cell, nullptr);
  const sim::ExperimentResult from_scenario = execute(*cell);

  // Hand-wired path: the pre-refactor bench code, verbatim.
  const sim::Workload w =
      sim::make_workload("celeba", nodes, static_cast<std::uint32_t>(seed));
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kRandomSampling;
  cfg.rounds = rounds;
  cfg.local_steps = w.suggested_local_steps;
  cfg.sgd.learning_rate = w.suggested_lr;
  cfg.eval_every = 2;
  cfg.eval_sample_limit = 64;
  cfg.eval_node_limit = 4;
  cfg.threads = 1;
  cfg.seed = seed;
  cfg.random_sampling_fraction = 0.37;
  std::mt19937 rng(static_cast<unsigned>(seed));
  sim::Experiment hand_wired(
      cfg, w.model_factory, *w.train, w.partition, *w.test,
      std::make_unique<graph::StaticTopology>(
          graph::random_regular(nodes, auto_degree(nodes), rng)));
  const sim::ExperimentResult golden = hand_wired.run();

  ASSERT_EQ(from_scenario.series.size(), golden.series.size());
  for (std::size_t i = 0; i < golden.series.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(from_scenario.series[i].round, golden.series[i].round);
    EXPECT_EQ(from_scenario.series[i].sim_seconds, golden.series[i].sim_seconds);
    EXPECT_EQ(from_scenario.series[i].test_accuracy,
              golden.series[i].test_accuracy);
    EXPECT_EQ(from_scenario.series[i].test_loss, golden.series[i].test_loss);
    EXPECT_EQ(from_scenario.series[i].train_loss, golden.series[i].train_loss);
    EXPECT_EQ(from_scenario.series[i].avg_bytes_per_node,
              golden.series[i].avg_bytes_per_node);
    EXPECT_EQ(from_scenario.series[i].avg_metadata_bytes_per_node,
              golden.series[i].avg_metadata_bytes_per_node);
  }
  EXPECT_EQ(from_scenario.total_traffic.bytes_sent,
            golden.total_traffic.bytes_sent);
  EXPECT_EQ(from_scenario.total_traffic.metadata_bytes_sent,
            golden.total_traffic.metadata_bytes_sent);
  EXPECT_EQ(from_scenario.final_accuracy, golden.final_accuracy);
  EXPECT_EQ(from_scenario.final_loss, golden.final_loss);
  EXPECT_EQ(from_scenario.sim_seconds, golden.sim_seconds);
}

}  // namespace
}  // namespace jwins::config

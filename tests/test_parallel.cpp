// Unit and stress tests for the persistent fork-join engine
// (net/thread_pool.hpp): coverage, ordering, nested-call behavior,
// first-error exception semantics, bit-exact ordered reduction, and a
// construction/dispatch churn loop that must stay clean under
// ASan/UBSan/TSan (the CI sanitizer jobs run this file).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/thread_pool.hpp"

namespace jwins::net {
namespace {

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ThreadCountClampedToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(3).thread_count(), 3u);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, FewerIterationsThanWorkersCoversAllOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManyIterationsCoverAllOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SequentialOrderWhenOneThread) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ChunksAreContiguousAndInIndexOrderPerThread) {
  // Static chunking: each thread's indices must be one ascending contiguous
  // range — a work-stealing pool would interleave them.
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::thread::id> owner(n);
  std::vector<std::atomic<int>> seq(n);
  std::atomic<int> ticket{0};
  pool.parallel_for(n, [&](std::size_t i) {
    owner[i] = std::this_thread::get_id();
    seq[i] = ticket.fetch_add(1);
  });
  for (std::size_t i = 1; i < n; ++i) {
    if (owner[i] == owner[i - 1]) {
      EXPECT_LT(seq[i - 1].load(), seq[i].load()) << "index " << i;
    }
  }
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock) {
  // Documented behavior: a parallel_for issued from inside a worker body
  // executes inline sequentially on that thread (no re-entrant dispatch).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 8);
  pool.parallel_for(16, [&](std::size_t outer) {
    const auto self = std::this_thread::get_id();
    pool.parallel_for(8, [&](std::size_t inner) {
      EXPECT_EQ(std::this_thread::get_id(), self);
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesExactlyOnce) {
  ThreadPool pool(4);
  int caught = 0;
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(caught, 1);
  // The pool must stay usable after a failed job.
  std::atomic<int> ok{0};
  pool.parallel_for(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, FirstErrorSemanticsMatchSequential) {
  // Every index >= 10 throws, tagged with its index; the surfaced error must
  // be index 10 — what a sequential loop would hit first — at any width.
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    std::string what;
    try {
      pool.parallel_for(100, [&](std::size_t i) {
        if (i >= 10) throw std::runtime_error(std::to_string(i));
      });
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "10") << "threads=" << threads;
  }
}

TEST(ThreadPool, OrderedReduceMatchesAccumulateBitForBit) {
  // Values spanning ~16 orders of magnitude make float addition visibly
  // non-associative, so any chunk-local partial summing would diverge.
  constexpr std::size_t n = 4097;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = std::pow(-1.1, static_cast<double>(i % 67)) * 1e-8 +
                static_cast<double>(i) * 1e7;
  }
  const double expected = std::accumulate(values.begin(), values.end(), 0.0);
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    const double got = pool.parallel_reduce(
        n, 0.0, [&](std::size_t i) { return values[i]; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, ReduceEmptyRangeReturnsInit) {
  ThreadPool pool(4);
  const double got = pool.parallel_reduce(
      0, 42.0, [](std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(got, 42.0);
}

TEST(ThreadPool, ExceptionInReduceMapPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_reduce(
                   32, 0.0,
                   [](std::size_t i) -> double {
                     if (i == 5) throw std::logic_error("map");
                     return 1.0;
                   },
                   [](double a, double b) { return a + b; }),
               std::logic_error);
}

TEST(ThreadPoolStress, DispatchChurnIsClean) {
  // Many small dispatches through one pool: exercises the wake/finish
  // handshake under scheduling noise (sanitizer jobs run this threaded).
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int iter = 0; iter < 500; ++iter) {
    pool.parallel_for(64, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 500L * (64 * 63 / 2));
}

TEST(ThreadPoolStress, ConstructionChurnIsClean) {
  // Pools created and torn down in a loop, including ones that never run a
  // job and ones destroyed right after a dispatch.
  for (int iter = 0; iter < 50; ++iter) {
    for (const unsigned threads : {1u, 2u, 5u}) {
      ThreadPool pool(threads);
      if (iter % 3 == 0) continue;  // destroy without dispatching
      std::atomic<int> hits{0};
      pool.parallel_for(17, [&](std::size_t) { hits.fetch_add(1); });
      EXPECT_EQ(hits.load(), 17);
    }
  }
}

}  // namespace
}  // namespace jwins::net

#include <gtest/gtest.h>

#include <random>

#include "nn/flat.hpp"
#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/sgd.hpp"

namespace jwins::nn {
namespace {

using tensor::Tensor;

// -------------------------------------------------------------------- loss

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  const Tensor logits({4, 10});  // all-zero logits -> uniform distribution
  const std::vector<std::int32_t> labels{0, 3, 5, 9};
  const LossResult lr = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(lr.loss, std::log(10.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  std::mt19937 rng(1);
  const Tensor logits = Tensor::normal({3, 5}, 0.0f, 2.0f, rng);
  const std::vector<std::int32_t> labels{1, 0, 4};
  const LossResult lr = softmax_cross_entropy(logits, labels);
  for (std::size_t b = 0; b < 3; ++b) {
    float row = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) row += lr.grad[b * 5 + c];
    EXPECT_NEAR(row, 0.0f, 1e-5f);
  }
}

TEST(SoftmaxCrossEntropy, NumericallyStableOnHugeLogits) {
  Tensor logits({1, 3});
  logits[0] = 1000.0f;
  logits[1] = 999.0f;
  logits[2] = -1000.0f;
  const std::vector<std::int32_t> labels{0};
  const LossResult lr = softmax_cross_entropy(logits, labels);
  EXPECT_TRUE(std::isfinite(lr.loss));
  EXPECT_LT(lr.loss, 1.0f);
}

TEST(SoftmaxCrossEntropy, LabelOutOfRangeThrows) {
  const Tensor logits({1, 3});
  const std::vector<std::int32_t> labels{5};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), std::out_of_range);
}

TEST(Softmax, RowsSumToOne) {
  std::mt19937 rng(2);
  const Tensor probs = softmax(Tensor::normal({4, 7}, 0.0f, 3.0f, rng));
  for (std::size_t b = 0; b < 4; ++b) {
    float row = 0.0f;
    for (std::size_t c = 0; c < 7; ++c) row += probs[b * 7 + c];
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(MseLoss, KnownValueAndGradient) {
  const Tensor pred = Tensor::of({1.0f, 2.0f});
  const Tensor target = Tensor::of({0.0f, 4.0f});
  const LossResult lr = mse_loss(pred, target);
  EXPECT_NEAR(lr.loss, (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(lr.grad[0], 2.0f * 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(lr.grad[1], 2.0f * -2.0f / 2.0f, 1e-6f);
}

TEST(Accuracy, CountsTop1) {
  Tensor logits({2, 3});
  logits[0] = 0.1f; logits[1] = 0.9f; logits[2] = 0.0f;  // pred 1
  logits[3] = 2.0f; logits[4] = 0.0f; logits[5] = 1.0f;  // pred 0
  const std::vector<std::int32_t> labels{1, 2};
  EXPECT_NEAR(accuracy(logits, labels), 0.5, 1e-9);
}

// ---------------------------------------------------------------------- sgd

TEST(Sgd, PlainStep) {
  Tensor p = Tensor::of({1.0f, 2.0f});
  Tensor g = Tensor::of({0.5f, -1.0f});
  Sgd opt({&p}, {&g}, {.learning_rate = 0.1f});
  opt.step();
  EXPECT_FLOAT_EQ(p[0], 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(p[1], 2.0f + 0.1f);
}

TEST(Sgd, WeightDecay) {
  Tensor p = Tensor::of({1.0f});
  Tensor g = Tensor::of({0.0f});
  Sgd opt({&p}, {&g}, {.learning_rate = 0.1f, .weight_decay = 0.5f});
  opt.step();
  EXPECT_FLOAT_EQ(p[0], 1.0f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  Tensor p = Tensor::of({0.0f});
  Tensor g = Tensor::of({1.0f});
  Sgd opt({&p}, {&g}, {.learning_rate = 1.0f, .momentum = 0.9f});
  opt.step();  // v=1, p=-1
  EXPECT_FLOAT_EQ(p[0], -1.0f);
  opt.step();  // v=1.9, p=-2.9
  EXPECT_FLOAT_EQ(p[0], -2.9f);
}

TEST(Sgd, MismatchedShapesThrow) {
  Tensor p({2}), g({3});
  EXPECT_THROW(Sgd({&p}, {&g}, {}), std::invalid_argument);
  Tensor g2({2});
  EXPECT_THROW(Sgd({&p}, {&g2, &g2}, {}), std::invalid_argument);
}

// --------------------------------------------------------------------- flat

TEST(FlatParams, RoundTrip) {
  Tensor a = Tensor::of({1, 2, 3});
  Tensor b = Tensor::from({2, 2}, {4, 5, 6, 7});
  const std::vector<tensor::Tensor*> tensors{&a, &b};
  EXPECT_EQ(flat_size(tensors), 7u);
  const std::vector<float> flat = to_flat(tensors);
  EXPECT_EQ(flat, (std::vector<float>{1, 2, 3, 4, 5, 6, 7}));
  const std::vector<float> modified{10, 20, 30, 40, 50, 60, 70};
  copy_from_flat(tensors, modified);
  EXPECT_FLOAT_EQ(a[0], 10.0f);
  EXPECT_FLOAT_EQ(b[3], 70.0f);
}

TEST(FlatParams, SizeMismatchThrows) {
  Tensor a({3});
  const std::vector<tensor::Tensor*> tensors{&a};
  std::vector<float> wrong(4);
  EXPECT_THROW(copy_from_flat(tensors, wrong), std::invalid_argument);
  EXPECT_THROW(copy_to_flat(tensors, wrong), std::invalid_argument);
}

// ------------------------------------------------------------------- models

Batch classification_batch(std::size_t n, std::size_t channels,
                           std::size_t side, std::size_t classes,
                           unsigned seed) {
  std::mt19937 rng(seed);
  Batch b;
  b.x = Tensor::normal({n, channels, side, side}, 0.0f, 1.0f, rng);
  b.labels.resize(n);
  std::uniform_int_distribution<std::int32_t> dist(0, static_cast<int>(classes) - 1);
  for (auto& l : b.labels) l = dist(rng);
  return b;
}

TEST(MlpClassifier, GradCheck) {
  MlpClassifier model(6, {8}, 3, /*seed=*/5);
  std::mt19937 rng(6);
  Batch b;
  b.x = Tensor::normal({4, 6}, 0.0f, 1.0f, rng);
  b.labels = {0, 1, 2, 1};
  const auto result = grad_check_model(model, b);
  EXPECT_TRUE(result.ok(5e-2)) << result.max_rel_error;
}

TEST(MlpClassifier, TrainingReducesLoss) {
  MlpClassifier model(4, {16}, 2, /*seed=*/7);
  // Two linearly separable blobs.
  std::mt19937 rng(8);
  Batch b;
  b.x = Tensor({32, 4});
  b.labels.resize(32);
  std::normal_distribution<float> noise(0.0f, 0.3f);
  for (std::size_t i = 0; i < 32; ++i) {
    const std::int32_t label = static_cast<std::int32_t>(i % 2);
    b.labels[i] = label;
    for (std::size_t d = 0; d < 4; ++d) {
      b.x[i * 4 + d] = (label == 0 ? 1.0f : -1.0f) + noise(rng);
    }
  }
  Sgd opt(model.parameters(), model.gradients(), {.learning_rate = 0.2f});
  const double before = model.evaluate(b).loss;
  for (int step = 0; step < 60; ++step) {
    model.zero_grad();
    model.loss_and_grad(b);
    opt.step();
  }
  const EvalMetrics after = model.evaluate(b);
  EXPECT_LT(after.loss, before * 0.2);
  EXPECT_GT(after.accuracy, 0.95);
}

TEST(CnnClassifier, GradCheck) {
  CnnClassifier::Config cfg;
  cfg.in_channels = 1;
  cfg.image_size = 4;
  cfg.conv1_channels = 2;
  cfg.conv2_channels = 4;
  cfg.groups = 2;
  cfg.classes = 3;
  CnnClassifier model(cfg, /*seed=*/9);
  Batch b = classification_batch(2, 1, 4, 3, 10);
  const auto result = grad_check_model(model, b, /*epsilon=*/2e-3);
  EXPECT_TRUE(result.ok(5e-2)) << result.max_rel_error;
}

TEST(CnnClassifier, RejectsBadImageSize) {
  CnnClassifier::Config cfg;
  cfg.image_size = 6;  // not divisible by 4
  EXPECT_THROW(CnnClassifier(cfg, 1), std::invalid_argument);
}

TEST(CnnClassifier, IdenticalSeedsGiveIdenticalParams) {
  CnnClassifier::Config cfg;
  CnnClassifier a(cfg, 33), b(cfg, 33);
  const auto fa = to_flat(a.parameters());
  const auto fb = to_flat(b.parameters());
  EXPECT_EQ(fa, fb);
}

TEST(MatrixFactorization, GradCheck) {
  MatrixFactorization model(4, 5, 3, /*rating_mean=*/3.0f, /*seed=*/11);
  Batch b;
  b.x = Tensor::from({3, 2}, {0, 1, 2, 4, 3, 0});
  b.y = Tensor::of({4.0f, 2.5f, 3.5f});
  const auto result = grad_check_model(model, b);
  EXPECT_TRUE(result.ok(5e-2)) << result.max_rel_error;
}

TEST(MatrixFactorization, LearnsSimpleRatings) {
  MatrixFactorization model(2, 2, 2, 3.0f, /*seed=*/12);
  Batch b;
  b.x = Tensor::from({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  b.y = Tensor::of({5.0f, 1.0f, 1.0f, 5.0f});
  Sgd opt(model.parameters(), model.gradients(), {.learning_rate = 0.15f});
  for (int step = 0; step < 400; ++step) {
    model.zero_grad();
    model.loss_and_grad(b);
    opt.step();
  }
  const EvalMetrics m = model.evaluate(b);
  EXPECT_LT(m.loss, 0.1);
  EXPECT_GT(m.accuracy, 0.99);  // all within 0.5
}

TEST(MatrixFactorization, IdOutOfRangeThrows) {
  MatrixFactorization model(2, 2, 2, 3.0f, 13);
  Batch b;
  b.x = Tensor::from({1, 2}, {5, 0});
  b.y = Tensor::of({3.0f});
  EXPECT_THROW(model.loss_and_grad(b), std::out_of_range);
}

TEST(CharLstm, GradCheck) {
  CharLstm::Config cfg;
  cfg.vocab = 6;
  cfg.embedding_dim = 4;
  cfg.hidden = 5;
  cfg.layers = 2;
  CharLstm model(cfg, /*seed=*/14);
  Batch b;
  b.x = Tensor::from({2, 3}, {0, 1, 2, 3, 4, 5});
  b.labels = {1, 2, 3, 4, 5, 0};
  const auto result = grad_check_model(model, b, 1e-2);
  EXPECT_TRUE(result.ok(8e-2)) << result.max_rel_error;
}

TEST(CharLstm, LearnsDeterministicCycle) {
  // Sequence 0 -> 1 -> 2 -> 0 is perfectly predictable.
  CharLstm::Config cfg;
  cfg.vocab = 3;
  cfg.embedding_dim = 6;
  cfg.hidden = 12;
  cfg.layers = 1;
  CharLstm model(cfg, /*seed=*/15);
  Batch b;
  b.x = Tensor::from({2, 6}, {0, 1, 2, 0, 1, 2, 1, 2, 0, 1, 2, 0});
  b.labels = {1, 2, 0, 1, 2, 0, 2, 0, 1, 2, 0, 1};
  Sgd opt(model.parameters(), model.gradients(), {.learning_rate = 0.5f});
  for (int step = 0; step < 150; ++step) {
    model.zero_grad();
    model.loss_and_grad(b);
    opt.step();
  }
  const EvalMetrics m = model.evaluate(b);
  EXPECT_GT(m.accuracy, 0.9);
}

TEST(CharLstm, ParameterCountMatchesArchitecture) {
  CharLstm::Config cfg;
  cfg.vocab = 10;
  cfg.embedding_dim = 4;
  cfg.hidden = 8;
  cfg.layers = 2;
  CharLstm model(cfg, 16);
  // embedding 10*4; lstm1 4*8*(4+8)+4*8; lstm2 4*8*(8+8)+4*8; head 8*10+10.
  const std::size_t expected = 40 + (32 * 12 + 32) + (32 * 16 + 32) + 90;
  EXPECT_EQ(model.parameter_count(), expected);
}

TEST(GradCheckModel, FlagsBrokenGradients) {
  // Sanity check that the checker itself can fail: a model with a wrong
  // gradient must be caught.
  class Broken final : public SupervisedModel {
   public:
    float loss_and_grad(const Batch&) override {
      g_[0] += 999.0f;  // wrong on purpose
      return x_[0] * x_[0];
    }
    EvalMetrics evaluate(const Batch&) override {
      return {static_cast<double>(x_[0]) * x_[0], 0.0, 1};
    }
    std::vector<tensor::Tensor*> parameters() override { return {&x_}; }
    std::vector<tensor::Tensor*> gradients() override { return {&g_}; }

   private:
    Tensor x_{tensor::Shape{1}, 2.0f};
    Tensor g_{tensor::Shape{1}};
  };
  Broken model;
  Batch b;
  b.x = Tensor({1, 1});
  const auto result = grad_check_model(model, b);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace jwins::nn

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "compress/bitstream.hpp"
#include "compress/elias.hpp"
#include "compress/float_codec.hpp"
#include "compress/topk.hpp"

namespace jwins::compress {
namespace {

// ---------------------------------------------------------------- bitstream

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter w;
  const std::vector<bool> bits{true, false, true, true, false, false, true};
  for (bool b : bits) w.write_bit(b);
  EXPECT_EQ(w.bit_count(), bits.size());
  const auto bytes = std::move(w).finish();
  BitReader r(bytes);
  for (bool b : bits) EXPECT_EQ(r.read_bit(), b);
}

TEST(BitStream, MultiBitValuesRoundTrip) {
  BitWriter w;
  w.write_bits(0b1011, 4);
  w.write_bits(0xDEADBEEF, 32);
  w.write_bits(1, 1);
  const auto bytes = std::move(w).finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(4), 0b1011u);
  EXPECT_EQ(r.read_bits(32), 0xDEADBEEFu);
  EXPECT_EQ(r.read_bits(1), 1u);
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(0xFF, 8);
  const auto bytes = std::move(w).finish();
  BitReader r(bytes);
  r.read_bits(8);
  EXPECT_THROW(r.read_bit(), std::out_of_range);
}

TEST(BitStream, CountTooLargeThrows) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(0, 65), std::invalid_argument);
  std::vector<std::uint8_t> buf(16);
  BitReader r(buf);
  EXPECT_THROW(r.read_bits(65), std::invalid_argument);
}

// -------------------------------------------------------------------- elias

TEST(EliasGamma, KnownCodewords) {
  // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4) = "00100".
  BitWriter w;
  elias_gamma_encode(w, 1);
  EXPECT_EQ(w.bit_count(), 1u);
  elias_gamma_encode(w, 2);
  EXPECT_EQ(w.bit_count(), 4u);
  elias_gamma_encode(w, 4);
  EXPECT_EQ(w.bit_count(), 9u);
  const auto bytes = std::move(w).finish();
  BitReader r(bytes);
  EXPECT_EQ(elias_gamma_decode(r), 1u);
  EXPECT_EQ(elias_gamma_decode(r), 2u);
  EXPECT_EQ(elias_gamma_decode(r), 4u);
}

TEST(EliasGamma, ZeroThrows) {
  BitWriter w;
  EXPECT_THROW(elias_gamma_encode(w, 0), std::invalid_argument);
}

class EliasRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EliasRoundTrip, GammaAndDelta) {
  const std::uint64_t value = GetParam();
  BitWriter w;
  elias_gamma_encode(w, value);
  elias_delta_encode(w, value);
  const auto bytes = std::move(w).finish();
  BitReader r(bytes);
  EXPECT_EQ(elias_gamma_decode(r), value);
  EXPECT_EQ(elias_delta_decode(r), value);
}

INSTANTIATE_TEST_SUITE_P(Values, EliasRoundTrip,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull, 8ull, 255ull,
                                           256ull, 1023ull, 65536ull,
                                           123456789ull, (1ull << 40) + 17));

TEST(EliasGamma, RandomStreamRoundTrip) {
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> values;
  BitWriter w;
  for (int i = 0; i < 2000; ++i) {
    // Mix of small (common for gaps) and occasionally large values.
    const std::uint64_t v = (rng() % 64 == 0) ? (rng() % 1000000 + 1)
                                              : (rng() % 16 + 1);
    values.push_back(v);
    elias_gamma_encode(w, v);
  }
  const auto bytes = std::move(w).finish();
  BitReader r(bytes);
  for (std::uint64_t v : values) EXPECT_EQ(elias_gamma_decode(r), v);
}

TEST(IndexGaps, RoundTripIncludingZeroFirstIndex) {
  const std::vector<std::uint32_t> indices{0, 1, 5, 6, 100, 101, 4096};
  const auto bytes = encode_index_gaps(indices);
  const auto back = decode_index_gaps(bytes, indices.size());
  EXPECT_EQ(back, indices);
}

TEST(IndexGaps, EmptyArray) {
  const auto bytes = encode_index_gaps({});
  EXPECT_TRUE(bytes.empty());
  EXPECT_TRUE(decode_index_gaps(bytes, 0).empty());
}

TEST(IndexGaps, NonMonotonicThrows) {
  const std::vector<std::uint32_t> bad{3, 3};
  EXPECT_THROW(encode_index_gaps(bad), std::invalid_argument);
  const std::vector<std::uint32_t> bad2{5, 2};
  EXPECT_THROW(encode_index_gaps(bad2), std::invalid_argument);
}

TEST(IndexGaps, SizeEstimatorMatchesActual) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint32_t> indices;
    std::uint32_t cur = rng() % 5;
    for (int i = 0; i < 300; ++i) {
      indices.push_back(cur);
      cur += 1 + rng() % 50;
    }
    EXPECT_EQ(index_gaps_encoded_size(indices),
              encode_index_gaps(indices).size());
  }
}

TEST(IndexGaps, DenseIndicesCompressWell) {
  // Gap arrays of a dense TopK selection are mostly small -> far below
  // 4 bytes/index. This is the Figure-9 mechanism.
  std::vector<std::uint32_t> indices;
  std::mt19937 rng(3);
  std::uint32_t cur = 0;
  for (int i = 0; i < 1000; ++i) {
    cur += 1 + rng() % 3;
    indices.push_back(cur);
  }
  const auto bytes = encode_index_gaps(indices);
  EXPECT_LT(bytes.size() * 4, indices.size() * 4);  // > 4x better than raw
}

class IndexGapsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IndexGapsSweep, RandomSubsetsRoundTrip) {
  const std::size_t k = GetParam();
  const auto indices = random_indices(100000, k, /*seed=*/k * 977 + 1);
  const auto bytes = encode_index_gaps(indices);
  EXPECT_EQ(decode_index_gaps(bytes, indices.size()), indices);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IndexGapsSweep,
                         ::testing::Values(1u, 2u, 10u, 100u, 1000u, 10000u));

// -------------------------------------------------------------- float codec

TEST(FloatCodec, EmptyStream) {
  EXPECT_TRUE(compress_floats({}).empty());
  EXPECT_TRUE(decompress_floats({}, 0).empty());
}

TEST(FloatCodec, SingleValue) {
  const std::vector<float> vals{3.14159f};
  const auto bytes = compress_floats(vals);
  const auto back = decompress_floats(bytes, 1);
  EXPECT_EQ(back, vals);
}

TEST(FloatCodec, ConstantRunIsTiny) {
  const std::vector<float> vals(1000, 1.5f);
  const auto bytes = compress_floats(vals);
  // First value: 32 bits; every repeat: 1 bit -> ~129 bytes total.
  EXPECT_LT(bytes.size(), 160u);
  EXPECT_EQ(decompress_floats(bytes, vals.size()), vals);
}

TEST(FloatCodec, SpecialValuesAreLossless) {
  const std::vector<float> vals{
      0.0f, -0.0f, std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::max(), std::numeric_limits<float>::lowest(),
      1e-38f, -1e38f};
  const auto bytes = compress_floats(vals);
  const auto back = decompress_floats(bytes, vals.size());
  ASSERT_EQ(back.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    // Bit-exact comparison (covers -0.0 vs 0.0).
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back[i]),
              std::bit_cast<std::uint32_t>(vals[i]));
  }
}

TEST(FloatCodec, NanPreservedBitExact) {
  const float nan1 = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> vals{1.0f, nan1, 2.0f};
  const auto back = decompress_floats(compress_floats(vals), vals.size());
  EXPECT_EQ(std::bit_cast<std::uint32_t>(back[1]),
            std::bit_cast<std::uint32_t>(nan1));
}

class FloatCodecSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FloatCodecSweep, RandomStreamsRoundTripLosslessly) {
  std::mt19937 rng(GetParam());
  std::normal_distribution<float> dist(0.0f, 2.0f);
  std::vector<float> vals(1537);
  for (float& v : vals) v = dist(rng);
  const auto bytes = compress_floats(vals);
  const auto back = decompress_floats(bytes, vals.size());
  ASSERT_EQ(back.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back[i]),
              std::bit_cast<std::uint32_t>(vals[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloatCodecSweep, ::testing::Range(1u, 9u));

TEST(FloatCodec, CorrelatedStreamCompresses) {
  // Slowly-varying values (like a trained model's parameter vector) share
  // sign/exponent bits, so the XOR predictor shortens them.
  std::vector<float> vals(4096);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = 0.5f + 1e-4f * static_cast<float>(i % 97);
  }
  const auto bytes = compress_floats(vals);
  EXPECT_LT(bytes.size(), vals.size() * 4 * 8 / 10);  // >= 20% saving
  EXPECT_EQ(decompress_floats(bytes, vals.size()), vals);
}

TEST(FloatCodec, SizeEstimatorMatches) {
  std::mt19937 rng(21);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> vals(777);
  for (float& v : vals) v = dist(rng);
  EXPECT_EQ(compressed_floats_size(vals), compress_floats(vals).size());
}

// --------------------------------------------------------------------- topk

TEST(TopK, SelectsLargestMagnitudes) {
  const std::vector<float> v{0.1f, -5.0f, 3.0f, -0.2f, 4.0f};
  const auto idx = topk_indices(v, 2);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 4}));
}

TEST(TopK, SortedAscendingOutput) {
  std::mt19937 rng(5);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> v(500);
  for (float& x : v) x = dist(rng);
  const auto idx = topk_indices(v, 50);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  EXPECT_EQ(idx.size(), 50u);
}

TEST(TopK, ThresholdProperty) {
  // Every selected magnitude >= every unselected magnitude.
  std::mt19937 rng(17);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> v(200);
  for (float& x : v) x = dist(rng);
  const auto idx = topk_indices(v, 40);
  std::vector<bool> selected(v.size(), false);
  float min_selected = std::numeric_limits<float>::infinity();
  for (auto i : idx) {
    selected[i] = true;
    min_selected = std::min(min_selected, std::fabs(v[i]));
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!selected[i]) {
      EXPECT_LE(std::fabs(v[i]), min_selected + 1e-6f);
    }
  }
}

TEST(TopK, KLargerThanNReturnsAll) {
  const std::vector<float> v{1.0f, 2.0f};
  const auto idx = topk_indices(v, 10);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 1}));
}

TEST(TopK, ZeroKReturnsEmpty) {
  const std::vector<float> v{1.0f, 2.0f};
  EXPECT_TRUE(topk_indices(v, 0).empty());
}

TEST(RandomIndices, DistinctSortedDeterministic) {
  const auto a = random_indices(1000, 100, 42);
  const auto b = random_indices(1000, 100, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_NE(a[i - 1], a[i]);
  EXPECT_LT(a.back(), 1000u);
}

TEST(RandomIndices, DifferentSeedsDiffer) {
  const auto a = random_indices(1000, 100, 1);
  const auto b = random_indices(1000, 100, 2);
  EXPECT_NE(a, b);
}

TEST(RandomIndices, FullSelection) {
  const auto a = random_indices(10, 10, 3);
  EXPECT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a[i], i);
}

TEST(RandomIndices, RoughlyUniformCoverage) {
  // Across many seeds, each position should be picked ~k/n of the time.
  const std::size_t n = 50, k = 10, trials = 2000;
  std::vector<std::size_t> hits(n, 0);
  for (std::size_t s = 0; s < trials; ++s) {
    for (auto i : random_indices(n, k, s)) ++hits[i];
  }
  const double expected = static_cast<double>(trials) * k / n;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]), expected, expected * 0.35)
        << "position " << i;
  }
}

TEST(GatherScatter, RoundTrip) {
  const std::vector<float> dense{0, 10, 20, 30, 40};
  const std::vector<std::uint32_t> idx{1, 3};
  const auto vals = gather(dense, idx);
  EXPECT_EQ(vals, (std::vector<float>{10, 30}));
  std::vector<float> out(5, -1.0f);
  scatter(out, idx, vals);
  EXPECT_EQ(out, (std::vector<float>{-1, 10, -1, 30, -1}));
}

TEST(GatherScatter, BoundsChecked) {
  const std::vector<float> dense{1.0f};
  const std::vector<std::uint32_t> bad{5};
  EXPECT_THROW(gather(dense, bad), std::out_of_range);
  std::vector<float> out(1);
  const std::vector<float> vals{1.0f};
  EXPECT_THROW(scatter(out, bad, vals), std::out_of_range);
  const std::vector<std::uint32_t> idx{0};
  const std::vector<float> too_many{1.0f, 2.0f};
  EXPECT_THROW(scatter(out, idx, too_many), std::invalid_argument);
}

}  // namespace
}  // namespace jwins::compress

// Cross-cutting property and invariant tests: end-to-end determinism,
// equivalences between algorithm paths, and randomized sweeps that tie the
// modules together.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <sstream>

#include "compress/float_codec.hpp"
#include "core/averaging.hpp"
#include "core/kernel_dispatch.hpp"
#include "compress/topk.hpp"
#include "core/sparse_payload.hpp"
#include "dwt/dwt.hpp"
#include "graph/graph.hpp"
#include "net/serializer.hpp"
#include "net/time_model.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"
#include "test_util.hpp"

namespace jwins {
namespace {

// ------------------------------------------------------------- determinism

sim::ExperimentResult run_once(unsigned threads) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 31);
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kJwins;
  cfg.rounds = 12;
  cfg.local_steps = 2;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = 4;
  cfg.eval_sample_limit = 96;
  cfg.eval_node_limit = 4;
  cfg.threads = threads;
  cfg.seed = 31;
  std::mt19937 rng(31);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 4, rng)));
  return exp.run();
}

TEST(Determinism, SequentialRunsAreBitIdentical) {
  const auto a = run_once(1);
  const auto b = run_once(1);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].test_accuracy, b.series[i].test_accuracy);
    EXPECT_EQ(a.series[i].test_loss, b.series[i].test_loss);
    EXPECT_EQ(a.series[i].avg_bytes_per_node, b.series[i].avg_bytes_per_node);
  }
  EXPECT_EQ(a.total_traffic.bytes_sent, b.total_traffic.bytes_sent);
  EXPECT_EQ(a.mean_alpha, b.mean_alpha);
}

// -------------------------------------------- averaging equivalence sweeps

TEST(AveragingEquivalence, DensePartialAverageEqualsMixingMatrix) {
  // When every neighbor contributes a dense vector, partial_average must
  // reproduce the plain Metropolis-Hastings weighted average exactly.
  std::mt19937 rng(5);
  const graph::Graph g = graph::erdos_renyi(10, 0.4, rng);
  const graph::MixingWeights w = graph::metropolis_hastings(g);
  const std::size_t dim = 33;
  std::vector<std::vector<float>> models(10);
  for (auto& m : models) {
    m.resize(dim);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (float& v : m) v = dist(rng);
  }
  for (std::size_t i = 0; i < 10; ++i) {
    // Reference: x_i' = w_ii x_i + sum_j w_ij x_j.
    std::vector<double> reference(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      reference[d] = w.self_weight[i] * models[i][d];
    }
    const auto& nbrs = g.neighbors(i);
    std::vector<core::SparsePayload> payloads(nbrs.size());
    std::vector<core::WeightedContribution> contribs;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      payloads[k].vector_length = static_cast<std::uint32_t>(dim);
      payloads[k].values = models[nbrs[k]];
      contribs.push_back({w.neighbor_weight[i][k], &payloads[k]});
      for (std::size_t d = 0; d < dim; ++d) {
        reference[d] += w.neighbor_weight[i][k] * models[nbrs[k]][d];
      }
    }
    std::vector<float> result = models[i];
    core::partial_average(result, w.self_weight[i], contribs);
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_NEAR(result[d], reference[d], 1e-5f) << "node " << i << " dim " << d;
    }
  }
}

TEST(AveragingEquivalence, WaveletDomainEqualsParameterDomainWhenDense) {
  // Orthonormal transform + linear averaging commute: averaging dense
  // wavelet vectors then inverting equals averaging the raw parameters.
  const std::size_t dim = 77;
  std::mt19937 rng(9);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> a(dim), b(dim);
  for (float& v : a) v = dist(rng);
  for (float& v : b) v = dist(rng);
  const dwt::DwtPlan plan(dwt::sym2(), dim, 4);
  const auto wa = plan.forward(a);
  const auto wb = plan.forward(b);
  std::vector<float> wavg(wa.size());
  for (std::size_t i = 0; i < wa.size(); ++i) wavg[i] = 0.5f * (wa[i] + wb[i]);
  const auto from_wavelet = plan.inverse(wavg);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(from_wavelet[i], 0.5f * (a[i] + b[i]), 1e-4f);
  }
}

// --------------------------------------------------------- codec sweeps

class FloatCodecDistributions : public ::testing::TestWithParam<int> {};

TEST_P(FloatCodecDistributions, LosslessAcrossValueDistributions) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::vector<float> values(999);
  switch (GetParam() % 4) {
    case 0: {  // typical trained weights
      std::normal_distribution<float> d(0.0f, 0.05f);
      for (float& v : values) v = d(rng);
      break;
    }
    case 1: {  // heavy-tailed
      std::cauchy_distribution<float> d(0.0f, 1.0f);
      for (float& v : values) v = d(rng);
      break;
    }
    case 2: {  // mostly zeros with spikes (sparse residuals)
      std::uniform_real_distribution<float> d(0.0f, 1.0f);
      for (float& v : values) v = d(rng) < 0.9f ? 0.0f : d(rng) * 100.0f;
      break;
    }
    default: {  // tiny magnitudes near denormals
      std::uniform_real_distribution<float> d(-1e-37f, 1e-37f);
      for (float& v : values) v = d(rng);
      break;
    }
  }
  const auto bytes = compress::compress_floats(values);
  const auto back = compress::decompress_floats(bytes, values.size());
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back[i]),
              std::bit_cast<std::uint32_t>(values[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, FloatCodecDistributions,
                         ::testing::Range(0, 8));

// -------------------------------------------------------- dwt random sweep

class DwtRandomLengths : public ::testing::TestWithParam<unsigned> {};

TEST_P(DwtRandomLengths, ReconstructionForArbitraryLengths) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::size_t> len_dist(1, 3000);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = len_dist(rng);
    std::vector<float> x(n);
    for (float& v : x) v = dist(rng);
    const dwt::DwtPlan plan(dwt::sym2(), n, 4);
    const auto back = plan.inverse(plan.forward(x));
    float worst = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, std::fabs(back[i] - x[i]));
    }
    EXPECT_LT(worst, 5e-4f) << "length " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DwtRandomLengths, ::testing::Range(1u, 7u));

// ----------------------------------------------------- serializer property

TEST(SerializerProperty, InterleavedSequencesRoundTrip) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    net::ByteWriter w;
    std::vector<int> script;
    std::vector<std::uint64_t> ints;
    std::vector<std::vector<float>> arrays;
    for (int op = 0; op < 20; ++op) {
      const int kind = static_cast<int>(rng() % 2);
      script.push_back(kind);
      if (kind == 0) {
        ints.push_back(rng());
        w.write_u64(ints.back());
      } else {
        std::vector<float> arr(rng() % 17);
        for (float& v : arr) {
          v = static_cast<float>(static_cast<double>(rng()) / 1e18);
        }
        arrays.push_back(arr);
        w.write_f32_array(arr);
      }
    }
    net::ByteReader r(w.buffer());
    std::size_t ii = 0, ai = 0;
    for (int kind : script) {
      if (kind == 0) {
        EXPECT_EQ(r.read_u64(), ints[ii++]);
      } else {
        EXPECT_EQ(r.read_f32_array(), arrays[ai++]);
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

// ------------------------------------------------ async engine fuzz sweep
//
// Randomized end-to-end sweep over the discrete-event engine
// (sim/event_engine.hpp): each seed draws a small topology, a staleness
// bound, heterogeneous link times, and a fault cocktail (stragglers, i.i.d.
// drops, crash/rejoin, correlated bursts, a simulated-time budget), then
// checks the invariants that must hold for EVERY configuration —
// termination without deadlock (the engine throws on quiescence with live
// blocked nodes rather than hanging), the message-conservation ledger
// (sent = delivered + dropped-by-cause + in-flight), staleness-histogram
// consistency, and bit-identical replay of the result JSON.

struct FuzzRun {
  sim::ExperimentConfig cfg;
  sim::ExperimentResult result;
  std::string json;
};

FuzzRun run_async_fuzz(unsigned seed) {
  std::mt19937 rng(seed);
  const std::size_t n = 3 + rng() % 6;       // 3..8 nodes
  const std::size_t rounds = 3 + rng() % 6;  // 3..8 rounds

  FuzzRun out;
  sim::ExperimentConfig& cfg = out.cfg;
  cfg.algorithm = sim::Algorithm::kFullSharing;
  cfg.rounds = rounds;
  cfg.local_steps = 1;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = rounds;
  cfg.eval_sample_limit = 4;
  cfg.seed = seed * 7919ull + 1;
  cfg.engine = sim::EngineKind::kAsync;
  cfg.staleness_bound = rng() % 4;  // 0 = barrier .. 3
  cfg.compute_seconds_per_round =
      0.01 + 0.001 * static_cast<double>(rng() % 50);
  if (rng() % 2 == 0) {  // WAN-like latency spread: arrivals interleave
    cfg.time.latency_dist = {net::LinkDist::Kind::kUniform, 0.001,
                             0.001 + 0.002 * static_cast<double>(1 + rng() % 30)};
  }
  if (rng() % 3 == 0) {  // heterogeneous bandwidth
    cfg.time.bandwidth_dist = {net::LinkDist::Kind::kLognormal, 1e6, 0.5};
  }
  if (rng() % 3 == 0) {  // slow minority
    cfg.time.straggler_fraction = 0.4;
    cfg.time.straggler_slowdown = 2.0 + static_cast<double>(rng() % 4);
  }
  if (rng() % 3 == 0) {  // lossy fabric
    cfg.message_drop_probability = 0.05 * static_cast<double>(1 + rng() % 5);
  }
  if (rng() % 4 == 0) {  // crash, sometimes permanent
    cfg.time.crash_nodes = 1;
    cfg.time.crash_at = 1 + rng() % (rounds - 1);
    cfg.time.rejoin_at =
        rng() % 2 == 0 ? 0 : cfg.time.crash_at + 1 + rng() % 2;
  }
  if (rng() % 4 == 0) {  // correlated burst outages
    cfg.time.burst_every = 2 + rng() % 3;
    cfg.time.burst_length = 1;
    cfg.time.burst_drop = 0.5;
  }
  if (rng() % 3 == 0) {  // simulated-time budget cutting the run mid-flight
    cfg.stop_at_sim_time =
        cfg.compute_seconds_per_round * static_cast<double>(rounds) * 0.6;
  }
  // Aggregation mode, drawn LAST so barrier seeds keep their exact draw
  // sequence. Free/weighted have no staleness gate: the drawn bound is
  // overridden to 0 (config validation enforces the same rule).
  switch (rng() % 3) {
    case 0:
      break;  // barrier, whatever bound was drawn
    case 1:
      cfg.async_mode = sim::AsyncMode::kFree;
      cfg.staleness_bound = 0;
      break;
    default:
      cfg.async_mode = sim::AsyncMode::kWeighted;
      cfg.staleness_bound = 0;
      cfg.staleness_decay = 0.25 + 0.25 * static_cast<double>(rng() % 3);
      break;
  }
  // Adversarial cocktail, drawn after EVERYTHING else so benign seeds keep
  // the exact configurations they had before the byzantine layer existed.
  // Attacks are only drawn for crash-free seeds: the seeded crash and
  // victim sets can collide, and validate() (correctly) rejects a node
  // that is both crashed and byzantine.
  if (cfg.time.crash_nodes == 0 && rng() % 3 == 0) {
    cfg.byzantine_nodes = 1 + rng() % 2;  // n >= 3 keeps an honest majority
    switch (rng() % 3) {
      case 0:
        cfg.byzantine_mode = algo::ByzantineMode::kRandom;
        break;
      case 1:
        cfg.byzantine_mode = algo::ByzantineMode::kSignFlip;
        break;
      default:
        cfg.byzantine_mode = algo::ByzantineMode::kScale;
        cfg.byzantine_scale = -5.0 + static_cast<double>(rng() % 11);
        break;
    }
  }
  if (rng() % 3 == 0) {  // defense, with or without an attack to defend from
    switch (rng() % 3) {
      case 0:
        cfg.robust_agg.kind = core::RobustAggKind::kTrimmedMean;
        cfg.robust_agg.trim_fraction =
            0.1 + 0.1 * static_cast<double>(rng() % 4);
        break;
      case 1:
        cfg.robust_agg.kind = core::RobustAggKind::kMedian;
        break;
      default:
        cfg.robust_agg.kind = core::RobustAggKind::kNormClip;
        cfg.robust_agg.clip_norm = 0.5 + 0.5 * static_cast<double>(rng() % 4);
        break;
    }
  }

  // Kernel-dispatch tier, drawn LAST — after the robust_agg draw — so every
  // earlier seed keeps its exact configuration. The tiers are bit-identical
  // (test_kernel_equivalence.cpp), so this draw swaps the code path under
  // the whole run without being allowed to move a single output bit; the
  // replay below re-draws the same tier from the same seed.
  const core::KernelTier tier = rng() % 2 == 0 ? core::KernelTier::kFast
                                               : core::KernelTier::kScalar;
  core::KernelDispatch::ScopedForce forced_tier(tier);

  data::Partition partition(n, {0, 1, 2, 3});
  auto counter = std::make_shared<std::size_t>(0);
  nn::ModelFactory factory =
      [counter]() -> std::unique_ptr<nn::SupervisedModel> {
    const std::size_t r = (*counter)++;
    constexpr std::size_t kDim = 12;
    tensor::Tensor target({kDim});
    for (std::size_t i = 0; i < kDim; ++i) {
      target[i] = std::sin(0.4f * static_cast<float>(i + 1) *
                           static_cast<float>(r + 1));
    }
    std::mt19937 init_rng(2000 + static_cast<unsigned>(r));
    return std::make_unique<jwins::testutil::QuadraticModel>(
        target, tensor::Tensor::normal({kDim}, 0.0f, 1.0f, init_rng));
  };
  static jwins::testutil::DummyDataset dataset;
  std::mt19937 topo_rng(seed + 13);
  graph::Graph g =
      n >= 4 ? graph::random_regular(n, 2, topo_rng) : graph::complete(n);
  sim::Experiment exp(cfg, factory, dataset, partition, dataset,
                      std::make_unique<graph::StaticTopology>(g));
  out.result = exp.run();
  std::ostringstream os;
  sim::write_result_json(os, "fuzz", out.result, /*include_wall=*/false);
  out.json = os.str();
  return out;
}

class AsyncEngineFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(AsyncEngineFuzz, TerminatesConservesAndReplaysBitIdentically) {
  const unsigned seed = GetParam();
  FuzzRun a;
  ASSERT_NO_THROW(a = run_async_fuzz(seed)) << "seed " << seed;
  const sim::ExperimentResult& r = a.result;
  const sim::EventEngineStats& ee = r.event_engine;
  SCOPED_TRACE(::testing::Message()
               << "seed " << seed << " mode "
               << sim::async_mode_name(a.cfg.async_mode) << " bound "
               << a.cfg.staleness_bound);
  ASSERT_TRUE(ee.enabled);
  EXPECT_GT(ee.events_processed, 0u);

  // Conservation: every send is accounted for exactly once.
  EXPECT_EQ(r.total_traffic.messages_sent,
            ee.messages_delivered + r.sim_time.dropped_total +
                ee.messages_in_flight);

  // Histogram consistency. Barrier: each applied message fell inside the
  // gate's window [0, B], and applied + stale-dropped never exceeds
  // deliveries (the remainder is messages still buffered when their
  // receiver finished). Free/weighted: no gate, so nothing is ever dropped
  // for age and the effective-neighbor ledger must agree with the age
  // histogram contribution for contribution.
  std::uint64_t applied = 0;
  for (const std::uint64_t c : ee.staleness_histogram) applied += c;
  EXPECT_LE(applied + ee.messages_stale_dropped, ee.messages_delivered);
  if (a.cfg.async_mode == sim::AsyncMode::kBarrier) {
    ASSERT_EQ(ee.staleness_histogram.size(), a.cfg.staleness_bound + 1);
  } else {
    EXPECT_EQ(ee.messages_stale_dropped, 0u);
    EXPECT_EQ(ee.staleness_overrides, 0u);
    EXPECT_EQ(applied, ee.contributions_applied);
    std::uint64_t weighted = 0;
    for (std::size_t k = 0; k < ee.effective_neighbors.size(); ++k) {
      weighted += ee.effective_neighbors[k] * k;
    }
    EXPECT_EQ(weighted, ee.contributions_applied);
  }

  // Phase attribution: outside plain-barrier mode the compute/comm split is
  // advanced at event granularity and must sum to the clock exactly.
  if (a.cfg.staleness_bound > 0 ||
      a.cfg.async_mode != sim::AsyncMode::kBarrier) {
    EXPECT_EQ(r.sim_time.compute_seconds + r.sim_time.comm_seconds,
              r.sim_seconds);
  }

  // Termination shape: rounds never overshoot, and without a budget every
  // node finishes all rounds with the queue fully drained.
  EXPECT_LE(r.rounds_run, a.cfg.rounds);
  EXPECT_LE(ee.local_steps_min(), ee.local_steps_max());
  if (a.cfg.stop_at_sim_time == 0.0) {
    EXPECT_EQ(r.rounds_run, a.cfg.rounds);
    EXPECT_EQ(ee.messages_in_flight, 0u);
  }

  // Adversarial accounting: the gated byzantine block appears exactly when
  // an attack or defense was drawn, and the attacker ledger matches.
  EXPECT_EQ(r.byzantine.extended,
            a.cfg.byzantine_nodes > 0 ||
                a.cfg.robust_agg.kind != core::RobustAggKind::kNone);
  if (a.cfg.byzantine_nodes > 0) {
    EXPECT_EQ(r.byzantine.attackers.size(), a.cfg.byzantine_nodes);
  } else if (r.byzantine.extended) {
    EXPECT_TRUE(r.byzantine.attackers.empty());
    EXPECT_EQ(r.byzantine.corrupted_messages, 0u);
  }

  // Replay: the same seed must reproduce the result JSON byte for byte.
  const FuzzRun b = run_async_fuzz(seed);
  EXPECT_EQ(a.json, b.json);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncEngineFuzz, ::testing::Range(0u, 100u));

// ------------------------------------------------- payload fuzz-ish check

TEST(PayloadProperty, RandomSparsitiesRoundTripAllEncodings) {
  std::mt19937_64 rng(123);
  std::mt19937 vrng(321);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + rng() % 5000;
    const std::size_t k = 1 + rng() % n;
    core::SparsePayload payload;
    payload.vector_length = static_cast<std::uint32_t>(n);
    payload.indices = compress::random_indices(n, k, rng());
    payload.values.resize(payload.indices.size());
    for (float& v : payload.values) v = dist(vrng);
    for (const auto index_mode :
         {core::IndexEncoding::kEliasGamma, core::IndexEncoding::kRaw}) {
      for (const auto value_mode :
           {core::ValueEncoding::kXorCodec, core::ValueEncoding::kRaw}) {
        core::PayloadOptions options;
        options.index_encoding = index_mode;
        options.value_encoding = value_mode;
        const auto encoded = core::encode_payload(payload, options);
        const auto back = core::decode_payload(encoded.body);
        EXPECT_EQ(back.indices, payload.indices);
        EXPECT_EQ(back.values, payload.values);
      }
    }
  }
}

}  // namespace
}  // namespace jwins

#include <gtest/gtest.h>

#include <random>

#include "nn/conv.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"
#include "nn/rnn.hpp"

namespace jwins::nn {
namespace {

using tensor::Tensor;

Tensor random_input(tensor::Shape shape, unsigned seed) {
  std::mt19937 rng(seed);
  return Tensor::normal(std::move(shape), 0.0f, 1.0f, rng);
}

// ------------------------------------------------------------------- linear

TEST(Linear, ForwardKnownValues) {
  std::mt19937 rng(1);
  Linear layer(2, 2, rng);
  // Overwrite the random init with known weights.
  layer.params()[0]->data()[0] = 1.0f;  // W[0][0]
  layer.params()[0]->data()[1] = 2.0f;  // W[0][1]
  layer.params()[0]->data()[2] = 3.0f;
  layer.params()[0]->data()[3] = 4.0f;
  layer.params()[1]->data()[0] = 0.5f;  // b[0]
  layer.params()[1]->data()[1] = -0.5f;
  const Tensor x = Tensor::from({1, 2}, {10.0f, 20.0f});
  const Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], 10.0f + 40.0f + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 30.0f + 80.0f - 0.5f);
}

TEST(Linear, GradCheck) {
  std::mt19937 rng(2);
  Linear layer(5, 3, rng);
  const auto result = grad_check_module(layer, random_input({4, 5}, 3));
  // float32 sums over the batch leave ~1e-2 relative noise in the numeric
  // reference; real gradient bugs show up as 10-100% errors.
  EXPECT_TRUE(result.ok(5e-2)) << "max rel err = " << result.max_rel_error;
}

TEST(Linear, RejectsWrongInputShape) {
  std::mt19937 rng(1);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW(layer.forward(Tensor({4})), std::invalid_argument);
}

TEST(Linear, GradientAccumulatesAcrossBackwardCalls) {
  std::mt19937 rng(4);
  Linear layer(2, 2, rng);
  const Tensor x = random_input({3, 2}, 5);
  layer.forward(x);
  layer.backward(Tensor({3, 2}, 1.0f));
  const float after_one = (*layer.grads()[0])[0];
  layer.forward(x);
  layer.backward(Tensor({3, 2}, 1.0f));
  EXPECT_NEAR((*layer.grads()[0])[0], 2.0f * after_one, 1e-4f);
  layer.zero_grad();
  EXPECT_FLOAT_EQ((*layer.grads()[0])[0], 0.0f);
}

// -------------------------------------------------------------- activations

TEST(ReLU, ForwardAndGradCheck) {
  ReLU relu;
  const Tensor x = Tensor::of({-1.0f, 0.5f, 2.0f});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  // Gradient check away from the kink at 0.
  ReLU fresh;
  Tensor input = random_input({2, 6}, 6);
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (std::fabs(input[i]) < 0.05f) input[i] = 0.2f;
  }
  const auto result = grad_check_module(fresh, input);
  EXPECT_TRUE(result.ok()) << result.max_rel_error;
}

TEST(Tanh, GradCheck) {
  Tanh layer;
  const auto result = grad_check_module(layer, random_input({3, 4}, 7));
  EXPECT_TRUE(result.ok()) << result.max_rel_error;
}

TEST(Sigmoid, GradCheckAndRange) {
  Sigmoid layer;
  const Tensor y = layer.forward(random_input({2, 8}, 8));
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y[i], 0.0f);
    EXPECT_LT(y[i], 1.0f);
  }
  Sigmoid fresh;
  const auto result = grad_check_module(fresh, random_input({2, 8}, 9));
  EXPECT_TRUE(result.ok()) << result.max_rel_error;
}

TEST(Flatten, RoundTripShape) {
  Flatten layer;
  const Tensor x = random_input({2, 3, 4, 5}, 10);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 60}));
  const Tensor back = layer.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

// --------------------------------------------------------------------- conv

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, stride, pad, size;
};

class ConvParam : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParam, GradCheck) {
  const auto c = GetParam();
  std::mt19937 rng(31);
  Conv2d layer(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad, rng);
  const auto result =
      grad_check_module(layer, random_input({2, c.in_ch, c.size, c.size}, 32));
  // float32 accumulations through many terms: allow 5% relative slack.
  EXPECT_TRUE(result.ok(5e-2)) << "max rel err = " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvParam,
                         ::testing::Values(ConvCase{1, 1, 3, 1, 1, 5},
                                           ConvCase{2, 3, 3, 1, 1, 6},
                                           ConvCase{3, 2, 3, 2, 1, 8},
                                           ConvCase{1, 4, 5, 1, 2, 7},
                                           ConvCase{2, 2, 1, 1, 0, 4}));

TEST(Conv2d, IdentityKernelPreservesInput) {
  std::mt19937 rng(33);
  Conv2d layer(1, 1, 1, 1, 0, rng);
  layer.params()[0]->data()[0] = 1.0f;  // 1x1 kernel = identity
  layer.params()[1]->data()[0] = 0.0f;
  const Tensor x = random_input({1, 1, 4, 4}, 34);
  const Tensor y = layer.forward(x);
  EXPECT_TRUE(tensor::allclose(x, y.reshape(x.shape()), 1e-6f));
}

TEST(Conv2d, OutputShape) {
  std::mt19937 rng(35);
  Conv2d layer(3, 8, 3, 1, 1, rng);
  const Tensor y = layer.forward(random_input({2, 3, 8, 8}, 36));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 8, 8, 8}));
  Conv2d strided(3, 4, 3, 2, 0, rng);
  const Tensor y2 = strided.forward(random_input({1, 3, 9, 9}, 37));
  EXPECT_EQ(y2.shape(), (tensor::Shape{1, 4, 4, 4}));
}

TEST(MaxPool2d, ForwardSelectsMaxAndRoutesGradient) {
  MaxPool2d pool(2, 2);
  const Tensor x = Tensor::from({1, 1, 2, 4}, {1, 5, 2, 0,
                                               3, 4, 8, 7});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  const Tensor g = pool.backward(Tensor::from({1, 1, 1, 2}, {10.0f, 20.0f}));
  EXPECT_FLOAT_EQ(g[1], 10.0f);  // position of 5
  EXPECT_FLOAT_EQ(g[6], 20.0f);  // position of 8
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(MaxPool2d, GradCheckOnDistinctValues) {
  // Use well-separated values so the argmax is stable under epsilon nudges.
  MaxPool2d pool(2, 2);
  std::mt19937 rng(40);
  Tensor x({1, 2, 4, 4});
  std::vector<std::size_t> perm(x.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(perm[i]);  // all distinct, gaps of >= 1
  }
  const auto result = grad_check_module(pool, x);
  EXPECT_TRUE(result.ok()) << result.max_rel_error;
}

TEST(GroupNorm, NormalizesPerGroup) {
  GroupNorm gn(2, 4);
  const Tensor x = random_input({2, 4, 3, 3}, 41);
  const Tensor y = gn.forward(x);
  // With gamma=1, beta=0 each (sample, group) slice has ~zero mean, unit var.
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t g = 0; g < 2; ++g) {
      double mean = 0.0, var = 0.0;
      const std::size_t group_elems = 2 * 3 * 3;
      for (std::size_t cc = 0; cc < 2; ++cc) {
        for (std::size_t i = 0; i < 9; ++i) {
          mean += y[((b * 4 + g * 2 + cc) * 9) + i];
        }
      }
      mean /= group_elems;
      for (std::size_t cc = 0; cc < 2; ++cc) {
        for (std::size_t i = 0; i < 9; ++i) {
          const double d = y[((b * 4 + g * 2 + cc) * 9) + i] - mean;
          var += d * d;
        }
      }
      var /= group_elems;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-2);
    }
  }
}

TEST(GroupNorm, GradCheck) {
  GroupNorm gn(2, 4);
  // With the default gamma == 1 the checker's sum-of-outputs objective is
  // identically constant (normalized values sum to zero per group), so the
  // true gradient is zero and the check compares pure float noise. Distinct
  // per-channel affine parameters make the objective informative.
  const float gammas[4] = {0.5f, 1.5f, 0.8f, 1.2f};
  const float betas[4] = {0.1f, -0.2f, 0.3f, 0.0f};
  for (std::size_t c = 0; c < 4; ++c) {
    (*gn.params()[0])[c] = gammas[c];
    (*gn.params()[1])[c] = betas[c];
  }
  const auto result = grad_check_module(gn, random_input({2, 4, 2, 2}, 42));
  EXPECT_TRUE(result.ok(5e-2)) << "max rel err = " << result.max_rel_error;
}

TEST(GroupNorm, RejectsIndivisibleChannels) {
  EXPECT_THROW(GroupNorm(3, 4), std::invalid_argument);
  EXPECT_THROW(GroupNorm(0, 4), std::invalid_argument);
}

// ---------------------------------------------------------------- embedding

TEST(Embedding, LookupAndGradient) {
  std::mt19937 rng(50);
  Embedding emb(5, 3, rng);
  const Tensor tokens = Tensor::from({2, 2}, {0.0f, 4.0f, 4.0f, 1.0f});
  const Tensor out = emb.forward(tokens);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 2, 3}));
  // Row 4 appears twice.
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(out[(0 * 2 + 1) * 3 + d], (*emb.params()[0])[4 * 3 + d]);
    EXPECT_FLOAT_EQ(out[(1 * 2 + 0) * 3 + d], (*emb.params()[0])[4 * 3 + d]);
  }
  emb.zero_grad();
  emb.backward(Tensor({2, 2, 3}, 1.0f));
  // Token 4 used twice -> gradient 2 per dim; token 2 unused -> 0.
  EXPECT_FLOAT_EQ((*emb.grads()[0])[4 * 3], 2.0f);
  EXPECT_FLOAT_EQ((*emb.grads()[0])[2 * 3], 0.0f);
  EXPECT_FLOAT_EQ((*emb.grads()[0])[0 * 3], 1.0f);
}

TEST(Embedding, OutOfVocabThrows) {
  std::mt19937 rng(51);
  Embedding emb(3, 2, rng);
  EXPECT_THROW(emb.forward(Tensor::from({1, 1}, {7.0f})), std::out_of_range);
}

// --------------------------------------------------------------------- lstm

TEST(Lstm, OutputShapeAndRange) {
  std::mt19937 rng(60);
  Lstm lstm(3, 5, rng);
  const Tensor y = lstm.forward(random_input({2, 4, 3}, 61));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 4, 5}));
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y[i], -1.0f);  // |h| = |o * tanh(c)| < 1
    EXPECT_LT(y[i], 1.0f);
  }
}

TEST(Lstm, GradCheckSingleStep) {
  std::mt19937 rng(62);
  Lstm lstm(2, 3, rng);
  const auto result = grad_check_module(lstm, random_input({2, 1, 2}, 63));
  EXPECT_TRUE(result.ok()) << "max rel err = " << result.max_rel_error;
}

TEST(Lstm, GradCheckMultiStepBptt) {
  std::mt19937 rng(64);
  Lstm lstm(2, 3, rng);
  const auto result = grad_check_module(lstm, random_input({2, 5, 2}, 65));
  EXPECT_TRUE(result.ok(5e-2)) << "max rel err = " << result.max_rel_error;
}

TEST(Lstm, StateCarriesAcrossTimesteps) {
  // Feeding the same input at two timesteps must NOT produce identical
  // outputs (the recurrent state evolves).
  std::mt19937 rng(66);
  Lstm lstm(2, 4, rng);
  Tensor x({1, 2, 2});
  x[0] = x[2] = 0.7f;
  x[1] = x[3] = -0.3f;
  const Tensor y = lstm.forward(x);
  bool differs = false;
  for (std::size_t j = 0; j < 4; ++j) {
    if (std::fabs(y[j] - y[4 + j]) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
}

// --------------------------------------------------------------- sequential

TEST(Sequential, ComposesForwardBackward) {
  std::mt19937 rng(70);
  Sequential net;
  net.emplace<Linear>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(net.layer_count(), 3u);
  EXPECT_EQ(net.params().size(), 4u);  // two Linears x (W, b)
  const auto result = grad_check_module(net, random_input({3, 4}, 71));
  EXPECT_TRUE(result.ok()) << result.max_rel_error;
}

}  // namespace
}  // namespace jwins::nn

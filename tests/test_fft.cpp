#include "dwt/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace jwins::dwt {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<float>> data(6);
  EXPECT_THROW(fft(data, false), std::invalid_argument);
}

TEST(Fft, DeltaFunctionHasFlatSpectrum) {
  std::vector<std::complex<float>> data(8, {0.0f, 0.0f});
  data[0] = {1.0f, 0.0f};
  fft(data, false);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(c.imag(), 0.0f, 1e-5f);
  }
}

TEST(Fft, ConstantSignalIsDcBin) {
  std::vector<std::complex<float>> data(8, {2.0f, 0.0f});
  fft(data, false);
  EXPECT_NEAR(data[0].real(), 16.0f, 1e-4f);
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0f, 1e-4f);
  }
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  const std::size_t n = 16;
  std::vector<std::complex<float>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::cos(2.0f * 3.14159265f * 3.0f * i / n), 0.0f};
  }
  fft(data, false);
  // cos(2*pi*3t/N) -> bins 3 and N-3 with magnitude N/2.
  EXPECT_NEAR(std::abs(data[3]), n / 2.0f, 1e-3f);
  EXPECT_NEAR(std::abs(data[n - 3]), n / 2.0f, 1e-3f);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 3 && i != n - 3) {
      EXPECT_NEAR(std::abs(data[i]), 0.0f, 1e-3f);
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  std::mt19937 rng(5);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<std::complex<float>> data(64);
  std::vector<std::complex<float>> orig(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {dist(rng), dist(rng)};
    orig[i] = data[i];
  }
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-4f);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-4f);
  }
}

TEST(Fft, ParsevalHolds) {
  std::mt19937 rng(9);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<std::complex<float>> data(128);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = {dist(rng), 0.0f};
    time_energy += std::norm(c);
  }
  fft(data, false);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / (128.0 * time_energy), 1.0, 1e-3);
}

TEST(FftReal, PadsAndInverts) {
  std::vector<float> x(100);
  std::mt19937 rng(3);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (float& v : x) v = dist(rng);
  const auto spectrum = fft_real(x);
  EXPECT_EQ(spectrum.size(), 128u);
  const auto back = ifft_real(spectrum, x.size());
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-4f);
}

TEST(FftSparsify, FullBudgetReconstructsExactly) {
  std::vector<float> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.1f * static_cast<float>(i));
  }
  // Budget of 2*spectrum floats keeps every bin.
  const auto back = fft_sparsify_reconstruct(x, 2 * 64);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-4f);
}

TEST(FftSparsify, SmoothSignalSurvivesSmallBudget) {
  const std::size_t n = 256;
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0f * 3.14159265f * 4.0f * i / n) +
           0.5f * std::cos(2.0f * 3.14159265f * 9.0f * i / n);
  }
  const auto back = fft_sparsify_reconstruct(x, n / 10);
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += (back[i] - x[i]) * (back[i] - x[i]);
    ref += x[i] * x[i];
  }
  EXPECT_LT(err / ref, 0.05);  // two tones fit easily in a 10% budget
}

TEST(FftSparsify, ZeroBudgetGivesZeroSignal) {
  std::vector<float> x(32, 1.0f);
  const auto back = fft_sparsify_reconstruct(x, 0);
  for (float v : back) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

}  // namespace
}  // namespace jwins::dwt

#include <gtest/gtest.h>

#include <atomic>

#include "net/network.hpp"
#include "net/serializer.hpp"
#include "net/thread_pool.hpp"

namespace jwins::net {
namespace {

TEST(Serializer, PodRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0x1234);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_f32(3.25f);
  w.write_f64(-2.5);
  const auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serializer, ArraysRoundTrip) {
  ByteWriter w;
  const std::vector<float> floats{1.5f, -2.5f, 0.0f};
  const std::vector<std::uint32_t> ints{7, 8, 9};
  const std::vector<std::uint8_t> blob{0xDE, 0xAD};
  w.write_f32_array(floats);
  w.write_u32_array(ints);
  w.write_bytes(blob);
  const auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_EQ(r.read_f32_array(), floats);
  EXPECT_EQ(r.read_u32_array(), ints);
  EXPECT_EQ(r.read_bytes(), blob);
}

TEST(Serializer, TruncatedReadThrows) {
  ByteWriter w;
  w.write_u16(42);
  const auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_u32(), std::out_of_range);
  ByteReader r2(bytes);
  EXPECT_THROW(r2.read_f32_array(), std::out_of_range);
}

TEST(Message, WireSizeAndSplit) {
  Message msg;
  msg.sender = 1;
  msg.body = SharedBytes::zeros(100);
  msg.metadata_bytes = 30;
  EXPECT_EQ(msg.wire_size(), 100u + Message::kEnvelopeBytes);
  EXPECT_EQ(msg.payload_bytes(), 70u);
}

TEST(TrafficMeter, AccumulatesPerNode) {
  TrafficMeter meter(3);
  Message msg;
  msg.sender = 1;
  msg.body = SharedBytes::zeros(50);
  msg.metadata_bytes = 10;
  meter.record_send(1, msg);
  meter.record_send(1, msg);
  EXPECT_EQ(meter.node(1).messages_sent, 2u);
  EXPECT_EQ(meter.node(1).bytes_sent, 2 * (50 + Message::kEnvelopeBytes));
  EXPECT_EQ(meter.node(1).metadata_bytes_sent, 20u);
  EXPECT_EQ(meter.node(1).payload_bytes_sent, 80u);
  EXPECT_EQ(meter.node(0).messages_sent, 0u);
  const NodeTraffic total = meter.total();
  EXPECT_EQ(total.messages_sent, 2u);
  EXPECT_NEAR(meter.average_bytes_per_node(),
              2.0 * (50 + Message::kEnvelopeBytes) / 3.0, 1e-9);
  meter.reset();
  EXPECT_EQ(meter.total().messages_sent, 0u);
}

TEST(Network, SendAndDrain) {
  Network net(3);
  Message msg;
  msg.sender = 0;
  msg.round = 7;
  msg.body = {1, 2, 3};
  net.send(1, msg);
  net.send(1, msg);
  net.send(2, msg);
  auto inbox1 = net.drain(1);
  EXPECT_EQ(inbox1.size(), 2u);
  EXPECT_EQ(inbox1[0].round, 7u);
  EXPECT_TRUE(net.drain(1).empty());  // drained
  EXPECT_EQ(net.drain(2).size(), 1u);
  EXPECT_EQ(net.traffic().node(0).messages_sent, 3u);
}

TEST(Network, BoundsChecked) {
  Network net(2);
  Message msg;
  msg.sender = 0;
  EXPECT_THROW(net.send(5, msg), std::out_of_range);
  msg.sender = 9;
  EXPECT_THROW(net.send(1, msg), std::out_of_range);
  EXPECT_THROW(net.drain(4), std::out_of_range);
}

TEST(Network, RoundTimeUsesSlowestNode) {
  LinkModel link;
  link.bandwidth_bytes_per_sec = 1000.0;
  link.latency_sec = 0.5;
  Network net(2, link);
  Message big;
  big.sender = 0;
  big.body = SharedBytes::zeros(2000 - Message::kEnvelopeBytes);
  Message small;
  small.sender = 1;
  small.body = SharedBytes::zeros(100 - Message::kEnvelopeBytes);
  net.send(1, big);
  net.send(0, small);
  net.finish_round(/*compute_seconds=*/1.0);
  // compute 1.0 + latency 0.5 + 2000 bytes / 1000 Bps = 3.5 s.
  EXPECT_NEAR(net.simulated_seconds(), 3.5, 1e-9);
  // Round byte counters reset: an idle round costs compute + latency.
  net.finish_round(1.0);
  EXPECT_NEAR(net.simulated_seconds(), 5.0, 1e-9);
}

TEST(Network, ConcurrentSendsAreSafe) {
  Network net(8);
  ThreadPool pool(8);
  pool.parallel_for(8, [&](std::size_t sender) {
    for (int m = 0; m < 50; ++m) {
      Message msg;
      msg.sender = static_cast<std::uint32_t>(sender);
      msg.body = SharedBytes::zeros(16);
      net.send(static_cast<std::uint32_t>((sender + 1) % 8), msg);
    }
  });
  EXPECT_EQ(net.traffic().total().messages_sent, 400u);
  std::size_t received = 0;
  for (std::uint32_t i = 0; i < 8; ++i) received += net.drain(i).size();
  EXPECT_EQ(received, 400u);
}

TEST(Network, DrainReturnsCanonicalSenderOrder) {
  // Whatever order concurrent senders appended in, drain must hand back the
  // sequential engine's arrival order: (round, sender) ascending, stable
  // within one sender.
  Network net(4);
  auto send = [&](std::uint32_t sender, std::uint32_t round, std::uint8_t tag) {
    Message msg;
    msg.sender = sender;
    msg.round = round;
    msg.body = {tag};
    net.send(0, msg);
  };
  send(2, 1, 0);
  send(0, 1, 1);
  send(3, 0, 2);
  send(0, 1, 3);  // second message from sender 0, same round
  send(1, 1, 4);
  const auto inbox = net.drain(0);
  ASSERT_EQ(inbox.size(), 5u);
  EXPECT_EQ(inbox[0].sender, 3u);  // round 0 first
  EXPECT_EQ(inbox[1].sender, 0u);
  EXPECT_EQ(inbox[1].body[0], 1);  // emission order kept within a sender
  EXPECT_EQ(inbox[2].sender, 0u);
  EXPECT_EQ(inbox[2].body[0], 3);
  EXPECT_EQ(inbox[3].sender, 1u);
  EXPECT_EQ(inbox[4].sender, 2u);
}

}  // namespace
}  // namespace jwins::net

// Discrete-event asynchronous engine (sim/event_engine.hpp): queue
// invariants on hand-computed schedules, uplink-serialization math against
// the TimeModel's own numbers, the golden barrier-mode reduction to the
// synchronous reference under every fault/heterogeneity family, genuine
// bounded-staleness behavior (histogram, stale drops, budget divergence,
// message conservation), and the sub-round crash semantics both engines pin.
#include "sim/event_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <sstream>

#include "graph/graph.hpp"
#include "net/time_model.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "test_util.hpp"

namespace jwins::sim {
namespace {

using jwins::testutil::DummyDataset;
using jwins::testutil::QuadraticModel;
using tensor::Tensor;

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(3.0, 0, EventKind::kTrainDone, 0);
  q.push(1.0, 1, EventKind::kTrainDone, 0);
  q.push(2.0, 2, EventKind::kTrainDone, 0);
  EXPECT_EQ(q.pop().node, 1u);
  EXPECT_EQ(q.pop().node, 2u);
  EXPECT_EQ(q.pop().node, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreaksByNodeRank) {
  EventQueue q;
  q.push(1.0, 3, EventKind::kTrainDone, 0);
  q.push(1.0, 1, EventKind::kTrainDone, 0);
  q.push(1.0, 2, EventKind::kTrainDone, 0);
  EXPECT_EQ(q.pop().node, 1u);
  EXPECT_EQ(q.pop().node, 2u);
  EXPECT_EQ(q.pop().node, 3u);
}

TEST(EventQueue, TieBreaksBySeqWithinNode) {
  EventQueue q;
  const auto s0 = q.push(1.0, 0, EventKind::kLocalStep, 0);
  const auto s1 = q.push(1.0, 0, EventKind::kTrainDone, 1);
  ASSERT_LT(s0, s1);
  EXPECT_EQ(q.pop().kind, EventKind::kLocalStep);  // earlier seq first
  EXPECT_EQ(q.pop().kind, EventKind::kTrainDone);
}

TEST(EventQueue, SeqUniqueAndMonotone) {
  EventQueue q;
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto s = q.push(static_cast<double>(i), 0, EventKind::kTrainDone, 0);
    if (i > 0) {
      EXPECT_GT(s, prev);
    }
    prev = s;
  }
  EXPECT_EQ(q.size(), 100u);
}

TEST(EventQueue, MaxDepthIsHighWaterMark) {
  EventQueue q;
  q.push(1.0, 0, EventKind::kTrainDone, 0);
  q.push(2.0, 0, EventKind::kTrainDone, 0);
  q.push(3.0, 0, EventKind::kTrainDone, 0);
  (void)q.pop();
  (void)q.pop();
  q.push(4.0, 0, EventKind::kTrainDone, 0);
  EXPECT_EQ(q.max_depth(), 3u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  q.push(1.0, 0, EventKind::kTrainDone, 0);
  (void)q.pop();
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, PushInThePastThrows) {
  EventQueue q;
  q.push(5.0, 0, EventKind::kTrainDone, 0);
  (void)q.pop();
  EXPECT_THROW(q.push(4.9, 0, EventKind::kTrainDone, 0), std::logic_error);
  // Exactly the last pop time is legal (simultaneous follow-up events).
  EXPECT_NO_THROW(q.push(5.0, 0, EventKind::kTrainDone, 0));
}

TEST(EventQueue, PushNanThrows) {
  EventQueue q;
  EXPECT_THROW(
      q.push(std::numeric_limits<double>::quiet_NaN(), 0,
             EventKind::kTrainDone, 0),
      std::logic_error);
}

TEST(EventQueue, PopTimesNeverDecreaseUnderRandomLoad) {
  EventQueue q;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (int i = 0; i < 200; ++i) {
    q.push(dist(rng), static_cast<std::uint32_t>(rng() % 8),
           EventKind::kTrainDone, 0);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
  EXPECT_EQ(q.last_pop_time(), prev);
}

TEST(EventQueue, LastPopTimeStartsAtMinusInfinity) {
  EventQueue q;
  EXPECT_EQ(q.last_pop_time(), -std::numeric_limits<double>::infinity());
  q.push(0.0, 0, EventKind::kTrainDone, 0);
  (void)q.pop();
  EXPECT_EQ(q.last_pop_time(), 0.0);
}

TEST(EventQueue, CarriesRoundAndMessagePayload) {
  EventQueue q;
  net::Message msg;
  msg.sender = 3;
  msg.round = 7;
  q.push(1.0, 2, EventKind::kMessageArrival, 7, std::move(msg));
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::kMessageArrival);
  EXPECT_EQ(e.round, 7u);
  EXPECT_EQ(e.message.sender, 3u);
  EXPECT_EQ(e.message.round, 7u);
}

TEST(EventQueue, InterleavedPushesStaySorted) {
  EventQueue q;
  q.push(1.0, 0, EventKind::kTrainDone, 0);
  q.push(3.0, 0, EventKind::kTrainDone, 0);
  EXPECT_EQ(q.pop().time, 1.0);
  q.push(2.0, 1, EventKind::kTrainDone, 0);  // between the two, legal
  EXPECT_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.pop().time, 3.0);
}

TEST(EventKindName, AllDistinct) {
  EXPECT_STREQ(event_kind_name(EventKind::kTrainDone), "train-done");
  EXPECT_STREQ(event_kind_name(EventKind::kMessageArrival), "message-arrival");
  EXPECT_STREQ(event_kind_name(EventKind::kLocalStep), "local-step");
}

// ------------------------------------------------------- UplinkSerializer

net::TimeModel flat_model(std::size_t n) {
  return net::TimeModel(n, net::LinkModel{}, net::TimeModelConfig{}, 1);
}

TEST(UplinkSerializer, SingleMessageIsTransferPlusLatency) {
  const net::TimeModel tm = flat_model(4);
  UplinkSerializer up(4);
  const double off = up.enqueue(tm, 0, 1, 1000);
  EXPECT_DOUBLE_EQ(off, 1000.0 / tm.edge_bandwidth(0, 1) +
                            tm.edge_latency(0, 1));
}

TEST(UplinkSerializer, BackToBackMessagesSerialize) {
  const net::TimeModel tm = flat_model(4);
  UplinkSerializer up(4);
  const double t1 = 1000.0 / tm.edge_bandwidth(0, 1);
  const double t2 = 2000.0 / tm.edge_bandwidth(0, 2);
  EXPECT_DOUBLE_EQ(up.enqueue(tm, 0, 1, 1000), t1 + tm.edge_latency(0, 1));
  // The second transfer queues behind the first on node 0's uplink.
  EXPECT_DOUBLE_EQ(up.enqueue(tm, 0, 2, 2000),
                   t1 + t2 + tm.edge_latency(0, 2));
  EXPECT_DOUBLE_EQ(up.queued(0), t1 + t2);
}

TEST(UplinkSerializer, SendersAreIndependent) {
  const net::TimeModel tm = flat_model(4);
  UplinkSerializer up(4);
  (void)up.enqueue(tm, 0, 1, 8000);
  const double off = up.enqueue(tm, 1, 2, 1000);
  EXPECT_DOUBLE_EQ(off, 1000.0 / tm.edge_bandwidth(1, 2) +
                            tm.edge_latency(1, 2));
}

TEST(UplinkSerializer, ResetStartsAFreshRound) {
  const net::TimeModel tm = flat_model(4);
  UplinkSerializer up(4);
  (void)up.enqueue(tm, 0, 1, 5000);
  up.reset(0);
  EXPECT_DOUBLE_EQ(up.queued(0), 0.0);
  EXPECT_DOUBLE_EQ(up.enqueue(tm, 0, 1, 5000),
                   5000.0 / tm.edge_bandwidth(0, 1) + tm.edge_latency(0, 1));
}

TEST(UplinkSerializer, FlatModelOffsetsMatchLegacyFormula) {
  // Under the flat model every edge has the base bandwidth/latency, so the
  // offset of a sender's k-th message is sum(bytes)/bw + latency — the same
  // quantities the legacy comm_time(max_node_bytes) builds from.
  const net::LinkModel base;
  const net::TimeModel tm = flat_model(3);
  UplinkSerializer up(3);
  const double off1 = up.enqueue(tm, 0, 1, 1234);
  const double off2 = up.enqueue(tm, 0, 2, 1234);
  EXPECT_DOUBLE_EQ(off1, base.latency_sec +
                             1234.0 / base.bandwidth_bytes_per_sec);
  EXPECT_DOUBLE_EQ(off2, base.latency_sec +
                             2468.0 / base.bandwidth_bytes_per_sec);
}

TEST(UplinkSerializer, HeterogeneousEdgesUseTheirOwnParameters) {
  net::TimeModelConfig cfg;
  cfg.bandwidth_dist = {net::LinkDist::Kind::kUniform, 1e6, 10e6};
  cfg.latency_dist = {net::LinkDist::Kind::kUniform, 0.001, 0.050};
  const net::TimeModel tm(4, net::LinkModel{}, cfg, 9);
  UplinkSerializer up(4);
  const double t1 = 700.0 / tm.edge_bandwidth(2, 0);
  const double t2 = 900.0 / tm.edge_bandwidth(2, 3);
  EXPECT_DOUBLE_EQ(up.enqueue(tm, 2, 0, 700), t1 + tm.edge_latency(2, 0));
  EXPECT_DOUBLE_EQ(up.enqueue(tm, 2, 3, 900),
                   t1 + t2 + tm.edge_latency(2, 3));
}

// --------------------------------------------- mini-experiment scaffolding

constexpr std::size_t kDim = 16;

Tensor node_target(std::size_t rank) {
  Tensor t({kDim});
  for (std::size_t i = 0; i < kDim; ++i) {
    t[i] = std::sin(0.3f * static_cast<float>(i + 1) *
                    static_cast<float>(rank + 1)) *
           2.0f;
  }
  return t;
}

Tensor node_init(std::size_t rank) {
  std::mt19937 rng(1000 + static_cast<unsigned>(rank));
  return Tensor::normal({kDim}, 0.0f, 1.0f, rng);
}

const data::Dataset& dummy_dataset() {
  static DummyDataset dataset;
  return dataset;
}

ExperimentConfig mini_config(std::size_t rounds) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kFullSharing;
  cfg.rounds = rounds;
  cfg.local_steps = 1;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = rounds;
  cfg.eval_sample_limit = 4;
  cfg.seed = 3;
  return cfg;
}

std::unique_ptr<Experiment> make_mini(const ExperimentConfig& cfg,
                                      std::size_t n, std::size_t degree = 2,
                                      unsigned topo_seed = 7) {
  data::Partition partition(n, {0, 1, 2, 3});
  auto counter = std::make_shared<std::size_t>(0);
  nn::ModelFactory factory =
      [counter]() -> std::unique_ptr<nn::SupervisedModel> {
    const std::size_t r = (*counter)++;
    return std::make_unique<QuadraticModel>(node_target(r), node_init(r));
  };
  std::mt19937 rng(topo_seed);
  graph::Graph g =
      n >= 4 ? graph::random_regular(n, degree, rng) : graph::complete(n);
  return std::make_unique<Experiment>(
      cfg, factory, dummy_dataset(), partition, dummy_dataset(),
      std::make_unique<graph::StaticTopology>(g));
}

std::string json_of(const ExperimentResult& result) {
  std::ostringstream os;
  write_result_json(os, "t", result, /*include_wall=*/false);
  return os.str();
}

/// Runs cfg under both engines on identically-built experiments and demands
/// byte-identical result JSON plus bit-identical model parameters.
void expect_golden_reduction(ExperimentConfig cfg, std::size_t n) {
  cfg.engine = EngineKind::kSync;
  auto sync = make_mini(cfg, n);
  const ExperimentResult rs = sync->run();
  cfg.engine = EngineKind::kAsync;
  auto async = make_mini(cfg, n);
  const ExperimentResult ra = async->run();
  EXPECT_EQ(json_of(rs), json_of(ra));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sync->node(i).flat_params(), async->node(i).flat_params())
        << "node " << i;
  }
  EXPECT_FALSE(rs.event_engine.enabled);
  EXPECT_TRUE(ra.event_engine.enabled);
  EXPECT_FALSE(ra.event_engine.extended);  // barrier mode: no JSON block
}

// --------------------------------- barrier mode: the exact sync reduction

TEST(EventEngineBarrier, MatchesSyncOnFlatModel) {
  expect_golden_reduction(mini_config(6), 4);
}

TEST(EventEngineBarrier, MatchesSyncWithEvaluationSchedule) {
  ExperimentConfig cfg = mini_config(9);
  cfg.eval_every = 2;
  expect_golden_reduction(cfg, 4);
}

TEST(EventEngineBarrier, MatchesSyncWithHeterogeneousLinks) {
  ExperimentConfig cfg = mini_config(6);
  cfg.time.bandwidth_dist = {net::LinkDist::Kind::kLognormal, 12.5e6, 0.75};
  cfg.time.latency_dist = {net::LinkDist::Kind::kUniform, 0.002, 0.040};
  expect_golden_reduction(cfg, 6);
}

TEST(EventEngineBarrier, MatchesSyncWithStragglers) {
  ExperimentConfig cfg = mini_config(6);
  cfg.time.straggler_fraction = 0.4;
  cfg.time.straggler_slowdown = 5.0;
  expect_golden_reduction(cfg, 6);
}

TEST(EventEngineBarrier, MatchesSyncWithIidDrop) {
  ExperimentConfig cfg = mini_config(8);
  cfg.message_drop_probability = 0.3;
  expect_golden_reduction(cfg, 4);
}

TEST(EventEngineBarrier, MatchesSyncWithEdgeDrop) {
  ExperimentConfig cfg = mini_config(8);
  cfg.time.edge_drop = {net::EdgeDropDist::Kind::kUniform, 0.1, 0.5};
  expect_golden_reduction(cfg, 4);
}

TEST(EventEngineBarrier, MatchesSyncWithBurstOutages) {
  ExperimentConfig cfg = mini_config(9);
  cfg.time.burst_every = 3;
  cfg.time.burst_length = 1;
  cfg.time.burst_drop = 1.0;
  expect_golden_reduction(cfg, 4);
}

TEST(EventEngineBarrier, MatchesSyncWithCrashAndRejoin) {
  ExperimentConfig cfg = mini_config(10);
  cfg.time.crash_nodes = 2;
  cfg.time.crash_at = 3;
  cfg.time.rejoin_at = 7;
  expect_golden_reduction(cfg, 6);
}

TEST(EventEngineBarrier, MatchesSyncWithPermanentCrash) {
  ExperimentConfig cfg = mini_config(8);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 2;
  cfg.time.rejoin_at = 0;  // never rejoins
  expect_golden_reduction(cfg, 4);
}

TEST(EventEngineBarrier, MatchesSyncWithEverythingAtOnce) {
  ExperimentConfig cfg = mini_config(12);
  cfg.eval_every = 3;
  cfg.lr_decay_every = 4;
  cfg.lr_decay_factor = 0.5;
  cfg.time.bandwidth_dist = {net::LinkDist::Kind::kUniform, 2e6, 20e6};
  cfg.time.latency_dist = {net::LinkDist::Kind::kUniform, 0.001, 0.030};
  cfg.time.straggler_fraction = 0.3;
  cfg.time.straggler_slowdown = 3.0;
  cfg.time.edge_drop = {net::EdgeDropDist::Kind::kFixed, 0.15, 0.0};
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 4;
  cfg.time.rejoin_at = 8;
  expect_golden_reduction(cfg, 6);
}

TEST(EventEngineBarrier, MatchesSyncWithSimTimeBudget) {
  ExperimentConfig cfg = mini_config(50);
  cfg.eval_every = 5;
  cfg.stop_at_sim_time = 0.4;  // cuts the run well before 50 rounds
  cfg.engine = EngineKind::kSync;
  auto sync = make_mini(cfg, 4);
  const ExperimentResult rs = sync->run();
  EXPECT_LT(rs.rounds_run, 50u);
  cfg.engine = EngineKind::kAsync;
  auto async = make_mini(cfg, 4);
  const ExperimentResult ra = async->run();
  // The budget makes the run "extended": both engines stop after the round
  // that crossed 0.4 simulated seconds, and the async engine now reports
  // its event counters — so compare everything except that block.
  EXPECT_EQ(rs.rounds_run, ra.rounds_run);
  EXPECT_EQ(rs.sim_seconds, ra.sim_seconds);
  EXPECT_EQ(rs.final_accuracy, ra.final_accuracy);
  EXPECT_EQ(rs.total_traffic.bytes_sent, ra.total_traffic.bytes_sent);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sync->node(i).flat_params(), async->node(i).flat_params());
  }
  EXPECT_TRUE(ra.event_engine.extended);
}

TEST(EventEngineBarrier, StatsAndConservation) {
  ExperimentConfig cfg = mini_config(5);
  cfg.engine = EngineKind::kAsync;
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  const EventEngineStats& ee = r.event_engine;
  EXPECT_TRUE(ee.enabled);
  // 4 nodes x 5 rounds x (1 TrainDone + 1 LocalStep) + one arrival per
  // delivered message.
  EXPECT_EQ(ee.events_processed, 40u + ee.messages_delivered);
  EXPECT_GT(ee.max_queue_depth, 0u);
  EXPECT_EQ(ee.messages_in_flight, 0u);  // barrier drains every round
  EXPECT_EQ(ee.messages_stale_dropped, 0u);
  EXPECT_EQ(ee.staleness_overrides, 0u);
  EXPECT_EQ(r.total_traffic.messages_sent,
            ee.messages_delivered + r.sim_time.dropped_total);
  ASSERT_EQ(ee.staleness_histogram.size(), 1u);
  EXPECT_EQ(ee.staleness_histogram[0], ee.messages_delivered);
  ASSERT_EQ(ee.local_steps.size(), 4u);
  EXPECT_EQ(ee.local_steps_min(), 5u);
  EXPECT_EQ(ee.local_steps_max(), 5u);
}

TEST(EventEngineBarrier, TargetAccuracyStopMatchesSync) {
  ExperimentConfig cfg = mini_config(60);
  cfg.eval_every = 1;
  cfg.target_accuracy = 0.5;  // reachable: quadratic accuracy = 1/(1+loss)
  expect_golden_reduction(cfg, 4);
}

TEST(EventEngineBarrier, ValidationRejectsStalenessUnderSync) {
  ExperimentConfig cfg = mini_config(4);
  cfg.staleness_bound = 2;  // engine still kSync
  const auto errors = cfg.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("staleness_bound"), std::string::npos);
  cfg.engine = EngineKind::kAsync;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(EventEngineBarrier, EngineNames) {
  EXPECT_STREQ(engine_name(EngineKind::kSync), "sync");
  EXPECT_STREQ(engine_name(EngineKind::kAsync), "async");
}

// ------------------------------------------- bounded-staleness asynchrony

ExperimentConfig bounded_config(std::size_t rounds, std::size_t bound) {
  ExperimentConfig cfg = mini_config(rounds);
  cfg.engine = EngineKind::kAsync;
  cfg.staleness_bound = bound;
  return cfg;
}

TEST(EventEngineBounded, CompletesAllRoundsWithoutBudget) {
  auto exp = make_mini(bounded_config(10, 2), 4);
  const ExperimentResult r = exp->run();
  EXPECT_EQ(r.rounds_run, 10u);
  const EventEngineStats& ee = r.event_engine;
  EXPECT_TRUE(ee.extended);
  EXPECT_EQ(ee.local_steps_min(), 10u);
  EXPECT_EQ(ee.local_steps_max(), 10u);
  EXPECT_EQ(ee.messages_in_flight, 0u);
}

TEST(EventEngineBounded, ConservationWithoutFaults) {
  auto exp = make_mini(bounded_config(8, 1), 6, 4);
  const ExperimentResult r = exp->run();
  EXPECT_EQ(r.total_traffic.messages_sent, r.event_engine.messages_delivered);
  EXPECT_EQ(r.event_engine.messages_in_flight, 0u);
  EXPECT_EQ(r.sim_time.dropped_total, 0u);
}

TEST(EventEngineBounded, ConservationWithDrops) {
  ExperimentConfig cfg = bounded_config(10, 2);
  cfg.message_drop_probability = 0.3;
  cfg.time.edge_drop = {net::EdgeDropDist::Kind::kFixed, 0.2, 0.0};
  auto exp = make_mini(cfg, 6, 4);
  const ExperimentResult r = exp->run();
  EXPECT_GT(r.sim_time.dropped_total, 0u);
  EXPECT_EQ(r.total_traffic.messages_sent,
            r.event_engine.messages_delivered + r.sim_time.dropped_total +
                r.event_engine.messages_in_flight);
}

TEST(EventEngineBounded, HistogramCountsAppliedMessages) {
  auto exp = make_mini(bounded_config(10, 3), 4);
  const ExperimentResult r = exp->run();
  const EventEngineStats& ee = r.event_engine;
  ASSERT_EQ(ee.staleness_histogram.size(), 4u);  // staleness 0..B
  std::uint64_t applied = 0;
  for (const std::uint64_t c : ee.staleness_histogram) applied += c;
  EXPECT_GT(applied, 0u);
  // Applied messages are a subset of delivered ones (the rest were either
  // stale-dropped or still buffered as "early" when the run ended).
  EXPECT_LE(applied, ee.messages_delivered);
}

TEST(EventEngineBounded, StragglersDesynchronizeLocalClocks) {
  ExperimentConfig cfg = bounded_config(30, 3);
  cfg.time.straggler_fraction = 0.4;
  cfg.time.straggler_slowdown = 4.0;
  cfg.stop_at_sim_time = 0.5;
  auto exp = make_mini(cfg, 6, 4);
  const ExperimentResult r = exp->run();
  const EventEngineStats& ee = r.event_engine;
  // The paper-motivating signal: under a time budget fast nodes complete
  // genuinely more local rounds than the 4x stragglers.
  EXPECT_LT(ee.local_steps_min(), ee.local_steps_max());
  EXPECT_EQ(r.rounds_run, ee.local_steps_min());
  EXPECT_LE(r.sim_seconds, 0.5);
}

TEST(EventEngineBounded, BudgetStopsTheRun) {
  ExperimentConfig cfg = bounded_config(100, 2);
  cfg.stop_at_sim_time = 0.3;
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  EXPECT_LT(r.rounds_run, 100u);
  EXPECT_LE(r.sim_seconds, 0.3);
  EXPECT_GT(r.sim_seconds, 0.0);
}

TEST(EventEngineBounded, ReplayIsBitIdentical) {
  ExperimentConfig cfg = bounded_config(12, 2);
  cfg.time.latency_dist = {net::LinkDist::Kind::kUniform, 0.002, 0.040};
  cfg.time.straggler_fraction = 0.3;
  cfg.time.straggler_slowdown = 3.0;
  auto a = make_mini(cfg, 6, 4);
  auto b = make_mini(cfg, 6, 4);
  const ExperimentResult ra = a->run();
  const ExperimentResult rb = b->run();
  EXPECT_EQ(json_of(ra), json_of(rb));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a->node(i).flat_params(), b->node(i).flat_params());
  }
}

TEST(EventEngineBounded, ThreadCountDoesNotChangeResults) {
  ExperimentConfig cfg = bounded_config(10, 2);
  cfg.time.latency_dist = {net::LinkDist::Kind::kUniform, 0.002, 0.040};
  cfg.eval_every = 2;
  auto seq = make_mini(cfg, 4);
  cfg.threads = 4;
  auto par = make_mini(cfg, 4);
  const ExperimentResult rs = seq->run();
  const ExperimentResult rp = par->run();
  EXPECT_EQ(json_of(rs), json_of(rp));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seq->node(i).flat_params(), par->node(i).flat_params());
  }
}

TEST(EventEngineBounded, CrashedNodeIdlesAndRejoins) {
  ExperimentConfig cfg = bounded_config(12, 1);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 2;
  cfg.time.rejoin_at = 8;
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  // Idle crash rounds still advance the victim's local clock, so every node
  // reaches the rounds cap and the run terminates without deadlock.
  EXPECT_EQ(r.rounds_run, 12u);
  EXPECT_GT(r.sim_time.dropped_crash, 0u);  // messages to the victim died
  // Messages buffered across the crash window expire past the bound.
  EXPECT_GT(r.event_engine.messages_stale_dropped, 0u);
}

TEST(EventEngineBounded, PermanentCrashDoesNotDeadlock) {
  ExperimentConfig cfg = bounded_config(10, 1);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 3;
  cfg.time.rejoin_at = 0;  // down forever
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  EXPECT_EQ(r.rounds_run, 10u);
  EXPECT_EQ(r.event_engine.messages_in_flight, 0u);
}

TEST(EventEngineBounded, HighLatencyProducesStaleMessages) {
  ExperimentConfig cfg = bounded_config(20, 1);
  cfg.compute_seconds_per_round = 0.005;
  cfg.time.latency_dist = {net::LinkDist::Kind::kUniform, 0.020, 0.080};
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  // Links many compute-rounds long: some messages arrive after their
  // receiver's staleness window has passed them.
  EXPECT_GT(r.event_engine.messages_stale_dropped, 0u);
  EXPECT_EQ(r.total_traffic.messages_sent, r.event_engine.messages_delivered);
}

TEST(EventEngineBounded, ExtendedJsonBlockPresent) {
  auto exp = make_mini(bounded_config(6, 2), 4);
  const ExperimentResult r = exp->run();
  const std::string json = json_of(r);
  EXPECT_NE(json.find("\"event_engine\""), std::string::npos);
  EXPECT_NE(json.find("\"staleness_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"local_steps\""), std::string::npos);
  // And the barrier-mode JSON stays free of it (the reduction guarantee).
  ExperimentConfig barrier = mini_config(6);
  barrier.engine = EngineKind::kAsync;
  auto bexp = make_mini(barrier, 4);
  EXPECT_EQ(json_of(bexp->run()).find("\"event_engine\""), std::string::npos);
}

TEST(EventEngineBounded, EvaluationScheduleMatchesSyncRounds) {
  ExperimentConfig cfg = bounded_config(12, 2);
  cfg.eval_every = 3;
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  // Sync evaluates after rounds t = 0, 3, 6, 9 (reported as t+1) plus the
  // final round; the bounded engine emits the same global schedule.
  ASSERT_EQ(r.series.size(), 5u);
  EXPECT_EQ(r.series[0].round, 1u);
  EXPECT_EQ(r.series[1].round, 4u);
  EXPECT_EQ(r.series[2].round, 7u);
  EXPECT_EQ(r.series[3].round, 10u);
  EXPECT_EQ(r.series[4].round, 12u);
  for (std::size_t i = 1; i < r.series.size(); ++i) {
    EXPECT_GE(r.series[i].sim_seconds, r.series[i - 1].sim_seconds);
  }
}

TEST(EventEngineBounded, TargetAccuracyStopsEarly) {
  ExperimentConfig cfg = bounded_config(60, 2);
  cfg.eval_every = 1;
  cfg.target_accuracy = 0.5;
  // A common optimum for every node: consensus and the local objectives
  // agree, so accuracy climbs monotonically toward 1 and must cross 0.5.
  data::Partition partition(4, {0, 1, 2, 3});
  auto counter = std::make_shared<std::size_t>(0);
  nn::ModelFactory factory =
      [counter]() -> std::unique_ptr<nn::SupervisedModel> {
    return std::make_unique<QuadraticModel>(node_target(0),
                                            node_init((*counter)++));
  };
  std::mt19937 rng(7);
  Experiment exp(cfg, factory, dummy_dataset(), partition, dummy_dataset(),
                 std::make_unique<graph::StaticTopology>(
                     graph::random_regular(4, 2, rng)));
  const ExperimentResult r = exp.run();
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.rounds_run, 60u);
}

TEST(EventEngineBounded, JwinsTracksAlpha) {
  ExperimentConfig cfg = bounded_config(8, 1);
  cfg.algorithm = Algorithm::kJwins;
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  EXPECT_GT(r.mean_alpha, 0.0);
  EXPECT_LE(r.mean_alpha, 1.0);
}

// ------------------------------------------ free & weighted async modes

ExperimentConfig mode_config(std::size_t rounds, AsyncMode mode) {
  ExperimentConfig cfg = mini_config(rounds);
  cfg.engine = EngineKind::kAsync;
  cfg.async_mode = mode;
  return cfg;
}

/// Heterogeneity that makes the gate-free modes interesting: slow links and
/// a straggling minority, so arrivals genuinely straddle round boundaries.
void add_heterogeneity(ExperimentConfig& cfg) {
  cfg.time.latency_dist = {net::LinkDist::Kind::kUniform, 0.002, 0.040};
  cfg.time.straggler_fraction = 0.3;
  cfg.time.straggler_slowdown = 4.0;
}

TEST(AsyncModes, ModeNames) {
  EXPECT_STREQ(async_mode_name(AsyncMode::kBarrier), "barrier");
  EXPECT_STREQ(async_mode_name(AsyncMode::kFree), "free");
  EXPECT_STREQ(async_mode_name(AsyncMode::kWeighted), "weighted");
}

TEST(AsyncModes, ValidationRequiresAsyncEngine) {
  ExperimentConfig cfg = mini_config(4);
  cfg.async_mode = AsyncMode::kFree;  // engine still kSync
  const auto errors = cfg.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("async_mode"), std::string::npos);
  cfg.engine = EngineKind::kAsync;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(AsyncModes, ValidationRejectsStalenessBoundWithFree) {
  ExperimentConfig cfg = mini_config(4);
  cfg.engine = EngineKind::kAsync;
  cfg.async_mode = AsyncMode::kFree;
  cfg.staleness_bound = 2;  // free mode has no gate to bound
  const auto errors = cfg.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("staleness_bound"), std::string::npos);
}

TEST(AsyncModes, ValidationRejectsBadDecay) {
  ExperimentConfig cfg = mini_config(4);
  cfg.engine = EngineKind::kAsync;
  cfg.async_mode = AsyncMode::kWeighted;
  for (const double bad : {0.0, -0.5, 1.5,
                           std::numeric_limits<double>::quiet_NaN()}) {
    cfg.staleness_decay = bad;
    const auto errors = cfg.validate();
    ASSERT_FALSE(errors.empty()) << "decay " << bad;
    EXPECT_NE(errors.front().find("staleness_decay"), std::string::npos);
  }
  cfg.staleness_decay = 1.0;  // inclusive upper edge: no decay
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(AsyncFree, TerminatesAndConserves) {
  ExperimentConfig cfg = mode_config(10, AsyncMode::kFree);
  add_heterogeneity(cfg);
  auto exp = make_mini(cfg, 6, 4);
  const ExperimentResult r = exp->run();
  EXPECT_EQ(r.rounds_run, 10u);
  const EventEngineStats& ee = r.event_engine;
  EXPECT_TRUE(ee.extended);
  EXPECT_EQ(ee.mode, AsyncMode::kFree);
  // No gate: nothing is ever dropped for age, nothing force-unblocked.
  EXPECT_EQ(ee.messages_stale_dropped, 0u);
  EXPECT_EQ(ee.staleness_overrides, 0u);
  EXPECT_EQ(r.total_traffic.messages_sent,
            ee.messages_delivered + r.sim_time.dropped_total +
                ee.messages_in_flight);
}

TEST(AsyncFree, EffectiveNeighborAccountingIsConsistent) {
  ExperimentConfig cfg = mode_config(12, AsyncMode::kFree);
  add_heterogeneity(cfg);
  auto exp = make_mini(cfg, 6, 4);
  const ExperimentResult r = exp->run();
  const EventEngineStats& ee = r.event_engine;
  // Every applied contribution is counted once in the age histogram, once
  // in the effective-neighbor histogram's weighted sum, and once in
  // contributions_applied — three views of the same ledger.
  std::uint64_t hist_total = 0;
  for (const std::uint64_t c : ee.staleness_histogram) hist_total += c;
  EXPECT_EQ(hist_total, ee.contributions_applied);
  std::uint64_t weighted = 0, steps = 0;
  for (std::size_t k = 0; k < ee.effective_neighbors.size(); ++k) {
    weighted += ee.effective_neighbors[k] * k;
    steps += ee.effective_neighbors[k];
  }
  EXPECT_EQ(weighted, ee.contributions_applied);
  // One effective-neighbor sample per alive aggregation (= one per local
  // step here: no crash windows in this config).
  std::uint64_t local_steps = 0;
  for (const std::uint64_t s : ee.local_steps) local_steps += s;
  EXPECT_EQ(steps, local_steps);
  // Applied <= delivered: late arrivals can outlive the final local step.
  EXPECT_LE(ee.contributions_applied, ee.messages_delivered);
  EXPECT_GT(ee.contributions_applied, 0u);
  // Mean age is the ledger ratio.
  EXPECT_DOUBLE_EQ(ee.mean_contribution_age(),
                   static_cast<double>(ee.contribution_age_sum) /
                       static_cast<double>(ee.contributions_applied));
}

TEST(AsyncFree, ReplayIsBitIdentical) {
  ExperimentConfig cfg = mode_config(10, AsyncMode::kFree);
  add_heterogeneity(cfg);
  cfg.eval_every = 2;
  auto a = make_mini(cfg, 6, 4);
  auto b = make_mini(cfg, 6, 4);
  const ExperimentResult ra = a->run();
  const ExperimentResult rb = b->run();
  EXPECT_EQ(json_of(ra), json_of(rb));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a->node(i).flat_params(), b->node(i).flat_params());
  }
}

TEST(AsyncFree, ThreadCountDoesNotChangeResults) {
  ExperimentConfig cfg = mode_config(8, AsyncMode::kFree);
  add_heterogeneity(cfg);
  cfg.eval_every = 2;
  auto seq = make_mini(cfg, 4);
  cfg.threads = 4;
  auto par = make_mini(cfg, 4);
  const ExperimentResult rs = seq->run();
  const ExperimentResult rp = par->run();
  EXPECT_EQ(json_of(rs), json_of(rp));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seq->node(i).flat_params(), par->node(i).flat_params());
  }
}

TEST(AsyncFree, JsonCarriesPerModeBlock) {
  ExperimentConfig cfg = mode_config(6, AsyncMode::kFree);
  add_heterogeneity(cfg);
  auto exp = make_mini(cfg, 4);
  const std::string json = json_of(exp->run());
  EXPECT_NE(json.find("\"async_mode\": \"free\""), std::string::npos);
  EXPECT_NE(json.find("\"effective_neighbors\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_contribution_age\""), std::string::npos);
  EXPECT_NE(json.find("\"edge_records_high_water\""), std::string::npos);
}

TEST(AsyncWeighted, DecayOneMatchesFreeBitForBit) {
  // lambda = 1 multiplies every contribution by exactly 1.0 — the weighted
  // aggregation path must reduce to free mode on the model bytes.
  ExperimentConfig cfg = mode_config(10, AsyncMode::kFree);
  add_heterogeneity(cfg);
  auto free_exp = make_mini(cfg, 6, 4);
  const ExperimentResult rf = free_exp->run();
  cfg.async_mode = AsyncMode::kWeighted;
  cfg.staleness_decay = 1.0;
  auto weighted_exp = make_mini(cfg, 6, 4);
  const ExperimentResult rw = weighted_exp->run();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(free_exp->node(i).flat_params(),
              weighted_exp->node(i).flat_params())
        << "node " << i;
  }
  EXPECT_EQ(rf.final_accuracy, rw.final_accuracy);
  EXPECT_EQ(rf.final_loss, rw.final_loss);
  EXPECT_EQ(rf.event_engine.contributions_applied,
            rw.event_engine.contributions_applied);
  EXPECT_EQ(rw.event_engine.mode, AsyncMode::kWeighted);
}

TEST(AsyncWeighted, DecayChangesTheModelWhenContributionsAge) {
  // Slow links + stragglers guarantee aged contributions; lambda < 1 then
  // must actually move the aggregate.
  ExperimentConfig cfg = mode_config(12, AsyncMode::kFree);
  add_heterogeneity(cfg);
  cfg.compute_seconds_per_round = 0.005;  // links several rounds long
  auto free_exp = make_mini(cfg, 6, 4);
  const ExperimentResult rf = free_exp->run();
  ASSERT_GT(rf.event_engine.contribution_age_sum, 0u)
      << "config produced no aged contributions; the decay comparison "
         "would be vacuous";
  cfg.async_mode = AsyncMode::kWeighted;
  cfg.staleness_decay = 0.5;
  auto weighted_exp = make_mini(cfg, 6, 4);
  (void)weighted_exp->run();
  bool any_differs = false;
  for (std::size_t i = 0; i < 6; ++i) {
    any_differs = any_differs || free_exp->node(i).flat_params() !=
                                     weighted_exp->node(i).flat_params();
  }
  EXPECT_TRUE(any_differs);
}

TEST(AsyncWeighted, ReplayIsBitIdentical) {
  ExperimentConfig cfg = mode_config(10, AsyncMode::kWeighted);
  cfg.staleness_decay = 0.6;
  add_heterogeneity(cfg);
  auto a = make_mini(cfg, 6, 4);
  auto b = make_mini(cfg, 6, 4);
  const ExperimentResult ra = a->run();
  const ExperimentResult rb = b->run();
  EXPECT_EQ(json_of(ra), json_of(rb));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a->node(i).flat_params(), b->node(i).flat_params());
  }
}

TEST(AsyncWeighted, AllAlgorithmsTerminateUnderDecay) {
  for (const Algorithm algo :
       {Algorithm::kFullSharing, Algorithm::kRandomSampling, Algorithm::kJwins,
        Algorithm::kChoco, Algorithm::kPowerGossip}) {
    ExperimentConfig cfg = mode_config(6, AsyncMode::kWeighted);
    cfg.algorithm = algo;
    cfg.staleness_decay = 0.7;
    add_heterogeneity(cfg);
    auto exp = make_mini(cfg, 4);
    const ExperimentResult r = exp->run();
    EXPECT_EQ(r.rounds_run, 6u) << algorithm_name(algo);
    EXPECT_TRUE(std::isfinite(r.final_loss)) << algorithm_name(algo);
  }
}

// ------------------------- async accounting fixes (this engine revision)

TEST(AsyncAccounting, PhaseSplitSumsToSimTimeMidFlight) {
  // The mid-flight fix: evaluation points sampled between round boundaries
  // used to report a 0/undefined compute/comm split. Now the split is
  // attributed at event granularity, so every MetricPoint satisfies
  // compute + comm == sim_seconds exactly, and all three are monotone.
  ExperimentConfig cfg = bounded_config(16, 2);
  add_heterogeneity(cfg);
  cfg.eval_every = 2;
  auto exp = make_mini(cfg, 6, 4);
  const ExperimentResult r = exp->run();
  ASSERT_GT(r.series.size(), 2u);
  double prev_total = 0.0, prev_compute = 0.0, prev_comm = 0.0;
  for (const MetricPoint& p : r.series) {
    EXPECT_EQ(p.sim_compute_seconds + p.sim_comm_seconds, p.sim_seconds)
        << "round " << p.round;
    EXPECT_GE(p.sim_seconds, prev_total);
    EXPECT_GE(p.sim_compute_seconds, prev_compute);
    EXPECT_GE(p.sim_comm_seconds, prev_comm);
    prev_total = p.sim_seconds;
    prev_compute = p.sim_compute_seconds;
    prev_comm = p.sim_comm_seconds;
  }
  // Both phases genuinely occur in a straggler + latency run.
  EXPECT_GT(r.series.back().sim_compute_seconds, 0.0);
  EXPECT_GT(r.series.back().sim_comm_seconds, 0.0);
  // And the run-level summary agrees with the final point's clock.
  EXPECT_EQ(r.sim_time.compute_seconds + r.sim_time.comm_seconds,
            r.sim_seconds);
}

TEST(AsyncAccounting, FreeModeSplitAlsoSums) {
  ExperimentConfig cfg = mode_config(10, AsyncMode::kFree);
  add_heterogeneity(cfg);
  cfg.eval_every = 2;
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  for (const MetricPoint& p : r.series) {
    EXPECT_EQ(p.sim_compute_seconds + p.sim_comm_seconds, p.sim_seconds);
  }
  EXPECT_GT(r.sim_seconds, 0.0);
}

TEST(AsyncAccounting, EdgeRecordsRetireAndStayBounded) {
  // The leak fix: a long stop_at_sim_time run must not accumulate edge
  // records — each retires when its transfer is delivered, dropped, or cut,
  // so the live count ends at zero and the high-water mark stays near the
  // in-flight ceiling instead of the total message count.
  ExperimentConfig cfg = mode_config(400, AsyncMode::kFree);
  add_heterogeneity(cfg);
  cfg.eval_every = 100;
  cfg.stop_at_sim_time = 0.6;
  auto exp = make_mini(cfg, 6, 4);
  const ExperimentResult r = exp->run();
  const net::TimeModel& tm = exp->network().time_model();
  EXPECT_TRUE(tm.retire_records());
  EXPECT_EQ(tm.edge_record_count(), 0u);
  EXPECT_GT(tm.edge_records_high_water(), 0u);
  // Bounded: far below the total send count a leak would accumulate.
  EXPECT_GT(r.total_traffic.messages_sent, 100u);
  EXPECT_LT(tm.edge_records_high_water(),
            r.total_traffic.messages_sent / 2);
  // The stat is surfaced in the result block too.
  EXPECT_EQ(r.event_engine.edge_records_high_water,
            tm.edge_records_high_water());
}

TEST(AsyncAccounting, BarrierKeepsLegacyRecordPath) {
  // Plain barrier runs keep the legacy merge-at-round-boundary path (and
  // its byte-identical JSON): retirement stays off.
  ExperimentConfig cfg = mini_config(5);
  cfg.engine = EngineKind::kAsync;
  auto exp = make_mini(cfg, 4);
  (void)exp->run();
  EXPECT_FALSE(exp->network().time_model().retire_records());
  EXPECT_EQ(exp->network().time_model().edge_records_high_water(), 0u);
}

// ------------------------------ sub-round crash semantics (both engines)

/// The seeded crash-victim choice, reconstructed exactly as the Experiment
/// builds it.
std::uint32_t crash_victim(const ExperimentConfig& cfg, std::size_t n) {
  const net::TimeModel tm(n, cfg.link, cfg.time, cfg.seed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (tm.node_crashes(i)) return i;
  }
  ADD_FAILURE() << "no crash victim drawn";
  return 0;
}

TEST(CrashSemantics, NodeAliveIsRoundGranular) {
  ExperimentConfig cfg = mini_config(10);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 3;
  cfg.time.rejoin_at = 7;
  const net::TimeModel tm(4, cfg.link, cfg.time, cfg.seed);
  const std::uint32_t v = crash_victim(cfg, 4);
  EXPECT_TRUE(tm.node_alive(v, 2));   // last full round before the crash
  EXPECT_FALSE(tm.node_alive(v, 3));  // down for the whole round, not part
  EXPECT_FALSE(tm.node_alive(v, 6));
  EXPECT_TRUE(tm.node_alive(v, 7));   // back for the whole rejoin round
}

TEST(CrashSemantics, DropCauseFlipsExactlyAtTheBoundary) {
  ExperimentConfig cfg = mini_config(10);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 3;
  cfg.time.rejoin_at = 7;
  const net::TimeModel tm(4, cfg.link, cfg.time, cfg.seed);
  const std::uint32_t v = crash_victim(cfg, 4);
  const std::uint32_t other = v == 0 ? 1 : 0;
  EXPECT_EQ(tm.drop_cause(other, v, 2), net::DropCause::kNone);
  EXPECT_EQ(tm.drop_cause(other, v, 3), net::DropCause::kCrash);
  EXPECT_EQ(tm.drop_cause(v, other, 6), net::DropCause::kCrash);
  EXPECT_EQ(tm.drop_cause(other, v, 7), net::DropCause::kNone);
}

TEST(CrashSemantics, SyncModelBytesFreezeForWholeRounds) {
  // Round granularity pinned end-to-end: the victim's parameters after
  // crash_at + k rounds equal its parameters at crash_at for any k inside
  // the window — there is no partial-round participation.
  ExperimentConfig cfg = mini_config(3);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 3;
  cfg.time.rejoin_at = 0;
  const std::uint32_t v = crash_victim(cfg, 4);
  auto at_crash = make_mini(cfg, 4);
  (void)at_crash->run();  // runs rounds 0..2, stops right at the window
  cfg.rounds = 6;
  cfg.eval_every = 6;
  auto inside = make_mini(cfg, 4);
  (void)inside->run();  // rounds 3..5 happen with the victim down
  EXPECT_EQ(at_crash->node(v).flat_params(), inside->node(v).flat_params());
}

TEST(CrashSemantics, SyncVictimSendsNothingWhileDown) {
  ExperimentConfig cfg = mini_config(6);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 2;
  cfg.time.rejoin_at = 4;
  auto exp = make_mini(cfg, 4);
  const ExperimentResult r = exp->run();
  ExperimentConfig clean = mini_config(6);
  auto base = make_mini(clean, 4);
  const ExperimentResult rb = base->run();
  // The victim skips its share phase for 2 rounds (degree-2 topology: 2
  // messages per round), so exactly 4 messages fewer are sent.
  EXPECT_EQ(r.total_traffic.messages_sent + 4,
            rb.total_traffic.messages_sent);
}

TEST(CrashSemantics, AsyncBarrierFreezesTheSameBytes) {
  ExperimentConfig cfg = mini_config(6);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 2;
  cfg.time.rejoin_at = 5;
  const std::uint32_t v = crash_victim(cfg, 4);
  auto sync = make_mini(cfg, 4);
  (void)sync->run();
  cfg.engine = EngineKind::kAsync;
  auto async = make_mini(cfg, 4);
  (void)async->run();
  EXPECT_EQ(sync->node(v).flat_params(), async->node(v).flat_params());
}

TEST(CrashSemantics, BoundedVictimBytesFreezeDuringWindow) {
  // The bounded engine refines crash granularity to the victim's LOCAL
  // rounds, but the freeze itself is identical: no training, no sharing,
  // no aggregation while down.
  ExperimentConfig cfg = bounded_config(3, 1);
  cfg.time.crash_nodes = 1;
  cfg.time.crash_at = 3;
  cfg.time.rejoin_at = 0;
  const std::uint32_t v = crash_victim(cfg, 4);
  auto at_crash = make_mini(cfg, 4);
  (void)at_crash->run();
  cfg.rounds = 6;
  cfg.eval_every = 6;
  auto inside = make_mini(cfg, 4);
  (void)inside->run();
  EXPECT_EQ(at_crash->node(v).flat_params(), inside->node(v).flat_params());
}

}  // namespace
}  // namespace jwins::sim

#include "dwt/dwt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "dwt/wavelet.hpp"

namespace jwins::dwt {
namespace {

double energy(std::span<const float> v) {
  double e = 0.0;
  for (float x : v) e += static_cast<double>(x) * x;
  return e;
}

std::vector<float> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> out(n);
  for (float& v : out) v = dist(rng);
  return out;
}

TEST(Wavelet, FiltersHaveUnitNormAndSqrt2Sum) {
  for (const char* name : {"haar", "db2", "sym2", "db4"}) {
    const Wavelet w = wavelet_by_name(name);
    double sum = 0.0, norm = 0.0, hsum = 0.0;
    for (float v : w.lowpass) {
      sum += v;
      norm += static_cast<double>(v) * v;
    }
    for (float v : w.highpass) hsum += v;
    EXPECT_NEAR(sum, std::sqrt(2.0), 1e-5) << name;
    EXPECT_NEAR(norm, 1.0, 1e-5) << name;
    EXPECT_NEAR(hsum, 0.0, 1e-5) << name;  // wavelet filter kills constants
  }
}

TEST(Wavelet, Sym2EqualsDb2) {
  const Wavelet a = db2();
  const Wavelet b = sym2();
  ASSERT_EQ(a.lowpass.size(), b.lowpass.size());
  for (std::size_t i = 0; i < a.lowpass.size(); ++i) {
    EXPECT_FLOAT_EQ(a.lowpass[i], b.lowpass[i]);
  }
}

TEST(Wavelet, QuadratureMirrorRelation) {
  const Wavelet w = db2();
  const std::size_t L = w.length();
  for (std::size_t n = 0; n < L; ++n) {
    const float sign = (n % 2 == 0) ? 1.0f : -1.0f;
    EXPECT_FLOAT_EQ(w.highpass[n], sign * w.lowpass[L - 1 - n]);
  }
}

TEST(Wavelet, UnknownNameThrows) {
  EXPECT_THROW(wavelet_by_name("db17"), std::invalid_argument);
}

TEST(AnalyzeLevel, HaarKnownValues) {
  // Haar: a[k] = (x[2k]+x[2k+1])/sqrt(2), d[k] = (x[2k]-x[2k+1])/sqrt(2).
  const Wavelet w = haar();
  const std::vector<float> x{1, 3, 2, 2};
  std::vector<float> a(2), d(2);
  analyze_level(w, x, a, d);
  const float s = std::sqrt(2.0f);
  EXPECT_NEAR(a[0], 4.0f / s, 1e-5f);
  EXPECT_NEAR(a[1], 4.0f / s, 1e-5f);
  EXPECT_NEAR(d[0], -2.0f / s, 1e-5f);
  EXPECT_NEAR(d[1], 0.0f, 1e-5f);
}

TEST(AnalyzeLevel, ConstantSignalHasZeroDetail) {
  for (const char* name : {"haar", "db2", "db4"}) {
    const Wavelet w = wavelet_by_name(name);
    const std::vector<float> x(16, 5.0f);
    std::vector<float> a(8), d(8);
    analyze_level(w, x, a, d);
    for (float v : d) EXPECT_NEAR(v, 0.0f, 1e-5f) << name;
    // Approximation of a constant is sqrt(2)*constant.
    for (float v : a) EXPECT_NEAR(v, 5.0f * std::sqrt(2.0f), 1e-5f) << name;
  }
}

TEST(AnalyzeLevel, OddLengthThrows) {
  const Wavelet w = haar();
  const std::vector<float> x(5, 1.0f);
  std::vector<float> a(2), d(2);
  EXPECT_THROW(analyze_level(w, x, a, d), std::invalid_argument);
}

TEST(SynthesizeLevel, InvertsAnalyze) {
  const Wavelet w = db2();
  const std::vector<float> x = random_signal(32, 11);
  std::vector<float> a(16), d(16), back(32);
  analyze_level(w, x, a, d);
  synthesize_level(w, a, d, back);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-4f);
}

struct PlanCase {
  const char* wavelet;
  std::size_t length;
  std::size_t levels;
};

class DwtPlanParam : public ::testing::TestWithParam<PlanCase> {};

TEST_P(DwtPlanParam, PerfectReconstruction) {
  const auto [name, length, levels] = GetParam();
  const DwtPlan plan(wavelet_by_name(name), length, levels);
  const std::vector<float> x = random_signal(length, 13);
  const std::vector<float> coeffs = plan.forward(x);
  const std::vector<float> back = plan.inverse(coeffs);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 2e-4f) << "i=" << i;
  }
}

TEST_P(DwtPlanParam, EnergyPreservedForEvenPowerLengths) {
  const auto [name, length, levels] = GetParam();
  // Parseval holds exactly when no zero-padding happens (even at each level).
  std::size_t len = length;
  bool clean = true;
  for (std::size_t l = 0; l < levels && len >= 2; ++l) {
    if (len % 2 != 0) clean = false;
    len = (len + len % 2) / 2;
  }
  if (!clean) GTEST_SKIP() << "padding breaks exact Parseval";
  const DwtPlan plan(wavelet_by_name(name), length, levels);
  const std::vector<float> x = random_signal(length, 17);
  const std::vector<float> coeffs = plan.forward(x);
  EXPECT_NEAR(energy(coeffs) / energy(x), 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DwtPlanParam,
    ::testing::Values(PlanCase{"haar", 16, 2}, PlanCase{"haar", 64, 4},
                      PlanCase{"db2", 16, 2}, PlanCase{"db2", 64, 4},
                      PlanCase{"db2", 100, 4}, PlanCase{"db2", 101, 4},
                      PlanCase{"db2", 1000, 4}, PlanCase{"sym2", 4096, 4},
                      PlanCase{"db4", 64, 3}, PlanCase{"db4", 250, 4},
                      PlanCase{"db2", 7, 4}, PlanCase{"db2", 2, 1},
                      PlanCase{"db2", 37, 2}, PlanCase{"haar", 1024, 8}));

TEST(DwtPlan, LevelsClampedForShortSignals) {
  const DwtPlan plan(db2(), 4, 10);
  // 4 -> 2 -> 1: only two levels are achievable.
  EXPECT_EQ(plan.levels(), 2u);
}

TEST(DwtPlan, CoeffLengthMatchesBands) {
  const DwtPlan plan(db2(), 64, 4);
  // 64 -> 32 -> 16 -> 8 -> 4: bands a4(4), d4(4), d3(8), d2(16), d1(32).
  EXPECT_EQ(plan.levels(), 4u);
  EXPECT_EQ(plan.coeff_length(), 64u);
  EXPECT_EQ(plan.band_length(0), 4u);
  EXPECT_EQ(plan.band_length(1), 4u);
  EXPECT_EQ(plan.band_length(2), 8u);
  EXPECT_EQ(plan.band_length(3), 16u);
  EXPECT_EQ(plan.band_length(4), 32u);
  EXPECT_EQ(plan.band_offset(0), 0u);
  EXPECT_EQ(plan.band_offset(4), 32u);
}

TEST(DwtPlan, BandOfMapsOffsets) {
  const DwtPlan plan(db2(), 64, 4);
  EXPECT_EQ(plan.band_of(0), 0u);
  EXPECT_EQ(plan.band_of(3), 0u);
  EXPECT_EQ(plan.band_of(4), 1u);
  EXPECT_EQ(plan.band_of(31), 3u);
  EXPECT_EQ(plan.band_of(32), 4u);
  EXPECT_EQ(plan.band_of(63), 4u);
  EXPECT_THROW(plan.band_of(64), std::out_of_range);
}

TEST(DwtPlan, ConstantSignalConcentratesInApproximation) {
  const DwtPlan plan(db2(), 64, 4);
  const std::vector<float> x(64, 1.0f);
  const std::vector<float> coeffs = plan.forward(x);
  // All detail bands ~0; energy lives in band 0.
  double detail_energy = 0.0;
  for (std::size_t i = plan.band_offset(1); i < coeffs.size(); ++i) {
    detail_energy += static_cast<double>(coeffs[i]) * coeffs[i];
  }
  EXPECT_NEAR(detail_energy, 0.0, 1e-6);
  EXPECT_NEAR(energy(coeffs), energy(x), 1e-3);
}

TEST(DwtPlan, SmoothSignalCompacts) {
  // Energy compaction: for a smooth signal, the largest 25% of wavelet
  // coefficients should hold nearly all energy — this is exactly why JWINS
  // ranks in the wavelet domain.
  const std::size_t n = 256;
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0f * 3.14159265f * static_cast<float>(i) / 64.0f);
  }
  const DwtPlan plan(db2(), n, 4);
  std::vector<float> coeffs = plan.forward(x);
  std::vector<float> mags(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) mags[i] = std::fabs(coeffs[i]);
  std::sort(mags.rbegin(), mags.rend());
  double top = 0.0, total = 0.0;
  for (std::size_t i = 0; i < mags.size(); ++i) {
    const double e = static_cast<double>(mags[i]) * mags[i];
    total += e;
    if (i < mags.size() / 4) top += e;
  }
  EXPECT_GT(top / total, 0.98);
}

TEST(DwtPlan, ForwardIntoValidatesSizes) {
  const DwtPlan plan(db2(), 64, 4);
  std::vector<float> x(63), coeffs(plan.coeff_length());
  EXPECT_THROW(plan.forward_into(x, coeffs), std::invalid_argument);
  x.resize(64);
  coeffs.resize(plan.coeff_length() - 1);
  EXPECT_THROW(plan.forward_into(x, coeffs), std::invalid_argument);
}

TEST(DwtPlan, EmptySignalThrows) {
  EXPECT_THROW(DwtPlan(db2(), 0, 4), std::invalid_argument);
}

TEST(WavedecWaverec, OneShotHelpers) {
  const std::vector<float> x = random_signal(48, 5);
  const auto coeffs = wavedec(db2(), x, 3);
  const auto back = waverec(db2(), coeffs, x.size(), 3);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-4f);
}

TEST(DwtPlan, LinearityOfTransform) {
  // JWINS relies on T(a) - T(b) == T(a - b) for the eq.(3)/(4) bookkeeping.
  const std::size_t n = 100;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  const DwtPlan plan(db2(), n, 4);
  const auto ta = plan.forward(a);
  const auto tb = plan.forward(b);
  std::vector<float> diff(n);
  for (std::size_t i = 0; i < n; ++i) diff[i] = a[i] - b[i];
  const auto tdiff = plan.forward(diff);
  for (std::size_t i = 0; i < tdiff.size(); ++i) {
    EXPECT_NEAR(tdiff[i], ta[i] - tb[i], 1e-4f);
  }
}

}  // namespace
}  // namespace jwins::dwt

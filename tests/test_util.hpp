// Shared test fixtures: a quadratic model with a known global optimum (the
// classic consensus-optimization testbed for decentralized SGD) and a dummy
// dataset to drive it through the Sampler machinery.
#pragma once

#include <cstdint>
#include <memory>

#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace jwins::testutil {

/// Live heap bytes currently held through the global operator new, tracked
/// by test_arena.cpp's counting-allocator hook (the single new/delete
/// replacement the test binary is allowed). Returns -1 when the hook is
/// compiled out (sanitized builds replace the allocator themselves) — memory
/// pin tests must GTEST_SKIP on that value.
std::int64_t live_heap_bytes() noexcept;

/// f_i(x) = 0.5 ||x - c_i||^2. The global objective (1/n) sum f_i is
/// minimized at mean(c_i), so D-PSGD variants can be checked for convergence
/// to a known point.
class QuadraticModel final : public nn::SupervisedModel {
 public:
  QuadraticModel(tensor::Tensor target, tensor::Tensor init)
      : target_(std::move(target)), x_(std::move(init)), grad_(x_.shape()) {}

  float loss_and_grad(const nn::Batch&) override {
    float loss = 0.0f;
    for (std::size_t i = 0; i < x_.size(); ++i) {
      const float d = x_[i] - target_[i];
      grad_[i] += d;
      loss += 0.5f * d * d;
    }
    return loss;
  }

  nn::EvalMetrics evaluate(const nn::Batch&) override {
    float loss = 0.0f;
    for (std::size_t i = 0; i < x_.size(); ++i) {
      const float d = x_[i] - target_[i];
      loss += 0.5f * d * d;
    }
    return {loss, 1.0 / (1.0 + loss), 1};
  }

  std::vector<tensor::Tensor*> parameters() override { return {&x_}; }
  std::vector<tensor::Tensor*> gradients() override { return {&grad_}; }

  const tensor::Tensor& x() const noexcept { return x_; }

 private:
  tensor::Tensor target_;
  tensor::Tensor x_;
  tensor::Tensor grad_;
};

/// Minimal dataset: batches carry no information (QuadraticModel ignores
/// them), but the Sampler contract requires a non-empty index set.
class DummyDataset final : public data::Dataset {
 public:
  std::size_t size() const override { return 4; }
  nn::Batch make_batch(std::span<const std::size_t> indices) const override {
    nn::Batch b;
    b.x = tensor::Tensor({indices.size(), 1});
    return b;
  }
};

}  // namespace jwins::testutil

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "algo/choco.hpp"
#include "algo/full_sharing.hpp"
#include "algo/jwins_node.hpp"
#include "algo/random_sampling.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "test_util.hpp"

namespace jwins::algo {
namespace {

using jwins::testutil::DummyDataset;
using jwins::testutil::QuadraticModel;
using tensor::Tensor;

constexpr std::size_t kDim = 24;

Tensor node_target(std::size_t rank, std::size_t n) {
  // Spread the per-node optima; global optimum is their mean.
  Tensor t({kDim});
  for (std::size_t i = 0; i < kDim; ++i) {
    t[i] = std::sin(0.3f * static_cast<float>(i + 1) *
                    static_cast<float>(rank + 1)) *
           2.0f;
  }
  (void)n;
  return t;
}

Tensor mean_target(std::size_t n) {
  Tensor mean({kDim});
  for (std::size_t r = 0; r < n; ++r) mean += node_target(r, n);
  mean *= 1.0f / static_cast<float>(n);
  return mean;
}

Tensor node_init(std::size_t rank) {
  std::mt19937 rng(1000 + static_cast<unsigned>(rank));
  return Tensor::normal({kDim}, 0.0f, 1.0f, rng);
}

struct Cluster {
  DummyDataset dataset;
  net::Network network;
  core::RoundScratch scratch;
  graph::Graph graph;
  graph::MixingWeights weights;
  std::vector<std::unique_ptr<DlNode>> nodes;

  explicit Cluster(std::size_t n) : network(n) {
    std::mt19937 rng(7);
    graph = n >= 6 ? graph::random_regular(n, 4, rng) : graph::complete(n);
    weights = graph::metropolis_hastings(graph);
  }

  data::Sampler sampler() const {
    return data::Sampler(dataset, {0, 1, 2, 3}, 4, 1);
  }

  void set_learning_rate(float lr) {
    for (auto& node : nodes) node->set_learning_rate(lr);
  }

  void round(std::uint32_t t, bool train) {
    for (auto& node : nodes) {
      if (train) node->local_train();
    }
    for (auto& node : nodes) node->share(network, graph, weights, t, scratch);
    for (auto& node : nodes) node->aggregate(network, graph, weights, t, scratch);
    network.finish_round(0.0);
  }

  /// Max pairwise distance between node models (consensus residual).
  float disagreement() {
    float worst = 0.0f;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto a = nodes[i]->flat_params();
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        const auto b = nodes[j]->flat_params();
        float d = 0.0f;
        for (std::size_t k = 0; k < a.size(); ++k) {
          d = std::max(d, std::fabs(a[k] - b[k]));
        }
        worst = std::max(worst, d);
      }
    }
    return worst;
  }

  /// Max distance of any node from `point`.
  float distance_to(const Tensor& point) {
    float worst = 0.0f;
    for (auto& node : nodes) {
      const auto x = node->flat_params();
      for (std::size_t k = 0; k < x.size(); ++k) {
        worst = std::max(worst, std::fabs(x[k] - point[k]));
      }
    }
    return worst;
  }
};

TrainConfig no_train_config() {
  TrainConfig cfg;
  cfg.local_steps = 1;
  cfg.sgd.learning_rate = 0.0f;  // pure gossip, no optimization
  return cfg;
}

TrainConfig train_config(float lr) {
  TrainConfig cfg;
  cfg.local_steps = 1;
  cfg.sgd.learning_rate = lr;
  return cfg;
}

// ------------------------------------------------------------ full sharing

TEST(FullSharing, PureGossipReachesConsensusOnMean) {
  const std::size_t n = 8;
  Cluster cluster(n);
  Tensor init_mean({kDim});
  for (std::size_t r = 0; r < n; ++r) {
    auto model = std::make_unique<QuadraticModel>(node_target(r, n), node_init(r));
    init_mean += model->x();
    cluster.nodes.push_back(std::make_unique<FullSharingNode>(
        static_cast<std::uint32_t>(r), std::move(model), cluster.sampler(),
        no_train_config()));
  }
  init_mean *= 1.0f / static_cast<float>(n);
  for (std::uint32_t t = 0; t < 60; ++t) cluster.round(t, /*train=*/false);
  // Doubly-stochastic mixing preserves the mean and contracts disagreement.
  EXPECT_LT(cluster.disagreement(), 1e-3f);
  EXPECT_LT(cluster.distance_to(init_mean), 1e-3f);
}

TEST(FullSharing, DPsgdConvergesToGlobalOptimum) {
  const std::size_t n = 8;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<FullSharingNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), train_config(0.15f)));
  }
  // Constant-step D-PSGD keeps a steady-state disagreement floor
  // proportional to the step size; anneal to converge tightly.
  for (std::uint32_t t = 0; t < 120; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.02f);
  for (std::uint32_t t = 120; t < 220; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.004f);
  for (std::uint32_t t = 220; t < 300; ++t) cluster.round(t, /*train=*/true);
  EXPECT_LT(cluster.distance_to(mean_target(n)), 0.05f);
  EXPECT_LT(cluster.disagreement(), 0.05f);
}

// --------------------------------------------------------- random sampling

TEST(RandomSampling, ConvergesWithPartialSharing) {
  const std::size_t n = 8;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<RandomSamplingNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), train_config(0.15f), /*fraction=*/0.4));
  }
  for (std::uint32_t t = 0; t < 250; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.02f);
  for (std::uint32_t t = 250; t < 450; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.004f);
  for (std::uint32_t t = 450; t < 600; ++t) cluster.round(t, /*train=*/true);
  EXPECT_LT(cluster.distance_to(mean_target(n)), 0.15f);
}

TEST(RandomSampling, MetadataIsOnlyTheSeed) {
  const std::size_t n = 4;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<RandomSamplingNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), no_train_config(), 0.5));
  }
  cluster.round(0, false);
  const auto total = cluster.network.traffic().total();
  // 18 bytes of header+seed metadata per message.
  EXPECT_EQ(total.metadata_bytes_sent, total.messages_sent * 18u);
}

// -------------------------------------------------------------------- jwins

JwinsNode::Options jwins_options() {
  JwinsNode::Options opt;
  opt.ranker.wavelet = "sym2";
  opt.ranker.levels = 4;
  return opt;
}

TEST(Jwins, DenseModeMatchesFullSharingTrajectory) {
  // With alpha fixed at 100%, JWINS shares the dense wavelet vector and the
  // orthonormal transform makes wavelet-domain averaging identical to
  // parameter-domain averaging.
  const std::size_t n = 6;
  Cluster full_cluster(n), jwins_cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    full_cluster.nodes.push_back(std::make_unique<FullSharingNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        full_cluster.sampler(), train_config(0.1f)));
    auto opt = jwins_options();
    opt.cutoff = core::RandomizedCutoff::fixed(1.0);
    jwins_cluster.nodes.push_back(std::make_unique<JwinsNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        jwins_cluster.sampler(), train_config(0.1f), opt));
  }
  for (std::uint32_t t = 0; t < 20; ++t) {
    full_cluster.round(t, true);
    jwins_cluster.round(t, true);
  }
  for (std::size_t r = 0; r < n; ++r) {
    const auto a = full_cluster.nodes[r]->flat_params();
    const auto b = jwins_cluster.nodes[r]->flat_params();
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 2e-3f) << "node " << r << " coord " << k;
    }
  }
}

TEST(Jwins, ConvergesUnderSparsification) {
  const std::size_t n = 8;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<JwinsNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), train_config(0.15f), jwins_options()));
  }
  const float initial_distance = cluster.distance_to(mean_target(n));
  for (std::uint32_t t = 0; t < 250; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.02f);
  for (std::uint32_t t = 250; t < 450; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.004f);
  for (std::uint32_t t = 450; t < 600; ++t) cluster.round(t, /*train=*/true);
  // Partial averaging with per-coordinate renormalization is not exactly
  // mean-preserving, so JWINS converges to a neighborhood of the global
  // optimum rather than the exact mean (this is the paper's small accuracy
  // gap vs full-sharing). Require an order-of-magnitude contraction.
  EXPECT_LT(cluster.distance_to(mean_target(n)), 0.8f);
  EXPECT_LT(cluster.distance_to(mean_target(n)), initial_distance * 0.3f);
  EXPECT_LT(cluster.disagreement(), 0.2f);
}

TEST(Jwins, UsesFewerBytesThanFullSharing) {
  const std::size_t n = 6;
  Cluster full_cluster(n), jwins_cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    full_cluster.nodes.push_back(std::make_unique<FullSharingNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        full_cluster.sampler(), train_config(0.1f)));
    jwins_cluster.nodes.push_back(std::make_unique<JwinsNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        jwins_cluster.sampler(), train_config(0.1f), jwins_options()));
  }
  for (std::uint32_t t = 0; t < 30; ++t) {
    full_cluster.round(t, true);
    jwins_cluster.round(t, true);
  }
  const auto full_bytes = full_cluster.network.traffic().total().bytes_sent;
  const auto jwins_bytes = jwins_cluster.network.traffic().total().bytes_sent;
  EXPECT_LT(jwins_bytes, full_bytes);
}

TEST(Jwins, AlphaSamplesComeFromConfiguredSupport) {
  const std::size_t n = 4;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<JwinsNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), no_train_config(), jwins_options()));
  }
  const std::vector<double> support{0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 1.00};
  for (std::uint32_t t = 0; t < 30; ++t) {
    cluster.round(t, false);
    for (auto& node : cluster.nodes) {
      const double a = static_cast<JwinsNode&>(*node).last_alpha();
      EXPECT_TRUE(std::find(support.begin(), support.end(), a) != support.end())
          << "alpha=" << a;
    }
  }
}

TEST(Jwins, AblationVariantsRun) {
  // All three Figure-8 ablations must be expressible and runnable.
  const std::size_t n = 4;
  for (int variant = 0; variant < 3; ++variant) {
    Cluster cluster(n);
    for (std::size_t r = 0; r < n; ++r) {
      auto opt = jwins_options();
      if (variant == 0) opt.ranker.use_wavelet = false;
      if (variant == 1) opt.ranker.use_accumulation = false;
      if (variant == 2) opt.cutoff = core::RandomizedCutoff::fixed(0.34);
      cluster.nodes.push_back(std::make_unique<JwinsNode>(
          static_cast<std::uint32_t>(r),
          std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
          cluster.sampler(), train_config(0.1f), opt));
    }
    for (std::uint32_t t = 0; t < 50; ++t) cluster.round(t, true);
    EXPECT_LT(cluster.distance_to(mean_target(n)), 1.0f) << "variant " << variant;
  }
}

// -------------------------------------------------------------------- choco

ChocoNode::Options choco_options(double gamma, double fraction) {
  ChocoNode::Options opt;
  opt.gamma = gamma;
  opt.fraction = fraction;
  return opt;
}

TEST(Choco, ConvergesOnQuadratics) {
  const std::size_t n = 8;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<ChocoNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), train_config(0.1f), choco_options(0.5, 0.3)));
  }
  for (std::uint32_t t = 0; t < 300; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.02f);
  for (std::uint32_t t = 300; t < 500; ++t) cluster.round(t, /*train=*/true);
  cluster.set_learning_rate(0.004f);
  for (std::uint32_t t = 500; t < 650; ++t) cluster.round(t, /*train=*/true);
  EXPECT_LT(cluster.distance_to(mean_target(n)), 0.2f);
}

TEST(Choco, PureGossipContractsDisagreement) {
  const std::size_t n = 8;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<ChocoNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), no_train_config(), choco_options(0.6, 0.4)));
  }
  const float before = cluster.disagreement();
  for (std::uint32_t t = 0; t < 200; ++t) cluster.round(t, false);
  EXPECT_LT(cluster.disagreement(), before * 0.05f);
}

TEST(Choco, GammaSensitivity) {
  // The paper reports CHOCO is highly sensitive to gamma: an overly large
  // step size must do visibly worse (or diverge) relative to a tuned one.
  auto run = [&](double gamma) {
    const std::size_t n = 8;
    Cluster cluster(n);
    for (std::size_t r = 0; r < n; ++r) {
      cluster.nodes.push_back(std::make_unique<ChocoNode>(
          static_cast<std::uint32_t>(r),
          std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
          cluster.sampler(), train_config(0.1f), choco_options(gamma, 0.2)));
    }
    for (std::uint32_t t = 0; t < 200; ++t) cluster.round(t, true);
    return cluster.distance_to(mean_target(n));
  };
  const float tuned = run(0.4);
  const float too_large = run(2.5);
  EXPECT_LT(tuned, too_large);
}

TEST(Choco, FractionValidated) {
  Cluster cluster(2);
  EXPECT_THROW(ChocoNode(0,
                         std::make_unique<QuadraticModel>(node_target(0, 2),
                                                          node_init(0)),
                         cluster.sampler(), no_train_config(),
                         choco_options(0.5, 0.0)),
               std::invalid_argument);
}

// ------------------------------------------------------------ cross-cutting

TEST(AllAlgorithms, TrafficSplitsAddUp) {
  const std::size_t n = 4;
  Cluster cluster(n);
  for (std::size_t r = 0; r < n; ++r) {
    cluster.nodes.push_back(std::make_unique<JwinsNode>(
        static_cast<std::uint32_t>(r),
        std::make_unique<QuadraticModel>(node_target(r, n), node_init(r)),
        cluster.sampler(), train_config(0.1f), jwins_options()));
  }
  for (std::uint32_t t = 0; t < 10; ++t) cluster.round(t, true);
  const auto total = cluster.network.traffic().total();
  EXPECT_EQ(total.bytes_sent, total.payload_bytes_sent +
                                  total.metadata_bytes_sent +
                                  total.messages_sent * net::Message::kEnvelopeBytes);
  EXPECT_GT(total.messages_sent, 0u);
}

TEST(DlNode, FlatParamsRoundTrip) {
  Cluster cluster(2);
  FullSharingNode node(0,
                       std::make_unique<QuadraticModel>(node_target(0, 2),
                                                        node_init(0)),
                       cluster.sampler(), no_train_config());
  auto flat = node.flat_params();
  EXPECT_EQ(flat.size(), kDim);
  for (float& v : flat) v += 1.0f;
  node.set_flat_params(flat);
  EXPECT_EQ(node.flat_params(), flat);
}

}  // namespace
}  // namespace jwins::algo

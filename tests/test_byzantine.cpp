// Byzantine attack-matrix suite: adversarial node injection and the robust-
// aggregation countermeasures (docs/SIMULATION.md "Adversarial behavior").
// Four layers, mirroring the tentpole contract:
//   (a) no-attack / robust_agg = none runs stay byte-identical to the
//       legacy report — the golden guarantee that merely compiling the
//       adversarial layer in changes nothing;
//   (b) sign-flip with no defense measurably degrades final loss, while
//       trimmed_mean / median recover within a pinned tolerance;
//   (c) the robust aggregators satisfy unit-level properties (permutation
//       invariance, bounded output under a single outlier, trim-fraction
//       monotonicity, exact kNone reduction);
//   (d) threads=1 vs 4 and replay bit-identity hold under every attack
//       mode and every defense (the determinism contract survives attack).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "algo/node.hpp"
#include "core/averaging.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

namespace jwins {
namespace {

// --- unit-level helpers ---------------------------------------------------

core::SparsePayload dense_payload(std::vector<float> values) {
  core::SparsePayload p;
  p.vector_length = static_cast<std::uint32_t>(values.size());
  p.values = std::move(values);
  return p;
}

core::SparsePayload sparse_payload(std::uint32_t length,
                                   std::vector<std::uint32_t> indices,
                                   std::vector<float> values) {
  core::SparsePayload p;
  p.vector_length = length;
  p.indices = std::move(indices);
  p.values = std::move(values);
  return p;
}

std::vector<core::WeightedContribution> contribs(
    const std::vector<const core::SparsePayload*>& payloads, double weight) {
  std::vector<core::WeightedContribution> out;
  for (const core::SparsePayload* p : payloads) out.push_back({weight, p});
  return out;
}

// --- (c) unit properties: exact kNone reduction ---------------------------

TEST(RobustAggUnit, NoneMatchesPartialAverageBitForBit) {
  const auto p1 = dense_payload({1.0f, 2.0f, 3.0f, 4.0f});
  const auto p2 = sparse_payload(4, {1, 3}, {10.0f, -2.0f});
  const auto c = contribs({&p1, &p2}, 0.25);
  std::vector<float> legacy = {0.5f, -0.5f, 1.5f, 2.5f};
  std::vector<float> robust = legacy;
  core::partial_average(legacy, 0.5, c);
  core::RobustAggConfig none;  // kind = kNone
  core::robust_partial_average(none, robust, 0.5, c, {});
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], robust[i]) << i;
  }
}

TEST(RobustAggUnit, NoneMatchesScaledPartialAverageBitForBit) {
  const auto p1 = dense_payload({1.0f, 2.0f, 3.0f, 4.0f});
  const auto p2 = dense_payload({-1.0f, 0.0f, 1.0f, 2.0f});
  const auto c = contribs({&p1, &p2}, 0.25);
  const std::vector<double> scales = {1.0, 0.5};
  std::vector<float> legacy = {0.5f, -0.5f, 1.5f, 2.5f};
  std::vector<float> robust = legacy;
  core::partial_average(legacy, 0.5, c, std::span<const double>(scales));
  core::RobustAggConfig none;
  core::robust_partial_average(none, robust, 0.5, c,
                               std::span<const double>(scales));
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], robust[i]) << i;
  }
}

TEST(RobustAggUnit, NoneAccumulateMatchesManualWeightedSum) {
  const auto p1 = dense_payload({1.0f, -2.0f, 3.0f});
  const auto p2 = sparse_payload(3, {0, 2}, {4.0f, -8.0f});
  const auto c = contribs({&p1, &p2}, 0.25);
  std::vector<float> acc = {10.0f, 20.0f, 30.0f};
  core::Arena arena;
  core::RobustAggConfig none;
  core::robust_accumulate_diffs(none, acc, c, arena);
  EXPECT_FLOAT_EQ(acc[0], 10.0f + 0.25f * 1.0f + 0.25f * 4.0f);
  EXPECT_FLOAT_EQ(acc[1], 20.0f + 0.25f * -2.0f);
  EXPECT_FLOAT_EQ(acc[2], 30.0f + 0.25f * 3.0f + 0.25f * -8.0f);
}

// --- (c) unit properties: median ------------------------------------------

TEST(RobustAggUnit, MedianPicksMiddleValueIgnoringWeights) {
  // Suppliers per coordinate: own, p1, p2 (odd count) — the median must be
  // the middle *value*, regardless of how lopsided the weights are.
  const auto p1 = dense_payload({100.0f, -100.0f});
  const auto p2 = dense_payload({2.0f, 3.0f});
  std::vector<core::WeightedContribution> c = {{1000.0, &p1}, {0.001, &p2}};
  std::vector<float> own = {1.0f, 5.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kMedian;
  core::robust_partial_average(cfg, own, 0.5, c, {});
  EXPECT_FLOAT_EQ(own[0], 2.0f);   // median of {1, 100, 2}
  EXPECT_FLOAT_EQ(own[1], 3.0f);   // median of {5, -100, 3}
}

TEST(RobustAggUnit, MedianEvenCountAveragesMiddleTwo) {
  const auto p1 = dense_payload({8.0f});
  std::vector<core::WeightedContribution> c = {{0.5, &p1}};
  std::vector<float> own = {2.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kMedian;
  core::robust_partial_average(cfg, own, 0.5, c, {});
  EXPECT_FLOAT_EQ(own[0], 5.0f);  // mean of {2, 8}
}

TEST(RobustAggUnit, MedianLeavesUnsuppliedCoordinatesUntouched) {
  // A sparse contribution covers only index 1; index 0's supplier list is
  // just `own` (m == 1), which the robust rules leave bit-identical.
  const auto p1 = sparse_payload(2, {1}, {9.0f});
  std::vector<core::WeightedContribution> c = {{0.5, &p1}};
  std::vector<float> own = {3.25f, 1.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kMedian;
  core::robust_partial_average(cfg, own, 0.5, c, {});
  EXPECT_EQ(own[0], 3.25f);
  EXPECT_FLOAT_EQ(own[1], 5.0f);
}

// --- (c) unit properties: trimmed mean ------------------------------------

TEST(RobustAggUnit, TrimmedMeanDropsExtremesAndRenormalizes) {
  // Suppliers: own=0 (w 0.4), and four contributions 1..4 (w 0.15 each).
  // f = 0.2, m = 5 -> t = 1: drop the min (own, 0) and max (4); survivors
  // {1, 2, 3} weighted-average with renormalized weights (all equal 0.15,
  // so the result is the plain mean 2).
  const auto p1 = dense_payload({1.0f});
  const auto p2 = dense_payload({2.0f});
  const auto p3 = dense_payload({3.0f});
  const auto p4 = dense_payload({4.0f});
  const auto c = contribs({&p1, &p2, &p3, &p4}, 0.15);
  std::vector<float> own = {0.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kTrimmedMean;
  cfg.trim_fraction = 0.2;
  core::RobustAggCounters counters;
  core::robust_partial_average(cfg, own, 0.4, c, {}, &counters);
  EXPECT_FLOAT_EQ(own[0], 2.0f);
  EXPECT_EQ(counters.trimmed_entries, 2u);  // one per end, one coordinate
}

TEST(RobustAggUnit, TrimmedMeanWeightsSurvivorsProperly) {
  // Survivors with unequal weights: own=2 (w 0.6) and p2=4 (w 0.2) survive
  // after trimming min/max; weighted mean = (0.6*2 + 0.2*4) / 0.8 = 2.5.
  const auto p1 = dense_payload({-100.0f});
  const auto p2 = dense_payload({4.0f});
  const auto p3 = dense_payload({100.0f});
  const auto c = contribs({&p1, &p2, &p3}, 0.2);
  std::vector<float> own = {2.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kTrimmedMean;
  cfg.trim_fraction = 0.25;  // m = 4 -> t = 1
  core::robust_partial_average(cfg, own, 0.6, c, {});
  EXPECT_FLOAT_EQ(own[0], 2.5f);
}

TEST(RobustAggUnit, TrimCountClampAlwaysLeavesASurvivor) {
  // f = 0.49 with m = 5 gives floor(2.45) = 2 = (5-1)/2: exactly one
  // survivor (the median entry) remains.
  const auto p1 = dense_payload({10.0f});
  const auto p2 = dense_payload({20.0f});
  const auto p3 = dense_payload({30.0f});
  const auto p4 = dense_payload({40.0f});
  const auto c = contribs({&p1, &p2, &p3, &p4}, 0.2);
  std::vector<float> own = {25.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kTrimmedMean;
  cfg.trim_fraction = 0.49;
  core::robust_partial_average(cfg, own, 0.2, c, {});
  EXPECT_FLOAT_EQ(own[0], 25.0f);  // the median survivor is own itself
}

TEST(RobustAggUnit, TrimFractionMonotonicity) {
  // One gross outlier among 9 suppliers: as the trim fraction grows the
  // estimate moves monotonically toward the honest mean, and the trimmed-
  // entry counter grows monotonically too.
  std::vector<core::SparsePayload> payloads;
  for (int i = 0; i < 7; ++i) {
    payloads.push_back(dense_payload({static_cast<float>(i % 3)}));  // 0,1,2
  }
  payloads.push_back(dense_payload({1000.0f}));  // the outlier
  std::vector<core::WeightedContribution> c;
  for (const auto& p : payloads) c.push_back({0.1, &p});
  const double honest_mean = (0 + 1 + 2 + 0 + 1 + 2 + 0 + 1.0) / 8.0;
  double previous_error = std::numeric_limits<double>::infinity();
  std::uint64_t previous_trimmed = 0;
  for (const double f : {0.05, 0.12, 0.23, 0.34, 0.45}) {
    std::vector<float> own = {1.0f};
    core::RobustAggConfig cfg;
    cfg.kind = core::RobustAggKind::kTrimmedMean;
    cfg.trim_fraction = f;
    core::RobustAggCounters counters;
    core::robust_partial_average(cfg, own, 0.2, c, {}, &counters);
    const double error = std::abs(own[0] - honest_mean);
    EXPECT_LE(error, previous_error) << "f=" << f;
    EXPECT_GE(counters.trimmed_entries, previous_trimmed) << "f=" << f;
    previous_error = error;
    previous_trimmed = counters.trimmed_entries;
  }
  EXPECT_LT(previous_error, 1.0);  // the outlier is fully suppressed
}

// --- (c) unit properties: bounded output under a single outlier -----------

TEST(RobustAggUnit, MedianBoundedUnderSingleOutlier) {
  const auto honest1 = dense_payload({1.0f, -1.0f});
  const auto honest2 = dense_payload({2.0f, -2.0f});
  const auto outlier = dense_payload({1e6f, -1e6f});
  const auto c = contribs({&honest1, &honest2, &outlier}, 0.2);
  std::vector<float> own = {0.5f, -0.5f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kMedian;
  core::robust_partial_average(cfg, own, 0.4, c, {});
  for (const float v : own) EXPECT_LE(std::abs(v), 2.0f);
}

TEST(RobustAggUnit, TrimmedMeanBoundedUnderSingleOutlier) {
  const auto honest1 = dense_payload({1.0f, -1.0f});
  const auto honest2 = dense_payload({2.0f, -2.0f});
  const auto outlier = dense_payload({-1e6f, 1e6f});
  const auto c = contribs({&honest1, &honest2, &outlier}, 0.2);
  std::vector<float> own = {0.5f, -0.5f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kTrimmedMean;
  cfg.trim_fraction = 0.25;  // m = 4 -> t = 1: the outlier is trimmed
  core::robust_partial_average(cfg, own, 0.4, c, {});
  for (const float v : own) EXPECT_LE(std::abs(v), 2.0f);
}

TEST(RobustAggUnit, NormClipBoundsDeviationFromOwn) {
  const auto outlier = dense_payload({100.0f, 0.0f});
  std::vector<core::WeightedContribution> c = {{0.5, &outlier}};
  std::vector<float> own = {0.0f, 0.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kNormClip;
  cfg.clip_norm = 2.0;
  core::RobustAggCounters counters;
  core::robust_partial_average(cfg, own, 0.5, c, {}, &counters);
  // Clipped contribution: own + 2/100 * (z - own) = (2, 0); the 50/50
  // average with own (0, 0) gives (1, 0).
  EXPECT_FLOAT_EQ(own[0], 1.0f);
  EXPECT_FLOAT_EQ(own[1], 0.0f);
  EXPECT_EQ(counters.clipped_contributions, 1u);
}

TEST(RobustAggUnit, NormClipPassesSmallDeviationsBitIdentically) {
  const auto p1 = dense_payload({0.25f, -0.125f});
  const auto p2 = sparse_payload(2, {0}, {0.5f});
  const auto c = contribs({&p1, &p2}, 0.25);
  std::vector<float> clipped = {0.0f, 0.0f};
  std::vector<float> legacy = clipped;
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kNormClip;
  cfg.clip_norm = 10.0;  // nothing deviates this far
  core::RobustAggCounters counters;
  core::robust_partial_average(cfg, clipped, 0.5, c, {}, &counters);
  core::partial_average(legacy, 0.5, c);
  EXPECT_EQ(counters.clipped_contributions, 0u);
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], clipped[i]) << i;
  }
}

// --- (c) unit properties: permutation invariance --------------------------

class RobustPermutation
    : public ::testing::TestWithParam<core::RobustAggKind> {};

TEST_P(RobustPermutation, ContributionOrderDoesNotChangeTheResult) {
  // Distinct values per coordinate so the value-sort is canonical; the
  // order the contributions arrive in must not matter.
  const auto p1 = dense_payload({1.0f, 7.0f, -3.0f});
  const auto p2 = dense_payload({4.0f, -2.0f, 5.0f});
  const auto p3 = dense_payload({-6.0f, 3.0f, 1.0f});
  const auto p4 = sparse_payload(3, {0, 2}, {2.0f, -1.0f});
  std::vector<core::WeightedContribution> forward = {
      {0.15, &p1}, {0.2, &p2}, {0.25, &p3}, {0.1, &p4}};
  std::vector<core::WeightedContribution> reversed(forward.rbegin(),
                                                   forward.rend());
  core::RobustAggConfig cfg;
  cfg.kind = GetParam();
  cfg.trim_fraction = 0.2;
  cfg.clip_norm = 3.0;
  std::vector<float> a = {0.5f, 0.25f, -0.75f};
  std::vector<float> b = a;
  core::robust_partial_average(cfg, a, 0.3, forward, {});
  core::robust_partial_average(cfg, b, 0.3, reversed, {});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6) << i;
  }
}

TEST_P(RobustPermutation, DiffAccumulationOrderDoesNotChangeTheResult) {
  const auto p1 = dense_payload({1.0f, 7.0f});
  const auto p2 = dense_payload({4.0f, -2.0f});
  const auto p3 = dense_payload({-6.0f, 3.0f});
  std::vector<core::WeightedContribution> forward = {
      {0.15, &p1}, {0.2, &p2}, {0.25, &p3}};
  std::vector<core::WeightedContribution> reversed(forward.rbegin(),
                                                   forward.rend());
  core::RobustAggConfig cfg;
  cfg.kind = GetParam();
  cfg.trim_fraction = 0.2;
  cfg.clip_norm = 3.0;
  std::vector<float> a = {0.5f, -0.5f};
  std::vector<float> b = a;
  core::Arena arena;
  core::robust_accumulate_diffs(cfg, a, forward, arena);
  core::robust_accumulate_diffs(cfg, b, reversed, arena);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RobustPermutation,
    ::testing::Values(core::RobustAggKind::kTrimmedMean,
                      core::RobustAggKind::kMedian,
                      core::RobustAggKind::kNormClip),
    [](const ::testing::TestParamInfo<core::RobustAggKind>& info) {
      return core::robust_agg_name(info.param);
    });

// --- (c) unit properties: diff-space rules (the CHOCO path) ---------------

TEST(RobustAggUnit, DiffMedianScalesBySummedSupplierWeight) {
  // Median of {1, 5, 9} is 5; W = 0.2 + 0.3 + 0.1 = 0.6 -> acc += 3.
  const auto p1 = dense_payload({1.0f});
  const auto p2 = dense_payload({5.0f});
  const auto p3 = dense_payload({9.0f});
  std::vector<core::WeightedContribution> c = {
      {0.2, &p1}, {0.3, &p2}, {0.1, &p3}};
  std::vector<float> acc = {10.0f};
  core::Arena arena;
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kMedian;
  core::robust_accumulate_diffs(cfg, acc, c, arena);
  EXPECT_FLOAT_EQ(acc[0], 13.0f);
}

TEST(RobustAggUnit, DiffTrimmedMeanSuppressesOutlierDiff) {
  // Four equal-weight diffs, one huge: f = 0.25 -> t = 1 trims the min and
  // the max; survivors {2, 3} average to 2.5, W = 0.4 -> acc += 1.
  const auto p1 = dense_payload({2.0f});
  const auto p2 = dense_payload({3.0f});
  const auto p3 = dense_payload({1.0f});
  const auto p4 = dense_payload({1e6f});
  const auto c = contribs({&p1, &p2, &p3, &p4}, 0.1);
  std::vector<float> acc = {0.0f};
  core::Arena arena;
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kTrimmedMean;
  cfg.trim_fraction = 0.25;
  core::RobustAggCounters counters;
  core::robust_accumulate_diffs(cfg, acc, c, arena, &counters);
  EXPECT_FLOAT_EQ(acc[0], 0.4f * 2.5f);
  EXPECT_EQ(counters.trimmed_entries, 2u);
}

TEST(RobustAggUnit, DiffNormClipShrinksLargeDiffs) {
  // ||(3, 4)|| = 5 > 1 -> shrunk by 1/5 to (0.6, 0.8), weight 0.5.
  const auto big = dense_payload({3.0f, 4.0f});
  std::vector<core::WeightedContribution> c = {{0.5, &big}};
  std::vector<float> acc = {0.0f, 0.0f};
  core::Arena arena;
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kNormClip;
  cfg.clip_norm = 1.0;
  core::RobustAggCounters counters;
  core::robust_accumulate_diffs(cfg, acc, c, arena, &counters);
  EXPECT_FLOAT_EQ(acc[0], 0.5f * 0.6f);
  EXPECT_FLOAT_EQ(acc[1], 0.5f * 0.8f);
  EXPECT_EQ(counters.clipped_contributions, 1u);
}

TEST(RobustAggUnit, CountersAccumulateAcrossCalls) {
  const auto outlier = dense_payload({100.0f});
  std::vector<core::WeightedContribution> c = {{0.5, &outlier}};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kNormClip;
  cfg.clip_norm = 1.0;
  core::RobustAggCounters counters;
  for (int i = 0; i < 3; ++i) {
    std::vector<float> own = {0.0f};
    core::robust_partial_average(cfg, own, 0.5, c, {}, &counters);
  }
  EXPECT_EQ(counters.clipped_contributions, 3u);
}

TEST(RobustAggUnit, MalformedContributionsThrow) {
  const auto wrong_length = dense_payload({1.0f, 2.0f});
  std::vector<core::WeightedContribution> c = {{0.5, &wrong_length}};
  std::vector<float> own = {0.0f, 0.0f, 0.0f};
  core::RobustAggConfig cfg;
  cfg.kind = core::RobustAggKind::kMedian;
  EXPECT_THROW(core::robust_partial_average(cfg, own, 0.5, c, {}),
               std::invalid_argument);
  auto bad_index = sparse_payload(3, {7}, {1.0f});
  std::vector<core::WeightedContribution> c2 = {{0.5, &bad_index}};
  EXPECT_THROW(core::robust_partial_average(cfg, own, 0.5, c2, {}),
               std::out_of_range);
  core::Arena arena;
  EXPECT_THROW(core::robust_accumulate_diffs(cfg, own, c, arena),
               std::invalid_argument);
}

TEST(RobustAggUnit, RuleNamesAreStable) {
  EXPECT_STREQ(core::robust_agg_name(core::RobustAggKind::kNone), "none");
  EXPECT_STREQ(core::robust_agg_name(core::RobustAggKind::kTrimmedMean),
               "trimmed_mean");
  EXPECT_STREQ(core::robust_agg_name(core::RobustAggKind::kMedian), "median");
  EXPECT_STREQ(core::robust_agg_name(core::RobustAggKind::kNormClip),
               "norm_clip");
  EXPECT_STREQ(algo::byzantine_mode_name(algo::ByzantineMode::kRandom),
               "random");
  EXPECT_STREQ(algo::byzantine_mode_name(algo::ByzantineMode::kSignFlip),
               "sign_flip");
  EXPECT_STREQ(algo::byzantine_mode_name(algo::ByzantineMode::kScale),
               "scale");
}

// --- seeded victim selection ----------------------------------------------

TEST(ByzantineVictims, AscendingUniqueAndClamped) {
  const auto victims = algo::byzantine_victims(7, 16, 5);
  ASSERT_EQ(victims.size(), 5u);
  for (std::size_t i = 1; i < victims.size(); ++i) {
    EXPECT_LT(victims[i - 1], victims[i]);
  }
  for (const std::uint32_t v : victims) EXPECT_LT(v, 16u);
  EXPECT_EQ(algo::byzantine_victims(7, 4, 100).size(), 4u);
  EXPECT_TRUE(algo::byzantine_victims(7, 4, 0).empty());
}

TEST(ByzantineVictims, DeterministicPerSeedAndSeedSensitive) {
  EXPECT_EQ(algo::byzantine_victims(11, 32, 8),
            algo::byzantine_victims(11, 32, 8));
  EXPECT_NE(algo::byzantine_victims(11, 32, 8),
            algo::byzantine_victims(12, 32, 8));
}

TEST(ByzantineVictims, GrowingCountIsANestedPrefix) {
  // The k victims under count=k are always a subset of those under k+1 —
  // the sorted-hash construction makes attacker sweeps nested, like the
  // crash set.
  const auto small = algo::byzantine_victims(23, 16, 3);
  const auto large = algo::byzantine_victims(23, 16, 6);
  for (const std::uint32_t v : small) {
    EXPECT_NE(std::find(large.begin(), large.end(), v), large.end()) << v;
  }
}

// --- experiment-level helpers ---------------------------------------------

struct ByzScenario {
  const char* name;
  sim::Algorithm algorithm;
  bool choco_qsgd = false;
  algo::ByzantineMode mode = algo::ByzantineMode::kSignFlip;
  double scale = 1.0;
  std::size_t attackers = 2;
  core::RobustAggKind defense = core::RobustAggKind::kNone;
};

sim::ExperimentResult run_byz(const ByzScenario& s, unsigned threads,
                              sim::EngineKind engine = sim::EngineKind::kSync,
                              std::size_t rounds = 4) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 29);
  sim::ExperimentConfig cfg;
  cfg.algorithm = s.algorithm;
  cfg.rounds = rounds;
  cfg.local_steps = 2;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = rounds;
  cfg.eval_sample_limit = 48;
  cfg.threads = threads;
  cfg.seed = 29;
  cfg.engine = engine;
  if (s.choco_qsgd) cfg.choco.compressor = algo::ChocoNode::Compressor::kQsgd;
  cfg.byzantine_nodes = s.attackers;
  cfg.byzantine_mode = s.mode;
  cfg.byzantine_scale = s.scale;
  cfg.robust_agg.kind = s.defense;
  cfg.robust_agg.trim_fraction = 0.25;
  cfg.robust_agg.clip_norm = 0.5;
  std::mt19937 topo_rng(29);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 4, topo_rng)));
  return exp.run();
}

void expect_bit_identical(const sim::ExperimentResult& a,
                          const sim::ExperimentResult& b, const char* label) {
  SCOPED_TRACE(label);
  std::ostringstream ja, jb;
  sim::write_result_json(ja, "report", a, /*include_wall=*/false);
  sim::write_result_json(jb, "report", b, /*include_wall=*/false);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.byzantine.corrupted_messages, b.byzantine.corrupted_messages);
  EXPECT_EQ(a.byzantine.trimmed_entries, b.byzantine.trimmed_entries);
  EXPECT_EQ(a.byzantine.clipped_contributions,
            b.byzantine.clipped_contributions);
}

// --- (a) golden guarantee: benign runs keep the legacy report -------------

class NoAttackGolden
    : public ::testing::TestWithParam<ByzScenario> {};

TEST_P(NoAttackGolden, BenignRunMatchesUntouchedConfigByteForByte) {
  // byzantine_nodes = 0 with robust_agg = none must be indistinguishable —
  // in every metric and in the emitted JSON, byte for byte — from a config
  // that never heard of the adversarial layer, whatever the (unused)
  // attack-mode knobs are set to.
  ByzScenario benign = GetParam();
  benign.attackers = 0;
  benign.defense = core::RobustAggKind::kNone;
  benign.mode = algo::ByzantineMode::kRandom;  // irrelevant without victims
  benign.scale = 42.0;
  const auto with_knobs = run_byz(benign, 1);
  ByzScenario untouched = GetParam();
  untouched.attackers = 0;
  untouched.defense = core::RobustAggKind::kNone;
  untouched.mode = algo::ByzantineMode::kSignFlip;  // the defaults
  untouched.scale = 1.0;
  const auto legacy = run_byz(untouched, 1);
  expect_bit_identical(with_knobs, legacy, "benign vs legacy");
  EXPECT_FALSE(with_knobs.byzantine.extended);
  std::ostringstream os;
  sim::write_result_json(os, "report", with_knobs, /*include_wall=*/false);
  EXPECT_EQ(os.str().find("\"byzantine\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, NoAttackGolden,
    ::testing::Values(
        ByzScenario{"full_sharing", sim::Algorithm::kFullSharing},
        ByzScenario{"random_sampling", sim::Algorithm::kRandomSampling},
        ByzScenario{"jwins", sim::Algorithm::kJwins},
        ByzScenario{"choco_topk", sim::Algorithm::kChoco},
        ByzScenario{"choco_qsgd", sim::Algorithm::kChoco, true},
        ByzScenario{"power_gossip", sim::Algorithm::kPowerGossip}),
    [](const ::testing::TestParamInfo<ByzScenario>& info) {
      return info.param.name;
    });

// --- attack matrix: every algorithm x every attack mode -------------------

class AttackMatrix : public ::testing::TestWithParam<ByzScenario> {};

TEST_P(AttackMatrix, AttackAccountingIsReported) {
  const auto result = run_byz(GetParam(), 1);
  ASSERT_TRUE(result.byzantine.extended);
  EXPECT_EQ(result.byzantine.mode, GetParam().mode);
  EXPECT_EQ(result.byzantine.attackers,
            algo::byzantine_victims(29, 8, GetParam().attackers));
  EXPECT_GT(result.byzantine.corrupted_messages, 0u);
  EXPECT_TRUE(std::isfinite(result.final_loss));
  std::ostringstream os;
  sim::write_result_json(os, "report", result, /*include_wall=*/false);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"byzantine\""), std::string::npos);
  EXPECT_NE(json.find(std::string("\"mode\": \"") +
                      algo::byzantine_mode_name(GetParam().mode) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"corrupted_messages\""), std::string::npos);
}

TEST_P(AttackMatrix, BitIdenticalAcrossThreadCountsAndReplay) {
  // (d) the determinism contract under attack: threads=1 vs threads=4,
  // and an identical replay, must agree byte for byte.
  const auto sequential = run_byz(GetParam(), 1);
  const auto threaded = run_byz(GetParam(), 4);
  const auto replay = run_byz(GetParam(), 4);
  expect_bit_identical(sequential, threaded, "threads=1 vs threads=4");
  expect_bit_identical(threaded, replay, "replay");
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllModes, AttackMatrix,
    ::testing::Values(
        ByzScenario{"full_sharing_random", sim::Algorithm::kFullSharing,
                    false, algo::ByzantineMode::kRandom},
        ByzScenario{"full_sharing_sign_flip", sim::Algorithm::kFullSharing,
                    false, algo::ByzantineMode::kSignFlip},
        ByzScenario{"full_sharing_scale", sim::Algorithm::kFullSharing,
                    false, algo::ByzantineMode::kScale, -10.0},
        ByzScenario{"random_sampling_random", sim::Algorithm::kRandomSampling,
                    false, algo::ByzantineMode::kRandom},
        ByzScenario{"random_sampling_sign_flip",
                    sim::Algorithm::kRandomSampling, false,
                    algo::ByzantineMode::kSignFlip},
        ByzScenario{"random_sampling_scale", sim::Algorithm::kRandomSampling,
                    false, algo::ByzantineMode::kScale, -10.0},
        ByzScenario{"jwins_random", sim::Algorithm::kJwins, false,
                    algo::ByzantineMode::kRandom},
        ByzScenario{"jwins_sign_flip", sim::Algorithm::kJwins, false,
                    algo::ByzantineMode::kSignFlip},
        ByzScenario{"jwins_scale", sim::Algorithm::kJwins, false,
                    algo::ByzantineMode::kScale, -10.0},
        ByzScenario{"choco_topk_random", sim::Algorithm::kChoco, false,
                    algo::ByzantineMode::kRandom},
        ByzScenario{"choco_topk_sign_flip", sim::Algorithm::kChoco, false,
                    algo::ByzantineMode::kSignFlip},
        ByzScenario{"choco_topk_scale", sim::Algorithm::kChoco, false,
                    algo::ByzantineMode::kScale, -10.0},
        ByzScenario{"choco_qsgd_random", sim::Algorithm::kChoco, true,
                    algo::ByzantineMode::kRandom},
        ByzScenario{"choco_qsgd_sign_flip", sim::Algorithm::kChoco, true,
                    algo::ByzantineMode::kSignFlip},
        ByzScenario{"choco_qsgd_scale", sim::Algorithm::kChoco, true,
                    algo::ByzantineMode::kScale, -10.0},
        ByzScenario{"power_gossip_random", sim::Algorithm::kPowerGossip,
                    false, algo::ByzantineMode::kRandom},
        ByzScenario{"power_gossip_sign_flip", sim::Algorithm::kPowerGossip,
                    false, algo::ByzantineMode::kSignFlip},
        ByzScenario{"power_gossip_scale", sim::Algorithm::kPowerGossip, false,
                    algo::ByzantineMode::kScale, -10.0}),
    [](const ::testing::TestParamInfo<ByzScenario>& info) {
      return info.param.name;
    });

// --- defense matrix: robust rules under a live sign-flip attack -----------

class DefenseMatrix : public ::testing::TestWithParam<ByzScenario> {};

TEST_P(DefenseMatrix, DefenseRunsAndReportsItsActivity) {
  const auto result = run_byz(GetParam(), 1);
  ASSERT_TRUE(result.byzantine.extended);
  EXPECT_EQ(result.byzantine.robust_agg, GetParam().defense);
  EXPECT_TRUE(std::isfinite(result.final_loss));
  // The defense must actually have engaged: order-statistic rules trim,
  // the clip rule clips (sign-flipped payloads deviate far beyond 0.5).
  if (GetParam().defense == core::RobustAggKind::kNormClip) {
    EXPECT_GT(result.byzantine.clipped_contributions, 0u);
  } else {
    EXPECT_GT(result.byzantine.trimmed_entries, 0u);
  }
  std::ostringstream os;
  sim::write_result_json(os, "report", result, /*include_wall=*/false);
  EXPECT_NE(os.str().find(std::string("\"robust_agg\": \"") +
                          core::robust_agg_name(GetParam().defense) + "\""),
            std::string::npos);
}

TEST_P(DefenseMatrix, BitIdenticalAcrossThreadCounts) {
  const auto sequential = run_byz(GetParam(), 1);
  const auto threaded = run_byz(GetParam(), 4);
  expect_bit_identical(sequential, threaded, "threads=1 vs threads=4");
}

INSTANTIATE_TEST_SUITE_P(
    RulesAcrossAlgorithms, DefenseMatrix,
    ::testing::Values(
        ByzScenario{"full_sharing_trimmed", sim::Algorithm::kFullSharing,
                    false, algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kTrimmedMean},
        ByzScenario{"full_sharing_median", sim::Algorithm::kFullSharing,
                    false, algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kMedian},
        ByzScenario{"full_sharing_norm_clip", sim::Algorithm::kFullSharing,
                    false, algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kNormClip},
        ByzScenario{"jwins_trimmed", sim::Algorithm::kJwins, false,
                    algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kTrimmedMean},
        ByzScenario{"jwins_median", sim::Algorithm::kJwins, false,
                    algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kMedian},
        ByzScenario{"jwins_norm_clip", sim::Algorithm::kJwins, false,
                    algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kNormClip},
        ByzScenario{"choco_topk_trimmed", sim::Algorithm::kChoco, false,
                    algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kTrimmedMean},
        ByzScenario{"choco_topk_median", sim::Algorithm::kChoco, false,
                    algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kMedian},
        ByzScenario{"choco_topk_norm_clip", sim::Algorithm::kChoco, false,
                    algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kNormClip},
        ByzScenario{"power_gossip_norm_clip", sim::Algorithm::kPowerGossip,
                    false, algo::ByzantineMode::kSignFlip, 1.0, 2,
                    core::RobustAggKind::kNormClip}),
    [](const ::testing::TestParamInfo<ByzScenario>& info) {
      return info.param.name;
    });

// --- (b) sign-flip degradation and robust recovery ------------------------

TEST(SignFlipRecovery, UndefendedDegradesAndOrderStatisticsRecover) {
  // Full-sharing, 8 nodes, 2 sign-flippers, 8 rounds. The pinned contract:
  // with no defense the poisoned average visibly hurts the final loss;
  // trimmed_mean and median bring it back near the benign trajectory.
  ByzScenario benign{"benign", sim::Algorithm::kFullSharing};
  benign.attackers = 0;
  ByzScenario attacked = benign;
  attacked.attackers = 2;
  attacked.mode = algo::ByzantineMode::kSignFlip;
  ByzScenario trimmed = attacked;
  trimmed.defense = core::RobustAggKind::kTrimmedMean;
  ByzScenario median = attacked;
  median.defense = core::RobustAggKind::kMedian;

  const std::size_t rounds = 16;
  const double benign_loss =
      run_byz(benign, 4, sim::EngineKind::kSync, rounds).final_loss;
  const double undefended_loss =
      run_byz(attacked, 4, sim::EngineKind::kSync, rounds).final_loss;
  const double trimmed_loss =
      run_byz(trimmed, 4, sim::EngineKind::kSync, rounds).final_loss;
  const double median_loss =
      run_byz(median, 4, sim::EngineKind::kSync, rounds).final_loss;

  // Degradation: the undefended run must be measurably worse.
  EXPECT_GT(undefended_loss, benign_loss * 1.10)
      << "benign=" << benign_loss << " undefended=" << undefended_loss;
  // Recovery, pinned: the order-statistic defenses land within 10% of the
  // benign loss and beat the undefended run outright.
  EXPECT_LT(trimmed_loss, benign_loss * 1.10)
      << "benign=" << benign_loss << " trimmed=" << trimmed_loss;
  EXPECT_LT(median_loss, benign_loss * 1.10)
      << "benign=" << benign_loss << " median=" << median_loss;
  EXPECT_LT(trimmed_loss, undefended_loss);
  EXPECT_LT(median_loss, undefended_loss);
}

TEST(SignFlipRecovery, JwinsTrimmedMeanRecoversOnTheSparsePath) {
  // The same contract on the renormalized sparse-average path the paper's
  // algorithm actually uses.
  ByzScenario attacked{"jwins", sim::Algorithm::kJwins};
  attacked.attackers = 2;
  ByzScenario trimmed = attacked;
  trimmed.defense = core::RobustAggKind::kTrimmedMean;
  const std::size_t rounds = 8;
  const double undefended_loss =
      run_byz(attacked, 4, sim::EngineKind::kSync, rounds).final_loss;
  const double trimmed_loss =
      run_byz(trimmed, 4, sim::EngineKind::kSync, rounds).final_loss;
  EXPECT_LT(trimmed_loss, undefended_loss)
      << "undefended=" << undefended_loss << " trimmed=" << trimmed_loss;
}

// --- config-level validation of the adversarial fields --------------------

TEST(ByzantineValidation, ExperimentRejectsContradictoryConfigs) {
  sim::ExperimentConfig cfg;
  cfg.byzantine_nodes = 8;
  auto errors = cfg.validate(8);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("byzantine_nodes"), std::string::npos);

  sim::ExperimentConfig trim;
  trim.robust_agg.kind = core::RobustAggKind::kTrimmedMean;
  trim.robust_agg.trim_fraction = 0.5;
  errors = trim.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("trim fraction"), std::string::npos);

  sim::ExperimentConfig clip;
  clip.robust_agg.kind = core::RobustAggKind::kNormClip;
  clip.robust_agg.clip_norm = 0.0;
  errors = clip.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("clip norm"), std::string::npos);

  sim::ExperimentConfig pg;
  pg.algorithm = sim::Algorithm::kPowerGossip;
  pg.robust_agg.kind = core::RobustAggKind::kTrimmedMean;
  pg.robust_agg.trim_fraction = 0.1;
  errors = pg.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("power-gossip"), std::string::npos);
}

TEST(ByzantineValidation, CrashAndByzantineVictimOverlapIsRejected) {
  // Find a (seed, crash, byzantine) combination whose seeded victim sets
  // collide, then assert validate(n) names the overlap. With 3 crashed and
  // 3 byzantine of 8 nodes some seed below 64 must collide.
  const std::size_t n = 8;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    sim::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.byzantine_nodes = 3;
    cfg.time.crash_nodes = 3;
    cfg.time.crash_at = 2;
    const auto errors = cfg.validate(n);
    if (errors.empty()) continue;  // disjoint under this seed
    EXPECT_NE(errors.front().find("both crashed and byzantine"),
              std::string::npos)
        << errors.front();
    return;
  }
  FAIL() << "no colliding seed found in 64 tries (statistically impossible "
            "unless the overlap check is dead)";
}

TEST(ByzantineValidation, DisjointCrashAndByzantineSetsPass) {
  const std::size_t n = 8;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    sim::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.byzantine_nodes = 1;
    cfg.time.crash_nodes = 1;
    cfg.time.crash_at = 2;
    if (cfg.validate(n).empty()) return;  // found a disjoint pair: passes
  }
  FAIL() << "every seed collided (the overlap check is over-eager)";
}

TEST(ByzantineValidation, ConstructorSurfacesTheOverlapError) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 29);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    sim::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.byzantine_nodes = 3;
    cfg.time.crash_nodes = 3;
    cfg.time.crash_at = 2;
    if (cfg.validate(n).empty()) continue;
    std::mt19937 topo_rng(29);
    EXPECT_THROW(
        sim::Experiment(cfg, w.model_factory, *w.train, w.partition, *w.test,
                        std::make_unique<graph::StaticTopology>(
                            graph::random_regular(n, 4, topo_rng))),
        std::invalid_argument);
    return;
  }
  FAIL() << "no colliding seed found";
}

}  // namespace
}  // namespace jwins

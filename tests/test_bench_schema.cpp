// Guards the checked-in perf trajectory documents (BENCH_*.json).
//
// The bench documents are how the repo's perf story is audited: each one
// must be a complete (unfiltered) jwins.bench_micro/1 run with a summary
// block, and no later snapshot may silently drop kernels relative to
// BENCH_baseline.json. Kernel names are compared with any dispatch-tier
// suffix (/scalar, /fast) stripped, so a snapshot taken under either tier
// covers the same families as the baseline.
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<fs::path> bench_documents() {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(JWINS_SOURCE_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.ends_with(".json")) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string strip_tier(std::string name) {
  for (const std::string suffix : {"/fast", "/scalar"}) {
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

std::set<std::string> kernel_names(const std::string& doc) {
  std::set<std::string> names;
  static const std::regex kName("\"name\":\\s*\"([^\"]+)\"");
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), kName);
       it != std::sregex_iterator(); ++it) {
    names.insert(strip_tier((*it)[1].str()));
  }
  return names;
}

TEST(BenchSchema, DocumentsArePresent) {
  const auto docs = bench_documents();
  ASSERT_FALSE(docs.empty()) << "no BENCH_*.json at repo root";
  bool has_baseline = false;
  for (const auto& p : docs) {
    has_baseline |= p.filename() == "BENCH_baseline.json";
  }
  EXPECT_TRUE(has_baseline);
}

TEST(BenchSchema, EveryDocumentIsACompleteRun) {
  for (const auto& path : bench_documents()) {
    SCOPED_TRACE(path.filename().string());
    const std::string doc = slurp(path);
    // Schema id pins the layout; a filtered run is a partial document and
    // must never be checked in as a trajectory point.
    EXPECT_NE(doc.find("\"schema\": \"jwins.bench_micro/1\""),
              std::string::npos)
        << "missing or wrong schema id";
    EXPECT_NE(doc.find("\"filter\": \"\""), std::string::npos)
        << "checked-in bench documents must be unfiltered";
    EXPECT_NE(doc.find("\"summary\""), std::string::npos)
        << "missing summary block";
    EXPECT_NE(doc.find("\"fig5_alloc_reduction\""), std::string::npos)
        << "summary missing fig5_alloc_reduction";
    EXPECT_FALSE(kernel_names(doc).empty()) << "no kernels";
  }
}

TEST(BenchSchema, KernelSetNeverShrinksVsBaseline) {
  const fs::path baseline_path =
      fs::path(JWINS_SOURCE_DIR) / "BENCH_baseline.json";
  const std::set<std::string> baseline = kernel_names(slurp(baseline_path));
  ASSERT_FALSE(baseline.empty());
  for (const auto& path : bench_documents()) {
    if (path.filename() == "BENCH_baseline.json") continue;
    SCOPED_TRACE(path.filename().string());
    const std::set<std::string> names = kernel_names(slurp(path));
    for (const std::string& required : baseline) {
      EXPECT_TRUE(names.count(required))
          << "kernel '" << required
          << "' present in BENCH_baseline.json but missing here";
    }
  }
}

}  // namespace

#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace jwins::tensor {
namespace {

TEST(TensorShape, NumelAndToString) {
  EXPECT_EQ(numel({}), 1u);
  EXPECT_EQ(numel({4}), 4u);
  EXPECT_EQ(numel({2, 3, 4}), 24u);
  EXPECT_EQ(to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(to_string({}), "[]");
}

TEST(TensorConstruct, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
}

TEST(TensorConstruct, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.size(), 12u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorConstruct, FillValue) {
  Tensor t({2, 2}, 3.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t[i], 3.5f);
}

TEST(TensorConstruct, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(TensorConstruct, OfAndFrom) {
  Tensor a = Tensor::of({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(a.shape(), (Shape{3}));
  Tensor b = Tensor::from({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(b.at({1, 0}), 3.0f);
}

TEST(TensorConstruct, RandomFills) {
  std::mt19937 rng(7);
  Tensor u = Tensor::uniform({1000}, -1.0f, 1.0f, rng);
  EXPECT_GE(u.min(), -1.0f);
  EXPECT_LE(u.max(), 1.0f);
  EXPECT_NEAR(u.mean(), 0.0f, 0.1f);
  Tensor n = Tensor::normal({1000}, 2.0f, 0.5f, rng);
  EXPECT_NEAR(n.mean(), 2.0f, 0.1f);
}

TEST(TensorConstruct, DeterministicGivenSeed) {
  std::mt19937 rng1(42), rng2(42);
  Tensor a = Tensor::normal({64}, 0.0f, 1.0f, rng1);
  Tensor b = Tensor::normal({64}, 0.0f, 1.0f, rng2);
  EXPECT_TRUE(allclose(a, b, 0.0f));
}

TEST(TensorAccess, MultiDimOffsets) {
  Tensor t = Tensor::from({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_FLOAT_EQ(t.at({1, 1}), 4.0f);
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(TensorReshape, PreservesData) {
  Tensor t = Tensor::from({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape({3, 2});
  EXPECT_FLOAT_EQ(r.at({2, 1}), 5.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(TensorTranspose, TwoByThree) {
  Tensor t = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.transposed();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(tt.at({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(tt.at({2, 0}), 3.0f);
  EXPECT_THROW(Tensor({2, 2, 2}).transposed(), std::invalid_argument);
}

TEST(TensorArithmetic, ElementwiseOps) {
  Tensor a = Tensor::of({1, 2, 3});
  Tensor b = Tensor::of({4, 5, 6});
  Tensor sum = a + b;
  EXPECT_TRUE(allclose(sum, Tensor::of({5, 7, 9})));
  Tensor diff = b - a;
  EXPECT_TRUE(allclose(diff, Tensor::of({3, 3, 3})));
  Tensor prod = a * b;
  EXPECT_TRUE(allclose(prod, Tensor::of({4, 10, 18})));
  Tensor scaled = a * 2.0f;
  EXPECT_TRUE(allclose(scaled, Tensor::of({2, 4, 6})));
  Tensor scaled2 = 3.0f * a;
  EXPECT_TRUE(allclose(scaled2, Tensor::of({3, 6, 9})));
}

TEST(TensorArithmetic, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
  EXPECT_THROW(a.axpy(1.0f, b), std::invalid_argument);
}

TEST(TensorArithmetic, Axpy) {
  Tensor a = Tensor::of({1, 2});
  Tensor b = Tensor::of({10, 20});
  a.axpy(0.5f, b);
  EXPECT_TRUE(allclose(a, Tensor::of({6, 12})));
}

TEST(TensorReductions, SumMeanMinMaxNorm) {
  Tensor t = Tensor::of({-3, 1, 2});
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_FLOAT_EQ(t.squared_norm(), 14.0f);
  EXPECT_NEAR(t.norm(), std::sqrt(14.0f), 1e-5f);
  EXPECT_EQ(t.argmax(), 2u);
}

TEST(TensorApply, InPlaceFunction) {
  Tensor t = Tensor::of({1, -2, 3});
  t.apply([](float v) { return v * v; });
  EXPECT_TRUE(allclose(t, Tensor::of({1, 4, 9})));
}

TEST(TensorZeroFill, Works) {
  Tensor t = Tensor::of({1, 2, 3});
  t.zero();
  EXPECT_FLOAT_EQ(t.abs_max(), 0.0f);
  t.fill(7.0f);
  EXPECT_FLOAT_EQ(t.min(), 7.0f);
}

TEST(TensorMatmul, KnownProduct) {
  Tensor a = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_TRUE(allclose(c, Tensor::from({2, 2}, {58, 64, 139, 154})));
}

TEST(TensorMatmul, TransposedVariantsAgree) {
  std::mt19937 rng(3);
  Tensor a = Tensor::normal({4, 5}, 0, 1, rng);
  Tensor b = Tensor::normal({5, 6}, 0, 1, rng);
  Tensor direct = matmul(a, b);
  Tensor via_tn = matmul_tn(a.transposed(), b);
  Tensor via_nt = matmul_nt(a, b.transposed());
  EXPECT_TRUE(allclose(direct, via_tn, 1e-4f));
  EXPECT_TRUE(allclose(direct, via_nt, 1e-4f));
}

TEST(TensorMatmul, MismatchThrows) {
  Tensor a({2, 3}), b({2, 3});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

struct MatmulSize {
  std::size_t m, k, n;
};

class MatmulParam : public ::testing::TestWithParam<MatmulSize> {};

TEST_P(MatmulParam, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  std::mt19937 rng(m * 100 + k * 10 + n);
  Tensor a = Tensor::normal({m, k}, 0, 1, rng);
  Tensor b = Tensor::normal({k, n}, 0, 1, rng);
  Tensor c = matmul(a, b);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at({i, p})) * b.at({p, j});
      }
      EXPECT_NEAR(c.at({i, j}), acc, 1e-3) << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulParam,
                         ::testing::Values(MatmulSize{1, 1, 1},
                                           MatmulSize{2, 7, 3},
                                           MatmulSize{5, 5, 5},
                                           MatmulSize{8, 3, 13},
                                           MatmulSize{16, 16, 16}));

TEST(TensorDot, MatchesManual) {
  Tensor a = Tensor::of({1, 2, 3});
  Tensor b = Tensor::of({4, 5, 6});
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(TensorMse, KnownValue) {
  Tensor a = Tensor::of({1, 2, 3});
  Tensor b = Tensor::of({1, 4, 3});
  EXPECT_NEAR(mse(a, b), 4.0f / 3.0f, 1e-6f);
}

TEST(TensorAllclose, RespectsTolerance) {
  Tensor a = Tensor::of({1.0f});
  Tensor b = Tensor::of({1.0005f});
  EXPECT_TRUE(allclose(a, b, 1e-3f));
  EXPECT_FALSE(allclose(a, b, 1e-5f));
  EXPECT_FALSE(allclose(a, Tensor({2})));
}

}  // namespace
}  // namespace jwins::tensor

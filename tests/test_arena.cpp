// Round-scratch memory facility: core::Arena invariants (alignment, growth,
// reset/reuse, consolidation), net::BufferPool / SharedBytes recycling,
// PayloadPool slot reuse, no-aliasing across concurrently used arenas, and
// the central refactor guard — every scratch-backed API must be
// bit-identical to its allocating legacy counterpart, and arena-backed
// engine runs must stay byte-identical across thread counts (the same
// contract test_determinism.cpp pins on the metric level).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "compress/elias.hpp"
#include "compress/float_codec.hpp"
#include "compress/quantize.hpp"
#include "compress/topk.hpp"
#include "core/arena.hpp"
#include "core/averaging.hpp"
#include "core/scratch.hpp"
#include "core/sparse_payload.hpp"
#include "dwt/dwt.hpp"
#include "graph/graph.hpp"
#include "net/buffer.hpp"
#include "net/serializer.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"
#include "test_util.hpp"

namespace jwins {
namespace {

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> out(n);
  for (float& v : out) v = dist(rng);
  return out;
}

// --- Arena basics ----------------------------------------------------------

TEST(Arena, AllocatesAlignedSpans) {
  core::Arena arena;
  const auto bytes = arena.alloc<std::uint8_t>(3);
  ASSERT_EQ(bytes.size(), 3u);
  const auto doubles = arena.alloc<double>(4);
  ASSERT_EQ(doubles.size(), 4u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double),
            0u);
  const auto u32 = arena.alloc<std::uint32_t>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u32.data()) % alignof(std::uint32_t),
            0u);
  // Spans are writable and disjoint.
  for (auto& v : doubles) v = 1.5;
  for (auto& v : u32) v = 7;
  EXPECT_EQ(doubles[3], 1.5);
  EXPECT_EQ(u32[4], 7u);
}

TEST(Arena, ZeroCountReturnsEmptySpanWithoutTouchingArena) {
  core::Arena arena;
  const std::size_t used_before = arena.used();
  const auto span = arena.alloc<float>(0);
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(arena.used(), used_before);
}

TEST(Arena, RejectsUnsupportedAlignment) {
  core::Arena arena;
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 4096), std::invalid_argument);
}

TEST(Arena, GrowsAcrossBlocksAndConsolidatesOnReset) {
  core::Arena arena(1024);
  EXPECT_EQ(arena.block_count(), 1u);
  // Overflow the first block several times.
  for (int i = 0; i < 8; ++i) arena.alloc<std::uint8_t>(4096);
  EXPECT_GT(arena.block_count(), 1u);
  const std::size_t grown_capacity = arena.capacity();
  EXPECT_GE(grown_capacity, 8u * 4096u);
  EXPECT_GE(arena.high_water(), 8u * 4096u);

  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);  // consolidated
  EXPECT_GE(arena.capacity(), grown_capacity);
  EXPECT_EQ(arena.used(), 0u);

  // The same workload now fits in the single block: steady state.
  for (int i = 0; i < 8; ++i) arena.alloc<std::uint8_t>(4096);
  EXPECT_EQ(arena.block_count(), 1u);
  const std::size_t steady_capacity = arena.capacity();
  for (int round = 0; round < 16; ++round) {
    arena.reset();
    for (int i = 0; i < 8; ++i) arena.alloc<std::uint8_t>(4096);
    EXPECT_EQ(arena.block_count(), 1u);
    EXPECT_EQ(arena.capacity(), steady_capacity);  // no further growth
  }
}

TEST(Arena, ReserveGuaranteesSingleBlock) {
  core::Arena arena;
  arena.reserve(1 << 16);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity(), std::size_t{1} << 16);
  arena.alloc<double>(4096);  // exactly the reserved bytes
  EXPECT_EQ(arena.block_count(), 1u);
  arena.reset();
  EXPECT_THROW(
      [&] {
        arena.alloc<float>(1);
        arena.reserve(1 << 20);  // outstanding allocations -> logic_error
      }(),
      std::logic_error);
}

TEST(Arena, UsedTracksPaddingAndPayload) {
  core::Arena arena(4096);
  arena.alloc<std::uint8_t>(1);
  const std::size_t after_byte = arena.used();
  EXPECT_EQ(after_byte, 1u);
  arena.alloc<double>(1);  // 7 bytes padding + 8 payload
  EXPECT_EQ(arena.used(), 16u);
  EXPECT_GE(arena.high_water(), arena.used());
}

TEST(Arena, NoAliasingAcrossConcurrentWorkers) {
  // One arena per worker, hammered concurrently: every span must hold
  // exactly the pattern its owner wrote (TSan-clean by construction).
  constexpr int kWorkers = 4;
  constexpr int kRounds = 50;
  std::vector<core::Arena> arenas(kWorkers);
  std::vector<std::thread> threads;
  std::vector<int> failures(kWorkers, 0);
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        arenas[w].reset();
        auto a = arenas[w].alloc<std::uint32_t>(512 + static_cast<std::size_t>(w));
        auto b = arenas[w].alloc<double>(256);
        const auto tag = static_cast<std::uint32_t>(w * 1000 + r);
        for (auto& v : a) v = tag;
        for (auto& v : b) v = static_cast<double>(tag) + 0.5;
        for (const auto& v : a) {
          if (v != tag) ++failures[w];
        }
        for (const auto& v : b) {
          if (v != static_cast<double>(tag) + 0.5) ++failures[w];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < kWorkers; ++w) EXPECT_EQ(failures[w], 0) << "worker " << w;
}

// --- BufferPool / SharedBytes ----------------------------------------------

TEST(BufferPool, RecyclesStorageThroughAdopt) {
  net::BufferPool pool;
  std::vector<std::uint8_t> buf = pool.acquire();
  buf.assign(1000, 42);
  const std::uint8_t* storage = buf.data();
  {
    const net::SharedBytes body = pool.adopt(std::move(buf));
    EXPECT_EQ(body.size(), 1000u);
    EXPECT_EQ(body.data(), storage);  // adopted, not copied
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  // Last reference dropped -> storage returned to the pool.
  EXPECT_EQ(pool.idle_count(), 1u);
  const std::vector<std::uint8_t> again = pool.acquire();
  EXPECT_EQ(again.data(), storage);  // same heap buffer, cleared
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 1000u);
}

TEST(BufferPool, FanOutSharesOneBuffer) {
  net::BufferPool pool;
  auto buf = pool.acquire();
  buf.assign(64, 7);
  const net::SharedBytes body = pool.adopt(std::move(buf));
  net::Message msg;
  msg.body = body;
  const net::Message copy1 = msg;
  const net::Message copy2 = msg;
  EXPECT_TRUE(copy1.body.shares_storage_with(copy2.body));
  EXPECT_TRUE(copy1.body.shares_storage_with(body));
  EXPECT_EQ(copy2.body.span().data(), body.span().data());
}

TEST(BufferPool, BodiesSurviveThePool) {
  net::SharedBytes body;
  {
    net::BufferPool pool;
    auto buf = pool.acquire();
    buf.assign(16, 3);
    body = pool.adopt(std::move(buf));
  }  // pool destroyed first
  EXPECT_EQ(body.size(), 16u);
  EXPECT_EQ(body[15], 3u);
}  // body destroyed after: frees instead of recycling — must not crash

TEST(SharedBytes, ValueSemanticsForTests) {
  const net::SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.span().size(), 0u);
  const net::SharedBytes listed = {1, 2, 3};
  EXPECT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[2], 3u);
  const net::SharedBytes zeros = net::SharedBytes::zeros(10);
  EXPECT_EQ(zeros.size(), 10u);
  EXPECT_EQ(zeros[9], 0u);
}

// --- PayloadPool ------------------------------------------------------------

TEST(PayloadPool, ReusesSlotCapacityAcrossResets) {
  core::PayloadPool pool;
  core::SparsePayload& first = pool.next();
  first.indices.assign(100, 1);
  first.values.assign(100, 2.0f);
  const std::uint32_t* index_storage = first.indices.data();
  pool.reset();
  core::SparsePayload& again = pool.next();
  EXPECT_EQ(&again, &first);           // same slot
  EXPECT_TRUE(again.indices.empty());  // cleared...
  again.indices.resize(50);
  EXPECT_EQ(again.indices.data(), index_storage);  // ...but capacity kept
}

// --- Scratch APIs are bit-identical to the allocating legacy APIs ----------

TEST(ScratchEquivalence, TopKGatherAndRandomIndices) {
  const auto values = random_floats(4096, 1);
  core::Arena arena;
  for (const std::size_t k : {std::size_t{1}, std::size_t{409}, std::size_t{4096},
                              std::size_t{9999}}) {
    const auto legacy = compress::topk_indices(values, k);
    std::vector<std::uint32_t> scratch;
    compress::topk_indices_into(values, k, scratch);
    EXPECT_EQ(legacy, scratch) << "k=" << k;

    const auto gathered = compress::gather(values, legacy);
    std::vector<float> gathered_scratch;
    compress::gather_into(values, legacy, gathered_scratch);
    EXPECT_EQ(gathered, gathered_scratch);
  }
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto legacy = compress::random_indices(4096, 1365, seed);
    std::vector<std::uint32_t> scratch;
    arena.reset();
    compress::random_indices_into(4096, 1365, seed, scratch, arena);
    EXPECT_EQ(legacy, scratch) << "seed=" << seed;
  }
}

TEST(ScratchEquivalence, EliasAndFloatCodec) {
  const auto values = random_floats(8192, 2);
  const auto indices = compress::topk_indices(values, 800);

  const auto legacy_bytes = compress::encode_index_gaps(indices);
  compress::BitWriter bits;
  for (int round = 0; round < 3; ++round) {  // reuse across rounds
    bits.clear();
    compress::encode_index_gaps(indices, bits);
    EXPECT_EQ(legacy_bytes, bits.bytes());
  }
  const auto legacy_decoded = compress::decode_index_gaps(legacy_bytes, 800);
  std::vector<std::uint32_t> decoded;
  compress::decode_index_gaps_into(legacy_bytes, 800, decoded);
  EXPECT_EQ(legacy_decoded, decoded);

  const auto legacy_comp = compress::compress_floats(values);
  bits.clear();
  compress::compress_floats(values, bits);
  EXPECT_EQ(legacy_comp, bits.bytes());
  const auto legacy_back = compress::decompress_floats(legacy_comp, 8192);
  std::vector<float> back;
  compress::decompress_floats_into(legacy_comp, 8192, back);
  EXPECT_EQ(legacy_back, back);
}

TEST(ScratchEquivalence, QsgdQuantizer) {
  const auto values = random_floats(2048, 3);
  std::mt19937_64 rng_a(9), rng_b(9);
  const auto legacy = compress::qsgd_quantize(values, 15, rng_a);
  compress::QuantizedVector scratch;
  scratch.packed.reserve(64);  // nonempty initial state must not leak in
  compress::qsgd_quantize_into(values, 15, rng_b, scratch);
  EXPECT_EQ(legacy.norm, scratch.norm);
  EXPECT_EQ(legacy.packed, scratch.packed);

  const auto legacy_deq = compress::qsgd_dequantize(legacy);
  std::vector<float> deq;
  compress::qsgd_dequantize_into(scratch, deq);
  EXPECT_EQ(legacy_deq, deq);

  const auto legacy_ser = compress::qsgd_serialize(legacy);
  net::ByteWriter writer;
  compress::qsgd_serialize_into(scratch, writer);
  EXPECT_EQ(legacy_ser, writer.buffer());
  compress::QuantizedVector round_trip;
  compress::qsgd_deserialize_into(legacy_ser, round_trip);
  EXPECT_EQ(round_trip.packed, legacy.packed);
  EXPECT_EQ(round_trip.count, legacy.count);
}

TEST(ScratchEquivalence, DwtWorkspaceTransforms) {
  for (const std::size_t n : {std::size_t{63}, std::size_t{1024},
                              std::size_t{1000}, std::size_t{4097}}) {
    const dwt::DwtPlan plan(dwt::sym2(), n, 4);
    const auto x = random_floats(n, static_cast<unsigned>(n));
    const auto legacy = plan.forward(x);
    dwt::DwtWorkspace ws;
    std::vector<float> coeffs(plan.coeff_length());
    for (int round = 0; round < 2; ++round) {  // workspace reuse
      plan.forward_into(x, coeffs, ws);
      EXPECT_EQ(legacy, coeffs) << "n=" << n;
    }
    const auto legacy_inv = plan.inverse(legacy);
    std::vector<float> out(n);
    plan.inverse_into(coeffs, out, ws);
    EXPECT_EQ(legacy_inv, out) << "n=" << n;
  }
}

TEST(ScratchEquivalence, PartialAverageWithArena) {
  const std::size_t n = 2048;
  std::vector<core::SparsePayload> payloads(3);
  std::vector<core::WeightedContribution> contribs;
  for (std::size_t j = 0; j < payloads.size(); ++j) {
    payloads[j].vector_length = static_cast<std::uint32_t>(n);
    payloads[j].indices = compress::random_indices(n, n / 4, j + 1);
    payloads[j].values = random_floats(n / 4, static_cast<unsigned>(j) + 10);
    contribs.push_back({0.25, &payloads[j]});
  }
  auto legacy = random_floats(n, 77);
  auto scratch_backed = legacy;
  core::partial_average(legacy, 0.25, contribs);
  core::Arena arena;
  core::partial_average(scratch_backed, 0.25, contribs, arena);
  EXPECT_EQ(legacy, scratch_backed);
}

TEST(ScratchEquivalence, PayloadCodecRoundTrip) {
  const std::size_t n = 4096;
  const auto values = random_floats(n, 5);
  core::SparsePayload payload;
  payload.vector_length = static_cast<std::uint32_t>(n);
  payload.indices = compress::topk_indices(values, n / 8);
  payload.values = compress::gather(values, payload.indices);

  core::Arena arena;
  for (const auto index_encoding :
       {core::IndexEncoding::kEliasGamma, core::IndexEncoding::kRaw}) {
    for (const auto value_encoding :
         {core::ValueEncoding::kXorCodec, core::ValueEncoding::kRaw}) {
      core::PayloadOptions options{index_encoding, value_encoding, 0};
      const core::EncodedPayload legacy = core::encode_payload(payload, options);

      net::ByteWriter writer;
      compress::BitWriter bits;
      const std::size_t metadata =
          core::encode_payload_into(payload, options, writer, bits);
      EXPECT_EQ(legacy.body, writer.buffer());
      EXPECT_EQ(legacy.metadata_bytes, metadata);

      const core::SparsePayload legacy_decoded = core::decode_payload(legacy.body);
      core::SparsePayload decoded;
      arena.reset();
      core::decode_payload_into(legacy.body, decoded, arena);
      EXPECT_EQ(legacy_decoded.vector_length, decoded.vector_length);
      EXPECT_EQ(legacy_decoded.indices, decoded.indices);
      EXPECT_EQ(legacy_decoded.values, decoded.values);
    }
  }

  // Seed-coded payloads regenerate indices through the arena path.
  core::PayloadOptions seed_options;
  seed_options.index_encoding = core::IndexEncoding::kSeed;
  seed_options.seed = 0xFEEDu;
  core::SparsePayload seeded;
  seeded.vector_length = static_cast<std::uint32_t>(n);
  seeded.indices = compress::random_indices(n, n / 8, 0xFEEDu);
  seeded.values = compress::gather(values, seeded.indices);
  const auto legacy = core::encode_payload(seeded, seed_options);
  const auto legacy_decoded = core::decode_payload(legacy.body);
  core::SparsePayload decoded;
  arena.reset();
  core::decode_payload_into(legacy.body, decoded, arena);
  EXPECT_EQ(legacy_decoded.indices, decoded.indices);
  EXPECT_EQ(legacy_decoded.values, decoded.values);

  // Pooled make_message produces the same bytes as the legacy one.
  net::BufferPool pool;
  compress::BitWriter bits;
  const net::Message legacy_msg = core::make_message(3, 7, payload, {});
  const net::Message pooled_msg =
      core::make_message(3, 7, payload, {}, pool, bits);
  EXPECT_EQ(legacy_msg.metadata_bytes, pooled_msg.metadata_bytes);
  ASSERT_EQ(legacy_msg.body.size(), pooled_msg.body.size());
  const auto a = legacy_msg.body.span();
  const auto b = pooled_msg.body.span();
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

// --- Arena-backed engine runs stay byte-identical --------------------------

sim::ExperimentResult run_fig5_like(unsigned threads) {
  const std::size_t n = 8;
  const sim::Workload w = sim::make_femnist_like(n, 23);
  sim::ExperimentConfig cfg;
  cfg.algorithm = sim::Algorithm::kJwins;
  cfg.rounds = 5;
  cfg.local_steps = 2;
  cfg.eval_every = 2;
  cfg.eval_sample_limit = 64;
  cfg.threads = threads;
  cfg.seed = 23;
  std::mt19937 topo_rng(23);
  sim::Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                      std::make_unique<graph::StaticTopology>(
                          graph::random_regular(n, 4, topo_rng)));
  return exp.run();
}

TEST(ArenaDeterminism, EngineJsonByteIdenticalAcrossThreadCounts) {
  // The whole point of the scratch design: per-lane arenas must not leak
  // any state into results. Serialize the full result to JSON (the golden
  // format test_determinism.cpp validates structurally) and compare bytes
  // across thread counts and across repeated runs.
  const auto sequential = run_fig5_like(1);
  const auto threaded = run_fig5_like(4);
  const auto threaded_again = run_fig5_like(4);
  auto to_json = [](const sim::ExperimentResult& r) {
    std::ostringstream os;
    sim::write_result_json(os, "arena/jwins", r, /*include_wall=*/false);
    return os.str();
  };
  const std::string a = to_json(sequential);
  EXPECT_EQ(a, to_json(threaded));
  EXPECT_EQ(a, to_json(threaded_again));
}

}  // namespace
}  // namespace jwins

// --- LSTM train-step allocation pin ----------------------------------------
// The LSTM arena treatment (member workspaces + in-place caches in
// nn::Lstm, rank-2 ensure_shape) took the bench's lstm_train_step from
// ~1218 allocs/op to a few dozen. Pin that reduction with a counting
// operator new, mirroring bench_micro's hook. Sanitized builds replace the
// allocator themselves, so the hook (and the test) is compiled out there —
// the plain Debug/Release CI jobs keep the pin.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define JWINS_TEST_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define JWINS_TEST_ALLOC_HOOK 0
#else
#define JWINS_TEST_ALLOC_HOOK 1
#endif
#else
#define JWINS_TEST_ALLOC_HOOK 1
#endif

#if JWINS_TEST_ALLOC_HOOK

#include <atomic>
#include <cstdlib>
#include <malloc.h>
#include <new>

#include "nn/models.hpp"
#include "nn/sgd.hpp"

namespace {
std::atomic<std::uint64_t> g_test_alloc_count{0};
// Net bytes currently held through this hook (usable size, so it matches
// what the heap actually charges). test_scale.cpp's per-node memory pin
// reads it through testutil::live_heap_bytes().
std::atomic<std::int64_t> g_test_live_bytes{0};
}  // namespace

std::int64_t jwins::testutil::live_heap_bytes() noexcept {
  return g_test_live_bytes.load(std::memory_order_relaxed);
}

void* operator new(std::size_t size) {
  g_test_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    g_test_live_bytes.fetch_add(
        static_cast<std::int64_t>(malloc_usable_size(p)),
        std::memory_order_relaxed);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  if (p) {
    g_test_live_bytes.fetch_sub(
        static_cast<std::int64_t>(malloc_usable_size(p)),
        std::memory_order_relaxed);
  }
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace jwins {
namespace {

TEST(LstmArena, SteadyStateTrainStepAllocationBound) {
  nn::CharLstm::Config cfg;
  cfg.vocab = 30;
  cfg.embedding_dim = 12;
  cfg.hidden = 24;
  cfg.layers = 2;
  nn::CharLstm model(cfg, 1);
  nn::Sgd opt(model.parameters(), model.gradients(),
              nn::Sgd::Options{.learning_rate = 0.05f});
  nn::Batch batch;
  batch.x = tensor::Tensor({8, 16});
  batch.labels.resize(8 * 16);
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> tok(0, 29);
  for (std::size_t i = 0; i < batch.x.size(); ++i) {
    batch.x[i] = static_cast<float>(tok(rng));
    batch.labels[i] = tok(rng);
  }
  auto step = [&] {
    model.zero_grad();
    (void)model.loss_and_grad(batch);
    opt.step();
  };
  // Warm the member workspaces and caches.
  for (int i = 0; i < 3; ++i) step();
  const std::uint64_t before =
      g_test_alloc_count.load(std::memory_order_relaxed);
  constexpr int kIters = 16;
  for (int i = 0; i < kIters; ++i) step();
  const std::uint64_t per_op =
      (g_test_alloc_count.load(std::memory_order_relaxed) - before) / kIters;
  // Measured ~34/op after the rework (was ~1218). The bound leaves room for
  // the per-call return tensors the Module interface requires, but fails
  // loudly if per-timestep churn ever comes back.
  EXPECT_LE(per_op, 80u) << "LSTM train step allocation churn regressed";
}

}  // namespace
}  // namespace jwins

#else  // !JWINS_TEST_ALLOC_HOOK

std::int64_t jwins::testutil::live_heap_bytes() noexcept { return -1; }

#endif  // JWINS_TEST_ALLOC_HOOK

// PowerGossip tests: shared-randomness agreement, pairwise averaging along
// the rank-1 direction, consensus contraction, and the O(sqrt(d)) traffic
// footprint.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algo/power_gossip.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "test_util.hpp"

namespace jwins::algo {
namespace {

using testutil::DummyDataset;
using testutil::QuadraticModel;
using tensor::Tensor;

constexpr std::size_t kDim = 64;

TrainConfig no_train() {
  TrainConfig cfg;
  cfg.sgd.learning_rate = 0.0f;
  return cfg;
}

TrainConfig train(float lr) {
  TrainConfig cfg;
  cfg.sgd.learning_rate = lr;
  return cfg;
}

std::unique_ptr<QuadraticModel> quad(const Tensor& target, const Tensor& init) {
  return std::make_unique<QuadraticModel>(target, init);
}

struct Pair {
  DummyDataset dataset;
  net::Network network{2};
  core::RoundScratch scratch;
  graph::Graph graph = graph::complete(2);
  graph::MixingWeights weights = graph::metropolis_hastings(graph);
  std::unique_ptr<PowerGossipNode> a, b;

  Pair(Tensor xa, Tensor xb, TrainConfig cfg = no_train()) {
    PowerGossipNode::Options opt;
    Tensor target(xa.shape());
    a = std::make_unique<PowerGossipNode>(
        0, quad(target, std::move(xa)),
        data::Sampler(dataset, {0, 1, 2, 3}, 4, 1), cfg, opt);
    b = std::make_unique<PowerGossipNode>(
        1, quad(target, std::move(xb)),
        data::Sampler(dataset, {0, 1, 2, 3}, 4, 1), cfg, opt);
  }

  void gossip_iteration(std::uint32_t base_round) {
    for (std::uint32_t phase = 0; phase < 2; ++phase) {
      const std::uint32_t r = base_round * 2 + phase;
      a->share(network, graph, weights, r, scratch);
      b->share(network, graph, weights, r, scratch);
      a->aggregate(network, graph, weights, r, scratch);
      b->aggregate(network, graph, weights, r, scratch);
    }
  }

  float difference() {
    const auto xa = a->flat_params();
    const auto xb = b->flat_params();
    float d = 0.0f;
    for (std::size_t i = 0; i < xa.size(); ++i) {
      d = std::max(d, std::fabs(xa[i] - xb[i]));
    }
    return d;
  }
};

TEST(PowerGossip, BlocksFollowParameterTensors) {
  DummyDataset dataset;
  // A vector-shaped parameter becomes a single-row block (rank-1 exact).
  PowerGossipNode vec_node(0, quad(Tensor({kDim}), Tensor({kDim})),
                           data::Sampler(dataset, {0, 1, 2, 3}, 4, 1),
                           no_train(), {});
  ASSERT_EQ(vec_node.blocks().size(), 1u);
  EXPECT_EQ(vec_node.blocks()[0].rows, 1u);
  EXPECT_EQ(vec_node.blocks()[0].cols, kDim);
  // A matrix-shaped parameter keeps its leading axis as rows, so one gossip
  // iteration ships rows+cols = O(sqrt(d)) floats instead of d.
  PowerGossipNode mat_node(0, quad(Tensor({8, 8}), Tensor({8, 8})),
                           data::Sampler(dataset, {0, 1, 2, 3}, 4, 1),
                           no_train(), {});
  ASSERT_EQ(mat_node.blocks().size(), 1u);
  EXPECT_EQ(mat_node.blocks()[0].rows, 8u);
  EXPECT_EQ(mat_node.blocks()[0].cols, 8u);
  EXPECT_EQ(mat_node.floats_per_edge_iteration(), 16u);
}

TEST(PowerGossip, RankOneDifferenceResolvedInOneIteration) {
  // If M_a - M_b is exactly rank one, a single power iteration recovers it
  // exactly and the symmetric gamma=1 gossip step moves both endpoints to
  // their average — the difference vanishes in ONE iteration.
  Tensor xa({8, 8}), xb({8, 8});
  // M_a - M_b = outer(e_2, ramp).
  for (std::size_t c = 0; c < 8; ++c) {
    xa[2 * 8 + c] = static_cast<float>(c + 1);
  }
  Pair pair(xa, xb);
  EXPECT_GT(pair.difference(), 1.0f);
  pair.gossip_iteration(0);
  EXPECT_NEAR(pair.difference(), 0.0f, 1e-4f);
}

TEST(PowerGossip, GeneralMatrixDifferenceContracts) {
  // A full-rank difference needs several warm-started iterations: each one
  // removes (roughly) the current top singular direction.
  std::mt19937 rng(3);
  Pair pair(Tensor::normal({8, 8}, 0, 1, rng), Tensor::normal({8, 8}, 0, 1, rng));
  const float before = pair.difference();
  for (std::uint32_t it = 0; it < 60; ++it) pair.gossip_iteration(it);
  EXPECT_LT(pair.difference(), before * 0.05f);
}

TEST(PowerGossip, PreservesPairMean) {
  // The symmetric +/- update keeps the average of the two models fixed.
  std::mt19937 rng(5);
  const Tensor xa = Tensor::normal({8, 8}, 0, 1, rng);
  const Tensor xb = Tensor::normal({8, 8}, 0, 1, rng);
  Pair pair(xa, xb);
  std::vector<float> mean_before(xa.size());
  for (std::size_t i = 0; i < xa.size(); ++i) mean_before[i] = (xa[i] + xb[i]) / 2;
  for (std::uint32_t it = 0; it < 10; ++it) pair.gossip_iteration(it);
  const auto fa = pair.a->flat_params();
  const auto fb = pair.b->flat_params();
  for (std::size_t i = 0; i < xa.size(); ++i) {
    EXPECT_NEAR((fa[i] + fb[i]) / 2, mean_before[i], 2e-4f) << "coord " << i;
  }
}

TEST(PowerGossip, TrafficIsSquareRootOfDimension) {
  std::mt19937 rng(7);
  Pair pair(Tensor::normal({8, 8}, 0, 1, rng), Tensor::normal({8, 8}, 0, 1, rng));
  pair.gossip_iteration(0);
  // Per node, one iteration = p (rows floats) + q (cols floats) + headers.
  const auto sent = pair.network.traffic().node(0).payload_bytes_sent;
  EXPECT_LE(sent, (8 + 8) * sizeof(float) + 8);
  EXPECT_LT(sent, 64 * sizeof(float) / 2);  // far below dense sharing
}

TEST(PowerGossip, MultiNodeConsensusOnQuadratics) {
  const std::size_t n = 8;
  DummyDataset dataset;
  net::Network network(n);
  core::RoundScratch scratch;
  std::mt19937 grng(9);
  const graph::Graph g = graph::random_regular(n, 4, grng);
  const graph::MixingWeights weights = graph::metropolis_hastings(g);
  std::vector<std::unique_ptr<PowerGossipNode>> nodes;
  auto target = [&](std::size_t r) {
    Tensor t({kDim});
    for (std::size_t i = 0; i < kDim; ++i) {
      t[i] = std::sin(0.2f * float(i + 1) * float(r + 1));
    }
    return t;
  };
  Tensor mean({kDim});
  for (std::size_t r = 0; r < n; ++r) mean += target(r);
  mean *= 1.0f / float(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::mt19937 irng(100 + unsigned(r));
    nodes.push_back(std::make_unique<PowerGossipNode>(
        std::uint32_t(r), quad(target(r), Tensor::normal({kDim}, 0, 1, irng)),
        data::Sampler(dataset, {0, 1, 2, 3}, 4, 1), train(0.1f),
        PowerGossipNode::Options{}));
  }
  auto run_rounds = [&](std::uint32_t from, std::uint32_t to) {
    for (std::uint32_t t = from; t < to; ++t) {
      for (auto& node : nodes) node->local_train();
      for (auto& node : nodes) node->share(network, g, weights, t, scratch);
      for (auto& node : nodes) node->aggregate(network, g, weights, t, scratch);
    }
  };
  run_rounds(0, 400);
  for (auto& node : nodes) node->set_learning_rate(0.01f);
  run_rounds(400, 800);
  float worst = 0.0f;
  for (auto& node : nodes) {
    const auto x = node->flat_params();
    for (std::size_t i = 0; i < kDim; ++i) {
      worst = std::max(worst, std::fabs(x[i] - mean[i]));
    }
  }
  EXPECT_LT(worst, 0.25f);
}

}  // namespace
}  // namespace jwins::algo

#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "nn/flat.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

namespace jwins::sim {
namespace {

ExperimentConfig base_config(Algorithm algorithm, std::size_t rounds) {
  ExperimentConfig cfg;
  cfg.algorithm = algorithm;
  cfg.rounds = rounds;
  cfg.local_steps = 2;
  cfg.sgd.learning_rate = 0.05f;
  cfg.eval_every = rounds;  // evaluate at the end only (fast)
  cfg.eval_sample_limit = 128;
  cfg.eval_node_limit = 4;
  return cfg;
}

std::unique_ptr<graph::TopologyProvider> static_topo(std::size_t n,
                                                     std::size_t d,
                                                     unsigned seed) {
  std::mt19937 rng(seed);
  return std::make_unique<graph::StaticTopology>(graph::random_regular(n, d, rng));
}

TEST(Workloads, AllFiveBuildAndPartition) {
  for (const auto& name : workload_names()) {
    const Workload w = make_workload(name, 8, 3);
    EXPECT_EQ(w.partition.size(), 8u) << name;
    EXPECT_GT(w.train->size(), 0u) << name;
    EXPECT_GT(w.test->size(), 0u) << name;
    for (const auto& shard : w.partition) EXPECT_FALSE(shard.empty()) << name;
    auto model = w.model_factory();
    EXPECT_GT(model->parameter_count(), 0u) << name;
    // The factory must give every node the same starting point.
    auto model2 = w.model_factory();
    auto f1 = nn::to_flat(model->parameters());
    auto f2 = nn::to_flat(model2->parameters());
    EXPECT_EQ(f1, f2) << name;
  }
}

TEST(Workloads, CifarShardingIsNonIid) {
  const Workload w = make_cifar_like(8, 1);
  for (const auto& shard : w.partition) {
    EXPECT_LE(data::distinct_labels(*w.train, shard), 4u);
  }
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload("imagenet", 4, 1), std::invalid_argument);
}

TEST(Experiment, FullSharingImprovesAccuracy) {
  const std::size_t n = 8;
  Workload w = make_cifar_like(n, 5);
  auto cfg = base_config(Algorithm::kFullSharing, 30);
  Experiment before(cfg, w.model_factory, *w.train, w.partition, *w.test,
                    static_topo(n, 4, 5));
  // Round-0 accuracy of the shared initial model:
  auto initial_model = w.model_factory();
  const auto init_metrics =
      initial_model->evaluate(data::full_batch(*w.test, 128));
  const ExperimentResult result = before.run();
  EXPECT_GT(result.final_accuracy, init_metrics.accuracy + 0.1);
  EXPECT_GT(result.final_accuracy, 0.25);  // well above 10-class chance
  EXPECT_EQ(result.rounds_run, 30u);
  EXPECT_GT(result.total_traffic.bytes_sent, 0u);
}

TEST(Experiment, JwinsRunsAndTracksAlpha) {
  const std::size_t n = 8;
  Workload w = make_cifar_like(n, 6);
  auto cfg = base_config(Algorithm::kJwins, 20);
  Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                 static_topo(n, 4, 6));
  const ExperimentResult result = exp.run();
  // Mean observed alpha should approximate E[alpha] = 0.343.
  EXPECT_GT(result.mean_alpha, 0.2);
  EXPECT_LT(result.mean_alpha, 0.5);
  EXPECT_GT(result.final_accuracy, 0.15);
}

TEST(Experiment, JwinsSendsFewerBytesThanFullSharing) {
  const std::size_t n = 8;
  Workload w = make_cifar_like(n, 7);
  auto full_cfg = base_config(Algorithm::kFullSharing, 15);
  auto jwins_cfg = base_config(Algorithm::kJwins, 15);
  Experiment full(full_cfg, w.model_factory, *w.train, w.partition, *w.test,
                  static_topo(n, 4, 7));
  Experiment jw(jwins_cfg, w.model_factory, *w.train, w.partition, *w.test,
                static_topo(n, 4, 7));
  const auto full_result = full.run();
  const auto jwins_result = jw.run();
  // The paper's headline: >60% fewer bytes. Require at least 40% here to
  // keep the test robust at tiny scale.
  EXPECT_LT(jwins_result.total_traffic.bytes_sent,
            full_result.total_traffic.bytes_sent * 0.6);
}

TEST(Experiment, RandomSamplingAndChocoRun) {
  const std::size_t n = 8;
  Workload w = make_femnist_like(n, 8);
  auto rs_cfg = base_config(Algorithm::kRandomSampling, 10);
  rs_cfg.random_sampling_fraction = 0.37;
  Experiment rs(rs_cfg, w.model_factory, *w.train, w.partition, *w.test,
                static_topo(n, 4, 8));
  EXPECT_GT(rs.run().final_accuracy, 0.0);

  auto choco_cfg = base_config(Algorithm::kChoco, 10);
  choco_cfg.choco.gamma = 0.5;
  choco_cfg.choco.fraction = 0.2;
  Experiment choco(choco_cfg, w.model_factory, *w.train, w.partition, *w.test,
                   static_topo(n, 4, 8));
  EXPECT_GT(choco.run().final_accuracy, 0.0);
}

TEST(Experiment, TargetAccuracyStopsEarly) {
  const std::size_t n = 8;
  Workload w = make_celeba_like(n, 9);
  auto cfg = base_config(Algorithm::kFullSharing, 100);
  cfg.eval_every = 2;
  cfg.target_accuracy = 0.40;  // trivially reachable on a binary task
  Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                 static_topo(n, 4, 9));
  const ExperimentResult result = exp.run();
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.rounds_run, 100u);
}

TEST(Experiment, ThreadedAndSequentialProduceIdenticalTraffic) {
  const std::size_t n = 8;
  Workload w = make_cifar_like(n, 10);
  auto cfg = base_config(Algorithm::kJwins, 8);
  Experiment seq(cfg, w.model_factory, *w.train, w.partition, *w.test,
                 static_topo(n, 4, 10));
  cfg.threads = 4;
  Experiment par(cfg, w.model_factory, *w.train, w.partition, *w.test,
                 static_topo(n, 4, 10));
  const auto a = seq.run();
  const auto b = par.run();
  // Exact equality: canonical drain order + counter-based RNG streams make
  // the threaded engine bit-identical to the sequential one (the full
  // per-algorithm sweep lives in test_determinism.cpp).
  EXPECT_EQ(a.total_traffic.messages_sent, b.total_traffic.messages_sent);
  EXPECT_EQ(a.total_traffic.bytes_sent, b.total_traffic.bytes_sent);
  EXPECT_EQ(a.total_traffic.metadata_bytes_sent,
            b.total_traffic.metadata_bytes_sent);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(Experiment, DynamicTopologyRuns) {
  const std::size_t n = 8;
  Workload w = make_cifar_like(n, 11);
  auto cfg = base_config(Algorithm::kJwins, 10);
  Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                 std::make_unique<graph::DynamicRegularTopology>(n, 4, 11));
  const ExperimentResult result = exp.run();
  EXPECT_EQ(result.rounds_run, 10u);
  EXPECT_GT(result.final_accuracy, 0.0);
}

TEST(Experiment, SimulatedTimeAdvances) {
  const std::size_t n = 4;
  Workload w = make_celeba_like(n, 12);
  auto cfg = base_config(Algorithm::kFullSharing, 5);
  cfg.compute_seconds_per_round = 1.0;
  Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                 static_topo(n, 3, 12));
  const ExperimentResult result = exp.run();
  EXPECT_GE(result.sim_seconds, 5.0);  // at least the compute time
}

TEST(Experiment, MetricSeriesIsMonotoneInRoundsAndBytes) {
  const std::size_t n = 8;
  Workload w = make_femnist_like(n, 13);
  auto cfg = base_config(Algorithm::kJwins, 12);
  cfg.eval_every = 3;
  Experiment exp(cfg, w.model_factory, *w.train, w.partition, *w.test,
                 static_topo(n, 4, 13));
  const ExperimentResult result = exp.run();
  ASSERT_GE(result.series.size(), 3u);
  for (std::size_t i = 1; i < result.series.size(); ++i) {
    EXPECT_GT(result.series[i].round, result.series[i - 1].round);
    EXPECT_GE(result.series[i].avg_bytes_per_node,
              result.series[i - 1].avg_bytes_per_node);
    EXPECT_GE(result.series[i].sim_seconds, result.series[i - 1].sim_seconds);
  }
}

TEST(Report, FormattersProduceReadableUnits) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(5.5 * 1024 * 1024), "5.50 MiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024 * 1024), "3.00 GiB");
  EXPECT_EQ(format_seconds(30.0), "30.0 s");
  EXPECT_EQ(format_seconds(600.0), "10.0 min");
}

TEST(AlgorithmName, AllNamesDistinct) {
  EXPECT_STREQ(algorithm_name(Algorithm::kFullSharing), "full-sharing");
  EXPECT_STREQ(algorithm_name(Algorithm::kRandomSampling), "random-sampling");
  EXPECT_STREQ(algorithm_name(Algorithm::kJwins), "jwins");
  EXPECT_STREQ(algorithm_name(Algorithm::kChoco), "choco");
}

}  // namespace
}  // namespace jwins::sim

// Scenario: a practitioner choosing a communication-efficient DL algorithm
// for an edge deployment. Runs all four algorithms on the same non-IID
// recommendation workload (MovieLens stand-in) and prints an
// accuracy-vs-bytes decision table.
//
//   ./examples/compare_algorithms [--nodes=16] [--rounds=60]

#include <iomanip>
#include <iostream>
#include <string>

#include "example_util.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  std::size_t nodes = 16, rounds = 60;
  std::size_t threads = net::ThreadPool::default_thread_count();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    examples::match_flag(arg, "--nodes=", nodes) ||
        examples::match_flag(arg, "--rounds=", rounds) ||
        examples::match_flag(arg, "--threads=", threads);
  }

  const sim::Workload workload = sim::make_movielens_like(nodes, /*seed=*/7);

  auto run = [&](sim::Algorithm algorithm) {
    sim::ExperimentConfig config;
    config.algorithm = algorithm;
    config.rounds = rounds;
    config.local_steps = 2;
    config.sgd.learning_rate = 0.05f;
    config.eval_every = rounds / 6;
    config.threads = static_cast<unsigned>(threads);
    config.random_sampling_fraction = 0.37;
    config.choco.gamma = 0.5;
    config.choco.fraction = 0.34;
    std::mt19937 rng(7);
    auto topology = std::make_unique<graph::StaticTopology>(
        graph::random_regular(nodes, 4, rng));
    sim::Experiment experiment(config, workload.model_factory, *workload.train,
                               workload.partition, *workload.test,
                               std::move(topology));
    return experiment.run();
  };

  std::cout << "Algorithm comparison on the recommendation workload ("
            << nodes << " nodes, " << rounds << " rounds)\n";
  std::cout << "accuracy = fraction of predictions within 0.5 stars\n\n";
  std::cout << std::left << std::setw(18) << "ALGORITHM" << std::setw(12)
            << "ACCURACY" << std::setw(10) << "LOSS" << std::setw(14)
            << "DATA/NODE" << "SIM-TIME\n";
  for (const auto algorithm :
       {sim::Algorithm::kFullSharing, sim::Algorithm::kRandomSampling,
        sim::Algorithm::kJwins, sim::Algorithm::kChoco}) {
    const auto result = run(algorithm);
    std::cout << std::left << std::setw(18) << sim::algorithm_name(algorithm)
              << std::setw(12)
              << (std::to_string(result.final_accuracy * 100.0).substr(0, 5) + "%")
              << std::setw(10) << std::fixed << std::setprecision(3)
              << result.final_loss << std::setw(14)
              << sim::format_bytes(result.series.back().avg_bytes_per_node)
              << sim::format_seconds(result.sim_seconds) << "\n";
  }
  std::cout << "\nReading the table: JWINS should sit near full-sharing "
               "accuracy at a fraction of the bytes;\nrandom sampling "
               "converges slower at the same budget.\n";
  return 0;
}

// Scenario: a practitioner choosing a communication-efficient DL algorithm
// for an edge deployment. Runs all four algorithms on the same non-IID
// recommendation workload (MovieLens stand-in) and prints an
// accuracy-vs-bytes decision table.
//
//   ./examples/compare_algorithms [--nodes=16] [--rounds=60]
//
// The four-way comparison is one sweep line in the preset
// (scenarios/compare_algorithms.scenario):
//   algorithm = full-sharing, random-sampling, jwins, choco

#include <iomanip>
#include <iostream>
#include <string>

#include "config/runner.hpp"
#include "example_util.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  const config::RawScenario raw = examples::load_preset_with_flags(
      "compare_algorithms.scenario", argc, argv);
  const std::vector<config::ScenarioRun> runs = examples::expand_or_die(raw);
  const config::ScenarioRun& first = runs.front();

  std::cout << "Algorithm comparison on the recommendation workload ("
            << first.nodes << " nodes, " << first.config.rounds
            << " rounds)\n";
  std::cout << "accuracy = fraction of predictions within 0.5 stars\n\n";
  std::cout << std::left << std::setw(18) << "ALGORITHM" << std::setw(12)
            << "ACCURACY" << std::setw(10) << "LOSS" << std::setw(14)
            << "DATA/NODE" << "SIM-TIME\n";
  for (const config::ScenarioRun& run : runs) {
    const sim::ExperimentResult result = config::execute(run);
    std::cout << std::left << std::setw(18)
              << sim::algorithm_name(run.config.algorithm) << std::setw(12)
              << (std::to_string(result.final_accuracy * 100.0).substr(0, 5) + "%")
              << std::setw(10) << std::fixed << std::setprecision(3)
              << result.final_loss << std::setw(14)
              << sim::format_bytes(result.series.back().avg_bytes_per_node)
              << sim::format_seconds(result.sim_seconds) << "\n";
  }
  std::cout << "\nReading the table: JWINS should sit near full-sharing "
               "accuracy at a fraction of the bytes;\nrandom sampling "
               "converges slower at the same budget.\n";
  return 0;
}

// Scenario: a P2P network with membership churn, modeled as a topology that
// is re-randomized every round (the paper's "dynamic topology" setting,
// Figure 7). JWINS is stateless across neighbors, so it keeps learning;
// CHOCO's per-neighbor error-feedback state breaks under churn — we
// demonstrate both.
//
//   ./examples/churn_dynamic_topology [--nodes=16] [--rounds=80]
//
// The 3x2 grid (algorithm x static/dynamic) is two sweep lines in the
// preset (scenarios/churn_dynamic_topology.scenario):
//   algorithm   = jwins, full-sharing, choco
//   churn_every = 0, 1

#include <iomanip>
#include <iostream>
#include <string>

#include "config/runner.hpp"
#include "example_util.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  const config::RawScenario raw = examples::load_preset_with_flags(
      "churn_dynamic_topology.scenario", argc, argv);
  const std::vector<config::ScenarioRun> runs = examples::expand_or_die(raw);

  std::cout << "Handwriting recognition under churn (" << runs.front().nodes
            << " nodes, neighbors re-randomized every round)\n\n";
  std::cout << std::left << std::setw(26) << "SETTING" << std::setw(12)
            << "ACCURACY" << "LOSS\n";
  // Grid order is odometer order: for each algorithm, static then dynamic.
  for (const config::ScenarioRun& run : runs) {
    const sim::ExperimentResult result = config::execute(run);
    const std::string label =
        std::string(sim::algorithm_name(run.config.algorithm)) +
        (run.churn_every > 0 ? " / dynamic" : " / static");
    std::cout << std::left << std::setw(26) << label << std::setw(12)
              << (std::to_string(result.final_accuracy * 100.0).substr(0, 5) + "%")
              << std::fixed << std::setprecision(3) << result.final_loss
              << "\n";
  }
  std::cout << "\nDynamic topologies help the stateless algorithms (better "
               "mixing) and hurt CHOCO,\nwhose error-feedback state assumes "
               "fixed neighbors — exactly the paper's Figure 7 story.\n";
  return 0;
}

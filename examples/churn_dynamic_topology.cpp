// Scenario: a P2P network with membership churn, modeled as a topology that
// is re-randomized every round (the paper's "dynamic topology" setting,
// Figure 7). JWINS is stateless across neighbors, so it keeps learning;
// CHOCO's per-neighbor error-feedback state breaks under churn — we
// demonstrate both.
//
//   ./examples/churn_dynamic_topology [--nodes=16] [--rounds=80]

#include <iomanip>
#include <iostream>
#include <string>

#include "example_util.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  std::size_t nodes = 16, rounds = 80;
  std::size_t threads = net::ThreadPool::default_thread_count();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    examples::match_flag(arg, "--nodes=", nodes) ||
        examples::match_flag(arg, "--rounds=", rounds) ||
        examples::match_flag(arg, "--threads=", threads);
  }

  const sim::Workload workload = sim::make_femnist_like(nodes, /*seed=*/11);

  auto run = [&](sim::Algorithm algorithm, bool dynamic) {
    sim::ExperimentConfig config;
    config.algorithm = algorithm;
    config.rounds = rounds;
    config.local_steps = 2;
    config.sgd.learning_rate = 0.05f;
    config.eval_every = rounds / 8;
    config.threads = static_cast<unsigned>(threads);
    config.choco.gamma = 0.5;
    config.choco.fraction = 0.34;
    std::unique_ptr<graph::TopologyProvider> topology;
    if (dynamic) {
      topology = std::make_unique<graph::DynamicRegularTopology>(nodes, 4, 11);
    } else {
      std::mt19937 rng(11);
      topology = std::make_unique<graph::StaticTopology>(
          graph::random_regular(nodes, 4, rng));
    }
    sim::Experiment experiment(config, workload.model_factory, *workload.train,
                               workload.partition, *workload.test,
                               std::move(topology));
    return experiment.run();
  };

  std::cout << "Handwriting recognition under churn (" << nodes
            << " nodes, neighbors re-randomized every round)\n\n";
  std::cout << std::left << std::setw(26) << "SETTING" << std::setw(12)
            << "ACCURACY" << "LOSS\n";
  auto row = [](const char* label, const sim::ExperimentResult& r) {
    std::cout << std::left << std::setw(26) << label << std::setw(12)
              << (std::to_string(r.final_accuracy * 100.0).substr(0, 5) + "%")
              << std::fixed << std::setprecision(3) << r.final_loss << "\n";
  };
  row("jwins / static", run(sim::Algorithm::kJwins, false));
  row("jwins / dynamic", run(sim::Algorithm::kJwins, true));
  row("full-sharing / static", run(sim::Algorithm::kFullSharing, false));
  row("full-sharing / dynamic", run(sim::Algorithm::kFullSharing, true));
  row("choco / static", run(sim::Algorithm::kChoco, false));
  row("choco / dynamic", run(sim::Algorithm::kChoco, true));
  std::cout << "\nDynamic topologies help the stateless algorithms (better "
               "mixing) and hurt CHOCO,\nwhose error-feedback state assumes "
               "fixed neighbors — exactly the paper's Figure 7 story.\n";
  return 0;
}

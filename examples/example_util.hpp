// Shared helpers for the examples: strict --key=value flag parsing
// (std::from_chars rejects negatives and trailing garbage, which std::stoul
// silently accepts; clean error + exit 2 on bad input) and scenario-preset
// loading — every example's experiment wiring lives in a checked-in
// scenarios/*.scenario file (docs/EXPERIMENTS.md).
#pragma once

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "config/scenario.hpp"

namespace jwins::examples {

/// If `arg` starts with `key` (e.g. "--nodes="), parses the rest into `out`
/// and returns true; exits with a diagnostic when the value is not a valid
/// unsigned integer. Returns false when the flag does not match.
inline bool match_flag(std::string_view arg, std::string_view key,
                       std::size_t& out) {
  if (arg.rfind(key, 0) != 0) return false;
  const std::string_view value = arg.substr(key.size());
  std::size_t parsed = 0;
  const auto [end, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || end != value.data() + value.size()) {
    std::cerr << "error: " << arg << " is not an unsigned integer\n";
    std::exit(2);
  }
  out = parsed;
  return true;
}

/// Loads the example's scenario preset and layers the standard
/// --nodes/--rounds/--threads overrides on top. Exits with a clean
/// diagnostic on malformed flags or a broken scenario file.
inline config::RawScenario load_preset_with_flags(const char* filename,
                                                  int argc, char** argv) {
  try {
    config::RawScenario raw = config::load_scenario_file(
        std::string(JWINS_SCENARIO_DIR "/") + filename);
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      std::size_t value = 0;
      if (match_flag(arg, "--nodes=", value)) {
        config::set_value(raw, "nodes", std::to_string(value));
      } else if (match_flag(arg, "--rounds=", value)) {
        config::set_value(raw, "rounds", std::to_string(value));
      } else if (match_flag(arg, "--threads=", value)) {
        config::set_value(raw, "threads", std::to_string(value));
      }
    }
    return raw;
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

/// Expands the preset's sweep grid, mapping ScenarioError (e.g. a --nodes
/// override that breaks topology feasibility) to the examples' clean
/// `error: ...` + exit 2 contract instead of an escaping exception.
inline std::vector<config::ScenarioRun> expand_or_die(
    const config::RawScenario& raw) {
  try {
    return config::expand_grid(raw);
  } catch (const config::ScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

}  // namespace jwins::examples

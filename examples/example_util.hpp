// Shared --key=value flag parsing for the examples: strict unsigned-integer
// validation (std::from_chars rejects negatives and trailing garbage, which
// std::stoul silently accepts), clean error + exit 2 on bad input.
#pragma once

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <string_view>

namespace jwins::examples {

/// If `arg` starts with `key` (e.g. "--nodes="), parses the rest into `out`
/// and returns true; exits with a diagnostic when the value is not a valid
/// unsigned integer. Returns false when the flag does not match.
inline bool match_flag(std::string_view arg, std::string_view key,
                       std::size_t& out) {
  if (arg.rfind(key, 0) != 0) return false;
  const std::string_view value = arg.substr(key.size());
  std::size_t parsed = 0;
  const auto [end, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || end != value.data() + value.size()) {
    std::cerr << "error: " << arg << " is not an unsigned integer\n";
    std::exit(2);
  }
  out = parsed;
  return true;
}

}  // namespace jwins::examples

// Scenario: training next-character models on edge devices behind a
// constrained uplink (the paper's motivating setting). The communication
// budget is capped at 10% of full-sharing; JWINS runs with the paper's
// budgeted two-point alpha distribution and is compared against CHOCO-SGD
// under the same cap, on the stacked-LSTM Shakespeare stand-in.
//
//   ./examples/low_budget_edge [--nodes=12] [--rounds=40]

#include <iomanip>
#include <iostream>
#include <string>

#include "core/cutoff.hpp"
#include "example_util.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  std::size_t nodes = 12, rounds = 40;
  std::size_t threads = net::ThreadPool::default_thread_count();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    examples::match_flag(arg, "--nodes=", nodes) ||
        examples::match_flag(arg, "--rounds=", rounds) ||
        examples::match_flag(arg, "--threads=", threads);
  }

  const sim::Workload workload = sim::make_shakespeare_like(nodes, /*seed=*/3);

  // Slow edge links: 10 Mbit/s, 20 ms latency — the regime where the
  // communication budget decides wall-clock time.
  net::LinkModel link;
  link.bandwidth_bytes_per_sec = 1.25e6;
  link.latency_sec = 20e-3;

  auto base_config = [&](sim::Algorithm algorithm) {
    sim::ExperimentConfig config;
    config.algorithm = algorithm;
    config.rounds = rounds;
    config.local_steps = workload.suggested_local_steps;
    config.sgd.learning_rate = workload.suggested_lr;
    config.eval_every = rounds / 5;
    config.eval_sample_limit = 48;
    config.threads = static_cast<unsigned>(threads);
    config.link = link;
    return config;
  };
  auto topo = [&] {
    std::mt19937 rng(3);
    return std::make_unique<graph::StaticTopology>(
        graph::random_regular(nodes, 4, rng));
  };

  // JWINS at a 10% budget: p(alpha=100%) = 0.05, p(alpha=5%) = 0.95.
  auto jwins_config = base_config(sim::Algorithm::kJwins);
  jwins_config.jwins.cutoff = core::RandomizedCutoff::two_point(0.05, 0.05);
  sim::Experiment jwins_exp(jwins_config, workload.model_factory,
                            *workload.train, workload.partition,
                            *workload.test, topo());
  const auto jwins_result = jwins_exp.run();

  // CHOCO at the same cap (TopK 10%, the paper's tuned gamma for 10%).
  auto choco_config = base_config(sim::Algorithm::kChoco);
  choco_config.choco.fraction = 0.10;
  choco_config.choco.gamma = 0.1;
  sim::Experiment choco_exp(choco_config, workload.model_factory,
                            *workload.train, workload.partition,
                            *workload.test, topo());
  const auto choco_result = choco_exp.run();

  // Full-sharing reference (no budget), for context.
  sim::Experiment full_exp(base_config(sim::Algorithm::kFullSharing),
                           workload.model_factory, *workload.train,
                           workload.partition, *workload.test, topo());
  const auto full_result = full_exp.run();

  std::cout << "Next-character prediction on " << nodes
            << " edge nodes, 10% communication budget, " << rounds
            << " rounds\n\n";
  auto row = [](const char* label, const sim::ExperimentResult& r) {
    std::cout << "  " << std::left << std::setw(22) << label
              << "per-char acc=" << std::fixed << std::setprecision(1)
              << r.final_accuracy * 100.0 << "%  data/node="
              << sim::format_bytes(r.series.back().avg_bytes_per_node)
              << "  wall-clock=" << sim::format_seconds(r.sim_seconds) << "\n";
  };
  row("jwins (10% budget)", jwins_result);
  row("choco (10% budget)", choco_result);
  row("full-sharing (no cap)", full_result);
  std::cout << "\nOn slow links the budgeted algorithms finish the same "
               "rounds far sooner than\nfull-sharing, and JWINS holds more "
               "accuracy than CHOCO at the same cap.\n";
  return 0;
}

// Scenario: training next-character models on edge devices behind a
// constrained uplink (the paper's motivating setting). The communication
// budget is capped at 10% of full-sharing; JWINS runs with the paper's
// budgeted two-point alpha distribution and is compared against CHOCO-SGD
// under the same cap, on the stacked-LSTM Shakespeare stand-in.
//
//   ./examples/low_budget_edge [--nodes=12] [--rounds=40]
//
// Everything — the 10 Mbit/s / 20 ms link model, the two-point cut-off
// (jwins_cutoff = two-point:0.05:0.05), CHoCo's matching TopK 10% cap —
// is declared in scenarios/low_budget_edge.scenario.

#include <iomanip>
#include <iostream>

#include "config/runner.hpp"
#include "example_util.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  const config::RawScenario raw = examples::load_preset_with_flags(
      "low_budget_edge.scenario", argc, argv);
  const std::vector<config::ScenarioRun> runs = examples::expand_or_die(raw);
  const config::ScenarioRun& first = runs.front();

  auto result_for = [&](sim::Algorithm algorithm) {
    for (const config::ScenarioRun& run : runs) {
      if (run.config.algorithm == algorithm) return config::execute(run);
    }
    std::cerr << "error: algorithm: the scenario grid has no "
              << sim::algorithm_name(algorithm) << " cell\n";
    std::exit(2);
  };
  const auto jwins_result = result_for(sim::Algorithm::kJwins);
  const auto choco_result = result_for(sim::Algorithm::kChoco);
  const auto full_result = result_for(sim::Algorithm::kFullSharing);

  std::cout << "Next-character prediction on " << first.nodes
            << " edge nodes, 10% communication budget, " << first.config.rounds
            << " rounds\n\n";
  auto row = [](const char* label, const sim::ExperimentResult& r) {
    std::cout << "  " << std::left << std::setw(22) << label
              << "per-char acc=" << std::fixed << std::setprecision(1)
              << r.final_accuracy * 100.0 << "%  data/node="
              << sim::format_bytes(r.series.back().avg_bytes_per_node)
              << "  wall-clock=" << sim::format_seconds(r.sim_seconds) << "\n";
  };
  row("jwins (10% budget)", jwins_result);
  row("choco (10% budget)", choco_result);
  row("full-sharing (no cap)", full_result);
  std::cout << "\nOn slow links the budgeted algorithms finish the same "
               "rounds far sooner than\nfull-sharing, and JWINS holds more "
               "accuracy than CHOCO at the same cap.\n";
  return 0;
}

// Quickstart: train a 16-node decentralized CIFAR-10-style workload with
// JWINS and print the learning curve plus traffic statistics.
//
//   ./examples/quickstart [--nodes=16] [--rounds=60] [--threads=N]
//
// This is the smallest end-to-end use of the public API — and of the
// declarative scenario engine (docs/EXPERIMENTS.md):
//   1. load a scenario preset (workload + topology + algorithm + knobs,
//      all declared in scenarios/quickstart.scenario),
//   2. expand it into its run grid (one run here: no sweep lists),
//   3. execute and read the metrics.
// The same preset runs without any C++ via
//   jwins_run scenarios/quickstart.scenario

#include <iostream>

#include "config/runner.hpp"
#include "example_util.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  // 1. The declarative scenario: CIFAR-10-like non-IID workload, random
  //    4-regular topology, JWINS with the paper's default randomized
  //    cut-off (alpha uniform over {10,15,20,25,30,40,100}%).
  const config::RawScenario raw =
      examples::load_preset_with_flags("quickstart.scenario", argc, argv);

  // 2. Expand sweep lists into the run grid. This preset has none, so the
  //    grid is a single fully-validated run.
  const config::ScenarioRun run = examples::expand_or_die(raw).front();

  // 3. Execute: workload build, topology, node construction, and the
  //    bulk-synchronous round loop all happen inside.
  const sim::ExperimentResult result = config::execute(run);

  std::cout << "JWINS on " << run.nodes << " nodes, " << result.rounds_run
            << " rounds\n\n";
  std::cout << "round  accuracy  loss   data/node\n";
  for (const auto& p : result.series) {
    std::cout << "  " << p.round << "\t" << p.test_accuracy * 100.0 << "%\t"
              << p.test_loss << "\t" << sim::format_bytes(p.avg_bytes_per_node)
              << "\n";
  }
  std::cout << "\nfinal accuracy: " << result.final_accuracy * 100.0 << "%\n";
  std::cout << "mean sharing fraction (alpha): " << result.mean_alpha * 100.0
            << "%\n";
  std::cout << "total bytes on the wire: "
            << sim::format_bytes(
                   static_cast<double>(result.total_traffic.bytes_sent))
            << " (metadata "
            << sim::format_bytes(
                   static_cast<double>(result.total_traffic.metadata_bytes_sent))
            << ")\n";
  std::cout << "simulated wall-clock: " << sim::format_seconds(result.sim_seconds)
            << "\n";
  return 0;
}

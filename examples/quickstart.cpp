// Quickstart: train a 16-node decentralized CIFAR-10-style workload with
// JWINS and print the learning curve plus traffic statistics.
//
//   ./examples/quickstart [--nodes=16] [--rounds=60] [--threads=N]
//
// This is the smallest end-to-end use of the public API:
//   1. build a workload (dataset + non-IID partition + model factory),
//   2. pick a topology,
//   3. configure the algorithm,
//   4. run and read the metrics.

#include <iostream>
#include <random>
#include <string>

#include "example_util.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/workloads.hpp"

int main(int argc, char** argv) {
  using namespace jwins;

  std::size_t nodes = 16, rounds = 60;
  std::size_t threads = net::ThreadPool::default_thread_count();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    examples::match_flag(arg, "--nodes=", nodes) ||
        examples::match_flag(arg, "--rounds=", rounds) ||
        examples::match_flag(arg, "--threads=", threads);
  }

  // 1. Workload: 10-class synthetic images, sort-and-shard non-IID split
  //    (2 shards per node, <= 4 classes each), GN-LeNet-style CNN.
  const sim::Workload workload = sim::make_cifar_like(nodes, /*seed=*/42);

  // 2. Topology: random 4-regular graph, as in the paper's test bed.
  std::mt19937 topo_rng(42);
  auto topology = std::make_unique<graph::StaticTopology>(
      graph::random_regular(nodes, 4, topo_rng));

  // 3. Algorithm: JWINS with the paper's default randomized cut-off
  //    (alpha uniform over {10,15,20,25,30,40,100}%).
  sim::ExperimentConfig config;
  config.algorithm = sim::Algorithm::kJwins;
  config.rounds = rounds;
  config.local_steps = 2;
  config.sgd.learning_rate = 0.05f;
  config.eval_every = 5;
  // Bit-identical at any thread count (docs/DESIGN.md), so default to all
  // hardware threads; --threads=1 gives the fully sequential engine.
  config.threads = static_cast<unsigned>(threads);

  // 4. Run.
  sim::Experiment experiment(config, workload.model_factory, *workload.train,
                             workload.partition, *workload.test,
                             std::move(topology));
  const sim::ExperimentResult result = experiment.run();

  std::cout << "JWINS on " << nodes << " nodes, " << result.rounds_run
            << " rounds\n\n";
  std::cout << "round  accuracy  loss   data/node\n";
  for (const auto& p : result.series) {
    std::cout << "  " << p.round << "\t" << p.test_accuracy * 100.0 << "%\t"
              << p.test_loss << "\t" << sim::format_bytes(p.avg_bytes_per_node)
              << "\n";
  }
  std::cout << "\nfinal accuracy: " << result.final_accuracy * 100.0 << "%\n";
  std::cout << "mean sharing fraction (alpha): " << result.mean_alpha * 100.0
            << "%\n";
  std::cout << "total bytes on the wire: "
            << sim::format_bytes(
                   static_cast<double>(result.total_traffic.bytes_sent))
            << " (metadata "
            << sim::format_bytes(
                   static_cast<double>(result.total_traffic.metadata_bytes_sent))
            << ")\n";
  std::cout << "simulated wall-clock: " << sim::format_seconds(result.sim_seconds)
            << "\n";
  return 0;
}

// Flat-parameter-vector view over a model.
//
// JWINS "considers models as flat vectors of parameters" (paper §IV-G b):
// the wavelet transform, TopK selection, averaging and all byte accounting
// operate on one contiguous float vector. These helpers copy between a
// model's parameter tensors and that flat vector.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace jwins::nn {

/// Total number of scalars across the given tensors.
std::size_t flat_size(const std::vector<tensor::Tensor*>& tensors);

/// Concatenates tensors into `out` (size must equal flat_size()).
void copy_to_flat(const std::vector<tensor::Tensor*>& tensors,
                  std::span<float> out);

/// Convenience allocating variant.
std::vector<float> to_flat(const std::vector<tensor::Tensor*>& tensors);

/// Splits `flat` back into the tensors (sizes must line up).
void copy_from_flat(const std::vector<tensor::Tensor*>& tensors,
                    std::span<const float> flat);

}  // namespace jwins::nn

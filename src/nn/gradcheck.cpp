#include "nn/gradcheck.hpp"

#include <cmath>

namespace jwins::nn {

namespace {

void track(GradCheckResult& result, double analytic, double numeric) {
  const double abs_err = std::fabs(analytic - numeric);
  // Floor the denominator at 1e-3: float32 losses give the central
  // difference ~5e-5 of absolute noise (eps_f32 * |loss| / (2*epsilon)), so
  // gradients below ~1e-3 cannot be distinguished from noise and must not
  // dominate the relative-error statistic.
  const double denom = std::max({std::fabs(analytic), std::fabs(numeric), 1e-3});
  result.max_abs_error = std::max(result.max_abs_error, abs_err);
  result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
}

}  // namespace

GradCheckResult grad_check_module(Module& module, const Tensor& input,
                                  double epsilon) {
  // Scalar objective: sum of all outputs (seed gradient of ones).
  auto objective = [&](const Tensor& x) {
    return static_cast<double>(module.forward(x).sum());
  };

  Tensor out = module.forward(input);
  module.zero_grad();
  Tensor ones(out.shape(), 1.0f);
  Tensor grad_input = module.backward(ones);

  GradCheckResult result;
  // Input gradient.
  Tensor x = input;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(epsilon);
    const double plus = objective(x);
    x[i] = orig - static_cast<float>(epsilon);
    const double minus = objective(x);
    x[i] = orig;
    track(result, grad_input[i], (plus - minus) / (2 * epsilon));
  }
  // Parameter gradients.
  auto params = module.params();
  auto grads = module.grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& theta = *params[p];
    const Tensor& analytic = *grads[p];
    for (std::size_t i = 0; i < theta.size(); ++i) {
      const float orig = theta[i];
      theta[i] = orig + static_cast<float>(epsilon);
      const double plus = objective(input);
      theta[i] = orig - static_cast<float>(epsilon);
      const double minus = objective(input);
      theta[i] = orig;
      track(result, analytic[i], (plus - minus) / (2 * epsilon));
    }
  }
  return result;
}

GradCheckResult grad_check_model(SupervisedModel& model, const Batch& batch,
                                 double epsilon, std::size_t max_coords) {
  model.zero_grad();
  model.loss_and_grad(batch);
  auto params = model.parameters();
  auto grads = model.gradients();

  GradCheckResult result;
  std::size_t checked = 0;
  for (std::size_t p = 0; p < params.size() && checked < max_coords; ++p) {
    Tensor& theta = *params[p];
    const Tensor& analytic = *grads[p];
    // Stride through large tensors so every parameter block gets coverage.
    const std::size_t stride =
        std::max<std::size_t>(1, theta.size() / std::max<std::size_t>(
                                                    1, max_coords / params.size()));
    for (std::size_t i = 0; i < theta.size() && checked < max_coords;
         i += stride, ++checked) {
      const float orig = theta[i];
      theta[i] = orig + static_cast<float>(epsilon);
      const double plus = model.evaluate(batch).loss;
      theta[i] = orig - static_cast<float>(epsilon);
      const double minus = model.evaluate(batch).loss;
      theta[i] = orig;
      track(result, analytic[i], (plus - minus) / (2 * epsilon));
    }
  }
  return result;
}

}  // namespace jwins::nn

// Loss functions. Each returns the mean loss over the batch and writes
// dL/d(input) for the backward pass.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace jwins::nn {

using tensor::Tensor;

struct LossResult {
  float loss = 0.0f;
  Tensor grad;  ///< dL/d(input), mean-reduced over the batch
};

/// Numerically-stable softmax cross-entropy over logits [B, C] with integer
/// class labels. Mean reduction.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Row-wise softmax probabilities of logits [B, C] (used for evaluation).
Tensor softmax(const Tensor& logits);

/// Mean squared error between predictions and targets of identical shape.
LossResult mse_loss(const Tensor& predictions, const Tensor& targets);

/// Top-1 accuracy of logits [B, C] against labels.
double accuracy(const Tensor& logits, std::span<const std::int32_t> labels);

}  // namespace jwins::nn

#include "nn/flat.hpp"

#include <stdexcept>

namespace jwins::nn {

std::size_t flat_size(const std::vector<tensor::Tensor*>& tensors) {
  std::size_t total = 0;
  for (const tensor::Tensor* t : tensors) total += t->size();
  return total;
}

void copy_to_flat(const std::vector<tensor::Tensor*>& tensors,
                  std::span<float> out) {
  if (out.size() != flat_size(tensors)) {
    throw std::invalid_argument("copy_to_flat: output size mismatch");
  }
  std::size_t off = 0;
  for (const tensor::Tensor* t : tensors) {
    for (std::size_t i = 0; i < t->size(); ++i) out[off + i] = (*t)[i];
    off += t->size();
  }
}

std::vector<float> to_flat(const std::vector<tensor::Tensor*>& tensors) {
  std::vector<float> out(flat_size(tensors));
  copy_to_flat(tensors, out);
  return out;
}

void copy_from_flat(const std::vector<tensor::Tensor*>& tensors,
                    std::span<const float> flat) {
  if (flat.size() != flat_size(tensors)) {
    throw std::invalid_argument("copy_from_flat: input size mismatch");
  }
  std::size_t off = 0;
  for (tensor::Tensor* t : tensors) {
    for (std::size_t i = 0; i < t->size(); ++i) (*t)[i] = flat[off + i];
    off += t->size();
  }
}

}  // namespace jwins::nn

// Neural network substrate: a layer interface with explicit forward/backward
// passes. Stands in for PyTorch in the original JWINS implementation —
// JWINS itself only ever sees models as flat parameter vectors (paper
// §IV-G b), so any correct SGD substrate exercises the same code paths.
//
// Conventions:
//  * Inputs/outputs are batched row-major tensors; the leading axis is batch.
//  * forward() caches whatever backward() needs; backward() receives
//    dL/d(output) and returns dL/d(input), accumulating parameter gradients.
//  * Parameter gradients accumulate across backward() calls until
//    zero_grad(); the optimizer consumes them via params()/grads().
#pragma once

#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace jwins::nn {

using tensor::Tensor;

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output and caches activations for backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Back-propagates: takes dL/d(output), returns dL/d(input), and
  /// accumulates dL/d(params) into the gradient tensors.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (possibly empty). Order must be stable: the flat
  /// parameter vector layout used by JWINS depends on it.
  virtual std::vector<Tensor*> params() { return {}; }

  /// Gradient tensors, aligned 1:1 with params().
  virtual std::vector<Tensor*> grads() { return {}; }

  void zero_grad() {
    for (Tensor* g : grads()) g->zero();
  }
};

/// Runs a list of modules in order.
class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining via add(...).add(...).
  Sequential& add(std::unique_ptr<Module> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<M>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& input) override {
    Tensor x = input;
    for (auto& layer : layers_) x = layer->forward(x);
    return x;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  std::vector<Tensor*> params() override {
    std::vector<Tensor*> out;
    for (auto& layer : layers_) {
      for (Tensor* p : layer->params()) out.push_back(p);
    }
    return out;
  }

  std::vector<Tensor*> grads() override {
    std::vector<Tensor*> out;
    for (auto& layer : layers_) {
      for (Tensor* g : layer->grads()) out.push_back(g);
    }
    return out;
  }

  std::size_t layer_count() const noexcept { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace jwins::nn

// Task-level model interface used by the decentralized training algorithms.
//
// A Batch covers all three paper task families:
//  * classification: x = images/features, labels = class ids
//  * recommendation: x = [B, 2] (user id, item id), y = ratings
//  * next-char prediction: x = [B, T] token ids, labels = B*T next tokens
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace jwins::nn {

using tensor::Tensor;

struct Batch {
  Tensor x;                          ///< inputs (task-specific layout)
  std::vector<std::int32_t> labels;  ///< integer targets (classification/chars)
  Tensor y;                          ///< float targets (regression/ratings)

  std::size_t size() const noexcept { return x.rank() > 0 ? x.dim(0) : 0; }
};

struct EvalMetrics {
  double loss = 0.0;
  double accuracy = 0.0;  ///< task-defined: top-1, within-0.5-star, per-char
  std::size_t samples = 0;
};

/// A trainable model with a flat-parameter view. Implementations own their
/// layers and optimizer-facing parameter/gradient lists.
class SupervisedModel {
 public:
  virtual ~SupervisedModel() = default;

  /// Forward+backward on one batch; accumulates gradients, returns mean loss.
  virtual float loss_and_grad(const Batch& batch) = 0;

  /// Loss/accuracy without touching gradients.
  virtual EvalMetrics evaluate(const Batch& batch) = 0;

  virtual std::vector<Tensor*> parameters() = 0;
  virtual std::vector<Tensor*> gradients() = 0;

  void zero_grad() {
    for (Tensor* g : gradients()) g->zero();
  }

  /// Number of scalars in the flat parameter vector.
  std::size_t parameter_count() {
    std::size_t n = 0;
    for (Tensor* p : parameters()) n += p->size();
    return n;
  }
};

/// Builds a fresh model. All nodes in an experiment share one factory seeded
/// identically so they start from the same point x^(0,0), as the paper's
/// Algorithm 1 requires.
using ModelFactory = std::function<std::unique_ptr<SupervisedModel>()>;

}  // namespace jwins::nn

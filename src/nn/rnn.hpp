// Sequence layers for the Shakespeare-style next-character task: token
// Embedding and a full-BPTT LSTM (the paper's model is a stacked LSTM).
#pragma once

#include <random>

#include "nn/module.hpp"

namespace jwins::nn {

/// Token embedding: input [B, T] of integer token ids stored as floats,
/// output [B, T, dim]. backward() accumulates into the embedding rows and
/// returns a zero gradient for the (discrete) input.
class Embedding final : public Module {
 public:
  Embedding(std::size_t vocab, std::size_t dim, std::mt19937& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> params() override { return {&weight_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_}; }

 private:
  std::size_t vocab_, dim_;
  Tensor weight_;  // [vocab, dim]
  Tensor grad_weight_;
  Tensor cached_input_;
};

/// Single LSTM layer over [B, T, input_dim] -> [B, T, hidden] with zero
/// initial state and full backpropagation through time. Stack two for the
/// paper's model.
class Lstm final : public Module {
 public:
  Lstm(std::size_t input_dim, std::size_t hidden, std::mt19937& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> params() override { return {&w_x_, &w_h_, &bias_}; }
  std::vector<Tensor*> grads() override {
    return {&grad_w_x_, &grad_w_h_, &grad_bias_};
  }

  std::size_t hidden_size() const noexcept { return hidden_; }

 private:
  std::size_t input_dim_, hidden_;
  // Gate order within the 4H axis: input, forget, cell(g), output.
  Tensor w_x_;   // [4H, D]
  Tensor w_h_;   // [4H, H]
  Tensor bias_;  // [4H]
  Tensor grad_w_x_, grad_w_h_, grad_bias_;

  // Per-forward caches (one entry per timestep). The vectors are resized
  // only when the step count changes and each Tensor is reshaped in place,
  // so repeated train steps on a fixed batch shape reuse all cache storage.
  Tensor cached_input_;
  std::vector<Tensor> gate_i_, gate_f_, gate_g_, gate_o_;  // each [B, H]
  std::vector<Tensor> cell_, tanh_cell_, h_prev_, c_prev_;

  // Step workspaces (forward: running state + pre-activations; backward:
  // per-step gradients and matmul scratch). Warm after the first call, so
  // the steady-state train step allocates only the tensors it must return.
  Tensor h_, c_, xt_, z_, zh_;
  Tensor dh_, dz_, dc_prev_, dh_next_, dc_next_, dx_, gw_tmp_;
};

}  // namespace jwins::nn

#include "nn/sgd.hpp"

#include <stdexcept>

namespace jwins::nn {

Sgd::Sgd(std::vector<tensor::Tensor*> params,
         std::vector<tensor::Tensor*> grads, Options options)
    : params_(std::move(params)), grads_(std::move(grads)), options_(options) {
  if (params_.size() != grads_.size()) {
    throw std::invalid_argument("Sgd: params/grads size mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i]->same_shape(*grads_[i])) {
      throw std::invalid_argument("Sgd: param/grad shape mismatch at index " +
                                  std::to_string(i));
    }
  }
}

void Sgd::step() {
  const float lr = options_.learning_rate;
  const float wd = options_.weight_decay;
  const float mu = options_.momentum;
  if (mu != 0.0f && velocity_.empty()) {
    velocity_.reserve(params_.size());
    for (tensor::Tensor* p : params_) velocity_.emplace_back(p->shape());
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor::Tensor& p = *params_[i];
    const tensor::Tensor& g = *grads_[i];
    if (mu == 0.0f) {
      for (std::size_t j = 0; j < p.size(); ++j) {
        p[j] -= lr * (g[j] + wd * p[j]);
      }
    } else {
      tensor::Tensor& v = velocity_[i];
      for (std::size_t j = 0; j < p.size(); ++j) {
        v[j] = mu * v[j] + g[j] + wd * p[j];
        p[j] -= lr * v[j];
      }
    }
  }
}

void Sgd::zero_grad() {
  for (tensor::Tensor* g : grads_) g->zero();
}

}  // namespace jwins::nn

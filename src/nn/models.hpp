// The four model families the paper evaluates (§IV-B): GN-LeNet-style CNNs
// for the image tasks, matrix factorization with embeddings for MovieLens,
// a stacked LSTM for Shakespeare, and an MLP used in tests/quadratic
// settings. Sizes are constructor parameters so experiments can scale.
#pragma once

#include <functional>
#include <random>

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/module.hpp"
#include "nn/rnn.hpp"

namespace jwins::nn {

/// Multi-layer perceptron classifier: [B, in] -> logits [B, classes].
class MlpClassifier final : public SupervisedModel {
 public:
  MlpClassifier(std::size_t in_features, std::vector<std::size_t> hidden,
                std::size_t classes, std::uint32_t seed);

  float loss_and_grad(const Batch& batch) override;
  EvalMetrics evaluate(const Batch& batch) override;
  std::vector<Tensor*> parameters() override { return net_.params(); }
  std::vector<Tensor*> gradients() override { return net_.grads(); }

 private:
  Sequential net_;
};

/// GN-LeNet-style CNN: two conv+groupnorm+relu+pool stages then a linear
/// head. Input [B, C, H, W]; H and W must be divisible by 4.
class CnnClassifier final : public SupervisedModel {
 public:
  struct Config {
    std::size_t in_channels = 3;
    std::size_t image_size = 8;  ///< square images
    std::size_t conv1_channels = 8;
    std::size_t conv2_channels = 16;
    std::size_t groups = 2;
    std::size_t classes = 10;
  };

  CnnClassifier(Config config, std::uint32_t seed);

  float loss_and_grad(const Batch& batch) override;
  EvalMetrics evaluate(const Batch& batch) override;
  std::vector<Tensor*> parameters() override { return net_.params(); }
  std::vector<Tensor*> gradients() override { return net_.grads(); }

 private:
  Sequential net_;
};

/// Matrix factorization with user/item embeddings and biases (Koren et al.
/// 2009), the paper's MovieLens model. Batch.x is [B, 2] of (user, item)
/// ids; Batch.y is [B] ratings. Accuracy = fraction within 0.5 of target.
class MatrixFactorization final : public SupervisedModel {
 public:
  MatrixFactorization(std::size_t users, std::size_t items, std::size_t dim,
                      float rating_mean, std::uint32_t seed);

  float loss_and_grad(const Batch& batch) override;
  EvalMetrics evaluate(const Batch& batch) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;

 private:
  Tensor predict(const Batch& batch) const;

  std::size_t users_, items_, dim_;
  float mean_;
  Tensor user_emb_, item_emb_, user_bias_, item_bias_;
  Tensor g_user_emb_, g_item_emb_, g_user_bias_, g_item_bias_;
};

/// Stacked-LSTM next-character model: Embedding -> LSTM -> LSTM -> Linear.
/// Batch.x is [B, T] token ids; Batch.labels holds B*T next-token targets
/// (row-major). Accuracy = per-character top-1.
class CharLstm final : public SupervisedModel {
 public:
  struct Config {
    std::size_t vocab = 32;
    std::size_t embedding_dim = 16;
    std::size_t hidden = 32;
    std::size_t layers = 2;
  };

  CharLstm(Config config, std::uint32_t seed);

  float loss_and_grad(const Batch& batch) override;
  EvalMetrics evaluate(const Batch& batch) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;

 private:
  /// Runs the stack up to logits [B*T, vocab].
  Tensor forward_logits(const Batch& batch);

  Config config_;
  Embedding embedding_;
  std::vector<std::unique_ptr<Lstm>> lstms_;
  Linear head_;
  tensor::Shape cached_lstm_out_shape_;
};

}  // namespace jwins::nn

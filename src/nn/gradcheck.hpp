// Central-difference gradient checking for layers and models. Used by the
// test suite to validate every hand-written backward pass.
#pragma once

#include <functional>

#include "nn/model.hpp"
#include "nn/module.hpp"

namespace jwins::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok(double tol = 1e-2) const { return max_rel_error < tol; }
};

/// Checks d(sum of outputs weighted by `seed_grad`)/d(params and input) of a
/// layer against central differences on `input`.
GradCheckResult grad_check_module(Module& module, const Tensor& input,
                                  double epsilon = 1e-3);

/// Checks a full model's parameter gradients on one batch against central
/// differences of the scalar loss.
GradCheckResult grad_check_model(SupervisedModel& model, const Batch& batch,
                                 double epsilon = 1e-3,
                                 std::size_t max_coords = 200);

}  // namespace jwins::nn

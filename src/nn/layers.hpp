// Dense and elementwise layers: Linear, ReLU, Tanh, Sigmoid, Flatten.
#pragma once

#include <random>

#include "nn/module.hpp"

namespace jwins::nn {

/// Fully-connected layer: y = x·Wᵀ + b with W of shape [out, in].
/// Initialization is Kaiming-uniform (fan-in), the PyTorch default.
class Linear final : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, std::mt19937& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_, out_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

/// max(x, 0).
class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

class Tanh final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

class Sigmoid final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

/// Collapses every axis after the batch axis: [B, ...] -> [B, prod(...)].
class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  tensor::Shape cached_shape_;
};

}  // namespace jwins::nn

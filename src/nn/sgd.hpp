// Plain SGD, matching the paper's optimizer choice ("basic SGD optimizer
// without momentum", §IV-B). Momentum and weight decay are available for the
// extension experiments but default to off.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace jwins::nn {

class Sgd {
 public:
  struct Options {
    float learning_rate = 0.01f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  Sgd(std::vector<tensor::Tensor*> params, std::vector<tensor::Tensor*> grads,
      Options options);

  /// Applies one update: p -= lr * (g + wd * p) (+ momentum buffer if set).
  void step();

  /// Clears all gradient tensors.
  void zero_grad();

  float learning_rate() const noexcept { return options_.learning_rate; }
  void set_learning_rate(float lr) noexcept { options_.learning_rate = lr; }

 private:
  std::vector<tensor::Tensor*> params_;
  std::vector<tensor::Tensor*> grads_;
  Options options_;
  std::vector<tensor::Tensor> velocity_;  // lazily sized when momentum > 0
};

}  // namespace jwins::nn

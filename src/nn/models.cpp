#include "nn/models.hpp"

#include <cmath>
#include <stdexcept>

namespace jwins::nn {

MlpClassifier::MlpClassifier(std::size_t in_features,
                             std::vector<std::size_t> hidden,
                             std::size_t classes, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::size_t prev = in_features;
  for (std::size_t h : hidden) {
    net_.emplace<Linear>(prev, h, rng);
    net_.emplace<ReLU>();
    prev = h;
  }
  net_.emplace<Linear>(prev, classes, rng);
}

float MlpClassifier::loss_and_grad(const Batch& batch) {
  Tensor logits = net_.forward(batch.x);
  LossResult lr = softmax_cross_entropy(logits, batch.labels);
  net_.backward(lr.grad);
  return lr.loss;
}

EvalMetrics MlpClassifier::evaluate(const Batch& batch) {
  Tensor logits = net_.forward(batch.x);
  LossResult lr = softmax_cross_entropy(logits, batch.labels);
  return {lr.loss, accuracy(logits, batch.labels), batch.size()};
}

CnnClassifier::CnnClassifier(Config cfg, std::uint32_t seed) {
  if (cfg.image_size % 4 != 0) {
    throw std::invalid_argument("CnnClassifier: image_size must be divisible by 4");
  }
  std::mt19937 rng(seed);
  net_.emplace<Conv2d>(cfg.in_channels, cfg.conv1_channels, 3, 1, 1, rng);
  net_.emplace<GroupNorm>(cfg.groups, cfg.conv1_channels);
  net_.emplace<ReLU>();
  net_.emplace<MaxPool2d>(2, 2);
  net_.emplace<Conv2d>(cfg.conv1_channels, cfg.conv2_channels, 3, 1, 1, rng);
  net_.emplace<GroupNorm>(cfg.groups, cfg.conv2_channels);
  net_.emplace<ReLU>();
  net_.emplace<MaxPool2d>(2, 2);
  net_.emplace<Flatten>();
  const std::size_t spatial = cfg.image_size / 4;
  net_.emplace<Linear>(cfg.conv2_channels * spatial * spatial, cfg.classes, rng);
}

float CnnClassifier::loss_and_grad(const Batch& batch) {
  Tensor logits = net_.forward(batch.x);
  LossResult lr = softmax_cross_entropy(logits, batch.labels);
  net_.backward(lr.grad);
  return lr.loss;
}

EvalMetrics CnnClassifier::evaluate(const Batch& batch) {
  Tensor logits = net_.forward(batch.x);
  LossResult lr = softmax_cross_entropy(logits, batch.labels);
  return {lr.loss, accuracy(logits, batch.labels), batch.size()};
}

MatrixFactorization::MatrixFactorization(std::size_t users, std::size_t items,
                                         std::size_t dim, float rating_mean,
                                         std::uint32_t seed)
    : users_(users),
      items_(items),
      dim_(dim),
      mean_(rating_mean),
      user_emb_({users, dim}),
      item_emb_({items, dim}),
      user_bias_({users}),
      item_bias_({items}),
      g_user_emb_({users, dim}),
      g_item_emb_({items, dim}),
      g_user_bias_({users}),
      g_item_bias_({items}) {
  std::mt19937 rng(seed);
  user_emb_ = Tensor::normal({users, dim}, 0.0f, 0.1f, rng);
  item_emb_ = Tensor::normal({items, dim}, 0.0f, 0.1f, rng);
}

Tensor MatrixFactorization::predict(const Batch& batch) const {
  const std::size_t n = batch.size();
  if (batch.x.rank() != 2 || batch.x.dim(1) != 2) {
    throw std::invalid_argument("MatrixFactorization: x must be [B, 2]");
  }
  Tensor pred({n});
  for (std::size_t b = 0; b < n; ++b) {
    const auto u = static_cast<std::size_t>(batch.x[b * 2]);
    const auto it = static_cast<std::size_t>(batch.x[b * 2 + 1]);
    if (u >= users_ || it >= items_) {
      throw std::out_of_range("MatrixFactorization: id out of range");
    }
    double acc = mean_ + user_bias_[u] + item_bias_[it];
    for (std::size_t d = 0; d < dim_; ++d) {
      acc += static_cast<double>(user_emb_[u * dim_ + d]) *
             item_emb_[it * dim_ + d];
    }
    pred[b] = static_cast<float>(acc);
  }
  return pred;
}

float MatrixFactorization::loss_and_grad(const Batch& batch) {
  const std::size_t n = batch.size();
  Tensor pred = predict(batch);
  LossResult lr = mse_loss(pred, batch.y);
  for (std::size_t b = 0; b < n; ++b) {
    const auto u = static_cast<std::size_t>(batch.x[b * 2]);
    const auto it = static_cast<std::size_t>(batch.x[b * 2 + 1]);
    const float g = lr.grad[b];
    g_user_bias_[u] += g;
    g_item_bias_[it] += g;
    for (std::size_t d = 0; d < dim_; ++d) {
      g_user_emb_[u * dim_ + d] += g * item_emb_[it * dim_ + d];
      g_item_emb_[it * dim_ + d] += g * user_emb_[u * dim_ + d];
    }
  }
  return lr.loss;
}

EvalMetrics MatrixFactorization::evaluate(const Batch& batch) {
  Tensor pred = predict(batch);
  LossResult lr = mse_loss(pred, batch.y);
  std::size_t within = 0;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    if (std::fabs(pred[b] - batch.y[b]) <= 0.5f) ++within;
  }
  const double acc = batch.size() == 0
                         ? 0.0
                         : static_cast<double>(within) / batch.size();
  return {lr.loss, acc, batch.size()};
}

std::vector<Tensor*> MatrixFactorization::parameters() {
  return {&user_emb_, &item_emb_, &user_bias_, &item_bias_};
}

std::vector<Tensor*> MatrixFactorization::gradients() {
  return {&g_user_emb_, &g_item_emb_, &g_user_bias_, &g_item_bias_};
}

namespace {

std::mt19937 seeded(std::uint32_t seed, std::uint32_t salt) {
  return std::mt19937(seed ^ (0x9E3779B9u + salt));
}

}  // namespace

CharLstm::CharLstm(Config config, std::uint32_t seed)
    : config_(config),
      embedding_([&] {
        auto rng = seeded(seed, 1);
        return Embedding(config.vocab, config.embedding_dim, rng);
      }()),
      head_([&] {
        auto rng = seeded(seed, 2);
        return Linear(config.hidden, config.vocab, rng);
      }()) {
  if (config.layers == 0) {
    throw std::invalid_argument("CharLstm: needs at least one LSTM layer");
  }
  for (std::size_t l = 0; l < config.layers; ++l) {
    auto rng = seeded(seed, 10 + static_cast<std::uint32_t>(l));
    const std::size_t in_dim = (l == 0) ? config.embedding_dim : config.hidden;
    lstms_.push_back(std::make_unique<Lstm>(in_dim, config.hidden, rng));
  }
}

Tensor CharLstm::forward_logits(const Batch& batch) {
  const std::size_t batch_n = batch.x.dim(0), steps = batch.x.dim(1);
  Tensor h = embedding_.forward(batch.x);  // [B, T, E]
  for (auto& lstm : lstms_) h = lstm->forward(h);
  cached_lstm_out_shape_ = h.shape();
  Tensor flat = h.reshape({batch_n * steps, config_.hidden});
  return head_.forward(flat);  // [B*T, vocab]
}

float CharLstm::loss_and_grad(const Batch& batch) {
  Tensor logits = forward_logits(batch);
  LossResult lr = softmax_cross_entropy(logits, batch.labels);
  Tensor g = head_.backward(lr.grad);
  g = g.reshape(cached_lstm_out_shape_);
  for (auto it = lstms_.rbegin(); it != lstms_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  embedding_.backward(g);
  return lr.loss;
}

EvalMetrics CharLstm::evaluate(const Batch& batch) {
  Tensor logits = forward_logits(batch);
  LossResult lr = softmax_cross_entropy(logits, batch.labels);
  return {lr.loss, accuracy(logits, batch.labels), batch.size()};
}

std::vector<Tensor*> CharLstm::parameters() {
  std::vector<Tensor*> out = embedding_.params();
  for (auto& lstm : lstms_) {
    for (Tensor* p : lstm->params()) out.push_back(p);
  }
  for (Tensor* p : head_.params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> CharLstm::gradients() {
  std::vector<Tensor*> out = embedding_.grads();
  for (auto& lstm : lstms_) {
    for (Tensor* g : lstm->grads()) out.push_back(g);
  }
  for (Tensor* g : head_.grads()) out.push_back(g);
  return out;
}

}  // namespace jwins::nn

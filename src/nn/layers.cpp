#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace jwins::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               std::mt19937& rng)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = Tensor::uniform({out_, in_}, -bound, bound, rng);
  bias_ = Tensor::uniform({out_}, -bound, bound, rng);
}

Tensor Linear::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear: expected input [B, " +
                                std::to_string(in_) + "], got " +
                                tensor::to_string(input.shape()));
  }
  cached_input_ = input;
  Tensor out = tensor::matmul_nt(input, weight_);  // [B, out]
  const std::size_t batch = input.dim(0);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) out[b * out_ + o] += bias_[o];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_) {
    throw std::invalid_argument("Linear::backward: grad shape mismatch");
  }
  // dW += dYᵀ · X ; db += column sums of dY ; dX = dY · W.
  grad_weight_ += tensor::matmul_tn(grad_output, cached_input_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_; ++o) {
      grad_bias_[o] += grad_output[b * out_ + o];
    }
  }
  return tensor::matmul(grad_output, weight_);
}

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(cached_input_)) {
    throw std::invalid_argument("ReLU::backward: grad shape mismatch");
  }
  Tensor gin = grad_output;
  for (std::size_t i = 0; i < gin.size(); ++i) {
    if (cached_input_[i] <= 0.0f) gin[i] = 0.0f;
  }
  return gin;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor gin = grad_output;
  for (std::size_t i = 0; i < gin.size(); ++i) {
    const float y = cached_output_[i];
    gin[i] *= 1.0f - y * y;
  }
  return gin;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor gin = grad_output;
  for (std::size_t i = 0; i < gin.size(); ++i) {
    const float y = cached_output_[i];
    gin[i] *= y * (1.0f - y);
  }
  return gin;
}

Tensor Flatten::forward(const Tensor& input) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: input must have a batch axis");
  }
  cached_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshape({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshape(cached_shape_);
}

}  // namespace jwins::nn

#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jwins::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected [B, C] logits");
  }
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  Tensor probs(logits.shape());
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.raw() + b * classes;
    float* prow = probs.raw() + b * classes;
    const float row_max = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      prow[c] = std::exp(row[c] - row_max);
      denom += prow[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < classes; ++c) prow[c] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  Tensor probs = softmax(logits);
  double loss = 0.0;
  Tensor grad = probs;
  const float scale = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto y = static_cast<std::size_t>(labels[b]);
    if (y >= classes) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    const float p = std::max(probs[b * classes + y], 1e-12f);
    loss -= std::log(p);
    grad[b * classes + y] -= 1.0f;
  }
  grad *= scale;
  return {static_cast<float>(loss / static_cast<double>(batch)), std::move(grad)};
}

LossResult mse_loss(const Tensor& predictions, const Tensor& targets) {
  if (!predictions.same_shape(targets)) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  const std::size_t n = predictions.size();
  Tensor grad(predictions.shape());
  double loss = 0.0;
  const float scale = 2.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = predictions[i] - targets[i];
    loss += static_cast<double>(d) * d;
    grad[i] = scale * d;
  }
  return {static_cast<float>(loss / static_cast<double>(n)), std::move(grad)};
}

double accuracy(const Tensor& logits, std::span<const std::int32_t> labels) {
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  if (labels.size() != batch || batch == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.raw() + b * classes;
    const std::size_t pred = static_cast<std::size_t>(
        std::distance(row, std::max_element(row, row + classes)));
    if (pred == static_cast<std::size_t>(labels[b])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace jwins::nn

#include "nn/conv.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace jwins::nn {

namespace {

std::size_t conv_out_size(std::size_t in, std::size_t kernel, std::size_t stride,
                          std::size_t pad) {
  if (in + 2 * pad < kernel) {
    throw std::invalid_argument("convolution kernel larger than padded input");
  }
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               std::mt19937& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(padding),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  if (kernel == 0 || stride == 0) {
    throw std::invalid_argument("Conv2d: kernel and stride must be positive");
  }
  const float fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = 1.0f / std::sqrt(fan_in);
  weight_ = Tensor::uniform(weight_.shape(), -bound, bound, rng);
  bias_ = Tensor::uniform({out_channels}, -bound, bound, rng);
}

Tensor Conv2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2d: expected [B, " + std::to_string(in_ch_) +
                                ", H, W], got " + tensor::to_string(input.shape()));
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = conv_out_size(ih, kernel_, stride_, pad_);
  const std::size_t ow = conv_out_size(iw, kernel_, stride_, pad_);
  Tensor out({batch, out_ch_, oh, ow});
  const float* x = input.raw();
  const float* w = weight_.raw();
  float* y = out.raw();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float bias = bias_[oc];
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          double acc = bias;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t kr = 0; kr < kernel_; ++kr) {
              const std::ptrdiff_t in_r =
                  static_cast<std::ptrdiff_t>(r * stride_ + kr) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (in_r < 0 || in_r >= static_cast<std::ptrdiff_t>(ih)) continue;
              for (std::size_t kc = 0; kc < kernel_; ++kc) {
                const std::ptrdiff_t in_c =
                    static_cast<std::ptrdiff_t>(c * stride_ + kc) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (in_c < 0 || in_c >= static_cast<std::ptrdiff_t>(iw)) continue;
                const float xv = x[((b * in_ch_ + ic) * ih +
                                    static_cast<std::size_t>(in_r)) * iw +
                                   static_cast<std::size_t>(in_c)];
                const float wv = w[((oc * in_ch_ + ic) * kernel_ + kr) * kernel_ + kc];
                acc += static_cast<double>(xv) * wv;
              }
            }
          }
          y[((b * out_ch_ + oc) * oh + r) * ow + c] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_output.dim(0) != batch || grad_output.dim(1) != out_ch_) {
    throw std::invalid_argument("Conv2d::backward: grad shape mismatch");
  }
  Tensor grad_input(input.shape());
  const float* x = input.raw();
  const float* w = weight_.raw();
  const float* gy = grad_output.raw();
  float* gx = grad_input.raw();
  float* gw = grad_weight_.raw();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          const float g = gy[((b * out_ch_ + oc) * oh + r) * ow + c];
          if (g == 0.0f) continue;
          grad_bias_[oc] += g;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t kr = 0; kr < kernel_; ++kr) {
              const std::ptrdiff_t in_r =
                  static_cast<std::ptrdiff_t>(r * stride_ + kr) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (in_r < 0 || in_r >= static_cast<std::ptrdiff_t>(ih)) continue;
              for (std::size_t kc = 0; kc < kernel_; ++kc) {
                const std::ptrdiff_t in_c =
                    static_cast<std::ptrdiff_t>(c * stride_ + kc) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (in_c < 0 || in_c >= static_cast<std::ptrdiff_t>(iw)) continue;
                const std::size_t xi = ((b * in_ch_ + ic) * ih +
                                        static_cast<std::size_t>(in_r)) * iw +
                                       static_cast<std::size_t>(in_c);
                const std::size_t wi =
                    ((oc * in_ch_ + ic) * kernel_ + kr) * kernel_ + kc;
                gw[wi] += g * x[xi];
                gx[xi] += g * w[wi];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  if (kernel == 0 || stride == 0) {
    throw std::invalid_argument("MaxPool2d: kernel and stride must be positive");
  }
}

Tensor MaxPool2d::forward(const Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2d: expected [B, C, H, W]");
  }
  cached_in_shape_ = input.shape();
  const std::size_t batch = input.dim(0), ch = input.dim(1), ih = input.dim(2),
                    iw = input.dim(3);
  const std::size_t oh = conv_out_size(ih, kernel_, stride_, 0);
  const std::size_t ow = conv_out_size(iw, kernel_, stride_, 0);
  Tensor out({batch, ch, oh, ow});
  argmax_.assign(out.size(), 0);
  const float* x = input.raw();
  float* y = out.raw();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t cch = 0; cch < ch; ++cch) {
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t kr = 0; kr < kernel_; ++kr) {
            const std::size_t in_r = r * stride_ + kr;
            if (in_r >= ih) continue;
            for (std::size_t kc = 0; kc < kernel_; ++kc) {
              const std::size_t in_c = c * stride_ + kc;
              if (in_c >= iw) continue;
              const std::size_t xi = ((b * ch + cch) * ih + in_r) * iw + in_c;
              if (x[xi] > best) {
                best = x[xi];
                best_idx = xi;
              }
            }
          }
          const std::size_t yi = ((b * ch + cch) * oh + r) * ow + c;
          y[yi] = best;
          argmax_[yi] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: grad shape mismatch");
  }
  Tensor grad_input(cached_in_shape_);
  float* gx = grad_input.raw();
  const float* gy = grad_output.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gx[argmax_[i]] += gy[i];
  return grad_input;
}

GroupNorm::GroupNorm(std::size_t groups, std::size_t channels, float eps)
    : groups_(groups),
      channels_(channels),
      eps_(eps),
      gamma_({channels}, 1.0f),
      beta_({channels}),
      grad_gamma_({channels}),
      grad_beta_({channels}) {
  if (groups == 0 || channels % groups != 0) {
    throw std::invalid_argument("GroupNorm: channels must be divisible by groups");
  }
}

Tensor GroupNorm::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("GroupNorm: expected [B, " +
                                std::to_string(channels_) + ", H, W]");
  }
  cached_in_shape_ = input.shape();
  const std::size_t batch = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t ch_per_group = channels_ / groups_;
  const std::size_t group_size = ch_per_group * h * w;
  Tensor xhat(input.shape());
  cached_inv_std_.assign(batch * groups_, 0.0f);
  const float* x = input.raw();
  float* xh = xhat.raw();
  Tensor out(input.shape());
  float* y = out.raw();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const std::size_t base = (b * channels_ + g * ch_per_group) * h * w;
      double mean = 0.0;
      for (std::size_t i = 0; i < group_size; ++i) mean += x[base + i];
      mean /= static_cast<double>(group_size);
      double var = 0.0;
      for (std::size_t i = 0; i < group_size; ++i) {
        const double d = x[base + i] - mean;
        var += d * d;
      }
      var /= static_cast<double>(group_size);
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[b * groups_ + g] = inv_std;
      for (std::size_t i = 0; i < group_size; ++i) {
        xh[base + i] = (x[base + i] - static_cast<float>(mean)) * inv_std;
      }
      for (std::size_t cc = 0; cc < ch_per_group; ++cc) {
        const std::size_t ch = g * ch_per_group + cc;
        const std::size_t coff = (b * channels_ + ch) * h * w;
        for (std::size_t i = 0; i < h * w; ++i) {
          y[coff + i] = gamma_[ch] * xh[coff + i] + beta_[ch];
        }
      }
    }
  }
  cached_xhat_ = std::move(xhat);
  return out;
}

Tensor GroupNorm::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_in_shape_[0], h = cached_in_shape_[2],
                    w = cached_in_shape_[3];
  const std::size_t ch_per_group = channels_ / groups_;
  const std::size_t group_size = ch_per_group * h * w;
  Tensor grad_input(cached_in_shape_);
  const float* gy = grad_output.raw();
  const float* xh = cached_xhat_.raw();
  float* gx = grad_input.raw();
  // Per-channel affine gradients.
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < channels_; ++ch) {
      const std::size_t coff = (b * channels_ + ch) * h * w;
      for (std::size_t i = 0; i < h * w; ++i) {
        grad_gamma_[ch] += gy[coff + i] * xh[coff + i];
        grad_beta_[ch] += gy[coff + i];
      }
    }
  }
  // Input gradient. With dxhat = gy * gamma(channel):
  // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat)).
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const float inv_std = cached_inv_std_[b * groups_ + g];
      double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
      for (std::size_t cc = 0; cc < ch_per_group; ++cc) {
        const std::size_t ch = g * ch_per_group + cc;
        const std::size_t coff = (b * channels_ + ch) * h * w;
        for (std::size_t i = 0; i < h * w; ++i) {
          const double dxhat = static_cast<double>(gy[coff + i]) * gamma_[ch];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += dxhat * xh[coff + i];
        }
      }
      const double m = static_cast<double>(group_size);
      const double mean_dxhat = sum_dxhat / m;
      const double mean_dxhat_xhat = sum_dxhat_xhat / m;
      for (std::size_t cc = 0; cc < ch_per_group; ++cc) {
        const std::size_t ch = g * ch_per_group + cc;
        const std::size_t coff = (b * channels_ + ch) * h * w;
        for (std::size_t i = 0; i < h * w; ++i) {
          const double dxhat = static_cast<double>(gy[coff + i]) * gamma_[ch];
          gx[coff + i] = static_cast<float>(
              inv_std * (dxhat - mean_dxhat - xh[coff + i] * mean_dxhat_xhat));
        }
      }
    }
  }
  return grad_input;
}

}  // namespace jwins::nn

// Convolutional building blocks for the GN-LeNet-style CNNs (paper §IV-B):
// Conv2d, MaxPool2d, and GroupNorm (the "GN" in GN-LeNet — Hsieh et al. 2020
// replace batch norm with group norm because batch statistics leak across
// non-IID nodes).
#pragma once

#include <random>

#include "nn/module.hpp"

namespace jwins::nn {

/// 2-D convolution over [B, C, H, W] with square kernels.
class Conv2d final : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t padding, std::mt19937& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }

 private:
  std::size_t in_ch_, out_ch_, kernel_, stride_, pad_;
  Tensor weight_;  // [out_ch, in_ch, k, k]
  Tensor bias_;    // [out_ch]
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

/// Max pooling over [B, C, H, W]; remembers argmax positions for backward.
class MaxPool2d final : public Module {
 public:
  MaxPool2d(std::size_t kernel, std::size_t stride);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::size_t kernel_, stride_;
  tensor::Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Group normalization over [B, C, H, W] (Wu & He 2018) with per-channel
/// affine parameters.
class GroupNorm final : public Module {
 public:
  GroupNorm(std::size_t groups, std::size_t channels, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&grad_gamma_, &grad_beta_}; }

 private:
  std::size_t groups_, channels_;
  float eps_;
  Tensor gamma_, beta_;
  Tensor grad_gamma_, grad_beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  // per (batch, group)
  tensor::Shape cached_in_shape_;
};

}  // namespace jwins::nn

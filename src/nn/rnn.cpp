#include "nn/rnn.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace jwins::nn {

Embedding::Embedding(std::size_t vocab, std::size_t dim, std::mt19937& rng)
    : vocab_(vocab),
      dim_(dim),
      weight_({vocab, dim}),
      grad_weight_({vocab, dim}) {
  weight_ = Tensor::normal({vocab, dim}, 0.0f, 0.1f, rng);
}

Tensor Embedding::forward(const Tensor& input) {
  if (input.rank() != 2) {
    throw std::invalid_argument("Embedding: expected [B, T] token ids");
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0), steps = input.dim(1);
  Tensor out({batch, steps, dim_});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < steps; ++t) {
      const auto token = static_cast<std::size_t>(input[b * steps + t]);
      if (token >= vocab_) {
        throw std::out_of_range("Embedding: token id out of range");
      }
      for (std::size_t d = 0; d < dim_; ++d) {
        out[(b * steps + t) * dim_ + d] = weight_[token * dim_ + d];
      }
    }
  }
  return out;
}

Tensor Embedding::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0), steps = cached_input_.dim(1);
  if (grad_output.size() != batch * steps * dim_) {
    throw std::invalid_argument("Embedding::backward: grad shape mismatch");
  }
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < steps; ++t) {
      const auto token = static_cast<std::size_t>(cached_input_[b * steps + t]);
      for (std::size_t d = 0; d < dim_; ++d) {
        grad_weight_[token * dim_ + d] += grad_output[(b * steps + t) * dim_ + d];
      }
    }
  }
  return Tensor(cached_input_.shape());  // indices carry no gradient
}

Lstm::Lstm(std::size_t input_dim, std::size_t hidden, std::mt19937& rng)
    : input_dim_(input_dim),
      hidden_(hidden),
      w_x_({4 * hidden, input_dim}),
      w_h_({4 * hidden, hidden}),
      bias_({4 * hidden}),
      grad_w_x_({4 * hidden, input_dim}),
      grad_w_h_({4 * hidden, hidden}),
      grad_bias_({4 * hidden}) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden));
  w_x_ = Tensor::uniform(w_x_.shape(), -bound, bound, rng);
  w_h_ = Tensor::uniform(w_h_.shape(), -bound, bound, rng);
  bias_ = Tensor::uniform(bias_.shape(), -bound, bound, rng);
  // Positive forget-gate bias: standard trick to keep early memory alive.
  for (std::size_t i = hidden; i < 2 * hidden; ++i) bias_[i] += 1.0f;
}

Tensor Lstm::forward(const Tensor& input) {
  if (input.rank() != 3 || input.dim(2) != input_dim_) {
    throw std::invalid_argument("Lstm: expected [B, T, " +
                                std::to_string(input_dim_) + "], got " +
                                tensor::to_string(input.shape()));
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0), steps = input.dim(1);
  const std::size_t H = hidden_;
  if (gate_i_.size() != steps) {
    gate_i_.resize(steps);
    gate_f_.resize(steps);
    gate_g_.resize(steps);
    gate_o_.resize(steps);
    cell_.resize(steps);
    tanh_cell_.resize(steps);
    h_prev_.resize(steps);
    c_prev_.resize(steps);
  }
  h_.ensure_shape(batch, H);
  h_.zero();
  c_.ensure_shape(batch, H);
  c_.zero();
  Tensor out({batch, steps, H});
  for (std::size_t t = 0; t < steps; ++t) {
    h_prev_[t] = h_;
    c_prev_[t] = c_;
    // x_t as a [B, D] matrix.
    xt_.ensure_shape(batch, input_dim_);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t d = 0; d < input_dim_; ++d) {
        xt_[b * input_dim_ + d] = input[(b * steps + t) * input_dim_ + d];
      }
    }
    tensor::matmul_nt_into(z_, xt_, w_x_);  // [B, 4H]
    tensor::matmul_nt_into(zh_, h_, w_h_);
    z_ += zh_;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < 4 * H; ++j) z_[b * 4 * H + j] += bias_[j];
    }
    Tensor& gi = gate_i_[t];
    Tensor& gf = gate_f_[t];
    Tensor& gg = gate_g_[t];
    Tensor& go = gate_o_[t];
    Tensor& tc = tanh_cell_[t];
    gi.ensure_shape(batch, H);
    gf.ensure_shape(batch, H);
    gg.ensure_shape(batch, H);
    go.ensure_shape(batch, H);
    tc.ensure_shape(batch, H);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < H; ++j) {
        const float zi = z_[b * 4 * H + j];
        const float zf = z_[b * 4 * H + H + j];
        const float zg = z_[b * 4 * H + 2 * H + j];
        const float zo = z_[b * 4 * H + 3 * H + j];
        const float iv = 1.0f / (1.0f + std::exp(-zi));
        const float fv = 1.0f / (1.0f + std::exp(-zf));
        const float gv = std::tanh(zg);
        const float ov = 1.0f / (1.0f + std::exp(-zo));
        // c_ still holds c_{t-1} at [b, j]: each element is read exactly
        // once before being overwritten with c_t.
        const float cv = fv * c_[b * H + j] + iv * gv;
        const float tcv = std::tanh(cv);
        gi[b * H + j] = iv;
        gf[b * H + j] = fv;
        gg[b * H + j] = gv;
        go[b * H + j] = ov;
        c_[b * H + j] = cv;
        tc[b * H + j] = tcv;
        const float htv = ov * tcv;
        h_[b * H + j] = htv;
        out[(b * steps + t) * H + j] = htv;
      }
    }
    cell_[t] = c_;
  }
  return out;
}

Tensor Lstm::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0), steps = input.dim(1);
  const std::size_t H = hidden_;
  if (grad_output.size() != batch * steps * H) {
    throw std::invalid_argument("Lstm::backward: grad shape mismatch");
  }
  Tensor grad_input(input.shape());
  dh_next_.ensure_shape(batch, H);
  dh_next_.zero();
  dc_next_.ensure_shape(batch, H);
  dc_next_.zero();
  for (std::size_t t = steps; t-- > 0;) {
    // dh_t = upstream slice + gradient flowing back from step t+1.
    dh_ = dh_next_;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < H; ++j) {
        dh_[b * H + j] += grad_output[(b * steps + t) * H + j];
      }
    }
    dz_.ensure_shape(batch, 4 * H);
    dc_prev_.ensure_shape(batch, H);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < H; ++j) {
        const float iv = gate_i_[t][b * H + j];
        const float fv = gate_f_[t][b * H + j];
        const float gv = gate_g_[t][b * H + j];
        const float ov = gate_o_[t][b * H + j];
        const float tcv = tanh_cell_[t][b * H + j];
        const float dhv = dh_[b * H + j];
        float dc = dc_next_[b * H + j] + dhv * ov * (1.0f - tcv * tcv);
        const float do_pre = dhv * tcv * ov * (1.0f - ov);
        const float di_pre = dc * gv * iv * (1.0f - iv);
        const float df_pre = dc * c_prev_[t][b * H + j] * fv * (1.0f - fv);
        const float dg_pre = dc * iv * (1.0f - gv * gv);
        dz_[b * 4 * H + j] = di_pre;
        dz_[b * 4 * H + H + j] = df_pre;
        dz_[b * 4 * H + 2 * H + j] = dg_pre;
        dz_[b * 4 * H + 3 * H + j] = do_pre;
        dc_prev_[b * H + j] = dc * fv;
      }
    }
    // Parameter gradients.
    xt_.ensure_shape(batch, input_dim_);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t d = 0; d < input_dim_; ++d) {
        xt_[b * input_dim_ + d] = input[(b * steps + t) * input_dim_ + d];
      }
    }
    tensor::matmul_tn_into(gw_tmp_, dz_, xt_);
    grad_w_x_ += gw_tmp_;
    tensor::matmul_tn_into(gw_tmp_, dz_, h_prev_[t]);
    grad_w_h_ += gw_tmp_;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < 4 * H; ++j) {
        grad_bias_[j] += dz_[b * 4 * H + j];
      }
    }
    // Input and recurrent gradients.
    tensor::matmul_into(dx_, dz_, w_x_);  // [B, D]
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t d = 0; d < input_dim_; ++d) {
        grad_input[(b * steps + t) * input_dim_ + d] = dx_[b * input_dim_ + d];
      }
    }
    tensor::matmul_into(dh_next_, dz_, w_h_);  // [B, H]
    std::swap(dc_next_, dc_prev_);
  }
  return grad_input;
}

}  // namespace jwins::nn

#include "sim/report.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace jwins::sim {

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes << ' '
     << kUnits[unit];
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed;
  if (seconds < 120.0) {
    os << std::setprecision(1) << seconds << " s";
  } else {
    os << std::setprecision(1) << seconds / 60.0 << " min";
  }
  return os.str();
}

void print_series_csv(std::ostream& os, const std::string& label,
                      const ExperimentResult& result) {
  os << "# series: " << label << "\n";
  os << "round,sim_seconds,test_accuracy,test_loss,avg_bytes_per_node,"
        "avg_metadata_bytes_per_node\n";
  for (const MetricPoint& p : result.series) {
    os << p.round << ',' << std::fixed << std::setprecision(3) << p.sim_seconds
       << ',' << std::setprecision(4) << p.test_accuracy << ','
       << p.test_loss << ',' << std::setprecision(0) << p.avg_bytes_per_node
       << ',' << p.avg_metadata_bytes_per_node << "\n";
  }
}

void print_summary_row(std::ostream& os, const std::string& dataset,
                       const std::string& algorithm,
                       const ExperimentResult& result) {
  const double avg_bytes =
      result.series.empty() ? 0.0 : result.series.back().avg_bytes_per_node;
  os << std::left << std::setw(14) << dataset << std::setw(18) << algorithm
     << std::right << "acc=" << std::fixed << std::setprecision(1)
     << result.final_accuracy * 100.0 << "%  loss=" << std::setprecision(3)
     << result.final_loss << "  rounds=" << result.rounds_run
     << "  data/node=" << format_bytes(avg_bytes)
     << "  sim-time=" << format_seconds(result.sim_seconds) << "\n";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void write_result_json(std::ostream& os, const std::string& label,
                       const ExperimentResult& result, bool include_wall) {
  os << "{\n";
  os << "  \"label\": " << json_string(label) << ",\n";
  os << "  \"rounds_run\": " << result.rounds_run << ",\n";
  os << "  \"sim_seconds\": " << json_number(result.sim_seconds) << ",\n";
  os << "  \"final_accuracy\": " << json_number(result.final_accuracy) << ",\n";
  os << "  \"final_loss\": " << json_number(result.final_loss) << ",\n";
  os << "  \"reached_target\": " << (result.reached_target ? "true" : "false")
     << ",\n";
  os << "  \"mean_alpha\": " << json_number(result.mean_alpha) << ",\n";
  const net::NodeTraffic& t = result.total_traffic;
  os << "  \"traffic\": {\n";
  os << "    \"messages_sent\": " << t.messages_sent << ",\n";
  os << "    \"bytes_sent\": " << t.bytes_sent << ",\n";
  os << "    \"payload_bytes_sent\": " << t.payload_bytes_sent << ",\n";
  os << "    \"metadata_bytes_sent\": " << t.metadata_bytes_sent << "\n";
  os << "  },\n";
  // Extended simulated-time block: present only when the run configured
  // heterogeneity or fault injection beyond the flat link model, so the
  // default report shape stays byte-identical to the pre-TimeModel engine
  // (docs/SIMULATION.md "Result JSON").
  if (result.sim_time.extended) {
    const SimTimeBreakdown& st = result.sim_time;
    os << "  \"sim_time\": {\n";
    os << "    \"compute_seconds\": " << json_number(st.compute_seconds)
       << ",\n";
    os << "    \"comm_seconds\": " << json_number(st.comm_seconds) << ",\n";
    os << "    \"stragglers\": " << st.stragglers << ",\n";
    os << "    \"crashed_node_rounds\": " << st.crashed_node_rounds << ",\n";
    os << "    \"messages_dropped\": {\"total\": " << st.dropped_total
       << ", \"iid\": " << st.dropped_iid << ", \"edge\": " << st.dropped_edge
       << ", \"burst\": " << st.dropped_burst
       << ", \"crash\": " << st.dropped_crash << "},\n";
    os << "    \"series\": [";
    for (std::size_t i = 0; i < result.series.size(); ++i) {
      const MetricPoint& p = result.series[i];
      os << (i == 0 ? "\n" : ",\n");
      os << "      {\"round\": " << p.round
         << ", \"compute_seconds\": " << json_number(p.sim_compute_seconds)
         << ", \"comm_seconds\": " << json_number(p.sim_comm_seconds) << "}";
    }
    os << (result.series.empty() ? "]\n" : "\n    ]\n");
    os << "  },\n";
  }
  // Event-engine block: present only when the asynchronous engine ran with
  // genuine asynchrony (staleness_bound > 0) or a simulated-time budget —
  // barrier-mode runs keep their JSON byte-identical to the synchronous
  // engine (the golden-reduction guarantee; sim/event_engine.hpp).
  if (result.event_engine.extended) {
    const EventEngineStats& ee = result.event_engine;
    os << "  \"event_engine\": {\n";
    os << "    \"async_mode\": \"" << async_mode_name(ee.mode) << "\",\n";
    os << "    \"events_processed\": " << ee.events_processed << ",\n";
    os << "    \"max_queue_depth\": " << ee.max_queue_depth << ",\n";
    os << "    \"messages_delivered\": " << ee.messages_delivered << ",\n";
    os << "    \"messages_in_flight\": " << ee.messages_in_flight << ",\n";
    os << "    \"messages_stale_dropped\": " << ee.messages_stale_dropped
       << ",\n";
    os << "    \"staleness_overrides\": " << ee.staleness_overrides << ",\n";
    os << "    \"staleness_histogram\": [";
    for (std::size_t i = 0; i < ee.staleness_histogram.size(); ++i) {
      os << (i == 0 ? "" : ", ") << ee.staleness_histogram[i];
    }
    os << "],\n";
    // Per-mode block: only the gate-free modes collect the effective-
    // neighbor histogram and contribution ages (under the barrier gate the
    // neighbor count is pinned by the gate itself).
    if (ee.mode != AsyncMode::kBarrier) {
      os << "    \"effective_neighbors\": [";
      for (std::size_t i = 0; i < ee.effective_neighbors.size(); ++i) {
        os << (i == 0 ? "" : ", ") << ee.effective_neighbors[i];
      }
      os << "],\n";
      os << "    \"mean_contribution_age\": "
         << json_number(ee.mean_contribution_age()) << ",\n";
    }
    os << "    \"edge_records_high_water\": " << ee.edge_records_high_water
       << ",\n";
    os << "    \"local_steps\": {\"min\": " << ee.local_steps_min()
       << ", \"max\": " << ee.local_steps_max()
       << ", \"mean\": " << json_number(ee.local_steps_mean()) << "}\n";
    os << "  },\n";
  }
  // Byzantine block: present only when the run configured an attack or a
  // non-none robust rule, so benign runs keep the legacy report shape
  // (docs/SIMULATION.md "Adversarial behavior").
  if (result.byzantine.extended) {
    const ByzantineStats& bz = result.byzantine;
    os << "  \"byzantine\": {\n";
    os << "    \"mode\": \"" << algo::byzantine_mode_name(bz.mode) << "\",\n";
    os << "    \"robust_agg\": \"" << core::robust_agg_name(bz.robust_agg)
       << "\",\n";
    os << "    \"attackers\": [";
    for (std::size_t i = 0; i < bz.attackers.size(); ++i) {
      os << (i == 0 ? "" : ", ") << bz.attackers[i];
    }
    os << "],\n";
    os << "    \"corrupted_messages\": " << bz.corrupted_messages << ",\n";
    os << "    \"trimmed_entries\": " << bz.trimmed_entries << ",\n";
    os << "    \"clipped_contributions\": " << bz.clipped_contributions
       << "\n";
    os << "  },\n";
  }
  if (include_wall) {
    const PhaseTimings& w = result.wall;
    os << "  \"wall_seconds\": {\n";
    os << "    \"train\": " << json_number(w.train_seconds) << ",\n";
    os << "    \"share\": " << json_number(w.share_seconds) << ",\n";
    os << "    \"aggregate\": " << json_number(w.aggregate_seconds) << ",\n";
    os << "    \"evaluate\": " << json_number(w.evaluate_seconds) << ",\n";
    os << "    \"total\": " << json_number(w.total_seconds) << "\n";
    os << "  },\n";
  }
  os << "  \"series\": [";
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    const MetricPoint& p = result.series[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"round\": " << p.round
       << ", \"sim_seconds\": " << json_number(p.sim_seconds)
       << ", \"test_accuracy\": " << json_number(p.test_accuracy)
       << ", \"test_loss\": " << json_number(p.test_loss)
       << ", \"train_loss\": " << json_number(p.train_loss)
       << ", \"avg_bytes_per_node\": " << json_number(p.avg_bytes_per_node)
       << ", \"avg_metadata_bytes_per_node\": "
       << json_number(p.avg_metadata_bytes_per_node) << "}";
  }
  os << (result.series.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

}  // namespace jwins::sim

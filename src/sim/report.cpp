#include "sim/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace jwins::sim {

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes << ' '
     << kUnits[unit];
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed;
  if (seconds < 120.0) {
    os << std::setprecision(1) << seconds << " s";
  } else {
    os << std::setprecision(1) << seconds / 60.0 << " min";
  }
  return os.str();
}

void print_series_csv(std::ostream& os, const std::string& label,
                      const ExperimentResult& result) {
  os << "# series: " << label << "\n";
  os << "round,sim_seconds,test_accuracy,test_loss,avg_bytes_per_node,"
        "avg_metadata_bytes_per_node\n";
  for (const MetricPoint& p : result.series) {
    os << p.round << ',' << std::fixed << std::setprecision(3) << p.sim_seconds
       << ',' << std::setprecision(4) << p.test_accuracy << ','
       << p.test_loss << ',' << std::setprecision(0) << p.avg_bytes_per_node
       << ',' << p.avg_metadata_bytes_per_node << "\n";
  }
}

void print_summary_row(std::ostream& os, const std::string& dataset,
                       const std::string& algorithm,
                       const ExperimentResult& result) {
  const double avg_bytes =
      result.series.empty() ? 0.0 : result.series.back().avg_bytes_per_node;
  os << std::left << std::setw(14) << dataset << std::setw(18) << algorithm
     << std::right << "acc=" << std::fixed << std::setprecision(1)
     << result.final_accuracy * 100.0 << "%  loss=" << std::setprecision(3)
     << result.final_loss << "  rounds=" << result.rounds_run
     << "  data/node=" << format_bytes(avg_bytes)
     << "  sim-time=" << format_seconds(result.sim_seconds) << "\n";
}

}  // namespace jwins::sim

#include "sim/workloads.hpp"

#include <algorithm>
#include <stdexcept>

namespace jwins::sim {

namespace {

std::size_t scaled(std::size_t base, double scale) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      static_cast<double>(base) * scale));
}

/// The scale workload's model: MlpClassifier's construction with a Flatten
/// in front, so the rank-4 SyntheticImages batches feed the Linear stack
/// directly. Kept local (not a nn/ model) — it exists only to give the
/// 100k–1M-node runs a ~50-parameter SupervisedModel.
class ScaleMlp final : public nn::SupervisedModel {
 public:
  explicit ScaleMlp(std::uint32_t seed) {
    std::mt19937 rng(seed);
    net_.emplace<nn::Flatten>();
    net_.emplace<nn::Linear>(kFeatures, kHidden, rng);
    net_.emplace<nn::ReLU>();
    net_.emplace<nn::Linear>(kHidden, kClasses, rng);
  }

  float loss_and_grad(const nn::Batch& batch) override {
    nn::Tensor logits = net_.forward(batch.x);
    nn::LossResult lr = nn::softmax_cross_entropy(logits, batch.labels);
    net_.backward(lr.grad);
    return lr.loss;
  }

  nn::EvalMetrics evaluate(const nn::Batch& batch) override {
    nn::Tensor logits = net_.forward(batch.x);
    nn::LossResult lr = nn::softmax_cross_entropy(logits, batch.labels);
    return {lr.loss, nn::accuracy(logits, batch.labels), batch.size()};
  }

  std::vector<nn::Tensor*> parameters() override { return net_.params(); }
  std::vector<nn::Tensor*> gradients() override { return net_.grads(); }

  static constexpr std::size_t kFeatures = 4;  ///< 1 channel x 2x2 images
  static constexpr std::size_t kHidden = 8;
  static constexpr std::size_t kClasses = 2;

 private:
  nn::Sequential net_;
};

}  // namespace

Workload make_cifar_like(std::size_t nodes, std::uint32_t seed, double scale) {
  data::SyntheticImages::Config train_cfg;
  train_cfg.classes = 10;
  train_cfg.channels = 3;
  train_cfg.image_size = 8;
  train_cfg.samples = scaled(std::max<std::size_t>(nodes * 64, 640), scale);
  train_cfg.noise = 1.8f;
  train_cfg.seed = seed;
  train_cfg.sample_seed = seed + 101;
  auto train = std::make_shared<data::SyntheticImages>(train_cfg);

  data::SyntheticImages::Config test_cfg = train_cfg;
  test_cfg.samples = scaled(320, scale);
  test_cfg.sample_seed = seed + 202;  // same prototypes, fresh draws
  auto test = std::make_shared<data::SyntheticImages>(test_cfg);

  Workload w;
  w.name = "cifar";
  w.train = train;
  w.test = test;
  w.partition = data::shard_partition(*train, nodes, /*shards_per_node=*/2, seed);
  w.suggested_lr = 0.05f;
  w.model_factory = [seed] {
    nn::CnnClassifier::Config cfg;
    cfg.in_channels = 3;
    cfg.image_size = 8;
    cfg.conv1_channels = 8;
    cfg.conv2_channels = 16;
    cfg.groups = 2;
    cfg.classes = 10;
    return std::make_unique<nn::CnnClassifier>(cfg, seed);
  };
  return w;
}

Workload make_cifar_like_4shard(std::size_t nodes, std::uint32_t seed,
                                double scale) {
  Workload w = make_cifar_like(nodes, seed, scale);
  w.name = "cifar-4shard";
  w.partition = data::shard_partition(*w.train, nodes, /*shards_per_node=*/4, seed);
  return w;
}

Workload make_movielens_like(std::size_t nodes, std::uint32_t seed,
                             double scale) {
  data::SyntheticRatings::Config train_cfg;
  train_cfg.users = std::max<std::size_t>(nodes * 2, 32);
  train_cfg.items = 96;
  train_cfg.true_rank = 4;
  train_cfg.ratings_per_user = scaled(40, scale);
  train_cfg.noise = 0.25f;
  train_cfg.seed = seed;
  train_cfg.sample_seed = seed + 101;
  auto train = std::make_shared<data::SyntheticRatings>(train_cfg);

  data::SyntheticRatings::Config test_cfg = train_cfg;
  test_cfg.ratings_per_user = scaled(8, scale);
  test_cfg.sample_seed = seed + 202;
  auto test = std::make_shared<data::SyntheticRatings>(test_cfg);

  Workload w;
  w.name = "movielens";
  w.train = train;
  w.test = test;
  w.partition = data::client_partition(*train, nodes, seed);
  const std::size_t users = train_cfg.users;
  const std::size_t items = train_cfg.items;
  const float mean = train->rating_mean();
  w.suggested_lr = 0.6f;
  w.model_factory = [users, items, mean, seed] {
    return std::make_unique<nn::MatrixFactorization>(users, items, /*dim=*/6,
                                                     mean, seed);
  };
  return w;
}

Workload make_shakespeare_like(std::size_t nodes, std::uint32_t seed,
                               double scale) {
  data::SyntheticText::Config train_cfg;
  train_cfg.vocab = 20;
  train_cfg.seq_len = 12;
  train_cfg.clients = std::max<std::size_t>(nodes, 8);
  train_cfg.samples_per_client = scaled(24, scale);
  train_cfg.client_style = 0.5f;
  train_cfg.seed = seed;
  train_cfg.sample_seed = seed + 101;
  auto train = std::make_shared<data::SyntheticText>(train_cfg);

  data::SyntheticText::Config test_cfg = train_cfg;
  test_cfg.samples_per_client = scaled(6, scale);
  test_cfg.sample_seed = seed + 202;
  auto test = std::make_shared<data::SyntheticText>(test_cfg);

  Workload w;
  w.name = "shakespeare";
  w.train = train;
  w.test = test;
  w.partition = data::client_partition(*train, nodes, seed);
  w.suggested_lr = 2.5f;
  w.suggested_local_steps = 3;
  w.model_factory = [seed] {
    nn::CharLstm::Config cfg;
    cfg.vocab = 20;
    cfg.embedding_dim = 12;
    cfg.hidden = 24;
    cfg.layers = 2;
    return std::make_unique<nn::CharLstm>(cfg, seed);
  };
  return w;
}

Workload make_celeba_like(std::size_t nodes, std::uint32_t seed, double scale) {
  data::SyntheticImages::Config train_cfg;
  train_cfg.classes = 2;
  train_cfg.channels = 3;
  train_cfg.image_size = 8;
  train_cfg.samples = scaled(std::max<std::size_t>(nodes * 48, 480), scale);
  train_cfg.noise = 3.0f;
  train_cfg.clients = std::max<std::size_t>(nodes * 2, 16);
  train_cfg.client_style = 0.4f;
  train_cfg.seed = seed;
  train_cfg.sample_seed = seed + 101;
  auto train = std::make_shared<data::SyntheticImages>(train_cfg);

  data::SyntheticImages::Config test_cfg = train_cfg;
  test_cfg.samples = scaled(256, scale);
  test_cfg.sample_seed = seed + 202;
  auto test = std::make_shared<data::SyntheticImages>(test_cfg);

  Workload w;
  w.name = "celeba";
  w.train = train;
  w.test = test;
  w.partition = data::client_partition(*train, nodes, seed);
  w.suggested_lr = 0.05f;
  w.model_factory = [seed] {
    nn::CnnClassifier::Config cfg;
    cfg.in_channels = 3;
    cfg.image_size = 8;
    cfg.conv1_channels = 4;
    cfg.conv2_channels = 8;
    cfg.groups = 2;
    cfg.classes = 2;
    return std::make_unique<nn::CnnClassifier>(cfg, seed);
  };
  return w;
}

Workload make_femnist_like(std::size_t nodes, std::uint32_t seed, double scale) {
  data::SyntheticImages::Config train_cfg;
  train_cfg.classes = 12;
  train_cfg.channels = 1;
  train_cfg.image_size = 8;
  train_cfg.samples = scaled(std::max<std::size_t>(nodes * 72, 720), scale);
  train_cfg.noise = 1.3f;
  train_cfg.clients = std::max<std::size_t>(nodes * 2, 16);
  train_cfg.client_style = 0.5f;
  train_cfg.seed = seed;
  train_cfg.sample_seed = seed + 101;
  auto train = std::make_shared<data::SyntheticImages>(train_cfg);

  data::SyntheticImages::Config test_cfg = train_cfg;
  test_cfg.samples = scaled(320, scale);
  test_cfg.sample_seed = seed + 202;
  auto test = std::make_shared<data::SyntheticImages>(test_cfg);

  Workload w;
  w.name = "femnist";
  w.train = train;
  w.test = test;
  w.partition = data::client_partition(*train, nodes, seed);
  w.suggested_lr = 0.05f;
  w.model_factory = [seed] {
    nn::CnnClassifier::Config cfg;
    cfg.in_channels = 1;
    cfg.image_size = 8;
    cfg.conv1_channels = 6;
    cfg.conv2_channels = 12;
    cfg.groups = 2;
    cfg.classes = 12;
    return std::make_unique<nn::CnnClassifier>(cfg, seed);
  };
  return w;
}

Workload make_scale_like(std::size_t nodes, std::uint32_t seed, double scale) {
  data::SyntheticImages::Config train_cfg;
  train_cfg.classes = ScaleMlp::kClasses;
  train_cfg.channels = 1;
  train_cfg.image_size = 2;
  // Fixed pool, NOT nodes-proportional: the whole point is that dataset
  // construction stays O(1) as the node count climbs to a million.
  train_cfg.samples = scaled(256, scale);
  train_cfg.noise = 1.0f;
  train_cfg.seed = seed;
  train_cfg.sample_seed = seed + 101;
  auto train = std::make_shared<data::SyntheticImages>(train_cfg);

  data::SyntheticImages::Config test_cfg = train_cfg;
  test_cfg.samples = scaled(64, scale);
  test_cfg.sample_seed = seed + 202;
  auto test = std::make_shared<data::SyntheticImages>(test_cfg);

  Workload w;
  w.name = "scale";
  w.train = train;
  w.test = test;
  w.partition = data::cyclic_partition(train->size(), nodes, /*per_node=*/2);
  w.suggested_lr = 0.05f;
  w.suggested_local_steps = 1;
  w.model_factory = [seed] { return std::make_unique<ScaleMlp>(seed); };
  return w;
}

Workload make_workload(const std::string& name, std::size_t nodes,
                       std::uint32_t seed, double scale) {
  if (name == "cifar") return make_cifar_like(nodes, seed, scale);
  if (name == "movielens") return make_movielens_like(nodes, seed, scale);
  if (name == "shakespeare") return make_shakespeare_like(nodes, seed, scale);
  if (name == "celeba") return make_celeba_like(nodes, seed, scale);
  if (name == "femnist") return make_femnist_like(nodes, seed, scale);
  if (name == "scale") return make_scale_like(nodes, seed, scale);
  throw std::invalid_argument("unknown workload: " + name);
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names{
      "cifar", "movielens", "shakespeare", "celeba", "femnist", "scale"};
  return names;
}

}  // namespace jwins::sim

// Copy-on-write flat-parameter store for the compact node-state engine.
//
// The full engine keeps one DlNode per simulated node: model object, layer
// tensors, optimizer, sampler — kilobytes of bookkeeping around a parameter
// vector that may be a few dozen floats. At 100k–1M nodes that overhead (not
// the parameters) is what exhausts memory. NodeStateStore inverts the
// layout: ONE shared read-only base vector (the common initial model — every
// node starts from the same x^(0,0), paper Algorithm 1) plus a per-node slot
// that materializes lazily in an arena-style chunked slab the first time a
// node's parameters diverge from the base. Steady-state per-node cost is
// params * sizeof(float) + one 4-byte slot index — nothing else.
//
// Concurrency contract (matches the engine's static-chunked phases): a node
// index is touched by exactly one execution lane inside a phase, and phases
// are separated by thread-pool joins. Slot *assignment* (bumping the slab
// cursor, allocating a chunk) is serialized by a mutex; slot *data* is
// written lock-free because distinct nodes own distinct slots. chunks_ is
// reserved to its maximum size up front so readers never race a vector
// reallocation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace jwins::sim {

class NodeStateStore {
 public:
  /// `base` is copied once; every node reads it until its first store().
  NodeStateStore(std::size_t nodes, std::span<const float> base);

  std::size_t size() const noexcept { return slot_of_.size(); }
  std::size_t params() const noexcept { return params_; }

  /// True once `node` owns a private slot (its state diverged from base).
  bool materialized(std::size_t node) const noexcept {
    return slot_of_[node] != kShared;
  }
  std::size_t materialized_count() const noexcept { return next_slot_; }

  /// Current parameters of `node`: its slot, or the shared base.
  std::span<const float> view(std::size_t node) const noexcept {
    const std::uint32_t slot = slot_of_[node];
    return slot == kShared ? std::span<const float>(base_)
                           : std::span<const float>(slot_data(slot), params_);
  }

  /// Writable slot for `node`, materialized (base-initialized) on first use.
  /// Thread-safe for distinct nodes.
  std::span<float> slot(std::size_t node);

  /// Overwrites `node`'s state (materializing its slot if needed).
  void store(std::size_t node, std::span<const float> params);

  /// Bytes held by the store: base + slab chunks + the slot table. The
  /// memory-regression guard divides this by size() to pin per-node cost.
  std::size_t memory_bytes() const noexcept;

 private:
  static constexpr std::uint32_t kShared = 0xFFFFFFFFu;

  float* slot_data(std::uint32_t slot) const noexcept {
    return chunks_[slot / slots_per_chunk_].get() +
           static_cast<std::size_t>(slot % slots_per_chunk_) * params_;
  }

  std::size_t params_;
  std::size_t slots_per_chunk_;
  std::vector<float> base_;
  std::vector<std::uint32_t> slot_of_;  ///< kShared until materialized
  std::vector<std::unique_ptr<float[]>> chunks_;
  std::uint32_t next_slot_ = 0;
  std::mutex slab_lock_;  ///< guards next_slot_ / chunk allocation only
};

}  // namespace jwins::sim

// Experiment runner — the top of the simulation stack and the entry point
// every bench and example drives.
//
// An Experiment wires a dataset partition (data/), a model factory (nn/), a
// topology provider (graph/) and one of the algorithms (algo/) into the
// bulk-synchronous D-PSGD round loop (train -> share -> aggregate),
// collecting the metrics the paper reports (paper §IV-B g): average test
// accuracy/loss across nodes, bytes transferred (payload vs metadata via
// net::Network's accounting), and simulated wall-clock time (net::TimeModel
// — flat link by default, per-edge heterogeneity/stragglers/faults via
// ExperimentConfig::time; docs/SIMULATION.md). It also owns the
// cross-cutting protocol knobs — target-accuracy stopping (the
// Figure 5/6 protocol), learning-rate schedules, fault injection,
// and the threaded execution engine (a persistent net::ThreadPool whose
// static chunking + counter-based per-node RNG streams keep `threads = N`
// bit-identical to `threads = 1`; see docs/DESIGN.md "Determinism &
// threading model"). For a minimal end-to-end use see
// examples/quickstart.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algo/choco.hpp"
#include "algo/full_sharing.hpp"
#include "algo/jwins_node.hpp"
#include "algo/power_gossip.hpp"
#include "algo/random_sampling.hpp"
#include "core/scratch.hpp"
#include "data/partition.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "net/thread_pool.hpp"
#include "nn/model.hpp"
#include "sim/node_state.hpp"

namespace jwins::sim {

enum class Algorithm {
  kFullSharing,
  kRandomSampling,
  kJwins,
  kChoco,
  kPowerGossip,
};

const char* algorithm_name(Algorithm algorithm);

/// Which execution engine drives the round structure:
///
///  * kSync — the bulk-synchronous reference loop (train -> share ->
///    aggregate in global lockstep rounds), the golden reference every
///    result so far was produced under;
///  * kAsync — the discrete-event scheduler (sim/event_engine.hpp): nodes
///    are state machines advanced by TrainDone / MessageArrival / LocalStep
///    events, messages arrive when their link says they arrive, and slow
///    nodes genuinely fall behind. With `staleness_bound == 0` (barrier
///    mode) it reduces EXACTLY — byte-for-byte result JSON — to kSync under
///    any TimeModel; a bound B > 0 lets a node run up to B rounds ahead of
///    its neighbors (docs/SIMULATION.md "Asynchronous engine").
enum class EngineKind { kSync, kAsync };

const char* engine_name(EngineKind kind);

/// Aggregation discipline of the asynchronous engine — how a node treats the
/// messages that have (or have not) arrived when its local step fires:
///
///  * kBarrier — the bounded-staleness rule PR 6 shipped: a node waits until
///    every expected neighbor has been heard within `staleness_bound` rounds
///    (B == 0 is the exact synchronous reduction). The only mode with a
///    staleness *gate*.
///  * kFree — fully asynchronous gossip: no gate, no staleness drops. A node
///    aggregates whatever has arrived when its local step completes; mixing
///    weights renormalize over the neighbors actually heard (the partial-
///    averaging denominator already does exactly this).
///  * kWeighted — like kFree, but each contribution is down-weighted by its
///    age: a payload produced s rounds before the receiver's current round
///    mixes with weight w_ij * staleness_decay^s (stale gossip fades instead
///    of being dropped).
///
/// docs/SIMULATION.md "Aggregation modes" gives the three update formulas.
enum class AsyncMode { kBarrier, kFree, kWeighted };

const char* async_mode_name(AsyncMode mode);

/// Per-node state layout of the synchronous engine:
///
///  * kFull — one DlNode object per simulated node (model, optimizer,
///    sampler). The reference layout; every pre-existing result was
///    produced under it.
///  * kCompact — the 100k–1M-node memory diet: node state is a shared
///    read-only base parameter vector plus a lazily-materialized per-node
///    slot (sim::NodeStateStore), driven through one lane-worker DlNode per
///    execution lane. Requires the counter batch sampler (rebindable
///    streams) and a stateless-node algorithm; with both, results are
///    byte-identical to kFull at any thread count.
enum class NodeState { kFull, kCompact };

const char* node_state_name(NodeState state);

/// Mini-batch sampling discipline (data::Sampler::Mode):
///  * kShuffle — per-epoch reshuffle of the node's shard (the legacy
///    stateful loop; every pre-existing result used it);
///  * kCounter — counter-keyed draws with replacement, a pure function of
///    (node stream seed, step). Seekable/rebindable, hence required by
///    NodeState::kCompact; also valid under kFull (same stream, so full and
///    compact runs of the same config match byte for byte).
enum class BatchSampler { kShuffle, kCounter };

const char* batch_sampler_name(BatchSampler sampler);

struct ExperimentConfig {
  Algorithm algorithm = Algorithm::kJwins;
  std::size_t rounds = 100;

  /// If > 0, stop as soon as mean test accuracy reaches this value (the
  /// Figure 5/6 "rounds to target accuracy" protocol). `rounds` then acts
  /// as the cap.
  double target_accuracy = -1.0;

  std::size_t local_steps = 1;  ///< tau
  nn::Sgd::Options sgd;

  /// Step learning-rate schedule: every `lr_decay_every` rounds multiply
  /// the learning rate by `lr_decay_factor` (1.0 = constant, the paper's
  /// setting).
  double lr_decay_factor = 1.0;
  std::size_t lr_decay_every = 0;  ///< 0 = no decay

  /// Failure injection: probability that any message is dropped in flight
  /// (0 = reliable network). Exercises the partial-averaging robustness the
  /// paper credits JWINS for ("flexible to nodes leaving and joining").
  double message_drop_probability = 0.0;

  std::size_t eval_every = 10;
  std::size_t eval_sample_limit = 512;  ///< test subsample per evaluation
  std::size_t eval_node_limit = 0;      ///< 0 = evaluate every node

  /// Sampled evaluation: when 0 < eval_sample < nodes, every evaluation
  /// (test metrics, mean train loss, JWINS alpha accounting) reduces over a
  /// seeded per-round subset of eval_sample nodes instead of all n — the
  /// O(n)-per-eval fix the 100k–1M scale runs need. The draw is a pure
  /// function of (seed, metric round, n, k) — Experiment::eval_sample_indices
  /// — so it is thread-count invariant and independent of topology state.
  /// 0 or k >= nodes disables sampling (byte-identical to the full reduce).
  /// Mutually exclusive with eval_node_limit.
  std::size_t eval_sample = 0;

  /// Per-node state layout (see NodeState). kCompact trades generality for
  /// memory: validate() enforces its restrictions (sync engine, counter
  /// sampler, stateless-node algorithm, no byzantine/robust/momentum).
  NodeState node_state = NodeState::kFull;

  /// Mini-batch sampling discipline (see BatchSampler). The default keeps
  /// every pre-existing result byte-identical.
  BatchSampler batch_sampler = BatchSampler::kShuffle;

  /// Execution lanes for the per-node phases. Results are bit-identical at
  /// any value (see docs/DESIGN.md); 1 runs fully inline. Benches and
  /// examples default to net::ThreadPool::default_thread_count().
  unsigned threads = 1;
  std::uint64_t seed = 1;

  /// Simulated compute cost per round (identical across algorithms; the
  /// paper's compute is dominated by the same tau SGD steps everywhere).
  /// Straggler multipliers (see `time`) scale this per node.
  double compute_seconds_per_round = 0.05;
  net::LinkModel link;

  /// Heterogeneous link-time & fault-injection configuration (per-edge
  /// bandwidth/latency distributions, stragglers, crash/rejoin schedules,
  /// burst outages — net/time_model.hpp, docs/SIMULATION.md). The default
  /// is the flat `link` model above, under which every result is
  /// byte-identical to the pre-TimeModel engine.
  net::TimeModelConfig time;

  /// Execution engine (see EngineKind). The default is the synchronous
  /// reference loop; every pre-existing result is byte-identical under it.
  EngineKind engine = EngineKind::kSync;

  /// Bounded-staleness window B for the asynchronous engine: a node may
  /// aggregate round r once it has heard from every expected neighbor at
  /// round r - B or later (0 = barrier mode, the exact sync reduction).
  /// Only meaningful with engine = kAsync; validate() rejects it otherwise.
  std::size_t staleness_bound = 0;

  /// Simulated-time budget in seconds: stop the run once the simulated
  /// clock passes this value (0 = off, run to `rounds`). Works under both
  /// engines; under kAsync it is the natural termination mode for runs
  /// where nodes complete different round counts.
  double stop_at_sim_time = 0.0;

  /// Aggregation discipline under engine = kAsync (see AsyncMode). The
  /// default keeps the PR 6 bounded-staleness semantics — and, with
  /// staleness_bound == 0, the byte-exact synchronous reduction. free and
  /// weighted require engine = kAsync and drop the staleness gate, so
  /// staleness_bound must stay 0 under them; validate() enforces both.
  AsyncMode async_mode = AsyncMode::kBarrier;

  /// Age-decay base lambda for async_mode = kWeighted: a contribution s
  /// rounds stale mixes with weight w_ij * lambda^s. Must be in (0, 1];
  /// 1.0 makes kWeighted coincide with kFree. Ignored by the other modes.
  double staleness_decay = 0.5;

  /// Adversarial participants: this many nodes (a seeded deterministic
  /// choice, algo::byzantine_victims — independent of the crash set) corrupt
  /// every payload they transmit under `byzantine_mode`, while training and
  /// aggregating honestly themselves. 0 = no attack, the bit-identical
  /// legacy path (docs/SIMULATION.md "Adversarial behavior").
  std::size_t byzantine_nodes = 0;
  algo::ByzantineMode byzantine_mode = algo::ByzantineMode::kSignFlip;
  /// Multiplier for byzantine_mode = kScale (scenario key
  /// `byzantine_mode = scale:<k>`); ignored by the other modes.
  double byzantine_scale = 1.0;

  /// Robust-aggregation countermeasure applied at every node's aggregation
  /// step (core/averaging.hpp). kNone = plain partial averaging, the exact
  /// legacy path.
  core::RobustAggConfig robust_agg;

  // Algorithm-specific knobs.
  double random_sampling_fraction = 0.37;
  algo::JwinsNode::Options jwins;
  algo::ChocoNode::Options choco;
  algo::PowerGossipNode::Options power_gossip;

  /// Cross-field sanity checks. Returns one "<field>: <why>" message per
  /// violation (empty = valid). Experiment's constructor throws on any
  /// violation; config::expand_grid and the jwins_run CLI report them as
  /// `error: <key>: <why>` diagnostics before anything runs.
  ///
  /// `nodes` enables the checks that need the node count (byzantine_nodes
  /// bounds and the crash/byzantine victim-set overlap); 0 skips them (for
  /// callers that validate before the topology is known).
  std::vector<std::string> validate(std::size_t nodes = 0) const;
};

struct MetricPoint {
  std::size_t round = 0;
  double sim_seconds = 0.0;
  /// Per-phase split of sim_seconds (cumulative, compute + comm == total).
  double sim_compute_seconds = 0.0;
  double sim_comm_seconds = 0.0;
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  double train_loss = 0.0;
  double avg_bytes_per_node = 0.0;
  double avg_metadata_bytes_per_node = 0.0;
};

/// Real (host) wall-clock spent per engine phase, summed over all rounds —
/// the scalability bench's raw material. Unlike sim_seconds these measure
/// this process, so they vary run to run and are excluded from the
/// determinism contract.
struct PhaseTimings {
  double train_seconds = 0.0;
  double share_seconds = 0.0;
  double aggregate_seconds = 0.0;
  double evaluate_seconds = 0.0;
  double total_seconds = 0.0;  ///< whole run(), including bookkeeping
};

/// Simulated-time & fault summary of a run. `extended` is true when the
/// experiment configured anything beyond the flat link model; only then does
/// `sim::write_result_json` emit the "sim_time" block (keeping default-model
/// JSON byte-identical to the pre-TimeModel engine).
struct SimTimeBreakdown {
  bool extended = false;
  double compute_seconds = 0.0;  ///< cumulative simulated compute phase
  double comm_seconds = 0.0;     ///< cumulative simulated communication phase
  std::uint64_t dropped_total = 0;
  std::uint64_t dropped_iid = 0;
  std::uint64_t dropped_edge = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t dropped_crash = 0;
  std::uint64_t crashed_node_rounds = 0;  ///< sum over rounds of down nodes
  std::size_t stragglers = 0;             ///< nodes with a compute multiplier
};

/// Counters of one asynchronous-engine run (sim/event_engine.hpp).
/// `enabled` is true whenever the run used EngineKind::kAsync; `extended`
/// additionally gates the "event_engine" result-JSON block — it is set only
/// when the run configured genuine asynchrony (staleness_bound > 0) or a
/// simulated-time budget, so barrier-mode runs keep their JSON byte-identical
/// to the synchronous engine (the golden-reduction guarantee).
struct EventEngineStats {
  bool enabled = false;
  bool extended = false;
  /// Aggregation discipline the run used (mirrors config; names the
  /// per-mode JSON block).
  AsyncMode mode = AsyncMode::kBarrier;
  std::uint64_t events_processed = 0;
  std::size_t max_queue_depth = 0;
  /// Messages that survived failure injection and reached their receiver's
  /// inbox. sent == delivered + dropped (per-cause) + in_flight.
  std::uint64_t messages_delivered = 0;
  /// Arrival events still queued when the run terminated (budget cut).
  std::uint64_t messages_in_flight = 0;
  /// Delivered messages discarded unapplied because their round tag had
  /// fallen below the receiver's staleness window.
  std::uint64_t messages_stale_dropped = 0;
  /// Blocked nodes force-unblocked by quiescence detection (the event queue
  /// drained while staleness gates still held — e.g. the unblocking message
  /// was lost to failure injection).
  std::uint64_t staleness_overrides = 0;
  /// staleness_histogram[s] = messages applied s rounds after the round
  /// they were produced in (s <= staleness_bound under kBarrier; free and
  /// weighted runs grow the histogram to whatever ages actually occurred).
  std::vector<std::uint64_t> staleness_histogram;
  /// effective_neighbors[k] = local steps that aggregated exactly k heard
  /// contributions (free/weighted modes only — under the barrier gate the
  /// count is pinned by the gate, so the histogram is not collected).
  std::vector<std::uint64_t> effective_neighbors;
  /// Sum of contribution ages (receiver round - message round tag, floored
  /// at 0) over every applied contribution; with contributions_applied it
  /// yields mean_contribution_age(). Free/weighted modes only.
  std::uint64_t contribution_age_sum = 0;
  std::uint64_t contributions_applied = 0;
  /// High-water mark of live per-sender transfer records inside
  /// net::TimeModel (the round_edges_ cache). Records retire as their
  /// transfers deliver or drop, so this stays bounded by the in-flight
  /// message count no matter how long a stop_at_sim_time run gets.
  std::size_t edge_records_high_water = 0;
  /// Local rounds completed per node; under stragglers + a budget these
  /// genuinely diverge (the paper-motivating asynchrony signal).
  std::vector<std::uint64_t> local_steps;

  std::uint64_t local_steps_min() const noexcept;
  std::uint64_t local_steps_max() const noexcept;
  double local_steps_mean() const noexcept;
  double mean_contribution_age() const noexcept;
};

/// Attack/defense accounting of one run. `extended` is true when the run
/// configured byzantine nodes or a non-none robust rule; only then does
/// sim::write_result_json emit the "byzantine" block, so benign runs keep
/// their JSON byte-identical to the pre-adversarial engine.
struct ByzantineStats {
  bool extended = false;
  algo::ByzantineMode mode = algo::ByzantineMode::kSignFlip;
  core::RobustAggKind robust_agg = core::RobustAggKind::kNone;
  /// The seeded victim set (ascending ranks; empty without an attack).
  std::vector<std::uint32_t> attackers;
  /// Messages put on the wire with corrupted values, summed over attackers.
  std::uint64_t corrupted_messages = 0;
  /// Coordinate entries discarded by trimmed_mean, summed over all nodes.
  std::uint64_t trimmed_entries = 0;
  /// Contributions shrunk by norm_clip, summed over all nodes.
  std::uint64_t clipped_contributions = 0;
};

struct ExperimentResult {
  std::vector<MetricPoint> series;
  std::size_t rounds_run = 0;
  double sim_seconds = 0.0;
  net::NodeTraffic total_traffic;
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  bool reached_target = false;
  double mean_alpha = 0.0;  ///< JWINS only: observed mean sharing fraction
  SimTimeBreakdown sim_time;
  EventEngineStats event_engine;  ///< async engine only (enabled == false
                                  ///< under the synchronous engine)
  ByzantineStats byzantine;  ///< attack/defense accounting (extended ==
                             ///< false on benign, defense-free runs)
  PhaseTimings wall;        ///< host wall-clock per phase (not simulated)
};

class EventEngine;

class Experiment {
 public:
  Experiment(ExperimentConfig config, nn::ModelFactory factory,
             const data::Dataset& train, data::Partition partition,
             const data::Dataset& test,
             std::unique_ptr<graph::TopologyProvider> topology);

  ExperimentResult run();

  /// Direct access for tests and probes. node() requires the full node-state
  /// layout (compact runs keep no per-node DlNode objects).
  algo::DlNode& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t node_count() const noexcept { return n_; }
  const net::Network& network() const noexcept { return network_; }

  /// The seeded eval-subset draw: k distinct node indices for metric round
  /// `round`, ascending. A pure function of (seed, round, nodes, k) — no
  /// topology or thread-schedule input, so the subset survives topology
  /// churn and is identical at any thread count. k >= nodes returns all
  /// nodes. Exposed so tests reproduce the engine's draw exactly.
  static std::vector<std::uint32_t> eval_sample_indices(std::uint64_t seed,
                                                        std::size_t round,
                                                        std::size_t nodes,
                                                        std::size_t k);

  /// Mean of `losses` over the metric population (`population` empty = all
  /// indices), excluding nodes failing `alive` from the numerator AND the
  /// denominator — the sampled-population accounting rule. An off-by-
  /// population bug (k-node sum divided by n) cannot hide here: this is the
  /// single mean both engines report as train_loss. Pure; exposed for the
  /// accounting tests.
  static double mean_loss_over(std::span<const float> losses,
                               std::span<const std::uint32_t> population,
                               const std::function<bool(std::size_t)>& alive);

 private:
  /// The discrete-event driver (sim/event_engine.hpp) runs the same nodes,
  /// network, and evaluation machinery this class owns.
  friend class EventEngine;

  MetricPoint evaluate(std::size_t round, double train_loss);
  /// Asynchronous-engine entry point (implemented in event_engine.cpp).
  ExperimentResult run_async();
  /// Compact node-state round loop (NodeState::kCompact).
  ExperimentResult run_compact();
  /// Shared end-of-run bookkeeping: final metrics, traffic totals, and the
  /// sim_time summary (identical operations under both engines).
  void collect_summary(ExperimentResult& result);

  bool compact() const noexcept {
    return config_.node_state == NodeState::kCompact;
  }
  bool eval_sample_active() const noexcept {
    return config_.eval_sample > 0 && config_.eval_sample < n_;
  }
  /// The (cached) subset for one metric round; only called when active.
  const std::vector<std::uint32_t>& eval_subset(std::size_t metric_round);
  /// Metropolis-Hastings weights of round t, cached per topology epoch so
  /// static/slow-churn topologies stop recomputing O(n) weights every round.
  const graph::MixingWeights& mixing_weights(const graph::Graph& g,
                                             std::size_t t);
  /// Points lane-worker `w` at simulated node `i`: rank, shard, sampler
  /// stream position, and parameters from the state store (compact only).
  void bind_worker(algo::DlNode& w, std::size_t i);

  ExperimentConfig config_;
  const data::Dataset* test_;
  std::unique_ptr<graph::TopologyProvider> topology_;
  net::Network network_;
  net::ThreadPool pool_;  ///< workers live as long as the Experiment
  /// One round scratch per execution lane, sized once from the model; the
  /// share/aggregate phases hand lane k's scratch to every node that lane
  /// processes (see docs/PERFORMANCE.md "Memory model of the round loop").
  std::vector<core::RoundScratch> scratch_;
  std::vector<std::unique_ptr<algo::DlNode>> nodes_;
  std::size_t n_ = 0;  ///< simulated node count (nodes_.size() under kFull)
  /// Compact node-state machinery (empty under kFull): the COW parameter
  /// store, one lane-worker DlNode per execution lane, the retained
  /// partition for worker rebinds, and each node's sampler-stream position
  /// (advanced only on rounds the node is alive, mirroring kFull's
  /// per-node samplers under crash schedules).
  std::unique_ptr<NodeStateStore> store_;
  std::vector<std::unique_ptr<algo::DlNode>> workers_;
  data::Partition partition_;
  std::vector<std::uint64_t> steps_done_;
  std::vector<nn::EvalMetrics> eval_buf_;  ///< compact eval scratch
  graph::MixingWeights mh_cache_;
  std::size_t mh_epoch_ = 0;
  bool mh_valid_ = false;
  std::vector<std::uint32_t> subset_cache_;
  std::size_t subset_cache_round_ = static_cast<std::size_t>(-1);
  nn::Batch eval_batch_;
  double alpha_sum_ = 0.0;
  std::size_t alpha_samples_ = 0;
  PhaseTimings wall_;
};

}  // namespace jwins::sim

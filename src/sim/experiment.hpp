// Experiment runner — the top of the simulation stack and the entry point
// every bench and example drives.
//
// An Experiment wires a dataset partition (data/), a model factory (nn/), a
// topology provider (graph/) and one of the algorithms (algo/) into the
// bulk-synchronous D-PSGD round loop (train -> share -> aggregate),
// collecting the metrics the paper reports (paper §IV-B g): average test
// accuracy/loss across nodes, bytes transferred (payload vs metadata via
// net::Network's accounting), and simulated wall-clock time (net::TimeModel
// — flat link by default, per-edge heterogeneity/stragglers/faults via
// ExperimentConfig::time; docs/SIMULATION.md). It also owns the
// cross-cutting protocol knobs — target-accuracy stopping (the
// Figure 5/6 protocol), learning-rate schedules, fault injection,
// and the threaded execution engine (a persistent net::ThreadPool whose
// static chunking + counter-based per-node RNG streams keep `threads = N`
// bit-identical to `threads = 1`; see docs/DESIGN.md "Determinism &
// threading model"). For a minimal end-to-end use see
// examples/quickstart.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/choco.hpp"
#include "algo/full_sharing.hpp"
#include "algo/jwins_node.hpp"
#include "algo/power_gossip.hpp"
#include "algo/random_sampling.hpp"
#include "core/scratch.hpp"
#include "data/partition.hpp"
#include "graph/graph.hpp"
#include "net/network.hpp"
#include "net/thread_pool.hpp"
#include "nn/model.hpp"

namespace jwins::sim {

enum class Algorithm {
  kFullSharing,
  kRandomSampling,
  kJwins,
  kChoco,
  kPowerGossip,
};

const char* algorithm_name(Algorithm algorithm);

/// Which execution engine drives the round structure:
///
///  * kSync — the bulk-synchronous reference loop (train -> share ->
///    aggregate in global lockstep rounds), the golden reference every
///    result so far was produced under;
///  * kAsync — the discrete-event scheduler (sim/event_engine.hpp): nodes
///    are state machines advanced by TrainDone / MessageArrival / LocalStep
///    events, messages arrive when their link says they arrive, and slow
///    nodes genuinely fall behind. With `staleness_bound == 0` (barrier
///    mode) it reduces EXACTLY — byte-for-byte result JSON — to kSync under
///    any TimeModel; a bound B > 0 lets a node run up to B rounds ahead of
///    its neighbors (docs/SIMULATION.md "Asynchronous engine").
enum class EngineKind { kSync, kAsync };

const char* engine_name(EngineKind kind);

/// Aggregation discipline of the asynchronous engine — how a node treats the
/// messages that have (or have not) arrived when its local step fires:
///
///  * kBarrier — the bounded-staleness rule PR 6 shipped: a node waits until
///    every expected neighbor has been heard within `staleness_bound` rounds
///    (B == 0 is the exact synchronous reduction). The only mode with a
///    staleness *gate*.
///  * kFree — fully asynchronous gossip: no gate, no staleness drops. A node
///    aggregates whatever has arrived when its local step completes; mixing
///    weights renormalize over the neighbors actually heard (the partial-
///    averaging denominator already does exactly this).
///  * kWeighted — like kFree, but each contribution is down-weighted by its
///    age: a payload produced s rounds before the receiver's current round
///    mixes with weight w_ij * staleness_decay^s (stale gossip fades instead
///    of being dropped).
///
/// docs/SIMULATION.md "Aggregation modes" gives the three update formulas.
enum class AsyncMode { kBarrier, kFree, kWeighted };

const char* async_mode_name(AsyncMode mode);

struct ExperimentConfig {
  Algorithm algorithm = Algorithm::kJwins;
  std::size_t rounds = 100;

  /// If > 0, stop as soon as mean test accuracy reaches this value (the
  /// Figure 5/6 "rounds to target accuracy" protocol). `rounds` then acts
  /// as the cap.
  double target_accuracy = -1.0;

  std::size_t local_steps = 1;  ///< tau
  nn::Sgd::Options sgd;

  /// Step learning-rate schedule: every `lr_decay_every` rounds multiply
  /// the learning rate by `lr_decay_factor` (1.0 = constant, the paper's
  /// setting).
  double lr_decay_factor = 1.0;
  std::size_t lr_decay_every = 0;  ///< 0 = no decay

  /// Failure injection: probability that any message is dropped in flight
  /// (0 = reliable network). Exercises the partial-averaging robustness the
  /// paper credits JWINS for ("flexible to nodes leaving and joining").
  double message_drop_probability = 0.0;

  std::size_t eval_every = 10;
  std::size_t eval_sample_limit = 512;  ///< test subsample per evaluation
  std::size_t eval_node_limit = 0;      ///< 0 = evaluate every node

  /// Execution lanes for the per-node phases. Results are bit-identical at
  /// any value (see docs/DESIGN.md); 1 runs fully inline. Benches and
  /// examples default to net::ThreadPool::default_thread_count().
  unsigned threads = 1;
  std::uint64_t seed = 1;

  /// Simulated compute cost per round (identical across algorithms; the
  /// paper's compute is dominated by the same tau SGD steps everywhere).
  /// Straggler multipliers (see `time`) scale this per node.
  double compute_seconds_per_round = 0.05;
  net::LinkModel link;

  /// Heterogeneous link-time & fault-injection configuration (per-edge
  /// bandwidth/latency distributions, stragglers, crash/rejoin schedules,
  /// burst outages — net/time_model.hpp, docs/SIMULATION.md). The default
  /// is the flat `link` model above, under which every result is
  /// byte-identical to the pre-TimeModel engine.
  net::TimeModelConfig time;

  /// Execution engine (see EngineKind). The default is the synchronous
  /// reference loop; every pre-existing result is byte-identical under it.
  EngineKind engine = EngineKind::kSync;

  /// Bounded-staleness window B for the asynchronous engine: a node may
  /// aggregate round r once it has heard from every expected neighbor at
  /// round r - B or later (0 = barrier mode, the exact sync reduction).
  /// Only meaningful with engine = kAsync; validate() rejects it otherwise.
  std::size_t staleness_bound = 0;

  /// Simulated-time budget in seconds: stop the run once the simulated
  /// clock passes this value (0 = off, run to `rounds`). Works under both
  /// engines; under kAsync it is the natural termination mode for runs
  /// where nodes complete different round counts.
  double stop_at_sim_time = 0.0;

  /// Aggregation discipline under engine = kAsync (see AsyncMode). The
  /// default keeps the PR 6 bounded-staleness semantics — and, with
  /// staleness_bound == 0, the byte-exact synchronous reduction. free and
  /// weighted require engine = kAsync and drop the staleness gate, so
  /// staleness_bound must stay 0 under them; validate() enforces both.
  AsyncMode async_mode = AsyncMode::kBarrier;

  /// Age-decay base lambda for async_mode = kWeighted: a contribution s
  /// rounds stale mixes with weight w_ij * lambda^s. Must be in (0, 1];
  /// 1.0 makes kWeighted coincide with kFree. Ignored by the other modes.
  double staleness_decay = 0.5;

  /// Adversarial participants: this many nodes (a seeded deterministic
  /// choice, algo::byzantine_victims — independent of the crash set) corrupt
  /// every payload they transmit under `byzantine_mode`, while training and
  /// aggregating honestly themselves. 0 = no attack, the bit-identical
  /// legacy path (docs/SIMULATION.md "Adversarial behavior").
  std::size_t byzantine_nodes = 0;
  algo::ByzantineMode byzantine_mode = algo::ByzantineMode::kSignFlip;
  /// Multiplier for byzantine_mode = kScale (scenario key
  /// `byzantine_mode = scale:<k>`); ignored by the other modes.
  double byzantine_scale = 1.0;

  /// Robust-aggregation countermeasure applied at every node's aggregation
  /// step (core/averaging.hpp). kNone = plain partial averaging, the exact
  /// legacy path.
  core::RobustAggConfig robust_agg;

  // Algorithm-specific knobs.
  double random_sampling_fraction = 0.37;
  algo::JwinsNode::Options jwins;
  algo::ChocoNode::Options choco;
  algo::PowerGossipNode::Options power_gossip;

  /// Cross-field sanity checks. Returns one "<field>: <why>" message per
  /// violation (empty = valid). Experiment's constructor throws on any
  /// violation; config::expand_grid and the jwins_run CLI report them as
  /// `error: <key>: <why>` diagnostics before anything runs.
  ///
  /// `nodes` enables the checks that need the node count (byzantine_nodes
  /// bounds and the crash/byzantine victim-set overlap); 0 skips them (for
  /// callers that validate before the topology is known).
  std::vector<std::string> validate(std::size_t nodes = 0) const;
};

struct MetricPoint {
  std::size_t round = 0;
  double sim_seconds = 0.0;
  /// Per-phase split of sim_seconds (cumulative, compute + comm == total).
  double sim_compute_seconds = 0.0;
  double sim_comm_seconds = 0.0;
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  double train_loss = 0.0;
  double avg_bytes_per_node = 0.0;
  double avg_metadata_bytes_per_node = 0.0;
};

/// Real (host) wall-clock spent per engine phase, summed over all rounds —
/// the scalability bench's raw material. Unlike sim_seconds these measure
/// this process, so they vary run to run and are excluded from the
/// determinism contract.
struct PhaseTimings {
  double train_seconds = 0.0;
  double share_seconds = 0.0;
  double aggregate_seconds = 0.0;
  double evaluate_seconds = 0.0;
  double total_seconds = 0.0;  ///< whole run(), including bookkeeping
};

/// Simulated-time & fault summary of a run. `extended` is true when the
/// experiment configured anything beyond the flat link model; only then does
/// `sim::write_result_json` emit the "sim_time" block (keeping default-model
/// JSON byte-identical to the pre-TimeModel engine).
struct SimTimeBreakdown {
  bool extended = false;
  double compute_seconds = 0.0;  ///< cumulative simulated compute phase
  double comm_seconds = 0.0;     ///< cumulative simulated communication phase
  std::uint64_t dropped_total = 0;
  std::uint64_t dropped_iid = 0;
  std::uint64_t dropped_edge = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t dropped_crash = 0;
  std::uint64_t crashed_node_rounds = 0;  ///< sum over rounds of down nodes
  std::size_t stragglers = 0;             ///< nodes with a compute multiplier
};

/// Counters of one asynchronous-engine run (sim/event_engine.hpp).
/// `enabled` is true whenever the run used EngineKind::kAsync; `extended`
/// additionally gates the "event_engine" result-JSON block — it is set only
/// when the run configured genuine asynchrony (staleness_bound > 0) or a
/// simulated-time budget, so barrier-mode runs keep their JSON byte-identical
/// to the synchronous engine (the golden-reduction guarantee).
struct EventEngineStats {
  bool enabled = false;
  bool extended = false;
  /// Aggregation discipline the run used (mirrors config; names the
  /// per-mode JSON block).
  AsyncMode mode = AsyncMode::kBarrier;
  std::uint64_t events_processed = 0;
  std::size_t max_queue_depth = 0;
  /// Messages that survived failure injection and reached their receiver's
  /// inbox. sent == delivered + dropped (per-cause) + in_flight.
  std::uint64_t messages_delivered = 0;
  /// Arrival events still queued when the run terminated (budget cut).
  std::uint64_t messages_in_flight = 0;
  /// Delivered messages discarded unapplied because their round tag had
  /// fallen below the receiver's staleness window.
  std::uint64_t messages_stale_dropped = 0;
  /// Blocked nodes force-unblocked by quiescence detection (the event queue
  /// drained while staleness gates still held — e.g. the unblocking message
  /// was lost to failure injection).
  std::uint64_t staleness_overrides = 0;
  /// staleness_histogram[s] = messages applied s rounds after the round
  /// they were produced in (s <= staleness_bound under kBarrier; free and
  /// weighted runs grow the histogram to whatever ages actually occurred).
  std::vector<std::uint64_t> staleness_histogram;
  /// effective_neighbors[k] = local steps that aggregated exactly k heard
  /// contributions (free/weighted modes only — under the barrier gate the
  /// count is pinned by the gate, so the histogram is not collected).
  std::vector<std::uint64_t> effective_neighbors;
  /// Sum of contribution ages (receiver round - message round tag, floored
  /// at 0) over every applied contribution; with contributions_applied it
  /// yields mean_contribution_age(). Free/weighted modes only.
  std::uint64_t contribution_age_sum = 0;
  std::uint64_t contributions_applied = 0;
  /// High-water mark of live per-sender transfer records inside
  /// net::TimeModel (the round_edges_ cache). Records retire as their
  /// transfers deliver or drop, so this stays bounded by the in-flight
  /// message count no matter how long a stop_at_sim_time run gets.
  std::size_t edge_records_high_water = 0;
  /// Local rounds completed per node; under stragglers + a budget these
  /// genuinely diverge (the paper-motivating asynchrony signal).
  std::vector<std::uint64_t> local_steps;

  std::uint64_t local_steps_min() const noexcept;
  std::uint64_t local_steps_max() const noexcept;
  double local_steps_mean() const noexcept;
  double mean_contribution_age() const noexcept;
};

/// Attack/defense accounting of one run. `extended` is true when the run
/// configured byzantine nodes or a non-none robust rule; only then does
/// sim::write_result_json emit the "byzantine" block, so benign runs keep
/// their JSON byte-identical to the pre-adversarial engine.
struct ByzantineStats {
  bool extended = false;
  algo::ByzantineMode mode = algo::ByzantineMode::kSignFlip;
  core::RobustAggKind robust_agg = core::RobustAggKind::kNone;
  /// The seeded victim set (ascending ranks; empty without an attack).
  std::vector<std::uint32_t> attackers;
  /// Messages put on the wire with corrupted values, summed over attackers.
  std::uint64_t corrupted_messages = 0;
  /// Coordinate entries discarded by trimmed_mean, summed over all nodes.
  std::uint64_t trimmed_entries = 0;
  /// Contributions shrunk by norm_clip, summed over all nodes.
  std::uint64_t clipped_contributions = 0;
};

struct ExperimentResult {
  std::vector<MetricPoint> series;
  std::size_t rounds_run = 0;
  double sim_seconds = 0.0;
  net::NodeTraffic total_traffic;
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  bool reached_target = false;
  double mean_alpha = 0.0;  ///< JWINS only: observed mean sharing fraction
  SimTimeBreakdown sim_time;
  EventEngineStats event_engine;  ///< async engine only (enabled == false
                                  ///< under the synchronous engine)
  ByzantineStats byzantine;  ///< attack/defense accounting (extended ==
                             ///< false on benign, defense-free runs)
  PhaseTimings wall;        ///< host wall-clock per phase (not simulated)
};

class EventEngine;

class Experiment {
 public:
  Experiment(ExperimentConfig config, nn::ModelFactory factory,
             const data::Dataset& train, data::Partition partition,
             const data::Dataset& test,
             std::unique_ptr<graph::TopologyProvider> topology);

  ExperimentResult run();

  /// Direct access for tests and probes.
  algo::DlNode& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  const net::Network& network() const noexcept { return network_; }

 private:
  /// The discrete-event driver (sim/event_engine.hpp) runs the same nodes,
  /// network, and evaluation machinery this class owns.
  friend class EventEngine;

  MetricPoint evaluate(std::size_t round, double train_loss);
  /// Asynchronous-engine entry point (implemented in event_engine.cpp).
  ExperimentResult run_async();
  /// Shared end-of-run bookkeeping: final metrics, traffic totals, and the
  /// sim_time summary (identical operations under both engines).
  void collect_summary(ExperimentResult& result);

  ExperimentConfig config_;
  const data::Dataset* test_;
  std::unique_ptr<graph::TopologyProvider> topology_;
  net::Network network_;
  net::ThreadPool pool_;  ///< workers live as long as the Experiment
  /// One round scratch per execution lane, sized once from the model; the
  /// share/aggregate phases hand lane k's scratch to every node that lane
  /// processes (see docs/PERFORMANCE.md "Memory model of the round loop").
  std::vector<core::RoundScratch> scratch_;
  std::vector<std::unique_ptr<algo::DlNode>> nodes_;
  nn::Batch eval_batch_;
  double alpha_sum_ = 0.0;
  std::size_t alpha_samples_ = 0;
  PhaseTimings wall_;
};

}  // namespace jwins::sim

// Console reporting helpers: the benches print the same rows/series the
// paper's tables and figures show, via these formatters.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/experiment.hpp"

namespace jwins::sim {

/// "1.23 KiB" / "4.56 MiB" / "7.89 GiB" formatting.
std::string format_bytes(double bytes);

/// "12.3 s" / "4.5 min" formatting.
std::string format_seconds(double seconds);

/// Prints a metric series as CSV: round,sim_seconds,acc,loss,bytes,metadata.
void print_series_csv(std::ostream& os, const std::string& label,
                      const ExperimentResult& result);

/// One Table-I style summary row.
void print_summary_row(std::ostream& os, const std::string& dataset,
                       const std::string& algorithm,
                       const ExperimentResult& result);

}  // namespace jwins::sim

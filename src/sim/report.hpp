// Console reporting helpers: the benches print the same rows/series the
// paper's tables and figures show, via these formatters.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/experiment.hpp"

namespace jwins::sim {

/// "1.23 KiB" / "4.56 MiB" / "7.89 GiB" formatting.
std::string format_bytes(double bytes);

/// "12.3 s" / "4.5 min" formatting.
std::string format_seconds(double seconds);

/// Prints a metric series as CSV: round,sim_seconds,acc,loss,bytes,metadata.
void print_series_csv(std::ostream& os, const std::string& label,
                      const ExperimentResult& result);

/// One Table-I style summary row.
void print_summary_row(std::ostream& os, const std::string& dataset,
                       const std::string& algorithm,
                       const ExperimentResult& result);

/// Round-trip-exact, locale-independent JSON number (%.17g). Non-finite
/// values have no JSON representation and become null.
std::string json_number(double v);

/// JSON string literal with quote/backslash/control-character escaping.
std::string json_string(const std::string& s);

/// Machine-readable result for downstream plotting (the jwins_run CLI's
/// output format): the full metric series, per-phase host wall-clock, and
/// the payload/metadata traffic split. Runs under a heterogeneous or
/// fault-injecting time model additionally carry a "sim_time" block
/// (simulated compute/comm split, per-cause drop counters, and the
/// per-evaluation simulated-time series); under the default flat model the
/// block is omitted so the report shape is unchanged (docs/SIMULATION.md).
/// Runs under the asynchronous event engine with genuine asynchrony
/// (staleness_bound > 0 or a sim-time budget) likewise carry an
/// "event_engine" block — event/queue counters, the message conservation
/// ledger (delivered / in-flight / stale-dropped), the staleness histogram,
/// and the per-node local-step spread; barrier-mode async runs omit it so
/// their JSON stays byte-identical to the synchronous engine.
/// The output is deterministic — the same ExperimentResult always produces
/// the same bytes (doubles are emitted round-trip exactly via %.17g) —
/// EXCEPT the "wall_seconds" block, which measures this host; pass
/// include_wall = false when comparing JSON across runs (the determinism
/// tests do).
void write_result_json(std::ostream& os, const std::string& label,
                       const ExperimentResult& result,
                       bool include_wall = true);

}  // namespace jwins::sim

#include "sim/node_state.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace jwins::sim {

namespace {

/// Chunk granularity: ~1 MiB of floats per chunk keeps allocation count low
/// at 1M nodes without over-reserving tiny runs.
constexpr std::size_t kTargetChunkFloats = 256 * 1024;

}  // namespace

NodeStateStore::NodeStateStore(std::size_t nodes, std::span<const float> base)
    : params_(base.size()),
      slots_per_chunk_(std::max<std::size_t>(1, kTargetChunkFloats /
                                                    std::max<std::size_t>(
                                                        1, base.size()))),
      base_(base.begin(), base.end()),
      slot_of_(nodes, kShared) {
  if (nodes == 0) throw std::invalid_argument("NodeStateStore: no nodes");
  if (params_ == 0) throw std::invalid_argument("NodeStateStore: no params");
  // Reserve the chunk table to its maximum so push_back never reallocates
  // while other lanes dereference earlier chunks.
  chunks_.reserve(nodes / slots_per_chunk_ + 1);
}

std::span<float> NodeStateStore::slot(std::size_t node) {
  std::uint32_t s = slot_of_[node];
  if (s == kShared) {
    {
      std::lock_guard<std::mutex> lock(slab_lock_);
      s = next_slot_++;
      if (s / slots_per_chunk_ == chunks_.size()) {
        chunks_.push_back(
            std::make_unique<float[]>(slots_per_chunk_ * params_));
      }
    }
    // Base copy + table publish happen outside the lock: this node's slot
    // and table entry are exclusively ours inside the phase.
    std::memcpy(slot_data(s), base_.data(), params_ * sizeof(float));
    slot_of_[node] = s;
  }
  return {slot_data(s), params_};
}

void NodeStateStore::store(std::size_t node, std::span<const float> params) {
  if (params.size() != params_) {
    throw std::invalid_argument("NodeStateStore: size mismatch");
  }
  std::span<float> dst = slot(node);
  std::memcpy(dst.data(), params.data(), params_ * sizeof(float));
}

std::size_t NodeStateStore::memory_bytes() const noexcept {
  return base_.capacity() * sizeof(float) +
         slot_of_.capacity() * sizeof(std::uint32_t) +
         chunks_.size() * slots_per_chunk_ * params_ * sizeof(float) +
         chunks_.capacity() * sizeof(chunks_[0]);
}

}  // namespace jwins::sim

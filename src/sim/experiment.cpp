#include "sim/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "dwt/wavelet.hpp"

namespace jwins::sim {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFullSharing: return "full-sharing";
    case Algorithm::kRandomSampling: return "random-sampling";
    case Algorithm::kJwins: return "jwins";
    case Algorithm::kChoco: return "choco";
    case Algorithm::kPowerGossip: return "power-gossip";
  }
  return "unknown";
}

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSync: return "sync";
    case EngineKind::kAsync: return "async";
  }
  return "unknown";
}

const char* async_mode_name(AsyncMode mode) {
  switch (mode) {
    case AsyncMode::kBarrier: return "barrier";
    case AsyncMode::kFree: return "free";
    case AsyncMode::kWeighted: return "weighted";
  }
  return "unknown";
}

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kFull: return "full";
    case NodeState::kCompact: return "compact";
  }
  return "unknown";
}

const char* batch_sampler_name(BatchSampler sampler) {
  switch (sampler) {
    case BatchSampler::kShuffle: return "shuffle";
    case BatchSampler::kCounter: return "counter";
  }
  return "unknown";
}

namespace {

/// Stream tag separating each node's mini-batch sampler from its other
/// random draws (see core::derive_seed).
constexpr std::uint64_t kSamplerStream = 0xDA7A;

/// Stream tag of the per-round eval-subset draw (eval_sample).
constexpr std::uint64_t kEvalSampleStream = 0xE7A1;

/// Full-engine batch-size rule; the compact lane workers use the cap alone
/// (Sampler::next() clamps to the bound shard, so the effective batch is
/// min(kBatchCap, shard size) in both layouts).
constexpr std::size_t kBatchCap = 16;

/// Times one engine phase, accumulating real seconds into `slot`.
template <class Fn>
void timed_phase(double& slot, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  slot += std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
}

}  // namespace

std::vector<std::string> ExperimentConfig::validate(std::size_t nodes) const {
  std::vector<std::string> errors;
  auto require = [&](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  require(rounds >= 1, "rounds: must be >= 1");
  require(local_steps >= 1, "local_steps: must be >= 1");
  require(std::isfinite(sgd.learning_rate) && sgd.learning_rate > 0.0f,
          "learning_rate: must be > 0");
  require(sgd.momentum >= 0.0f && sgd.momentum < 1.0f,
          "momentum: must be in [0, 1)");
  require(sgd.weight_decay >= 0.0f, "weight_decay: must be >= 0");
  require(target_accuracy <= 1.0,
          "target_accuracy: must be <= 1 (a fraction, not a percentage)");
  require(lr_decay_factor > 0.0 && lr_decay_factor <= 1.0,
          "lr_decay_factor: must be in (0, 1]");
  require(message_drop_probability >= 0.0 && message_drop_probability < 1.0,
          "message_drop_probability: must be in [0, 1)");
  require(eval_every >= 1,
          "eval_every: must be >= 1 (0 would divide by zero in the round loop)");
  require(eval_sample_limit >= 1, "eval_sample_limit: must be >= 1");
  require(eval_sample == 0 || eval_node_limit == 0,
          "eval_sample: conflicts with eval_node_limit (two node-subset "
          "rules; pick one)");
  if (node_state == NodeState::kCompact) {
    require(engine == EngineKind::kSync,
            "node_state: compact requires engine = sync");
    require(batch_sampler == BatchSampler::kCounter,
            "node_state: compact requires batch_sampler = counter (the "
            "shuffle sampler's stream is stateful and cannot be rebound "
            "across nodes)");
    require(algorithm == Algorithm::kRandomSampling ||
                algorithm == Algorithm::kFullSharing,
            "node_state: compact supports algorithm = random-sampling or "
            "full-sharing (algorithms whose node state is the parameter "
            "vector alone)");
    require(byzantine_nodes == 0,
            "node_state: compact does not support byzantine_nodes (per-node "
            "attacker flags need full node objects)");
    require(robust_agg.kind == core::RobustAggKind::kNone,
            "node_state: compact requires robust_agg = none (per-node "
            "robust counters need full node objects)");
    require(sgd.momentum == 0.0f,
            "node_state: compact requires momentum = 0 (momentum keeps "
            "per-node optimizer state)");
  }
  require(compute_seconds_per_round >= 0.0,
          "compute_seconds_per_round: must be >= 0");
  require(staleness_bound == 0 || engine == EngineKind::kAsync,
          "staleness_bound: requires engine = async (the synchronous loop "
          "has no staleness to bound)");
  require(async_mode == AsyncMode::kBarrier || engine == EngineKind::kAsync,
          "async_mode: free/weighted require engine = async (the "
          "synchronous loop has no asynchrony to aggregate under)");
  require(async_mode == AsyncMode::kBarrier || staleness_bound == 0,
          "staleness_bound: only async_mode = barrier has a staleness gate "
          "to bound (free/weighted apply every arrival)");
  require(std::isfinite(staleness_decay) && staleness_decay > 0.0 &&
              staleness_decay <= 1.0,
          "staleness_decay: must be in (0, 1] (1 = no decay)");
  require(std::isfinite(stop_at_sim_time) && stop_at_sim_time >= 0.0,
          "stop_at_sim_time: must be >= 0 (seconds of simulated time; 0 = "
          "off)");
  require(link.bandwidth_bytes_per_sec > 0.0, "bandwidth: must be > 0");
  require(link.latency_sec >= 0.0, "latency: must be >= 0");
  for (std::string& e : time.validate()) errors.push_back(std::move(e));
  require(random_sampling_fraction > 0.0 && random_sampling_fraction <= 1.0,
          "random_sampling_fraction: must be in (0, 1]");
  if (jwins.ranker.use_wavelet) {
    require(jwins.ranker.levels >= 1, "jwins_levels: must be >= 1");
    try {
      dwt::wavelet_by_name(jwins.ranker.wavelet);
    } catch (const std::exception&) {
      errors.push_back("jwins_wavelet: unknown wavelet \"" +
                       jwins.ranker.wavelet +
                       "\" (valid: haar, db2, sym2, db4)");
    }
  }
  require(choco.gamma > 0.0 && choco.gamma <= 1.0,
          "choco_gamma: must be in (0, 1]");
  require(choco.fraction > 0.0 && choco.fraction <= 1.0,
          "choco_fraction: must be in (0, 1]");
  require(choco.qsgd_levels >= 1, "choco_qsgd_levels: must be >= 1");
  require(power_gossip.gamma > 0.0, "power_gossip_gamma: must be > 0");
  require(std::isfinite(byzantine_scale),
          "byzantine_mode: scale multiplier must be finite");
  require(robust_agg.trim_fraction >= 0.0 && robust_agg.trim_fraction < 0.5,
          "robust_agg: trim fraction must be in [0, 0.5) (trimming half or "
          "more leaves no survivors)");
  require(robust_agg.kind != core::RobustAggKind::kNormClip ||
              (std::isfinite(robust_agg.clip_norm) &&
               robust_agg.clip_norm > 0.0),
          "robust_agg: clip norm must be > 0");
  require(algorithm != Algorithm::kPowerGossip ||
              (robust_agg.kind != core::RobustAggKind::kTrimmedMean &&
               robust_agg.kind != core::RobustAggKind::kMedian),
          "robust_agg: trimmed_mean/median are undefined for power-gossip "
          "(per-edge rank-1 payloads have no coordinate-wise aggregate); "
          "use none or norm_clip");
  if (nodes > 0 && byzantine_nodes > 0) {
    if (byzantine_nodes >= nodes) {
      errors.push_back("byzantine_nodes: must leave at least one honest node "
                       "(got byzantine_nodes=" +
                       std::to_string(byzantine_nodes) +
                       ", nodes=" + std::to_string(nodes) + ")");
    } else if (time.crash_nodes > 0 && time.crash_nodes < nodes) {
      // Latent-gap fix: the crash and byzantine victim sets are independent
      // seeded draws, so they can collide — a node that is simultaneously
      // crashed and byzantine would silently mount no attack during its
      // crash window. Reproduce both sets (pure functions of seed/nodes)
      // and reject the overlap.
      const net::TimeModel probe(nodes, link, time, seed);
      std::string overlap;
      for (const std::uint32_t v :
           algo::byzantine_victims(seed, nodes, byzantine_nodes)) {
        if (probe.node_crashes(v)) {
          if (!overlap.empty()) overlap += ", ";
          overlap += std::to_string(v);
        }
      }
      if (!overlap.empty()) {
        errors.push_back(
            "byzantine_nodes: node(s) " + overlap +
            " are both crashed and byzantine (the seeded victim sets "
            "overlap; change seed, crash_nodes, or byzantine_nodes)");
      }
    }
  }
  return errors;
}

Experiment::Experiment(ExperimentConfig config, nn::ModelFactory factory,
                       const data::Dataset& train, data::Partition partition,
                       const data::Dataset& test,
                       std::unique_ptr<graph::TopologyProvider> topology)
    : config_(std::move(config)),
      test_(&test),
      topology_(std::move(topology)),
      network_(partition.size(),
               net::TimeModel(partition.size(), config_.link, config_.time,
                              config_.seed)),
      pool_(config_.threads) {
  const std::size_t n = partition.size();
  n_ = n;
  if (n == 0) throw std::invalid_argument("Experiment: empty partition");
  if (const auto errors = config_.validate(n); !errors.empty()) {
    std::string joined = "Experiment: invalid config";
    for (const std::string& e : errors) joined += "\n  " + e;
    throw std::invalid_argument(joined);
  }
  algo::TrainConfig train_config{config_.local_steps, config_.sgd,
                                 config_.seed};
  // PowerGossip's edge vectors are shared randomness: both endpoints must
  // derive them from the same base seed, so fold the experiment seed in
  // once, identically for every node (not per rank).
  config_.power_gossip.seed =
      core::derive_seed(config_.seed, 0, 0, config_.power_gossip.seed);
  const data::Sampler::Mode sampler_mode =
      config_.batch_sampler == BatchSampler::kCounter
          ? data::Sampler::Mode::kCounter
          : data::Sampler::Mode::kShuffle;
  if (compact()) {
    // Compact layout: no per-node objects. One lane-worker DlNode per
    // execution lane (rebound to each simulated node in turn) over a shared
    // COW parameter store; the partition is retained for rebinds and each
    // node keeps only a sampler-stream position.
    partition_ = std::move(partition);
    for (const auto& shard : partition_) {
      if (shard.empty()) {
        throw std::invalid_argument("Experiment: empty partition shard");
      }
    }
    const unsigned lanes = pool_.thread_count();
    workers_.reserve(lanes);
    for (unsigned l = 0; l < lanes; ++l) {
      auto model = factory();
      data::Sampler sampler(
          train, partition_[0], kBatchCap,
          core::derive_seed(config_.seed, 0, 0, kSamplerStream),
          data::Sampler::Mode::kCounter);
      // Placeholder identity; bind_worker() retargets before every use.
      if (config_.algorithm == Algorithm::kRandomSampling) {
        workers_.push_back(std::make_unique<algo::RandomSamplingNode>(
            0, std::move(model), std::move(sampler), train_config,
            config_.random_sampling_fraction, config_.seed));
      } else {
        workers_.push_back(std::make_unique<algo::FullSharingNode>(
            0, std::move(model), std::move(sampler), train_config));
      }
    }
    // All nodes start from the factory's identical x^(0,0): worker 0's
    // fresh parameters ARE the shared base.
    store_ = std::make_unique<NodeStateStore>(
        n, workers_.front()->flat_params());
    steps_done_.assign(n, 0);
  } else {
    nodes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto model = factory();
      data::Sampler sampler(
          train, partition[i], /*batch_size=*/
          std::max<std::size_t>(
              1, std::min<std::size_t>(kBatchCap, partition[i].size())),
          core::derive_seed(config_.seed, i, 0, kSamplerStream),
          sampler_mode);
      const auto rank = static_cast<std::uint32_t>(i);
      switch (config_.algorithm) {
        case Algorithm::kFullSharing:
          nodes_.push_back(std::make_unique<algo::FullSharingNode>(
              rank, std::move(model), std::move(sampler), train_config));
          break;
        case Algorithm::kRandomSampling:
          nodes_.push_back(std::make_unique<algo::RandomSamplingNode>(
              rank, std::move(model), std::move(sampler), train_config,
              config_.random_sampling_fraction, config_.seed));
          break;
        case Algorithm::kJwins:
          nodes_.push_back(std::make_unique<algo::JwinsNode>(
              rank, std::move(model), std::move(sampler), train_config,
              config_.jwins));
          break;
        case Algorithm::kChoco:
          nodes_.push_back(std::make_unique<algo::ChocoNode>(
              rank, std::move(model), std::move(sampler), train_config,
              config_.choco));
          break;
        case Algorithm::kPowerGossip:
          nodes_.push_back(std::make_unique<algo::PowerGossipNode>(
              rank, std::move(model), std::move(sampler), train_config,
              config_.power_gossip));
          break;
      }
    }
  }
  // Staleness-weighted mixing (AsyncMode::kWeighted): nodes scale each
  // contribution by staleness_decay^age at aggregation time. The other
  // modes leave the default decay of 1.0, whose scaling path is the
  // bit-identical no-op every golden test pins.
  if (config_.async_mode == AsyncMode::kWeighted) {
    for (auto& node : nodes_) {
      node->set_staleness_decay(config_.staleness_decay);
    }
  }
  // Adversarial behavior: mark the seeded victim set (corruption is applied
  // inside share(), so it flows through the real codec/network path on both
  // engines) and install the robust countermeasure on every node. Honest,
  // defense-free runs never enter either branch — the bit-identical legacy
  // path tests/test_byzantine.cpp pins.
  if (config_.byzantine_nodes > 0) {
    for (const std::uint32_t v : algo::byzantine_victims(
             config_.seed, n, config_.byzantine_nodes)) {
      nodes_[v]->set_byzantine(config_.byzantine_mode,
                               config_.byzantine_scale);
    }
  }
  if (config_.robust_agg.kind != core::RobustAggKind::kNone) {
    for (auto& node : nodes_) node->set_robust_agg(config_.robust_agg);
  }
  eval_batch_ = data::full_batch(*test_, config_.eval_sample_limit);
  if (config_.message_drop_probability > 0.0) {
    network_.set_drop(config_.message_drop_probability, config_.seed);
  }
  // One scratch per execution lane, arena pre-sized from the model so the
  // very first round already runs without heap growth. Lanes are exclusive
  // (static chunking), so scratches are never shared between running calls.
  scratch_.resize(pool_.thread_count());
  const std::size_t params = compact() ? workers_.front()->param_count()
                                       : nodes_.front()->param_count();
  for (core::RoundScratch& s : scratch_) s.reserve_for_model(params);
}

std::vector<std::uint32_t> Experiment::eval_sample_indices(std::uint64_t seed,
                                                           std::size_t round,
                                                           std::size_t nodes,
                                                           std::size_t k) {
  std::vector<std::uint32_t> out;
  if (k >= nodes) {
    out.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      out[i] = static_cast<std::uint32_t>(i);
    }
    return out;
  }
  // Rejection-sampled distinct draw from a counter stream keyed on the
  // metric round alone: no topology, thread, or history input.
  core::CounterRng rng(seed, 0, round, kEvalSampleStream);
  std::vector<std::uint8_t> taken(nodes, 0);
  out.reserve(k);
  while (out.size() < k) {
    const auto u = static_cast<std::uint32_t>(rng() % nodes);
    if (!taken[u]) {
      taken[u] = 1;
      out.push_back(u);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double Experiment::mean_loss_over(
    std::span<const float> losses, std::span<const std::uint32_t> population,
    const std::function<bool(std::size_t)>& alive) {
  double sum = 0.0;
  std::size_t count = 0;
  if (population.empty()) {
    for (std::size_t i = 0; i < losses.size(); ++i) {
      if (!alive(i)) continue;
      sum += losses[i];
      ++count;
    }
  } else {
    for (const std::uint32_t i : population) {
      if (!alive(i)) continue;
      sum += losses[i];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

const std::vector<std::uint32_t>& Experiment::eval_subset(
    std::size_t metric_round) {
  if (subset_cache_round_ != metric_round) {
    subset_cache_ = eval_sample_indices(config_.seed, metric_round, n_,
                                        config_.eval_sample);
    subset_cache_round_ = metric_round;
  }
  return subset_cache_;
}

const graph::MixingWeights& Experiment::mixing_weights(const graph::Graph& g,
                                                       std::size_t t) {
  const std::size_t epoch = topology_->round_epoch(t);
  if (!mh_valid_ || mh_epoch_ != epoch) {
    mh_cache_ = graph::metropolis_hastings(g);
    mh_epoch_ = epoch;
    mh_valid_ = true;
  }
  return mh_cache_;
}

void Experiment::bind_worker(algo::DlNode& w, std::size_t i) {
  w.rebind(static_cast<std::uint32_t>(i), partition_[i],
           core::derive_seed(config_.seed, i, 0, kSamplerStream),
           steps_done_[i]);
  w.set_flat_params(store_->view(i));
}

MetricPoint Experiment::evaluate(std::size_t round, double train_loss) {
  MetricPoint point;
  point.round = round;
  point.sim_seconds = network_.simulated_seconds();
  point.sim_compute_seconds = network_.simulated_compute_seconds();
  point.sim_comm_seconds = network_.simulated_comm_seconds();
  point.train_loss = train_loss;
  // The metric population: the seeded per-round subset under eval_sample,
  // the first-N prefix under eval_node_limit, every node otherwise (the two
  // subset rules are mutually exclusive by validation).
  const std::vector<std::uint32_t>* subset =
      eval_sample_active() ? &eval_subset(round) : nullptr;
  const std::size_t count =
      subset ? subset->size()
             : (config_.eval_node_limit == 0
                    ? n_
                    : std::min(config_.eval_node_limit, n_));
  // Ordered reduction: per-node metrics are computed in parallel but summed
  // in rank order, so the reported means are thread-count independent.
  nn::EvalMetrics sums;
  timed_phase(wall_.evaluate_seconds, [&] {
    if (compact()) {
      // Lane workers need a lane id, which parallel_reduce's map does not
      // carry: materialize per-index metrics, then fold sequentially in
      // index order — the exact summation order of the reduce below.
      eval_buf_.assign(count, nn::EvalMetrics{});
      pool_.parallel_for_lane(count, [&](unsigned lane, std::size_t j) {
        const std::size_t node = subset ? (*subset)[j] : j;
        algo::DlNode& w = *workers_[lane];
        w.set_flat_params(store_->view(node));
        eval_buf_[j] = w.model().evaluate(eval_batch_);
      });
      for (const nn::EvalMetrics& m : eval_buf_) {
        sums.accuracy += m.accuracy;
        sums.loss += m.loss;
      }
    } else {
      sums = pool_.parallel_reduce(
          count, nn::EvalMetrics{},
          [&](std::size_t j) {
            const std::size_t node = subset ? (*subset)[j] : j;
            return nodes_[node]->model().evaluate(eval_batch_);
          },
          [](nn::EvalMetrics a, const nn::EvalMetrics& b) {
            a.accuracy += b.accuracy;
            a.loss += b.loss;
            return a;
          });
    }
  });
  point.test_accuracy = sums.accuracy / static_cast<double>(count);
  point.test_loss = sums.loss / static_cast<double>(count);
  point.avg_bytes_per_node = network_.traffic().average_bytes_per_node();
  point.avg_metadata_bytes_per_node =
      static_cast<double>(network_.traffic().total().metadata_bytes_sent) /
      static_cast<double>(n_);
  return point;
}

ExperimentResult Experiment::run() {
  if (config_.engine == EngineKind::kAsync) {
    return run_async();  // the discrete-event driver (event_engine.cpp)
  }
  if (compact()) {
    return run_compact();  // lane workers over the COW state store
  }
  const auto run_start = std::chrono::steady_clock::now();
  ExperimentResult result;
  const std::size_t n = nodes_.size();
  std::vector<float> train_losses(n, 0.0f);
  // Crash/rejoin fault injection: a node inside its crash window neither
  // trains nor communicates (its model freezes until rejoin). The check is
  // a pure function of (node, round), so skipping preserves the bit-exact
  // determinism contract; with no crash schedule `alive` is always true and
  // the loop is byte-identical to the fault-free engine.
  const net::TimeModel& time_model = network_.time_model();
  const bool crashes = time_model.has_crashes();
  const auto alive = [&](std::size_t i, std::size_t t) {
    return !crashes || time_model.node_alive(static_cast<std::uint32_t>(i), t);
  };
  for (std::size_t t = 0; t < config_.rounds; ++t) {
    const graph::Graph& g = topology_->round_graph(t);
    if (g.size() != n) {
      throw std::logic_error("Experiment: topology size != node count");
    }
    const graph::MixingWeights& weights = mixing_weights(g, t);

    timed_phase(wall_.train_seconds, [&] {
      pool_.parallel_for(n, [&](std::size_t i) {
        if (!alive(i, t)) return;
        train_losses[i] = nodes_[i]->local_train();
      });
    });
    timed_phase(wall_.share_seconds, [&] {
      pool_.parallel_for_lane(n, [&](unsigned lane, std::size_t i) {
        if (!alive(i, t)) return;
        nodes_[i]->share(network_, g, weights, static_cast<std::uint32_t>(t),
                         scratch_[lane]);
      });
    });
    timed_phase(wall_.aggregate_seconds, [&] {
      pool_.parallel_for_lane(n, [&](unsigned lane, std::size_t i) {
        if (!alive(i, t)) return;
        nodes_[i]->aggregate(network_, g, weights,
                             static_cast<std::uint32_t>(t), scratch_[lane]);
      });
    });
    network_.finish_round(config_.compute_seconds_per_round);
    result.rounds_run = t + 1;

    if (config_.lr_decay_every > 0 && (t + 1) % config_.lr_decay_every == 0) {
      for (auto& node : nodes_) {
        node->set_learning_rate(static_cast<float>(
            node->learning_rate() * config_.lr_decay_factor));
      }
    }

    if (config_.algorithm == Algorithm::kJwins) {
      if (eval_sample_active()) {
        // Sampled-population alpha accounting: the same seeded per-round
        // subset the evaluation reduces over — mean_alpha stays an average
        // over exactly the sampled nodes, not a k-node sum spread over n.
        for (const std::uint32_t i : eval_subset(t + 1)) {
          if (!alive(i, t)) continue;
          alpha_sum_ += static_cast<algo::JwinsNode&>(*nodes_[i]).last_alpha();
          ++alpha_samples_;
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          if (!alive(i, t)) continue;  // crashed nodes drew no cut-off
          alpha_sum_ += static_cast<algo::JwinsNode&>(*nodes_[i]).last_alpha();
          ++alpha_samples_;
        }
      }
    }

    // Simulated-time budget: once the clock passes the budget the round
    // that crossed it is the last one (it still gets its evaluation below).
    // Default 0 = off, leaving the loop byte-identical to the budget-free
    // engine.
    const bool budget_hit = config_.stop_at_sim_time > 0.0 &&
                            network_.simulated_seconds() >=
                                config_.stop_at_sim_time;
    const bool last_round = (t + 1 == config_.rounds) || budget_hit;
    if (t % config_.eval_every == 0 || last_round) {
      // Mean over the metric population that actually trained this round: a
      // crashed node's slot holds a stale (or never-written) loss, not a
      // loss of this round; under eval_sample the population is the seeded
      // per-round subset and the divisor is ITS size (the off-by-population
      // rule mean_loss_over pins). With neither, the plain mean over n.
      const double mean_train_loss = mean_loss_over(
          train_losses,
          eval_sample_active() ? std::span<const std::uint32_t>(
                                     eval_subset(t + 1))
                               : std::span<const std::uint32_t>{},
          [&](std::size_t i) { return alive(i, t); });
      const MetricPoint point = evaluate(t + 1, mean_train_loss);
      result.series.push_back(point);
      if (config_.target_accuracy > 0.0 &&
          point.test_accuracy >= config_.target_accuracy) {
        result.reached_target = true;
        break;
      }
    }
    if (budget_hit) break;
  }
  collect_summary(result);
  wall_.total_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();
  result.wall = wall_;
  return result;
}

ExperimentResult Experiment::run_compact() {
  const auto run_start = std::chrono::steady_clock::now();
  ExperimentResult result;
  const std::size_t n = n_;
  std::vector<float> train_losses(n, 0.0f);
  const net::TimeModel& time_model = network_.time_model();
  const bool crashes = time_model.has_crashes();
  const auto alive = [&](std::size_t i, std::size_t t) {
    return !crashes || time_model.node_alive(static_cast<std::uint32_t>(i), t);
  };
  for (std::size_t t = 0; t < config_.rounds; ++t) {
    const graph::Graph& g = topology_->round_graph(t);
    if (g.size() != n) {
      throw std::logic_error("Experiment: topology size != node count");
    }
    const graph::MixingWeights& weights = mixing_weights(g, t);

    // Fused train+share pass: one worker rebind covers both. share() reads
    // only the sharing node's own state and every mailbox drain sorts
    // canonically by (round, sender), so fusing the full engine's two
    // barriers changes no bytes — it halves the rebind/copy traffic, which
    // is the dominant per-round cost at 100k+ nodes. The whole fused pass
    // books under train_seconds (share_seconds stays 0 on this engine).
    timed_phase(wall_.train_seconds, [&] {
      pool_.parallel_for_lane(n, [&](unsigned lane, std::size_t i) {
        if (!alive(i, t)) return;  // frozen: no train, no send, no steps
        algo::DlNode& w = *workers_[lane];
        bind_worker(w, i);
        train_losses[i] = w.local_train();
        w.share(network_, g, weights, static_cast<std::uint32_t>(t),
                scratch_[lane]);
        w.flat_params_into(store_->slot(i));
        // Advance the sampler-stream position only when the node actually
        // trained: a crashed node resumes its stream where it froze, exactly
        // like the full engine's stateful per-node sampler.
        steps_done_[i] += config_.local_steps;
      });
    });
    timed_phase(wall_.aggregate_seconds, [&] {
      pool_.parallel_for_lane(n, [&](unsigned lane, std::size_t i) {
        if (!alive(i, t)) return;
        algo::DlNode& w = *workers_[lane];
        bind_worker(w, i);
        w.aggregate(network_, g, weights, static_cast<std::uint32_t>(t),
                    scratch_[lane]);
        w.flat_params_into(store_->slot(i));
      });
    });
    network_.finish_round(config_.compute_seconds_per_round);
    result.rounds_run = t + 1;

    if (config_.lr_decay_every > 0 && (t + 1) % config_.lr_decay_every == 0) {
      // Every simulated node follows the same schedule, so decay lives in
      // the lane workers (the only optimizer state the compact engine has).
      for (auto& worker : workers_) {
        worker->set_learning_rate(static_cast<float>(
            worker->learning_rate() * config_.lr_decay_factor));
      }
    }

    const bool budget_hit = config_.stop_at_sim_time > 0.0 &&
                            network_.simulated_seconds() >=
                                config_.stop_at_sim_time;
    const bool last_round = (t + 1 == config_.rounds) || budget_hit;
    if (t % config_.eval_every == 0 || last_round) {
      const double mean_train_loss = mean_loss_over(
          train_losses,
          eval_sample_active() ? std::span<const std::uint32_t>(
                                     eval_subset(t + 1))
                               : std::span<const std::uint32_t>{},
          [&](std::size_t i) { return alive(i, t); });
      const MetricPoint point = evaluate(t + 1, mean_train_loss);
      result.series.push_back(point);
      if (config_.target_accuracy > 0.0 &&
          point.test_accuracy >= config_.target_accuracy) {
        result.reached_target = true;
        break;
      }
    }
    if (budget_hit) break;
  }
  collect_summary(result);
  wall_.total_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();
  result.wall = wall_;
  return result;
}

void Experiment::collect_summary(ExperimentResult& result) {
  if (result.series.empty()) {
    result.series.push_back(evaluate(result.rounds_run, 0.0));
  }
  const MetricPoint& last = result.series.back();
  result.final_accuracy = last.test_accuracy;
  result.final_loss = last.test_loss;
  result.sim_seconds = network_.simulated_seconds();
  result.total_traffic = network_.traffic().total();
  result.mean_alpha =
      alpha_samples_ == 0 ? 0.0 : alpha_sum_ / static_cast<double>(alpha_samples_);
  const net::TimeModel& tm = network_.time_model();
  result.sim_time.extended = tm.extended();
  result.sim_time.compute_seconds = network_.simulated_compute_seconds();
  result.sim_time.comm_seconds = network_.simulated_comm_seconds();
  result.sim_time.dropped_total = tm.dropped_total();
  result.sim_time.dropped_iid = tm.dropped_iid();
  result.sim_time.dropped_edge = tm.dropped_edge();
  result.sim_time.dropped_burst = tm.dropped_burst();
  result.sim_time.dropped_crash = tm.dropped_crash();
  result.sim_time.crashed_node_rounds = tm.crashed_node_rounds();
  result.sim_time.stragglers = tm.straggler_count();
  // Attack/defense accounting (gated exactly like sim_time/event_engine:
  // absent on benign, defense-free runs so their JSON stays byte-identical).
  result.byzantine.extended =
      config_.byzantine_nodes > 0 ||
      config_.robust_agg.kind != core::RobustAggKind::kNone;
  if (result.byzantine.extended) {
    result.byzantine.mode = config_.byzantine_mode;
    result.byzantine.robust_agg = config_.robust_agg.kind;
    for (const auto& node : nodes_) {
      if (node->is_byzantine()) {
        result.byzantine.attackers.push_back(node->rank());
      }
      result.byzantine.corrupted_messages += node->corrupted_messages();
      result.byzantine.trimmed_entries +=
          node->robust_counters().trimmed_entries;
      result.byzantine.clipped_contributions +=
          node->robust_counters().clipped_contributions;
    }
  }
}

std::uint64_t EventEngineStats::local_steps_min() const noexcept {
  std::uint64_t lo = 0;
  for (std::size_t i = 0; i < local_steps.size(); ++i) {
    lo = i == 0 ? local_steps[i] : std::min(lo, local_steps[i]);
  }
  return lo;
}

std::uint64_t EventEngineStats::local_steps_max() const noexcept {
  std::uint64_t hi = 0;
  for (const std::uint64_t s : local_steps) hi = std::max(hi, s);
  return hi;
}

double EventEngineStats::local_steps_mean() const noexcept {
  if (local_steps.empty()) return 0.0;
  double sum = 0.0;
  for (const std::uint64_t s : local_steps) sum += static_cast<double>(s);
  return sum / static_cast<double>(local_steps.size());
}

double EventEngineStats::mean_contribution_age() const noexcept {
  if (contributions_applied == 0) return 0.0;
  return static_cast<double>(contribution_age_sum) /
         static_cast<double>(contributions_applied);
}

}  // namespace jwins::sim

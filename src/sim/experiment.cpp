#include "sim/experiment.hpp"

#include <stdexcept>

#include "data/dataset.hpp"
#include "net/parallel.hpp"

namespace jwins::sim {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFullSharing: return "full-sharing";
    case Algorithm::kRandomSampling: return "random-sampling";
    case Algorithm::kJwins: return "jwins";
    case Algorithm::kChoco: return "choco";
    case Algorithm::kPowerGossip: return "power-gossip";
  }
  return "unknown";
}

Experiment::Experiment(ExperimentConfig config, nn::ModelFactory factory,
                       const data::Dataset& train, data::Partition partition,
                       const data::Dataset& test,
                       std::unique_ptr<graph::TopologyProvider> topology)
    : config_(std::move(config)),
      test_(&test),
      topology_(std::move(topology)),
      network_(partition.size(), config_.link) {
  const std::size_t n = partition.size();
  if (n == 0) throw std::invalid_argument("Experiment: empty partition");
  nodes_.reserve(n);
  algo::TrainConfig train_config{config_.local_steps, config_.sgd};
  for (std::size_t i = 0; i < n; ++i) {
    auto model = factory();
    data::Sampler sampler(train, partition[i], /*batch_size=*/
                          std::max<std::size_t>(1, std::min<std::size_t>(
                                                       16, partition[i].size())),
                          config_.seed * 7919 + i);
    const auto rank = static_cast<std::uint32_t>(i);
    switch (config_.algorithm) {
      case Algorithm::kFullSharing:
        nodes_.push_back(std::make_unique<algo::FullSharingNode>(
            rank, std::move(model), std::move(sampler), train_config));
        break;
      case Algorithm::kRandomSampling:
        nodes_.push_back(std::make_unique<algo::RandomSamplingNode>(
            rank, std::move(model), std::move(sampler), train_config,
            config_.random_sampling_fraction, config_.seed));
        break;
      case Algorithm::kJwins:
        nodes_.push_back(std::make_unique<algo::JwinsNode>(
            rank, std::move(model), std::move(sampler), train_config,
            config_.jwins));
        break;
      case Algorithm::kChoco:
        nodes_.push_back(std::make_unique<algo::ChocoNode>(
            rank, std::move(model), std::move(sampler), train_config,
            config_.choco));
        break;
      case Algorithm::kPowerGossip:
        nodes_.push_back(std::make_unique<algo::PowerGossipNode>(
            rank, std::move(model), std::move(sampler), train_config,
            config_.power_gossip));
        break;
    }
  }
  eval_batch_ = data::full_batch(*test_, config_.eval_sample_limit);
  if (config_.message_drop_probability > 0.0) {
    network_.set_drop(config_.message_drop_probability, config_.seed);
  }
}

MetricPoint Experiment::evaluate(std::size_t round, double train_loss) {
  MetricPoint point;
  point.round = round;
  point.sim_seconds = network_.simulated_seconds();
  point.train_loss = train_loss;
  const std::size_t limit = config_.eval_node_limit == 0
                                ? nodes_.size()
                                : std::min(config_.eval_node_limit, nodes_.size());
  double acc = 0.0, loss = 0.0;
  std::vector<nn::EvalMetrics> metrics(limit);
  net::parallel_for(limit, config_.threads, [&](std::size_t i) {
    metrics[i] = nodes_[i]->model().evaluate(eval_batch_);
  });
  for (const auto& m : metrics) {
    acc += m.accuracy;
    loss += m.loss;
  }
  point.test_accuracy = acc / static_cast<double>(limit);
  point.test_loss = loss / static_cast<double>(limit);
  point.avg_bytes_per_node = network_.traffic().average_bytes_per_node();
  point.avg_metadata_bytes_per_node =
      static_cast<double>(network_.traffic().total().metadata_bytes_sent) /
      static_cast<double>(nodes_.size());
  return point;
}

ExperimentResult Experiment::run() {
  ExperimentResult result;
  const std::size_t n = nodes_.size();
  std::vector<float> train_losses(n, 0.0f);
  for (std::size_t t = 0; t < config_.rounds; ++t) {
    const graph::Graph& g = topology_->round_graph(t);
    if (g.size() != n) {
      throw std::logic_error("Experiment: topology size != node count");
    }
    const graph::MixingWeights weights = graph::metropolis_hastings(g);

    net::parallel_for(n, config_.threads, [&](std::size_t i) {
      train_losses[i] = nodes_[i]->local_train();
    });
    net::parallel_for(n, config_.threads, [&](std::size_t i) {
      nodes_[i]->share(network_, g, weights,
                       static_cast<std::uint32_t>(t));
    });
    net::parallel_for(n, config_.threads, [&](std::size_t i) {
      nodes_[i]->aggregate(network_, g, weights,
                           static_cast<std::uint32_t>(t));
    });
    network_.finish_round(config_.compute_seconds_per_round);
    result.rounds_run = t + 1;

    if (config_.lr_decay_every > 0 && (t + 1) % config_.lr_decay_every == 0) {
      for (auto& node : nodes_) {
        node->set_learning_rate(static_cast<float>(
            node->learning_rate() * config_.lr_decay_factor));
      }
    }

    if (config_.algorithm == Algorithm::kJwins) {
      for (const auto& node : nodes_) {
        alpha_sum_ += static_cast<algo::JwinsNode&>(*node).last_alpha();
        ++alpha_samples_;
      }
    }

    const bool last_round = (t + 1 == config_.rounds);
    if (t % config_.eval_every == 0 || last_round) {
      double mean_train_loss = 0.0;
      for (float l : train_losses) mean_train_loss += l;
      mean_train_loss /= static_cast<double>(n);
      const MetricPoint point = evaluate(t + 1, mean_train_loss);
      result.series.push_back(point);
      if (config_.target_accuracy > 0.0 &&
          point.test_accuracy >= config_.target_accuracy) {
        result.reached_target = true;
        break;
      }
    }
  }
  if (result.series.empty()) {
    result.series.push_back(evaluate(result.rounds_run, 0.0));
  }
  const MetricPoint& last = result.series.back();
  result.final_accuracy = last.test_accuracy;
  result.final_loss = last.test_loss;
  result.sim_seconds = network_.simulated_seconds();
  result.total_traffic = network_.traffic().total();
  result.mean_alpha =
      alpha_samples_ == 0 ? 0.0 : alpha_sum_ / static_cast<double>(alpha_samples_);
  return result;
}

}  // namespace jwins::sim

// Discrete-event asynchronous execution engine (ROADMAP open item 1).
//
// The synchronous Experiment loop runs the paper's bulk-synchronous rounds:
// PR 5's per-edge latencies and straggler multipliers shape a *cost
// accounting* but never the order of events. This engine makes time causal:
// a priority queue of (sim_time, node, seq) records drives each node as a
// state machine —
//
//   TrainDone(i)        node i finished its tau local SGD steps; it shares
//                       this round's messages, whose arrival times are the
//                       share instant + uplink serialization + edge latency
//                       (the same per-edge TimeModel math finish_round uses);
//   MessageArrival(j)   a message lands in node j's inbox at its simulated
//                       arrival time;
//   LocalStep(i)        node i aggregates its eligible inbox under the
//                       bounded-staleness rule and starts its next round.
//
// Tie-break rule: events are processed in strictly increasing (time, node,
// seq) order — seq is a global monotone issue counter, so simultaneous
// events resolve by node rank, then by scheduling order. The pop sequence is
// a pure function of the experiment seed: runs replay bit-identically.
//
// Reduction guarantee (the golden-tested contract): with staleness_bound ==
// 0 the engine runs in *barrier mode* — real events fire at their simulated
// times, but every node's LocalStep waits for the global round barrier, and
// the round clock advances through the very same Network::finish_round()
// call the synchronous loop makes. Every model byte, metric point, and
// result-JSON byte is then identical to EngineKind::kSync, under ANY
// TimeModel (flat or heterogeneous, with or without fault injection).
// With staleness_bound B > 0 nodes genuinely desynchronize: a node may run
// up to B rounds ahead of its slowest expected neighbor, messages more than
// B rounds stale are discarded (counted), and quiescence detection
// force-unblocks gated nodes whose unblocking message was lost — the engine
// can never deadlock. docs/SIMULATION.md "Asynchronous engine" is the full
// specification.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "net/network.hpp"
#include "sim/experiment.hpp"

namespace jwins::sim {

enum class EventKind : std::uint8_t { kTrainDone, kMessageArrival, kLocalStep };

const char* event_kind_name(EventKind kind);

/// One scheduled event. `round` is the local round the event concerns (the
/// message's round tag for arrivals); `message` is only populated for
/// kMessageArrival.
struct Event {
  double time = 0.0;
  std::uint32_t node = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kTrainDone;
  std::uint32_t round = 0;
  net::Message message;
};

/// Min-heap of events under the strict (time, node, seq) order, with the
/// queue invariants the tests pin enforced at the boundary: seq values are
/// unique and monotone in push order, pop times never decrease, and
/// scheduling an event earlier than the last pop ("in the past") throws.
class EventQueue {
 public:
  EventQueue();

  /// Schedules an event; returns its (unique, monotone) sequence number.
  std::uint64_t push(double time, std::uint32_t node, EventKind kind,
                     std::uint32_t round, net::Message message = {});

  /// Removes and returns the minimum event. Throws std::logic_error when
  /// empty or if the pop time would regress (a scheduling bug, not a state).
  Event pop();

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  /// High-water mark of size() over the queue's lifetime.
  std::size_t max_depth() const noexcept { return max_depth_; }
  /// Time of the most recent pop (-infinity before the first).
  double last_pop_time() const noexcept { return last_pop_time_; }

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t max_depth_ = 0;
  double last_pop_time_;
};

/// Per-sender uplink serialization: a node's messages of one round leave
/// through its NIC in send order, each transferring at the destination
/// edge's bandwidth; a message's delivery offset (relative to the share
/// instant) is its queued-transfer completion plus the edge's own latency.
/// This is precisely the per-edge critical-path math of
/// net::TimeModel::finish_round, applied per message instead of per round.
class UplinkSerializer {
 public:
  explicit UplinkSerializer(std::size_t n) : queued_(n, 0.0) {}

  /// Accounts one message and returns its delivery offset in seconds.
  double enqueue(const net::TimeModel& time, std::uint32_t sender,
                 std::uint32_t receiver, std::uint64_t wire_bytes);

  /// Seconds of transfer already queued on `sender`'s uplink this round.
  double queued(std::uint32_t sender) const { return queued_.at(sender); }

  /// Starts a fresh round for `sender` (its uplink drained at the barrier /
  /// by the time it next trains).
  void reset(std::uint32_t sender) { queued_.at(sender) = 0.0; }

 private:
  std::vector<double> queued_;
};

/// The driver: owns the queue and the per-node asynchrony state, borrows
/// everything else (nodes, network, evaluation) from the Experiment that
/// constructed it. Single-threaded by design — determinism comes from the
/// event order, and threads=N stays bit-identical to threads=1 because the
/// only pooled phase (evaluation) already reduces in rank order.
class EventEngine : private net::DeliverySink {
 public:
  explicit EventEngine(Experiment& experiment);
  ~EventEngine() override;

  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  ExperimentResult run();

 private:
  // net::DeliverySink: called inside Network::send for every message that
  // survives failure injection, while some node's share() is running.
  void on_deliver(std::uint32_t to, net::Message msg) override;

  ExperimentResult run_barrier();
  /// The genuine event loop: bounded-staleness barrier aggregation
  /// (async_mode = barrier, staleness_bound > 0) and the gate-free
  /// free/weighted modes all run here; only the exact sync reduction
  /// (barrier with B == 0) takes run_barrier().
  ExperimentResult run_event_loop();

  // --- bounded-staleness helpers -----------------------------------------
  struct RoundTopo {
    graph::Graph graph;
    graph::MixingWeights weights;
  };
  /// Topology of local round `round`, cached per round (round_graph()
  /// references die on the next call, and nodes occupy different rounds).
  const RoundTopo& topo(std::size_t round);
  /// Drops cache entries below the lowest live local round.
  void evict_topo_below(std::size_t round);

  void start_round(std::uint32_t i, double now);
  void process_train_done(const Event& event);
  void process_arrival(Event& event);
  void process_local_step(const Event& event, ExperimentResult& result);
  /// True when node i may aggregate its current round under the staleness
  /// bound: every expected neighbor has been heard at round r_i - B or
  /// later (neighbors that can never produce such a round are exempt).
  bool gate_open(std::uint32_t i);
  /// True if `neighbor` may still share a round >= `min_tag` in the future.
  bool may_yet_hear(std::uint32_t neighbor, std::int64_t min_tag) const;
  /// Re-checks blocked nodes after progress; schedules their LocalStep.
  void unblock_ready(double now);
  /// Emits due global evaluations (all nodes past the eval round) and the
  /// target-accuracy stop. Returns true when the run should terminate.
  bool maybe_evaluate(ExperimentResult& result);

  bool node_alive(std::uint32_t i, std::size_t round) const;

  Experiment& exp_;
  EventQueue queue_;
  UplinkSerializer uplink_;
  EventEngineStats stats_;

  /// Share-context: while a node's share() runs, its messages' arrival
  /// times are share_time_ + uplink + latency.
  double share_time_ = 0.0;
  /// Barrier mode routes arrivals straight to the Network mailbox; bounded
  /// mode stages them in inbox_ under the staleness rule.
  bool barrier_mode_ = true;
  /// Aggregation discipline (config mirror): kBarrier gates on the
  /// staleness bound; kFree/kWeighted never gate and apply every arrival.
  AsyncMode mode_ = AsyncMode::kBarrier;
  /// Nodes currently inside a training interval — the event loop's phase
  /// attribution: an elapsed slice counts as compute while any node trains,
  /// as communication otherwise (docs/SIMULATION.md "Phase attribution").
  std::size_t training_count_ = 0;

  // Per-node asynchrony state (bounded mode).
  std::vector<std::uint32_t> round_;        ///< current local round
  std::vector<double> round_start_;         ///< when that round began
  std::vector<bool> blocked_;               ///< gated at its staleness bound
  std::vector<bool> done_;                  ///< reached the rounds cap
  std::vector<float> train_losses_;
  std::vector<bool> trained_;               ///< has >= 1 completed train
  std::vector<std::vector<net::Message>> inbox_;
  /// heard_[i * n + j]: highest round tag received by i from j (-1 = none).
  std::vector<std::int64_t> heard_;
  std::map<std::size_t, RoundTopo> topo_cache_;
  std::size_t next_eval_round_ = 0;  ///< next 0-based round index to evaluate
  double now_ = 0.0;                 ///< time of the event being processed
};

}  // namespace jwins::sim

#include "sim/event_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "algo/jwins_node.hpp"

namespace jwins::sim {

namespace {

/// Times one engine phase, accumulating real seconds into `slot` (the same
/// bookkeeping the synchronous loop keeps, so wall timings stay comparable).
template <class Fn>
void timed_phase(double& slot, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  slot += std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTrainDone: return "train-done";
    case EventKind::kMessageArrival: return "message-arrival";
    case EventKind::kLocalStep: return "local-step";
  }
  return "unknown";
}

// --- EventQueue -------------------------------------------------------------

namespace {

/// Min-heap comparator: true when `a` should pop AFTER `b` — the strict
/// (time, node, seq) tie-break rule.
struct PopsLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    if (a.node != b.node) return a.node > b.node;
    return a.seq > b.seq;
  }
};

}  // namespace

EventQueue::EventQueue()
    : last_pop_time_(-std::numeric_limits<double>::infinity()) {}

std::uint64_t EventQueue::push(double time, std::uint32_t node, EventKind kind,
                               std::uint32_t round, net::Message message) {
  // `!(time >= ...)` also rejects NaN. Scheduling before the last pop would
  // silently reorder causality, so it is a hard error, not a clamp.
  if (!(time >= last_pop_time_)) {
    throw std::logic_error("EventQueue: event scheduled in the past");
  }
  Event event;
  event.time = time;
  event.node = node;
  event.seq = next_seq_++;
  event.kind = kind;
  event.round = round;
  event.message = std::move(message);
  const std::uint64_t seq = event.seq;
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), PopsLater{});
  max_depth_ = std::max(max_depth_, heap_.size());
  return seq;
}

Event EventQueue::pop() {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue: pop from an empty queue");
  }
  std::pop_heap(heap_.begin(), heap_.end(), PopsLater{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  if (event.time < last_pop_time_) {
    throw std::logic_error("EventQueue: pop time regressed");
  }
  last_pop_time_ = event.time;
  return event;
}

// --- UplinkSerializer -------------------------------------------------------

double UplinkSerializer::enqueue(const net::TimeModel& time,
                                 std::uint32_t sender, std::uint32_t receiver,
                                 std::uint64_t wire_bytes) {
  // Identical per-message math to TimeModel::finish_round's critical path:
  // the transfer queues behind everything the sender already put on its
  // uplink this round, then the edge pays its own latency.
  double& queued = queued_.at(sender);
  queued +=
      static_cast<double>(wire_bytes) / time.edge_bandwidth(sender, receiver);
  return queued + time.edge_latency(sender, receiver);
}

// --- EventEngine ------------------------------------------------------------

EventEngine::EventEngine(Experiment& experiment)
    : exp_(experiment), uplink_(experiment.nodes_.size()) {
  exp_.network_.set_delivery_sink(this);
}

EventEngine::~EventEngine() { exp_.network_.set_delivery_sink(nullptr); }

bool EventEngine::node_alive(std::uint32_t i, std::size_t round) const {
  const net::TimeModel& tm = exp_.network_.time_model();
  return !tm.has_crashes() || tm.node_alive(i, round);
}

void EventEngine::on_deliver(std::uint32_t to, net::Message msg) {
  // Called from inside Network::send while some node's share() runs: the
  // message survived failure injection, so schedule its arrival at the
  // share instant + uplink serialization + edge latency.
  const double arrival =
      share_time_ + uplink_.enqueue(exp_.network_.time_model(), msg.sender, to,
                                    msg.wire_size());
  const std::uint32_t tag = msg.round;
  queue_.push(arrival, to, EventKind::kMessageArrival, tag, std::move(msg));
}

ExperimentResult EventEngine::run() {
  const auto run_start = std::chrono::steady_clock::now();
  const std::size_t n = exp_.nodes_.size();
  mode_ = exp_.config_.async_mode;
  stats_.enabled = true;
  stats_.mode = mode_;
  stats_.extended = exp_.config_.staleness_bound > 0 ||
                    exp_.config_.stop_at_sim_time > 0.0 ||
                    mode_ != AsyncMode::kBarrier;
  // Barrier runs size the histogram to the gate's window; free/weighted
  // start at size 1 (age 0) and grow to whatever ages actually occur.
  stats_.staleness_histogram.assign(exp_.config_.staleness_bound + 1, 0);
  stats_.local_steps.assign(n, 0);
  barrier_mode_ =
      exp_.config_.staleness_bound == 0 && mode_ == AsyncMode::kBarrier;
  if (!barrier_mode_) {
    // The event loop never calls finish_round(), so edge records must
    // retire per transfer or a stop_at_sim_time run accumulates them
    // forever (the ROADMAP-named leak this engine revision fixes).
    exp_.network_.enable_transfer_retirement();
  }

  ExperimentResult result = barrier_mode_ ? run_barrier() : run_event_loop();

  stats_.max_queue_depth = queue_.max_depth();
  stats_.edge_records_high_water =
      exp_.network_.time_model().edge_records_high_water();
  result.event_engine = stats_;
  exp_.wall_.total_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();
  result.wall = exp_.wall_;
  return result;
}

// --- barrier mode (staleness_bound == 0): the exact sync reduction ----------

ExperimentResult EventEngine::run_barrier() {
  ExperimentResult result;
  const ExperimentConfig& cfg = exp_.config_;
  net::Network& network = exp_.network_;
  const net::TimeModel& tm = network.time_model();
  const std::size_t n = exp_.nodes_.size();
  std::vector<float> train_losses(n, 0.0f);

  for (std::size_t t = 0; t < cfg.rounds; ++t) {
    const graph::Graph& g = exp_.topology_->round_graph(t);
    if (g.size() != n) {
      throw std::logic_error("EventEngine: topology size != node count");
    }
    const graph::MixingWeights& weights = exp_.mixing_weights(g, t);
    const double round_start = network.simulated_seconds();

    // Phase events: every alive node finishes its tau local steps at the
    // simulated compute time its multiplier implies, then its messages
    // arrive per-edge. All of round t's events drain before the barrier.
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!node_alive(i, t)) continue;
      queue_.push(round_start +
                      cfg.compute_seconds_per_round * tm.compute_multiplier(i),
                  i, EventKind::kTrainDone, static_cast<std::uint32_t>(t));
    }
    while (!queue_.empty()) {
      Event event = queue_.pop();
      ++stats_.events_processed;
      if (event.kind == EventKind::kTrainDone) {
        const std::uint32_t i = event.node;
        timed_phase(exp_.wall_.train_seconds, [&] {
          train_losses[i] = exp_.nodes_[i]->local_train();
        });
        uplink_.reset(i);
        share_time_ = event.time;
        timed_phase(exp_.wall_.share_seconds, [&] {
          exp_.nodes_[i]->share(network, g, weights, event.round,
                                exp_.scratch_[0]);
        });
      } else {  // kMessageArrival (no LocalStep is queued yet)
        ++stats_.messages_delivered;
        ++stats_.staleness_histogram[0];
        network.deliver(event.node, std::move(event.message));
      }
    }

    // The barrier: the same finish_round() call — and therefore the same
    // clock doubles, in the same addition order — as the synchronous loop.
    network.finish_round(cfg.compute_seconds_per_round);

    // Every arrival above is provably <= the barrier in exact arithmetic;
    // the max() guards the event-time invariant against the one-ulp
    // differences the two summation orders can produce.
    const double barrier =
        std::max(network.simulated_seconds(), queue_.last_pop_time());
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!node_alive(i, t)) continue;
      queue_.push(barrier, i, EventKind::kLocalStep,
                  static_cast<std::uint32_t>(t));
    }
    while (!queue_.empty()) {
      const Event event = queue_.pop();
      ++stats_.events_processed;
      const std::uint32_t i = event.node;
      timed_phase(exp_.wall_.aggregate_seconds, [&] {
        exp_.nodes_[i]->aggregate(network, g, weights, event.round,
                                  exp_.scratch_[0]);
      });
      ++stats_.local_steps[i];
    }
    result.rounds_run = t + 1;

    // Round-boundary bookkeeping, operation for operation the synchronous
    // loop's: learning-rate decay over ALL nodes, JWINS alpha over alive
    // nodes in rank order, then the evaluation/stop block.
    if (cfg.lr_decay_every > 0 && (t + 1) % cfg.lr_decay_every == 0) {
      for (auto& node : exp_.nodes_) {
        node->set_learning_rate(
            static_cast<float>(node->learning_rate() * cfg.lr_decay_factor));
      }
    }
    if (cfg.algorithm == Algorithm::kJwins) {
      if (exp_.eval_sample_active()) {
        for (const std::uint32_t i : exp_.eval_subset(t + 1)) {
          if (!node_alive(i, t)) continue;
          exp_.alpha_sum_ +=
              static_cast<algo::JwinsNode&>(*exp_.nodes_[i]).last_alpha();
          ++exp_.alpha_samples_;
        }
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (!node_alive(i, t)) continue;
          exp_.alpha_sum_ +=
              static_cast<algo::JwinsNode&>(*exp_.nodes_[i]).last_alpha();
          ++exp_.alpha_samples_;
        }
      }
    }

    const bool budget_hit =
        cfg.stop_at_sim_time > 0.0 &&
        network.simulated_seconds() >= cfg.stop_at_sim_time;
    const bool last_round = (t + 1 == cfg.rounds) || budget_hit;
    if (t % cfg.eval_every == 0 || last_round) {
      // Same sampled-population rule as the sync loop: under eval_sample the
      // mean divides by the subset size, not n.
      const double mean_train_loss = Experiment::mean_loss_over(
          train_losses,
          exp_.eval_sample_active()
              ? std::span<const std::uint32_t>(exp_.eval_subset(t + 1))
              : std::span<const std::uint32_t>{},
          [&](std::size_t i) {
            return node_alive(static_cast<std::uint32_t>(i), t);
          });
      const MetricPoint point = exp_.evaluate(t + 1, mean_train_loss);
      result.series.push_back(point);
      if (cfg.target_accuracy > 0.0 &&
          point.test_accuracy >= cfg.target_accuracy) {
        result.reached_target = true;
        break;
      }
    }
    if (budget_hit) break;
  }
  exp_.collect_summary(result);
  return result;
}

// --- bounded-staleness mode (staleness_bound > 0) ---------------------------

const EventEngine::RoundTopo& EventEngine::topo(std::size_t round) {
  auto it = topo_cache_.find(round);
  if (it == topo_cache_.end()) {
    // round_graph() references die on the next call, and nodes occupy
    // different local rounds concurrently — so cache a copy per round.
    const graph::Graph& g = exp_.topology_->round_graph(round);
    if (g.size() != exp_.nodes_.size()) {
      throw std::logic_error("EventEngine: topology size != node count");
    }
    RoundTopo entry{g, graph::metropolis_hastings(g)};
    it = topo_cache_.emplace(round, std::move(entry)).first;
  }
  return it->second;
}

void EventEngine::evict_topo_below(std::size_t round) {
  topo_cache_.erase(topo_cache_.begin(), topo_cache_.lower_bound(round));
}

void EventEngine::start_round(std::uint32_t i, double now) {
  if (round_[i] >= exp_.config_.rounds) {
    done_[i] = true;
    return;
  }
  round_start_[i] = now;
  const net::TimeModel& tm = exp_.network_.time_model();
  const double duration =
      exp_.config_.compute_seconds_per_round * tm.compute_multiplier(i);
  // A node inside its crash window neither trains nor communicates: it
  // idles one compute-duration per local round (a documented refinement of
  // the sync engine's round-granularity crash semantics) so its local clock
  // still advances toward its rejoin round.
  const EventKind kind = node_alive(i, round_[i]) ? EventKind::kTrainDone
                                                  : EventKind::kLocalStep;
  // Phase attribution: node i trains from now until its TrainDone pops
  // (idle crash rounds are not compute — nothing runs on the node).
  if (kind == EventKind::kTrainDone) ++training_count_;
  queue_.push(now + duration, i, kind, round_[i]);
}

bool EventEngine::may_yet_hear(std::uint32_t neighbor,
                               std::int64_t min_tag) const {
  // Will `neighbor` ever share a round >= min_tag? It shares every alive
  // local round below the cap, and its local round only moves forward.
  const std::int64_t cap = static_cast<std::int64_t>(exp_.config_.rounds);
  std::int64_t q = std::max<std::int64_t>(min_tag, round_[neighbor]);
  for (; q < cap; ++q) {
    if (node_alive(neighbor, static_cast<std::size_t>(q))) return true;
  }
  return false;
}

bool EventEngine::gate_open(std::uint32_t i) {
  // Free/weighted aggregation has no staleness gate: a node's local step
  // fires the moment its training ends, with whatever has arrived.
  if (mode_ != AsyncMode::kBarrier) return true;
  const std::int64_t bound =
      static_cast<std::int64_t>(exp_.config_.staleness_bound);
  const std::int64_t min_tag = static_cast<std::int64_t>(round_[i]) - bound;
  if (min_tag < 0) return true;  // early rounds can never be gated
  const std::size_t n = exp_.nodes_.size();
  const graph::Graph& g = topo(round_[i]).graph;
  for (const std::size_t nb : g.neighbors(i)) {
    if (heard_[i * n + nb] >= min_tag) continue;
    if (may_yet_hear(static_cast<std::uint32_t>(nb), min_tag)) return false;
  }
  return true;
}

void EventEngine::unblock_ready(double now) {
  // Gates open on arrivals AND on neighbor round progress (a neighbor that
  // finished all its rounds can never send again, exempting it), so re-check
  // every blocked node after each state change — in rank order, so the
  // resulting LocalStep schedule is deterministic.
  for (std::uint32_t i = 0; i < blocked_.size(); ++i) {
    if (!blocked_[i]) continue;
    if (!gate_open(i)) continue;
    blocked_[i] = false;
    queue_.push(std::max(now, queue_.last_pop_time()), i,
                EventKind::kLocalStep, round_[i]);
  }
}

void EventEngine::process_train_done(const Event& event) {
  const std::uint32_t i = event.node;
  timed_phase(exp_.wall_.train_seconds, [&] {
    train_losses_[i] = exp_.nodes_[i]->local_train();
  });
  trained_[i] = true;
  const RoundTopo& tp = topo(round_[i]);
  uplink_.reset(i);
  share_time_ = event.time;
  timed_phase(exp_.wall_.share_seconds, [&] {
    exp_.nodes_[i]->share(exp_.network_, tp.graph, tp.weights, round_[i],
                          exp_.scratch_[0]);
  });
  if (gate_open(i)) {
    queue_.push(event.time, i, EventKind::kLocalStep, round_[i]);
  } else {
    blocked_[i] = true;
  }
}

void EventEngine::process_arrival(Event& event) {
  ++stats_.messages_delivered;
  const std::uint32_t j = event.node;
  const std::uint32_t sender = event.message.sender;
  const std::uint32_t tag = event.message.round;
  // The transfer completed: its TimeModel edge record retires here, keeping
  // the live-record count bounded by the in-flight message count.
  exp_.network_.retire_transfer(sender, j);
  const std::size_t n = exp_.nodes_.size();
  heard_[j * n + sender] =
      std::max(heard_[j * n + sender], static_cast<std::int64_t>(tag));
  const std::int64_t min_tag =
      static_cast<std::int64_t>(round_[j]) -
      static_cast<std::int64_t>(exp_.config_.staleness_bound);
  if (mode_ == AsyncMode::kBarrier &&
      static_cast<std::int64_t>(tag) < min_tag) {
    // Arrived after the receiver's staleness window already passed it.
    // Free/weighted modes never drop on age — every arrival is applied
    // (weighted merely fades it by lambda^staleness at aggregation).
    ++stats_.messages_stale_dropped;
  } else {
    inbox_[j].push_back(std::move(event.message));
  }
  unblock_ready(event.time);
}

void EventEngine::process_local_step(const Event& event,
                                     ExperimentResult& result) {
  const std::uint32_t i = event.node;
  const std::uint32_t r = round_[i];
  const ExperimentConfig& cfg = exp_.config_;
  if (node_alive(i, r)) {
    std::vector<net::Message>& box = inbox_[i];
    if (mode_ == AsyncMode::kBarrier) {
      // Stage the eligible inbox into the Network mailbox: messages tagged
      // within [r - B, r] are applied (the canonical (round, sender) drain
      // order still holds), newer ones wait for their round, older ones —
      // possible after idle crash rounds — are dropped as stale.
      const std::int64_t min_tag =
          static_cast<std::int64_t>(r) -
          static_cast<std::int64_t>(cfg.staleness_bound);
      std::size_t kept = 0;
      for (net::Message& msg : box) {
        const std::int64_t tag = static_cast<std::int64_t>(msg.round);
        if (tag > static_cast<std::int64_t>(r)) {
          box[kept++] = std::move(msg);  // early: not this round's business yet
        } else if (tag < min_tag) {
          ++stats_.messages_stale_dropped;
        } else {
          ++stats_.staleness_histogram[static_cast<std::size_t>(
              static_cast<std::int64_t>(r) - tag)];
          exp_.network_.deliver(i, std::move(msg));
        }
      }
      box.resize(kept);
    } else {
      // Free/weighted aggregation: the node mixes with whatever has arrived
      // — the whole inbox, early tags included (a fast neighbor's newer
      // model is gossip too), ages floored at 0. The per-mode stats feed
      // the effective-neighbor histogram and mean contribution age of the
      // result JSON.
      const std::size_t applied = box.size();
      for (net::Message& msg : box) {
        const std::size_t age =
            msg.round >= r ? 0 : static_cast<std::size_t>(r - msg.round);
        if (age >= stats_.staleness_histogram.size()) {
          stats_.staleness_histogram.resize(age + 1, 0);
        }
        ++stats_.staleness_histogram[age];
        stats_.contribution_age_sum += age;
        ++stats_.contributions_applied;
        exp_.network_.deliver(i, std::move(msg));
      }
      box.clear();
      if (applied >= stats_.effective_neighbors.size()) {
        stats_.effective_neighbors.resize(applied + 1, 0);
      }
      ++stats_.effective_neighbors[applied];
    }
    const RoundTopo& tp = topo(r);
    timed_phase(exp_.wall_.aggregate_seconds, [&] {
      exp_.nodes_[i]->aggregate(exp_.network_, tp.graph, tp.weights, r,
                                exp_.scratch_[0]);
    });
    if (cfg.algorithm == Algorithm::kJwins) {
      exp_.alpha_sum_ +=
          static_cast<algo::JwinsNode&>(*exp_.nodes_[i]).last_alpha();
      ++exp_.alpha_samples_;
    }
    // Per-node decay at the node's OWN round boundary — the async analogue
    // of the sync loop's global decay (documented divergence).
    if (cfg.lr_decay_every > 0 && (r + 1) % cfg.lr_decay_every == 0) {
      exp_.nodes_[i]->set_learning_rate(static_cast<float>(
          exp_.nodes_[i]->learning_rate() * cfg.lr_decay_factor));
    }
  }
  ++round_[i];
  ++stats_.local_steps[i];
  std::size_t min_round = round_[0];
  for (const std::uint32_t rr : round_) {
    min_round = std::min<std::size_t>(min_round, rr);
  }
  evict_topo_below(min_round);
  if (maybe_evaluate(result)) return;  // target reached
  start_round(i, event.time);
  unblock_ready(event.time);
}

bool EventEngine::maybe_evaluate(ExperimentResult& result) {
  const ExperimentConfig& cfg = exp_.config_;
  while (next_eval_round_ < cfg.rounds) {
    std::uint64_t min_completed = round_[0];
    for (const std::uint32_t r : round_) {
      min_completed = std::min<std::uint64_t>(min_completed, r);
    }
    // Global evaluation point: every node has finished round index
    // next_eval_round_ (mirroring the sync schedule t = 0, eval_every, ...).
    if (min_completed < next_eval_round_ + 1) return false;
    const double mean_train_loss = Experiment::mean_loss_over(
        train_losses_,
        exp_.eval_sample_active()
            ? std::span<const std::uint32_t>(
                  exp_.eval_subset(next_eval_round_ + 1))
            : std::span<const std::uint32_t>{},
        [&](std::size_t i) { return static_cast<bool>(trained_[i]); });
    // evaluate() reads the Network clock, which the event loop advances at
    // event granularity (advance_time): sim_seconds is the time of the
    // event being processed, and the compute/comm split is cumulative,
    // monotone, and sums to it exactly.
    const MetricPoint point =
        exp_.evaluate(next_eval_round_ + 1, mean_train_loss);
    result.series.push_back(point);
    if (cfg.target_accuracy > 0.0 &&
        point.test_accuracy >= cfg.target_accuracy) {
      result.reached_target = true;
      return true;
    }
    next_eval_round_ += cfg.eval_every;
  }
  return false;
}

ExperimentResult EventEngine::run_event_loop() {
  ExperimentResult result;
  const ExperimentConfig& cfg = exp_.config_;
  const std::size_t n = exp_.nodes_.size();
  round_.assign(n, 0);
  round_start_.assign(n, 0.0);
  blocked_.assign(n, false);
  done_.assign(n, false);
  train_losses_.assign(n, 0.0f);
  trained_.assign(n, false);
  inbox_.assign(n, {});
  heard_.assign(n * n, -1);

  for (std::uint32_t i = 0; i < n; ++i) start_round(i, 0.0);

  bool stop = false;
  while (!queue_.empty() && !stop) {
    Event event = queue_.pop();
    if (cfg.stop_at_sim_time > 0.0 && event.time > cfg.stop_at_sim_time) {
      // Budget cut: events at times <= the budget were processed; whatever
      // is still queued — this event included — never happens. Arrivals
      // among them are the in-flight messages of the conservation ledger;
      // their edge records retire too, so every record is accounted for
      // (delivered, dropped, or cut) by the time the run ends.
      if (event.kind == EventKind::kMessageArrival) {
        ++stats_.messages_in_flight;
        exp_.network_.retire_transfer(event.message.sender, event.node);
      }
      while (!queue_.empty()) {
        const Event cut = queue_.pop();
        if (cut.kind == EventKind::kMessageArrival) {
          ++stats_.messages_in_flight;
          exp_.network_.retire_transfer(cut.message.sender, cut.node);
        }
      }
      break;
    }
    // Phase attribution at event granularity (the mid-flight compute/comm
    // fix): the slice since the previous event counts as compute while any
    // node is inside a training interval, as communication otherwise. The
    // Network clock therefore advances with the event clock, its split
    // monotone and summing to the total exactly.
    exp_.network_.advance_time(event.time - now_, training_count_ > 0);
    now_ = event.time;
    ++stats_.events_processed;
    if (event.kind == EventKind::kTrainDone) {
      --training_count_;  // i's training interval ends at this instant
    }
    switch (event.kind) {
      case EventKind::kTrainDone:
        process_train_done(event);
        break;
      case EventKind::kMessageArrival:
        process_arrival(event);
        break;
      case EventKind::kLocalStep:
        process_local_step(event, result);
        stop = result.reached_target;
        break;
    }
    if (stop) break;
    if (queue_.empty()) {
      bool all_done = true;
      for (const bool d : done_) all_done = all_done && d;
      if (all_done) break;
      // Quiescence: nothing can happen, yet nodes are still gated — the
      // messages that would open their gates were lost to failure
      // injection. Force-unblock them (counted) rather than deadlock.
      bool any_blocked = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!blocked_[i]) continue;
        any_blocked = true;
        blocked_[i] = false;
        ++stats_.staleness_overrides;
        queue_.push(queue_.last_pop_time(), i, EventKind::kLocalStep,
                    round_[i]);
      }
      if (!any_blocked) {
        throw std::logic_error(
            "EventEngine: quiescent with live nodes and nothing blocked");
      }
    }
  }

  std::uint64_t min_completed = round_.empty() ? 0 : round_[0];
  for (const std::uint32_t r : round_) {
    min_completed = std::min<std::uint64_t>(min_completed, r);
  }
  result.rounds_run = static_cast<std::size_t>(min_completed);
  if (result.series.empty() ||
      result.series.back().round < result.rounds_run) {
    const double mean_train_loss = Experiment::mean_loss_over(
        train_losses_,
        exp_.eval_sample_active()
            ? std::span<const std::uint32_t>(
                  exp_.eval_subset(result.rounds_run))
            : std::span<const std::uint32_t>{},
        [&](std::size_t i) { return static_cast<bool>(trained_[i]); });
    // The Network clock stands at the last processed event (advance_time),
    // so the final point's sim_seconds and its compute/comm split need no
    // override — collect_summary() reads the same clocks.
    const MetricPoint point = exp_.evaluate(result.rounds_run, mean_train_loss);
    result.series.push_back(point);
  }
  exp_.collect_summary(result);
  return result;
}

ExperimentResult Experiment::run_async() { return EventEngine(*this).run(); }

}  // namespace jwins::sim

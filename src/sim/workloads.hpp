// Canonical workloads mirroring the paper's five evaluation datasets
// (§IV-B), built from the synthetic generators. One function per dataset;
// every bench and example uses these so "CIFAR-10-like" means the same thing
// everywhere. The `scale` knob multiplies sample counts (1.0 = bench-sized;
// the paper-scale runs pass larger values and more nodes).
#pragma once

#include <memory>
#include <string>

#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/model.hpp"
#include "nn/models.hpp"

namespace jwins::sim {

struct Workload {
  std::string name;
  std::shared_ptr<const data::Dataset> train;
  std::shared_ptr<const data::Dataset> test;
  data::Partition partition;        ///< per-node train index sets
  nn::ModelFactory model_factory;   ///< identical initial model for all nodes
  float suggested_lr = 0.05f;       ///< grid-searched default, per paper SIV-B
  std::size_t suggested_local_steps = 2;  ///< tau (rounds per epoch knob)
};

/// CIFAR-10 stand-in: 10-class images, sort-and-shard non-IID split
/// (2 shards/node, <= 4 classes per node), GN-LeNet-style CNN.
Workload make_cifar_like(std::size_t nodes, std::uint32_t seed,
                         double scale = 1.0);

/// MovieLens stand-in: low-rank ratings, users dealt to nodes, matrix
/// factorization with embeddings.
Workload make_movielens_like(std::size_t nodes, std::uint32_t seed,
                             double scale = 1.0);

/// Shakespeare stand-in: per-client Markov character streams, stacked LSTM.
Workload make_shakespeare_like(std::size_t nodes, std::uint32_t seed,
                               double scale = 1.0);

/// CelebA stand-in: binary image attribute, client-grouped, small CNN.
Workload make_celeba_like(std::size_t nodes, std::uint32_t seed,
                          double scale = 1.0);

/// FEMNIST stand-in: 12-class images with per-client writing style, CNN.
Workload make_femnist_like(std::size_t nodes, std::uint32_t seed,
                           double scale = 1.0);

/// CIFAR-10 stand-in with the *less strict* 4-shards-per-node partitioning
/// used by the scalability study (paper §IV-F).
Workload make_cifar_like_4shard(std::size_t nodes, std::uint32_t seed,
                                double scale = 1.0);

/// Million-node scaling workload: a tiny 2-class image task (4 features, a
/// ~50-parameter MLP) over a FIXED-size sample pool dealt out cyclically —
/// dataset cost is O(1) in the node count and partitioning is O(nodes), so
/// building the workload never dominates a 100k–1M-node run. Not a paper
/// dataset; exists purely so the scale/shard suite and the scaling-curve
/// bench have a workload whose cost is all engine, no data.
Workload make_scale_like(std::size_t nodes, std::uint32_t seed,
                         double scale = 1.0);

/// Dispatch by name ("cifar", "movielens", "shakespeare", "celeba",
/// "femnist", "scale").
Workload make_workload(const std::string& name, std::size_t nodes,
                       std::uint32_t seed, double scale = 1.0);

/// The five paper names in paper order, then "scale".
const std::vector<std::string>& workload_names();

}  // namespace jwins::sim

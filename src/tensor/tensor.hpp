// Dense row-major float tensor: the numeric substrate under the neural
// network layers (src/nn) and the JWINS flat-parameter machinery.
//
// Design notes:
//  * Value semantics (copy = deep copy); storage is a std::vector<float>.
//  * Shapes are small vectors of std::size_t; rank is dynamic.
//  * Ops needed by the reproduction are provided directly (elementwise
//    arithmetic, matmul, reductions, random fills); no lazy evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace jwins::tensor {

/// Shape of a tensor: extent per dimension. An empty shape denotes a scalar.
using Shape = std::vector<std::size_t>;

/// Total number of elements for a shape.
std::size_t numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form for error messages.
std::string to_string(const Shape& shape);

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty scalar-shaped tensor with a single zero element.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor adopting `values` (size must equal numel(shape)).
  Tensor(Shape shape, std::vector<float> values);

  /// 1-D tensor from an initializer list, e.g. Tensor::of({1.f, 2.f}).
  static Tensor of(std::initializer_list<float> values);

  /// Tensor of the given shape filled from a flat initializer list.
  static Tensor from(Shape shape, std::initializer_list<float> values);

  /// Zeros/ones/constant factories.
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);

  /// I.i.d. uniform [lo, hi) fill using the caller's RNG.
  static Tensor uniform(Shape shape, float lo, float hi, std::mt19937& rng);

  /// I.i.d. normal(mean, stddev) fill using the caller's RNG.
  static Tensor normal(Shape shape, float mean, float stddev,
                       std::mt19937& rng);

  // -- Introspection ---------------------------------------------------------
  const Shape& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float* raw() noexcept { return data_.data(); }
  const float* raw() const noexcept { return data_.data(); }

  // -- Element access --------------------------------------------------------
  float& operator[](std::size_t flat_index);
  float operator[](std::size_t flat_index) const;

  /// Multi-dimensional access; the number of indices must equal rank().
  float& at(std::initializer_list<std::size_t> idx);
  float at(std::initializer_list<std::size_t> idx) const;

  /// Flat offset of a multi-dimensional index.
  std::size_t offset(std::initializer_list<std::size_t> idx) const;

  // -- Shape manipulation ----------------------------------------------------
  /// Returns a copy with a new shape; numel must be preserved.
  Tensor reshape(Shape new_shape) const;

  /// Workspace helper: re-shapes this tensor in place, reusing the existing
  /// storage when the element count already matches (no heap traffic in
  /// steady state). Element values are preserved for the common prefix and
  /// zero-filled for any growth; callers treating this as an output buffer
  /// should overwrite or zero() it.
  void ensure_shape(const Shape& shape);

  /// Rank-2 ensure_shape that avoids materializing a temporary Shape (the
  /// hot path for matmul workspaces — keeps warm reuse truly allocation-free).
  void ensure_shape(std::size_t rows, std::size_t cols);

  /// Returns a transposed copy of a rank-2 tensor.
  Tensor transposed() const;

  // -- In-place arithmetic ---------------------------------------------------
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(const Tensor& rhs);  // elementwise
  Tensor& operator+=(float scalar);
  Tensor& operator*=(float scalar);

  /// this += alpha * rhs (BLAS axpy); shapes must match.
  void axpy(float alpha, const Tensor& rhs);

  /// Sets every element to zero without reallocating.
  void zero() noexcept;

  /// Sets every element to `value`.
  void fill(float value) noexcept;

  // -- Reductions ------------------------------------------------------------
  float sum() const noexcept;
  float mean() const noexcept;
  float min() const;
  float max() const;
  float abs_max() const noexcept;
  /// Squared L2 norm (sum of squares).
  float squared_norm() const noexcept;
  /// L2 norm.
  float norm() const noexcept;
  /// Index of the maximum element (first on ties).
  std::size_t argmax() const;

  /// Applies `fn` to every element in place.
  void apply(const std::function<float(float)>& fn);

  bool same_shape(const Tensor& other) const noexcept;

 private:
  Shape shape_;
  std::vector<float> data_;
};

// -- Free-function arithmetic (value results) ---------------------------------
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, const Tensor& rhs);  // elementwise
Tensor operator*(Tensor lhs, float scalar);
Tensor operator*(float scalar, Tensor rhs);

/// Row-major matrix product: a is [m,k], b is [k,n], result is [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// matmul with the first operand transposed: aᵀ·b where a is [k,m].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// matmul with the second operand transposed: a·bᵀ where b is [n,k].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Scratch variants: compute into `out` (reshaped via ensure_shape, so a
/// warm workspace makes the call allocation-free). Bit-identical to the
/// value-returning forms; `out` must not alias an operand.
void matmul_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b);

/// Dot product of two same-sized tensors viewed as flat vectors.
float dot(const Tensor& a, const Tensor& b);

/// Mean squared error between two same-shaped tensors.
float mse(const Tensor& a, const Tensor& b);

/// True if all elements differ by at most `atol`.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace jwins::tensor

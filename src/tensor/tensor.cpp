#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace jwins::tensor {

std::size_t numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

namespace {

[[noreturn]] void throw_shape_mismatch(const Shape& a, const Shape& b,
                                       const char* op) {
  throw std::invalid_argument(std::string("tensor shape mismatch in ") + op +
                              ": " + to_string(a) + " vs " + to_string(b));
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) throw_shape_mismatch(a.shape(), b.shape(), op);
}

}  // namespace

Tensor::Tensor() : shape_{}, data_(1, 0.0f) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != numel(shape_)) {
    throw std::invalid_argument("tensor data size " +
                                std::to_string(data_.size()) +
                                " does not match shape " + to_string(shape_));
  }
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

Tensor Tensor::from(Shape shape, std::initializer_list<float> values) {
  return Tensor(std::move(shape), std::vector<float>(values));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, std::mt19937& rng) {
  Tensor t(std::move(shape));
  std::uniform_real_distribution<float> dist(lo, hi);
  for (float& v : t.data_) v = dist(rng);
  return t;
}

Tensor Tensor::normal(Shape shape, float mean, float stddev,
                      std::mt19937& rng) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> dist(mean, stddev);
  for (float& v : t.data_) v = dist(rng);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) {
    throw std::out_of_range("tensor axis " + std::to_string(axis) +
                            " out of range for shape " + to_string(shape_));
  }
  return shape_[axis];
}

float& Tensor::operator[](std::size_t flat_index) {
  return data_.at(flat_index);
}

float Tensor::operator[](std::size_t flat_index) const {
  return data_.at(flat_index);
}

std::size_t Tensor::offset(std::initializer_list<std::size_t> idx) const {
  if (idx.size() != shape_.size()) {
    throw std::invalid_argument("index rank " + std::to_string(idx.size()) +
                                " does not match tensor rank " +
                                std::to_string(shape_.size()));
  }
  std::size_t off = 0;
  std::size_t axis = 0;
  for (std::size_t i : idx) {
    if (i >= shape_[axis]) {
      throw std::out_of_range("index " + std::to_string(i) +
                              " out of range on axis " + std::to_string(axis) +
                              " for shape " + to_string(shape_));
    }
    off = off * shape_[axis] + i;
    ++axis;
  }
  return off;
}

float& Tensor::at(std::initializer_list<std::size_t> idx) {
  return data_[offset(idx)];
}

float Tensor::at(std::initializer_list<std::size_t> idx) const {
  return data_[offset(idx)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (numel(new_shape) != data_.size()) {
    throw std::invalid_argument("reshape from " + to_string(shape_) + " to " +
                                to_string(new_shape) +
                                " changes the element count");
  }
  Tensor t(std::move(new_shape), data_);
  return t;
}

void Tensor::ensure_shape(const Shape& shape) {
  if (shape_ != shape) shape_ = shape;
  const std::size_t n = numel(shape_);
  if (data_.size() != n) data_.resize(n, 0.0f);
}

void Tensor::ensure_shape(std::size_t rows, std::size_t cols) {
  if (shape_.size() != 2) shape_.assign(2, 0);
  shape_[0] = rows;
  shape_[1] = cols;
  const std::size_t n = rows * cols;
  if (data_.size() != n) data_.resize(n, 0.0f);
}

Tensor Tensor::transposed() const {
  if (rank() != 2) {
    throw std::invalid_argument("transposed() requires a rank-2 tensor, got " +
                                to_string(shape_));
  }
  const std::size_t rows = shape_[0], cols = shape_[1];
  Tensor out({cols, rows});
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out.data_[c * rows + r] = data_[r * cols + c];
  return out;
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float scalar) {
  for (float& v : data_) v += scalar;
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

void Tensor::axpy(float alpha, const Tensor& rhs) {
  check_same_shape(*this, rhs, "axpy");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * rhs.data_[i];
}

void Tensor::zero() noexcept { std::fill(data_.begin(), data_.end(), 0.0f); }

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

float Tensor::sum() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("min() of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("max() of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::squared_norm() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

float Tensor::norm() const noexcept {
  return std::sqrt(squared_norm());
}

std::size_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("argmax() of empty tensor");
  return static_cast<std::size_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

void Tensor::apply(const std::function<float(float)>& fn) {
  for (float& v : data_) v = fn(v);
}

bool Tensor::same_shape(const Tensor& other) const noexcept {
  return shape_ == other.shape_;
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, const Tensor& rhs) {
  lhs *= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

Tensor operator*(float scalar, Tensor rhs) {
  rhs *= scalar;
  return rhs;
}

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw_shape_mismatch(a.shape(), b.shape(), "matmul");
  }
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  out.ensure_shape(m, n);
  out.zero();
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw_shape_mismatch(a.shape(), b.shape(), "matmul");
  }
  Tensor out({a.dim(0), b.dim(1)});  // single allocation, already zeroed
  matmul_into(out, a, b);
  return out;
}

void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw_shape_mismatch(a.shape(), b.shape(), "matmul_tn");
  }
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  out.ensure_shape(m, n);
  out.zero();
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw_shape_mismatch(a.shape(), b.shape(), "matmul_tn");
  }
  Tensor out({a.dim(1), b.dim(1)});
  matmul_tn_into(out, a, b);
  return out;
}

void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw_shape_mismatch(a.shape(), b.shape(), "matmul_nt");
  }
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  out.ensure_shape(m, n);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += double(arow[p]) * brow[p];
      po[i * n + j] = static_cast<float>(acc);
    }
  }
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw_shape_mismatch(a.shape(), b.shape(), "matmul_nt");
  }
  Tensor out({a.dim(0), b.dim(0)});
  matmul_nt_into(out, a, b);
  return out;
}

float dot(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) throw_shape_mismatch(a.shape(), b.shape(), "dot");
  double acc = 0.0;
  const float* pa = a.raw();
  const float* pb = b.raw();
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

float mse(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mse");
  if (a.size() == 0) return 0.0f;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.size()));
}

bool allclose(const Tensor& a, const Tensor& b, float atol) {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << to_string(t.shape()) << "{";
  const std::size_t show = std::min<std::size_t>(t.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << t[i];
  }
  if (t.size() > show) os << ", ...";
  return os << "}";
}

}  // namespace jwins::tensor

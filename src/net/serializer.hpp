// Byte-accurate message serialization.
//
// Traffic numbers in the paper (Table I, Figs. 4-6, 9, 10) are measured in
// bytes on the wire, so every algorithm in this reproduction serializes its
// messages to real byte buffers through this writer/reader pair; byte counts
// come from the buffers themselves, not from analytic formulas.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace jwins::net {

/// Append-only little-endian byte sink.
///
/// Hot-path reuse: construct from (or reset() with) a recycled vector — e.g.
/// one from net::BufferPool::acquire() — and the writer appends into that
/// storage's existing capacity instead of growing a fresh heap buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopts `storage` as the output buffer (cleared, capacity kept).
  explicit ByteWriter(std::vector<std::uint8_t> storage)
      : buffer_(std::move(storage)) {
    buffer_.clear();
  }

  /// Drops written bytes but keeps the heap capacity for the next message.
  void clear() noexcept { buffer_.clear(); }

  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  void write_u16(std::uint16_t v) { write_raw(&v, sizeof v); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  /// Length-prefixed (u32) byte blob.
  void write_bytes(std::span<const std::uint8_t> bytes);

  /// Length-prefixed (u32) float array written as raw IEEE-754 bits.
  void write_f32_array(std::span<const float> values);

  /// Length-prefixed (u32) u32 array.
  void write_u32_array(std::span<const std::uint32_t> values);

  std::size_t size() const noexcept { return buffer_.size(); }

  std::vector<std::uint8_t> take() && { return std::move(buffer_); }
  const std::vector<std::uint8_t>& buffer() const noexcept { return buffer_; }

 private:
  // resize+memcpy instead of insert(): the insert form trips GCC 12's
  // -Wstringop-overflow false positive (GCC PR 105329) at -O2, which breaks
  // -Werror builds.
  void write_raw(const void* src, std::size_t n) {
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + n);
    std::memcpy(buffer_.data() + old_size, src, n);
  }

  std::vector<std::uint8_t> buffer_;
};

/// Sequential reader over a serialized buffer; throws on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint16_t read_u16() { return read_pod<std::uint16_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }

  std::vector<std::uint8_t> read_bytes();
  std::vector<float> read_f32_array();
  std::vector<std::uint32_t> read_u32_array();

  /// Zero-copy variant of read_bytes(): a view into the underlying buffer,
  /// valid as long as the buffer outlives the reader (message bodies do —
  /// they are refcounted net::SharedBytes).
  std::span<const std::uint8_t> view_bytes();

  /// Reuse variants: decode into a caller-owned vector (cleared first), so a
  /// warmed buffer makes the read allocation-free.
  void read_f32_array_into(std::vector<float>& out);
  void read_u32_array_into(std::vector<std::uint32_t>& out);

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  T read_pod() {
    if (remaining() < sizeof(T)) {
      throw std::out_of_range("ByteReader: truncated message (" +
                              std::to_string(remaining()) + " bytes left, need " +
                              std::to_string(sizeof(T)) + ")");
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace jwins::net

#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace jwins::net {

void TrafficMeter::record_send(std::uint32_t sender, const Message& msg) {
  NodeTraffic& t = per_node_.at(sender);
  t.messages_sent += 1;
  t.bytes_sent += msg.wire_size();
  t.payload_bytes_sent += msg.payload_bytes();
  t.metadata_bytes_sent += msg.metadata_bytes;
}

NodeTraffic TrafficMeter::total() const {
  NodeTraffic sum;
  for (const NodeTraffic& t : per_node_) {
    sum.messages_sent += t.messages_sent;
    sum.bytes_sent += t.bytes_sent;
    sum.payload_bytes_sent += t.payload_bytes_sent;
    sum.metadata_bytes_sent += t.metadata_bytes_sent;
  }
  return sum;
}

double TrafficMeter::average_bytes_per_node() const {
  if (per_node_.empty()) return 0.0;
  return static_cast<double>(total().bytes_sent) /
         static_cast<double>(per_node_.size());
}

void TrafficMeter::reset() {
  std::fill(per_node_.begin(), per_node_.end(), NodeTraffic{});
}

void Network::send(std::uint32_t to, Message msg) {
  if (to >= mailboxes_.size()) {
    throw std::out_of_range("Network::send: destination out of range");
  }
  if (msg.sender >= mailboxes_.size()) {
    throw std::out_of_range("Network::send: sender out of range");
  }
  const std::size_t wire = msg.wire_size();
  // Failure-injection verdict: pure (hashes logical coordinates only), so
  // drop decisions are deterministic and independent of thread scheduling.
  const DropCause cause = time_.drop_cause(msg.sender, to, msg.round);
  {
    std::lock_guard<std::mutex> lock(meter_lock_);
    meter_.record_send(msg.sender, msg);
    time_.record_send(msg.sender, to, wire);
    time_.count_drop(cause);
    if (cause != DropCause::kNone) {
      // A dropped transfer never delivers, so its edge record retires here
      // (no-op unless per-transfer retirement is enabled — the synchronous
      // engine keeps the records for finish_round()'s critical path).
      time_.retire_send(msg.sender, to);
    }
  }
  if (cause != DropCause::kNone) {
    return;  // the bytes left the sender but never arrive
  }
  if (sink_ != nullptr) {
    // Event-engine interception: the message survived failure injection and
    // was fully accounted; the sink decides *when* it lands (deliver()).
    sink_->on_deliver(to, std::move(msg));
    return;
  }
  std::lock_guard<std::mutex> lock(mailbox_lock(to));
  mailboxes_[to].push_back(std::move(msg));
}

void Network::deliver(std::uint32_t to, Message msg) {
  if (to >= mailboxes_.size()) {
    throw std::out_of_range("Network::deliver: destination out of range");
  }
  std::lock_guard<std::mutex> lock(mailbox_lock(to));
  mailboxes_[to].push_back(std::move(msg));
}

std::vector<Message> Network::drain(std::uint32_t node) {
  std::vector<Message> out;
  drain_into(node, out);
  return out;
}

void Network::drain_into(std::uint32_t node, std::vector<Message>& out) {
  if (node >= mailboxes_.size()) {
    throw std::out_of_range("Network::drain: node out of range");
  }
  out.clear();
  {
    std::lock_guard<std::mutex> lock(mailbox_lock(node));
    out.swap(mailboxes_[node]);
  }
  // Canonical delivery order: concurrent senders append in scheduling order,
  // but receivers must fold contributions in a fixed order or float sums
  // (and downstream TopK tie-breaks) would vary run to run. (round, sender)
  // ascending is exactly the arrival order of the sequential engine, whose
  // share phase walks nodes in rank order; the sort is stable so multiple
  // messages from one sender keep their emission order.
  std::stable_sort(out.begin(), out.end(),
                   [](const Message& a, const Message& b) {
                     return a.round != b.round ? a.round < b.round
                                               : a.sender < b.sender;
                   });
}

void Network::finish_round(double compute_seconds) {
  const TimeModel::RoundTime rt = time_.finish_round(compute_seconds);
  sim_compute_seconds_ += rt.compute;
  sim_comm_seconds_ += rt.comm;
  // Same two doubles, same addition order as the legacy
  // `compute + comm_time(max_bytes)` expression — bit-identical clocks.
  sim_seconds_ += rt.compute + rt.comm;
}

void Network::advance_time(double delta, bool compute) {
  if (delta <= 0.0) return;  // simultaneous events advance nothing
  if (compute) {
    sim_compute_seconds_ += delta;
  } else {
    sim_comm_seconds_ += delta;
  }
  // The total is the exact sum of the buckets, recomputed after every
  // advance: compute + comm == total bit-exactly, and all three clocks are
  // monotone (non-negative increments, correctly rounded addition).
  sim_seconds_ = sim_compute_seconds_ + sim_comm_seconds_;
}

void Network::retire_transfer(std::uint32_t sender, std::uint32_t receiver) {
  std::lock_guard<std::mutex> lock(meter_lock_);
  time_.retire_send(sender, receiver);
}

}  // namespace jwins::net

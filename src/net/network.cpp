#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace jwins::net {

void TrafficMeter::record_send(std::uint32_t sender, const Message& msg) {
  NodeTraffic& t = per_node_.at(sender);
  t.messages_sent += 1;
  t.bytes_sent += msg.wire_size();
  t.payload_bytes_sent += msg.payload_bytes();
  t.metadata_bytes_sent += msg.metadata_bytes;
}

NodeTraffic TrafficMeter::total() const {
  NodeTraffic sum;
  for (const NodeTraffic& t : per_node_) {
    sum.messages_sent += t.messages_sent;
    sum.bytes_sent += t.bytes_sent;
    sum.payload_bytes_sent += t.payload_bytes_sent;
    sum.metadata_bytes_sent += t.metadata_bytes_sent;
  }
  return sum;
}

double TrafficMeter::average_bytes_per_node() const {
  if (per_node_.empty()) return 0.0;
  return static_cast<double>(total().bytes_sent) /
         static_cast<double>(per_node_.size());
}

void TrafficMeter::reset() {
  std::fill(per_node_.begin(), per_node_.end(), NodeTraffic{});
}

void Network::set_drop(double probability, std::uint64_t seed) {
  if (probability < 0.0 || probability >= 1.0) {
    throw std::invalid_argument("Network::set_drop: probability must be in [0, 1)");
  }
  drop_probability_ = probability;
  drop_seed_ = seed;
}

namespace {

// SplitMix64 finalizer: turns the (sender, receiver, round, seed) tuple into
// a uniform 64-bit hash so drop decisions are deterministic and independent
// of thread scheduling.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void Network::send(std::uint32_t to, Message msg) {
  if (to >= mailboxes_.size()) {
    throw std::out_of_range("Network::send: destination out of range");
  }
  if (msg.sender >= mailboxes_.size()) {
    throw std::out_of_range("Network::send: sender out of range");
  }
  const std::size_t wire = msg.wire_size();
  bool drop = false;
  if (drop_probability_ > 0.0) {
    const std::uint64_t h = mix64(drop_seed_ ^ mix64(msg.sender) ^
                                  mix64(std::uint64_t{to} << 20) ^
                                  mix64(std::uint64_t{msg.round} << 40));
    drop = static_cast<double>(h) / 18446744073709551616.0 < drop_probability_;
  }
  {
    std::lock_guard<std::mutex> lock(meter_lock_);
    meter_.record_send(msg.sender, msg);
    round_bytes_[msg.sender] += wire;
    if (drop) ++dropped_;
  }
  if (drop) return;  // the bytes left the sender but never arrive
  std::lock_guard<std::mutex> lock(mailbox_locks_[to]);
  mailboxes_[to].push_back(std::move(msg));
}

std::vector<Message> Network::drain(std::uint32_t node) {
  if (node >= mailboxes_.size()) {
    throw std::out_of_range("Network::drain: node out of range");
  }
  std::lock_guard<std::mutex> lock(mailbox_locks_[node]);
  std::vector<Message> out;
  out.swap(mailboxes_[node]);
  return out;
}

void Network::finish_round(double compute_seconds) {
  std::uint64_t max_bytes = 0;
  for (std::uint64_t b : round_bytes_) max_bytes = std::max(max_bytes, b);
  sim_seconds_ += compute_seconds + link_.comm_time(max_bytes);
  std::fill(round_bytes_.begin(), round_bytes_.end(), 0);
}

}  // namespace jwins::net

#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/rng.hpp"

namespace jwins::net {

void TrafficMeter::record_send(std::uint32_t sender, const Message& msg) {
  NodeTraffic& t = per_node_.at(sender);
  t.messages_sent += 1;
  t.bytes_sent += msg.wire_size();
  t.payload_bytes_sent += msg.payload_bytes();
  t.metadata_bytes_sent += msg.metadata_bytes;
}

NodeTraffic TrafficMeter::total() const {
  NodeTraffic sum;
  for (const NodeTraffic& t : per_node_) {
    sum.messages_sent += t.messages_sent;
    sum.bytes_sent += t.bytes_sent;
    sum.payload_bytes_sent += t.payload_bytes_sent;
    sum.metadata_bytes_sent += t.metadata_bytes_sent;
  }
  return sum;
}

double TrafficMeter::average_bytes_per_node() const {
  if (per_node_.empty()) return 0.0;
  return static_cast<double>(total().bytes_sent) /
         static_cast<double>(per_node_.size());
}

void TrafficMeter::reset() {
  std::fill(per_node_.begin(), per_node_.end(), NodeTraffic{});
}

void Network::set_drop(double probability, std::uint64_t seed) {
  if (probability < 0.0 || probability >= 1.0) {
    throw std::invalid_argument("Network::set_drop: probability must be in [0, 1)");
  }
  drop_probability_ = probability;
  drop_seed_ = seed;
}

void Network::send(std::uint32_t to, Message msg) {
  if (to >= mailboxes_.size()) {
    throw std::out_of_range("Network::send: destination out of range");
  }
  if (msg.sender >= mailboxes_.size()) {
    throw std::out_of_range("Network::send: sender out of range");
  }
  const std::size_t wire = msg.wire_size();
  bool drop = false;
  if (drop_probability_ > 0.0) {
    // SplitMix64 over the (sender, receiver, round, seed) tuple: drop
    // decisions are deterministic and independent of thread scheduling.
    const std::uint64_t h =
        core::mix64(drop_seed_ ^ core::mix64(msg.sender) ^
                    core::mix64(std::uint64_t{to} << 20) ^
                    core::mix64(std::uint64_t{msg.round} << 40));
    drop = static_cast<double>(h) / 18446744073709551616.0 < drop_probability_;
  }
  {
    std::lock_guard<std::mutex> lock(meter_lock_);
    meter_.record_send(msg.sender, msg);
    round_bytes_[msg.sender] += wire;
    if (drop) ++dropped_;
  }
  if (drop) return;  // the bytes left the sender but never arrive
  std::lock_guard<std::mutex> lock(mailbox_locks_[to]);
  mailboxes_[to].push_back(std::move(msg));
}

std::vector<Message> Network::drain(std::uint32_t node) {
  std::vector<Message> out;
  drain_into(node, out);
  return out;
}

void Network::drain_into(std::uint32_t node, std::vector<Message>& out) {
  if (node >= mailboxes_.size()) {
    throw std::out_of_range("Network::drain: node out of range");
  }
  out.clear();
  {
    std::lock_guard<std::mutex> lock(mailbox_locks_[node]);
    out.swap(mailboxes_[node]);
  }
  // Canonical delivery order: concurrent senders append in scheduling order,
  // but receivers must fold contributions in a fixed order or float sums
  // (and downstream TopK tie-breaks) would vary run to run. (round, sender)
  // ascending is exactly the arrival order of the sequential engine, whose
  // share phase walks nodes in rank order; the sort is stable so multiple
  // messages from one sender keep their emission order.
  std::stable_sort(out.begin(), out.end(),
                   [](const Message& a, const Message& b) {
                     return a.round != b.round ? a.round < b.round
                                               : a.sender < b.sender;
                   });
}

void Network::finish_round(double compute_seconds) {
  std::uint64_t max_bytes = 0;
  for (std::uint64_t b : round_bytes_) max_bytes = std::max(max_bytes, b);
  sim_seconds_ += compute_seconds + link_.comm_time(max_bytes);
  std::fill(round_bytes_.begin(), round_bytes_.end(), 0);
}

}  // namespace jwins::net

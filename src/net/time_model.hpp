// Heterogeneous link-time & fault-injection engine — the simulated clock.
//
// The paper's time-to-accuracy comparisons (Figs. 6/8, Table 1) depend on
// how communication time is modeled. The flat LinkModel (every node on an
// identical link) is the degenerate case of this subsystem: a TimeModel
// additionally supports per-edge bandwidth/latency drawn from seeded
// distributions, per-node compute-speed multipliers (stragglers), and fault
// injection beyond i.i.d. message drop — per-edge drop probabilities, node
// crash/rejoin schedules, and correlated burst outages. Every random
// attribute is a pure function of (experiment seed, entity coordinates) via
// core::derive_seed, so results are bit-identical at any thread count and
// the attributes survive topology churn (an edge's bandwidth depends only
// on its endpoints, not on when the edge first appears).
//
// With heterogeneity off the round clock reduces EXACTLY (same doubles, same
// operation order) to the legacy flat formula
//     compute + latency + max_node_bytes / bandwidth,
// which keeps all pre-existing results byte-identical; the golden test in
// tests/test_time_model.cpp pins this. docs/SIMULATION.md is the full
// reference: formulas, fault semantics, determinism guarantees, and the
// scenario keys that drive this file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jwins::net {

/// Legacy flat bandwidth/latency link model: the simulated duration of one
/// communication phase is latency + max_node_bytes / bandwidth — every node
/// on an identical link, the slowest sender gating the bulk-synchronous
/// round. Kept as the TimeModel's base (and its exact reduction target).
struct LinkModel {
  double bandwidth_bytes_per_sec = 12.5e6;  ///< 100 Mbit/s default
  double latency_sec = 2e-3;

  double comm_time(std::uint64_t max_node_bytes) const noexcept {
    return latency_sec +
           static_cast<double>(max_node_bytes) / bandwidth_bytes_per_sec;
  }
};

/// Distribution spec for a per-edge link parameter (bandwidth or latency).
/// `kBase` follows the flat LinkModel knob; the other kinds draw one value
/// per undirected edge, keyed on (seed, min(u,v), max(u,v)).
struct LinkDist {
  enum class Kind {
    kBase,       ///< every edge uses the LinkModel base value (the default)
    kUniform,    ///< uniform in [a, b]
    kLognormal,  ///< a * exp(b * Z), Z ~ N(0,1): median a, log-space sigma b
  };
  Kind kind = Kind::kBase;
  double a = 0.0;
  double b = 0.0;

  bool is_base() const noexcept { return kind == Kind::kBase; }
};

/// Per-edge drop-probability spec. Unlike the legacy i.i.d. knob (one global
/// probability for every message), each edge gets its own probability —
/// drawn once per edge for `kUniform` — and the per-message decision is then
/// keyed on (edge, round).
struct EdgeDropDist {
  enum class Kind {
    kOff,      ///< no per-edge drops (the default)
    kFixed,    ///< every edge drops with probability a
    kUniform,  ///< per-edge probability uniform in [a, b]
  };
  Kind kind = Kind::kOff;
  double a = 0.0;
  double b = 0.0;

  bool is_off() const noexcept { return kind == Kind::kOff; }
};

/// Everything beyond the flat LinkModel: heterogeneity distributions,
/// stragglers, and the fault-injection schedule. Field names match the
/// scenario keys that set them (docs/SIMULATION.md documents both).
struct TimeModelConfig {
  LinkDist bandwidth_dist;  ///< per-edge bandwidth, bytes/sec
  LinkDist latency_dist;    ///< per-edge latency, seconds

  /// Stragglers: each node is independently a straggler with this
  /// probability (decided once per node from the seed); a straggler's
  /// simulated compute time is multiplied by `straggler_slowdown`. Both
  /// knobs must be set for effect: with the multiplier at its default 1 the
  /// fraction is inert (no node counts as a straggler, the clock stays on
  /// the legacy path).
  double straggler_fraction = 0.0;
  double straggler_slowdown = 1.0;

  EdgeDropDist edge_drop;

  /// Crash/rejoin schedule: `crash_nodes` nodes (a seeded deterministic
  /// choice) are down for rounds [crash_at, rejoin_at); rejoin_at = 0 means
  /// they never come back. A crashed node neither trains nor communicates,
  /// and messages addressed to it are dropped at the fabric.
  std::size_t crash_nodes = 0;
  std::size_t crash_at = 0;
  std::size_t rejoin_at = 0;

  /// Correlated burst outages: every `burst_every` rounds (starting at round
  /// burst_every) the whole fabric degrades for `burst_length` rounds, each
  /// in-flight message dropped with probability `burst_drop`.
  std::size_t burst_every = 0;
  std::size_t burst_length = 1;
  double burst_drop = 1.0;

  /// True when the round clock must take the per-edge critical-path engine
  /// instead of the exact legacy formula.
  bool heterogeneous_time() const noexcept;
  /// True when any fault-injection feature beyond the legacy i.i.d. drop is
  /// configured.
  bool any_faults() const noexcept;
  /// heterogeneous_time() || any_faults(): gates the extended simulated-time
  /// block in result JSON (absent = legacy report shape, byte-identical).
  bool extended() const noexcept { return heterogeneous_time() || any_faults(); }

  /// Cross-field sanity checks, one "<scenario key>: <why>" per violation
  /// (empty = valid); folded into sim::ExperimentConfig::validate().
  std::vector<std::string> validate() const;
};

/// Why a message was discarded by failure injection. Precedence is the enum
/// order: a message on a crashed endpoint is counted as kCrash even if the
/// burst/edge/i.i.d. dice would also have dropped it.
enum class DropCause { kNone, kCrash, kBurst, kEdge, kIid };

/// The simulated clock and fault oracle for one Network. Owns the per-round
/// byte accounting and converts it into simulated time:
///
///  * legacy path (heterogeneous_time() == false): the flat LinkModel
///    formula over the per-node send totals, bit-identical to the pre-
///    TimeModel engine;
///  * critical path (heterogeneous): each sender's messages serialize
///    through its uplink in send order at the edge's bandwidth, every edge
///    then pays its own latency; the communication phase is the max over
///    edges of (queued transfer completion + latency(e)), and the compute
///    phase is the max over alive nodes of compute_seconds * multiplier.
///
/// Thread-safety contract (matching Network's locking): the attribute
/// getters and drop_cause() are pure and callable concurrently;
/// record_send()/count_drop() must be serialized by the caller (Network
/// calls them under its meter lock); finish_round() runs between rounds,
/// single-threaded.
class TimeModel {
 public:
  explicit TimeModel(std::size_t n, LinkModel base = {},
                     TimeModelConfig config = {}, std::uint64_t seed = 0);

  std::size_t size() const noexcept { return n_; }
  const LinkModel& base() const noexcept { return base_; }
  const TimeModelConfig& config() const noexcept { return config_; }
  bool extended() const noexcept { return config_.extended(); }
  bool has_crashes() const noexcept { return config_.crash_nodes > 0; }

  // --- per-entity attributes (pure functions of the seed) -----------------
  double edge_bandwidth(std::uint32_t u, std::uint32_t v) const;
  double edge_latency(std::uint32_t u, std::uint32_t v) const;
  double edge_drop_probability(std::uint32_t u, std::uint32_t v) const;
  bool is_straggler(std::uint32_t node) const;
  double compute_multiplier(std::uint32_t node) const;
  std::size_t straggler_count() const;

  /// True when `node` participates in `round` (not inside its crash window).
  bool node_alive(std::uint32_t node, std::size_t round) const;
  /// True when `node` is in the seeded crash set (regardless of round).
  bool node_crashes(std::uint32_t node) const;
  /// True when `round` falls inside a burst-outage window.
  bool burst_active(std::size_t round) const;

  // --- send-path hooks (see the thread-safety contract above) -------------
  /// Enables the legacy i.i.d. message drop (hash formula unchanged from the
  /// original Network::set_drop, so existing seeded runs keep their drops).
  void set_iid_drop(double probability, std::uint64_t seed);
  double iid_drop_probability() const noexcept { return iid_drop_probability_; }

  /// Failure-injection verdict for one message. Pure: the decision hashes
  /// logical coordinates only, so it is independent of thread scheduling.
  DropCause drop_cause(std::uint32_t sender, std::uint32_t receiver,
                       std::uint32_t round) const;

  /// Accounts `wire_bytes` against the (sender -> receiver) edge for the
  /// current round. Dropped messages are recorded too — the sender paid.
  void record_send(std::uint32_t sender, std::uint32_t receiver,
                   std::uint64_t wire_bytes);
  void count_drop(DropCause cause);

  /// Per-transfer edge-record retirement — the asynchronous engine's fix
  /// for the unbounded round_edges_ growth on long stop_at_sim_time runs:
  /// with retirement on, record_send() appends one record per send (never
  /// merging into an earlier one) and retire_send() erases it again once
  /// the transfer is delivered or dropped, so live records are bounded by
  /// the in-flight message count instead of accumulating until a
  /// finish_round() that genuine asynchrony never calls.
  void set_retire_records(bool on) noexcept { retire_records_ = on; }
  bool retire_records() const noexcept { return retire_records_; }
  /// Erases the oldest live (sender -> receiver) record; no-op with
  /// retirement off. Same serialization contract as record_send().
  void retire_send(std::uint32_t sender, std::uint32_t receiver);
  /// Live edge records right now (retirement mode only; 0 once every
  /// transfer has been delivered or dropped).
  std::size_t edge_record_count() const noexcept { return edge_record_count_; }
  /// High-water mark of edge_record_count() over the model's lifetime.
  std::size_t edge_records_high_water() const noexcept {
    return edge_records_high_water_;
  }

  /// One round of simulated time, split into phases (the Network adds
  /// compute + comm to its clock; the report keeps the split). Resets the
  /// per-round byte accounting and advances the internal round cursor used
  /// for crash bookkeeping.
  struct RoundTime {
    double compute = 0.0;
    double comm = 0.0;
  };
  RoundTime finish_round(double compute_seconds);

  // --- fault bookkeeping ---------------------------------------------------
  std::uint64_t dropped_total() const noexcept {
    return dropped_iid_ + dropped_edge_ + dropped_burst_ + dropped_crash_;
  }
  std::uint64_t dropped_iid() const noexcept { return dropped_iid_; }
  std::uint64_t dropped_edge() const noexcept { return dropped_edge_; }
  std::uint64_t dropped_burst() const noexcept { return dropped_burst_; }
  std::uint64_t dropped_crash() const noexcept { return dropped_crash_; }
  /// Sum over finished rounds of the number of crashed nodes in that round.
  std::uint64_t crashed_node_rounds() const noexcept {
    return crashed_node_rounds_;
  }

  /// One-line human summary ("bandwidth lognormal(100 Mbit, σ=0.75), 2
  /// stragglers ×4, ...") for CLI progress output; "flat link model" when
  /// nothing is configured.
  std::string describe() const;

 private:
  double edge_u01(std::uint32_t u, std::uint32_t v, std::uint64_t salt) const;
  double edge_normal(std::uint32_t u, std::uint32_t v,
                     std::uint64_t salt) const;
  double draw_link(const LinkDist& dist, double base_value, std::uint32_t u,
                   std::uint32_t v, std::uint64_t salt) const;

  std::size_t n_;
  LinkModel base_;
  TimeModelConfig config_;
  std::uint64_t seed_;
  bool hetero_time_;

  std::vector<bool> crash_set_;  ///< seeded choice of crash_nodes victims

  double iid_drop_probability_ = 0.0;
  std::uint64_t iid_drop_seed_ = 0;

  /// Per-sender (receiver, bytes) accumulators for the current round, in
  /// send order (= the sender's deterministic neighbor iteration order).
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      round_edges_;
  std::size_t round_cursor_ = 0;
  bool retire_records_ = false;  ///< per-transfer retirement (async engine)
  std::size_t edge_record_count_ = 0;
  std::size_t edge_records_high_water_ = 0;

  std::uint64_t dropped_iid_ = 0;
  std::uint64_t dropped_edge_ = 0;
  std::uint64_t dropped_burst_ = 0;
  std::uint64_t dropped_crash_ = 0;
  std::uint64_t crashed_node_rounds_ = 0;
};

}  // namespace jwins::net

// Immutable shared message bodies and the send-buffer pool.
//
// A node shares one payload with every neighbor, and the old Message carried
// its bytes by value — a gossip fan-out of degree d heap-copied the body d
// times per round. SharedBytes makes the body an immutable refcounted
// buffer: copying a Message bumps a reference count, and all mailboxes view
// the same bytes (safe because receivers only ever read).
//
// BufferPool closes the loop on the send side: share() encodes into a
// vector acquired from the pool, adopt() wraps it into a SharedBytes whose
// release hands the storage back, and next round's acquire() reuses it —
// steady state, the per-message heap traffic is one small control-block
// allocation instead of O(degree) body copies.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace jwins::net {

/// Immutable, cheaply copyable byte buffer. Converts implicitly to
/// std::span<const std::uint8_t>, so readers (ByteReader, decode_payload)
/// take it like any other byte range without copying.
class SharedBytes {
 public:
  SharedBytes() = default;
  SharedBytes(std::vector<std::uint8_t> bytes)  // NOLINT(google-explicit-*)
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<std::vector<std::uint8_t>>(std::move(bytes))) {}
  SharedBytes(std::initializer_list<std::uint8_t> bytes)
      : SharedBytes(std::vector<std::uint8_t>(bytes)) {}

  /// A zero-filled body of `n` bytes (test/bench convenience).
  static SharedBytes zeros(std::size_t n) {
    return SharedBytes(std::vector<std::uint8_t>(n, 0));
  }

  std::span<const std::uint8_t> span() const noexcept {
    return data_ ? std::span<const std::uint8_t>(*data_)
                 : std::span<const std::uint8_t>();
  }
  operator std::span<const std::uint8_t>() const noexcept { return span(); }

  std::size_t size() const noexcept { return data_ ? data_->size() : 0; }
  bool empty() const noexcept { return size() == 0; }
  const std::uint8_t* data() const noexcept {
    return data_ ? data_->data() : nullptr;
  }
  std::uint8_t operator[](std::size_t i) const { return (*data_)[i]; }

  /// True when both instances view the same underlying storage (the fan-out
  /// sharing guarantee the tests assert).
  bool shares_storage_with(const SharedBytes& other) const noexcept {
    return data_ != nullptr && data_ == other.data_;
  }

 private:
  friend class BufferPool;
  explicit SharedBytes(std::shared_ptr<const std::vector<std::uint8_t>> data)
      : data_(std::move(data)) {}

  std::shared_ptr<const std::vector<std::uint8_t>> data_;
};

/// Thread-safe free list of byte vectors. acquire() pops a warmed buffer (or
/// returns a fresh empty one), adopt() turns a filled buffer into a
/// SharedBytes that returns its storage here when the last reference drops.
/// The pool state is refcounted, so in-flight SharedBytes stay valid even if
/// the pool itself is destroyed first.
class BufferPool {
 public:
  BufferPool() : state_(std::make_shared<State>()) {}

  /// An empty vector, with capacity from a previously released body when one
  /// is available.
  std::vector<std::uint8_t> acquire();

  /// Returns storage to the free list directly (for buffers that never
  /// became messages).
  void release(std::vector<std::uint8_t>&& bytes);

  /// Wraps `bytes` into a SharedBytes whose destruction recycles the
  /// storage into this pool.
  SharedBytes adopt(std::vector<std::uint8_t>&& bytes);

  /// Buffers currently parked in the free list.
  std::size_t idle_count() const;

 private:
  struct State {
    std::mutex mutex;
    std::vector<std::vector<std::uint8_t>> free;
  };

  std::shared_ptr<State> state_;
};

}  // namespace jwins::net

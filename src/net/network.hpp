// In-process simulated message-passing network with byte accounting.
//
// Substitution for the paper's ZeroMQ-over-TCP deployment: nodes exchange
// fully serialized byte buffers through per-node mailboxes; a TrafficMeter
// records payload vs. metadata bytes per node (the split behind Figures 4/9),
// and a net::TimeModel (net/time_model.hpp) converts per-round byte volumes
// into simulated wall-clock time — the basis of the paper's time-to-accuracy
// comparisons. The TimeModel also owns failure injection (i.i.d. and
// per-edge message drop, node crash/rejoin, burst outages) and per-edge
// bandwidth/latency heterogeneity; its default configuration is the flat
// LinkModel every result before the time-model subsystem was computed under
// (see docs/SIMULATION.md).
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "net/buffer.hpp"
#include "net/time_model.hpp"

namespace jwins::net {

/// One decentralized-learning message: a serialized body plus accounting of
/// how many of its bytes are sparsification metadata (index lists, seeds).
/// The body is an immutable SharedBytes: broadcasting one payload to d
/// neighbors copies a refcount d times, not the bytes (see net/buffer.hpp).
struct Message {
  std::uint32_t sender = 0;
  std::uint32_t round = 0;
  SharedBytes body;
  std::size_t metadata_bytes = 0;  ///< portion of body that is metadata

  /// Fixed per-message envelope: sender + round + body length (TCP/framing
  /// overhead abstracted into a flat constant, identical for all algorithms).
  static constexpr std::size_t kEnvelopeBytes = 12;

  std::size_t wire_size() const noexcept { return body.size() + kEnvelopeBytes; }
  std::size_t payload_bytes() const noexcept {
    return body.size() - metadata_bytes;
  }
};

/// Per-node cumulative traffic counters.
struct NodeTraffic {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;           ///< wire bytes including envelope
  std::uint64_t payload_bytes_sent = 0;   ///< model parameter bytes
  std::uint64_t metadata_bytes_sent = 0;  ///< index/seed metadata bytes
};

/// Aggregates traffic across nodes and rounds. The engine updates node i's
/// counters only from the thread driving node i, so no locking is needed on
/// the hot path; totals are computed on demand.
class TrafficMeter {
 public:
  explicit TrafficMeter(std::size_t n) : per_node_(n) {}

  void record_send(std::uint32_t sender, const Message& msg);

  const NodeTraffic& node(std::size_t i) const { return per_node_.at(i); }
  std::size_t node_count() const noexcept { return per_node_.size(); }

  NodeTraffic total() const;

  /// Average wire bytes sent per node (the y-axis of the paper's
  /// "average cumulative data sent per node" plots).
  double average_bytes_per_node() const;

  void reset();

 private:
  std::vector<NodeTraffic> per_node_;
};

/// Interception point for the discrete-event engine (sim/event_engine.hpp):
/// when a sink is installed, send() hands every *non-dropped* message to the
/// sink instead of the destination mailbox, so delivery can be deferred to
/// the message's simulated arrival time. Drop verdicts, traffic accounting,
/// and the per-round byte bookkeeping all still happen inside send() — the
/// sink only sees messages that survive failure injection.
///
/// Contract: sink callbacks run inside send() on the sending thread; an
/// installed sink requires single-threaded senders (the event loop is
/// sequential). deliver() is how the sink eventually lands a message.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void on_deliver(std::uint32_t to, Message msg) = 0;
};

/// Synchronous mailbox fabric: all sends in round t are visible to receivers
/// in the same round's aggregate phase (D-PSGD is bulk-synchronous).
class Network {
 public:
  /// Flat-link fabric (the legacy constructor every test and bench used).
  Network(std::size_t n, LinkModel link = {})
      : Network(n, TimeModel(n, link)) {}

  /// Fabric over a full time model (heterogeneous links, stragglers,
  /// crash/burst fault injection — see net/time_model.hpp).
  Network(std::size_t n, TimeModel time)
      : mailboxes_(n), meter_(n), time_(std::move(time)) {
    if (time_.size() != n) {
      throw std::invalid_argument("Network: time model sized for a different "
                                  "node count");
    }
  }

  std::size_t size() const noexcept { return mailboxes_.size(); }

  /// Enables lossy-link failure injection: each message is independently
  /// dropped with probability `probability` (deterministic given `seed`:
  /// the decision hashes (sender, receiver, round, seed), so runs are
  /// reproducible regardless of thread scheduling). Dropped messages still
  /// count as sent bytes — the sender paid for them — and are tallied in
  /// messages_dropped().
  void set_drop(double probability, std::uint64_t seed) {
    time_.set_iid_drop(probability, seed);
  }

  /// Messages discarded by failure injection so far (all causes: i.i.d.,
  /// per-edge, burst, crash; the TimeModel keeps the per-cause split).
  std::uint64_t messages_dropped() const noexcept {
    return time_.dropped_total();
  }

  /// The simulated clock & fault oracle (per-edge attributes, crash
  /// schedules, drop statistics).
  const TimeModel& time_model() const noexcept { return time_; }

  /// Queues `msg` for `to` and records traffic against msg.sender.
  /// Thread-safe across concurrent senders (unless a DeliverySink is
  /// installed, which restricts sends to one thread — see DeliverySink).
  void send(std::uint32_t to, Message msg);

  /// Installs (or clears, with nullptr) the delivery interception hook.
  void set_delivery_sink(DeliverySink* sink) noexcept { sink_ = sink; }

  /// Lands a message in `to`'s mailbox directly: no drop verdict, no
  /// accounting — those already happened in the send() that produced the
  /// message. The event engine calls this at the simulated arrival time
  /// (or at aggregation time, for messages staged in a staleness inbox);
  /// the canonical (round, sender) drain order still applies.
  void deliver(std::uint32_t to, Message msg);

  /// Drains node i's mailbox (receiver's view of the round). Messages are
  /// returned sorted by (round, sender) — the sequential engine's arrival
  /// order — so aggregation is independent of thread scheduling.
  std::vector<Message> drain(std::uint32_t node);

  /// Reuse variant: swaps the mailbox contents into `out` (cleared first),
  /// so the receiver's scratch vector and the mailbox circulate their heap
  /// capacity instead of reallocating every round. Same canonical order.
  void drain_into(std::uint32_t node, std::vector<Message>& out);

  /// Advances the simulated clock by one round: compute phase plus the
  /// communication time implied by this round's send volumes (per-node
  /// totals under the flat model, the per-edge critical path under a
  /// heterogeneous one — see net/time_model.hpp).
  void finish_round(double compute_seconds);

  /// Event-granularity clock advance (the asynchronous engine's accounting
  /// path; never mixed with finish_round() in one run): attributes `delta`
  /// simulated seconds to the compute phase when `compute` is true, to the
  /// communication phase otherwise, then recomputes the total as the exact
  /// sum of the two buckets — so simulated_compute_seconds() +
  /// simulated_comm_seconds() == simulated_seconds() holds bit-exactly at
  /// every instant, and all three clocks are monotone (docs/SIMULATION.md
  /// "Phase attribution").
  void advance_time(double delta, bool compute);

  /// Switches the TimeModel to per-transfer edge-record retirement: every
  /// send appends its own record, and retire_transfer() erases it once the
  /// transfer is delivered or dropped. This bounds the round_edges_ cache by
  /// the in-flight message count on arbitrarily long asynchronous runs (the
  /// synchronous engine instead clears records at finish_round()).
  void enable_transfer_retirement() { time_.set_retire_records(true); }

  /// Retires the oldest live edge record of (sender -> receiver); no-op
  /// unless enable_transfer_retirement() was called. Thread-safe like
  /// send()'s accounting.
  void retire_transfer(std::uint32_t sender, std::uint32_t receiver);

  const TrafficMeter& traffic() const noexcept { return meter_; }
  double simulated_seconds() const noexcept { return sim_seconds_; }
  /// Per-phase split of simulated_seconds() (compute + comm == total).
  double simulated_compute_seconds() const noexcept {
    return sim_compute_seconds_;
  }
  double simulated_comm_seconds() const noexcept { return sim_comm_seconds_; }

  /// Send-buffer pool: senders encode into vectors acquired here, and the
  /// storage is recycled when the last receiver releases the body. One pool
  /// per fabric keeps the steady-state round loop free of body allocations.
  BufferPool& pool() noexcept { return pool_; }

 private:
  /// Striped mailbox locking: a fixed pool of mutexes shared round-robin by
  /// node index instead of one mutex per node. A std::mutex is 40 bytes on
  /// this ABI — per-node locks would cost 40 MB at a million nodes for
  /// objects that are idle outside the share phase. Correctness is
  /// unaffected (a mailbox is always guarded by the same stripe); the only
  /// cost is spurious contention between nodes sharing a stripe, invisible
  /// next to the model math around each send.
  static constexpr std::size_t kMailboxStripes = 64;

  std::mutex& mailbox_lock(std::uint32_t node) noexcept {
    return mailbox_locks_[node % kMailboxStripes];
  }

  std::vector<std::vector<Message>> mailboxes_;
  std::vector<std::mutex> mailbox_locks_{kMailboxStripes};
  TrafficMeter meter_;
  TimeModel time_;
  double sim_seconds_ = 0.0;
  double sim_compute_seconds_ = 0.0;
  double sim_comm_seconds_ = 0.0;
  std::mutex meter_lock_;
  BufferPool pool_;
  DeliverySink* sink_ = nullptr;
};

}  // namespace jwins::net

// In-process simulated message-passing network with byte accounting.
//
// Substitution for the paper's ZeroMQ-over-TCP deployment: nodes exchange
// fully serialized byte buffers through per-node mailboxes; a TrafficMeter
// records payload vs. metadata bytes per node (the split behind Figures 4/9),
// and a LinkModel converts per-round byte volumes into simulated wall-clock
// time (the basis of the paper's time-to-accuracy comparisons).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "net/buffer.hpp"

namespace jwins::net {

/// One decentralized-learning message: a serialized body plus accounting of
/// how many of its bytes are sparsification metadata (index lists, seeds).
/// The body is an immutable SharedBytes: broadcasting one payload to d
/// neighbors copies a refcount d times, not the bytes (see net/buffer.hpp).
struct Message {
  std::uint32_t sender = 0;
  std::uint32_t round = 0;
  SharedBytes body;
  std::size_t metadata_bytes = 0;  ///< portion of body that is metadata

  /// Fixed per-message envelope: sender + round + body length (TCP/framing
  /// overhead abstracted into a flat constant, identical for all algorithms).
  static constexpr std::size_t kEnvelopeBytes = 12;

  std::size_t wire_size() const noexcept { return body.size() + kEnvelopeBytes; }
  std::size_t payload_bytes() const noexcept {
    return body.size() - metadata_bytes;
  }
};

/// Per-node cumulative traffic counters.
struct NodeTraffic {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;           ///< wire bytes including envelope
  std::uint64_t payload_bytes_sent = 0;   ///< model parameter bytes
  std::uint64_t metadata_bytes_sent = 0;  ///< index/seed metadata bytes
};

/// Aggregates traffic across nodes and rounds. The engine updates node i's
/// counters only from the thread driving node i, so no locking is needed on
/// the hot path; totals are computed on demand.
class TrafficMeter {
 public:
  explicit TrafficMeter(std::size_t n) : per_node_(n) {}

  void record_send(std::uint32_t sender, const Message& msg);

  const NodeTraffic& node(std::size_t i) const { return per_node_.at(i); }
  std::size_t node_count() const noexcept { return per_node_.size(); }

  NodeTraffic total() const;

  /// Average wire bytes sent per node (the y-axis of the paper's
  /// "average cumulative data sent per node" plots).
  double average_bytes_per_node() const;

  void reset();

 private:
  std::vector<NodeTraffic> per_node_;
};

/// Simple bandwidth/latency link model: the simulated duration of one
/// communication phase is max over nodes of (bytes_i / bandwidth + latency)
/// — nodes communicate in parallel, the slowest link gates the round, as in
/// a synchronous D-PSGD deployment on a shared cluster.
struct LinkModel {
  double bandwidth_bytes_per_sec = 12.5e6;  ///< 100 Mbit/s default
  double latency_sec = 2e-3;

  double comm_time(std::uint64_t max_node_bytes) const noexcept {
    return latency_sec +
           static_cast<double>(max_node_bytes) / bandwidth_bytes_per_sec;
  }
};

/// Synchronous mailbox fabric: all sends in round t are visible to receivers
/// in the same round's aggregate phase (D-PSGD is bulk-synchronous).
class Network {
 public:
  Network(std::size_t n, LinkModel link = {})
      : mailboxes_(n), meter_(n), link_(link) {}

  std::size_t size() const noexcept { return mailboxes_.size(); }

  /// Enables lossy-link failure injection: each message is independently
  /// dropped with probability `probability` (deterministic given `seed`:
  /// the decision hashes (sender, receiver, round, seed), so runs are
  /// reproducible regardless of thread scheduling). Dropped messages still
  /// count as sent bytes — the sender paid for them — and are tallied in
  /// messages_dropped().
  void set_drop(double probability, std::uint64_t seed);

  /// Messages discarded by failure injection so far.
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Queues `msg` for `to` and records traffic against msg.sender.
  /// Thread-safe across concurrent senders.
  void send(std::uint32_t to, Message msg);

  /// Drains node i's mailbox (receiver's view of the round). Messages are
  /// returned sorted by (round, sender) — the sequential engine's arrival
  /// order — so aggregation is independent of thread scheduling.
  std::vector<Message> drain(std::uint32_t node);

  /// Reuse variant: swaps the mailbox contents into `out` (cleared first),
  /// so the receiver's scratch vector and the mailbox circulate their heap
  /// capacity instead of reallocating every round. Same canonical order.
  void drain_into(std::uint32_t node, std::vector<Message>& out);

  /// Advances the simulated clock by one round: compute phase plus the
  /// communication time implied by this round's per-node send volumes.
  void finish_round(double compute_seconds);

  const TrafficMeter& traffic() const noexcept { return meter_; }
  double simulated_seconds() const noexcept { return sim_seconds_; }

  /// Send-buffer pool: senders encode into vectors acquired here, and the
  /// storage is recycled when the last receiver releases the body. One pool
  /// per fabric keeps the steady-state round loop free of body allocations.
  BufferPool& pool() noexcept { return pool_; }

 private:
  std::vector<std::vector<Message>> mailboxes_;
  std::vector<std::mutex> mailbox_locks_{mailboxes_.size()};
  TrafficMeter meter_;
  LinkModel link_;
  double sim_seconds_ = 0.0;
  std::vector<std::uint64_t> round_bytes_{std::vector<std::uint64_t>(mailboxes_.size(), 0)};
  std::mutex meter_lock_;
  double drop_probability_ = 0.0;
  std::uint64_t drop_seed_ = 0;
  std::uint64_t dropped_ = 0;
  BufferPool pool_;
};

}  // namespace jwins::net

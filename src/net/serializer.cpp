#include "net/serializer.hpp"

namespace jwins::net {

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  write_u32(static_cast<std::uint32_t>(bytes.size()));
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::write_f32_array(std::span<const float> values) {
  write_u32(static_cast<std::uint32_t>(values.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  buffer_.insert(buffer_.end(), p, p + values.size() * sizeof(float));
}

void ByteWriter::write_u32_array(std::span<const std::uint32_t> values) {
  write_u32(static_cast<std::uint32_t>(values.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  buffer_.insert(buffer_.end(), p, p + values.size() * sizeof(std::uint32_t));
}

std::vector<std::uint8_t> ByteReader::read_bytes() {
  const std::uint32_t n = read_u32();
  if (remaining() < n) throw std::out_of_range("ByteReader: truncated blob");
  std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::vector<float> ByteReader::read_f32_array() {
  std::vector<float> out;
  read_f32_array_into(out);
  return out;
}

std::vector<std::uint32_t> ByteReader::read_u32_array() {
  std::vector<std::uint32_t> out;
  read_u32_array_into(out);
  return out;
}

std::span<const std::uint8_t> ByteReader::view_bytes() {
  const std::uint32_t n = read_u32();
  if (remaining() < n) throw std::out_of_range("ByteReader: truncated blob");
  const std::span<const std::uint8_t> view = bytes_.subspan(pos_, n);
  pos_ += n;
  return view;
}

void ByteReader::read_f32_array_into(std::vector<float>& out) {
  const std::uint32_t n = read_u32();
  if (remaining() < n * sizeof(float)) {
    throw std::out_of_range("ByteReader: truncated float array");
  }
  out.resize(n);
  std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
}

void ByteReader::read_u32_array_into(std::vector<std::uint32_t>& out) {
  const std::uint32_t n = read_u32();
  if (remaining() < n * sizeof(std::uint32_t)) {
    throw std::out_of_range("ByteReader: truncated u32 array");
  }
  out.resize(n);
  std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(std::uint32_t));
  pos_ += n * sizeof(std::uint32_t);
}

}  // namespace jwins::net

// Persistent fork-join thread pool with deterministic work assignment.
//
// Replaces the old spawn-threads-per-call net::parallel_for helper: workers
// are created once (per Experiment) and parked on a condition variable, so a
// phase dispatch costs a notify + join handshake instead of N pthread
// creates, and the per-call std::function allocation is gone (jobs are a raw
// function pointer + context pointer into the caller's stack frame).
//
// Determinism contract:
//  * parallel_for splits [0, n) into one contiguous chunk per thread using
//    only (n, thread_count) — no atomic work-stealing, so which thread runs
//    which index never depends on scheduling. Each index runs exactly once.
//  * parallel_reduce materializes map(i) per index and folds the results in
//    index order on the calling thread, so floating-point reductions are
//    bit-identical to a sequential std::accumulate at any thread count.
//  * Exceptions: chunks run to completion independently; afterwards the
//    exception of the lowest-index chunk (= the error a sequential loop
//    would have hit first, since a chunk stops at its first throw) is
//    rethrown exactly once on the calling thread.
//  * Nested calls execute inline sequentially on the calling thread —
//    documented behavior, not an error, so library code can use the pool
//    without caring who called it. The guard is process-wide (a thread_local
//    flag, not per-pool): a parallel_for on ANY pool from inside ANY pool's
//    region runs inline. That is deliberate — it also stops an outer pool's
//    workers from driving an inner pool from several threads at once, which
//    the single-orchestrator contract below forbids.
//
// One orchestrating thread drives the pool; concurrent parallel_for calls
// from different external threads on the same pool are not supported.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace jwins::net {

class ThreadPool {
 public:
  /// `threads` counts the calling thread: the pool spawns `threads - 1`
  /// workers and the caller executes chunk 0. 0 and 1 both mean "no
  /// workers, run everything inline" (the fully sequential engine).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, including the calling thread (>= 1).
  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Default for "as fast as the hardware allows" callers.
  static unsigned default_thread_count() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// Runs fn(i) for every i in [0, n), statically chunked across threads.
  template <class Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    using Body = std::remove_reference_t<Fn>;
    run_job(n,
            [](void* ctx, unsigned, std::size_t begin, std::size_t end) {
              Body& body = *static_cast<Body*>(ctx);
              for (std::size_t i = begin; i < end; ++i) body(i);
            },
            &fn);
  }

  /// Lane-aware variant: runs fn(lane, i), where `lane` identifies the
  /// execution lane in [0, thread_count()). Two invocations running
  /// concurrently always see different lanes, so per-lane scratch state
  /// (e.g. sim::Experiment's core::RoundScratch arenas) is race-free by
  /// construction. Lane assignment is as deterministic as the chunking: it
  /// depends only on (n, thread_count), never on scheduling. Nested calls
  /// run inline on the caller's current lane.
  template <class Fn>
  void parallel_for_lane(std::size_t n, Fn&& fn) {
    using Body = std::remove_reference_t<Fn>;
    run_job(n,
            [](void* ctx, unsigned lane, std::size_t begin, std::size_t end) {
              Body& body = *static_cast<Body*>(ctx);
              for (std::size_t i = begin; i < end; ++i) body(lane, i);
            },
            &fn);
  }

  /// Ordered reduction: parallel map, sequential index-order fold.
  /// T must be default-constructible (the map buffer is pre-sized).
  template <class T, class Map, class Combine>
  T parallel_reduce(std::size_t n, T init, Map&& map, Combine&& combine) {
    std::vector<T> mapped(n);
    parallel_for(n, [&](std::size_t i) { mapped[i] = map(i); });
    T acc = std::move(init);
    for (std::size_t i = 0; i < n; ++i) {
      acc = combine(std::move(acc), std::move(mapped[i]));
    }
    return acc;
  }

 private:
  using ChunkFn = void (*)(void* ctx, unsigned lane, std::size_t begin,
                           std::size_t end);

  /// Chunk `k` of `chunks` over [0, n): contiguous, sizes differ by <= 1.
  static std::pair<std::size_t, std::size_t> chunk_range(
      std::size_t n, unsigned k, unsigned chunks) noexcept;

  void run_job(std::size_t n, ChunkFn run, void* ctx);
  void worker_loop(unsigned chunk_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::exception_ptr> errors_;  ///< one slot per chunk
  std::size_t job_n_ = 0;
  ChunkFn job_run_ = nullptr;
  void* job_ctx_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
};

}  // namespace jwins::net

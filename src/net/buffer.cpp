#include "net/buffer.hpp"

namespace jwins::net {

std::vector<std::uint8_t> BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->free.empty()) return {};
  std::vector<std::uint8_t> out = std::move(state_->free.back());
  state_->free.pop_back();
  out.clear();  // keeps capacity
  return out;
}

void BufferPool::release(std::vector<std::uint8_t>&& bytes) {
  if (bytes.capacity() == 0) return;
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->free.push_back(std::move(bytes));
}

SharedBytes BufferPool::adopt(std::vector<std::uint8_t>&& bytes) {
  if (bytes.empty()) {
    // Nothing to share; recycle the capacity right away.
    release(std::move(bytes));
    return SharedBytes();
  }
  // The deleter tracks the pool state weakly: bodies that outlive the pool
  // simply free their storage instead of recycling into a dead free list.
  std::weak_ptr<State> weak_state = state_;
  auto deleter = [weak_state](std::vector<std::uint8_t>* v) {
    if (auto state = weak_state.lock()) {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->free.push_back(std::move(*v));
    }
    delete v;
  };
  std::shared_ptr<const std::vector<std::uint8_t>> shared(
      new std::vector<std::uint8_t>(std::move(bytes)), std::move(deleter));
  return SharedBytes(std::move(shared));
}

std::size_t BufferPool::idle_count() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->free.size();
}

}  // namespace jwins::net

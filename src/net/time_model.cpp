#include "net/time_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/rng.hpp"

namespace jwins::net {

namespace {

// Stream tags separating the model's independent random draws (see
// core::derive_seed). Decision salts fold the round in so per-message dice
// are fresh each round while per-edge attributes stay fixed.
constexpr std::uint64_t kSaltBandwidth = 0xB12D;
constexpr std::uint64_t kSaltLatency = 0x1A7E;
constexpr std::uint64_t kSaltEdgeDrop = 0xED12;
constexpr std::uint64_t kSaltStraggler = 0x57A6;
constexpr std::uint64_t kSaltCrash = 0xC2A5;
constexpr std::uint64_t kSaltEdgeDecision = 0xED0D;
constexpr std::uint64_t kSaltBurstDecision = 0xB025;
constexpr std::uint64_t kSaltPhase = 0x9E37;

/// Uniform double in [0, 1) from a mixed 64-bit hash: the top 53 bits scaled
/// down. Platform-independent (no <random> involved), so every distribution
/// draw in this file is reproducible across standard libraries too.
double u01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool TimeModelConfig::heterogeneous_time() const noexcept {
  return !bandwidth_dist.is_base() || !latency_dist.is_base() ||
         (straggler_fraction > 0.0 && straggler_slowdown != 1.0);
}

bool TimeModelConfig::any_faults() const noexcept {
  return !edge_drop.is_off() || crash_nodes > 0 || burst_every > 0;
}

std::vector<std::string> TimeModelConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  auto check_dist = [&](const LinkDist& d, const char* key, bool allow_zero) {
    if (d.kind == LinkDist::Kind::kUniform) {
      const bool lo_ok = allow_zero ? d.a >= 0.0 : d.a > 0.0;
      if (!(lo_ok && d.b >= d.a && std::isfinite(d.b))) {
        errors.emplace_back(std::string(key) + ": uniform needs " +
                            (allow_zero ? "0 <= lo <= hi" : "0 < lo <= hi"));
      }
    } else if (d.kind == LinkDist::Kind::kLognormal) {
      if (!(d.a > 0.0 && d.b >= 0.0 && std::isfinite(d.a) &&
            std::isfinite(d.b))) {
        errors.emplace_back(std::string(key) +
                            ": lognormal needs median > 0 and sigma >= 0");
      }
    }
  };
  check_dist(bandwidth_dist, "bandwidth_dist", /*allow_zero=*/false);
  check_dist(latency_dist, "latency_dist", /*allow_zero=*/true);
  require(straggler_fraction >= 0.0 && straggler_fraction < 1.0,
          "straggler_fraction: must be in [0, 1)");
  require(straggler_slowdown >= 1.0,
          "straggler_slowdown: must be >= 1 (a compute-time multiplier)");
  if (edge_drop.kind == EdgeDropDist::Kind::kFixed) {
    require(edge_drop.a >= 0.0 && edge_drop.a < 1.0,
            "edge_drop: fixed probability must be in [0, 1)");
  } else if (edge_drop.kind == EdgeDropDist::Kind::kUniform) {
    require(edge_drop.a >= 0.0 && edge_drop.b >= edge_drop.a &&
                edge_drop.b < 1.0,
            "edge_drop: uniform needs 0 <= lo <= hi < 1");
  }
  require(rejoin_at == 0 || rejoin_at > crash_at,
          "rejoin_at: must be 0 (never) or > crash_at");
  require(burst_length >= 1, "burst_length: must be >= 1");
  require(burst_every == 0 || burst_length <= burst_every,
          "burst_length: must be <= burst_every (windows must not overlap)");
  require(burst_drop > 0.0 && burst_drop <= 1.0,
          "burst_drop: must be in (0, 1]");
  return errors;
}

TimeModel::TimeModel(std::size_t n, LinkModel base, TimeModelConfig config,
                     std::uint64_t seed)
    : n_(n),
      base_(base),
      config_(std::move(config)),
      seed_(seed),
      hetero_time_(config_.heterogeneous_time()),
      round_edges_(n) {
  if (config_.crash_nodes >= n && config_.crash_nodes > 0) {
    throw std::invalid_argument(
        "crash_nodes: must leave at least one node alive (crash_nodes < "
        "nodes)");
  }
  if (config_.crash_nodes > 0) {
    // Seeded deterministic victim choice: rank nodes by a per-node hash
    // (ties by id) and crash the first crash_nodes of that order. Pure
    // function of (seed, n), so every thread count and every run agrees.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
    order.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      order.emplace_back(core::derive_seed(seed_, i, 0, kSaltCrash), i);
    }
    std::sort(order.begin(), order.end());
    crash_set_.assign(n, false);
    for (std::size_t k = 0; k < config_.crash_nodes; ++k) {
      crash_set_[order[k].second] = true;
    }
  }
}

double TimeModel::edge_u01(std::uint32_t u, std::uint32_t v,
                           std::uint64_t salt) const {
  const std::uint32_t a = std::min(u, v), b = std::max(u, v);
  return u01(core::derive_seed(seed_, a, b, salt));
}

double TimeModel::edge_normal(std::uint32_t u, std::uint32_t v,
                              std::uint64_t salt) const {
  // Box-Muller over two independent per-edge hashes; the max() guards the
  // log against a zero draw. Dependency-free, so identical on every stdlib.
  const double u1 = std::max(edge_u01(u, v, salt), 0x1.0p-60);
  const double u2 = edge_u01(u, v, salt ^ kSaltPhase);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

double TimeModel::draw_link(const LinkDist& dist, double base_value,
                            std::uint32_t u, std::uint32_t v,
                            std::uint64_t salt) const {
  switch (dist.kind) {
    case LinkDist::Kind::kBase:
      return base_value;
    case LinkDist::Kind::kUniform:
      return dist.a + (dist.b - dist.a) * edge_u01(u, v, salt);
    case LinkDist::Kind::kLognormal:
      return dist.a * std::exp(dist.b * edge_normal(u, v, salt));
  }
  return base_value;  // unreachable
}

double TimeModel::edge_bandwidth(std::uint32_t u, std::uint32_t v) const {
  return draw_link(config_.bandwidth_dist, base_.bandwidth_bytes_per_sec, u, v,
                   kSaltBandwidth);
}

double TimeModel::edge_latency(std::uint32_t u, std::uint32_t v) const {
  return draw_link(config_.latency_dist, base_.latency_sec, u, v,
                   kSaltLatency);
}

double TimeModel::edge_drop_probability(std::uint32_t u,
                                        std::uint32_t v) const {
  switch (config_.edge_drop.kind) {
    case EdgeDropDist::Kind::kOff:
      return 0.0;
    case EdgeDropDist::Kind::kFixed:
      return config_.edge_drop.a;
    case EdgeDropDist::Kind::kUniform:
      return config_.edge_drop.a +
             (config_.edge_drop.b - config_.edge_drop.a) *
                 edge_u01(u, v, kSaltEdgeDrop);
  }
  return 0.0;  // unreachable
}

bool TimeModel::is_straggler(std::uint32_t node) const {
  // A "straggler" is a node the clock actually slows: with the multiplier
  // at 1 the fraction knob is inert and nobody is reported as one (the
  // sim_time block must never claim injection that had no effect).
  return config_.straggler_fraction > 0.0 &&
         config_.straggler_slowdown != 1.0 &&
         u01(core::derive_seed(seed_, node, 0, kSaltStraggler)) <
             config_.straggler_fraction;
}

double TimeModel::compute_multiplier(std::uint32_t node) const {
  return is_straggler(node) ? config_.straggler_slowdown : 1.0;
}

std::size_t TimeModel::straggler_count() const {
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (is_straggler(i)) ++count;
  }
  return count;
}

bool TimeModel::node_crashes(std::uint32_t node) const {
  return !crash_set_.empty() && node < crash_set_.size() && crash_set_[node];
}

bool TimeModel::node_alive(std::uint32_t node, std::size_t round) const {
  if (!node_crashes(node)) return true;
  if (round < config_.crash_at) return true;
  return config_.rejoin_at != 0 && round >= config_.rejoin_at;
}

bool TimeModel::burst_active(std::size_t round) const {
  return config_.burst_every > 0 && round >= config_.burst_every &&
         round % config_.burst_every < config_.burst_length;
}

void TimeModel::set_iid_drop(double probability, std::uint64_t seed) {
  if (probability < 0.0 || probability >= 1.0) {
    throw std::invalid_argument(
        "Network::set_drop: probability must be in [0, 1)");
  }
  iid_drop_probability_ = probability;
  iid_drop_seed_ = seed;
}

DropCause TimeModel::drop_cause(std::uint32_t sender, std::uint32_t receiver,
                                std::uint32_t round) const {
  if (has_crashes() &&
      (!node_alive(sender, round) || !node_alive(receiver, round))) {
    return DropCause::kCrash;
  }
  if (burst_active(round)) {
    if (config_.burst_drop >= 1.0 ||
        u01(core::derive_seed(
            seed_, sender,
            (std::uint64_t{round} << 32) | receiver, kSaltBurstDecision)) <
            config_.burst_drop) {
      return DropCause::kBurst;
    }
  }
  if (!config_.edge_drop.is_off()) {
    const double p = edge_drop_probability(sender, receiver);
    if (p > 0.0 &&
        u01(core::derive_seed(
            seed_, sender,
            (std::uint64_t{round} << 32) | receiver, kSaltEdgeDecision)) < p) {
      return DropCause::kEdge;
    }
  }
  if (iid_drop_probability_ > 0.0) {
    // The original Network lossy-link hash, verbatim: drop decisions of
    // pre-TimeModel seeded runs are preserved bit for bit.
    const std::uint64_t h =
        core::mix64(iid_drop_seed_ ^ core::mix64(sender) ^
                    core::mix64(std::uint64_t{receiver} << 20) ^
                    core::mix64(std::uint64_t{round} << 40));
    if (static_cast<double>(h) / 18446744073709551616.0 <
        iid_drop_probability_) {
      return DropCause::kIid;
    }
  }
  return DropCause::kNone;
}

void TimeModel::record_send(std::uint32_t sender, std::uint32_t receiver,
                            std::uint64_t wire_bytes) {
  auto& edges = round_edges_.at(sender);
  if (retire_records_) {
    // Retirement mode (asynchronous engine): one record per transfer, never
    // merged, so retire_send() can erase exactly one when the transfer
    // delivers or drops and the live count tracks in-flight transfers.
    edges.emplace_back(receiver, wire_bytes);
    ++edge_record_count_;
    edge_records_high_water_ =
        std::max(edge_records_high_water_, edge_record_count_);
    return;
  }
  for (auto& [to, bytes] : edges) {
    if (to == receiver) {
      bytes += wire_bytes;
      return;
    }
  }
  edges.emplace_back(receiver, wire_bytes);
}

void TimeModel::retire_send(std::uint32_t sender, std::uint32_t receiver) {
  if (!retire_records_) return;
  auto& edges = round_edges_.at(sender);
  for (auto it = edges.begin(); it != edges.end(); ++it) {
    if (it->first == receiver) {
      edges.erase(it);  // oldest live transfer on this edge retires first
      --edge_record_count_;
      return;
    }
  }
}

void TimeModel::count_drop(DropCause cause) {
  switch (cause) {
    case DropCause::kNone: break;
    case DropCause::kCrash: ++dropped_crash_; break;
    case DropCause::kBurst: ++dropped_burst_; break;
    case DropCause::kEdge: ++dropped_edge_; break;
    case DropCause::kIid: ++dropped_iid_; break;
  }
}

TimeModel::RoundTime TimeModel::finish_round(double compute_seconds) {
  const std::size_t round = round_cursor_++;
  if (has_crashes()) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (!node_alive(i, round)) ++crashed_node_rounds_;
    }
  }
  RoundTime rt;
  if (!hetero_time_) {
    // Exact legacy reduction: the same uint64 per-node totals and the same
    // single comm_time() expression the flat LinkModel engine evaluated.
    rt.compute = compute_seconds;
    std::uint64_t max_bytes = 0;
    for (const auto& edges : round_edges_) {
      std::uint64_t total = 0;
      for (const auto& [to, bytes] : edges) total += bytes;
      max_bytes = std::max(max_bytes, total);
    }
    rt.comm = base_.comm_time(max_bytes);
  } else {
    // Compute phase: the slowest *alive* node gates the bulk-synchronous
    // round (crashed nodes are not waited for).
    double compute = 0.0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (has_crashes() && !node_alive(i, round)) continue;
      compute = std::max(compute, compute_seconds * compute_multiplier(i));
    }
    rt.compute = compute;
    // Critical path over edges: each sender's messages serialize through its
    // uplink in send order (one NIC per node), each transferring at its
    // edge's bandwidth; an edge completes when its queued transfer finishes
    // plus its own latency. The phase ends when the last edge completes.
    double comm = 0.0;
    bool any_edge = false;
    for (std::uint32_t s = 0; s < n_; ++s) {
      double queue = 0.0;
      for (const auto& [to, bytes] : round_edges_[s]) {
        queue += static_cast<double>(bytes) / edge_bandwidth(s, to);
        comm = std::max(comm, queue + edge_latency(s, to));
        any_edge = true;
      }
    }
    // An idle round still pays the synchronization barrier, mirroring the
    // legacy formula's latency floor.
    rt.comm = any_edge ? comm : base_.latency_sec;
  }
  for (auto& edges : round_edges_) edges.clear();
  return rt;
}

std::string TimeModel::describe() const {
  if (!extended()) return "flat link model";
  std::ostringstream os;
  const char* sep = "";
  auto dist_text = [](const LinkDist& d, double scale, const char* unit) {
    std::ostringstream s;
    if (d.kind == LinkDist::Kind::kUniform) {
      s << "uniform " << d.a * scale << ".." << d.b * scale << ' ' << unit;
    } else {
      s << "lognormal median " << d.a * scale << ' ' << unit << " sigma "
        << d.b;
    }
    return s.str();
  };
  if (!config_.bandwidth_dist.is_base()) {
    os << sep << "bandwidth "
       << dist_text(config_.bandwidth_dist, 8.0 / 1e6, "Mbit/s");
    sep = ", ";
  }
  if (!config_.latency_dist.is_base()) {
    os << sep << "latency " << dist_text(config_.latency_dist, 1e3, "ms");
    sep = ", ";
  }
  if (config_.straggler_fraction > 0.0 && config_.straggler_slowdown != 1.0) {
    os << sep << straggler_count() << " straggler(s) x"
       << config_.straggler_slowdown;
    sep = ", ";
  }
  if (!config_.edge_drop.is_off()) {
    os << sep << "edge drop ";
    if (config_.edge_drop.kind == EdgeDropDist::Kind::kFixed) {
      os << config_.edge_drop.a;
    } else {
      os << "uniform " << config_.edge_drop.a << ".." << config_.edge_drop.b;
    }
    sep = ", ";
  }
  if (config_.crash_nodes > 0) {
    os << sep << config_.crash_nodes << " crash(es) at round "
       << config_.crash_at;
    if (config_.rejoin_at > 0) os << " rejoin " << config_.rejoin_at;
    sep = ", ";
  }
  if (config_.burst_every > 0) {
    os << sep << "burst outage every " << config_.burst_every << " for "
       << config_.burst_length << " round(s) p=" << config_.burst_drop;
  }
  return os.str();
}

}  // namespace jwins::net

// Minimal fork-join helper: runs fn(i) for i in [0, n) across worker
// threads. Used by the experiment engine to drive many simulated nodes per
// phase. With threads == 1 execution is strictly sequential and
// deterministic (the default for reproducible experiments).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace jwins::net {

inline void parallel_for(std::size_t n, unsigned threads,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n || failed.load()) return;
        try {
          fn(i);
        } catch (...) {
          if (!failed.exchange(true)) error = std::current_exception();
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (failed.load() && error) std::rethrow_exception(error);
}

}  // namespace jwins::net

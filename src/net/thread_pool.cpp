#include "net/thread_pool.hpp"

#include <algorithm>

namespace jwins::net {

namespace {

// Set while a thread (worker or caller) is executing a chunk body; a
// parallel_for issued from inside runs inline instead of deadlocking on the
// pool's single job slot.
thread_local bool tls_in_parallel_region = false;

// Lane of the chunk this thread is currently executing. Nested (inline)
// calls inherit it, so per-lane scratch stays exclusive to one OS thread
// even through nesting.
thread_local unsigned tls_current_lane = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = std::max(1u, threads);
  errors_.resize(total);
  workers_.reserve(total - 1);
  for (unsigned w = 1; w < total; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(
    std::size_t n, unsigned k, unsigned chunks) noexcept {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t begin = k * base + std::min<std::size_t>(k, extra);
  return {begin, begin + base + (k < extra ? 1 : 0)};
}

void ThreadPool::worker_loop(unsigned chunk_index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::size_t n = job_n_;
    const ChunkFn run = job_run_;
    void* ctx = job_ctx_;
    lock.unlock();
    const auto [begin, end] = chunk_range(n, chunk_index, thread_count());
    tls_in_parallel_region = true;
    tls_current_lane = chunk_index;
    try {
      if (begin < end) run(ctx, chunk_index, begin, end);
    } catch (...) {
      errors_[chunk_index] = std::current_exception();
    }
    tls_in_parallel_region = false;
    tls_current_lane = 0;
    lock.lock();
    if (--remaining_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::run_job(std::size_t n, ChunkFn run, void* ctx) {
  if (n == 0) return;
  const unsigned total = thread_count();
  if (total == 1 || n == 1 || tls_in_parallel_region) {
    // Inline: exceptions propagate directly. The lane is whatever the
    // calling thread already executes on (0 outside any pool region).
    run(ctx, tls_current_lane, 0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_n_ = n;
    job_run_ = run;
    job_ctx_ = ctx;
    std::fill(errors_.begin(), errors_.end(), nullptr);
    remaining_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  cv_work_.notify_all();
  const auto [begin, end] = chunk_range(n, 0, total);
  tls_in_parallel_region = true;
  tls_current_lane = 0;
  try {
    if (begin < end) run(ctx, 0, begin, end);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  tls_in_parallel_region = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
  }
  // First-error semantics: chunks partition [0, n) in index order and each
  // chunk stops at its first throw, so the lowest-chunk error is exactly the
  // error a sequential loop would have surfaced.
  for (std::exception_ptr& e : errors_) {
    if (e) {
      std::exception_ptr first = std::move(e);
      e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

}  // namespace jwins::net

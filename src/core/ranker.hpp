// JWINS parameter ranking (paper §III-A): model changes are transformed to
// the wavelet-frequency domain and accumulated into an importance score
// vector V. TopK on |V| picks the coefficients to share.
//
// The ablation variants map onto two switches:
//  * use_wavelet = false  -> identity transform (scores live in the raw
//    parameter domain; this is "JWINS without wavelet" ~= TopK).
//  * use_accumulation = false -> V is cleared every round, so only the
//    current round's change ranks parameters.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/arena.hpp"
#include "dwt/dwt.hpp"

namespace jwins::core {

class WaveletRanker {
 public:
  struct Options {
    std::string wavelet = "sym2";
    std::size_t levels = 4;  ///< the paper's four-level decomposition
    bool use_wavelet = true;
    bool use_accumulation = true;
  };

  WaveletRanker(std::size_t model_size, Options options);

  /// Length of the transform-domain vector (== model_size for identity).
  std::size_t coeff_length() const noexcept;

  /// Transforms a model vector into the ranking domain.
  std::vector<float> transform(std::span<const float> model) const;

  /// Scratch variant: writes into `coeffs` (size coeff_length()), all
  /// temporaries in `ws`. Bit-identical to transform().
  void transform_into(std::span<const float> model, std::span<float> coeffs,
                      dwt::DwtWorkspace& ws) const;

  /// Inverse transform back to the parameter domain.
  std::vector<float> inverse(std::span<const float> coeffs) const;

  /// Scratch variant: writes into `model` (size model_size), all
  /// temporaries in `ws`. Bit-identical to inverse().
  void inverse_into(std::span<const float> coeffs, std::span<float> model,
                    dwt::DwtWorkspace& ws) const;

  /// Eq. (3): V' = V + T(x_after - x_before). Returns a view of the updated
  /// scores (valid until the next call).
  std::span<const float> accumulate_round_change(std::span<const float> before,
                                                 std::span<const float> after);

  /// Scratch variant: the delta and coefficient temporaries come from
  /// `arena`/`ws`. Bit-identical to the allocating overload.
  std::span<const float> accumulate_round_change(std::span<const float> before,
                                                 std::span<const float> after,
                                                 Arena& arena,
                                                 dwt::DwtWorkspace& ws);

  /// Post-averaging bookkeeping, eq. (4): folds the model change caused by
  /// averaging into V, then resets the entries that were sent this round.
  void finish_round(std::span<const float> pre_average,
                    std::span<const float> post_average,
                    std::span<const std::uint32_t> sent_indices);

  /// Scratch variant of finish_round (see accumulate_round_change).
  void finish_round(std::span<const float> pre_average,
                    std::span<const float> post_average,
                    std::span<const std::uint32_t> sent_indices, Arena& arena,
                    dwt::DwtWorkspace& ws);

  std::span<const float> scores() const noexcept { return scores_; }

  /// Number of wavelet bands: levels()+1 (a_L, d_L..d_1), or 1 for the
  /// identity transform.
  std::size_t band_count() const noexcept;

  /// Band owning transform-domain index `i` (0 = coarsest approximation).
  std::size_t band_of(std::size_t coeff_index) const;

  const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  std::size_t model_size_;
  std::optional<dwt::DwtPlan> plan_;  // nullopt when use_wavelet == false
  std::vector<float> scores_;         // the accumulation vector V
};

}  // namespace jwins::core

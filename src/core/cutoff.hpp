// The JWINS randomized communication cut-off (paper §III-B).
//
// Each node independently draws a sharing fraction alpha per round from a
// fixed distribution. The paper's default is uniform over
// {10, 15, 20, 25, 30, 40, 100}% (mean 34.3%, matching the ~37%-of-bytes
// budget given to the random-sampling baseline); the low-budget runs against
// CHOCO use two-point distributions (p(100%)=0.1/p(10%)=0.9 for the 20%
// budget, p(100%)=0.05/p(5%)=0.95 for 10%).
#pragma once

#include <algorithm>
#include <random>
#include <vector>

namespace jwins::core {

class RandomizedCutoff {
 public:
  /// alphas in (0, 1]; probabilities must be positive and sum to ~1.
  RandomizedCutoff(std::vector<double> alphas, std::vector<double> probabilities);

  /// The paper's default: uniform over {10,15,20,25,30,40,100}%.
  static RandomizedCutoff paper_default();

  /// Two-point budget distribution: p(100%) = p_full, p(alpha_low) = 1-p_full.
  /// Expected budget = p_full + (1 - p_full) * alpha_low.
  static RandomizedCutoff two_point(double alpha_low, double p_full);

  /// Degenerate distribution (used by the no-random-cutoff ablation).
  static RandomizedCutoff fixed(double alpha);

  /// Draws this round's sharing fraction. Templated over the engine so both
  /// stateful std::mt19937_64 (tests, benches) and the counter-based
  /// core::CounterRng streams the simulation engine uses (see core/rng.hpp)
  /// work; one uniform draw per call either way.
  template <class Urbg>
  double sample(Urbg& rng) const {
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    const double r = u01(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cdf_.begin()), alphas_.size() - 1);
    return alphas_[idx];
  }

  /// E[alpha]: the long-run fraction of the model shared per round.
  double expected_alpha() const noexcept;

  const std::vector<double>& alphas() const noexcept { return alphas_; }
  const std::vector<double>& probabilities() const noexcept { return probs_; }

 private:
  std::vector<double> alphas_;
  std::vector<double> probs_;
  std::vector<double> cdf_;
};

}  // namespace jwins::core

#include "core/kernel_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#ifndef JWINS_MARCH_TIER
#define JWINS_MARCH_TIER "generic"
#endif

namespace jwins::core {

namespace {

// -1: no programmatic override; otherwise the forced KernelTier value.
std::atomic<int> g_override{-1};

bool resolve_env_forced_scalar() noexcept {
  const char* v = std::getenv("JWINS_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace

const char* kernel_tier_name(KernelTier tier) noexcept {
  return tier == KernelTier::kScalar ? "scalar" : "fast";
}

bool KernelDispatch::env_forced_scalar() noexcept {
  // Resolved once per process so mid-run setenv() cannot split a
  // deterministic run across tiers.
  static const bool forced = resolve_env_forced_scalar();
  return forced;
}

KernelTier KernelDispatch::tier() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelTier>(forced);
  return env_forced_scalar() ? KernelTier::kScalar : KernelTier::kFast;
}

const char* KernelDispatch::compiled_march() noexcept {
  return JWINS_MARCH_TIER;
}

void KernelDispatch::force(KernelTier tier) noexcept {
  g_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void KernelDispatch::clear_force() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

KernelDispatch::ScopedForce::ScopedForce(KernelTier tier) noexcept
    : previous_(g_override.load(std::memory_order_relaxed)) {
  force(tier);
}

KernelDispatch::ScopedForce::~ScopedForce() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace jwins::core

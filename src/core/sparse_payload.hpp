// Wire format for sparse (and dense) model-vector exchange — the single
// serialization point between the algorithms (algo/) and the simulated
// network (net/).
//
// In the JWINS pipeline this is the step between selection and transport:
// the ranker (core/ranker.hpp) and randomized cut-off (core/cutoff.hpp)
// choose which wavelet coefficients to share, encode_payload() turns that
// (indices, values) pair into bytes — Elias-gamma gap-coded indices
// (compress/elias.hpp) plus XOR-codec values (compress/float_codec.hpp) —
// and the receiver's decode_payload() feeds partial averaging
// (core/averaging.hpp). All algorithms in the reproduction (JWINS, CHOCO,
// random sampling, full-sharing and the ablations) serialize their model
// payloads through this one codec so byte accounting is uniform, exactly as
// the paper applies Fpzip+Elias uniformly across algorithms. The encoding
// switches double as the Figure-9 ablation (raw vs Elias-gamma index
// metadata).
//
// Layout: [index_mode u8][value_mode u8][vector_len u32][count u32]
//         [index section][value section]
// Everything before the value section counts as metadata_bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitstream.hpp"
#include "core/arena.hpp"
#include "net/network.hpp"

namespace jwins::net {
class ByteWriter;
}

namespace jwins::core {

enum class IndexEncoding : std::uint8_t {
  kDense = 0,       ///< count == vector_len; indices implicit
  kEliasGamma = 1,  ///< gap array, Elias-gamma coded (JWINS default)
  kRaw = 2,         ///< 4 bytes per index (Figure-9 "no compression" arm)
  kSeed = 3,        ///< 8-byte PRNG seed (random-sampling baseline)
};

enum class ValueEncoding : std::uint8_t {
  kXorCodec = 0,  ///< lossless XOR-predictive codec (Fpzip stand-in)
  kRaw = 1,       ///< 4 bytes per value
};

struct SparsePayload {
  std::uint32_t vector_length = 0;
  std::vector<std::uint32_t> indices;  ///< ascending; empty when dense
  std::vector<float> values;           ///< aligned with indices (or dense)

  bool dense() const noexcept { return indices.empty(); }
};

/// Non-owning view of a payload — what the zero-copy encoder consumes. A
/// sender points this at whatever already holds the data (node members,
/// arena spans) instead of copying indices/values into a SparsePayload
/// first. Converts implicitly from SparsePayload.
struct PayloadView {
  std::uint32_t vector_length = 0;
  std::span<const std::uint32_t> indices;
  std::span<const float> values;

  PayloadView() = default;
  PayloadView(std::uint32_t length, std::span<const std::uint32_t> idx,
              std::span<const float> vals)
      : vector_length(length), indices(idx), values(vals) {}
  PayloadView(const SparsePayload& p)  // NOLINT(google-explicit-*)
      : vector_length(p.vector_length), indices(p.indices), values(p.values) {}

  bool dense() const noexcept { return indices.empty(); }
};

struct PayloadOptions {
  IndexEncoding index_encoding = IndexEncoding::kEliasGamma;
  ValueEncoding value_encoding = ValueEncoding::kXorCodec;
  std::uint64_t seed = 0;  ///< required for IndexEncoding::kSeed
};

struct EncodedPayload {
  std::vector<std::uint8_t> body;
  std::size_t metadata_bytes = 0;
};

/// Serializes a payload. For kDense, `payload.indices` must be empty and
/// values.size() == vector_length. For kSeed, the receiver regenerates the
/// index set from (seed, count, vector_length).
EncodedPayload encode_payload(const SparsePayload& payload,
                              const PayloadOptions& options);

/// Zero-copy encode: serializes `payload` by appending to `writer` (point
/// the writer at a pooled send buffer for an allocation-free hot path).
/// `bit_scratch` is cleared and reused for the Elias/XOR sections. Returns
/// the metadata byte count (bytes written before the value section).
/// Byte-identical to encode_payload().
std::size_t encode_payload_into(const PayloadView& payload,
                                const PayloadOptions& options,
                                net::ByteWriter& writer,
                                compress::BitWriter& bit_scratch);

/// Parses a payload produced by encode_payload. For kSeed the index set is
/// regenerated, so the result always carries explicit indices unless dense.
SparsePayload decode_payload(std::span<const std::uint8_t> body);

/// Zero-copy decode: compressed sections are read as views into `body` (no
/// blob copies) and results land in `out`'s reused buffers; `arena` backs
/// the kSeed membership flags. Identical results to decode_payload().
void decode_payload_into(std::span<const std::uint8_t> body,
                         SparsePayload& out, Arena& arena);

/// Convenience: wraps an encoded payload into a network message.
net::Message make_message(std::uint32_t sender, std::uint32_t round,
                          const SparsePayload& payload,
                          const PayloadOptions& options);

/// Hot-path variant: encodes into a buffer from `pool`, so the message body
/// storage is recycled round over round and fan-out to d neighbors shares
/// one refcounted buffer instead of d copies.
net::Message make_message(std::uint32_t sender, std::uint32_t round,
                          const PayloadView& payload,
                          const PayloadOptions& options, net::BufferPool& pool,
                          compress::BitWriter& bit_scratch);

}  // namespace jwins::core

// Wire format for sparse (and dense) model-vector exchange — the single
// serialization point between the algorithms (algo/) and the simulated
// network (net/).
//
// In the JWINS pipeline this is the step between selection and transport:
// the ranker (core/ranker.hpp) and randomized cut-off (core/cutoff.hpp)
// choose which wavelet coefficients to share, encode_payload() turns that
// (indices, values) pair into bytes — Elias-gamma gap-coded indices
// (compress/elias.hpp) plus XOR-codec values (compress/float_codec.hpp) —
// and the receiver's decode_payload() feeds partial averaging
// (core/averaging.hpp). All algorithms in the reproduction (JWINS, CHOCO,
// random sampling, full-sharing and the ablations) serialize their model
// payloads through this one codec so byte accounting is uniform, exactly as
// the paper applies Fpzip+Elias uniformly across algorithms. The encoding
// switches double as the Figure-9 ablation (raw vs Elias-gamma index
// metadata).
//
// Layout: [index_mode u8][value_mode u8][vector_len u32][count u32]
//         [index section][value section]
// Everything before the value section counts as metadata_bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/network.hpp"

namespace jwins::core {

enum class IndexEncoding : std::uint8_t {
  kDense = 0,       ///< count == vector_len; indices implicit
  kEliasGamma = 1,  ///< gap array, Elias-gamma coded (JWINS default)
  kRaw = 2,         ///< 4 bytes per index (Figure-9 "no compression" arm)
  kSeed = 3,        ///< 8-byte PRNG seed (random-sampling baseline)
};

enum class ValueEncoding : std::uint8_t {
  kXorCodec = 0,  ///< lossless XOR-predictive codec (Fpzip stand-in)
  kRaw = 1,       ///< 4 bytes per value
};

struct SparsePayload {
  std::uint32_t vector_length = 0;
  std::vector<std::uint32_t> indices;  ///< ascending; empty when dense
  std::vector<float> values;           ///< aligned with indices (or dense)

  bool dense() const noexcept { return indices.empty(); }
};

struct PayloadOptions {
  IndexEncoding index_encoding = IndexEncoding::kEliasGamma;
  ValueEncoding value_encoding = ValueEncoding::kXorCodec;
  std::uint64_t seed = 0;  ///< required for IndexEncoding::kSeed
};

struct EncodedPayload {
  std::vector<std::uint8_t> body;
  std::size_t metadata_bytes = 0;
};

/// Serializes a payload. For kDense, `payload.indices` must be empty and
/// values.size() == vector_length. For kSeed, the receiver regenerates the
/// index set from (seed, count, vector_length).
EncodedPayload encode_payload(const SparsePayload& payload,
                              const PayloadOptions& options);

/// Parses a payload produced by encode_payload. For kSeed the index set is
/// regenerated, so the result always carries explicit indices unless dense.
SparsePayload decode_payload(std::span<const std::uint8_t> body);

/// Convenience: wraps an encoded payload into a network message.
net::Message make_message(std::uint32_t sender, std::uint32_t round,
                          const SparsePayload& payload,
                          const PayloadOptions& options);

}  // namespace jwins::core

#include "core/ranker.hpp"

#include <algorithm>
#include <stdexcept>

namespace jwins::core {

WaveletRanker::WaveletRanker(std::size_t model_size, Options options)
    : options_(std::move(options)), model_size_(model_size) {
  if (model_size == 0) {
    throw std::invalid_argument("WaveletRanker: empty model");
  }
  if (options_.use_wavelet) {
    plan_.emplace(dwt::wavelet_by_name(options_.wavelet), model_size,
                  options_.levels);
  }
  scores_.assign(coeff_length(), 0.0f);
}

std::size_t WaveletRanker::coeff_length() const noexcept {
  return plan_ ? plan_->coeff_length() : model_size_;
}

std::size_t WaveletRanker::band_count() const noexcept {
  return plan_ ? plan_->levels() + 1 : 1;
}

std::size_t WaveletRanker::band_of(std::size_t coeff_index) const {
  if (!plan_) {
    if (coeff_index >= model_size_) {
      throw std::out_of_range("WaveletRanker::band_of: index out of range");
    }
    return 0;
  }
  return plan_->band_of(coeff_index);
}

std::vector<float> WaveletRanker::transform(std::span<const float> model) const {
  std::vector<float> coeffs(coeff_length());
  dwt::DwtWorkspace ws;
  transform_into(model, coeffs, ws);
  return coeffs;
}

void WaveletRanker::transform_into(std::span<const float> model,
                                   std::span<float> coeffs,
                                   dwt::DwtWorkspace& ws) const {
  if (model.size() != model_size_) {
    throw std::invalid_argument("WaveletRanker::transform: size mismatch");
  }
  if (coeffs.size() != coeff_length()) {
    throw std::invalid_argument("WaveletRanker::transform: coeff size mismatch");
  }
  if (plan_) {
    plan_->forward_into(model, coeffs, ws);
  } else {
    std::copy(model.begin(), model.end(), coeffs.begin());
  }
}

std::vector<float> WaveletRanker::inverse(std::span<const float> coeffs) const {
  std::vector<float> model(model_size_);
  dwt::DwtWorkspace ws;
  inverse_into(coeffs, model, ws);
  return model;
}

void WaveletRanker::inverse_into(std::span<const float> coeffs,
                                 std::span<float> model,
                                 dwt::DwtWorkspace& ws) const {
  if (coeffs.size() != coeff_length()) {
    throw std::invalid_argument("WaveletRanker::inverse: size mismatch");
  }
  if (model.size() != model_size_) {
    throw std::invalid_argument("WaveletRanker::inverse: model size mismatch");
  }
  if (plan_) {
    plan_->inverse_into(coeffs, model, ws);
  } else {
    std::copy(coeffs.begin(), coeffs.end(), model.begin());
  }
}

namespace {

/// Shared eq. (3)/(4) core: scores += T(after - before), with `delta` and
/// `coeffs` provided by the caller (heap or arena — same arithmetic).
void accumulate_delta(const WaveletRanker& ranker, std::vector<float>& scores,
                      std::span<const float> before,
                      std::span<const float> after, std::span<float> delta,
                      std::span<float> coeffs, dwt::DwtWorkspace& ws) {
  for (std::size_t i = 0; i < delta.size(); ++i) delta[i] = after[i] - before[i];
  ranker.transform_into(delta, coeffs, ws);
  for (std::size_t i = 0; i < scores.size(); ++i) scores[i] += coeffs[i];
}

}  // namespace

std::span<const float> WaveletRanker::accumulate_round_change(
    std::span<const float> before, std::span<const float> after) {
  Arena arena;
  dwt::DwtWorkspace ws;
  return accumulate_round_change(before, after, arena, ws);
}

std::span<const float> WaveletRanker::accumulate_round_change(
    std::span<const float> before, std::span<const float> after, Arena& arena,
    dwt::DwtWorkspace& ws) {
  if (before.size() != model_size_ || after.size() != model_size_) {
    throw std::invalid_argument("WaveletRanker: model size mismatch");
  }
  if (!options_.use_accumulation) {
    std::fill(scores_.begin(), scores_.end(), 0.0f);
  }
  accumulate_delta(*this, scores_, before, after, arena.alloc<float>(model_size_),
                   arena.alloc<float>(coeff_length()), ws);
  return scores_;
}

void WaveletRanker::finish_round(std::span<const float> pre_average,
                                 std::span<const float> post_average,
                                 std::span<const std::uint32_t> sent_indices) {
  Arena arena;
  dwt::DwtWorkspace ws;
  finish_round(pre_average, post_average, sent_indices, arena, ws);
}

void WaveletRanker::finish_round(std::span<const float> pre_average,
                                 std::span<const float> post_average,
                                 std::span<const std::uint32_t> sent_indices,
                                 Arena& arena, dwt::DwtWorkspace& ws) {
  if (pre_average.size() != model_size_ || post_average.size() != model_size_) {
    throw std::invalid_argument("WaveletRanker::finish_round: size mismatch");
  }
  // Eq. (4): by linearity of the transform, adding T(x^{t+1,0} - x^{t,tau})
  // on top of the already-accumulated T(x^{t,tau} - x^{t,0}) yields
  // V + T(x^{t+1,0} - x^{t,0}) for the round.
  accumulate_delta(*this, scores_, pre_average, post_average,
                   arena.alloc<float>(model_size_),
                   arena.alloc<float>(coeff_length()), ws);
  // "Entries in the accumulation vector that were chosen in this round are
  // set to zero" — the shared coefficients' pent-up change has been
  // communicated.
  for (std::uint32_t idx : sent_indices) {
    if (idx < scores_.size()) scores_[idx] = 0.0f;
  }
}

}  // namespace jwins::core

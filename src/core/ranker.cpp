#include "core/ranker.hpp"

#include <stdexcept>

namespace jwins::core {

WaveletRanker::WaveletRanker(std::size_t model_size, Options options)
    : options_(std::move(options)), model_size_(model_size) {
  if (model_size == 0) {
    throw std::invalid_argument("WaveletRanker: empty model");
  }
  if (options_.use_wavelet) {
    plan_.emplace(dwt::wavelet_by_name(options_.wavelet), model_size,
                  options_.levels);
  }
  scores_.assign(coeff_length(), 0.0f);
}

std::size_t WaveletRanker::coeff_length() const noexcept {
  return plan_ ? plan_->coeff_length() : model_size_;
}

std::size_t WaveletRanker::band_count() const noexcept {
  return plan_ ? plan_->levels() + 1 : 1;
}

std::size_t WaveletRanker::band_of(std::size_t coeff_index) const {
  if (!plan_) {
    if (coeff_index >= model_size_) {
      throw std::out_of_range("WaveletRanker::band_of: index out of range");
    }
    return 0;
  }
  return plan_->band_of(coeff_index);
}

std::vector<float> WaveletRanker::transform(std::span<const float> model) const {
  if (model.size() != model_size_) {
    throw std::invalid_argument("WaveletRanker::transform: size mismatch");
  }
  if (plan_) return plan_->forward(model);
  return std::vector<float>(model.begin(), model.end());
}

std::vector<float> WaveletRanker::inverse(std::span<const float> coeffs) const {
  if (coeffs.size() != coeff_length()) {
    throw std::invalid_argument("WaveletRanker::inverse: size mismatch");
  }
  if (plan_) return plan_->inverse(coeffs);
  return std::vector<float>(coeffs.begin(), coeffs.end());
}

std::span<const float> WaveletRanker::accumulate_round_change(
    std::span<const float> before, std::span<const float> after) {
  if (before.size() != model_size_ || after.size() != model_size_) {
    throw std::invalid_argument("WaveletRanker: model size mismatch");
  }
  if (!options_.use_accumulation) {
    std::fill(scores_.begin(), scores_.end(), 0.0f);
  }
  std::vector<float> delta(model_size_);
  for (std::size_t i = 0; i < model_size_; ++i) delta[i] = after[i] - before[i];
  const std::vector<float> coeffs = transform(delta);
  for (std::size_t i = 0; i < scores_.size(); ++i) scores_[i] += coeffs[i];
  return scores_;
}

void WaveletRanker::finish_round(std::span<const float> pre_average,
                                 std::span<const float> post_average,
                                 std::span<const std::uint32_t> sent_indices) {
  if (pre_average.size() != model_size_ || post_average.size() != model_size_) {
    throw std::invalid_argument("WaveletRanker::finish_round: size mismatch");
  }
  // Eq. (4): by linearity of the transform, adding T(x^{t+1,0} - x^{t,tau})
  // on top of the already-accumulated T(x^{t,tau} - x^{t,0}) yields
  // V + T(x^{t+1,0} - x^{t,0}) for the round.
  std::vector<float> delta(model_size_);
  for (std::size_t i = 0; i < model_size_; ++i) {
    delta[i] = post_average[i] - pre_average[i];
  }
  const std::vector<float> coeffs = transform(delta);
  for (std::size_t i = 0; i < scores_.size(); ++i) scores_[i] += coeffs[i];
  // "Entries in the accumulation vector that were chosen in this round are
  // set to zero" — the shared coefficients' pent-up change has been
  // communicated.
  for (std::uint32_t idx : sent_indices) {
    if (idx < scores_.size()) scores_[idx] = 0.0f;
  }
}

}  // namespace jwins::core

#include "core/arena.hpp"

#include <algorithm>
#include <stdexcept>

namespace jwins::core {

namespace {

constexpr std::size_t kMinBlockBytes = 4096;

bool is_power_of_two(std::size_t v) noexcept { return v && (v & (v - 1)) == 0; }

}  // namespace

Arena::Block Arena::make_block(std::size_t bytes) {
  Block block;
  block.size = std::max(bytes, kMinBlockBytes);
  block.data = std::make_unique<std::byte[]>(block.size);
  return block;
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  if (!is_power_of_two(alignment) || alignment > alignof(std::max_align_t)) {
    throw std::invalid_argument(
        "Arena::allocate: alignment must be a power of two <= max_align_t");
  }
  if (bytes == 0) bytes = 1;  // distinct non-null result, keeps spans simple
  // Bump the active block; operator new[] storage is max-aligned, so aligning
  // the offset aligns the pointer.
  for (;;) {
    if (active_ < blocks_.size()) {
      Block& block = blocks_[active_];
      const std::size_t aligned =
          (block.offset + alignment - 1) & ~(alignment - 1);
      if (aligned + bytes <= block.size) {
        used_ += (aligned - block.offset) + bytes;  // padding + payload
        block.offset = aligned + bytes;
        high_water_ = std::max(high_water_, used_);
        return block.data.get() + aligned;
      }
    }
    if (active_ + 1 < blocks_.size()) {
      ++active_;
      continue;
    }
    // Out of room everywhere: chain a block at least doubling total capacity.
    const std::size_t want = std::max(bytes + alignment, 2 * capacity());
    blocks_.push_back(make_block(want));
    active_ = blocks_.size() - 1;
  }
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Consolidate: one block with the combined capacity (rounded up so the
    // same workload fits without chaining again).
    const std::size_t total = capacity();
    blocks_.clear();
    blocks_.push_back(make_block(total));
  }
  for (Block& b : blocks_) b.offset = 0;
  active_ = 0;
  used_ = 0;
}

void Arena::reserve(std::size_t bytes) {
  if (used_ != 0) {
    throw std::logic_error("Arena::reserve: outstanding allocations");
  }
  if (capacity() >= bytes && blocks_.size() <= 1) return;
  const std::size_t want = std::max(bytes, capacity());
  blocks_.clear();
  blocks_.push_back(make_block(want));
  active_ = 0;
}

std::size_t Arena::capacity() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace jwins::core

#include "core/cutoff.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace jwins::core {

RandomizedCutoff::RandomizedCutoff(std::vector<double> alphas,
                                   std::vector<double> probabilities)
    : alphas_(std::move(alphas)), probs_(std::move(probabilities)) {
  if (alphas_.empty() || alphas_.size() != probs_.size()) {
    throw std::invalid_argument("RandomizedCutoff: alphas/probabilities mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < alphas_.size(); ++i) {
    if (alphas_[i] <= 0.0 || alphas_[i] > 1.0) {
      throw std::invalid_argument("RandomizedCutoff: alpha must be in (0, 1]");
    }
    if (probs_[i] <= 0.0) {
      throw std::invalid_argument("RandomizedCutoff: probabilities must be positive");
    }
    total += probs_[i];
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("RandomizedCutoff: probabilities must sum to 1");
  }
  cdf_.resize(probs_.size());
  std::partial_sum(probs_.begin(), probs_.end(), cdf_.begin());
  cdf_.back() = 1.0;  // guard against rounding
}

RandomizedCutoff RandomizedCutoff::paper_default() {
  const std::vector<double> alphas{0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 1.00};
  const std::vector<double> probs(alphas.size(), 1.0 / alphas.size());
  return RandomizedCutoff(alphas, probs);
}

RandomizedCutoff RandomizedCutoff::two_point(double alpha_low, double p_full) {
  if (p_full <= 0.0 || p_full >= 1.0) {
    throw std::invalid_argument("two_point: p_full must be in (0, 1)");
  }
  return RandomizedCutoff({alpha_low, 1.0}, {1.0 - p_full, p_full});
}

RandomizedCutoff RandomizedCutoff::fixed(double alpha) {
  return RandomizedCutoff({alpha}, {1.0});
}

double RandomizedCutoff::expected_alpha() const noexcept {
  double e = 0.0;
  for (std::size_t i = 0; i < alphas_.size(); ++i) e += alphas_[i] * probs_[i];
  return e;
}

}  // namespace jwins::core

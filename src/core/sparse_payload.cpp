#include "core/sparse_payload.hpp"

#include <stdexcept>

#include "compress/elias.hpp"
#include "compress/float_codec.hpp"
#include "compress/topk.hpp"
#include "net/serializer.hpp"

namespace jwins::core {

EncodedPayload encode_payload(const SparsePayload& payload,
                              const PayloadOptions& options) {
  net::ByteWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(options.index_encoding));
  writer.write_u8(static_cast<std::uint8_t>(options.value_encoding));
  writer.write_u32(payload.vector_length);
  writer.write_u32(static_cast<std::uint32_t>(payload.values.size()));

  switch (options.index_encoding) {
    case IndexEncoding::kDense:
      if (!payload.indices.empty() ||
          payload.values.size() != payload.vector_length) {
        throw std::invalid_argument("encode_payload: malformed dense payload");
      }
      break;
    case IndexEncoding::kEliasGamma: {
      if (payload.indices.size() != payload.values.size()) {
        throw std::invalid_argument("encode_payload: index/value mismatch");
      }
      writer.write_bytes(compress::encode_index_gaps(payload.indices));
      break;
    }
    case IndexEncoding::kRaw:
      if (payload.indices.size() != payload.values.size()) {
        throw std::invalid_argument("encode_payload: index/value mismatch");
      }
      writer.write_u32_array(payload.indices);
      break;
    case IndexEncoding::kSeed:
      // Receiver re-derives the indices; sanity-check they match here.
      writer.write_u64(options.seed);
      break;
  }
  const std::size_t metadata_bytes = writer.size();

  switch (options.value_encoding) {
    case ValueEncoding::kXorCodec:
      writer.write_bytes(compress::compress_floats(payload.values));
      break;
    case ValueEncoding::kRaw:
      writer.write_f32_array(payload.values);
      break;
  }

  EncodedPayload out;
  out.body = std::move(writer).take();
  out.metadata_bytes = metadata_bytes;
  return out;
}

SparsePayload decode_payload(std::span<const std::uint8_t> body) {
  net::ByteReader reader(body);
  const auto index_mode = static_cast<IndexEncoding>(reader.read_u8());
  const auto value_mode = static_cast<ValueEncoding>(reader.read_u8());
  SparsePayload payload;
  payload.vector_length = reader.read_u32();
  const std::uint32_t count = reader.read_u32();

  switch (index_mode) {
    case IndexEncoding::kDense:
      if (count != payload.vector_length) {
        throw std::runtime_error("decode_payload: dense count mismatch");
      }
      break;
    case IndexEncoding::kEliasGamma: {
      const auto blob = reader.read_bytes();
      payload.indices = compress::decode_index_gaps(blob, count);
      break;
    }
    case IndexEncoding::kRaw:
      payload.indices = reader.read_u32_array();
      if (payload.indices.size() != count) {
        throw std::runtime_error("decode_payload: raw index count mismatch");
      }
      break;
    case IndexEncoding::kSeed: {
      const std::uint64_t seed = reader.read_u64();
      payload.indices =
          compress::random_indices(payload.vector_length, count, seed);
      break;
    }
  }

  switch (value_mode) {
    case ValueEncoding::kXorCodec: {
      const auto blob = reader.read_bytes();
      payload.values = compress::decompress_floats(blob, count);
      break;
    }
    case ValueEncoding::kRaw:
      payload.values = reader.read_f32_array();
      break;
  }
  if (payload.values.size() != count) {
    throw std::runtime_error("decode_payload: value count mismatch");
  }
  return payload;
}

net::Message make_message(std::uint32_t sender, std::uint32_t round,
                          const SparsePayload& payload,
                          const PayloadOptions& options) {
  EncodedPayload encoded = encode_payload(payload, options);
  net::Message msg;
  msg.sender = sender;
  msg.round = round;
  msg.body = std::move(encoded.body);
  msg.metadata_bytes = encoded.metadata_bytes;
  return msg;
}

}  // namespace jwins::core

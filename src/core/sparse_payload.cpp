#include "core/sparse_payload.hpp"

#include <stdexcept>

#include "compress/elias.hpp"
#include "compress/float_codec.hpp"
#include "compress/topk.hpp"
#include "net/serializer.hpp"

namespace jwins::core {

std::size_t encode_payload_into(const PayloadView& payload,
                                const PayloadOptions& options,
                                net::ByteWriter& writer,
                                compress::BitWriter& bit_scratch) {
  const std::size_t start = writer.size();
  writer.write_u8(static_cast<std::uint8_t>(options.index_encoding));
  writer.write_u8(static_cast<std::uint8_t>(options.value_encoding));
  writer.write_u32(payload.vector_length);
  writer.write_u32(static_cast<std::uint32_t>(payload.values.size()));

  switch (options.index_encoding) {
    case IndexEncoding::kDense:
      if (!payload.indices.empty() ||
          payload.values.size() != payload.vector_length) {
        throw std::invalid_argument("encode_payload: malformed dense payload");
      }
      break;
    case IndexEncoding::kEliasGamma: {
      if (payload.indices.size() != payload.values.size()) {
        throw std::invalid_argument("encode_payload: index/value mismatch");
      }
      bit_scratch.clear();
      compress::encode_index_gaps(payload.indices, bit_scratch);
      writer.write_bytes(bit_scratch.bytes());
      break;
    }
    case IndexEncoding::kRaw:
      if (payload.indices.size() != payload.values.size()) {
        throw std::invalid_argument("encode_payload: index/value mismatch");
      }
      writer.write_u32_array(payload.indices);
      break;
    case IndexEncoding::kSeed:
      // Receiver re-derives the indices; sanity-check they match here.
      writer.write_u64(options.seed);
      break;
  }
  const std::size_t metadata_bytes = writer.size() - start;

  switch (options.value_encoding) {
    case ValueEncoding::kXorCodec:
      bit_scratch.clear();
      compress::compress_floats(payload.values, bit_scratch);
      writer.write_bytes(bit_scratch.bytes());
      break;
    case ValueEncoding::kRaw:
      writer.write_f32_array(payload.values);
      break;
  }
  return metadata_bytes;
}

EncodedPayload encode_payload(const SparsePayload& payload,
                              const PayloadOptions& options) {
  net::ByteWriter writer;
  compress::BitWriter bit_scratch;
  EncodedPayload out;
  out.metadata_bytes =
      encode_payload_into(payload, options, writer, bit_scratch);
  out.body = std::move(writer).take();
  return out;
}

void decode_payload_into(std::span<const std::uint8_t> body,
                         SparsePayload& out, Arena& arena) {
  net::ByteReader reader(body);
  const auto index_mode = static_cast<IndexEncoding>(reader.read_u8());
  const auto value_mode = static_cast<ValueEncoding>(reader.read_u8());
  out.vector_length = reader.read_u32();
  const std::uint32_t count = reader.read_u32();
  out.indices.clear();
  out.values.clear();

  switch (index_mode) {
    case IndexEncoding::kDense:
      if (count != out.vector_length) {
        throw std::runtime_error("decode_payload: dense count mismatch");
      }
      break;
    case IndexEncoding::kEliasGamma: {
      // View, not copy: the blob stays in the (refcounted) message body.
      const std::span<const std::uint8_t> blob = reader.view_bytes();
      compress::decode_index_gaps_into(blob, count, out.indices);
      break;
    }
    case IndexEncoding::kRaw:
      reader.read_u32_array_into(out.indices);
      if (out.indices.size() != count) {
        throw std::runtime_error("decode_payload: raw index count mismatch");
      }
      break;
    case IndexEncoding::kSeed: {
      const std::uint64_t seed = reader.read_u64();
      compress::random_indices_into(out.vector_length, count, seed,
                                    out.indices, arena);
      break;
    }
  }

  switch (value_mode) {
    case ValueEncoding::kXorCodec: {
      const std::span<const std::uint8_t> blob = reader.view_bytes();
      compress::decompress_floats_into(blob, count, out.values);
      break;
    }
    case ValueEncoding::kRaw:
      reader.read_f32_array_into(out.values);
      break;
  }
  if (out.values.size() != count) {
    throw std::runtime_error("decode_payload: value count mismatch");
  }
}

SparsePayload decode_payload(std::span<const std::uint8_t> body) {
  SparsePayload payload;
  Arena arena;
  decode_payload_into(body, payload, arena);
  return payload;
}

net::Message make_message(std::uint32_t sender, std::uint32_t round,
                          const SparsePayload& payload,
                          const PayloadOptions& options) {
  EncodedPayload encoded = encode_payload(payload, options);
  net::Message msg;
  msg.sender = sender;
  msg.round = round;
  msg.body = std::move(encoded.body);
  msg.metadata_bytes = encoded.metadata_bytes;
  return msg;
}

net::Message make_message(std::uint32_t sender, std::uint32_t round,
                          const PayloadView& payload,
                          const PayloadOptions& options, net::BufferPool& pool,
                          compress::BitWriter& bit_scratch) {
  net::ByteWriter writer(pool.acquire());
  net::Message msg;
  msg.sender = sender;
  msg.round = round;
  msg.metadata_bytes =
      encode_payload_into(payload, options, writer, bit_scratch);
  msg.body = pool.adopt(std::move(writer).take());
  return msg;
}

}  // namespace jwins::core

// Per-worker round scratch: every reusable buffer a node needs to run one
// share() or aggregate() call without touching the heap.
//
// Ownership model (docs/PERFORMANCE.md has the full map):
//  * sim::Experiment owns one RoundScratch per execution lane, sized once
//    from the model and reused for every (node, round) the lane processes.
//  * A node resets the scratch at the top of each share()/aggregate() call;
//    everything handed out by the arena or the pools is dead after the call
//    returns. Cross-call state (accumulation vectors, error feedback, the
//    indices a node must remember until aggregate()) stays in node members.
//  * Scratches are never shared between concurrently running calls — lanes
//    are the unit of exclusivity (net::ThreadPool's static chunking).
//
// Determinism: scratch reuse cannot change results — every buffer is fully
// written before it is read, and no value depends on an address — so
// threads=N stays bit-identical to threads=1 (test_determinism.cpp) and
// arena-backed runs stay byte-identical to the allocating legacy APIs
// (tests/test_arena.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "compress/bitstream.hpp"
#include "compress/quantize.hpp"
#include "core/arena.hpp"
#include "core/averaging.hpp"
#include "core/sparse_payload.hpp"
#include "dwt/dwt.hpp"
#include "net/network.hpp"

namespace jwins::core {

/// Reuse pool for decoded payloads. next() recycles SparsePayload slots —
/// and, crucially, the heap capacity of their index/value vectors — across
/// rounds; reset() only rewinds the cursor. References stay valid until the
/// pool grows (decode everything first, then take stable references).
class PayloadPool {
 public:
  /// A cleared payload slot (buffers empty, capacity kept).
  SparsePayload& next() {
    if (used_ == slots_.size()) slots_.emplace_back();
    SparsePayload& p = slots_[used_++];
    p.vector_length = 0;
    p.indices.clear();
    p.values.clear();
    return p;
  }

  SparsePayload& operator[](std::size_t i) { return slots_[i]; }
  const SparsePayload& operator[](std::size_t i) const { return slots_[i]; }
  std::size_t used() const noexcept { return used_; }
  void reset() noexcept { used_ = 0; }

 private:
  std::vector<SparsePayload> slots_;
  std::size_t used_ = 0;
};

struct RoundScratch {
  Arena arena;               ///< POD temporaries; valid until the next reset()
  dwt::DwtWorkspace dwt;     ///< wavelet transform ping-pong buffers
  compress::BitWriter bits;  ///< Elias/XOR bitstream staging
  PayloadPool payloads;      ///< decoded neighbor payloads
  std::vector<net::Message> inbox;  ///< drain_into target (capacity circulates
                                    ///< with the mailbox)
  std::vector<WeightedContribution> contributions;  ///< partial_average input
  std::vector<double> contribution_scales;  ///< per-contribution age decay
                                            ///< (weighted async mode)
  compress::QuantizedVector quantized;  ///< QSGD decode staging (CHOCO)
  std::vector<float> floats;            ///< generic reused float buffer

  /// Called by a node at the top of each share()/aggregate(): invalidates
  /// all arena spans and pool slots from the previous call, keeps capacity.
  /// Clearing the inbox here also releases the previous round's message
  /// bodies back to the network's BufferPool before new sends acquire.
  void reset() {
    arena.reset();
    payloads.reset();
    inbox.clear();
    contributions.clear();
    contribution_scales.clear();
  }

  /// Pre-sizes the arena from the model so round one already runs without
  /// heap growth. The factor covers the worst per-call demand: two double
  /// accumulators, two float deltas, a coefficient vector, gathered values,
  /// an index list, and slack for coefficient-length padding.
  void reserve_for_model(std::size_t param_count) {
    arena.reserve(48 * param_count + 4096);
  }
};

}  // namespace jwins::core

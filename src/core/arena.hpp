// Round-scratch bump allocator — the backbone of the hot-path memory model
// (docs/PERFORMANCE.md).
//
// The per-round loop (train -> share -> aggregate) used to re-allocate every
// temporary — DWT deltas, TopK order arrays, partial-averaging accumulators —
// from the heap on every call. An Arena replaces all of those with pointer
// bumps into a block that is allocated once and reused for the rest of the
// run: allocations are O(1) with no lock and no syscall, and reset() makes
// the whole capacity available again without returning anything to the heap.
//
// Lifetime contract: memory obtained from alloc()/allocate() is valid until
// the NEXT reset() (or destruction). The engine resets a worker's arena at
// the top of each share()/aggregate() call, so arena spans never outlive the
// node call that requested them. Arenas are single-threaded by design — one
// per worker lane, never shared (see sim::Experiment).
//
// Growth: when a block runs out, a new block of at least twice the total
// capacity is chained on; the next reset() consolidates everything into one
// block, so steady state is a single block and zero heap traffic. Determinism
// is unaffected: arena contents are always fully written before being read,
// and no computed value ever depends on an address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace jwins::core {

class Arena {
 public:
  Arena() = default;
  /// Pre-sizes the arena to one block of at least `initial_bytes`.
  explicit Arena(std::size_t initial_bytes) { reserve(initial_bytes); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Uninitialized storage for `count` objects of trivially-destructible T,
  /// aligned to alignof(T). Callers must write before reading. count == 0
  /// returns an empty span without touching the arena.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (count == 0) return {};
    void* p = allocate(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Raw aligned allocation. `alignment` must be a power of two and at most
  /// alignof(std::max_align_t) (blocks are max-aligned).
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Invalidates every outstanding allocation and makes the full capacity
  /// available again. If growth split the arena across blocks, they are
  /// consolidated into one (the only reset that touches the heap), so a
  /// warmed-up arena resets for free.
  void reset();

  /// Guarantees one block of at least `bytes` total capacity. Outstanding
  /// allocations must not exist (used() == 0); call before the first round.
  void reserve(std::size_t bytes);

  /// Total bytes owned across all blocks.
  std::size_t capacity() const noexcept;

  /// Bytes handed out (including alignment padding) since the last reset().
  std::size_t used() const noexcept { return used_; }

  /// Largest used() observed over the arena's lifetime — what reserve()
  /// should be fed to make the next run allocation-free from round one.
  std::size_t high_water() const noexcept { return high_water_; }

  /// Number of blocks currently owned (1 in steady state).
  std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  Block make_block(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;      ///< index of the block being bumped
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace jwins::core

// Partial weighted averaging (paper Algorithm 1, line 10).
//
// Received sparse vectors cover different index subsets, so the mixing
// weights are re-normalized per coefficient over the set of contributors
// that actually supplied it (own model always contributes): for index k,
//   avg[k] = (w_self * own[k] + sum_{j sent k} w_j * z_j[k])
//            / (w_self + sum_{j sent k} w_j).
// With dense contributions from every neighbor this reduces exactly to the
// Metropolis-Hastings weighted average used by full-sharing D-PSGD.
#pragma once

#include <span>
#include <vector>

#include "core/arena.hpp"
#include "core/sparse_payload.hpp"

namespace jwins::core {

struct WeightedContribution {
  double weight = 0.0;
  const SparsePayload* payload = nullptr;
};

/// Averages `own` (dense) with sparse neighbor contributions in place.
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions);

/// Scratch variant: the two O(n) double accumulators come from `arena`
/// instead of the heap (valid only within this call). Bit-identical to the
/// allocating overload.
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     Arena& arena);

/// Per-contribution scaled variant (staleness-weighted asynchronous mixing,
/// sim::AsyncMode::kWeighted): contribution i participates with effective
/// weight contributions[i].weight * contribution_scales[i] in BOTH the
/// numerator and the denominator, so the result remains a convex
/// combination — the weights still renormalize to 1 per coefficient, decay
/// merely shifts mass from stale contributors toward the rest. Requires
/// contribution_scales.size() == contributions.size(); throws otherwise.
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales);

/// Scratch variant of the scaled overload (same arena contract as above).
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales,
                     Arena& arena);

}  // namespace jwins::core

// Partial weighted averaging (paper Algorithm 1, line 10).
//
// Received sparse vectors cover different index subsets, so the mixing
// weights are re-normalized per coefficient over the set of contributors
// that actually supplied it (own model always contributes): for index k,
//   avg[k] = (w_self * own[k] + sum_{j sent k} w_j * z_j[k])
//            / (w_self + sum_{j sent k} w_j).
// With dense contributions from every neighbor this reduces exactly to the
// Metropolis-Hastings weighted average used by full-sharing D-PSGD.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/arena.hpp"
#include "core/sparse_payload.hpp"

namespace jwins::core {

struct WeightedContribution {
  double weight = 0.0;
  const SparsePayload* payload = nullptr;
};

/// Robust-aggregation rule applied where Algorithm 1 would plainly average
/// (the byzantine countermeasure layer; docs/SIMULATION.md "Adversarial
/// behavior"). kNone routes through partial_average() unchanged — the exact
/// legacy path, pinned byte-identical by tests/test_byzantine.cpp.
enum class RobustAggKind {
  kNone,         ///< plain partial averaging (the default)
  kTrimmedMean,  ///< coordinate-wise: drop the t lowest/highest, average rest
  kMedian,       ///< coordinate-wise unweighted median of the suppliers
  kNormClip,     ///< per-contribution L2 deviation clipped to a radius
};

const char* robust_agg_name(RobustAggKind kind);

struct RobustAggConfig {
  RobustAggKind kind = RobustAggKind::kNone;
  /// trimmed_mean: fraction trimmed from EACH end of the per-coordinate
  /// supplier list; t = floor(f * m) further clamped to (m - 1) / 2 so at
  /// least one entry always survives. Must be in [0, 0.5).
  double trim_fraction = 0.0;
  /// norm_clip: maximum L2 deviation a contribution may have from the
  /// receiver's own vector; larger deviations are radially shrunk onto the
  /// clip sphere. Must be > 0 when the kind is kNormClip.
  double clip_norm = 1.0;
};

/// Per-node tally of what the robust rule actually did — surfaced in the
/// result JSON's "byzantine" block (sim/report.cpp).
struct RobustAggCounters {
  std::uint64_t trimmed_entries = 0;        ///< coordinate entries discarded
  std::uint64_t clipped_contributions = 0;  ///< payloads shrunk onto the sphere
};

/// Averages `own` (dense) with sparse neighbor contributions in place.
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions);

/// Scratch variant: the two O(n) double accumulators come from `arena`
/// instead of the heap (valid only within this call). Bit-identical to the
/// allocating overload.
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     Arena& arena);

/// Per-contribution scaled variant (staleness-weighted asynchronous mixing,
/// sim::AsyncMode::kWeighted): contribution i participates with effective
/// weight contributions[i].weight * contribution_scales[i] in BOTH the
/// numerator and the denominator, so the result remains a convex
/// combination — the weights still renormalize to 1 per coefficient, decay
/// merely shifts mass from stale contributors toward the rest. Requires
/// contribution_scales.size() == contributions.size(); throws otherwise.
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales);

/// Scratch variant of the scaled overload (same arena contract as above).
void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales,
                     Arena& arena);

/// Robust variant of partial_average: merges `own` with the contributions
/// under the configured rule.
///
///  * kNone — forwards to partial_average() (the exact legacy path: same
///    doubles, same operation order).
///  * kTrimmedMean — per coordinate, the supplier list is (own, then each
///    contribution that sent the coordinate, in order); after trimming
///    t = min(floor(f * m), (m - 1) / 2) entries from each end of the
///    value-sorted list, the survivors are weighted-averaged with the same
///    renormalization as partial_average.
///  * kMedian — per coordinate, the unweighted median of the same supplier
///    list (even count: mean of the middle two).
///  * kNormClip — each contribution whose L2 deviation from `own` (over the
///    indices it supplies) exceeds clip_norm is radially shrunk onto the
///    sphere (z' = own + (c / ||z - own||)(z - own)); the clipped values
///    then flow through the ordinary partial average. Contributions inside
///    the sphere pass through untouched (bit-identical values).
///
/// `contribution_scales` follows the partial_average contract (empty = no
/// staleness decay). Temporaries come from `arena`; `counters` (optional)
/// accumulates what the rule discarded or shrank.
void robust_partial_average(const RobustAggConfig& config, std::span<float> own,
                            double self_weight,
                            std::span<const WeightedContribution> contributions,
                            std::span<const double> contribution_scales,
                            Arena& arena,
                            RobustAggCounters* counters = nullptr);

/// Allocating convenience overload (tests, one-off callers): same result,
/// temporaries from an internal arena.
void robust_partial_average(const RobustAggConfig& config, std::span<float> own,
                            double self_weight,
                            std::span<const WeightedContribution> contributions,
                            std::span<const double> contribution_scales,
                            RobustAggCounters* counters = nullptr);

/// CHOCO-style robust accumulation over *difference* payloads: every
/// contribution is a neighbor's compressed model diff and the honest update
/// is acc[i] += sum_j w_j * z_j[i]. The robust rules reshape that sum:
///
///  * kNone — the literal weighted sum, in contribution order.
///  * kNormClip — contribution j is shrunk to L2 norm clip_norm when it
///    exceeds it (diffs deviate from zero, not from `acc`).
///  * kTrimmedMean / kMedian — per coordinate, the robust combine r_i of the
///    supplying neighbors' values (trim/median exactly as above, no own
///    entry — the receiver's own diff is self-applied by CHOCO separately);
///    the update becomes acc[i] += W_i * r_i with W_i the summed weight of
///    the suppliers, so the step magnitude matches the honest sum when all
///    suppliers agree.
void robust_accumulate_diffs(const RobustAggConfig& config,
                             std::span<float> acc,
                             std::span<const WeightedContribution> contributions,
                             Arena& arena,
                             RobustAggCounters* counters = nullptr);

}  // namespace jwins::core

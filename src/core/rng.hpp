// Counter-based random streams for reproducible parallel simulation.
//
// The engine runs every node of a round concurrently, so per-node randomness
// must not depend on *when* a node draws relative to the others. Instead of
// seed-offset stateful engines (whose output depends on the full call
// history), each consumer derives an independent stream from the logical
// coordinates of the draw — (experiment seed, node id, round, salt) — via a
// SplitMix64-style keyed counter. The k-th draw of a stream is a pure
// function of (key, k), so `threads = N` is bit-identical to `threads = 1`
// by construction. See docs/DESIGN.md "Determinism & threading model".
#pragma once

#include <cstdint>

namespace jwins::core {

/// SplitMix64 finalizer (Steele et al.): bijective avalanche mix of a 64-bit
/// word; net::Network keys its message-drop decisions on it too.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Hashes up to four logical coordinates into one well-mixed stream key.
/// Unlike `seed * constant + node` offsets, nearby (seed, node, round)
/// tuples never collide into overlapping engine states.
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a = 0,
                                    std::uint64_t b = 0,
                                    std::uint64_t c = 0) noexcept {
  std::uint64_t h = mix64(seed ^ 0xA0761D6478BD642Full);
  h = mix64(h ^ mix64(a ^ 0xE7037ED1A0B428DBull));
  h = mix64(h ^ mix64(b ^ 0x8EBC6AF09C88C6E3ull));
  h = mix64(h ^ mix64(c ^ 0x589965CC75374CC3ull));
  return h;
}

/// Counter-based UniformRandomBitGenerator: draw k of a stream is
/// mix64(key + k * odd_constant) — stateless up to the counter, copyable,
/// and usable with <random> distributions (deterministic per platform).
class CounterRng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr CounterRng(std::uint64_t key) noexcept : key_(key) {}

  /// Stream for one (experiment seed, node, round[, salt]) coordinate.
  constexpr CounterRng(std::uint64_t seed, std::uint64_t node,
                       std::uint64_t round, std::uint64_t salt = 0) noexcept
      : key_(derive_seed(seed, node, round, salt)) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    return mix64(key_ + 0x9E3779B97F4A7C15ull * ++counter_);
  }

 private:
  std::uint64_t key_;
  std::uint64_t counter_ = 0;
};

}  // namespace jwins::core

#include "core/averaging.hpp"

#include <stdexcept>

namespace jwins::core {

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions) {
  const std::size_t n = own.size();
  std::vector<double> numerator(n);
  std::vector<double> denominator(n, self_weight);
  for (std::size_t i = 0; i < n; ++i) {
    numerator[i] = self_weight * own[i];
  }
  for (const WeightedContribution& c : contributions) {
    if (c.payload == nullptr) {
      throw std::invalid_argument("partial_average: null contribution");
    }
    const SparsePayload& p = *c.payload;
    if (p.vector_length != n) {
      throw std::invalid_argument("partial_average: vector length mismatch");
    }
    if (p.dense()) {
      for (std::size_t i = 0; i < n; ++i) {
        numerator[i] += c.weight * p.values[i];
        denominator[i] += c.weight;
      }
    } else {
      for (std::size_t i = 0; i < p.indices.size(); ++i) {
        const std::uint32_t idx = p.indices[i];
        if (idx >= n) {
          throw std::out_of_range("partial_average: index out of range");
        }
        numerator[idx] += c.weight * p.values[i];
        denominator[idx] += c.weight;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    own[i] = denominator[i] > 0.0
                 ? static_cast<float>(numerator[i] / denominator[i])
                 : own[i];
  }
}

}  // namespace jwins::core

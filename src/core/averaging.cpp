#include "core/averaging.hpp"

#include <cmath>
#include <stdexcept>

namespace jwins::core {

namespace {

void partial_average_impl(std::span<float> own, double self_weight,
                          std::span<const WeightedContribution> contributions,
                          std::span<const double> contribution_scales,
                          std::span<double> numerator,
                          std::span<double> denominator) {
  const std::size_t n = own.size();
  if (!contribution_scales.empty() &&
      contribution_scales.size() != contributions.size()) {
    throw std::invalid_argument(
        "partial_average: contribution_scales size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    numerator[i] = self_weight * own[i];
    denominator[i] = self_weight;
  }
  for (std::size_t k = 0; k < contributions.size(); ++k) {
    const WeightedContribution& c = contributions[k];
    if (c.payload == nullptr) {
      throw std::invalid_argument("partial_average: null contribution");
    }
    // Effective weight: the scale multiplies numerator AND denominator, so
    // per-coefficient renormalization still sums to 1 — decay redistributes
    // mass, it never leaks it. Empty scales = the exact legacy path.
    const double w = contribution_scales.empty()
                         ? c.weight
                         : c.weight * contribution_scales[k];
    const SparsePayload& p = *c.payload;
    if (p.vector_length != n) {
      throw std::invalid_argument("partial_average: vector length mismatch");
    }
    if (p.dense()) {
      for (std::size_t i = 0; i < n; ++i) {
        numerator[i] += w * p.values[i];
        denominator[i] += w;
      }
    } else {
      for (std::size_t i = 0; i < p.indices.size(); ++i) {
        const std::uint32_t idx = p.indices[i];
        if (idx >= n) {
          throw std::out_of_range("partial_average: index out of range");
        }
        numerator[idx] += w * p.values[i];
        denominator[idx] += w;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    own[i] = denominator[i] > 0.0
                 ? static_cast<float>(numerator[i] / denominator[i])
                 : own[i];
  }
}

}  // namespace

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions) {
  std::vector<double> numerator(own.size());
  std::vector<double> denominator(own.size());
  partial_average_impl(own, self_weight, contributions, {}, numerator,
                       denominator);
}

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     Arena& arena) {
  const std::span<double> numerator = arena.alloc<double>(own.size());
  const std::span<double> denominator = arena.alloc<double>(own.size());
  partial_average_impl(own, self_weight, contributions, {}, numerator,
                       denominator);
}

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales) {
  std::vector<double> numerator(own.size());
  std::vector<double> denominator(own.size());
  partial_average_impl(own, self_weight, contributions, contribution_scales,
                       numerator, denominator);
}

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales,
                     Arena& arena) {
  const std::span<double> numerator = arena.alloc<double>(own.size());
  const std::span<double> denominator = arena.alloc<double>(own.size());
  partial_average_impl(own, self_weight, contributions, contribution_scales,
                       numerator, denominator);
}

namespace {

/// One per-coordinate supplier entry for the order-statistic rules.
struct RobustEntry {
  float value = 0.0f;
  double weight = 0.0;
};

/// Stable in-place insertion sort by value: slices are tiny (degree + 1),
/// and stability makes tie-breaking the deterministic insertion order (own
/// first, then contribution order) at every thread count.
void sort_entries_by_value(RobustEntry* first, std::size_t m) {
  for (std::size_t i = 1; i < m; ++i) {
    const RobustEntry e = first[i];
    std::size_t j = i;
    while (j > 0 && first[j - 1].value > e.value) {
      first[j] = first[j - 1];
      --j;
    }
    first[j] = e;
  }
}

void check_contribution(const WeightedContribution& c, std::size_t n,
                        const char* who) {
  if (c.payload == nullptr) {
    throw std::invalid_argument(std::string(who) + ": null contribution");
  }
  const SparsePayload& p = *c.payload;
  if (p.vector_length != n) {
    throw std::invalid_argument(std::string(who) + ": vector length mismatch");
  }
  if (!p.dense()) {
    for (const std::uint32_t idx : p.indices) {
      if (idx >= n) {
        throw std::out_of_range(std::string(who) + ": index out of range");
      }
    }
  }
}

double effective_weight(const WeightedContribution& c,
                        std::span<const double> scales, std::size_t k) {
  return scales.empty() ? c.weight : c.weight * scales[k];
}

/// Groups every (coordinate, supplier) entry by coordinate: counting sort
/// over the payload index lists. `with_own` seeds each coordinate with
/// (own[i], self_weight) as its first entry. Returns the entries span;
/// `offsets[i]..offsets[i+1]` is coordinate i's slice, suppliers in
/// insertion order (own first, then contribution order).
std::span<RobustEntry> group_by_coordinate(
    std::span<const float> own, double self_weight, bool with_own,
    std::span<const WeightedContribution> contributions,
    std::span<const double> scales, Arena& arena, const char* who,
    std::span<std::size_t>& offsets) {
  const std::size_t n = own.size();
  offsets = arena.alloc<std::size_t>(n + 1);
  const std::span<std::size_t> cursor = arena.alloc<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) cursor[i] = with_own ? 1 : 0;
  for (const WeightedContribution& c : contributions) {
    check_contribution(c, n, who);
    const SparsePayload& p = *c.payload;
    if (p.dense()) {
      for (std::size_t i = 0; i < n; ++i) ++cursor[i];
    } else {
      for (const std::uint32_t idx : p.indices) ++cursor[idx];
    }
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i] = total;
    total += cursor[i];
  }
  offsets[n] = total;
  const std::span<RobustEntry> entries = arena.alloc<RobustEntry>(total);
  for (std::size_t i = 0; i < n; ++i) {
    cursor[i] = offsets[i];
    if (with_own) entries[cursor[i]++] = {own[i], self_weight};
  }
  for (std::size_t k = 0; k < contributions.size(); ++k) {
    const WeightedContribution& c = contributions[k];
    const double w = effective_weight(c, scales, k);
    const SparsePayload& p = *c.payload;
    if (p.dense()) {
      for (std::size_t i = 0; i < n; ++i) {
        entries[cursor[i]++] = {p.values[i], w};
      }
    } else {
      for (std::size_t i = 0; i < p.indices.size(); ++i) {
        entries[cursor[p.indices[i]]++] = {p.values[i], w};
      }
    }
  }
  return entries;
}

/// Trim count for m suppliers under fraction f: floor(f * m), clamped so at
/// least one entry survives.
std::size_t trim_count(double fraction, std::size_t m) {
  const auto t = static_cast<std::size_t>(fraction * static_cast<double>(m));
  return m == 0 ? 0 : std::min(t, (m - 1) / 2);
}

/// Per-contribution radial shrink factors for norm_clip: min(1, c/||z-ref||)
/// with the deviation measured over the indices the contribution supplies.
/// `ref` may be empty (diff payloads deviate from zero).
std::span<double> clip_factors(std::span<const float> ref, std::size_t n,
                               double clip_norm,
                               std::span<const WeightedContribution> contributions,
                               Arena& arena, const char* who,
                               RobustAggCounters* counters) {
  const std::span<double> factors = arena.alloc<double>(contributions.size());
  for (std::size_t k = 0; k < contributions.size(); ++k) {
    check_contribution(contributions[k], n, who);
    const SparsePayload& p = *contributions[k].payload;
    double norm_sq = 0.0;
    if (p.dense()) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(p.values[i]) -
                         (ref.empty() ? 0.0 : static_cast<double>(ref[i]));
        norm_sq += d * d;
      }
    } else {
      for (std::size_t i = 0; i < p.indices.size(); ++i) {
        const double d =
            static_cast<double>(p.values[i]) -
            (ref.empty() ? 0.0
                         : static_cast<double>(ref[p.indices[i]]));
        norm_sq += d * d;
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > clip_norm) {
      factors[k] = clip_norm / norm;
      if (counters != nullptr) ++counters->clipped_contributions;
    } else {
      factors[k] = 1.0;
    }
  }
  return factors;
}

}  // namespace

const char* robust_agg_name(RobustAggKind kind) {
  switch (kind) {
    case RobustAggKind::kNone: return "none";
    case RobustAggKind::kTrimmedMean: return "trimmed_mean";
    case RobustAggKind::kMedian: return "median";
    case RobustAggKind::kNormClip: return "norm_clip";
  }
  return "unknown";
}

void robust_partial_average(const RobustAggConfig& config, std::span<float> own,
                            double self_weight,
                            std::span<const WeightedContribution> contributions,
                            std::span<const double> contribution_scales,
                            Arena& arena, RobustAggCounters* counters) {
  const std::size_t n = own.size();
  if (!contribution_scales.empty() &&
      contribution_scales.size() != contributions.size()) {
    throw std::invalid_argument(
        "robust_partial_average: contribution_scales size mismatch");
  }
  switch (config.kind) {
    case RobustAggKind::kNone:
      // The exact legacy path — same overload selection the algorithms used
      // before the robust layer existed.
      if (contribution_scales.empty()) {
        partial_average(own, self_weight, contributions, arena);
      } else {
        partial_average(own, self_weight, contributions, contribution_scales,
                        arena);
      }
      return;
    case RobustAggKind::kNormClip: {
      const std::span<const double> factors =
          clip_factors(own, n, config.clip_norm, contributions, arena,
                       "robust_partial_average", counters);
      const std::span<double> numerator = arena.alloc<double>(n);
      const std::span<double> denominator = arena.alloc<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        numerator[i] = self_weight * own[i];
        denominator[i] = self_weight;
      }
      for (std::size_t k = 0; k < contributions.size(); ++k) {
        const WeightedContribution& c = contributions[k];
        const double w = effective_weight(c, contribution_scales, k);
        const double f = factors[k];
        const SparsePayload& p = *c.payload;
        // f == 1.0 passes the received value through bit-identically, so a
        // run where nothing exceeds the radius matches the unclipped path.
        const auto clipped = [&](std::size_t idx, float v) {
          return f == 1.0 ? static_cast<double>(v)
                          : static_cast<double>(own[idx]) +
                                f * (static_cast<double>(v) - own[idx]);
        };
        if (p.dense()) {
          for (std::size_t i = 0; i < n; ++i) {
            numerator[i] += w * clipped(i, p.values[i]);
            denominator[i] += w;
          }
        } else {
          for (std::size_t i = 0; i < p.indices.size(); ++i) {
            const std::uint32_t idx = p.indices[i];
            numerator[idx] += w * clipped(idx, p.values[i]);
            denominator[idx] += w;
          }
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        own[i] = denominator[i] > 0.0
                     ? static_cast<float>(numerator[i] / denominator[i])
                     : own[i];
      }
      return;
    }
    case RobustAggKind::kTrimmedMean:
    case RobustAggKind::kMedian: {
      std::span<std::size_t> offsets;
      const std::span<RobustEntry> entries = group_by_coordinate(
          own, self_weight, /*with_own=*/true, contributions,
          contribution_scales, arena, "robust_partial_average", offsets);
      for (std::size_t i = 0; i < n; ++i) {
        RobustEntry* slice = entries.data() + offsets[i];
        const std::size_t m = offsets[i + 1] - offsets[i];
        if (m <= 1) continue;  // own only: nothing to combine
        sort_entries_by_value(slice, m);
        if (config.kind == RobustAggKind::kMedian) {
          const double mid =
              m % 2 == 1 ? static_cast<double>(slice[m / 2].value)
                         : 0.5 * (static_cast<double>(slice[m / 2 - 1].value) +
                                  static_cast<double>(slice[m / 2].value));
          own[i] = static_cast<float>(mid);
          if (counters != nullptr) {
            // The median discards every entry but the middle one (two, for
            // even m) — tally them so the JSON shows the rule engaged.
            counters->trimmed_entries += m - (m % 2 == 1 ? 1 : 2);
          }
        } else {
          const std::size_t t = trim_count(config.trim_fraction, m);
          if (counters != nullptr) {
            counters->trimmed_entries += 2 * static_cast<std::uint64_t>(t);
          }
          double numerator = 0.0;
          double denominator = 0.0;
          for (std::size_t j = t; j < m - t; ++j) {
            numerator += slice[j].weight * static_cast<double>(slice[j].value);
            denominator += slice[j].weight;
          }
          if (denominator > 0.0) {
            own[i] = static_cast<float>(numerator / denominator);
          }
        }
      }
      return;
    }
  }
}

void robust_partial_average(const RobustAggConfig& config, std::span<float> own,
                            double self_weight,
                            std::span<const WeightedContribution> contributions,
                            std::span<const double> contribution_scales,
                            RobustAggCounters* counters) {
  Arena arena;
  robust_partial_average(config, own, self_weight, contributions,
                         contribution_scales, arena, counters);
}

void robust_accumulate_diffs(const RobustAggConfig& config,
                             std::span<float> acc,
                             std::span<const WeightedContribution> contributions,
                             Arena& arena, RobustAggCounters* counters) {
  const std::size_t n = acc.size();
  switch (config.kind) {
    case RobustAggKind::kNone: {
      for (const WeightedContribution& c : contributions) {
        check_contribution(c, n, "robust_accumulate_diffs");
        const SparsePayload& p = *c.payload;
        if (p.dense()) {
          for (std::size_t i = 0; i < n; ++i) {
            acc[i] += static_cast<float>(c.weight * p.values[i]);
          }
        } else {
          for (std::size_t i = 0; i < p.indices.size(); ++i) {
            acc[p.indices[i]] += static_cast<float>(c.weight * p.values[i]);
          }
        }
      }
      return;
    }
    case RobustAggKind::kNormClip: {
      const std::span<const double> factors =
          clip_factors({}, n, config.clip_norm, contributions, arena,
                       "robust_accumulate_diffs", counters);
      for (std::size_t k = 0; k < contributions.size(); ++k) {
        const WeightedContribution& c = contributions[k];
        const double f = factors[k];
        const SparsePayload& p = *c.payload;
        const double wf = f == 1.0 ? c.weight : c.weight * f;
        if (p.dense()) {
          for (std::size_t i = 0; i < n; ++i) {
            acc[i] += static_cast<float>(wf * p.values[i]);
          }
        } else {
          for (std::size_t i = 0; i < p.indices.size(); ++i) {
            acc[p.indices[i]] += static_cast<float>(wf * p.values[i]);
          }
        }
      }
      return;
    }
    case RobustAggKind::kTrimmedMean:
    case RobustAggKind::kMedian: {
      std::span<std::size_t> offsets;
      const std::span<RobustEntry> entries = group_by_coordinate(
          acc, /*self_weight=*/0.0, /*with_own=*/false, contributions, {},
          arena, "robust_accumulate_diffs", offsets);
      for (std::size_t i = 0; i < n; ++i) {
        RobustEntry* slice = entries.data() + offsets[i];
        const std::size_t m = offsets[i + 1] - offsets[i];
        if (m == 0) continue;
        sort_entries_by_value(slice, m);
        double supplied_weight = 0.0;
        for (std::size_t j = 0; j < m; ++j) supplied_weight += slice[j].weight;
        double robust = 0.0;
        if (config.kind == RobustAggKind::kMedian) {
          robust =
              m % 2 == 1 ? static_cast<double>(slice[m / 2].value)
                         : 0.5 * (static_cast<double>(slice[m / 2 - 1].value) +
                                  static_cast<double>(slice[m / 2].value));
          if (counters != nullptr) {
            counters->trimmed_entries += m - (m % 2 == 1 ? 1 : 2);
          }
        } else {
          const std::size_t t = trim_count(config.trim_fraction, m);
          if (counters != nullptr) {
            counters->trimmed_entries += 2 * static_cast<std::uint64_t>(t);
          }
          double numerator = 0.0;
          double denominator = 0.0;
          for (std::size_t j = t; j < m - t; ++j) {
            numerator += slice[j].weight * static_cast<double>(slice[j].value);
            denominator += slice[j].weight;
          }
          if (denominator <= 0.0) continue;
          robust = numerator / denominator;
        }
        acc[i] += static_cast<float>(supplied_weight * robust);
      }
      return;
    }
  }
}

}  // namespace jwins::core

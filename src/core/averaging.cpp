#include "core/averaging.hpp"

#include <stdexcept>

namespace jwins::core {

namespace {

void partial_average_impl(std::span<float> own, double self_weight,
                          std::span<const WeightedContribution> contributions,
                          std::span<double> numerator,
                          std::span<double> denominator) {
  const std::size_t n = own.size();
  for (std::size_t i = 0; i < n; ++i) {
    numerator[i] = self_weight * own[i];
    denominator[i] = self_weight;
  }
  for (const WeightedContribution& c : contributions) {
    if (c.payload == nullptr) {
      throw std::invalid_argument("partial_average: null contribution");
    }
    const SparsePayload& p = *c.payload;
    if (p.vector_length != n) {
      throw std::invalid_argument("partial_average: vector length mismatch");
    }
    if (p.dense()) {
      for (std::size_t i = 0; i < n; ++i) {
        numerator[i] += c.weight * p.values[i];
        denominator[i] += c.weight;
      }
    } else {
      for (std::size_t i = 0; i < p.indices.size(); ++i) {
        const std::uint32_t idx = p.indices[i];
        if (idx >= n) {
          throw std::out_of_range("partial_average: index out of range");
        }
        numerator[idx] += c.weight * p.values[i];
        denominator[idx] += c.weight;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    own[i] = denominator[i] > 0.0
                 ? static_cast<float>(numerator[i] / denominator[i])
                 : own[i];
  }
}

}  // namespace

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions) {
  std::vector<double> numerator(own.size());
  std::vector<double> denominator(own.size());
  partial_average_impl(own, self_weight, contributions, numerator, denominator);
}

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     Arena& arena) {
  const std::span<double> numerator = arena.alloc<double>(own.size());
  const std::span<double> denominator = arena.alloc<double>(own.size());
  partial_average_impl(own, self_weight, contributions, numerator, denominator);
}

}  // namespace jwins::core

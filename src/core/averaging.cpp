#include "core/averaging.hpp"

#include <stdexcept>

namespace jwins::core {

namespace {

void partial_average_impl(std::span<float> own, double self_weight,
                          std::span<const WeightedContribution> contributions,
                          std::span<const double> contribution_scales,
                          std::span<double> numerator,
                          std::span<double> denominator) {
  const std::size_t n = own.size();
  if (!contribution_scales.empty() &&
      contribution_scales.size() != contributions.size()) {
    throw std::invalid_argument(
        "partial_average: contribution_scales size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    numerator[i] = self_weight * own[i];
    denominator[i] = self_weight;
  }
  for (std::size_t k = 0; k < contributions.size(); ++k) {
    const WeightedContribution& c = contributions[k];
    if (c.payload == nullptr) {
      throw std::invalid_argument("partial_average: null contribution");
    }
    // Effective weight: the scale multiplies numerator AND denominator, so
    // per-coefficient renormalization still sums to 1 — decay redistributes
    // mass, it never leaks it. Empty scales = the exact legacy path.
    const double w = contribution_scales.empty()
                         ? c.weight
                         : c.weight * contribution_scales[k];
    const SparsePayload& p = *c.payload;
    if (p.vector_length != n) {
      throw std::invalid_argument("partial_average: vector length mismatch");
    }
    if (p.dense()) {
      for (std::size_t i = 0; i < n; ++i) {
        numerator[i] += w * p.values[i];
        denominator[i] += w;
      }
    } else {
      for (std::size_t i = 0; i < p.indices.size(); ++i) {
        const std::uint32_t idx = p.indices[i];
        if (idx >= n) {
          throw std::out_of_range("partial_average: index out of range");
        }
        numerator[idx] += w * p.values[i];
        denominator[idx] += w;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    own[i] = denominator[i] > 0.0
                 ? static_cast<float>(numerator[i] / denominator[i])
                 : own[i];
  }
}

}  // namespace

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions) {
  std::vector<double> numerator(own.size());
  std::vector<double> denominator(own.size());
  partial_average_impl(own, self_weight, contributions, {}, numerator,
                       denominator);
}

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     Arena& arena) {
  const std::span<double> numerator = arena.alloc<double>(own.size());
  const std::span<double> denominator = arena.alloc<double>(own.size());
  partial_average_impl(own, self_weight, contributions, {}, numerator,
                       denominator);
}

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales) {
  std::vector<double> numerator(own.size());
  std::vector<double> denominator(own.size());
  partial_average_impl(own, self_weight, contributions, contribution_scales,
                       numerator, denominator);
}

void partial_average(std::span<float> own, double self_weight,
                     std::span<const WeightedContribution> contributions,
                     std::span<const double> contribution_scales,
                     Arena& arena) {
  const std::span<double> numerator = arena.alloc<double>(own.size());
  const std::span<double> denominator = arena.alloc<double>(own.size());
  partial_average_impl(own, self_weight, contributions, contribution_scales,
                       numerator, denominator);
}

}  // namespace jwins::core

// Runtime selection between the pinned scalar reference kernels and their
// vectorized fast paths (dwt, topk, qsgd, xor codec).
//
// Both tiers are bit-identical by contract — the fast paths restructure loops
// without changing any floating-point operation order per output element —
// so the tier is a pure performance knob. The default is the fast tier;
// setting the JWINS_FORCE_SCALAR environment variable (to anything but "0"
// or the empty string) pins the scalar reference, and tests/benches can
// override programmatically via force() / ScopedForce.
//
// tests/test_kernel_equivalence.cpp enforces the bit-identity contract for
// every fast/scalar pair; docs/PERFORMANCE.md ("Kernel dispatch &
// vectorization") documents the tiers and the BENCH_<n>.json workflow.
#pragma once

namespace jwins::core {

enum class KernelTier { kScalar = 0, kFast = 1 };

/// Name of a tier as reported in bench JSON: "scalar" or "fast".
const char* kernel_tier_name(KernelTier tier) noexcept;

class KernelDispatch {
 public:
  /// The active tier: a programmatic force() override if set, else the
  /// JWINS_FORCE_SCALAR environment resolution (read once per process),
  /// else the fast tier.
  static KernelTier tier() noexcept;

  /// Convenience predicate for kernel call sites.
  static bool fast() noexcept { return tier() == KernelTier::kFast; }

  static const char* tier_name() noexcept { return kernel_tier_name(tier()); }

  /// True when the JWINS_FORCE_SCALAR environment variable pinned the
  /// scalar tier at startup (independent of any programmatic override).
  static bool env_forced_scalar() noexcept;

  /// The -march tier the library was compiled with ("generic" unless the
  /// build set JWINS_MARCH; see the top-level CMakeLists).
  static const char* compiled_march() noexcept;

  /// Programmatic override (tests, benches). Overrides the environment
  /// until clear_force().
  static void force(KernelTier tier) noexcept;
  static void clear_force() noexcept;

  /// RAII override restoring the previous override state on destruction.
  class ScopedForce {
   public:
    explicit ScopedForce(KernelTier tier) noexcept;
    ~ScopedForce();
    ScopedForce(const ScopedForce&) = delete;
    ScopedForce& operator=(const ScopedForce&) = delete;

   private:
    int previous_;  // raw override slot: -1 none, else KernelTier value
  };
};

}  // namespace jwins::core

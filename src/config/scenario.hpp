// Declarative scenario engine (paper §IV: the evaluation is a *grid* —
// 5 workloads x 5 algorithms x topologies x budgets x failure modes — so the
// grid is data, not C++).
//
// A `.scenario` file is a flat INI/TOML-subset: `key = value` lines, `#`/`;`
// comments, no sections, no quoting. Spec atoms with internal structure —
// the cut-off distribution, the link-time distributions, the per-edge drop
// spec — are colon-separated (`two-point:0.05:0.05`, `lognormal:100:0.75`),
// so sweep commas stay unambiguous. Any key except `name` may hold a
// comma-separated sweep list (`algorithm = jwins, choco, full-sharing`);
// expand_grid() takes the Cartesian product of every sweep list, in file
// order with the last-listed sweep key varying fastest (odometer order), and
// yields one fully-validated ScenarioRun per grid cell. Every key is
// registered in scenario_keys() with its type, default, and valid range —
// docs/EXPERIMENTS.md documents exactly that table (a test enforces the
// correspondence) and `jwins_run --list-keys` prints it.
//
// All diagnostics are thrown as ScenarioError with a "<key>: <why>" (or
// "line N: <why>") message; callers prepend "error: ".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/experiment.hpp"

namespace jwins::config {

/// Parse/validation diagnostic; .what() is "<key>: <why>" or "line N: <why>".
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One row of the scenario-key reference.
struct KeyInfo {
  const char* key;
  const char* type;           ///< "uint", "float", "bool", "enum", "string"
  const char* default_value;  ///< as spelled in a scenario file
  const char* valid;          ///< range / enum values, human-readable
  const char* description;
};

/// The full key registry, in documentation order.
const std::vector<KeyInfo>& scenario_keys();

/// Parsed-but-unexpanded scenario: ordered (key, sweep values) entries.
/// Keys are validated on expansion, not here, so callers can layer
/// overrides (CLI --set, bench flags) before committing.
struct RawScenario {
  std::string name;  ///< `name = ...` or the file stem; "scenario" if neither
  std::vector<std::pair<std::string, std::vector<std::string>>> entries;
};

/// Parses scenario text. Throws ScenarioError("line N: <why>") on syntax
/// errors (missing '=', [section] headers, empty sweep elements, duplicates).
RawScenario parse_scenario_text(std::string_view text,
                                const std::string& name = "scenario");

/// Reads and parses a .scenario file; the file stem becomes the default name.
RawScenario load_scenario_file(const std::string& path);

/// Replaces `key`'s values (or appends the entry), keeping file order —
/// the override channel for `jwins_run --set` and bench/example flags.
/// `value` may itself be a comma-separated sweep list.
void set_value(RawScenario& raw, const std::string& key,
               const std::string& value);

/// One fully-resolved grid cell, ready to execute.
struct ScenarioRun {
  std::string scenario;   ///< scenario name
  std::string label;      ///< swept "key=value" pairs, comma-joined ("run" if unswept)
  std::size_t index = 0;  ///< position in the expanded grid

  std::string workload = "cifar";
  std::size_t nodes = 16;
  double scale = 1.0;

  std::string topology = "regular";  ///< regular | ring | torus | full
  std::size_t topology_degree = 0;   ///< 0 = auto (paper degree schedule)
  std::size_t churn_every = 0;       ///< 0 = static; N = re-randomize every N rounds

  /// True until `learning_rate` / `local_steps` appear in the file: the
  /// runner then takes the workload's grid-searched suggestion (§IV-B).
  bool auto_learning_rate = true;
  bool auto_local_steps = true;

  /// Everything the Experiment itself consumes. `config.threads == 0` here
  /// means "all hardware threads", resolved by the runner.
  sim::ExperimentConfig config;
};

/// Paper degree schedule for auto topology_degree: 4-regular at base scale,
/// growing with node count (96:4, 192:5, 288:5, 384:6, scaled down).
std::size_t auto_degree(std::size_t nodes);

/// The degree a run actually uses: topology_degree, or when 0 the paper
/// schedule for regular graphs and 2 (nearest neighbors) for rings.
std::size_t effective_degree(const ScenarioRun& run);

/// Torus factorization: the largest divisor of `nodes` that is >= 2 and
/// <= sqrt(nodes) (rows of the most-square rows x cols grid), or 0 when
/// none exists (prime/degenerate counts). Shared by validation and the
/// topology builder so they can never disagree on the grid shape.
std::size_t torus_rows(std::size_t nodes);

/// Expands sweep lists into the run grid and validates every cell (key
/// syntax, enum membership, ranges, cross-field rules, and
/// ExperimentConfig::validate()). Throws ScenarioError on the first problem.
std::vector<ScenarioRun> expand_grid(const RawScenario& raw);

}  // namespace jwins::config

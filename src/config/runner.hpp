// Maps a validated ScenarioRun onto the simulation stack: workload factory
// (sim/workloads), topology provider (graph/), and the Experiment itself.
// This is the single place the scenario vocabulary ("regular", "churn_every",
// "auto" learning rate) is translated into constructor wiring, so a scenario
// file and a hand-written bench that agree on the knobs produce bit-identical
// results (the golden-file test in tests/test_config.cpp holds this to the
// pre-refactor bench wiring). The simulated-time & fault keys
// (bandwidth_dist, straggler_*, edge_drop, crash_*/rejoin_at, burst_*) need
// no translation here: they land in ExperimentConfig::time verbatim and the
// Experiment builds the net::TimeModel from them, seeded by config.seed
// (docs/SIMULATION.md).
#pragma once

#include <memory>

#include "config/scenario.hpp"
#include "graph/graph.hpp"
#include "sim/experiment.hpp"
#include "sim/workloads.hpp"

namespace jwins::config {

/// Builds the run's workload (seeded from config.seed, like the benches).
sim::Workload make_run_workload(const ScenarioRun& run);

/// Builds the run's topology provider (regular/ring/torus/full, with the
/// churn schedule for regular).
std::unique_ptr<graph::TopologyProvider> make_run_topology(
    const ScenarioRun& run);

/// The run's ExperimentConfig with the "auto" sentinels resolved against the
/// workload (suggested learning rate / local steps) and threads = 0 resolved
/// to every hardware thread.
sim::ExperimentConfig resolve_config(const ScenarioRun& run,
                                     const sim::Workload& workload);

/// Wires everything up and runs to completion.
sim::ExperimentResult execute(const ScenarioRun& run);

}  // namespace jwins::config

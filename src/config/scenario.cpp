#include "config/scenario.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>
#include <tuple>

#include "core/cutoff.hpp"

namespace jwins::config {

namespace {

[[noreturn]] void fail(const std::string& key, const std::string& why) {
  throw ScenarioError(key + ": " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// Strict full-string numeric parse: rejects sign-wrapped negatives,
/// trailing garbage, and empty strings (same contract as bench_util.hpp).
template <typename T>
bool parse_full(std::string_view text, T& out) {
  const char* const end = text.data() + text.size();
  const auto [parsed_end, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && parsed_end == end;
}

std::size_t parse_uint(const std::string& key, const std::string& value,
                       std::size_t min_value = 0) {
  std::size_t out = 0;
  if (!parse_full(std::string_view(value), out)) {
    fail(key, "\"" + value + "\" is not an unsigned integer");
  }
  if (out < min_value) {
    fail(key, "must be >= " + std::to_string(min_value) +
                  " (got " + value + ")");
  }
  return out;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::uint64_t out = 0;
  if (!parse_full(std::string_view(value), out)) {
    fail(key, "\"" + value + "\" is not an unsigned integer");
  }
  return out;
}

double parse_double(const std::string& key, const std::string& value) {
  double out = 0.0;
  if (!parse_full(std::string_view(value), out) || !std::isfinite(out)) {
    fail(key, "\"" + value + "\" is not a finite number");
  }
  return out;
}

double parse_double_in(const std::string& key, const std::string& value,
                       double lo, double hi, bool lo_open, const char* range) {
  const double v = parse_double(key, value);
  const bool below = lo_open ? v <= lo : v < lo;
  if (below || v > hi) fail(key, std::string("must be in ") + range);
  return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "on" || value == "1") return true;
  if (value == "false" || value == "off" || value == "0") return false;
  fail(key, "\"" + value + "\" is not a bool (true/false/on/off/1/0)");
}

void expect_enum(const std::string& key, const std::string& value,
                 std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (value == a) return;
  }
  std::string list;
  for (const char* a : allowed) {
    if (!list.empty()) list += ", ";
    list += a;
  }
  fail(key, "unknown value \"" + value + "\" (valid: " + list + ")");
}

sim::Algorithm parse_algorithm(const std::string& key,
                               const std::string& value) {
  if (value == "full-sharing") return sim::Algorithm::kFullSharing;
  if (value == "random-sampling") return sim::Algorithm::kRandomSampling;
  if (value == "jwins") return sim::Algorithm::kJwins;
  if (value == "choco") return sim::Algorithm::kChoco;
  if (value == "power-gossip") return sim::Algorithm::kPowerGossip;
  expect_enum(key, value,
              {"full-sharing", "random-sampling", "jwins", "choco",
               "power-gossip"});
  return sim::Algorithm::kJwins;  // unreachable
}

/// Cutoff spec grammar (colon-separated so sweep commas stay unambiguous):
///   paper                       uniform over {10,15,20,25,30,40,100}%
///   fixed:<alpha>               degenerate distribution (the ablation arm)
///   two-point:<alpha_low>:<p_full>   budget distribution (paper §IV-D)
core::RandomizedCutoff parse_cutoff(const std::string& key,
                                    const std::string& value) {
  if (value == "paper") return core::RandomizedCutoff::paper_default();
  const auto in_unit = [&](std::string_view text, const char* what) {
    double v = 0.0;
    if (!parse_full(text, v) || !(v > 0.0) || v > 1.0) {
      fail(key, std::string(what) + " must be a number in (0, 1] (got \"" +
                    std::string(text) + "\")");
    }
    return v;
  };
  const std::string_view sv = value;
  if (sv.rfind("fixed:", 0) == 0) {
    return core::RandomizedCutoff::fixed(
        in_unit(sv.substr(6), "fixed:<alpha> alpha"));
  }
  if (sv.rfind("two-point:", 0) == 0) {
    const std::string_view rest = sv.substr(10);
    const auto colon = rest.find(':');
    if (colon == std::string_view::npos) {
      fail(key, "two-point needs two fields: two-point:<alpha_low>:<p_full>");
    }
    const double alpha_low = in_unit(rest.substr(0, colon), "alpha_low");
    const double p_full = in_unit(rest.substr(colon + 1), "p_full");
    return core::RandomizedCutoff::two_point(alpha_low, p_full);
  }
  fail(key, "unknown cutoff \"" + value +
                "\" (valid: paper, fixed:<alpha>, two-point:<alpha_low>:<p_full>)");
}

/// Link-parameter distribution grammar (colon-separated, like the cutoff
/// spec, so sweep commas stay unambiguous):
///   fixed                         every edge uses the flat knob
///   uniform:<lo>:<hi>             per-edge value uniform in [lo, hi]
///   lognormal:<median>:<sigma>    median * exp(sigma * N(0,1)) per edge
/// Values are in display units (Mbit/s for bandwidth, ms for latency);
/// `unit_scale` converts to engine units (bytes/sec, seconds).
net::LinkDist parse_link_dist(const std::string& key, const std::string& value,
                              double unit_scale, bool allow_zero) {
  net::LinkDist dist;
  if (value == "fixed") return dist;
  const auto field = [&](std::string_view text, const char* what) {
    double v = 0.0;
    if (!parse_full(text, v) || !std::isfinite(v) || v < 0.0) {
      fail(key, std::string(what) + " must be a non-negative number (got \"" +
                    std::string(text) + "\")");
    }
    return v;
  };
  const auto two_fields = [&](std::string_view rest, const char* a_name,
                              const char* b_name) {
    const auto colon = rest.find(':');
    if (colon == std::string_view::npos) {
      fail(key, std::string("needs two fields: <") + a_name + ">:<" + b_name +
                    ">");
    }
    return std::pair<double, double>{field(rest.substr(0, colon), a_name),
                                     field(rest.substr(colon + 1), b_name)};
  };
  const std::string_view sv = value;
  if (sv.rfind("uniform:", 0) == 0) {
    dist.kind = net::LinkDist::Kind::kUniform;
    std::tie(dist.a, dist.b) = two_fields(sv.substr(8), "lo", "hi");
    if (dist.b < dist.a) fail(key, "uniform needs lo <= hi");
    if (!allow_zero && dist.a <= 0.0) fail(key, "uniform lo must be > 0");
    dist.a *= unit_scale;
    dist.b *= unit_scale;
    return dist;
  }
  if (sv.rfind("lognormal:", 0) == 0) {
    dist.kind = net::LinkDist::Kind::kLognormal;
    std::tie(dist.a, dist.b) = two_fields(sv.substr(10), "median", "sigma");
    if (dist.a <= 0.0) fail(key, "lognormal median must be > 0");
    dist.a *= unit_scale;
    return dist;
  }
  fail(key, "unknown distribution \"" + value +
                "\" (valid: fixed, uniform:<lo>:<hi>, "
                "lognormal:<median>:<sigma>)");
}

/// Per-edge drop grammar: off | fixed:<p> | uniform:<lo>:<hi>, p in [0, 1).
net::EdgeDropDist parse_edge_drop(const std::string& key,
                                  const std::string& value) {
  net::EdgeDropDist dist;
  if (value == "off") return dist;
  const auto prob = [&](std::string_view text, const char* what) {
    double v = 0.0;
    if (!parse_full(text, v) || !(v >= 0.0) || v >= 1.0) {
      fail(key, std::string(what) + " must be a probability in [0, 1) (got \"" +
                    std::string(text) + "\")");
    }
    return v;
  };
  const std::string_view sv = value;
  if (sv.rfind("fixed:", 0) == 0) {
    dist.kind = net::EdgeDropDist::Kind::kFixed;
    dist.a = prob(sv.substr(6), "fixed:<p> p");
    return dist;
  }
  if (sv.rfind("uniform:", 0) == 0) {
    const std::string_view rest = sv.substr(8);
    const auto colon = rest.find(':');
    if (colon == std::string_view::npos) {
      fail(key, "uniform needs two fields: uniform:<lo>:<hi>");
    }
    dist.kind = net::EdgeDropDist::Kind::kUniform;
    dist.a = prob(rest.substr(0, colon), "lo");
    dist.b = prob(rest.substr(colon + 1), "hi");
    if (dist.b < dist.a) fail(key, "uniform needs lo <= hi");
    return dist;
  }
  fail(key, "unknown drop spec \"" + value +
                "\" (valid: off, fixed:<p>, uniform:<lo>:<hi>)");
}

/// Byzantine attack-mode grammar (colon-separated like the cutoff spec):
///   random        replace wire values with seeded uniform [-1, 1) noise
///   sign_flip     negate every wire value
///   scale:<k>     multiply every wire value by k (finite)
/// Writes both the mode and the scale multiplier into `config`.
void parse_byzantine_mode(const std::string& key, const std::string& value,
                          sim::ExperimentConfig& config) {
  if (value == "random") {
    config.byzantine_mode = algo::ByzantineMode::kRandom;
    return;
  }
  if (value == "sign_flip") {
    config.byzantine_mode = algo::ByzantineMode::kSignFlip;
    return;
  }
  const std::string_view sv = value;
  if (sv.rfind("scale:", 0) == 0) {
    double k = 0.0;
    const std::string_view rest = sv.substr(6);
    if (!parse_full(rest, k) || !std::isfinite(k)) {
      fail(key, "scale:<k> multiplier must be a finite number (got \"" +
                    std::string(rest) + "\")");
    }
    config.byzantine_mode = algo::ByzantineMode::kScale;
    config.byzantine_scale = k;
    return;
  }
  fail(key, "unknown attack mode \"" + value +
                "\" (valid: random, sign_flip, scale:<k>)");
}

/// Robust-aggregation grammar:
///   none                 plain partial averaging (the exact legacy path)
///   trimmed_mean:<f>     trim fraction f in [0, 0.5) from each end
///   median               coordinate-wise unweighted median
///   norm_clip:<c>        clip each contribution's L2 deviation to c > 0
core::RobustAggConfig parse_robust_agg(const std::string& key,
                                       const std::string& value) {
  core::RobustAggConfig config;
  if (value == "none") return config;
  if (value == "median") {
    config.kind = core::RobustAggKind::kMedian;
    return config;
  }
  const std::string_view sv = value;
  if (sv.rfind("trimmed_mean:", 0) == 0) {
    double f = 0.0;
    const std::string_view rest = sv.substr(13);
    if (!parse_full(rest, f) || !(f >= 0.0) || f >= 0.5) {
      fail(key, "trimmed_mean:<f> trim fraction must be in [0, 0.5) (got \"" +
                    std::string(rest) + "\"; trimming half or more leaves no "
                    "survivors)");
    }
    config.kind = core::RobustAggKind::kTrimmedMean;
    config.trim_fraction = f;
    return config;
  }
  if (sv.rfind("norm_clip:", 0) == 0) {
    double c = 0.0;
    const std::string_view rest = sv.substr(10);
    if (!parse_full(rest, c) || !std::isfinite(c) || !(c > 0.0)) {
      fail(key, "norm_clip:<c> clip norm must be > 0 (got \"" +
                    std::string(rest) + "\")");
    }
    config.kind = core::RobustAggKind::kNormClip;
    config.clip_norm = c;
    return config;
  }
  fail(key, "unknown robust rule \"" + value +
                "\" (valid: none, trimmed_mean:<f>, median, norm_clip:<c>)");
}

core::IndexEncoding parse_index_encoding(const std::string& key,
                                         const std::string& value) {
  if (value == "elias-gamma") return core::IndexEncoding::kEliasGamma;
  if (value == "raw") return core::IndexEncoding::kRaw;
  expect_enum(key, value, {"elias-gamma", "raw"});
  return core::IndexEncoding::kEliasGamma;  // unreachable
}

core::ValueEncoding parse_value_encoding(const std::string& key,
                                         const std::string& value) {
  if (value == "xor") return core::ValueEncoding::kXorCodec;
  if (value == "raw") return core::ValueEncoding::kRaw;
  expect_enum(key, value, {"xor", "raw"});
  return core::ValueEncoding::kXorCodec;  // unreachable
}

/// Splits a value into its comma-separated sweep list. `where` names the
/// error site ("line N" in a file, the key itself for --set overrides).
std::vector<std::string> split_sweep(const std::string& where,
                                     const std::string& key,
                                     std::string_view text) {
  std::vector<std::string> values;
  while (true) {
    const std::size_t comma = text.find(',');
    const std::string_view piece =
        trim(comma == std::string_view::npos ? text : text.substr(0, comma));
    if (piece.empty()) {
      fail(where, "empty value in \"" + key + "\" (sweep lists are "
                  "comma-separated, no trailing commas)");
    }
    values.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    text = text.substr(comma + 1);
  }
  return values;
}

struct KeySpec {
  KeyInfo info;
  std::function<void(ScenarioRun&, const std::string&)> apply;
};

const std::vector<KeySpec>& key_specs() {
  static const std::vector<KeySpec> specs = [] {
    std::vector<KeySpec> s;
    auto add = [&s](KeyInfo info,
                    std::function<void(ScenarioRun&, const std::string&)> fn) {
      s.push_back({info, std::move(fn)});
    };

    // --- experiment grid -------------------------------------------------
    add({"workload", "enum", "cifar",
         "cifar, cifar4, movielens, shakespeare, celeba, femnist, scale",
         "Paper dataset stand-in (cifar4 = the 4-shards-per-node split of "
         "the scalability study; scale = the fixed-pool tiny-model workload "
         "for 100k-1M-node runs)"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("workload", v,
                      {"cifar", "cifar4", "movielens", "shakespeare", "celeba",
                       "femnist", "scale"});
          r.workload = v;
        });
    add({"nodes", "uint", "16", ">= 2", "Number of simulated nodes"},
        [](ScenarioRun& r, const std::string& v) {
          r.nodes = parse_uint("nodes", v, 2);
        });
    add({"scale", "float", "1.0", "(0, 1e9]",
         "Dataset size multiplier (1.0 = bench-sized; paper-scale runs use "
         "more)"},
        [](ScenarioRun& r, const std::string& v) {
          r.scale = parse_double_in("scale", v, 0.0, 1e9, true, "(0, 1e9]");
        });
    add({"algorithm", "enum", "jwins",
         "full-sharing, random-sampling, jwins, choco, power-gossip",
         "Decentralized learning algorithm"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.algorithm = parse_algorithm("algorithm", v);
        });
    add({"seed", "uint", "1", "any",
         "Master seed: data, model init, topology, cut-off draws"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.seed = parse_u64("seed", v);
        });

    // --- topology --------------------------------------------------------
    add({"topology", "enum", "regular", "regular, ring, torus, full",
         "Communication graph: random k-regular (the paper's test bed), "
         "ring lattice, 2-D torus, or fully connected"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("topology", v, {"regular", "ring", "torus", "full"});
          r.topology = v;
        });
    add({"topology_degree", "uint", "0 (auto)",
         "0 = paper schedule (3 below 16 nodes, 4 at 16-191, 5 at 192-383, "
         "6 at 384+; ring: 2); ring needs an even degree",
         "Node degree; ignored for torus (always 4) and full"},
        [](ScenarioRun& r, const std::string& v) {
          r.topology_degree = parse_uint("topology_degree", v);
        });
    add({"churn_every", "uint", "0 (static)", "requires topology = regular",
         "Churn schedule: re-randomize neighbors every N rounds (1 = every "
         "round, the Figure 7 dynamic setting)"},
        [](ScenarioRun& r, const std::string& v) {
          r.churn_every = parse_uint("churn_every", v);
        });

    // --- round loop ------------------------------------------------------
    add({"rounds", "uint", "100", ">= 1",
         "Communication rounds (the cap when target_accuracy is set)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.rounds = parse_uint("rounds", v, 1);
        });
    add({"target_accuracy", "float", "off", "off, or (0, 1]",
         "Stop once mean test accuracy reaches this fraction (the Figure 5/6 "
         "protocol)"},
        [](ScenarioRun& r, const std::string& v) {
          if (v == "off") {
            r.config.target_accuracy = -1.0;
          } else {
            r.config.target_accuracy =
                parse_double_in("target_accuracy", v, 0.0, 1.0, true,
                                "(0, 1] (a fraction, not a percentage)");
          }
        });
    add({"local_steps", "uint", "auto", "auto, or >= 1",
         "Local SGD steps per round (tau); auto = the workload's suggestion"},
        [](ScenarioRun& r, const std::string& v) {
          if (v == "auto") {
            r.auto_local_steps = true;
          } else {
            r.config.local_steps = parse_uint("local_steps", v, 1);
            r.auto_local_steps = false;
          }
        });
    add({"learning_rate", "float", "auto", "auto, or (0, 1e3]",
         "SGD learning rate; auto = the workload's grid-searched suggestion"},
        [](ScenarioRun& r, const std::string& v) {
          if (v == "auto") {
            r.auto_learning_rate = true;
          } else {
            r.config.sgd.learning_rate = static_cast<float>(
                parse_double_in("learning_rate", v, 0.0, 1e3, true, "(0, 1e3]"));
            r.auto_learning_rate = false;
          }
        });
    add({"momentum", "float", "0", "[0, 1)",
         "SGD momentum (paper: 0, plain SGD)"},
        [](ScenarioRun& r, const std::string& v) {
          const double m = parse_double("momentum", v);
          if (m < 0.0 || m >= 1.0) fail("momentum", "must be in [0, 1)");
          r.config.sgd.momentum = static_cast<float>(m);
        });
    add({"weight_decay", "float", "0", ">= 0", "SGD weight decay"},
        [](ScenarioRun& r, const std::string& v) {
          const double w = parse_double("weight_decay", v);
          if (w < 0.0) fail("weight_decay", "must be >= 0");
          r.config.sgd.weight_decay = static_cast<float>(w);
        });
    add({"lr_decay_factor", "float", "1.0", "(0, 1]",
         "Multiply the learning rate by this every lr_decay_every rounds"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.lr_decay_factor =
              parse_double_in("lr_decay_factor", v, 0.0, 1.0, true, "(0, 1]");
        });
    add({"lr_decay_every", "uint", "0 (off)", "any",
         "Learning-rate decay period in rounds (0 = constant)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.lr_decay_every = parse_uint("lr_decay_every", v);
        });
    add({"message_drop_probability", "float", "0", "[0, 1)",
         "Failure injection: probability any message is dropped in flight"},
        [](ScenarioRun& r, const std::string& v) {
          const double p = parse_double("message_drop_probability", v);
          if (p < 0.0 || p >= 1.0) {
            fail("message_drop_probability", "must be in [0, 1)");
          }
          r.config.message_drop_probability = p;
        });

    // --- evaluation ------------------------------------------------------
    add({"eval_every", "uint", "10", ">= 1", "Evaluate every N rounds"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.eval_every = parse_uint("eval_every", v, 1);
        });
    add({"eval_sample_limit", "uint", "512", ">= 1",
         "Test-set subsample per evaluation"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.eval_sample_limit = parse_uint("eval_sample_limit", v, 1);
        });
    add({"eval_node_limit", "uint", "0 (all)", "any",
         "Evaluate only the first N nodes (0 = every node)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.eval_node_limit = parse_uint("eval_node_limit", v);
        });
    add({"eval_sample", "uint", "0 (all)", "0, or < nodes",
         "Sampled evaluation: reduce every evaluation (test metrics, mean "
         "train loss, JWINS alpha) over a seeded per-round subset of N nodes "
         "instead of all of them — the O(n)-per-eval fix for 100k-1M-node "
         "runs. 0 or >= nodes = full reduce; mutually exclusive with "
         "eval_node_limit"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.eval_sample = parse_uint("eval_sample", v);
        });

    // --- execution -------------------------------------------------------
    add({"threads", "uint", "0 (auto)", "0 = all hardware threads",
         "Execution lanes; results are bit-identical at any value"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.threads =
              static_cast<unsigned>(parse_uint("threads", v));
        });
    add({"node_state", "enum", "full", "full, compact",
         "Per-node state layout: full = one model/optimizer/sampler object "
         "per node (the reference layout), compact = shared base weights + "
         "per-node copy-on-write deltas driven by per-lane workers — the "
         "100k-1M-node memory diet. compact requires engine = sync, "
         "batch_sampler = counter, algorithm = random-sampling or "
         "full-sharing, and no byzantine/robust_agg/momentum; results are "
         "byte-identical to full under the same config"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("node_state", v, {"full", "compact"});
          r.config.node_state = v == "compact" ? sim::NodeState::kCompact
                                               : sim::NodeState::kFull;
        });
    add({"batch_sampler", "enum", "shuffle", "shuffle, counter",
         "Mini-batch sampling discipline: shuffle = per-epoch reshuffle of "
         "the node's shard (the legacy stateful stream), counter = "
         "counter-keyed draws with replacement, a pure function of (node "
         "stream, step) — seekable, hence required by node_state = compact"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("batch_sampler", v, {"shuffle", "counter"});
          r.config.batch_sampler = v == "counter"
                                       ? sim::BatchSampler::kCounter
                                       : sim::BatchSampler::kShuffle;
        });
    add({"compute_seconds_per_round", "float", "0.05", ">= 0",
         "Simulated compute cost per round (identical across algorithms)"},
        [](ScenarioRun& r, const std::string& v) {
          const double c = parse_double("compute_seconds_per_round", v);
          if (c < 0.0) fail("compute_seconds_per_round", "must be >= 0");
          r.config.compute_seconds_per_round = c;
        });
    add({"bandwidth_mbit", "float", "100", "> 0",
         "Link bandwidth in Mbit/s (the simulated-time model)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.link.bandwidth_bytes_per_sec =
              parse_double_in("bandwidth_mbit", v, 0.0, 1e9, true, "(0, 1e9]") *
              1e6 / 8.0;
        });
    add({"latency_ms", "float", "2", ">= 0", "Link latency in milliseconds"},
        [](ScenarioRun& r, const std::string& v) {
          const double ms = parse_double("latency_ms", v);
          if (ms < 0.0) fail("latency_ms", "must be >= 0");
          r.config.link.latency_sec = ms / 1000.0;
        });

    // --- simulated time & faults (net/time_model.hpp) --------------------
    add({"bandwidth_dist", "string", "fixed",
         "fixed, uniform:<lo>:<hi>, lognormal:<median>:<sigma> (Mbit/s)",
         "Per-edge bandwidth distribution; any value but fixed switches the "
         "clock to the critical-path engine (docs/SIMULATION.md)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.bandwidth_dist = parse_link_dist(
              "bandwidth_dist", v, 1e6 / 8.0, /*allow_zero=*/false);
        });
    add({"latency_dist", "string", "fixed",
         "fixed, uniform:<lo>:<hi>, lognormal:<median>:<sigma> (ms)",
         "Per-edge latency distribution (same grammar as bandwidth_dist)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.latency_dist =
              parse_link_dist("latency_dist", v, 1e-3, /*allow_zero=*/true);
        });
    add({"straggler_fraction", "float", "0", "[0, 1)",
         "Probability each node is a compute straggler (seeded per-node "
         "decision); takes effect with straggler_slowdown > 1"},
        [](ScenarioRun& r, const std::string& v) {
          const double f = parse_double("straggler_fraction", v);
          if (f < 0.0 || f >= 1.0) {
            fail("straggler_fraction", "must be in [0, 1)");
          }
          r.config.time.straggler_fraction = f;
        });
    add({"straggler_slowdown", "float", "1", ">= 1",
         "Compute-time multiplier applied to straggler nodes"},
        [](ScenarioRun& r, const std::string& v) {
          const double s = parse_double("straggler_slowdown", v);
          if (s < 1.0) fail("straggler_slowdown", "must be >= 1");
          r.config.time.straggler_slowdown = s;
        });
    add({"edge_drop", "string", "off",
         "off, fixed:<p>, uniform:<lo>:<hi> with probabilities in [0, 1)",
         "Per-edge message-drop probability (drawn once per edge for "
         "uniform), on top of message_drop_probability"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.edge_drop = parse_edge_drop("edge_drop", v);
        });
    add({"crash_nodes", "uint", "0 (off)", "< nodes",
         "Number of nodes that crash (seeded deterministic victim choice)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.crash_nodes = parse_uint("crash_nodes", v);
        });
    add({"crash_at", "uint", "0", "any",
         "First round the crash set is down (with crash_nodes > 0)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.crash_at = parse_uint("crash_at", v);
        });
    add({"rejoin_at", "uint", "0 (never)", "0, or > crash_at",
         "Round at which crashed nodes come back (their models resume from "
         "the pre-crash state)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.rejoin_at = parse_uint("rejoin_at", v);
        });
    add({"burst_every", "uint", "0 (off)", "any",
         "Correlated burst outages: a window opens every N rounds (first at "
         "round N)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.burst_every = parse_uint("burst_every", v);
        });
    add({"burst_length", "uint", "1", ">= 1, <= burst_every",
         "Rounds each burst-outage window lasts"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.burst_length = parse_uint("burst_length", v, 1);
        });
    add({"burst_drop", "float", "1.0", "(0, 1]",
         "Per-message drop probability inside a burst window (1 = total "
         "outage)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.time.burst_drop =
              parse_double_in("burst_drop", v, 0.0, 1.0, true, "(0, 1]");
        });

    // --- execution engine (sim/event_engine.hpp) -------------------------
    add({"engine", "enum", "sync", "sync, async",
         "Execution engine: the bulk-synchronous reference loop, or the "
         "discrete-event asynchronous scheduler (with staleness_bound = 0 "
         "the latter reduces byte-for-byte to the former)"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("engine", v, {"sync", "async"});
          r.config.engine = v == "async" ? sim::EngineKind::kAsync
                                         : sim::EngineKind::kSync;
        });
    add({"staleness_bound", "uint", "0 (barrier)", "requires engine = async",
         "Bounded-staleness window B: a node may aggregate round r once it "
         "has heard every expected neighbor at round r - B or later (0 = "
         "barrier mode, the exact synchronous reduction)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.staleness_bound = parse_uint("staleness_bound", v);
        });
    add({"stop_at_sim_time", "float", "0 (off)", ">= 0 seconds",
         "Simulated-time budget: stop the run once the simulated clock "
         "passes this many seconds (the natural termination mode for "
         "asynchronous runs, where nodes complete different round counts)"},
        [](ScenarioRun& r, const std::string& v) {
          const double s = parse_double("stop_at_sim_time", v);
          if (s < 0.0) fail("stop_at_sim_time", "must be >= 0");
          r.config.stop_at_sim_time = s;
        });
    add({"async_mode", "enum", "barrier", "barrier, free, weighted",
         "Asynchronous aggregation discipline (engine = async): barrier = "
         "the bounded-staleness gate, free = aggregate whatever has arrived "
         "(weights renormalize over heard neighbors), weighted = free with "
         "contributions faded by staleness_decay^age instead of dropped"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("async_mode", v, {"barrier", "free", "weighted"});
          r.config.async_mode = v == "free"       ? sim::AsyncMode::kFree
                                : v == "weighted" ? sim::AsyncMode::kWeighted
                                                  : sim::AsyncMode::kBarrier;
        });
    add({"staleness_decay", "float", "0.5", "(0, 1]",
         "Age-decay base lambda for async_mode = weighted: a contribution "
         "s rounds stale mixes with weight w_ij * lambda^s (1 = no decay, "
         "i.e. free mode)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.staleness_decay =
              parse_double_in("staleness_decay", v, 0.0, 1.0, true, "(0, 1]");
        });

    // --- adversarial behavior --------------------------------------------
    add({"byzantine_nodes", "uint", "0 (off)", "< nodes",
         "Number of byzantine attackers: a seeded hash over node ids picks "
         "the victim set (like crash_nodes, under a distinct salt), and each "
         "attacker corrupts its outgoing payloads per byzantine_mode while "
         "training and aggregating honestly"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.byzantine_nodes = parse_uint("byzantine_nodes", v);
        });
    add({"byzantine_mode", "string", "sign_flip",
         "random, sign_flip, scale:<k>",
         "Wire-corruption rule for byzantine attackers: random = seeded "
         "uniform [-1, 1) garbage, sign_flip = negate every value, "
         "scale:<k> = multiply every value by k"},
        [](ScenarioRun& r, const std::string& v) {
          parse_byzantine_mode("byzantine_mode", v, r.config);
        });
    add({"robust_agg", "string", "none",
         "none, trimmed_mean:<f>, median, norm_clip:<c>",
         "Robust aggregation rule applied to received contributions: none = "
         "plain partial averaging (the exact legacy path), trimmed_mean:<f> "
         "= coordinate-wise mean after trimming fraction f in [0, 0.5) from "
         "each end, median = coordinate-wise median, norm_clip:<c> = shrink "
         "each contribution's deviation to L2 norm at most c"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.robust_agg = parse_robust_agg("robust_agg", v);
        });

    // --- algorithm knobs -------------------------------------------------
    add({"random_sampling_fraction", "float", "0.37", "(0, 1]",
         "Random-sampling baseline: fraction of parameters shared per round"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.random_sampling_fraction = parse_double_in(
              "random_sampling_fraction", v, 0.0, 1.0, true, "(0, 1]");
        });
    add({"jwins_wavelet", "enum", "sym2", "haar, db2, sym2, db4",
         "Wavelet family for the JWINS ranking transform"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("jwins_wavelet", v, {"haar", "db2", "sym2", "db4"});
          r.config.jwins.ranker.wavelet = v;
        });
    add({"jwins_levels", "uint", "4", ">= 1",
         "Wavelet decomposition levels (paper: 4)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.jwins.ranker.levels = parse_uint("jwins_levels", v, 1);
        });
    add({"jwins_use_wavelet", "bool", "true", "true, false",
         "false = rank in the raw parameter domain (the Fig. 8 ablation)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.jwins.ranker.use_wavelet =
              parse_bool("jwins_use_wavelet", v);
        });
    add({"jwins_use_accumulation", "bool", "true", "true, false",
         "false = clear importance scores every round (the Fig. 8 ablation)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.jwins.ranker.use_accumulation =
              parse_bool("jwins_use_accumulation", v);
        });
    add({"jwins_cutoff", "string", "paper",
         "paper, fixed:<alpha>, two-point:<alpha_low>:<p_full>",
         "Randomized cut-off distribution for the per-round sharing fraction"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.jwins.cutoff = parse_cutoff("jwins_cutoff", v);
        });
    add({"index_encoding", "enum", "elias-gamma", "elias-gamma, raw",
         "Sparse-index compression for JWINS and CHoCo payloads (the Fig. 9 "
         "arms)"},
        [](ScenarioRun& r, const std::string& v) {
          const core::IndexEncoding e = parse_index_encoding("index_encoding", v);
          r.config.jwins.index_encoding = e;
          r.config.choco.index_encoding = e;
        });
    add({"value_encoding", "enum", "xor", "xor, raw",
         "Coefficient-value compression for JWINS and CHoCo payloads"},
        [](ScenarioRun& r, const std::string& v) {
          const core::ValueEncoding e = parse_value_encoding("value_encoding", v);
          r.config.jwins.value_encoding = e;
          r.config.choco.value_encoding = e;
        });
    add({"choco_gamma", "float", "0.6", "(0, 1]",
         "CHoCo consensus step size (the sensitive knob)"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.choco.gamma =
              parse_double_in("choco_gamma", v, 0.0, 1.0, true, "(0, 1]");
        });
    add({"choco_fraction", "float", "0.2", "(0, 1]",
         "CHoCo TopK fraction of parameters per round"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.choco.fraction =
              parse_double_in("choco_fraction", v, 0.0, 1.0, true, "(0, 1]");
        });
    add({"choco_compressor", "enum", "topk", "topk, qsgd",
         "CHoCo compressor choice"},
        [](ScenarioRun& r, const std::string& v) {
          expect_enum("choco_compressor", v, {"topk", "qsgd"});
          r.config.choco.compressor = v == "topk"
                                          ? algo::ChocoNode::Compressor::kTopK
                                          : algo::ChocoNode::Compressor::kQsgd;
        });
    add({"choco_qsgd_levels", "uint", "15", ">= 1",
         "Quantization levels for the qsgd compressor"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.choco.qsgd_levels = static_cast<std::uint32_t>(
              parse_uint("choco_qsgd_levels", v, 1));
        });
    add({"power_gossip_gamma", "float", "1.0", "(0, 1e3]",
         "PowerGossip consensus step on the rank-1 estimates"},
        [](ScenarioRun& r, const std::string& v) {
          r.config.power_gossip.gamma =
              parse_double_in("power_gossip_gamma", v, 0.0, 1e3, true,
                              "(0, 1e3]");
        });
    return s;
  }();
  return specs;
}

const KeySpec* find_key(const std::string& key) {
  for (const KeySpec& spec : key_specs()) {
    if (key == spec.info.key) return &spec;
  }
  return nullptr;
}

/// Scenario-level rules that span several keys (the per-key appliers above
/// can only see one value at a time).
void validate_cross_field(const ScenarioRun& run) {
  const std::size_t degree = effective_degree(run);
  if (run.topology == "regular") {
    if (degree >= run.nodes || (run.nodes * degree) % 2 != 0) {
      fail("topology",
           "random regular requires degree < nodes and nodes*degree even "
           "(got nodes=" + std::to_string(run.nodes) +
               ", degree=" + std::to_string(degree) + ")");
    }
  } else if (run.topology == "ring") {
    if (degree < 2 || degree % 2 != 0 || degree >= run.nodes) {
      fail("topology_degree",
           "ring requires an even degree >= 2 and < nodes (got degree=" +
               std::to_string(degree) +
               ", nodes=" + std::to_string(run.nodes) + ")");
    }
  } else if (run.topology == "torus") {
    if (torus_rows(run.nodes) == 0) {
      fail("nodes", "torus requires a composite node count (rows x cols, "
                    "both >= 2; got " + std::to_string(run.nodes) + ")");
    }
  }
  if (run.churn_every > 0 && run.topology != "regular") {
    fail("churn_every",
         "churn re-randomizes a random regular graph; set topology = regular "
         "(got topology = " + run.topology + ")");
  }
  if (run.config.time.crash_nodes >= run.nodes &&
      run.config.time.crash_nodes > 0) {
    fail("crash_nodes",
         "must leave at least one node alive (got crash_nodes=" +
             std::to_string(run.config.time.crash_nodes) +
             ", nodes=" + std::to_string(run.nodes) + ")");
  }
  // The Experiment's own cross-field rules, surfaced with the same
  // "error: <key>: <why>" shape before anything is built.
  //
  // learning_rate/local_steps may still be the "auto" sentinels here; they
  // resolve to the workload's (validated) suggestions in the runner, so
  // validate a resolved copy.
  sim::ExperimentConfig probe = run.config;
  if (run.auto_learning_rate) probe.sgd.learning_rate = 0.05f;
  if (run.auto_local_steps) probe.local_steps = 1;
  const std::vector<std::string> errors = probe.validate(run.nodes);
  if (!errors.empty()) throw ScenarioError(errors.front());
}

}  // namespace

const std::vector<KeyInfo>& scenario_keys() {
  static const std::vector<KeyInfo> keys = [] {
    std::vector<KeyInfo> out;
    out.push_back({"name", "string", "the file stem", "any",
                   "Scenario label used for output files (not sweepable)"});
    for (const KeySpec& spec : key_specs()) out.push_back(spec.info);
    return out;
  }();
  return keys;
}

RawScenario parse_scenario_text(std::string_view text,
                                const std::string& name) {
  RawScenario raw;
  raw.name = name;
  bool name_set = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const std::string where = "line " + std::to_string(line_no);

    // Strip comments ('#' or ';' to end of line), then whitespace.
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      fail(where, "sections are not supported (flat `key = value` only)");
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(where, "expected `key = value`");
    }
    const std::string key(trim(line.substr(0, eq)));
    if (key.empty()) fail(where, "empty key before '='");
    for (const auto& [existing, values] : raw.entries) {
      (void)values;
      if (existing == key) {
        fail(where, "duplicate key \"" + key + "\" (each key appears once; "
                    "use a comma-separated sweep list for multiple values)");
      }
    }

    std::vector<std::string> values =
        split_sweep(where, key, line.substr(eq + 1));

    if (key == "name") {
      if (values.size() != 1) fail("name", "is not sweepable");
      if (name_set) fail(where, "duplicate key \"name\"");
      raw.name = values[0];
      name_set = true;
      continue;
    }
    raw.entries.emplace_back(key, std::move(values));
  }
  return raw;
}

RawScenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError(path + ": cannot open scenario file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Default name: file stem ("scenarios/fig5_convergence.scenario" ->
  // "fig5_convergence"), overridable by a `name =` line.
  std::string stem = path;
  if (const auto slash = stem.find_last_of("/\\"); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const auto dot = stem.rfind('.'); dot != std::string::npos && dot > 0) {
    stem = stem.substr(0, dot);
  }
  return parse_scenario_text(buffer.str(), stem);
}

void set_value(RawScenario& raw, const std::string& key,
               const std::string& value) {
  std::vector<std::string> values = split_sweep(key, key, value);
  if (key == "name") {
    if (values.size() != 1) fail("name", "is not sweepable");
    raw.name = values[0];
    return;
  }
  for (auto& [existing, existing_values] : raw.entries) {
    if (existing == key) {
      existing_values = std::move(values);
      return;
    }
  }
  raw.entries.emplace_back(key, std::move(values));
}

std::size_t auto_degree(std::size_t nodes) {
  if (nodes >= 384) return 6;
  if (nodes >= 192) return 5;
  if (nodes >= 16) return 4;
  return 3;
}

std::size_t effective_degree(const ScenarioRun& run) {
  if (run.topology_degree != 0) return run.topology_degree;
  return run.topology == "ring" ? 2 : auto_degree(run.nodes);
}

std::size_t torus_rows(std::size_t nodes) {
  std::size_t rows = 0;
  for (std::size_t r = 2; r * r <= nodes; ++r) {
    if (nodes % r == 0) rows = r;
  }
  return rows;
}

std::vector<ScenarioRun> expand_grid(const RawScenario& raw) {
  // Resolve every key up front so "unknown key" fires even for grids of one.
  std::vector<const KeySpec*> specs;
  specs.reserve(raw.entries.size());
  std::size_t total = 1;
  for (const auto& [key, values] : raw.entries) {
    const KeySpec* spec = find_key(key);
    if (spec == nullptr) {
      fail(key, "unknown key (see docs/EXPERIMENTS.md or "
                "`jwins_run --list-keys`)");
    }
    specs.push_back(spec);
    total *= values.size();
    if (total > 4096) fail("sweep", "grid expands past the 4096-run cap");
  }

  std::vector<ScenarioRun> runs;
  runs.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    ScenarioRun run;
    run.scenario = raw.name;
    run.index = index;
    run.config.threads = 0;  // scenario default: all hardware threads

    // Odometer order: the last-listed sweep key varies fastest.
    std::size_t rem = index;
    std::vector<std::size_t> choice(raw.entries.size(), 0);
    for (std::size_t k = raw.entries.size(); k-- > 0;) {
      const std::size_t radix = raw.entries[k].second.size();
      choice[k] = rem % radix;
      rem /= radix;
    }

    std::string label;
    for (std::size_t k = 0; k < raw.entries.size(); ++k) {
      const auto& [key, values] = raw.entries[k];
      const std::string& value = values[choice[k]];
      specs[k]->apply(run, value);
      if (values.size() > 1) {
        if (!label.empty()) label += ',';
        label += key + "=" + value;
      }
    }
    run.label = label.empty() ? "run" : label;
    validate_cross_field(run);
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace jwins::config

#include "config/runner.hpp"

#include <random>

#include "net/thread_pool.hpp"

namespace jwins::config {

sim::Workload make_run_workload(const ScenarioRun& run) {
  const auto seed = static_cast<std::uint32_t>(run.config.seed);
  if (run.workload == "cifar4") {
    return sim::make_cifar_like_4shard(run.nodes, seed, run.scale);
  }
  return sim::make_workload(run.workload, run.nodes, seed, run.scale);
}

std::unique_ptr<graph::TopologyProvider> make_run_topology(
    const ScenarioRun& run) {
  const std::size_t degree = effective_degree(run);
  if (run.topology == "regular") {
    if (run.churn_every > 0) {
      return std::make_unique<graph::DynamicRegularTopology>(
          run.nodes, degree, run.config.seed, run.churn_every);
    }
    // Same construction as the benches' static_regular helper, so scenario
    // runs and hand-wired runs agree bit for bit on the graph.
    std::mt19937 rng(static_cast<unsigned>(run.config.seed));
    return std::make_unique<graph::StaticTopology>(
        graph::random_regular(run.nodes, degree, rng));
  }
  if (run.topology == "ring") {
    return std::make_unique<graph::StaticTopology>(
        graph::ring(run.nodes, degree / 2));
  }
  if (run.topology == "torus") {
    const std::size_t rows = torus_rows(run.nodes);
    return std::make_unique<graph::StaticTopology>(
        graph::torus(rows, run.nodes / rows));
  }
  return std::make_unique<graph::StaticTopology>(graph::complete(run.nodes));
}

sim::ExperimentConfig resolve_config(const ScenarioRun& run,
                                     const sim::Workload& workload) {
  sim::ExperimentConfig config = run.config;
  if (run.auto_learning_rate) config.sgd.learning_rate = workload.suggested_lr;
  if (run.auto_local_steps) config.local_steps = workload.suggested_local_steps;
  if (config.threads == 0) {
    config.threads = net::ThreadPool::default_thread_count();
  }
  return config;
}

sim::ExperimentResult execute(const ScenarioRun& run) {
  const sim::Workload workload = make_run_workload(run);
  sim::Experiment experiment(resolve_config(run, workload),
                             workload.model_factory, *workload.train,
                             workload.partition, *workload.test,
                             make_run_topology(run));
  return experiment.run();
}

}  // namespace jwins::config

#include "config/sweep.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "config/runner.hpp"
#include "net/time_model.hpp"
#include "sim/report.hpp"

namespace jwins::config {

namespace {

namespace fs = std::filesystem;

/// "workload=cifar,algorithm=jwins" -> "workload-cifar_algorithm-jwins".
std::string file_slug(const std::string& label) {
  std::string slug;
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-') {
      slug += c;
    } else if (c == ',') {
      slug += '_';
    } else {
      slug += '-';
    }
  }
  return slug;
}

/// Strict decimal size_t parse of the whole string; throws on anything else.
std::size_t parse_size(const std::string& text, const std::string& what) {
  if (text.empty() ||
      !std::all_of(text.begin(), text.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    throw ScenarioError(what + ": \"" + text + "\" is not a number");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    throw ScenarioError(what + ": \"" + text + "\" is not a number");
  }
  return static_cast<std::size_t>(v);
}

/// One "  {"index": N, ...}" line lifted out of a grid fragment, with the
/// following-entry comma (if any) already stripped.
struct GridEntry {
  std::size_t index = 0;
  std::string text;
};

/// Reads the entry lines out of one grid(.shard-*)?.json file.
std::vector<GridEntry> read_grid_entries(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw ScenarioError("--merge: cannot read " + path.string());
  }
  std::vector<GridEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("  {\"index\": ", 0) != 0) continue;
    // All entries but the file's last carry the next entry's separator comma;
    // drop it so stored entry bytes are position-independent.
    if (!line.empty() && line.back() == ',') line.pop_back();
    GridEntry e;
    e.text = line;
    const std::size_t value_at = std::string("  {\"index\": ").size();
    const std::size_t comma = line.find(',', value_at);
    if (comma == std::string::npos) {
      throw ScenarioError("--merge: malformed entry in " + path.string());
    }
    e.index = parse_size(line.substr(value_at, comma - value_at),
                         "--merge: entry index in " + path.string());
    entries.push_back(std::move(e));
  }
  return entries;
}

/// Finds `"<key>": ` in a result-JSON line and returns the value text (up to
/// the next ',' or the line end). Empty when the line is not that field.
std::string field_value(const std::string& line, const std::string& key) {
  const std::string prefix = "  \"" + key + "\": ";
  if (line.rfind(prefix, 0) != 0) return {};
  std::string value = line.substr(prefix.size());
  const std::size_t comma = value.find(',');
  if (comma != std::string::npos) value.resize(comma);
  return value;
}

/// strtod over the exact %.17g text the writer emitted — round-trips to the
/// same double, so re-emitting via json_number reproduces the bytes.
bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  out = v;
  return true;
}

}  // namespace

ShardSpec parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    throw ScenarioError("--shard: \"" + text + "\" is not i/N");
  }
  ShardSpec spec;
  spec.index = parse_size(text.substr(0, slash), "--shard");
  spec.count = parse_size(text.substr(slash + 1), "--shard");
  if (spec.count == 0) {
    throw ScenarioError("--shard: shard count must be positive");
  }
  if (spec.index >= spec.count) {
    throw ScenarioError("--shard: index " + std::to_string(spec.index) +
                        " out of range for " + std::to_string(spec.count) +
                        " shards");
  }
  return spec;
}

std::string shard_fragment_name(const ShardSpec& shard) {
  return "grid.shard-" + std::to_string(shard.index) + "-of-" +
         std::to_string(shard.count) + ".json";
}

std::string describe_run(const ScenarioRun& run) {
  std::string text = "workload=" + run.workload +
                     " algorithm=" + sim::algorithm_name(run.config.algorithm) +
                     " nodes=" + std::to_string(run.nodes) +
                     " rounds=" + std::to_string(run.config.rounds) +
                     " topology=" + run.topology;
  if (run.churn_every > 0) {
    text += " churn_every=" + std::to_string(run.churn_every);
  }
  if (run.config.time.extended()) {
    // Heterogeneous/faulty time model: results carry the sim_time JSON
    // block; the per-run summary line prints the simulated phase split.
    text += " time-model=extended";
  }
  if (run.config.engine == sim::EngineKind::kAsync) {
    text += " engine=async";
    if (run.config.staleness_bound > 0) {
      text += " staleness=" + std::to_string(run.config.staleness_bound);
    }
    if (run.config.async_mode != sim::AsyncMode::kBarrier) {
      text += " mode=";
      text += sim::async_mode_name(run.config.async_mode);
      if (run.config.async_mode == sim::AsyncMode::kWeighted) {
        std::ostringstream decay;
        decay << run.config.staleness_decay;
        text += " decay=" + decay.str();
      }
    }
  }
  if (run.config.node_state == sim::NodeState::kCompact) {
    text += " node_state=compact";
  }
  if (run.config.eval_sample > 0) {
    text += " eval_sample=" + std::to_string(run.config.eval_sample);
  }
  return text;
}

std::string run_file_base(const ScenarioRun& run) {
  char prefix[16];
  std::snprintf(prefix, sizeof prefix, "run%03zu_", run.index);
  return prefix + file_slug(run.label);
}

std::optional<CompletedRun> probe_completed_run(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CompletedRun probe;
  bool have_acc = false, have_loss = false, have_rounds = false;
  std::string line;
  while (in && !(have_acc && have_loss && have_rounds)) {
    if (!std::getline(in, line)) break;
    if (std::string v = field_value(line, "final_accuracy"); !v.empty()) {
      have_acc = parse_double(v, probe.final_accuracy);
    } else if (std::string w = field_value(line, "final_loss"); !w.empty()) {
      have_loss = parse_double(w, probe.final_loss);
    } else if (std::string r = field_value(line, "rounds_run"); !r.empty()) {
      try {
        probe.rounds_run = parse_size(r, "rounds_run");
        have_rounds = true;
      } catch (const ScenarioError&) {
        return std::nullopt;
      }
    }
  }
  if (!(have_acc && have_loss && have_rounds)) return std::nullopt;
  return probe;
}

SweepOutcome run_sweep(const std::vector<ScenarioRun>& runs,
                       const std::string& scenario_name,
                       const SweepOptions& options) {
  SweepOutcome outcome;
  std::ostream* console = options.console;

  fs::path run_dir;
  if (options.write_files) {
    run_dir = fs::path(options.out_dir) / scenario_name;
    std::error_code ec;
    fs::create_directories(run_dir, ec);
    if (ec) {
      throw ScenarioError("--out: cannot create " + run_dir.string() + ": " +
                          ec.message());
    }
  }

  std::ostringstream grid_index;
  grid_index << "[";
  bool first_entry = true;
  for (const ScenarioRun& run : runs) {
    if (!shard_owns(options.shard, run.index)) {
      ++outcome.skipped;
      continue;
    }
    const std::string base = run_file_base(run);
    const fs::path json_path = run_dir / (base + ".json");
    const fs::path csv_path = run_dir / (base + ".csv");

    // The grid-entry summary triple: either probed back from a finished
    // run's JSON (--resume) or taken from a fresh execution.
    double final_accuracy = 0.0;
    double final_loss = 0.0;
    std::size_t rounds_run = 0;

    std::optional<CompletedRun> done;
    if (options.resume && options.write_files) {
      done = probe_completed_run(json_path.string());
    }
    if (done) {
      ++outcome.resumed;
      final_accuracy = done->final_accuracy;
      final_loss = done->final_loss;
      rounds_run = done->rounds_run;
      if (console) {
        *console << "[" << run.index + 1 << "/" << runs.size() << "] "
                 << run.label << "  [resume: kept " << base << ".json]"
                 << std::endl;
      }
    } else {
      if (console) {
        *console << "[" << run.index + 1 << "/" << runs.size() << "] "
                 << run.label << "  (" << describe_run(run) << ")"
                 << std::endl;
        if (run.config.time.extended()) {
          // Same construction the Experiment performs, so the printed summary
          // (drawn straggler count included) matches the run exactly.
          const net::TimeModel model(run.nodes, run.config.link,
                                     run.config.time, run.config.seed);
          *console << "    time model: " << model.describe() << "\n";
        }
      }
      const sim::ExperimentResult result = execute(run);
      ++outcome.executed;
      final_accuracy = result.final_accuracy;
      final_loss = result.final_loss;
      rounds_run = result.rounds_run;
      if (console) {
        *console << "    acc=" << std::fixed << std::setprecision(1)
                 << result.final_accuracy * 100.0 << "%  loss="
                 << std::setprecision(3) << result.final_loss
                 << "  rounds=" << result.rounds_run << "  data/node="
                 << sim::format_bytes(
                        result.series.empty()
                            ? 0.0
                            : result.series.back().avg_bytes_per_node)
                 << "  sim-time=" << sim::format_seconds(result.sim_seconds)
                 << (result.reached_target ? "  [reached target]" : "")
                 << "\n";
        if (result.sim_time.extended) {
          const sim::SimTimeBreakdown& st = result.sim_time;
          *console << "    sim: compute="
                   << sim::format_seconds(st.compute_seconds)
                   << "  comm=" << sim::format_seconds(st.comm_seconds)
                   << "  dropped=" << st.dropped_total
                   << " (iid=" << st.dropped_iid << " edge=" << st.dropped_edge
                   << " burst=" << st.dropped_burst
                   << " crash=" << st.dropped_crash << ")"
                   << "  crashed-rounds=" << st.crashed_node_rounds
                   << "  stragglers=" << st.stragglers << "\n";
        }
        if (result.event_engine.enabled) {
          const sim::EventEngineStats& ee = result.event_engine;
          *console << "    events: processed=" << ee.events_processed
                   << "  max-queue=" << ee.max_queue_depth
                   << "  delivered=" << ee.messages_delivered
                   << "  in-flight=" << ee.messages_in_flight
                   << "  stale=" << ee.messages_stale_dropped
                   << "  overrides=" << ee.staleness_overrides
                   << "  local-steps=" << ee.local_steps_min() << ".."
                   << ee.local_steps_max() << "\n";
        }
      }
      if (options.write_files) {
        {
          std::ofstream json(json_path);
          sim::write_result_json(json, scenario_name + "/" + run.label,
                                 result);
        }
        {
          std::ofstream csv(csv_path);
          sim::print_series_csv(csv, scenario_name + "/" + run.label, result);
        }
      }
    }

    if (!options.write_files) continue;
    grid_index << (first_entry ? "\n" : ",\n");
    first_entry = false;
    grid_index << "  {\"index\": " << run.index
               << ", \"label\": " << sim::json_string(run.label)
               << ", \"json\": " << sim::json_string(base + ".json")
               << ", \"csv\": " << sim::json_string(base + ".csv")
               << ", \"final_accuracy\": " << sim::json_number(final_accuracy)
               << ", \"final_loss\": " << sim::json_number(final_loss)
               << ", \"rounds_run\": " << rounds_run << "}";
  }

  if (options.write_files) {
    grid_index << (first_entry ? "]\n" : "\n]\n");
    const std::string grid_name = options.shard.count > 1
                                      ? shard_fragment_name(options.shard)
                                      : std::string("grid.json");
    const fs::path grid_path = run_dir / grid_name;
    std::ofstream grid(grid_path);
    grid << grid_index.str();
    outcome.grid_path = grid_path.string();
    if (console) {
      const std::size_t results = outcome.executed + outcome.resumed;
      *console << "wrote " << results << " result"
               << (results == 1 ? "" : "s") << " (JSON + CSV) and "
               << grid_name << " to " << run_dir.string() << "\n";
    }
  }
  return outcome;
}

std::string merge_shards(const std::string& dir) {
  // Collect grid.shard-<i>-of-<N>.json fragments.
  std::map<std::size_t, fs::path> fragments;
  std::size_t count = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("grid.shard-", 0) != 0) continue;
    const std::string suffix = ".json";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string body = name.substr(std::string("grid.shard-").size(),
                                         name.size() -
                                             std::string("grid.shard-").size() -
                                             suffix.size());
    const std::size_t sep = body.find("-of-");
    if (sep == std::string::npos) continue;
    const std::size_t i = parse_size(body.substr(0, sep), "--merge: " + name);
    const std::size_t n =
        parse_size(body.substr(sep + 4), "--merge: " + name);
    if (count == 0) {
      count = n;
    } else if (n != count) {
      throw ScenarioError("--merge: fragments disagree on shard count (" +
                          std::to_string(count) + " vs " + std::to_string(n) +
                          " in " + name + ")");
    }
    if (!fragments.emplace(i, entry.path()).second) {
      throw ScenarioError("--merge: duplicate shard " + std::to_string(i));
    }
  }
  if (ec) {
    throw ScenarioError("--merge: cannot read " + dir + ": " + ec.message());
  }
  if (fragments.empty()) {
    throw ScenarioError("--merge: no grid.shard-*.json fragments in " + dir);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (!fragments.count(i)) {
      throw ScenarioError("--merge: missing shard " + std::to_string(i) +
                          " of " + std::to_string(count));
    }
  }

  // Pool the entries and demand exactly-once coverage of 0..total-1.
  std::map<std::size_t, std::string> entries;
  for (const auto& [shard, path] : fragments) {
    for (GridEntry& e : read_grid_entries(path)) {
      if (e.index % count != shard) {
        throw ScenarioError("--merge: run " + std::to_string(e.index) +
                            " found in shard " + std::to_string(shard) +
                            ", expected " + std::to_string(e.index % count));
      }
      if (!entries.emplace(e.index, std::move(e.text)).second) {
        throw ScenarioError("--merge: duplicate run " +
                            std::to_string(e.index));
      }
    }
  }
  std::size_t expect = 0;
  for (const auto& [index, text] : entries) {
    if (index != expect) {
      throw ScenarioError("--merge: missing run " + std::to_string(expect) +
                          " (shards incomplete?)");
    }
    ++expect;
  }

  // Re-emit with the unsharded writer's separator scheme: byte-identical.
  std::ostringstream merged;
  merged << "[";
  for (const auto& [index, text] : entries) {
    merged << (index == 0 ? "\n" : ",\n") << text;
  }
  merged << (entries.empty() ? "]\n" : "\n]\n");

  const fs::path grid_path = fs::path(dir) / "grid.json";
  std::ofstream grid(grid_path);
  if (!grid) {
    throw ScenarioError("--merge: cannot write " + grid_path.string());
  }
  grid << merged.str();
  return grid_path.string();
}

}  // namespace jwins::config

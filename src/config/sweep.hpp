// Sharded/resumable sweep execution — the engine behind jwins_run's
// --shard/--merge/--resume flags, factored out of the CLI so the scale test
// suite drives the exact production path.
//
// Sharding contract: `--shard i/N` deterministically partitions the expanded
// grid by run index (index % N == i), so N independent processes — or N CI
// jobs — each execute a disjoint slice and write a fragment index
// (grid.shard-<i>-of-<N>.json). merge_shards() reassembles the fragments
// into a grid.json that is BYTE-IDENTICAL to the one an unsharded run would
// have written: fragments carry the same per-entry bytes, and the merge
// re-derives the separators for the combined set. Resume reads the three
// summary numbers back from an existing result JSON via strtod — an exact
// %.17g round-trip — so a resumed grid entry is byte-identical too.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "config/scenario.hpp"

namespace jwins::config {

/// One slice of a sharded sweep. The default (0 of 1) is the unsharded run.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Parses "i/N" (i < N, N >= 1). Throws ScenarioError on malformed specs.
ShardSpec parse_shard(const std::string& text);

/// True when this shard executes grid cell `run_index` (index % N == i).
/// Every run index is owned by exactly one of the N shards.
inline bool shard_owns(const ShardSpec& shard,
                       std::size_t run_index) noexcept {
  return run_index % shard.count == shard.index;
}

/// Fragment-index filename of one shard: "grid.shard-<i>-of-<N>.json".
std::string shard_fragment_name(const ShardSpec& shard);

/// One-line human description of a run (the CLI's grid/progress listing).
std::string describe_run(const ScenarioRun& run);

/// Output-file stem of a run: "run%03zu_" + a slug of its label — the names
/// both the writer and --resume's probe derive independently.
std::string run_file_base(const ScenarioRun& run);

struct SweepOptions {
  std::string out_dir = "jwins_results";  ///< root; files land in out/<name>/
  bool write_files = true;
  bool resume = false;      ///< skip runs whose result JSON already parses
  ShardSpec shard;          ///< default: the whole grid
  std::ostream* console = nullptr;  ///< progress stream (null = silent)
};

struct SweepOutcome {
  std::size_t executed = 0;  ///< runs actually simulated
  std::size_t skipped = 0;   ///< grid cells owned by other shards
  std::size_t resumed = 0;   ///< completed runs reused by --resume
  std::string grid_path;     ///< grid.json, or this shard's fragment
};

/// Executes (this shard's slice of) the expanded grid and writes the result
/// files plus the grid index — the loop jwins_run runs. Throws ScenarioError
/// on I/O failures.
SweepOutcome run_sweep(const std::vector<ScenarioRun>& runs,
                       const std::string& scenario_name,
                       const SweepOptions& options);

/// The summary triple --resume needs to reproduce a grid entry byte-for-byte.
struct CompletedRun {
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  std::size_t rounds_run = 0;
};

/// Reads the summary triple back from a result JSON written by
/// sim::write_result_json. nullopt when the file is missing or any field
/// fails to parse (the run then simply re-executes).
std::optional<CompletedRun> probe_completed_run(const std::string& path);

/// Merges every grid.shard-<i>-of-<N>.json in `dir` into dir/grid.json,
/// byte-identical to an unsharded run's index. Validates that all fragments
/// agree on N, every shard 0..N-1 is present, and the entry indices cover
/// 0..total-1 exactly once. Returns the grid.json path; throws ScenarioError
/// on any violation.
std::string merge_shards(const std::string& dir);

}  // namespace jwins::config

#include "dwt/wavelet.hpp"

#include <stdexcept>

namespace jwins::dwt {

Wavelet make_wavelet(std::string name, std::vector<float> scaling_filter) {
  if (scaling_filter.size() < 2 || scaling_filter.size() % 2 != 0) {
    throw std::invalid_argument("wavelet scaling filter must have even length >= 2");
  }
  Wavelet w;
  w.name = std::move(name);
  w.lowpass = std::move(scaling_filter);
  const std::size_t len = w.lowpass.size();
  w.highpass.resize(len);
  for (std::size_t n = 0; n < len; ++n) {
    const float sign = (n % 2 == 0) ? 1.0f : -1.0f;
    w.highpass[n] = sign * w.lowpass[len - 1 - n];
  }
  return w;
}

Wavelet haar() {
  return make_wavelet("haar", {0.70710678118654752f, 0.70710678118654752f});
}

Wavelet db2() {
  return make_wavelet(
      "db2", {0.48296291314453416f, 0.83651630373780790f,
              0.22414386804185735f, -0.12940952255126037f});
}

Wavelet sym2() {
  Wavelet w = db2();
  w.name = "sym2";
  return w;
}

Wavelet db4() {
  return make_wavelet(
      "db4",
      {0.23037781330885523f, 0.71484657055254153f, 0.63088076792959036f,
       -0.02798376941698385f, -0.18703481171888114f, 0.03084138183598697f,
       0.03288301166698295f, -0.01059740178499728f});
}

Wavelet wavelet_by_name(const std::string& name) {
  if (name == "haar" || name == "db1") return haar();
  if (name == "db2") return db2();
  if (name == "sym2") return sym2();
  if (name == "db4") return db4();
  throw std::invalid_argument("unknown wavelet: " + name);
}

}  // namespace jwins::dwt

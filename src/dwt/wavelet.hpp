// Orthonormal wavelet filter banks.
//
// JWINS uses a four-level discrete wavelet decomposition with Symlet-2
// wavelets (paper §III-A). Symlet-2 has the same filter coefficients as
// Daubechies-2, so `sym2()` and `db2()` return the same bank. Haar and Db4
// are provided for the wavelet-choice ablations mentioned in the paper
// ("we experimented with different wavelet functions").
#pragma once

#include <string>
#include <vector>

namespace jwins::dwt {

/// An orthonormal wavelet: the scaling (low-pass) filter h plus the derived
/// quadrature-mirror wavelet (high-pass) filter g[n] = (-1)^n h[L-1-n].
struct Wavelet {
  std::string name;
  std::vector<float> lowpass;   ///< scaling filter h, sum = sqrt(2)
  std::vector<float> highpass;  ///< wavelet filter g, derived from h

  std::size_t length() const noexcept { return lowpass.size(); }
};

/// Builds a wavelet from its scaling filter (the high-pass is derived).
Wavelet make_wavelet(std::string name, std::vector<float> scaling_filter);

/// Haar (Db1): 2-tap filter.
Wavelet haar();

/// Daubechies-2: 4-tap filter. Identical to Symlet-2.
Wavelet db2();

/// Symlet-2 — the wavelet JWINS uses. Alias of db2().
Wavelet sym2();

/// Daubechies-4: 8-tap filter.
Wavelet db4();

/// Looks a wavelet up by name ("haar", "db2", "sym2", "db4").
Wavelet wavelet_by_name(const std::string& name);

}  // namespace jwins::dwt

// Radix-2 complex FFT, used as the comparison transform in the Figure-2
// reconstruction-error experiment (DWT vs FFT vs random sampling).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace jwins::dwt {

/// Smallest power of two >= n (n == 0 maps to 1).
std::size_t next_pow2(std::size_t n) noexcept;

/// In-place iterative radix-2 FFT. `data.size()` must be a power of two.
/// `inverse` applies the conjugate transform and 1/N scaling.
void fft(std::span<std::complex<float>> data, bool inverse);

/// Forward FFT of a real signal, zero-padded to the next power of two.
std::vector<std::complex<float>> fft_real(std::span<const float> input);

/// Inverse FFT returning the first `output_length` real parts.
std::vector<float> ifft_real(std::span<const std::complex<float>> spectrum,
                             std::size_t output_length);

/// Sparsifies a real signal in the Fourier domain: keeps the `budget_floats`
/// highest-magnitude spectrum bins (each complex bin costs two floats of
/// budget, matching how the paper charges communication), zeroes the rest,
/// and reconstructs. Used by the Figure-2 experiment.
std::vector<float> fft_sparsify_reconstruct(std::span<const float> input,
                                            std::size_t budget_floats);

}  // namespace jwins::dwt

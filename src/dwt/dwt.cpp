#include "dwt/dwt.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "core/kernel_dispatch.hpp"

namespace jwins::dwt {

namespace {

void validate_analyze(std::size_t n, std::span<float> approx,
                      std::span<float> detail) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument("analyze_level requires even input length, got " +
                                std::to_string(n));
  }
  if (approx.size() != n / 2 || detail.size() != n / 2) {
    throw std::invalid_argument("analyze_level output spans must have length n/2");
  }
}

void validate_synthesize(std::size_t half, std::span<const float> detail,
                         std::size_t n) {
  if (detail.size() != half || n != 2 * half) {
    throw std::invalid_argument(
        "synthesize_level requires |approx| == |detail| == |output|/2");
  }
}

}  // namespace

void analyze_level_scalar(const Wavelet& w, std::span<const float> input,
                          std::span<float> approx, std::span<float> detail) {
  const std::size_t n = input.size();
  validate_analyze(n, approx, detail);
  const std::size_t half = n / 2;
  const std::size_t taps = w.length();
  for (std::size_t k = 0; k < half; ++k) {
    double a = 0.0, d = 0.0;
    const std::size_t base = 2 * k;
    for (std::size_t m = 0; m < taps; ++m) {
      std::size_t idx = base + m;
      if (idx >= n) idx -= n;          // periodic extension; taps <= n not
      if (idx >= n) idx %= n;          // required: fall back to full modulo
      const float x = input[idx];
      a += static_cast<double>(w.lowpass[m]) * x;
      d += static_cast<double>(w.highpass[m]) * x;
    }
    approx[k] = static_cast<float>(a);
    detail[k] = static_cast<float>(d);
  }
}

void analyze_level_fast(const Wavelet& w, std::span<const float> input,
                        std::span<float> approx, std::span<float> detail) {
  const std::size_t n = input.size();
  validate_analyze(n, approx, detail);
  const std::size_t taps = w.length();
  if (taps == 0 || taps > n) {
    // Multi-wrap filters keep the (rare) scalar indexing.
    analyze_level_scalar(w, input, approx, detail);
    return;
  }
  const std::size_t half = n / 2;
  // Outputs k < k_safe read input[2k .. 2k+taps-1] without wrapping.
  std::size_t k_safe = (n - taps) / 2 + 1;
  if (k_safe > half) k_safe = half;
  // Filter-major accumulation: per output k the terms still add in tap
  // order m = 0..taps-1 (one tap per pass), so every double accumulator
  // sees the exact operation sequence of the scalar reference while each
  // pass is a stride-1 (output) / stride-2 (input) loop the compiler can
  // vectorize.
  thread_local std::vector<double> acc_a, acc_d;
  acc_a.assign(k_safe, 0.0);
  acc_d.assign(k_safe, 0.0);
  double* __restrict pa = acc_a.data();
  double* __restrict pd = acc_d.data();
  for (std::size_t m = 0; m < taps; ++m) {
    const double h = static_cast<double>(w.lowpass[m]);
    const double g = static_cast<double>(w.highpass[m]);
    const float* in = input.data() + m;
    for (std::size_t k = 0; k < k_safe; ++k) {
      const double x = static_cast<double>(in[2 * k]);
      pa[k] += h * x;
      pd[k] += g * x;
    }
  }
  for (std::size_t k = 0; k < k_safe; ++k) {
    approx[k] = static_cast<float>(pa[k]);
    detail[k] = static_cast<float>(pd[k]);
  }
  // Wrapped tail: same per-output loop as the scalar reference.
  for (std::size_t k = k_safe; k < half; ++k) {
    double a = 0.0, d = 0.0;
    const std::size_t base = 2 * k;
    for (std::size_t m = 0; m < taps; ++m) {
      std::size_t idx = base + m;
      if (idx >= n) idx -= n;
      const float x = input[idx];
      a += static_cast<double>(w.lowpass[m]) * x;
      d += static_cast<double>(w.highpass[m]) * x;
    }
    approx[k] = static_cast<float>(a);
    detail[k] = static_cast<float>(d);
  }
}

void analyze_level(const Wavelet& w, std::span<const float> input,
                   std::span<float> approx, std::span<float> detail) {
  if (core::KernelDispatch::fast()) {
    analyze_level_fast(w, input, approx, detail);
  } else {
    analyze_level_scalar(w, input, approx, detail);
  }
}

void synthesize_level_scalar(const Wavelet& w, std::span<const float> approx,
                             std::span<const float> detail,
                             std::span<float> output) {
  const std::size_t half = approx.size();
  const std::size_t n = output.size();
  validate_synthesize(half, detail, n);
  const std::size_t taps = w.length();
  for (float& v : output) v = 0.0f;
  // Transpose of the analysis operator: output[2k+m] += h[m]*a[k] + g[m]*d[k].
  for (std::size_t k = 0; k < half; ++k) {
    const float a = approx[k];
    const float d = detail[k];
    const std::size_t base = 2 * k;
    for (std::size_t m = 0; m < taps; ++m) {
      std::size_t idx = base + m;
      while (idx >= n) idx -= n;
      output[idx] += w.lowpass[m] * a + w.highpass[m] * d;
    }
  }
}

void synthesize_level_fast(const Wavelet& w, std::span<const float> approx,
                           std::span<const float> detail,
                           std::span<float> output) {
  const std::size_t half = approx.size();
  const std::size_t n = output.size();
  validate_synthesize(half, detail, n);
  const std::size_t taps = w.length();
  if (taps == 0 || taps > n) {
    synthesize_level_scalar(w, approx, detail, output);
    return;
  }
  // Gather form of the scatter reference. Per output j the reference adds
  // one contribution per source k in ascending-k order, each shaped
  // lp[m]*a[k] + hp[m]*d[k]; the fast path reproduces exactly that term
  // sequence. Outputs j >= taps-1 take only unwrapped contributors, split
  // by parity into stride-1 filter-major passes; outputs j < taps-1 mix
  // wrapped and unwrapped contributors and stay scalar.
  const std::size_t boundary = std::min(n, taps - 1);
  const float* __restrict pa = approx.data();
  const float* __restrict pd = detail.data();
  thread_local std::vector<float> acc;
  for (std::size_t p = 0; p < 2; ++p) {
    // Taps of parity p: m = 2t+p, t in [0, tcount). Interior outputs
    // j = 2u+p with j >= boundary, i.e. u in [u0, half).
    const std::size_t tcount = (taps - p + 1) / 2;
    const std::size_t u0 = (taps - p) / 2;
    if (u0 >= half) {
      // Parity has no interior outputs (tiny n); handled by boundary loop.
      continue;
    }
    const std::size_t count = half - u0;
    acc.assign(count, 0.0f);
    float* __restrict s = acc.data();
    if (tcount == 0) {
      // No taps of this parity: interior outputs are exactly the zero fill.
    } else {
      // t descending == source k ascending, matching the reference order.
      for (std::size_t t = tcount; t-- > 0;) {
        const std::size_t m = 2 * t + p;
        const float lo = w.lowpass[m];
        const float hi = w.highpass[m];
        const float* ka = pa + (u0 - t);
        const float* kd = pd + (u0 - t);
        for (std::size_t u = 0; u < count; ++u) {
          s[u] += lo * ka[u] + hi * kd[u];
        }
      }
    }
    for (std::size_t u = 0; u < count; ++u) {
      output[2 * (u0 + u) + p] = s[u];
    }
  }
  // Boundary outputs j < taps-1: unwrapped contributors (m <= j, ascending
  // k from 0) then wrapped ones (m > j, k = (j - m + n)/2, still ascending
  // k as m descends).
  for (std::size_t j = 0; j < boundary; ++j) {
    float v = 0.0f;
    for (std::ptrdiff_t m = static_cast<std::ptrdiff_t>(j); m >= 0; m -= 2) {
      const std::size_t k = (j - static_cast<std::size_t>(m)) / 2;
      v += w.lowpass[m] * pa[k] + w.highpass[m] * pd[k];
    }
    std::ptrdiff_t m_wrap = static_cast<std::ptrdiff_t>(taps) - 1;
    if ((static_cast<std::size_t>(m_wrap) % 2) != (j % 2)) --m_wrap;
    for (std::ptrdiff_t m = m_wrap; m > static_cast<std::ptrdiff_t>(j);
         m -= 2) {
      const std::size_t k = (j + n - static_cast<std::size_t>(m)) / 2;
      v += w.lowpass[m] * pa[k] + w.highpass[m] * pd[k];
    }
    output[j] = v;
  }
  // The two parity lanes start at outputs taps-1 and taps (one each), so
  // together with the boundary loop they cover [0, n) exactly once.
}

void synthesize_level(const Wavelet& w, std::span<const float> approx,
                      std::span<const float> detail, std::span<float> output) {
  if (core::KernelDispatch::fast()) {
    synthesize_level_fast(w, approx, detail, output);
  } else {
    synthesize_level_scalar(w, approx, detail, output);
  }
}

DwtPlan::DwtPlan(Wavelet wavelet, std::size_t input_length, std::size_t levels)
    : wavelet_(std::move(wavelet)), input_length_(input_length) {
  if (input_length == 0) {
    throw std::invalid_argument("DwtPlan requires a non-empty signal");
  }
  std::size_t len = input_length;
  for (std::size_t l = 0; l < levels && len >= 2; ++l) {
    const std::size_t padded = len + (len % 2);
    level_in_.push_back(len);
    level_padded_.push_back(padded);
    len = padded / 2;
  }
  // Flat layout: [a_L, d_L, d_{L-1}, ..., d_1]. Band 0 is a_L (length = final
  // approx length), band b>=1 is d_{L-b+1}.
  const std::size_t nlev = level_in_.size();
  band_offsets_.resize(nlev + 2);
  band_offsets_[0] = 0;
  const std::size_t approx_len = nlev == 0 ? input_length : level_padded_.back() / 2;
  band_offsets_[1] = approx_len;
  std::size_t off = approx_len;
  for (std::size_t b = 1; b <= nlev; ++b) {
    // band b holds d at level (nlev - b + 1), whose length equals the padded
    // input of that level divided by 2.
    const std::size_t lev = nlev - b;  // index into level_padded_
    off += level_padded_[lev] / 2;
    band_offsets_[b + 1] = off;
  }
  coeff_length_ = off;
}

void DwtPlan::forward_into(std::span<const float> input,
                           std::span<float> coeffs) const {
  DwtWorkspace ws;
  forward_into(input, coeffs, ws);
}

void DwtPlan::forward_into(std::span<const float> input,
                           std::span<float> coeffs, DwtWorkspace& ws) const {
  if (input.size() != input_length_) {
    throw std::invalid_argument("DwtPlan::forward: input length mismatch");
  }
  if (coeffs.size() != coeff_length_) {
    throw std::invalid_argument("DwtPlan::forward: coeff buffer length mismatch");
  }
  const std::size_t nlev = level_in_.size();
  if (nlev == 0) {
    for (std::size_t i = 0; i < input.size(); ++i) coeffs[i] = input[i];
    return;
  }
  // Grow-only ping-pong buffers: allocation happens on the first call per
  // workspace, steady-state calls are heap-free.
  const std::size_t max_len = level_padded_.front();
  if (ws.ping.size() < max_len) ws.ping.resize(max_len);
  if (ws.pong.size() < max_len) ws.pong.resize(max_len);
  float* cur = ws.ping.data();
  float* nxt = ws.pong.data();
  std::copy(input.begin(), input.end(), cur);
  for (std::size_t l = 0; l < nlev; ++l) {
    const std::size_t padded = level_padded_[l];
    for (std::size_t i = level_in_[l]; i < padded; ++i) cur[i] = 0.0f;
    const std::size_t half = padded / 2;
    // Detail of level l+1 lives in band (nlev - l), written in place; the
    // approximation becomes the next level's input.
    const std::size_t band = nlev - l;
    analyze_level(wavelet_, std::span<const float>(cur, padded),
                  std::span<float>(nxt, half),
                  coeffs.subspan(band_offsets_[band], half));
    std::swap(cur, nxt);
  }
  const std::size_t approx_len = band_offsets_[1];
  for (std::size_t i = 0; i < approx_len; ++i) coeffs[i] = cur[i];
}

std::vector<float> DwtPlan::forward(std::span<const float> input) const {
  std::vector<float> coeffs(coeff_length_, 0.0f);
  forward_into(input, coeffs);
  return coeffs;
}

void DwtPlan::inverse_into(std::span<const float> coeffs,
                           std::span<float> output) const {
  DwtWorkspace ws;
  inverse_into(coeffs, output, ws);
}

void DwtPlan::inverse_into(std::span<const float> coeffs,
                           std::span<float> output, DwtWorkspace& ws) const {
  if (coeffs.size() != coeff_length_) {
    throw std::invalid_argument("DwtPlan::inverse: coeff length mismatch");
  }
  if (output.size() != input_length_) {
    throw std::invalid_argument("DwtPlan::inverse: output length mismatch");
  }
  const std::size_t nlev = level_in_.size();
  if (nlev == 0) {
    for (std::size_t i = 0; i < coeffs.size(); ++i) output[i] = coeffs[i];
    return;
  }
  const std::size_t max_len = level_padded_.front();
  if (ws.ping.size() < max_len) ws.ping.resize(max_len);
  if (ws.pong.size() < max_len) ws.pong.resize(max_len);
  float* cur = ws.ping.data();
  float* nxt = ws.pong.data();
  const std::size_t approx_len = band_offsets_[1];
  std::copy(coeffs.begin(),
            coeffs.begin() + static_cast<std::ptrdiff_t>(approx_len), cur);
  for (std::size_t l = nlev; l-- > 0;) {
    const std::size_t band = nlev - l;
    const std::size_t boff = band_offsets_[band];
    const std::size_t padded = level_padded_[l];
    const std::size_t half = padded / 2;
    // synthesize zeroes its output span first; the next level reads only
    // level_in_[l] samples, which drops the zero pad implicitly.
    synthesize_level(wavelet_, std::span<const float>(cur, half),
                     coeffs.subspan(boff, half), std::span<float>(nxt, padded));
    std::swap(cur, nxt);
  }
  for (std::size_t i = 0; i < input_length_; ++i) output[i] = cur[i];
}

std::vector<float> DwtPlan::inverse(std::span<const float> coeffs) const {
  std::vector<float> out(input_length_, 0.0f);
  inverse_into(coeffs, out);
  return out;
}

std::size_t DwtPlan::band_of(std::size_t coeff_index) const {
  if (coeff_index >= coeff_length_) {
    throw std::out_of_range("band_of: coefficient index out of range");
  }
  // band_offsets_ has levels()+2 entries and is sorted; linear scan is fine
  // (at most ~5 bands for the 4-level JWINS configuration).
  std::size_t band = 0;
  while (band + 1 < band_offsets_.size() && coeff_index >= band_offsets_[band + 1]) {
    ++band;
  }
  return band;
}

std::size_t DwtPlan::band_offset(std::size_t band) const {
  if (band + 1 >= band_offsets_.size()) {
    throw std::out_of_range("band_offset: band out of range");
  }
  return band_offsets_[band];
}

std::size_t DwtPlan::band_length(std::size_t band) const {
  if (band + 1 >= band_offsets_.size()) {
    throw std::out_of_range("band_length: band out of range");
  }
  return band_offsets_[band + 1] - band_offsets_[band];
}

std::vector<float> wavedec(const Wavelet& w, std::span<const float> input,
                           std::size_t levels) {
  return DwtPlan(w, input.size(), levels).forward(input);
}

std::vector<float> waverec(const Wavelet& w, std::span<const float> coeffs,
                           std::size_t input_length, std::size_t levels) {
  return DwtPlan(w, input_length, levels).inverse(coeffs);
}

}  // namespace jwins::dwt

#include "dwt/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace jwins::dwt {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::span<std::complex<float>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft requires a power-of-two length");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u(data[i + k]);
        const std::complex<double> v = std::complex<double>(data[i + k + len / 2]) * w;
        data[i + k] = std::complex<float>(u + v);
        data[i + k + len / 2] = std::complex<float>(u - v);
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n);
    for (auto& c : data) c *= scale;
  }
}

std::vector<std::complex<float>> fft_real(std::span<const float> input) {
  const std::size_t n = next_pow2(input.size());
  std::vector<std::complex<float>> data(n);
  for (std::size_t i = 0; i < input.size(); ++i) data[i] = {input[i], 0.0f};
  fft(data, /*inverse=*/false);
  return data;
}

std::vector<float> ifft_real(std::span<const std::complex<float>> spectrum,
                             std::size_t output_length) {
  std::vector<std::complex<float>> data(spectrum.begin(), spectrum.end());
  fft(data, /*inverse=*/true);
  if (output_length > data.size()) {
    throw std::invalid_argument("ifft_real: output length exceeds spectrum size");
  }
  std::vector<float> out(output_length);
  for (std::size_t i = 0; i < output_length; ++i) out[i] = data[i].real();
  return out;
}

std::vector<float> fft_sparsify_reconstruct(std::span<const float> input,
                                            std::size_t budget_floats) {
  auto spectrum = fft_real(input);
  // A complex bin costs two floats; keep the top budget/2 bins by magnitude.
  const std::size_t keep = std::min<std::size_t>(budget_floats / 2, spectrum.size());
  std::vector<std::size_t> order(spectrum.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     return std::norm(spectrum[a]) > std::norm(spectrum[b]);
                   });
  std::vector<std::complex<float>> sparse(spectrum.size(), {0.0f, 0.0f});
  for (std::size_t i = 0; i < keep; ++i) sparse[order[i]] = spectrum[order[i]];
  return ifft_real(sparse, input.size());
}

}  // namespace jwins::dwt

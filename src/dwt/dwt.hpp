// Multi-level 1-D discrete wavelet transform with periodic signal extension.
//
// The transform is orthonormal: with an orthonormal filter bank and periodic
// ("per") extension the analysis matrix is orthogonal for every even signal
// length, which gives (a) perfect reconstruction and (b) Parseval energy
// preservation. Energy preservation is what makes magnitude-TopK on wavelet
// coefficients meaningful for JWINS' parameter ranking (paper §III-A): the
// largest coefficients carry the most model-change energy.
//
// Odd-length levels are zero-padded by one sample; the plan records per-level
// lengths so the inverse restores the exact original length. Coefficients
// are laid out `[a_L, d_L, d_{L-1}, ..., d_1]` (PyWavelets `wavedec` order).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dwt/wavelet.hpp"

namespace jwins::dwt {

/// Single-level periodized analysis. Input length must be even.
/// Writes `n/2` approximation and `n/2` detail coefficients. Dispatches
/// between the scalar reference and the stride-1 fast path per
/// core::KernelDispatch; the tiers are bit-identical.
void analyze_level(const Wavelet& w, std::span<const float> input,
                   std::span<float> approx, std::span<float> detail);

/// Pinned golden reference (per-output tap loop with wrap handling).
void analyze_level_scalar(const Wavelet& w, std::span<const float> input,
                          std::span<float> approx, std::span<float> detail);

/// Fast path: filter-major stride-1 accumulation over the unwrapped
/// interior, scalar wrap tail. Same doubles, same order as the reference.
void analyze_level_fast(const Wavelet& w, std::span<const float> input,
                        std::span<float> approx, std::span<float> detail);

/// Single-level periodized synthesis: exact inverse of analyze_level.
/// Dispatches like analyze_level.
void synthesize_level(const Wavelet& w, std::span<const float> approx,
                      std::span<const float> detail, std::span<float> output);

/// Pinned golden reference (scatter form).
void synthesize_level_scalar(const Wavelet& w, std::span<const float> approx,
                             std::span<const float> detail,
                             std::span<float> output);

/// Fast path: parity-split gather form with stride-1 filter-major passes;
/// bit-identical to the scatter reference.
void synthesize_level_fast(const Wavelet& w, std::span<const float> approx,
                           std::span<const float> detail,
                           std::span<float> output);

/// Reusable ping-pong buffers for multi-level transforms. A workspace is
/// plan-agnostic: DwtPlan grows it on first use (to the plan's outermost
/// padded length) and never shrinks it, so one workspace per worker serves
/// every plan and steady-state transforms allocate nothing. Not shareable
/// across concurrent calls.
struct DwtWorkspace {
  std::vector<float> ping;
  std::vector<float> pong;
};

/// A reusable multi-level transform plan for a fixed input length.
///
/// JWINS transforms the (flattened) model vector every round, so the plan is
/// built once per model size and reused; it owns the level-length bookkeeping
/// and scratch buffers.
class DwtPlan {
 public:
  /// Plans `levels` decomposition levels over signals of `input_length`.
  /// The effective level count may be lower for short signals (each level
  /// needs at least 2 samples to halve).
  DwtPlan(Wavelet wavelet, std::size_t input_length, std::size_t levels);

  std::size_t input_length() const noexcept { return input_length_; }
  std::size_t levels() const noexcept { return level_in_.size(); }

  /// Total number of coefficients produced by forward().
  std::size_t coeff_length() const noexcept { return coeff_length_; }

  const Wavelet& wavelet() const noexcept { return wavelet_; }

  /// Forward transform. `input.size()` must equal input_length().
  std::vector<float> forward(std::span<const float> input) const;

  /// In-place-style forward into a caller-provided buffer of coeff_length().
  /// Allocates a transient workspace; see the DwtWorkspace overload for the
  /// allocation-free hot path.
  void forward_into(std::span<const float> input,
                    std::span<float> coeffs) const;

  /// Scratch variant: all per-level temporaries live in `ws` (grown on first
  /// use, reused afterwards). Bit-identical to forward_into(input, coeffs).
  void forward_into(std::span<const float> input, std::span<float> coeffs,
                    DwtWorkspace& ws) const;

  /// Inverse transform. `coeffs.size()` must equal coeff_length().
  std::vector<float> inverse(std::span<const float> coeffs) const;

  /// Inverse into a caller-provided buffer of input_length().
  void inverse_into(std::span<const float> coeffs,
                    std::span<float> output) const;

  /// Scratch variant of inverse_into (see forward_into).
  void inverse_into(std::span<const float> coeffs, std::span<float> output,
                    DwtWorkspace& ws) const;

  /// Decomposition level that owns flat coefficient index `i`:
  /// 0 = final approximation band a_L, 1 = d_L, ..., levels() = d_1.
  std::size_t band_of(std::size_t coeff_index) const;

  /// Offset of each band in the flat coefficient vector; band 0 is a_L.
  /// There are levels()+1 bands.
  std::size_t band_offset(std::size_t band) const;
  std::size_t band_length(std::size_t band) const;

 private:
  Wavelet wavelet_;
  std::size_t input_length_;
  std::size_t coeff_length_;
  // Per level (outermost first): pre-pad input length and padded (even) length.
  std::vector<std::size_t> level_in_;
  std::vector<std::size_t> level_padded_;
  // band_offsets_[b] = start of band b in the flat vector, b in [0, levels()].
  std::vector<std::size_t> band_offsets_;
};

/// Convenience one-shot forward transform (builds a plan internally).
std::vector<float> wavedec(const Wavelet& w, std::span<const float> input,
                           std::size_t levels);

/// Convenience one-shot inverse (must use the same wavelet/levels/length).
std::vector<float> waverec(const Wavelet& w, std::span<const float> coeffs,
                           std::size_t input_length, std::size_t levels);

}  // namespace jwins::dwt

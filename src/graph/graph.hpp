// Communication topologies for decentralized learning.
//
// The paper connects its 96 nodes in a random d-regular topology (d=4) and
// grows the degree with node count in the scalability study (4,5,5,6). The
// dynamic-topology experiment (Figure 7) re-randomizes neighbors every round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace jwins::graph {

/// Undirected simple graph over nodes [0, n).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adjacency_(n) {}

  std::size_t size() const noexcept { return adjacency_.size(); }

  /// Adds the undirected edge {u, v}. Ignores duplicates and self-loops.
  void add_edge(std::size_t u, std::size_t v);

  /// Removes the undirected edge {u, v} if present.
  void remove_edge(std::size_t u, std::size_t v);

  bool has_edge(std::size_t u, std::size_t v) const;

  const std::vector<std::size_t>& neighbors(std::size_t u) const;

  std::size_t degree(std::size_t u) const { return neighbors(u).size(); }

  /// Total number of undirected edges.
  std::size_t edge_count() const noexcept;

  /// Canonical undirected edge list: every edge once as (u, v) with u < v,
  /// sorted ascending. The enumeration order net::TimeModel reports and
  /// tests iterate per-edge attributes (bandwidth/latency/drop draws) in.
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;

  /// True if every node can reach every other node.
  bool connected() const;

  /// True if every node has degree d.
  bool is_regular(std::size_t d) const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
};

/// Random d-regular simple connected graph (pairing model with retries),
/// as used for the paper's test bed. Requires n > d and n*d even.
Graph random_regular(std::size_t n, std::size_t d, std::mt19937& rng);

/// Ring lattice where each node connects to k nearest neighbors on each side.
Graph ring(std::size_t n, std::size_t k = 1);

/// Complete graph (the all-to-all setting the paper calls impractical; kept
/// for tests and small-scale comparisons).
Graph complete(std::size_t n);

/// 2-D torus (wraparound grid): node (r, c) connects to its four lattice
/// neighbors modulo the grid dimensions. 4-regular for rows, cols >= 3;
/// degenerate dimensions collapse to a ring (duplicate edges are ignored).
Graph torus(std::size_t rows, std::size_t cols);

/// Erdos-Renyi G(n, p), retried until connected (p must be large enough).
Graph erdos_renyi(std::size_t n, double p, std::mt19937& rng);

/// Metropolis-Hastings mixing weights over a graph (Xiao & Boyd 2004), the
/// weighting D-PSGD uses in the paper: w_ij = 1/(1+max(d_i,d_j)) on edges,
/// w_ii = 1 - sum_j w_ij. Row i is returned densely over neighbors:
/// weights[i] aligns with graph.neighbors(i); self_weight[i] = w_ii.
struct MixingWeights {
  std::vector<std::vector<double>> neighbor_weight;
  std::vector<double> self_weight;
};

MixingWeights metropolis_hastings(const Graph& g);

/// Provides the topology for each round: static (same graph forever) or
/// dynamic (fresh random d-regular graph per round — Figure 7).
class TopologyProvider {
 public:
  virtual ~TopologyProvider() = default;
  /// Graph to use in round t. References stay valid until the next call.
  virtual const Graph& round_graph(std::size_t t) = 0;

  /// Cache epoch of round t: round_graph(t) is guaranteed identical for any
  /// two rounds with the same epoch, so derived per-graph data (the
  /// Metropolis-Hastings mixing weights) can be reused across an epoch
  /// instead of being recomputed O(n) every round. The conservative default
  /// (a fresh epoch per round) is always correct; providers that know their
  /// schedule override it.
  virtual std::size_t round_epoch(std::size_t t) const noexcept { return t; }
};

class StaticTopology final : public TopologyProvider {
 public:
  explicit StaticTopology(Graph g) : graph_(std::move(g)) {}
  const Graph& round_graph(std::size_t) override { return graph_; }
  std::size_t round_epoch(std::size_t) const noexcept override { return 0; }

 private:
  Graph graph_;
};

class DynamicRegularTopology final : public TopologyProvider {
 public:
  /// `rewire_every` is the churn period: a fresh random d-regular graph is
  /// drawn every that many rounds (1 = every round, the Figure 7 setting).
  DynamicRegularTopology(std::size_t n, std::size_t d, std::uint64_t seed,
                         std::size_t rewire_every = 1)
      : n_(n), d_(d), seed_(seed),
        rewire_every_(rewire_every == 0 ? 1 : rewire_every) {}
  const Graph& round_graph(std::size_t t) override;
  std::size_t round_epoch(std::size_t t) const noexcept override {
    return t / rewire_every_;
  }

 private:
  std::size_t n_;
  std::size_t d_;
  std::uint64_t seed_;
  std::size_t rewire_every_;
  std::size_t cached_epoch_ = static_cast<std::size_t>(-1);
  Graph cached_;
};

}  // namespace jwins::graph

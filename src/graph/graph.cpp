#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>
#include <queue>
#include <stdexcept>
#include <string>

namespace jwins::graph {

void Graph::add_edge(std::size_t u, std::size_t v) {
  if (u >= size() || v >= size()) {
    throw std::out_of_range("Graph::add_edge: node out of range");
  }
  if (u == v || has_edge(u, v)) return;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
}

void Graph::remove_edge(std::size_t u, std::size_t v) {
  if (u >= size() || v >= size()) return;
  auto& au = adjacency_[u];
  auto& av = adjacency_[v];
  au.erase(std::remove(au.begin(), au.end(), v), au.end());
  av.erase(std::remove(av.begin(), av.end(), u), av.end());
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  if (u >= size() || v >= size()) return false;
  const auto& adj = adjacency_[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

const std::vector<std::size_t>& Graph::neighbors(std::size_t u) const {
  if (u >= size()) throw std::out_of_range("Graph::neighbors: node out of range");
  return adjacency_[u];
}

std::size_t Graph::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

std::vector<std::pair<std::size_t, std::size_t>> Graph::edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(edge_count());
  for (std::size_t u = 0; u < size(); ++u) {
    for (const std::size_t v : adjacency_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Graph::connected() const {
  if (size() == 0) return true;
  std::vector<bool> seen(size(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == size();
}

bool Graph::is_regular(std::size_t d) const {
  for (std::size_t u = 0; u < size(); ++u) {
    if (degree(u) != d) return false;
  }
  return true;
}

namespace {

/// One Steger-Wormald pairing attempt: repeatedly connect two random
/// unpaired stubs, rejecting self-loops and duplicate edges. Returns nullopt
/// when the remaining stubs admit no legal pair (restart needed).
std::optional<Graph> pairing_attempt(std::size_t n, std::size_t d,
                                     std::mt19937& rng) {
  std::vector<std::size_t> stubs;
  stubs.reserve(n * d);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t j = 0; j < d; ++j) stubs.push_back(u);
  }
  Graph g(n);
  while (!stubs.empty()) {
    bool placed = false;
    // Random probes; fall back to an exhaustive legality check before
    // declaring the attempt stuck.
    for (int probe = 0; probe < 64 && !placed; ++probe) {
      std::uniform_int_distribution<std::size_t> pick(0, stubs.size() - 1);
      std::size_t i = pick(rng), j = pick(rng);
      if (i == j) continue;
      const std::size_t u = stubs[i], v = stubs[j];
      if (u == v || g.has_edge(u, v)) continue;
      g.add_edge(u, v);
      if (i < j) std::swap(i, j);
      stubs.erase(stubs.begin() + static_cast<std::ptrdiff_t>(i));
      stubs.erase(stubs.begin() + static_cast<std::ptrdiff_t>(j));
      placed = true;
    }
    if (placed) continue;
    bool any_legal = false;
    for (std::size_t i = 0; i < stubs.size() && !any_legal; ++i) {
      for (std::size_t j = i + 1; j < stubs.size() && !any_legal; ++j) {
        if (stubs[i] != stubs[j] && !g.has_edge(stubs[i], stubs[j])) {
          any_legal = true;
        }
      }
    }
    if (!any_legal) return std::nullopt;  // dead end: restart
  }
  return g;
}

/// Connects a d-regular simple graph by double edge swaps: an edge from one
/// component and an edge from another are rewired crosswise, preserving all
/// degrees and merging the components. Needed because e.g. random 2-regular
/// graphs are disconnected with high probability.
void connect_by_edge_swaps(Graph& g, std::mt19937& rng) {
  const std::size_t n = g.size();
  for (int guard = 0; guard < 10000 && !g.connected(); ++guard) {
    // Label components.
    std::vector<int> comp(n, -1);
    int components = 0;
    for (std::size_t start = 0; start < n; ++start) {
      if (comp[start] != -1) continue;
      const int c = components++;
      std::vector<std::size_t> stack{start};
      comp[start] = c;
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        for (std::size_t v : g.neighbors(u)) {
          if (comp[v] == -1) {
            comp[v] = c;
            stack.push_back(v);
          }
        }
      }
    }
    if (components <= 1) return;
    // Collect one random edge inside component 0 and one outside it, then
    // swap endpoints: (a,b),(c,e) -> (a,c),(b,e) where legal.
    std::vector<std::pair<std::size_t, std::size_t>> inside, outside;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v : g.neighbors(u)) {
        if (u < v) {
          (comp[u] == 0 ? inside : outside).emplace_back(u, v);
        }
      }
    }
    if (inside.empty() || outside.empty()) return;  // isolated vertices: give up
    std::uniform_int_distribution<std::size_t> pin(0, inside.size() - 1);
    std::uniform_int_distribution<std::size_t> pout(0, outside.size() - 1);
    const auto [a, b] = inside[pin(rng)];
    const auto [c, e] = outside[pout(rng)];
    if (g.has_edge(a, c) || g.has_edge(b, e)) continue;  // retry another pick
    g.remove_edge(a, b);
    g.remove_edge(c, e);
    g.add_edge(a, c);
    g.add_edge(b, e);
  }
}

}  // namespace

Graph random_regular(std::size_t n, std::size_t d, std::mt19937& rng) {
  if (d >= n) throw std::invalid_argument("random_regular requires d < n");
  if ((n * d) % 2 != 0) {
    throw std::invalid_argument("random_regular requires n*d even");
  }
  if (d == 0) return Graph(n);
  if (d == n - 1) return complete(n);
  constexpr int kMaxAttempts = 200;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::optional<Graph> g = pairing_attempt(n, d, rng);
    if (!g || !g->is_regular(d)) continue;
    // d == 1 is a perfect matching: connectivity is impossible for n > 2 and
    // the caller gets the matching as-is.
    if (d >= 2) connect_by_edge_swaps(*g, rng);
    if (d < 2 || g->connected()) return std::move(*g);
  }
  throw std::runtime_error("random_regular: failed to build a simple connected graph for n=" +
                           std::to_string(n) + " d=" + std::to_string(d));
}

Graph ring(std::size_t n, std::size_t k) {
  Graph g(n);
  if (n < 2) return g;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      g.add_edge(u, (u + j) % n);
    }
  }
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph torus(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t u = r * cols + c;
      g.add_edge(u, ((r + 1) % rows) * cols + c);
      g.add_edge(u, r * cols + (c + 1) % cols);
    }
  }
  return g;
}

Graph erdos_renyi(std::size_t n, double p, std::mt19937& rng) {
  constexpr int kMaxAttempts = 200;
  std::bernoulli_distribution coin(p);
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Graph g(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        if (coin(rng)) g.add_edge(u, v);
      }
    }
    if (g.connected()) return g;
  }
  throw std::runtime_error("erdos_renyi: failed to produce a connected graph");
}

MixingWeights metropolis_hastings(const Graph& g) {
  MixingWeights w;
  const std::size_t n = g.size();
  w.neighbor_weight.resize(n);
  w.self_weight.resize(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& nbrs = g.neighbors(i);
    double total = 0.0;
    w.neighbor_weight[i].reserve(nbrs.size());
    for (std::size_t j : nbrs) {
      const double wij =
          1.0 / (1.0 + static_cast<double>(std::max(g.degree(i), g.degree(j))));
      w.neighbor_weight[i].push_back(wij);
      total += wij;
    }
    w.self_weight[i] = 1.0 - total;
  }
  return w;
}

const Graph& DynamicRegularTopology::round_graph(std::size_t t) {
  const std::size_t epoch = t / rewire_every_;
  if (epoch != cached_epoch_) {
    // Seed deterministically per epoch so all nodes (and reruns) agree.
    std::mt19937 rng(static_cast<std::uint32_t>(
        seed_ ^ (0x9E3779B97F4A7C15ull * (epoch + 1))));
    cached_ = random_regular(n_, d_, rng);
    cached_epoch_ = epoch;
  }
  return cached_;
}

}  // namespace jwins::graph

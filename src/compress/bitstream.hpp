// Bit-granular I/O used by the Elias integer codes and the XOR float codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace jwins::compress {

/// Append-only bit sink; bits are packed MSB-first within each byte.
///
/// Hot-path reuse: clear() (or constructing from a recycled vector) keeps
/// the byte buffer's capacity, so one BitWriter per worker makes repeated
/// encodes allocation-free in steady state.
class BitWriter {
 public:
  BitWriter() = default;
  /// Adopts `storage` as the byte buffer (cleared, capacity kept).
  explicit BitWriter(std::vector<std::uint8_t> storage)
      : bytes_(std::move(storage)) {
    bytes_.clear();
  }

  /// Drops all written bits but keeps the heap capacity.
  void clear() noexcept {
    bytes_.clear();
    bit_count_ = 0;
  }

  /// Appends the lowest `count` bits of `bits`, most-significant first.
  void write_bits(std::uint64_t bits, unsigned count);

  /// Appends a single bit.
  void write_bit(bool bit);

  /// Number of bits written so far.
  std::size_t bit_count() const noexcept { return bit_count_; }

  /// Finalizes (pads the last byte with zeros) and returns the bytes.
  std::vector<std::uint8_t> finish() &&;

  /// Read-only view of the bytes written so far (last byte may be partial).
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// Sequential bit source over a byte buffer; MSB-first, mirroring BitWriter.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `count` bits (<= 64) as an unsigned value, MSB-first.
  std::uint64_t read_bits(unsigned count);

  /// Reads one bit.
  bool read_bit();

  /// Bits consumed so far.
  std::size_t position() const noexcept { return pos_; }

  /// Total bits available.
  std::size_t capacity() const noexcept { return bytes_.size() * 8; }

  bool exhausted() const noexcept { return pos_ >= capacity(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace jwins::compress

// QSGD-style stochastic quantization (Alistarh et al., NIPS 2017).
//
// The paper discusses quantization as the other major compression family
// (§II-B) and CHOCO-SGD is defined for arbitrary compressors; this module
// provides the standard s-level stochastic quantizer so CHOCO can run with
// quantization instead of TopK (an extension experiment — see
// bench_ablation_design).
//
// Encoding of x: ||x||_2 (one float), then per element a sign bit and an
// integer level in [0, s], stochastically rounded so the quantizer is
// unbiased: E[Q(x)] = x. Levels are bit-packed (ceil(log2(s+1)) bits each).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace jwins::compress {

struct QuantizedVector {
  float norm = 0.0f;          ///< L2 norm of the original vector
  std::uint32_t levels = 1;   ///< quantization levels s
  std::uint32_t count = 0;    ///< number of elements
  std::vector<std::uint8_t> packed;  ///< sign+level bitstream
};

/// Quantizes `values` to s levels with unbiased stochastic rounding.
QuantizedVector qsgd_quantize(std::span<const float> values,
                              std::uint32_t levels, std::mt19937_64& rng);

/// Reconstructs the (lossy) vector: sign * norm * level / s per element.
std::vector<float> qsgd_dequantize(const QuantizedVector& q);

/// Serialized wire size in bytes.
std::size_t qsgd_wire_size(const QuantizedVector& q) noexcept;

/// Serialization to/from a byte buffer (format: norm f32, levels u32,
/// count u32, packed bytes).
std::vector<std::uint8_t> qsgd_serialize(const QuantizedVector& q);
QuantizedVector qsgd_deserialize(std::span<const std::uint8_t> bytes);

}  // namespace jwins::compress

// QSGD-style stochastic quantization (Alistarh et al., NIPS 2017).
//
// The paper discusses quantization as the other major compression family
// (§II-B) and CHOCO-SGD is defined for arbitrary compressors; this module
// provides the standard s-level stochastic quantizer so CHOCO can run with
// quantization instead of TopK (an extension experiment — see
// bench_ablation_design).
//
// Encoding of x: ||x||_2 (one float), then per element a sign bit and an
// integer level in [0, s], stochastically rounded so the quantizer is
// unbiased: E[Q(x)] = x. Levels are bit-packed (ceil(log2(s+1)) bits each).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace jwins::compress {

struct QuantizedVector {
  float norm = 0.0f;          ///< L2 norm of the original vector
  std::uint32_t levels = 1;   ///< quantization levels s
  std::uint32_t count = 0;    ///< number of elements
  std::vector<std::uint8_t> packed;  ///< sign+level bitstream
};

/// Quantizes `values` to s levels with unbiased stochastic rounding. One
/// uniform draw per element; instantiated for std::mt19937_64 (tests,
/// benches) and the engine's counter-based core::CounterRng streams.
template <class Urbg>
QuantizedVector qsgd_quantize(std::span<const float> values,
                              std::uint32_t levels, Urbg& rng);

extern template QuantizedVector qsgd_quantize<std::mt19937_64>(
    std::span<const float>, std::uint32_t, std::mt19937_64&);
extern template QuantizedVector qsgd_quantize<core::CounterRng>(
    std::span<const float>, std::uint32_t, core::CounterRng&);

/// Reconstructs the (lossy) vector: sign * norm * level / s per element.
std::vector<float> qsgd_dequantize(const QuantizedVector& q);

/// Serialized wire size in bytes.
std::size_t qsgd_wire_size(const QuantizedVector& q) noexcept;

/// Serialization to/from a byte buffer (format: norm f32, levels u32,
/// count u32, packed bytes).
std::vector<std::uint8_t> qsgd_serialize(const QuantizedVector& q);
QuantizedVector qsgd_deserialize(std::span<const std::uint8_t> bytes);

}  // namespace jwins::compress

// QSGD-style stochastic quantization (Alistarh et al., NIPS 2017).
//
// The paper discusses quantization as the other major compression family
// (§II-B) and CHOCO-SGD is defined for arbitrary compressors; this module
// provides the standard s-level stochastic quantizer so CHOCO can run with
// quantization instead of TopK (an extension experiment — see
// bench_ablation_design).
//
// Encoding of x: ||x||_2 (one float), then per element a sign bit and an
// integer level in [0, s], stochastically rounded so the quantizer is
// unbiased: E[Q(x)] = x. Levels are bit-packed (ceil(log2(s+1)) bits each).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace jwins::net {
class ByteWriter;
}

namespace jwins::compress {

struct QuantizedVector {
  float norm = 0.0f;          ///< L2 norm of the original vector
  std::uint32_t levels = 1;   ///< quantization levels s
  std::uint32_t count = 0;    ///< number of elements
  std::vector<std::uint8_t> packed;  ///< sign+level bitstream
};

/// Quantizes `values` to s levels with unbiased stochastic rounding. One
/// uniform draw per element; instantiated for std::mt19937_64 (tests,
/// benches) and the engine's counter-based core::CounterRng streams.
template <class Urbg>
QuantizedVector qsgd_quantize(std::span<const float> values,
                              std::uint32_t levels, Urbg& rng);

extern template QuantizedVector qsgd_quantize<std::mt19937_64>(
    std::span<const float>, std::uint32_t, std::mt19937_64&);
extern template QuantizedVector qsgd_quantize<core::CounterRng>(
    std::span<const float>, std::uint32_t, core::CounterRng&);

/// Scratch variant: quantizes into `out`, reusing out.packed's capacity.
/// Bit-identical to qsgd_quantize(). Dispatches between the scalar
/// reference and the blocked fast path per core::KernelDispatch (identical
/// RNG draw sequence and packed bytes on both tiers).
template <class Urbg>
void qsgd_quantize_into(std::span<const float> values, std::uint32_t levels,
                        Urbg& rng, QuantizedVector& out);

extern template void qsgd_quantize_into<std::mt19937_64>(
    std::span<const float>, std::uint32_t, std::mt19937_64&, QuantizedVector&);
extern template void qsgd_quantize_into<core::CounterRng>(
    std::span<const float>, std::uint32_t, core::CounterRng&, QuantizedVector&);

/// Pinned golden reference: per-coordinate scale, round and emit.
template <class Urbg>
void qsgd_quantize_into_scalar(std::span<const float> values,
                               std::uint32_t levels, Urbg& rng,
                               QuantizedVector& out);

/// Fast path: scale/trunc/frac batched over contiguous blocks, RNG draw and
/// bit emission kept in reference order.
template <class Urbg>
void qsgd_quantize_into_fast(std::span<const float> values,
                             std::uint32_t levels, Urbg& rng,
                             QuantizedVector& out);

extern template void qsgd_quantize_into_scalar<std::mt19937_64>(
    std::span<const float>, std::uint32_t, std::mt19937_64&, QuantizedVector&);
extern template void qsgd_quantize_into_scalar<core::CounterRng>(
    std::span<const float>, std::uint32_t, core::CounterRng&, QuantizedVector&);
extern template void qsgd_quantize_into_fast<std::mt19937_64>(
    std::span<const float>, std::uint32_t, std::mt19937_64&, QuantizedVector&);
extern template void qsgd_quantize_into_fast<core::CounterRng>(
    std::span<const float>, std::uint32_t, core::CounterRng&, QuantizedVector&);

/// Non-owning view of a serialized quantized vector: the packed bitstream
/// stays in the (refcounted) message body, so decoding is zero-copy.
struct QuantizedView {
  float norm = 0.0f;
  std::uint32_t levels = 1;
  std::uint32_t count = 0;
  std::span<const std::uint8_t> packed;
};

/// Parses the qsgd wire format into a view over `bytes` (no copies).
/// The view is valid as long as `bytes` is.
QuantizedView qsgd_view(std::span<const std::uint8_t> bytes);

/// Reconstructs the (lossy) vector: sign * norm * level / s per element.
std::vector<float> qsgd_dequantize(const QuantizedVector& q);

/// Scratch variants: reconstruct into `out` (resized to count).
void qsgd_dequantize_into(const QuantizedVector& q, std::vector<float>& out);
void qsgd_dequantize_into(const QuantizedView& q, std::vector<float>& out);

/// Serialized wire size in bytes.
std::size_t qsgd_wire_size(const QuantizedVector& q) noexcept;

/// Serialization to/from a byte buffer (format: norm f32, levels u32,
/// count u32, packed bytes).
std::vector<std::uint8_t> qsgd_serialize(const QuantizedVector& q);
QuantizedVector qsgd_deserialize(std::span<const std::uint8_t> bytes);

/// Scratch variants: serialize appends to a caller-owned writer, deserialize
/// reuses `out`'s packed buffer.
void qsgd_serialize_into(const QuantizedVector& q, net::ByteWriter& writer);
void qsgd_deserialize_into(std::span<const std::uint8_t> bytes,
                           QuantizedVector& out);

}  // namespace jwins::compress

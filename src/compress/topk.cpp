#include "compress/topk.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/kernel_dispatch.hpp"

namespace jwins::compress {

namespace {

// Total order shared by the scalar reference and the fast path: magnitude
// descending, index ascending on ties. The tie rule makes the selected set
// unique, which is what lets the bucket-select kernel promise the *identical*
// index set (and what the 200-seed sweep in test_kernel_equivalence.cpp
// pins).
struct MagnitudeGreater {
  std::span<const float> values;
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    const float fa = std::fabs(values[a]);
    const float fb = std::fabs(values[b]);
    if (fa != fb) return fa > fb;
    return a < b;
  }
};

// Magnitude bits of a (non-NaN) float: IEEE-754 bit patterns of non-negative
// floats are monotone in value, so bucketing by the top 16 of the 31
// magnitude bits preserves the magnitude order between buckets exactly.
inline std::uint32_t magnitude_bucket(float v) noexcept {
  return (std::bit_cast<std::uint32_t>(v) & 0x7FFFFFFFu) >> 15;
}

// Below this size the histogram pass costs more than it saves; the fast
// entry point delegates to the scalar select (still bit-identical).
constexpr std::size_t kBucketSelectMinN = 4096;

}  // namespace

std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                        std::size_t k) {
  std::vector<std::uint32_t> order;
  topk_indices_into(values, k, order);
  return order;
}

void topk_indices_into_scalar(std::span<const float> values, std::size_t k,
                              std::vector<std::uint32_t>& out) {
  const std::size_t n = values.size();
  // `out` is the selection workspace: its capacity stays at n after the
  // first call, so reuse makes this allocation-free.
  out.resize(n);
  std::iota(out.begin(), out.end(), 0u);
  if (k >= n) {
    return;  // already ascending
  }
  std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                   out.end(), MagnitudeGreater{values});
  out.resize(k);
  std::sort(out.begin(), out.end());
}

void topk_indices_into_fast(std::span<const float> values, std::size_t k,
                            std::vector<std::uint32_t>& out) {
  const std::size_t n = values.size();
  if (k >= n) {
    out.resize(n);
    std::iota(out.begin(), out.end(), 0u);
    return;
  }
  if (n < kBucketSelectMinN || k == 0) {
    topk_indices_into_scalar(values, k, out);
    return;
  }
  // Pass 1: 65536-bucket histogram over the top magnitude bits. The
  // thread_local workspaces are fully rewritten per call, so the result does
  // not depend on prior calls (only the heap warm-up does).
  thread_local std::vector<std::uint32_t> hist;
  thread_local std::vector<std::uint32_t> boundary;
  hist.assign(std::size_t{1} << 16, 0u);
  for (std::size_t i = 0; i < n; ++i) ++hist[magnitude_bucket(values[i])];
  // Find the boundary bucket: the highest bucket where the cumulative count
  // (scanning from the largest magnitudes down) first reaches k.
  std::size_t cum = 0;
  std::uint32_t cut = static_cast<std::uint32_t>(hist.size());
  while (cut-- > 0) {
    cum += hist[cut];
    if (cum >= k) break;
  }
  const std::size_t above = cum - hist[cut];
  // Pass 2: everything strictly above the boundary bucket is selected;
  // boundary-bucket members are candidates for the remaining slots.
  out.clear();
  boundary.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t b = magnitude_bucket(values[i]);
    if (b > cut) {
      out.push_back(static_cast<std::uint32_t>(i));
    } else if (b == cut) {
      boundary.push_back(static_cast<std::uint32_t>(i));
    }
  }
  // Exact select on the boundary bucket only, under the same total order as
  // the scalar reference.
  const std::size_t need = k - above;
  if (need < boundary.size()) {
    std::nth_element(boundary.begin(),
                     boundary.begin() + static_cast<std::ptrdiff_t>(need),
                     boundary.end(), MagnitudeGreater{values});
    boundary.resize(need);
    std::sort(boundary.begin(), boundary.end());
  }
  // Both halves are ascending (collected in index order; the boundary
  // remainder re-sorted above), so a merge replaces the full k-sort.
  thread_local std::vector<std::uint32_t> merged;
  merged.resize(k);
  std::merge(out.begin(), out.end(), boundary.begin(), boundary.end(),
             merged.begin());
  out.assign(merged.begin(), merged.end());
}

void topk_indices_into(std::span<const float> values, std::size_t k,
                       std::vector<std::uint32_t>& out) {
  if (core::KernelDispatch::fast()) {
    topk_indices_into_fast(values, k, out);
  } else {
    topk_indices_into_scalar(values, k, out);
  }
}

namespace {

template <class Flags>
void floyd_sample(std::size_t n, std::size_t k, std::uint64_t seed,
                  std::vector<std::uint32_t>& out, Flags&& in_set) {
  if (k > n) k = n;
  std::mt19937_64 rng(seed);
  // Floyd's algorithm gives k distinct samples in O(k) draws.
  out.clear();
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::uniform_int_distribution<std::size_t> dist(0, j);
    std::size_t t = dist(rng);
    if (in_set[t]) t = j;
    in_set[t] = true;
    out.push_back(static_cast<std::uint32_t>(t));
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

std::vector<std::uint32_t> random_indices(std::size_t n, std::size_t k,
                                          std::uint64_t seed) {
  std::vector<std::uint32_t> picked;
  std::vector<bool> in_set(n, false);
  floyd_sample(n, k, seed, picked, in_set);
  return picked;
}

void random_indices_into(std::size_t n, std::size_t k, std::uint64_t seed,
                         std::vector<std::uint32_t>& out, core::Arena& arena) {
  const std::span<std::uint8_t> in_set = arena.alloc<std::uint8_t>(n);
  std::fill(in_set.begin(), in_set.end(), std::uint8_t{0});
  floyd_sample(n, k, seed, out, in_set);
}

std::vector<float> gather(std::span<const float> values,
                          std::span<const std::uint32_t> indices) {
  std::vector<float> out;
  gather_into(values, indices, out);
  return out;
}

void gather_into(std::span<const float> values,
                 std::span<const std::uint32_t> indices,
                 std::vector<float>& out) {
  out.resize(indices.size());
  gather_into(values, indices, std::span<float>(out));
}

void gather_into(std::span<const float> values,
                 std::span<const std::uint32_t> indices, std::span<float> out) {
  if (out.size() != indices.size()) {
    throw std::invalid_argument("gather_into: output size mismatch");
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::uint32_t idx = indices[i];
    if (idx >= values.size()) throw std::out_of_range("gather: index out of range");
    out[i] = values[idx];
  }
}

void scatter(std::span<float> dense, std::span<const std::uint32_t> indices,
             std::span<const float> sparse) {
  if (indices.size() != sparse.size()) {
    throw std::invalid_argument("scatter: indices/values size mismatch");
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= dense.size()) {
      throw std::out_of_range("scatter: index out of range");
    }
    dense[indices[i]] = sparse[i];
  }
}

}  // namespace jwins::compress

#include "compress/topk.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace jwins::compress {

std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                        std::size_t k) {
  std::vector<std::uint32_t> order;
  topk_indices_into(values, k, order);
  return order;
}

void topk_indices_into(std::span<const float> values, std::size_t k,
                       std::vector<std::uint32_t>& out) {
  const std::size_t n = values.size();
  // `out` is the selection workspace: its capacity stays at n after the
  // first call, so reuse makes this allocation-free.
  out.resize(n);
  std::iota(out.begin(), out.end(), 0u);
  if (k >= n) {
    return;  // already ascending
  }
  std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                   out.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return std::fabs(values[a]) > std::fabs(values[b]);
                   });
  out.resize(k);
  std::sort(out.begin(), out.end());
}

namespace {

template <class Flags>
void floyd_sample(std::size_t n, std::size_t k, std::uint64_t seed,
                  std::vector<std::uint32_t>& out, Flags&& in_set) {
  if (k > n) k = n;
  std::mt19937_64 rng(seed);
  // Floyd's algorithm gives k distinct samples in O(k) draws.
  out.clear();
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::uniform_int_distribution<std::size_t> dist(0, j);
    std::size_t t = dist(rng);
    if (in_set[t]) t = j;
    in_set[t] = true;
    out.push_back(static_cast<std::uint32_t>(t));
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

std::vector<std::uint32_t> random_indices(std::size_t n, std::size_t k,
                                          std::uint64_t seed) {
  std::vector<std::uint32_t> picked;
  std::vector<bool> in_set(n, false);
  floyd_sample(n, k, seed, picked, in_set);
  return picked;
}

void random_indices_into(std::size_t n, std::size_t k, std::uint64_t seed,
                         std::vector<std::uint32_t>& out, core::Arena& arena) {
  const std::span<std::uint8_t> in_set = arena.alloc<std::uint8_t>(n);
  std::fill(in_set.begin(), in_set.end(), std::uint8_t{0});
  floyd_sample(n, k, seed, out, in_set);
}

std::vector<float> gather(std::span<const float> values,
                          std::span<const std::uint32_t> indices) {
  std::vector<float> out;
  gather_into(values, indices, out);
  return out;
}

void gather_into(std::span<const float> values,
                 std::span<const std::uint32_t> indices,
                 std::vector<float>& out) {
  out.resize(indices.size());
  gather_into(values, indices, std::span<float>(out));
}

void gather_into(std::span<const float> values,
                 std::span<const std::uint32_t> indices, std::span<float> out) {
  if (out.size() != indices.size()) {
    throw std::invalid_argument("gather_into: output size mismatch");
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::uint32_t idx = indices[i];
    if (idx >= values.size()) throw std::out_of_range("gather: index out of range");
    out[i] = values[idx];
  }
}

void scatter(std::span<float> dense, std::span<const std::uint32_t> indices,
             std::span<const float> sparse) {
  if (indices.size() != sparse.size()) {
    throw std::invalid_argument("scatter: indices/values size mismatch");
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= dense.size()) {
      throw std::out_of_range("scatter: index out of range");
    }
    dense[indices[i]] = sparse[i];
  }
}

}  // namespace jwins::compress

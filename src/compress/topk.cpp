#include "compress/topk.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace jwins::compress {

std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                        std::size_t k) {
  const std::size_t n = values.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (k >= n) {
    return order;  // already ascending
  }
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return std::fabs(values[a]) > std::fabs(values[b]);
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<std::uint32_t> random_indices(std::size_t n, std::size_t k,
                                          std::uint64_t seed) {
  if (k > n) k = n;
  std::mt19937_64 rng(seed);
  // Floyd's algorithm gives k distinct samples in O(k) memory.
  std::vector<std::uint32_t> picked;
  picked.reserve(k);
  std::vector<bool> in_set(n, false);
  for (std::size_t j = n - k; j < n; ++j) {
    std::uniform_int_distribution<std::size_t> dist(0, j);
    std::size_t t = dist(rng);
    if (in_set[t]) t = j;
    in_set[t] = true;
    picked.push_back(static_cast<std::uint32_t>(t));
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::vector<float> gather(std::span<const float> values,
                          std::span<const std::uint32_t> indices) {
  std::vector<float> out;
  out.reserve(indices.size());
  for (std::uint32_t idx : indices) {
    if (idx >= values.size()) throw std::out_of_range("gather: index out of range");
    out.push_back(values[idx]);
  }
  return out;
}

void scatter(std::span<float> dense, std::span<const std::uint32_t> indices,
             std::span<const float> sparse) {
  if (indices.size() != sparse.size()) {
    throw std::invalid_argument("scatter: indices/values size mismatch");
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= dense.size()) {
      throw std::out_of_range("scatter: index out of range");
    }
    dense[indices[i]] = sparse[i];
  }
}

}  // namespace jwins::compress

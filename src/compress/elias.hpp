// Elias universal integer codes (Elias 1975) and the index-gap coding JWINS
// uses for sparsification metadata (paper §III-C): sorted TopK indices are
// turned into a difference (gap) array and each gap+1 is Elias-gamma coded.
// This is the same construction QSGD uses and is what yields the paper's
// ~9.9x metadata compression (Figure 9).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitstream.hpp"

namespace jwins::compress {

/// Elias gamma code of `value` (value must be >= 1).
void elias_gamma_encode(BitWriter& writer, std::uint64_t value);

/// Decodes one Elias gamma codeword.
std::uint64_t elias_gamma_decode(BitReader& reader);

/// Elias delta code (gamma-coded length prefix); better for large values.
void elias_delta_encode(BitWriter& writer, std::uint64_t value);
std::uint64_t elias_delta_decode(BitReader& reader);

/// Encodes a strictly-increasing index array as Elias-gamma coded gaps.
/// The first element is encoded as index+1, subsequent as (diff) which is
/// >= 1 by strict monotonicity. Returns the compressed bytes.
std::vector<std::uint8_t> encode_index_gaps(std::span<const std::uint32_t> sorted_indices);

/// Scratch variant: appends the gap code to `writer` (not cleared), so a
/// reused BitWriter makes the encode allocation-free in steady state.
void encode_index_gaps(std::span<const std::uint32_t> sorted_indices,
                       BitWriter& writer);

/// Inverse of encode_index_gaps. `count` is the number of indices encoded.
std::vector<std::uint32_t> decode_index_gaps(std::span<const std::uint8_t> bytes,
                                             std::size_t count);

/// Scratch variant: decodes into `out` (cleared first, capacity kept).
void decode_index_gaps_into(std::span<const std::uint8_t> bytes,
                            std::size_t count,
                            std::vector<std::uint32_t>& out);

/// Size in bytes that encode_index_gaps would produce (without building it).
std::size_t index_gaps_encoded_size(std::span<const std::uint32_t> sorted_indices);

}  // namespace jwins::compress

#include "compress/quantize.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "core/kernel_dispatch.hpp"
#include "net/serializer.hpp"

namespace jwins::compress {

namespace {

unsigned bits_per_level(std::uint32_t levels) noexcept {
  // A level index lies in [0, s]; add one sign bit separately.
  return static_cast<unsigned>(std::bit_width(levels));
}

// Shared norm prologue: the sequential double accumulation is part of the
// pinned reference (vectorizing it would change the summation order).
BitWriter quantize_prologue(std::span<const float> values,
                            std::uint32_t levels, QuantizedVector& out) {
  if (levels == 0) throw std::invalid_argument("qsgd_quantize: levels must be >= 1");
  out.levels = levels;
  out.count = static_cast<std::uint32_t>(values.size());
  double norm_sq = 0.0;
  for (float v : values) norm_sq += static_cast<double>(v) * v;
  out.norm = static_cast<float>(std::sqrt(norm_sq));
  return BitWriter(std::move(out.packed));  // reuse the packed capacity
}

template <class Urbg>
void qsgd_quantize_into_scalar_impl(std::span<const float> values,
                                    std::uint32_t levels, Urbg& rng,
                                    QuantizedVector& out) {
  BitWriter writer = quantize_prologue(values, levels, out);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const unsigned level_bits = bits_per_level(levels);
  for (float v : values) {
    writer.write_bit(v < 0.0f);
    std::uint32_t level = 0;
    if (out.norm > 0.0f) {
      const double scaled =
          std::fabs(v) / out.norm * static_cast<double>(levels);
      const auto lower = static_cast<std::uint32_t>(scaled);
      const double frac = scaled - lower;
      level = lower + (u01(rng) < frac ? 1u : 0u);  // unbiased rounding
      if (level > levels) level = levels;
    }
    writer.write_bits(level, level_bits);
  }
  out.packed = std::move(writer).finish();
}

template <class Urbg>
void qsgd_quantize_into_fast_impl(std::span<const float> values,
                                  std::uint32_t levels, Urbg& rng,
                                  QuantizedVector& out) {
  BitWriter writer = quantize_prologue(values, levels, out);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const unsigned level_bits = bits_per_level(levels);
  if (!(out.norm > 0.0f)) {
    // Degenerate all-zero vector: no scaling and no RNG draws, matching the
    // scalar reference exactly (sign bit then a zero level, fused into one
    // MSB-first write).
    for (float v : values) {
      writer.write_bits(static_cast<std::uint64_t>(v < 0.0f) << level_bits,
                        1 + level_bits);
    }
    out.packed = std::move(writer).finish();
    return;
  }
  // Blocked rounding: the scale/trunc/frac arithmetic (the vectorizable
  // part) runs over contiguous blocks; the RNG draw and bit emission stay
  // sequential so the per-coordinate draw order is exactly the reference's.
  constexpr std::size_t kBlock = 256;
  std::uint32_t lower[kBlock];
  double frac[kBlock];
  const float norm = out.norm;
  std::size_t i = 0;
  while (i < values.size()) {
    const std::size_t len = std::min(kBlock, values.size() - i);
    const float* v = values.data() + i;
    for (std::size_t j = 0; j < len; ++j) {
      // Same expression shape as the reference: float |v|/norm, widened to
      // double for the levels product.
      const double scaled =
          std::fabs(v[j]) / norm * static_cast<double>(levels);
      const auto lo = static_cast<std::uint32_t>(scaled);
      lower[j] = lo;
      frac[j] = scaled - lo;
    }
    for (std::size_t j = 0; j < len; ++j) {
      std::uint32_t level = lower[j] + (u01(rng) < frac[j] ? 1u : 0u);
      if (level > levels) level = levels;
      // Sign bit then level bits — one MSB-first write, identical layout.
      writer.write_bits(
          (static_cast<std::uint64_t>(v[j] < 0.0f) << level_bits) | level,
          1 + level_bits);
    }
    i += len;
  }
  out.packed = std::move(writer).finish();
}

}  // namespace

template <class Urbg>
void qsgd_quantize_into(std::span<const float> values, std::uint32_t levels,
                        Urbg& rng, QuantizedVector& out) {
  if (core::KernelDispatch::fast()) {
    qsgd_quantize_into_fast_impl(values, levels, rng, out);
  } else {
    qsgd_quantize_into_scalar_impl(values, levels, rng, out);
  }
}

template <class Urbg>
void qsgd_quantize_into_scalar(std::span<const float> values,
                               std::uint32_t levels, Urbg& rng,
                               QuantizedVector& out) {
  qsgd_quantize_into_scalar_impl(values, levels, rng, out);
}

template <class Urbg>
void qsgd_quantize_into_fast(std::span<const float> values,
                             std::uint32_t levels, Urbg& rng,
                             QuantizedVector& out) {
  qsgd_quantize_into_fast_impl(values, levels, rng, out);
}

template void qsgd_quantize_into_scalar<std::mt19937_64>(std::span<const float>,
                                                         std::uint32_t,
                                                         std::mt19937_64&,
                                                         QuantizedVector&);
template void qsgd_quantize_into_scalar<core::CounterRng>(
    std::span<const float>, std::uint32_t, core::CounterRng&,
    QuantizedVector&);
template void qsgd_quantize_into_fast<std::mt19937_64>(std::span<const float>,
                                                       std::uint32_t,
                                                       std::mt19937_64&,
                                                       QuantizedVector&);
template void qsgd_quantize_into_fast<core::CounterRng>(std::span<const float>,
                                                        std::uint32_t,
                                                        core::CounterRng&,
                                                        QuantizedVector&);

template <class Urbg>
QuantizedVector qsgd_quantize(std::span<const float> values,
                              std::uint32_t levels, Urbg& rng) {
  QuantizedVector q;
  qsgd_quantize_into(values, levels, rng, q);
  return q;
}

template QuantizedVector qsgd_quantize<std::mt19937_64>(std::span<const float>,
                                                        std::uint32_t,
                                                        std::mt19937_64&);
template QuantizedVector qsgd_quantize<core::CounterRng>(std::span<const float>,
                                                         std::uint32_t,
                                                         core::CounterRng&);
template void qsgd_quantize_into<std::mt19937_64>(std::span<const float>,
                                                  std::uint32_t,
                                                  std::mt19937_64&,
                                                  QuantizedVector&);
template void qsgd_quantize_into<core::CounterRng>(std::span<const float>,
                                                   std::uint32_t,
                                                   core::CounterRng&,
                                                   QuantizedVector&);

std::vector<float> qsgd_dequantize(const QuantizedVector& q) {
  std::vector<float> out;
  qsgd_dequantize_into(q, out);
  return out;
}

namespace {

void dequantize_packed(float norm, std::uint32_t levels, std::uint32_t count,
                       std::span<const std::uint8_t> packed,
                       std::vector<float>& out) {
  out.assign(count, 0.0f);
  if (count == 0) return;
  BitReader reader(packed);
  const unsigned level_bits = bits_per_level(levels);
  const float scale = norm / static_cast<float>(levels);
  for (std::uint32_t i = 0; i < count; ++i) {
    const bool negative = reader.read_bit();
    const auto level = static_cast<float>(reader.read_bits(level_bits));
    out[i] = (negative ? -1.0f : 1.0f) * scale * level;
  }
}

}  // namespace

void qsgd_dequantize_into(const QuantizedVector& q, std::vector<float>& out) {
  dequantize_packed(q.norm, q.levels, q.count, q.packed, out);
}

void qsgd_dequantize_into(const QuantizedView& q, std::vector<float>& out) {
  dequantize_packed(q.norm, q.levels, q.count, q.packed, out);
}

QuantizedView qsgd_view(std::span<const std::uint8_t> bytes) {
  net::ByteReader reader(bytes);
  QuantizedView q;
  q.norm = reader.read_f32();
  q.levels = reader.read_u32();
  q.count = reader.read_u32();
  q.packed = reader.view_bytes();
  if (q.levels == 0) throw std::runtime_error("qsgd_view: zero levels");
  return q;
}

std::size_t qsgd_wire_size(const QuantizedVector& q) noexcept {
  // norm + levels + count + length-prefixed packed blob.
  return sizeof(float) + 3 * sizeof(std::uint32_t) + q.packed.size();
}

std::vector<std::uint8_t> qsgd_serialize(const QuantizedVector& q) {
  net::ByteWriter writer;
  qsgd_serialize_into(q, writer);
  return std::move(writer).take();
}

void qsgd_serialize_into(const QuantizedVector& q, net::ByteWriter& writer) {
  writer.write_f32(q.norm);
  writer.write_u32(q.levels);
  writer.write_u32(q.count);
  writer.write_bytes(q.packed);
}

QuantizedVector qsgd_deserialize(std::span<const std::uint8_t> bytes) {
  QuantizedVector q;
  qsgd_deserialize_into(bytes, q);
  return q;
}

void qsgd_deserialize_into(std::span<const std::uint8_t> bytes,
                           QuantizedVector& out) {
  net::ByteReader reader(bytes);
  out.norm = reader.read_f32();
  out.levels = reader.read_u32();
  out.count = reader.read_u32();
  const std::span<const std::uint8_t> packed = reader.view_bytes();
  out.packed.assign(packed.begin(), packed.end());
  if (out.levels == 0) throw std::runtime_error("qsgd_deserialize: zero levels");
}

}  // namespace jwins::compress

#include "compress/quantize.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "net/serializer.hpp"

namespace jwins::compress {

namespace {

unsigned bits_per_level(std::uint32_t levels) noexcept {
  // A level index lies in [0, s]; add one sign bit separately.
  return static_cast<unsigned>(std::bit_width(levels));
}

}  // namespace

template <class Urbg>
void qsgd_quantize_into(std::span<const float> values, std::uint32_t levels,
                        Urbg& rng, QuantizedVector& out) {
  if (levels == 0) throw std::invalid_argument("qsgd_quantize: levels must be >= 1");
  out.levels = levels;
  out.count = static_cast<std::uint32_t>(values.size());
  double norm_sq = 0.0;
  for (float v : values) norm_sq += static_cast<double>(v) * v;
  out.norm = static_cast<float>(std::sqrt(norm_sq));
  BitWriter writer(std::move(out.packed));  // reuse the packed capacity
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const unsigned level_bits = bits_per_level(levels);
  for (float v : values) {
    writer.write_bit(v < 0.0f);
    std::uint32_t level = 0;
    if (out.norm > 0.0f) {
      const double scaled =
          std::fabs(v) / out.norm * static_cast<double>(levels);
      const auto lower = static_cast<std::uint32_t>(scaled);
      const double frac = scaled - lower;
      level = lower + (u01(rng) < frac ? 1u : 0u);  // unbiased rounding
      if (level > levels) level = levels;
    }
    writer.write_bits(level, level_bits);
  }
  out.packed = std::move(writer).finish();
}

template <class Urbg>
QuantizedVector qsgd_quantize(std::span<const float> values,
                              std::uint32_t levels, Urbg& rng) {
  QuantizedVector q;
  qsgd_quantize_into(values, levels, rng, q);
  return q;
}

template QuantizedVector qsgd_quantize<std::mt19937_64>(std::span<const float>,
                                                        std::uint32_t,
                                                        std::mt19937_64&);
template QuantizedVector qsgd_quantize<core::CounterRng>(std::span<const float>,
                                                         std::uint32_t,
                                                         core::CounterRng&);
template void qsgd_quantize_into<std::mt19937_64>(std::span<const float>,
                                                  std::uint32_t,
                                                  std::mt19937_64&,
                                                  QuantizedVector&);
template void qsgd_quantize_into<core::CounterRng>(std::span<const float>,
                                                   std::uint32_t,
                                                   core::CounterRng&,
                                                   QuantizedVector&);

std::vector<float> qsgd_dequantize(const QuantizedVector& q) {
  std::vector<float> out;
  qsgd_dequantize_into(q, out);
  return out;
}

namespace {

void dequantize_packed(float norm, std::uint32_t levels, std::uint32_t count,
                       std::span<const std::uint8_t> packed,
                       std::vector<float>& out) {
  out.assign(count, 0.0f);
  if (count == 0) return;
  BitReader reader(packed);
  const unsigned level_bits = bits_per_level(levels);
  const float scale = norm / static_cast<float>(levels);
  for (std::uint32_t i = 0; i < count; ++i) {
    const bool negative = reader.read_bit();
    const auto level = static_cast<float>(reader.read_bits(level_bits));
    out[i] = (negative ? -1.0f : 1.0f) * scale * level;
  }
}

}  // namespace

void qsgd_dequantize_into(const QuantizedVector& q, std::vector<float>& out) {
  dequantize_packed(q.norm, q.levels, q.count, q.packed, out);
}

void qsgd_dequantize_into(const QuantizedView& q, std::vector<float>& out) {
  dequantize_packed(q.norm, q.levels, q.count, q.packed, out);
}

QuantizedView qsgd_view(std::span<const std::uint8_t> bytes) {
  net::ByteReader reader(bytes);
  QuantizedView q;
  q.norm = reader.read_f32();
  q.levels = reader.read_u32();
  q.count = reader.read_u32();
  q.packed = reader.view_bytes();
  if (q.levels == 0) throw std::runtime_error("qsgd_view: zero levels");
  return q;
}

std::size_t qsgd_wire_size(const QuantizedVector& q) noexcept {
  // norm + levels + count + length-prefixed packed blob.
  return sizeof(float) + 3 * sizeof(std::uint32_t) + q.packed.size();
}

std::vector<std::uint8_t> qsgd_serialize(const QuantizedVector& q) {
  net::ByteWriter writer;
  qsgd_serialize_into(q, writer);
  return std::move(writer).take();
}

void qsgd_serialize_into(const QuantizedVector& q, net::ByteWriter& writer) {
  writer.write_f32(q.norm);
  writer.write_u32(q.levels);
  writer.write_u32(q.count);
  writer.write_bytes(q.packed);
}

QuantizedVector qsgd_deserialize(std::span<const std::uint8_t> bytes) {
  QuantizedVector q;
  qsgd_deserialize_into(bytes, q);
  return q;
}

void qsgd_deserialize_into(std::span<const std::uint8_t> bytes,
                           QuantizedVector& out) {
  net::ByteReader reader(bytes);
  out.norm = reader.read_f32();
  out.levels = reader.read_u32();
  out.count = reader.read_u32();
  const std::span<const std::uint8_t> packed = reader.view_bytes();
  out.packed.assign(packed.begin(), packed.end());
  if (out.levels == 0) throw std::runtime_error("qsgd_deserialize: zero levels");
}

}  // namespace jwins::compress

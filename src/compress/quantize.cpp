#include "compress/quantize.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "net/serializer.hpp"

namespace jwins::compress {

namespace {

unsigned bits_per_level(std::uint32_t levels) noexcept {
  // A level index lies in [0, s]; add one sign bit separately.
  return static_cast<unsigned>(std::bit_width(levels));
}

}  // namespace

template <class Urbg>
QuantizedVector qsgd_quantize(std::span<const float> values,
                              std::uint32_t levels, Urbg& rng) {
  if (levels == 0) throw std::invalid_argument("qsgd_quantize: levels must be >= 1");
  QuantizedVector q;
  q.levels = levels;
  q.count = static_cast<std::uint32_t>(values.size());
  double norm_sq = 0.0;
  for (float v : values) norm_sq += static_cast<double>(v) * v;
  q.norm = static_cast<float>(std::sqrt(norm_sq));
  BitWriter writer;
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const unsigned level_bits = bits_per_level(levels);
  for (float v : values) {
    writer.write_bit(v < 0.0f);
    std::uint32_t level = 0;
    if (q.norm > 0.0f) {
      const double scaled =
          std::fabs(v) / q.norm * static_cast<double>(levels);
      const auto lower = static_cast<std::uint32_t>(scaled);
      const double frac = scaled - lower;
      level = lower + (u01(rng) < frac ? 1u : 0u);  // unbiased rounding
      if (level > levels) level = levels;
    }
    writer.write_bits(level, level_bits);
  }
  q.packed = std::move(writer).finish();
  return q;
}

template QuantizedVector qsgd_quantize<std::mt19937_64>(std::span<const float>,
                                                        std::uint32_t,
                                                        std::mt19937_64&);
template QuantizedVector qsgd_quantize<core::CounterRng>(std::span<const float>,
                                                         std::uint32_t,
                                                         core::CounterRng&);

std::vector<float> qsgd_dequantize(const QuantizedVector& q) {
  std::vector<float> out(q.count, 0.0f);
  if (q.count == 0) return out;
  BitReader reader(q.packed);
  const unsigned level_bits = bits_per_level(q.levels);
  const float scale = q.norm / static_cast<float>(q.levels);
  for (std::uint32_t i = 0; i < q.count; ++i) {
    const bool negative = reader.read_bit();
    const auto level = static_cast<float>(reader.read_bits(level_bits));
    out[i] = (negative ? -1.0f : 1.0f) * scale * level;
  }
  return out;
}

std::size_t qsgd_wire_size(const QuantizedVector& q) noexcept {
  // norm + levels + count + length-prefixed packed blob.
  return sizeof(float) + 3 * sizeof(std::uint32_t) + q.packed.size();
}

std::vector<std::uint8_t> qsgd_serialize(const QuantizedVector& q) {
  net::ByteWriter writer;
  writer.write_f32(q.norm);
  writer.write_u32(q.levels);
  writer.write_u32(q.count);
  writer.write_bytes(q.packed);
  return std::move(writer).take();
}

QuantizedVector qsgd_deserialize(std::span<const std::uint8_t> bytes) {
  net::ByteReader reader(bytes);
  QuantizedVector q;
  q.norm = reader.read_f32();
  q.levels = reader.read_u32();
  q.count = reader.read_u32();
  q.packed = reader.read_bytes();
  if (q.levels == 0) throw std::runtime_error("qsgd_deserialize: zero levels");
  return q;
}

}  // namespace jwins::compress

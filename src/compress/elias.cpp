#include "compress/elias.hpp"

#include <bit>
#include <stdexcept>

namespace jwins::compress {

namespace {

unsigned bit_width_u64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::bit_width(v));
}

}  // namespace

void elias_gamma_encode(BitWriter& writer, std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("elias gamma cannot encode 0");
  const unsigned n = bit_width_u64(value);  // value in [2^(n-1), 2^n)
  // n-1 zero bits, then the n bits of the value (leading 1 included).
  for (unsigned i = 0; i + 1 < n; ++i) writer.write_bit(false);
  writer.write_bits(value, n);
}

std::uint64_t elias_gamma_decode(BitReader& reader) {
  unsigned zeros = 0;
  while (!reader.read_bit()) {
    if (++zeros > 63) throw std::runtime_error("elias gamma: malformed codeword");
  }
  std::uint64_t value = 1;
  if (zeros > 0) {
    value = (value << zeros) | reader.read_bits(zeros);
  }
  return value;
}

void elias_delta_encode(BitWriter& writer, std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("elias delta cannot encode 0");
  const unsigned n = bit_width_u64(value);
  elias_gamma_encode(writer, n);
  if (n > 1) writer.write_bits(value & ((std::uint64_t{1} << (n - 1)) - 1), n - 1);
}

std::uint64_t elias_delta_decode(BitReader& reader) {
  const auto n = static_cast<unsigned>(elias_gamma_decode(reader));
  if (n == 0 || n > 64) throw std::runtime_error("elias delta: malformed length");
  std::uint64_t value = std::uint64_t{1} << (n - 1);
  if (n > 1) value |= reader.read_bits(n - 1);
  return value;
}

std::vector<std::uint8_t> encode_index_gaps(
    std::span<const std::uint32_t> sorted_indices) {
  BitWriter writer;
  encode_index_gaps(sorted_indices, writer);
  return std::move(writer).finish();
}

void encode_index_gaps(std::span<const std::uint32_t> sorted_indices,
                       BitWriter& writer) {
  std::uint32_t prev = 0;
  bool first = true;
  for (std::uint32_t idx : sorted_indices) {
    std::uint64_t gap;
    if (first) {
      gap = std::uint64_t{idx} + 1;  // first index may be 0; shift by one
      first = false;
    } else {
      if (idx <= prev) {
        throw std::invalid_argument(
            "encode_index_gaps requires strictly increasing indices");
      }
      gap = idx - prev;
    }
    elias_gamma_encode(writer, gap);
    prev = idx;
  }
}

std::vector<std::uint32_t> decode_index_gaps(std::span<const std::uint8_t> bytes,
                                             std::size_t count) {
  std::vector<std::uint32_t> indices;
  decode_index_gaps_into(bytes, count, indices);
  return indices;
}

void decode_index_gaps_into(std::span<const std::uint8_t> bytes,
                            std::size_t count,
                            std::vector<std::uint32_t>& out) {
  BitReader reader(bytes);
  out.clear();
  out.reserve(count);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t gap = elias_gamma_decode(reader);
    const std::uint64_t idx = (i == 0) ? gap - 1 : prev + gap;
    if (idx > 0xFFFFFFFFull) throw std::runtime_error("decoded index overflows u32");
    out.push_back(static_cast<std::uint32_t>(idx));
    prev = idx;
  }
}

std::size_t index_gaps_encoded_size(std::span<const std::uint32_t> sorted_indices) {
  std::size_t bits = 0;
  std::uint32_t prev = 0;
  bool first = true;
  for (std::uint32_t idx : sorted_indices) {
    const std::uint64_t gap = first ? std::uint64_t{idx} + 1 : std::uint64_t{idx - prev};
    first = false;
    bits += 2u * bit_width_u64(gap) - 1u;
    prev = idx;
  }
  return (bits + 7) / 8;
}

}  // namespace jwins::compress

#include "compress/bitstream.hpp"

namespace jwins::compress {

void BitWriter::write_bits(std::uint64_t bits, unsigned count) {
  if (count > 64) throw std::invalid_argument("write_bits: count > 64");
  if (count == 0) return;
  if (count < 64) bits &= (std::uint64_t{1} << count) - 1;
  // Byte-chunked MSB-first packing: identical layout to the bit-at-a-time
  // loop, ~8x fewer buffer touches.
  const std::size_t total = bit_count_ + count;
  bytes_.resize((total + 7) / 8, 0);
  std::size_t byte_index = bit_count_ / 8;
  unsigned used = static_cast<unsigned>(bit_count_ % 8);
  unsigned remaining = count;
  while (remaining > 0) {
    const unsigned room = 8 - used;
    const unsigned take = remaining < room ? remaining : room;
    const auto chunk = static_cast<std::uint8_t>((bits >> (remaining - take)) &
                                                 ((1u << take) - 1u));
    bytes_[byte_index] |= static_cast<std::uint8_t>(chunk << (room - take));
    remaining -= take;
    used += take;
    if (used == 8) {
      used = 0;
      ++byte_index;
    }
  }
  bit_count_ = total;
}

void BitWriter::write_bit(bool bit) {
  const std::size_t byte_index = bit_count_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(bit_count_ % 8);
  if (byte_index >= bytes_.size()) bytes_.push_back(0);
  if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(1u << bit_index);
  ++bit_count_;
}

std::vector<std::uint8_t> BitWriter::finish() && { return std::move(bytes_); }

std::uint64_t BitReader::read_bits(unsigned count) {
  if (count > 64) throw std::invalid_argument("read_bits: count > 64");
  std::uint64_t value = 0;
  unsigned remaining = count;
  while (remaining > 0) {
    if (pos_ >= capacity()) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
    const std::size_t byte_index = pos_ / 8;
    const unsigned off = static_cast<unsigned>(pos_ % 8);
    const unsigned avail = 8 - off;
    const unsigned take = remaining < avail ? remaining : avail;
    const auto chunk = static_cast<std::uint8_t>(
        (bytes_[byte_index] >> (avail - take)) & ((1u << take) - 1u));
    value = (value << take) | chunk;
    pos_ += take;
    remaining -= take;
  }
  return value;
}

bool BitReader::read_bit() {
  if (pos_ >= capacity()) {
    throw std::out_of_range("BitReader: read past end of stream");
  }
  const std::size_t byte_index = pos_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(pos_ % 8);
  ++pos_;
  return (bytes_[byte_index] >> bit_index) & 1u;
}

}  // namespace jwins::compress

#include "compress/bitstream.hpp"

namespace jwins::compress {

void BitWriter::write_bits(std::uint64_t bits, unsigned count) {
  if (count > 64) throw std::invalid_argument("write_bits: count > 64");
  for (unsigned i = count; i-- > 0;) {
    write_bit((bits >> i) & 1u);
  }
}

void BitWriter::write_bit(bool bit) {
  const std::size_t byte_index = bit_count_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(bit_count_ % 8);
  if (byte_index >= bytes_.size()) bytes_.push_back(0);
  if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(1u << bit_index);
  ++bit_count_;
}

std::vector<std::uint8_t> BitWriter::finish() && { return std::move(bytes_); }

std::uint64_t BitReader::read_bits(unsigned count) {
  if (count > 64) throw std::invalid_argument("read_bits: count > 64");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(read_bit());
  }
  return value;
}

bool BitReader::read_bit() {
  if (pos_ >= capacity()) {
    throw std::out_of_range("BitReader: read past end of stream");
  }
  const std::size_t byte_index = pos_ / 8;
  const unsigned bit_index = 7 - static_cast<unsigned>(pos_ % 8);
  ++pos_;
  return (bytes_[byte_index] >> bit_index) & 1u;
}

}  // namespace jwins::compress

#include "compress/float_codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "core/kernel_dispatch.hpp"

namespace jwins::compress {

namespace {

std::uint32_t float_bits(float v) noexcept {
  return std::bit_cast<std::uint32_t>(v);
}

float bits_float(std::uint32_t b) noexcept { return std::bit_cast<float>(b); }

// Shared encode loop: emits to `writer` if non-null, always tallies bits.
std::size_t encode_stream(std::span<const float> values, BitWriter* writer) {
  std::size_t bits = 0;
  auto emit_bit = [&](bool b) {
    if (writer) writer->write_bit(b);
    ++bits;
  };
  auto emit_bits = [&](std::uint64_t v, unsigned n) {
    if (writer) writer->write_bits(v, n);
    bits += n;
  };

  if (values.empty()) return 0;
  emit_bits(float_bits(values[0]), 32);
  std::uint32_t prev = float_bits(values[0]);
  unsigned block_lead = 0xFF;  // invalid: forces a new block header first time
  unsigned block_len = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::uint32_t cur = float_bits(values[i]);
    const std::uint32_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      emit_bit(false);
      continue;
    }
    emit_bit(true);
    const unsigned lead = std::min(31, std::countl_zero(x));
    const unsigned trail = static_cast<unsigned>(std::countr_zero(x));
    const unsigned len = 32 - lead - trail;
    const bool fits_block =
        block_lead != 0xFF && lead >= block_lead &&
        (32 - lead - len) >= (32 - block_lead - block_len);
    if (fits_block) {
      emit_bit(false);
      emit_bits(x >> (32 - block_lead - block_len), block_len);
    } else {
      emit_bit(true);
      emit_bits(lead, 5);
      emit_bits(len - 1, 5);
      emit_bits(x >> trail, len);
      block_lead = lead;
      block_len = len;
    }
  }
  return bits;
}

// Fast encoder: the XOR / leading-zero / trailing-zero scan runs as a fused
// block pass, and the per-value control+payload bits are emitted with one
// combined write_bits call per value. Decisions and bit layout are exactly
// the reference's, so the output bytes are identical.
void encode_stream_fast(std::span<const float> values, BitWriter& writer) {
  if (values.empty()) return;
  writer.write_bits(float_bits(values[0]), 32);
  unsigned block_lead = 0xFF;
  unsigned block_len = 0;
  constexpr std::size_t kBlock = 256;
  std::uint32_t xors[kBlock];
  std::uint8_t leads[kBlock];
  std::uint8_t trails[kBlock];
  std::size_t i = 1;
  while (i < values.size()) {
    const std::size_t len = std::min(kBlock, values.size() - i);
    // Fused pass: XOR with predecessor plus both zero counts, branch-free.
    for (std::size_t j = 0; j < len; ++j) {
      const std::uint32_t x =
          float_bits(values[i + j]) ^ float_bits(values[i + j - 1]);
      xors[j] = x;
      leads[j] = static_cast<std::uint8_t>(std::min(31, std::countl_zero(x)));
      trails[j] = static_cast<std::uint8_t>(std::countr_zero(x));
    }
    for (std::size_t j = 0; j < len; ++j) {
      const std::uint32_t x = xors[j];
      if (x == 0) {
        writer.write_bit(false);
        continue;
      }
      const unsigned lead = leads[j];
      const unsigned trail = trails[j];
      const unsigned vlen = 32 - lead - trail;
      const bool fits_block =
          block_lead != 0xFF && lead >= block_lead &&
          (32 - lead - vlen) >= (32 - block_lead - block_len);
      if (fits_block) {
        // Control bits '1','0' then block_len payload bits, as one write.
        const std::uint64_t payload = x >> (32 - block_lead - block_len);
        writer.write_bits((std::uint64_t{0b10} << block_len) | payload,
                          2 + block_len);
      } else {
        // Control '1','1', lead(5), vlen-1(5), then vlen payload bits.
        const std::uint64_t header =
            (std::uint64_t{0b11} << 10) | (std::uint64_t{lead} << 5) |
            (vlen - 1);
        writer.write_bits((header << vlen) | (x >> trail), 12 + vlen);
        block_lead = lead;
        block_len = vlen;
      }
    }
    i += len;
  }
}

// Cursor over the compressed bytes with the same MSB-first semantics and
// end-of-stream behaviour as BitReader, minus the per-call state overhead.
struct FastBitCursor {
  const std::uint8_t* data;
  std::size_t nbits;
  std::size_t pos = 0;

  std::uint64_t read(unsigned count) {
    std::uint64_t value = 0;
    unsigned remaining = count;
    while (remaining > 0) {
      if (pos >= nbits) {
        throw std::out_of_range("BitReader: read past end of stream");
      }
      const std::size_t byte_index = pos / 8;
      const unsigned off = static_cast<unsigned>(pos % 8);
      const unsigned avail = 8 - off;
      const unsigned take = remaining < avail ? remaining : avail;
      const auto chunk = static_cast<std::uint8_t>(
          (data[byte_index] >> (avail - take)) & ((1u << take) - 1u));
      value = (value << take) | chunk;
      pos += take;
      remaining -= take;
    }
    return value;
  }

  bool read_bit() {
    if (pos >= nbits) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
    const bool b = (data[pos / 8] >> (7 - pos % 8)) & 1u;
    ++pos;
    return b;
  }
};

void decode_stream_fast(std::span<const std::uint8_t> bytes, std::size_t count,
                        std::vector<float>& out) {
  FastBitCursor cur{bytes.data(), bytes.size() * 8};
  std::uint32_t prev = static_cast<std::uint32_t>(cur.read(32));
  out.push_back(bits_float(prev));
  unsigned block_lead = 0;
  unsigned block_len = 0;
  bool have_block = false;
  for (std::size_t i = 1; i < count; ++i) {
    if (!cur.read_bit()) {  // identical to previous
      out.push_back(bits_float(prev));
      continue;
    }
    if (cur.read_bit()) {  // new block header: lead(5) ++ len-1(5)
      const auto header = static_cast<std::uint32_t>(cur.read(10));
      block_lead = header >> 5;
      block_len = (header & 0x1Fu) + 1;
      have_block = true;
    } else if (!have_block) {
      throw std::runtime_error("float codec: reuse of block before definition");
    }
    const auto meaningful = static_cast<std::uint32_t>(cur.read(block_len));
    const unsigned shift = 32 - block_lead - block_len;
    prev ^= meaningful << shift;
    out.push_back(bits_float(prev));
  }
}

}  // namespace

std::vector<std::uint8_t> compress_floats(std::span<const float> values) {
  BitWriter writer;
  compress_floats(values, writer);
  return std::move(writer).finish();
}

void compress_floats(std::span<const float> values, BitWriter& writer) {
  if (core::KernelDispatch::fast()) {
    encode_stream_fast(values, writer);
  } else {
    encode_stream(values, &writer);
  }
}

void compress_floats_scalar(std::span<const float> values, BitWriter& writer) {
  encode_stream(values, &writer);
}

void compress_floats_fast(std::span<const float> values, BitWriter& writer) {
  encode_stream_fast(values, writer);
}

std::size_t compressed_floats_size(std::span<const float> values) {
  return (encode_stream(values, nullptr) + 7) / 8;
}

std::vector<float> decompress_floats(std::span<const std::uint8_t> bytes,
                                     std::size_t count) {
  std::vector<float> out;
  decompress_floats_into(bytes, count, out);
  return out;
}

void decompress_floats_into(std::span<const std::uint8_t> bytes,
                            std::size_t count, std::vector<float>& out) {
  if (core::KernelDispatch::fast()) {
    decompress_floats_into_fast(bytes, count, out);
  } else {
    decompress_floats_into_scalar(bytes, count, out);
  }
}

void decompress_floats_into_fast(std::span<const std::uint8_t> bytes,
                                 std::size_t count, std::vector<float>& out) {
  out.clear();
  if (count == 0) return;
  out.reserve(count);
  decode_stream_fast(bytes, count, out);
}

void decompress_floats_into_scalar(std::span<const std::uint8_t> bytes,
                                   std::size_t count, std::vector<float>& out) {
  out.clear();
  if (count == 0) return;
  out.reserve(count);
  BitReader reader(bytes);
  std::uint32_t prev = static_cast<std::uint32_t>(reader.read_bits(32));
  out.push_back(bits_float(prev));
  unsigned block_lead = 0;
  unsigned block_len = 0;
  bool have_block = false;
  for (std::size_t i = 1; i < count; ++i) {
    if (!reader.read_bit()) {  // identical to previous
      out.push_back(bits_float(prev));
      continue;
    }
    if (reader.read_bit()) {  // new block header
      block_lead = static_cast<unsigned>(reader.read_bits(5));
      block_len = static_cast<unsigned>(reader.read_bits(5)) + 1;
      have_block = true;
    } else if (!have_block) {
      throw std::runtime_error("float codec: reuse of block before definition");
    }
    const auto meaningful = static_cast<std::uint32_t>(reader.read_bits(block_len));
    const unsigned shift = 32 - block_lead - block_len;
    prev ^= meaningful << shift;
    out.push_back(bits_float(prev));
  }
}

}  // namespace jwins::compress

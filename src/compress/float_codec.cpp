#include "compress/float_codec.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "compress/bitstream.hpp"

namespace jwins::compress {

namespace {

std::uint32_t float_bits(float v) noexcept {
  return std::bit_cast<std::uint32_t>(v);
}

float bits_float(std::uint32_t b) noexcept { return std::bit_cast<float>(b); }

// Shared encode loop: emits to `writer` if non-null, always tallies bits.
std::size_t encode_stream(std::span<const float> values, BitWriter* writer) {
  std::size_t bits = 0;
  auto emit_bit = [&](bool b) {
    if (writer) writer->write_bit(b);
    ++bits;
  };
  auto emit_bits = [&](std::uint64_t v, unsigned n) {
    if (writer) writer->write_bits(v, n);
    bits += n;
  };

  if (values.empty()) return 0;
  emit_bits(float_bits(values[0]), 32);
  std::uint32_t prev = float_bits(values[0]);
  unsigned block_lead = 0xFF;  // invalid: forces a new block header first time
  unsigned block_len = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::uint32_t cur = float_bits(values[i]);
    const std::uint32_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      emit_bit(false);
      continue;
    }
    emit_bit(true);
    const unsigned lead = std::min(31, std::countl_zero(x));
    const unsigned trail = static_cast<unsigned>(std::countr_zero(x));
    const unsigned len = 32 - lead - trail;
    const bool fits_block =
        block_lead != 0xFF && lead >= block_lead &&
        (32 - lead - len) >= (32 - block_lead - block_len);
    if (fits_block) {
      emit_bit(false);
      emit_bits(x >> (32 - block_lead - block_len), block_len);
    } else {
      emit_bit(true);
      emit_bits(lead, 5);
      emit_bits(len - 1, 5);
      emit_bits(x >> trail, len);
      block_lead = lead;
      block_len = len;
    }
  }
  return bits;
}

}  // namespace

std::vector<std::uint8_t> compress_floats(std::span<const float> values) {
  BitWriter writer;
  encode_stream(values, &writer);
  return std::move(writer).finish();
}

void compress_floats(std::span<const float> values, BitWriter& writer) {
  encode_stream(values, &writer);
}

std::size_t compressed_floats_size(std::span<const float> values) {
  return (encode_stream(values, nullptr) + 7) / 8;
}

std::vector<float> decompress_floats(std::span<const std::uint8_t> bytes,
                                     std::size_t count) {
  std::vector<float> out;
  decompress_floats_into(bytes, count, out);
  return out;
}

void decompress_floats_into(std::span<const std::uint8_t> bytes,
                            std::size_t count, std::vector<float>& out) {
  out.clear();
  if (count == 0) return;
  out.reserve(count);
  BitReader reader(bytes);
  std::uint32_t prev = static_cast<std::uint32_t>(reader.read_bits(32));
  out.push_back(bits_float(prev));
  unsigned block_lead = 0;
  unsigned block_len = 0;
  bool have_block = false;
  for (std::size_t i = 1; i < count; ++i) {
    if (!reader.read_bit()) {  // identical to previous
      out.push_back(bits_float(prev));
      continue;
    }
    if (reader.read_bit()) {  // new block header
      block_lead = static_cast<unsigned>(reader.read_bits(5));
      block_len = static_cast<unsigned>(reader.read_bits(5)) + 1;
      have_block = true;
    } else if (!have_block) {
      throw std::runtime_error("float codec: reuse of block before definition");
    }
    const auto meaningful = static_cast<std::uint32_t>(reader.read_bits(block_len));
    const unsigned shift = 32 - block_lead - block_len;
    prev ^= meaningful << shift;
    out.push_back(bits_float(prev));
  }
}

}  // namespace jwins::compress

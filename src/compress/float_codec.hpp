// Lossless float-stream codec standing in for Fpzip (paper §IV-B e).
//
// The paper applies Fpzip uniformly to all parameter payloads for all
// algorithms; we do the same with an XOR-predictive codec in the style of
// Gorilla (Pelkonen et al., VLDB'15): each value is XORed with the previous
// one and the meaningful bits are emitted with a leading/trailing-zero
// header. Neural network parameter streams are locally correlated, so the
// predictor removes sign/exponent redundancy; the codec is exactly lossless,
// which preserves algorithm behaviour while shrinking payload bytes.
// The substitution is recorded in docs/DESIGN.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitstream.hpp"

namespace jwins::compress {

/// Compresses a float stream losslessly. Output layout: the raw first value
/// then XOR-coded residuals.
std::vector<std::uint8_t> compress_floats(std::span<const float> values);

/// Scratch variant: appends the code to `writer` (not cleared), so a reused
/// BitWriter makes the compression allocation-free in steady state.
/// Dispatches between the scalar reference and the block encoder per
/// core::KernelDispatch; both tiers emit identical bytes.
void compress_floats(std::span<const float> values, BitWriter& writer);

/// Pinned golden reference encoder (per-value branchy loop).
void compress_floats_scalar(std::span<const float> values, BitWriter& writer);

/// Fast path: fused XOR/clz/ctz block pass with combined control+payload
/// emission. Byte-identical to the reference.
void compress_floats_fast(std::span<const float> values, BitWriter& writer);

/// Exact inverse of compress_floats. `count` is the number of floats encoded.
std::vector<float> decompress_floats(std::span<const std::uint8_t> bytes,
                                     std::size_t count);

/// Scratch variant: decodes into `out` (cleared first, capacity kept).
/// Dispatches per core::KernelDispatch.
void decompress_floats_into(std::span<const std::uint8_t> bytes,
                            std::size_t count, std::vector<float>& out);

/// Pinned golden reference decoder (BitReader per-bit loop).
void decompress_floats_into_scalar(std::span<const std::uint8_t> bytes,
                                   std::size_t count, std::vector<float>& out);

/// Fast path: local bit cursor with chunked reads. Identical floats and
/// identical failure behaviour on malformed streams.
void decompress_floats_into_fast(std::span<const std::uint8_t> bytes,
                                 std::size_t count, std::vector<float>& out);

/// Compressed size in bytes without materializing the buffer.
std::size_t compressed_floats_size(std::span<const float> values);

}  // namespace jwins::compress

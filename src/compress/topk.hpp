// TopK magnitude selection and seeded random index sampling — the two
// sparsification primitives in the paper (TopK for JWINS/CHOCO, random
// sampling as the sparse-communication baseline).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace jwins::compress {

/// Indices of the `k` largest-magnitude elements of `values`, sorted
/// ascending (the order required by the gap-based metadata coder).
/// If k >= values.size(), all indices are returned.
std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                        std::size_t k);

/// `k` distinct indices drawn uniformly from [0, n) using `seed` — the
/// random-sampling baseline. Sharing the seed reproduces the exact subset on
/// the receiver, so the metadata cost is just the 8-byte seed (paper §II-B2).
/// Returned sorted ascending.
std::vector<std::uint32_t> random_indices(std::size_t n, std::size_t k,
                                          std::uint64_t seed);

/// Gathers `values[idx]` for each idx.
std::vector<float> gather(std::span<const float> values,
                          std::span<const std::uint32_t> indices);

/// Scatters `sparse[i]` into `dense[indices[i]]`.
void scatter(std::span<float> dense, std::span<const std::uint32_t> indices,
             std::span<const float> sparse);

}  // namespace jwins::compress

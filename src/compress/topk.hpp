// TopK magnitude selection and seeded random index sampling — the two
// sparsification primitives in the paper (TopK for JWINS/CHOCO, random
// sampling as the sparse-communication baseline).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/arena.hpp"

namespace jwins::compress {

/// Indices of the `k` largest-magnitude elements of `values`, sorted
/// ascending (the order required by the gap-based metadata coder). Ties in
/// magnitude break toward the lower index, making the selected set unique.
/// If k >= values.size(), all indices are returned. Values must be NaN-free.
std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                        std::size_t k);

/// Scratch variant: selects into `out` (overwritten), which doubles as the
/// selection workspace — once warmed to values.size() capacity the call is
/// allocation-free. Bit-identical to topk_indices(). Dispatches between the
/// scalar reference and the bucket-select fast path per
/// core::KernelDispatch.
void topk_indices_into(std::span<const float> values, std::size_t k,
                       std::vector<std::uint32_t>& out);

/// Pinned golden reference: full nth_element select under the
/// magnitude-descending / index-ascending total order.
void topk_indices_into_scalar(std::span<const float> values, std::size_t k,
                              std::vector<std::uint32_t>& out);

/// Fast path: single-pass 65536-bucket histogram over the top magnitude
/// bits, exact nth_element only on the boundary bucket. Returns the
/// identical index set as the scalar reference (same total order).
void topk_indices_into_fast(std::span<const float> values, std::size_t k,
                            std::vector<std::uint32_t>& out);

/// `k` distinct indices drawn uniformly from [0, n) using `seed` — the
/// random-sampling baseline. Sharing the seed reproduces the exact subset on
/// the receiver, so the metadata cost is just the 8-byte seed (paper §II-B2).
/// Returned sorted ascending.
std::vector<std::uint32_t> random_indices(std::size_t n, std::size_t k,
                                          std::uint64_t seed);

/// Scratch variant: draws into `out` (cleared first) using `arena` for the
/// O(n) membership flags. Bit-identical to random_indices().
void random_indices_into(std::size_t n, std::size_t k, std::uint64_t seed,
                         std::vector<std::uint32_t>& out, core::Arena& arena);

/// Gathers `values[idx]` for each idx.
std::vector<float> gather(std::span<const float> values,
                          std::span<const std::uint32_t> indices);

/// Scratch variant: gathers into `out` (resized to indices.size()).
void gather_into(std::span<const float> values,
                 std::span<const std::uint32_t> indices,
                 std::vector<float>& out);

/// Scratch variant gathering into a caller-provided span (same length as
/// `indices`), e.g. arena storage.
void gather_into(std::span<const float> values,
                 std::span<const std::uint32_t> indices, std::span<float> out);

/// Scatters `sparse[i]` into `dense[indices[i]]`.
void scatter(std::span<float> dense, std::span<const std::uint32_t> indices,
             std::span<const float> sparse);

}  // namespace jwins::compress

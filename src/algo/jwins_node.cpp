#include "algo/jwins_node.hpp"

#include <algorithm>
#include <numeric>

#include "compress/topk.hpp"
#include "core/averaging.hpp"

namespace jwins::algo {

JwinsNode::JwinsNode(std::uint32_t rank,
                     std::unique_ptr<nn::SupervisedModel> model,
                     data::Sampler sampler, TrainConfig config, Options options)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      options_(std::move(options)),
      ranker_(param_count(), options_.ranker) {
  x0_ = flat_params();
  band_share_counts_.assign(ranker_.band_count(), 0);
}

void JwinsNode::share(net::Network& network, const graph::Graph& g,
                      const graph::MixingWeights& /*weights*/,
                      std::uint32_t round) {
  x_tau_ = flat_params();
  // Eq. (3): V' = V + T(x^{t,tau} - x^{t,0}).
  const std::span<const float> scores =
      ranker_.accumulate_round_change(x0_, x_tau_);
  // Randomized cut-off picks this round's sharing fraction independently;
  // the draw is keyed on (seed, rank, round), not on engine call history.
  core::CounterRng rng = round_rng(round);
  last_alpha_ = options_.cutoff.sample(rng);
  const std::size_t coeff_len = ranker_.coeff_length();
  own_coeffs_ = ranker_.transform(x_tau_);

  core::SparsePayload payload;
  payload.vector_length = static_cast<std::uint32_t>(coeff_len);
  core::PayloadOptions msg_options;
  msg_options.value_encoding = options_.value_encoding;
  if (last_alpha_ >= 1.0) {
    // Full share: dense wavelet vector, no index metadata.
    sent_dense_ = true;
    sent_indices_.clear();
    payload.values = own_coeffs_;
    msg_options.index_encoding = core::IndexEncoding::kDense;
  } else {
    sent_dense_ = false;
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(last_alpha_ * static_cast<double>(coeff_len) + 0.5));
    sent_indices_ = compress::topk_indices(scores, k);
    for (std::uint32_t idx : sent_indices_) {
      ++band_share_counts_[ranker_.band_of(idx)];
    }
    payload.indices = sent_indices_;
    payload.values = compress::gather(own_coeffs_, sent_indices_);
    msg_options.index_encoding = options_.index_encoding;
  }
  const net::Message msg = core::make_message(rank(), round, payload, msg_options);
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void JwinsNode::aggregate(net::Network& network, const graph::Graph& g,
                          const graph::MixingWeights& weights,
                          std::uint32_t round) {
  (void)round;
  const std::vector<net::Message> inbox = network.drain(rank());
  std::vector<core::SparsePayload> payloads;
  payloads.reserve(inbox.size());
  std::vector<core::WeightedContribution> contributions;
  contributions.reserve(inbox.size());
  for (const net::Message& msg : inbox) {
    payloads.push_back(core::decode_payload(msg.body));
    contributions.push_back(
        {weight_of(g, weights, rank(), msg.sender), &payloads.back()});
  }
  // Algorithm 1, line 10: average received wavelet coefficients with our own.
  core::partial_average(own_coeffs_, weights.self_weight[rank()], contributions);
  // Line 11: invert back to the parameter domain.
  const std::vector<float> x_next = ranker_.inverse(own_coeffs_);
  set_flat_params(x_next);
  // Line 12 / eq. (4): fold in the averaging change, reset shared entries.
  if (sent_dense_) {
    std::vector<std::uint32_t> all(ranker_.coeff_length());
    std::iota(all.begin(), all.end(), 0u);
    ranker_.finish_round(x_tau_, x_next, all);
  } else {
    ranker_.finish_round(x_tau_, x_next, sent_indices_);
  }
  x0_ = x_next;
}

}  // namespace jwins::algo

#include "algo/jwins_node.hpp"

#include <algorithm>
#include <numeric>

#include "compress/topk.hpp"
#include "core/averaging.hpp"

namespace jwins::algo {

JwinsNode::JwinsNode(std::uint32_t rank,
                     std::unique_ptr<nn::SupervisedModel> model,
                     data::Sampler sampler, TrainConfig config, Options options)
    : DlNode(rank, std::move(model), std::move(sampler), config),
      options_(std::move(options)),
      ranker_(param_count(), options_.ranker) {
  x0_ = flat_params();
  band_share_counts_.assign(ranker_.band_count(), 0);
}

void JwinsNode::share(net::Network& network, const graph::Graph& g,
                      const graph::MixingWeights& /*weights*/,
                      std::uint32_t round, core::RoundScratch& scratch) {
  scratch.reset();
  flat_params_into(x_tau_);
  // Eq. (3): V' = V + T(x^{t,tau} - x^{t,0}).
  const std::span<const float> scores = ranker_.accumulate_round_change(
      x0_, x_tau_, scratch.arena, scratch.dwt);
  // Randomized cut-off picks this round's sharing fraction independently;
  // the draw is keyed on (seed, rank, round), not on engine call history.
  core::CounterRng rng = round_rng(round);
  last_alpha_ = options_.cutoff.sample(rng);
  const std::size_t coeff_len = ranker_.coeff_length();
  own_coeffs_.resize(coeff_len);
  ranker_.transform_into(x_tau_, own_coeffs_, scratch.dwt);

  core::PayloadView payload;
  payload.vector_length = static_cast<std::uint32_t>(coeff_len);
  core::PayloadOptions msg_options;
  msg_options.value_encoding = options_.value_encoding;
  if (last_alpha_ >= 1.0) {
    // Full share: dense wavelet vector, no index metadata.
    sent_dense_ = true;
    sent_indices_.clear();
    if (is_byzantine()) {
      // own_coeffs_ is reused as this node's own contribution in
      // aggregate(), so corruption goes through an arena copy: the wire is
      // poisoned, the attacker's own aggregation stays honest.
      const std::span<float> wire = scratch.arena.alloc<float>(coeff_len);
      std::copy(own_coeffs_.begin(), own_coeffs_.end(), wire.begin());
      corrupt_wire_values(wire, round);
      payload.values = wire;
    } else {
      payload.values = own_coeffs_;
    }
    msg_options.index_encoding = core::IndexEncoding::kDense;
  } else {
    sent_dense_ = false;
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(last_alpha_ * static_cast<double>(coeff_len) + 0.5));
    compress::topk_indices_into(scores, k, sent_indices_);
    for (std::uint32_t idx : sent_indices_) {
      ++band_share_counts_[ranker_.band_of(idx)];
    }
    const std::span<float> values =
        scratch.arena.alloc<float>(sent_indices_.size());
    compress::gather_into(own_coeffs_, sent_indices_, values);
    // The gathered span is wire staging (own_coeffs_ keeps the honest
    // coefficients), so sparse corruption happens in place.
    if (is_byzantine()) corrupt_wire_values(values, round);
    payload.indices = sent_indices_;
    payload.values = values;
    msg_options.index_encoding = options_.index_encoding;
  }
  if (is_byzantine()) note_corrupted_sends(g.neighbors(rank()).size());
  // One refcounted, pool-recycled body shared by every neighbor.
  const net::Message msg = core::make_message(
      rank(), round, payload, msg_options, network.pool(), scratch.bits);
  for (std::size_t j : g.neighbors(rank())) {
    network.send(static_cast<std::uint32_t>(j), msg);
  }
}

void JwinsNode::aggregate(net::Network& network, const graph::Graph& g,
                          const graph::MixingWeights& weights,
                          std::uint32_t round, core::RoundScratch& scratch) {
  scratch.reset();
  network.drain_into(rank(), scratch.inbox);
  const std::vector<net::Message>& inbox = scratch.inbox;
  for (const net::Message& msg : inbox) {
    core::decode_payload_into(msg.body, scratch.payloads.next(), scratch.arena);
  }
  // Pool references are stable once all payloads are decoded. Staleness
  // scales are all exactly 1.0 outside weighted async mode, in which case
  // the unscaled (bit-identical legacy) overload runs.
  bool scaled = false;
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    scratch.contributions.push_back(
        {weight_of(g, weights, rank(), inbox[i].sender), &scratch.payloads[i]});
    const double scale = staleness_scale(inbox[i].round, round);
    scratch.contribution_scales.push_back(scale);
    scaled = scaled || scale != 1.0;
  }
  // Algorithm 1, line 10: average received wavelet coefficients with our
  // own (through the robust rule when one is configured).
  robust_average(own_coeffs_, weights.self_weight[rank()],
                 scratch.contributions, scratch.contribution_scales, scaled,
                 scratch.arena);
  // Line 11: invert back to the parameter domain.
  const std::span<float> x_next = scratch.arena.alloc<float>(param_count());
  ranker_.inverse_into(own_coeffs_, x_next, scratch.dwt);
  set_flat_params(x_next);
  // Line 12 / eq. (4): fold in the averaging change, reset shared entries.
  if (sent_dense_) {
    const std::span<std::uint32_t> all =
        scratch.arena.alloc<std::uint32_t>(ranker_.coeff_length());
    std::iota(all.begin(), all.end(), 0u);
    ranker_.finish_round(x_tau_, x_next, all, scratch.arena, scratch.dwt);
  } else {
    ranker_.finish_round(x_tau_, x_next, sent_indices_, scratch.arena,
                         scratch.dwt);
  }
  x0_.assign(x_next.begin(), x_next.end());
}

}  // namespace jwins::algo

// PowerGossip (Vogels, Karimireddy & Jaggi, NeurIPS 2020): low-rank gossip
// compression via power iteration on pairwise model differences.
//
// The paper cites PowerGossip as the other state-of-the-art
// communication-efficient DL algorithm and skips the comparison because "it
// performs as good as tuned CHOCO"; implementing it here lets the
// reproduction check that claim directly (see bench_ablation_baselines).
//
// Faithful to the original, compression is per *layer*: every parameter
// tensor is viewed as a rows x cols matrix M_b (matrices by their leading
// axis, vectors as a single row), and each matrix is compressed to rank one
// per gossip iteration with warm-started power iteration. One iteration
// spans two engine rounds:
//   phase A (even round): exchange p_b = M_b v_b per block  (rows_b floats)
//   phase B (odd round):  u_b = normalize(p_b,lo - p_b,hi) — identical on
//            both ends; exchange q_b = M_b^T u_b (cols_b floats);
//            rank-1 difference estimate (M_b,i - M_b,j) ~ u_b dq_b^T;
//            x_lo -= gamma/2 u dq^T, x_hi += gamma/2 u dq^T per block;
//            v_b <- normalize(dq_b) (warm start).
// Per-edge traffic per iteration is sum_b (rows_b + cols_b) floats —
// O(sqrt(params)) per matrix — instead of the dense parameter count.
//
// Like CHOCO, PowerGossip keeps per-neighbor state (the warm-start
// vectors), so it assumes a static topology.
#pragma once

#include <unordered_map>

#include "algo/node.hpp"

namespace jwins::algo {

class PowerGossipNode final : public DlNode {
 public:
  struct Options {
    double gamma = 1.0;   ///< consensus step on the rank-1 estimates
    std::uint64_t seed = 0x9055FEEDull;  ///< shared-randomness base seed
  };

  PowerGossipNode(std::uint32_t rank, std::unique_ptr<nn::SupervisedModel> model,
                  data::Sampler sampler, TrainConfig config, Options options);

  void share(net::Network& network, const graph::Graph& g,
             const graph::MixingWeights& weights, std::uint32_t round,
             core::RoundScratch& scratch) override;
  void aggregate(net::Network& network, const graph::Graph& g,
                 const graph::MixingWeights& weights, std::uint32_t round,
                 core::RoundScratch& scratch) override;

  /// Matrix blocks the model decomposes into (offset into the flat vector).
  struct Block {
    std::size_t offset = 0;
    std::size_t rows = 0;
    std::size_t cols = 0;
  };
  const std::vector<Block>& blocks() const noexcept { return blocks_; }

  /// Floats a node ships per neighbor per gossip iteration (p + q phases).
  std::size_t floats_per_edge_iteration() const noexcept;

 private:
  struct BlockState {
    std::vector<float> v;      ///< shared iteration vector (cols)
    std::vector<float> u;      ///< current left singular estimate (rows)
    std::vector<float> own_p;  ///< this node's M v of phase A
    std::vector<float> own_q;  ///< this node's M^T u of phase B
  };
  struct EdgeState {
    std::vector<BlockState> block_state;  ///< aligned with blocks_
  };

  EdgeState& edge(std::size_t neighbor);

  Options options_;
  std::vector<Block> blocks_;
  std::unordered_map<std::size_t, EdgeState> edges_;
};

}  // namespace jwins::algo
